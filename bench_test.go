package smartpgsim_test

// The benchmark harness regenerates every table and figure of the paper
// (see DESIGN.md §5 for the experiment index). Each benchmark times the
// experiment's core operation with testing.B and prints the paper-style
// table once per `go test -bench` run, so the tee'd bench output doubles
// as the reproduction report. Paper-scale sample counts (10,000 problems,
// 8,000-sample training) are scaled down for CPU budgets; the cmd/ tools
// accept flags to run any size.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/horizon"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/opf"
	"repro/internal/scale"
	"repro/internal/scopf"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// fixture holds the shared trained state: built once, reused by every
// benchmark so `go test -bench=.` stays tractable.
type fixture struct {
	sys9    *core.System
	sys14   *core.System
	set9    *dataset.Set
	train9  *dataset.Set
	val9    *dataset.Set
	set14   *dataset.Set
	model9  *mtl.Model // Smart-PGSim variant, trained on case9
	model14 *mtl.Model
	eval9   core.EvalResult
	eval14  core.EvalResult
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		f := &fixture{}
		f.sys9 = core.MustLoadSystem("case9")
		f.sys14 = core.MustLoadSystem("case14")
		f.set9, fixErr = f.sys9.GenerateData(150, 101)
		if fixErr != nil {
			return
		}
		f.train9, f.val9 = f.set9.Split(0.8)
		f.model9, fixErr = f.sys9.TrainModel(mtl.VariantSmartPGSim, f.train9, 300, 11, nil)
		if fixErr != nil {
			return
		}
		f.set14, fixErr = f.sys14.GenerateData(120, 102)
		if fixErr != nil {
			return
		}
		train14, _ := f.set14.Split(0.8)
		f.model14, fixErr = f.sys14.TrainModel(mtl.VariantSmartPGSim, train14, 300, 12, nil)
		if fixErr != nil {
			return
		}
		_, val14 := f.set14.Split(0.8)
		f.eval9 = core.Evaluate(f.sys9, f.model9, f.val9, 0)
		f.eval14 = core.Evaluate(f.sys14, f.model14, val14, 0)
		fix = f
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

var printOnce sync.Map

// printReport emits a table once per process.
func printReport(key string, emit func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		emit()
	}
}

// BenchmarkTableI regenerates the warm-start component ablation; the
// timed operation is one all-precise warm-started OPF solve.
func BenchmarkTableI(b *testing.B) {
	f := getFixture(b)
	printReport("tableI", func() {
		rows := core.SensitivityStudy(f.sys9, f.set9, 12)
		core.PrintTableI(os.Stdout, []string{"case9"}, map[string][]core.SensRow{"case9": rows})
	})
	s := &f.set9.Samples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc := f.sys9.Case.Clone()
		cc.ScaleLoads(s.Factors)
		o := opf.Prepare(cc)
		if _, err := o.Solve(&opf.Start{X: s.X, Lam: s.Lam, Mu: s.Mu, Z: s.Z}, opf.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII prints the system configuration counts; the timed
// operation is OPF problem preparation.
func BenchmarkTableII(b *testing.B) {
	f := getFixture(b)
	printReport("tableII", func() {
		sys30 := core.MustLoadSystem("case30")
		sys57 := core.MustLoadSystem("case57")
		core.PrintTableII(os.Stdout, core.TableII([]*core.System{f.sys14, sys30, sys57}))
		fmt.Println("(case118/case300 rows: go run ./cmd/pgsim -case case118 / case300)")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opf.Prepare(f.sys14.Case)
	}
}

// BenchmarkTableIII regenerates the NN-as-final-solution comparison; the
// timed operation is one model inference.
func BenchmarkTableIII(b *testing.B) {
	f := getFixture(b)
	printReport("tableIII", func() {
		rows := []core.ReplacementResult{
			core.ReplacementStudy(f.sys9, f.model9, f.val9, 0),
		}
		core.PrintTableIII(os.Stdout, rows)
	})
	in := f.val9.Samples[0].Input
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.model9.Predict(in)
	}
}

// BenchmarkFig4 regenerates the end-to-end MIPS vs Smart-PGSim rows; the
// timed operation is one full online-pipeline solve (predict + warm
// solve + fallback).
func BenchmarkFig4(b *testing.B) {
	f := getFixture(b)
	printReport("fig4", func() {
		core.PrintFig4(os.Stdout, []core.EvalResult{f.eval9, f.eval14})
	})
	s := &f.val9.Samples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.sys9.SolveWarm(f.model9, s.Factors, s.Input)
	}
}

// BenchmarkFig5 regenerates the runtime breakdown; the timed operation is
// one cold MIPS solve (the baseline whose Newton share dominates).
func BenchmarkFig5(b *testing.B) {
	f := getFixture(b)
	printReport("fig5", func() {
		core.PrintFig5(os.Stdout, []core.EvalResult{f.eval9, f.eval14})
	})
	s := &f.val9.Samples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc := f.sys9.Case.Clone()
		cc.ScaleLoads(s.Factors)
		if _, err := opf.Prepare(cc).Solve(nil, opf.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates the prediction-accuracy panels; the timed
// operation is predict + renormalize for one sample.
func BenchmarkFig6(b *testing.B) {
	f := getFixture(b)
	printReport("fig6", func() {
		core.PrintFig6(os.Stdout, core.PredictionAccuracy(f.sys9, f.model9, f.val9))
	})
	s := &f.val9.Samples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := f.model9.Predict(s.Input)
		f.model9.Norm.X.NormalizeVec(st.X)
	}
}

// fig78 caches the expensive three-variant comparison shared by the
// Figure 7 and Figure 8 benchmarks.
var (
	fig78Once sync.Once
	fig78Rows []core.VariantResult
	fig78Err  error
)

func getFig78(b *testing.B) []core.VariantResult {
	f := getFixture(b)
	fig78Once.Do(func() {
		fig78Rows, fig78Err = core.CompareModels(f.sys9, f.train9, f.val9, 200, 21, 12, nil)
	})
	if fig78Err != nil {
		b.Fatal(fig78Err)
	}
	return fig78Rows
}

// BenchmarkFig7 regenerates the Sep-models / MTL / Smart-PGSim speedup
// and success-rate comparison; the timed operation is one warm solve.
func BenchmarkFig7(b *testing.B) {
	f := getFixture(b)
	rows := getFig78(b)
	printReport("fig7", func() { core.PrintFig7(os.Stdout, "case9", rows) })
	s := &f.val9.Samples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.sys9.SolveWarm(f.model9, s.Factors, s.Input)
	}
}

// BenchmarkFig8 regenerates the relative-error box plots; the timed
// operation is one prediction error evaluation.
func BenchmarkFig8(b *testing.B) {
	f := getFixture(b)
	rows := getFig78(b)
	printReport("fig8", func() { core.PrintFig8(os.Stdout, "case9", rows) })
	s := &f.val9.Samples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := f.model9.Predict(s.Input)
		_ = st.X.Clone().Sub(s.X).NormInf()
	}
}

// BenchmarkFig9 regenerates the strong/weak scaling curves; the timed
// operation is a real 4-worker parallel inference batch.
func BenchmarkFig9(b *testing.B) {
	f := getFixture(b)
	tInf := scale.MeasureInference(f.model9, f.val9.Inputs())
	printReport("fig9", func() {
		cl := scale.DefaultCluster()
		workers := []int{1, 16, 32, 64, 128}
		fmt.Println("Figure 9a — strong scaling (10k scenarios)")
		fmt.Printf("%8s %10s %8s %8s\n", "workers", "speedup", "ideal", "eff")
		for _, p := range scale.StrongScaling(tInf, 10000, workers, cl) {
			fmt.Printf("%8d %9.1fx %7.0fx %7.1f%%\n", p.Workers, p.Speedup, p.Ideal, p.Eff*100)
		}
		fmt.Println("Figure 9b — weak scaling (10k scenarios/worker)")
		fmt.Printf("%8s %12s %8s\n", "workers", "TFLOP/s", "eff")
		for _, p := range scale.WeakScaling(tInf, 10000, scale.FlopsPerScenario(f.model9), workers, cl) {
			fmt.Printf("%8d %12.4f %7.1f%%\n", p.Workers, p.TFlops, p.Eff*100)
		}
	})
	inputs := f.val9.Inputs()
	big := la.NewMatrix(128, inputs.Cols)
	for r := 0; r < big.Rows; r++ {
		copy(big.Row(r), inputs.Row(r%inputs.Rows))
	}
	replicas := make([]*mtl.Model, 4)
	for i := range replicas {
		replicas[i] = mtl.New(f.model9.Lay, f.model9.Cfg)
		replicas[i].Norm = f.model9.Norm
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scale.RunParallel(replicas, big, 4)
	}
}

// BenchmarkFig10 regenerates the convergence traces; the timed operation
// is one traced cold solve.
func BenchmarkFig10(b *testing.B) {
	f := getFixture(b)
	printReport("fig10", func() {
		core.PrintFig10(os.Stdout, core.ConvergenceStudy(f.sys9, &f.val9.Samples[0]))
	})
	s := &f.val9.Samples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc := f.sys9.Case.Clone()
		cc.ScaleLoads(s.Factors)
		if _, err := opf.Prepare(cc).Solve(nil, opf.Options{RecordTrace: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHierarchy compares MTL training with and without the
// physics-dependent head hierarchy (design-choice ablation, DESIGN.md §6).
func BenchmarkAblationHierarchy(b *testing.B) {
	f := getFixture(b)
	printReport("ablHier", func() {
		for _, hier := range []bool{true, false} {
			cfg := mtl.Config{Variant: mtl.VariantMTL, Hierarchy: hier, DetachPeriod: 4, Seed: 31}
			m := mtl.New(f.sys9.OPF.Lay, cfg)
			hist, err := mtl.Train(m, nil, f.train9, mtl.TrainConfig{Epochs: 120, BatchSize: 16, Seed: 3})
			if err != nil {
				fmt.Println("ablation error:", err)
				return
			}
			ev := core.Evaluate(f.sys9, m, f.val9, 12)
			fmt.Printf("Ablation hierarchy=%-5v finalLoss=%.4f SU=%.2fx SR=%.0f%%\n",
				hier, hist.Supervised[len(hist.Supervised)-1], ev.SU, ev.SR*100)
		}
	})
	cfg := mtl.Config{Variant: mtl.VariantMTL, Hierarchy: true, Seed: 31}
	m := mtl.New(f.sys9.OPF.Lay, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mtl.Train(m, nil, f.train9, mtl.TrainConfig{Epochs: 1, BatchSize: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDetach compares training with and without the detach
// (feature prioritization) knob.
func BenchmarkAblationDetach(b *testing.B) {
	f := getFixture(b)
	printReport("ablDetach", func() {
		for _, period := range []int{0, 4} {
			cfg := mtl.Config{Variant: mtl.VariantMTL, Hierarchy: true, DetachPeriod: period, Seed: 33}
			m := mtl.New(f.sys9.OPF.Lay, cfg)
			hist, err := mtl.Train(m, nil, f.train9, mtl.TrainConfig{Epochs: 120, BatchSize: 16, Seed: 5})
			if err != nil {
				fmt.Println("ablation error:", err)
				return
			}
			ev := core.Evaluate(f.sys9, m, f.val9, 12)
			fmt.Printf("Ablation detachPeriod=%d finalLoss=%.4f SU=%.2fx SR=%.0f%%\n",
				period, hist.Supervised[len(hist.Supervised)-1], ev.SU, ev.SR*100)
		}
	})
	s := &f.val9.Samples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.model9.Predict(s.Input)
	}
}

// BenchmarkAblationKKTOrdering compares the sparse LU fill-reducing
// ordering on an OPF-sized KKT matrix (the solver kernel choice).
func BenchmarkAblationKKTOrdering(b *testing.B) {
	f := getFixture(b)
	// Assemble a representative KKT-like matrix: the equality Jacobian
	// bordered system of case14.
	o := f.sys14.OPF
	x := o.DefaultStart()
	_, jg := o.Equality(x)
	nx := o.Lay.NX
	neq := o.Lay.NEq
	kb := sparse.NewBuilder(nx+neq, nx+neq)
	for i := 0; i < nx; i++ {
		kb.Append(i, i, 4)
	}
	kb.AppendCSC(nx, 0, 1, jg)
	kb.AppendCSC(0, nx, 1, jg.T())
	kkt := kb.ToCSC()
	printReport("ablKKT", func() {
		fn, err1 := sparse.FactorizeOpts(kkt, sparse.OrderNatural, 1)
		fr, err2 := sparse.FactorizeOpts(kkt, sparse.OrderRCM, 1)
		if err1 != nil || err2 != nil {
			fmt.Println("ablation error:", err1, err2)
			return
		}
		fmt.Printf("Ablation KKT ordering (case14, %dx%d): natural fill=%d RCM fill=%d\n",
			nx+neq, nx+neq, fn.NNZ(), fr.NNZ())
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparse.FactorizeOpts(kkt, sparse.OrderRCM, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Solver-kernel benchmarks (PERFORMANCE.md). These are fixture-free — no
// dataset generation or model training — so the CI bench smoke job can run
// them with -benchtime=1x in seconds. The first invocation of either writes
// BENCH_kkt.json with self-timed numbers for the symbolic-reuse speedups.

// kktBench holds a KKT-shaped matrix of the case14 OPF: Hessian-proxy
// diagonal plus JhᵀJh on the (1,1) block, bordered by the equality
// Jacobian — the bordered-system structure every MIPS iteration factors.
var (
	kktOnce   sync.Once
	kktMatrix *sparse.CSC
)

func kktBenchMatrix() *sparse.CSC {
	kktOnce.Do(func() {
		o := core.MustLoadSystem("case14").OPF
		x := o.DefaultStart()
		_, jg := o.Equality(x)
		_, jh := o.FullInequality(x)
		nx, neq := o.Lay.NX, o.Lay.NEq
		kb := sparse.NewBuilder(nx+neq, nx+neq)
		for i := 0; i < nx; i++ {
			kb.Append(i, i, 4)
		}
		jt := jh.T() // column r of jt is inequality row r
		for r := 0; r < jt.NCols; r++ {
			lo, hi := jt.ColPtr[r], jt.ColPtr[r+1]
			for p1 := lo; p1 < hi; p1++ {
				for p2 := lo; p2 < hi; p2++ {
					kb.Append(jt.RowIdx[p1], jt.RowIdx[p2], jt.Val[p1]*jt.Val[p2])
				}
			}
		}
		kb.AppendCSC(nx, 0, 1, jg)
		kb.AppendCSC(0, nx, 1, jg.T())
		kktMatrix = kb.ToCSC()
	})
	return kktMatrix
}

// BenchmarkKKTFactor times the two halves of the symbolic/numeric split
// on the case14 KKT matrix: a full analysis (ordering + pattern DFS +
// pivot search) versus a numeric refactorization on the cached symbolic.
func BenchmarkKKTFactor(b *testing.B) {
	kkt := kktBenchMatrix()
	writeKKTBenchReport(b)
	b.Run("analyze", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sparse.FactorizeOpts(kkt, sparse.OrderRCM, 1.0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("refactor", func(b *testing.B) {
		sym, _, err := sparse.Analyze(kkt, sparse.OrderRCM, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sym.Refactor(kkt); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, ord := range []sparse.Ordering{sparse.OrderNatural, sparse.OrderRCM, sparse.OrderAMD} {
		b.Run("ordering/"+ord.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sparse.FactorizeOpts(kkt, ord, 1.0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMIPSSolve times a cold case14 AC-OPF solve with the symbolic
// KKT reuse on (the default) and off (the pre-reuse per-iteration full
// factorization) — the end-to-end number PERFORMANCE.md quotes.
func BenchmarkMIPSSolve(b *testing.B) {
	sys := core.MustLoadSystem("case14")
	writeKKTBenchReport(b)
	fac := make([]float64, sys.Case.NB())
	for i := range fac {
		fac[i] = 1.03
	}
	for _, mode := range []struct {
		name    string
		noReuse bool
	}{{"reuse", false}, {"noreuse", true}} {
		b.Run(mode.name, func(b *testing.B) {
			base := opf.Prepare(sys.Case)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := base.Perturb(fac).Solve(nil, opf.Options{NoKKTReuse: mode.noReuse}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// screenScenarios builds a deterministic N-1 screening workload: nDraws
// ±10 % load draws crossed with every connected single-branch outage
// (plus the intact topology).
func screenScenarios(sys *core.System, nDraws int, seed int64) []scopf.Scenario {
	return scopf.BuildScenarios(benchDraws(sys.Case.NB(), nDraws, seed), scopf.Contingencies(sys.Case))
}

// benchDraws samples nDraws ±10 % per-bus load factor vectors.
func benchDraws(nb, nDraws int, seed int64) []la.Vector {
	r := rand.New(rand.NewSource(seed))
	draws := make([]la.Vector, nDraws)
	for i := range draws {
		f := make(la.Vector, nb)
		for k := range f {
			f[k] = 0.9 + 0.2*r.Float64()
		}
		draws[i] = f
	}
	return draws
}

// BenchmarkScreen times one N-1 contingency sweep on case14, on the
// topology-aware engine versus the naive per-scenario-rebuild baseline
// (cold screening: the pure structure-reuse comparison). The first
// invocation also writes BENCH_scopf.json (see writeScreenBenchReport),
// which adds the warm-projection sweep where the engine's headline
// speedup comes from.
func BenchmarkScreen(b *testing.B) {
	writeScreenBenchReport(b)
	sys := core.MustLoadSystem("case14")
	scenarios := screenScenarios(sys, 2, 33)
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := &scopf.Engine{Base: sys.Case, Workers: 1}
			if sum := scopf.Summarize(eng.Run(scenarios).Outcomes); sum.Feasible == 0 {
				b.Fatal("no feasible scenario")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if sum := scopf.Summarize(scopf.ScreenNaive(sys.Case, nil, scenarios, 1)); sum.Feasible == 0 {
				b.Fatal("no feasible scenario")
			}
		}
	})
}

var screenReportOnce sync.Once

// writeScreenBenchReport self-times the screening engine against the
// naive baseline over fixed repetition counts and writes
// BENCH_scopf.json. Two sweeps are measured sequentially (workers=1, so
// the numbers are per-scenario costs, not parallel throughput):
//
//   - case14 N-1, cold: every topology keeps the layout; the engine wins
//     only what structure reuse saves, and its outcomes are verified
//     BIT-IDENTICAL to the naive path before the numbers are written.
//   - case9 N-1, warm: every branch is rated, so the naive path silently
//     cold-solves all outage scenarios while the engine projects the
//     intact-system prediction onto each contingency layout — the
//     tentpole speedup, with feasibility verified identical.
func writeScreenBenchReport(b *testing.B) {
	b.Helper()
	screenReportOnce.Do(func() {
		// measurePair times the two paths alternately (after one untimed
		// warm-up of each) so page-cache and allocator drift between the
		// first and second measurement cannot bias the ratio.
		measurePair := func(reps int, fa, fb func()) (aNs, bNs float64) {
			fa()
			fb()
			var ta, tb time.Duration
			for i := 0; i < reps; i++ {
				t0 := time.Now()
				fa()
				ta += time.Since(t0)
				t0 = time.Now()
				fb()
				tb += time.Since(t0)
			}
			return float64(ta.Nanoseconds()) / float64(reps), float64(tb.Nanoseconds()) / float64(reps)
		}

		// --- case14, cold, bit-identical ---------------------------------
		sys14 := core.MustLoadSystem("case14")
		sc14 := screenScenarios(sys14, 4, 33)
		var engOuts, naiveOuts []scopf.Outcome
		const reps = 2
		naiveNs, engineNs := measurePair(reps, func() {
			naiveOuts = scopf.ScreenNaive(sys14.Case, nil, sc14, 1)
		}, func() {
			engOuts = (&scopf.Engine{Base: sys14.Case, Workers: 1}).Run(sc14).Outcomes
		})
		for i := range engOuts {
			g, w := engOuts[i], naiveOuts[i]
			if g.Feasible != w.Feasible || g.Cost != w.Cost || g.Iterations != w.Iterations {
				b.Fatalf("case14 scenario %d: engine not bit-identical to naive: %+v vs %+v", i, g, w)
			}
		}

		// --- case9, warm projection --------------------------------------
		sys9 := core.MustLoadSystem("case9")
		set, err := sys9.GenerateData(150, 5)
		if err != nil {
			b.Fatal(err)
		}
		m, err := sys9.TrainModel(mtl.VariantMTL, set, 300, 5, nil)
		if err != nil {
			b.Fatal(err)
		}
		sc9 := screenScenarios(sys9, 6, 7)
		var warmEng, warmNaive []scopf.Outcome
		warmNaiveNs, warmEngineNs := measurePair(reps, func() {
			warmNaive = scopf.ScreenNaive(sys9.Case, m, sc9, 1)
		}, func() {
			warmEng = (&scopf.Engine{Base: sys9.Case, Model: m, Workers: 1}).Run(sc9).Outcomes
		})
		sumEng, sumNaive := scopf.Summarize(warmEng), scopf.Summarize(warmNaive)
		if sumEng.Feasible != sumNaive.Feasible {
			b.Fatalf("case9 warm: engine feasibility %d != naive %d", sumEng.Feasible, sumNaive.Feasible)
		}

		mustIdentical := func(name string, eng, naive []scopf.Outcome) {
			for i := range eng {
				g, w := eng[i], naive[i]
				if g.Feasible != w.Feasible || g.Cost != w.Cost || g.Iterations != w.Iterations || g.Islanded != w.Islanded {
					b.Fatalf("%s scenario %d: engine not bit-identical to naive: %+v vs %+v", name, i, g, w)
				}
			}
		}

		// --- generator outages, per-system -------------------------------
		// case14 cold is the structure-reuse comparison on the gen axis;
		// case9 warm adds the layout projection (a dropped unit removes its
		// Pg/Qg bound rows, so the naive path silently cold-solves).
		gsc14 := scopf.BuildGenScenarios(benchDraws(sys14.Case.NB(), 4, 33), scopf.GenContingencies(sys14.Case))
		var genEng, genNaive []scopf.Outcome
		genNaiveNs, genEngineNs := measurePair(reps, func() {
			genNaive = scopf.ScreenNaive(sys14.Case, nil, gsc14, 1)
		}, func() {
			genEng = (&scopf.Engine{Base: sys14.Case, Workers: 1}).Run(gsc14).Outcomes
		})
		mustIdentical("case14 gen-outage", genEng, genNaive)

		gsc9 := scopf.BuildGenScenarios(benchDraws(sys9.Case.NB(), 6, 7), scopf.GenContingencies(sys9.Case))
		var gwEng, gwNaive []scopf.Outcome
		gwNaiveNs, gwEngineNs := measurePair(reps, func() {
			gwNaive = scopf.ScreenNaive(sys9.Case, m, gsc9, 1)
		}, func() {
			gwEng = (&scopf.Engine{Base: sys9.Case, Model: m, Workers: 1}).Run(gsc9).Outcomes
		})
		gwSumEng, gwSumNaive := scopf.Summarize(gwEng), scopf.Summarize(gwNaive)
		if gwSumEng.Feasible != gwSumNaive.Feasible {
			b.Fatalf("case9 gen-outage warm: engine feasibility %d != naive %d", gwSumEng.Feasible, gwSumNaive.Feasible)
		}

		// --- N-2 branch pairs, per-system --------------------------------
		// case14 exhaustive pair set, engine vs naive (bit-identical); then
		// the hierarchical top-K screen against the exhaustive reference,
		// re-verifying that every severe pair survives the pruning. case9 is
		// the islanding regime: every branch pair disconnects the 6-branch
		// ring, so the whole pair set is classified without a single solve.
		f14 := make(la.Vector, sys14.Case.NB())
		for i := range f14 {
			f14[i] = 1.1
		}
		cont14 := scopf.Contingencies(sys14.Case)
		pairSc14 := scopf.BuildPairScenarios([]la.Vector{f14}, scopf.AllPairs(cont14))
		var pairEng, pairNaive []scopf.Outcome
		pairNaiveNs, pairEngineNs := measurePair(1, func() {
			pairNaive = scopf.ScreenNaive(sys14.Case, nil, pairSc14, 1)
		}, func() {
			pairEng = (&scopf.Engine{Base: sys14.Case, Workers: 1}).Run(pairSc14).Outcomes
		})
		mustIdentical("case14 N-2 pair", pairEng, pairNaive)

		const topK = 17 // smallest K retaining every solver-severe case14 pair (TestHierarchicalN2Sound)
		var exh, pruned *scopf.N2Result
		exhNs, prunedNs := measurePair(1, func() {
			exh = (&scopf.Engine{Base: sys14.Case, Workers: 1}).ScreenPairsTopK(f14, 0)
		}, func() {
			pruned = (&scopf.Engine{Base: sys14.Case, Workers: 1}).ScreenPairsTopK(f14, topK)
		})
		prunedOut := make(map[[2]int]scopf.Outcome, len(pruned.Pairs))
		for i, p := range pruned.Pairs {
			prunedOut[p] = pruned.Report.Outcomes[i]
		}
		severe := 0
		for i, p := range exh.Pairs {
			o := exh.Report.Outcomes[i]
			if o.Err == nil && o.Feasible && !o.Islanded {
				continue // not severe
			}
			severe++
			kept, ok := prunedOut[p]
			if !ok {
				b.Fatalf("hierarchical N-2 pruned away severe pair %v", p)
			}
			if kept.Feasible != o.Feasible || kept.Cost != o.Cost || kept.Iterations != o.Iterations || kept.Islanded != o.Islanded {
				b.Fatalf("hierarchical N-2 pair %v: pruned outcome differs from exhaustive: %+v vs %+v", p, kept, o)
			}
		}

		pairSc9 := scopf.BuildPairScenarios(benchDraws(sys9.Case.NB(), 1, 7), scopf.AllPairs(scopf.Contingencies(sys9.Case)))
		t0 := time.Now()
		islOuts := (&scopf.Engine{Base: sys9.Case, Workers: 1}).Run(pairSc9).Outcomes
		islNs := float64(time.Since(t0).Nanoseconds())
		sumIsl := scopf.Summarize(islOuts)
		if sumIsl.Islanded != len(pairSc9) {
			b.Fatalf("case9 N-2: expected all %d pairs to island, got %d", len(pairSc9), sumIsl.Islanded)
		}

		// --- warm/cold dispatch policy, per-system -----------------------
		// Each system trains its policy on its own screening log and is
		// re-screened with it against the cold baseline. The per-scenario
		// iteration guard is the acceptance invariant: the policy never
		// selects a mode slower than cold (this is what turns the case30
		// warm counter-regime from a hidden average into a dispatch
		// decision). On warm-favourable systems the conservative threshold
		// must not squander the headline speedup, so each row also reports
		// the in-sample policy cost against the always-warm baseline;
		// maxVsWarm > 0 enforces a ceiling on that ratio (1.05 on case57:
		// within 5 % of the recorded warm speedup).
		policyRow := func(name string, sys *core.System, m *mtl.Model, scenarios []scopf.Scenario, maxVsWarm float64) map[string]any {
			samples := scopf.CollectPolicySamples(&scopf.Engine{Base: sys.Case, Model: m, Workers: 1}, scenarios)
			pol := scopf.TrainPolicy(samples)
			if pol == nil {
				b.Fatalf("%s policy: screening log produced no samples", name)
			}
			hurts, winners, retained := 0, 0, 0
			policyCost, warmCost := 0, 0
			for _, s := range samples {
				if pol.UseWarm(s.Feat) {
					policyCost += s.WarmIters
				} else {
					policyCost += s.ColdIters
				}
				warmCost += s.WarmIters
				switch {
				case s.WarmHurts():
					hurts++
					if pol.UseWarm(s.Feat) {
						b.Fatalf("%s policy: accepts a warm start measured slower than cold", name)
					}
				case s.WarmWins():
					winners++
					if pol.UseWarm(s.Feat) {
						retained++
					}
				}
			}
			var polOuts, coldOuts []scopf.Outcome
			coldNs, polNs := measurePair(1, func() {
				coldOuts = (&scopf.Engine{Base: sys.Case, Workers: 1}).Run(scenarios).Outcomes
			}, func() {
				polOuts = (&scopf.Engine{Base: sys.Case, Model: m, Workers: 1, Policy: pol}).Run(scenarios).Outcomes
			})
			polIters, coldIters := 0, 0
			for i := range polOuts {
				p, cd := polOuts[i], coldOuts[i]
				if p.Err == nil && cd.Err == nil && cd.Feasible && p.Iterations > cd.Iterations {
					b.Fatalf("%s policy: scenario %d slower than cold (%d > %d iterations)", name, i, p.Iterations, cd.Iterations)
				}
				polIters += p.Iterations
				coldIters += cd.Iterations
			}
			vsWarm := float64(policyCost) / float64(warmCost)
			if maxVsWarm > 0 && vsWarm > maxVsWarm {
				b.Fatalf("%s policy: in-sample cost is %.2fx the always-warm baseline (ceiling %.2fx)", name, vsWarm, maxVsWarm)
			}
			sumPol := scopf.Summarize(polOuts)
			row := map[string]any{
				"scenarios":              len(scenarios),
				"samples":                len(samples),
				"warm_losses":            hurts,
				"warm_wins":              winners,
				"warm_wins_retained":     retained,
				"threshold":              pol.Threshold,
				"policy_cold":            sumPol.PolicyCold,
				"policy_iterations":      polIters,
				"cold_iterations":        coldIters,
				"iteration_speedup":      float64(coldIters) / float64(polIters),
				"wall_speedup":           coldNs / polNs,
				"cost_vs_always_warm":    vsWarm,
				"never_slower_than_cold": true, // per-scenario guard above, b.Fatal otherwise
			}
			return row
		}

		trainSystem := func(name string, nSamples, epochs int, seed int64) (*core.System, *mtl.Model) {
			sys := core.MustLoadSystem(name)
			set, err := sys.GenerateData(nSamples, seed)
			if err != nil {
				b.Fatal(err)
			}
			m, err := sys.TrainModel(mtl.VariantMTL, set, epochs, seed, nil)
			if err != nil {
				b.Fatal(err)
			}
			return sys, m
		}

		policy9 := policyRow("case9", sys9, m, sc9, 0)

		sys30, m30 := trainSystem("case30", 60, 150, 30)
		draws30 := benchDraws(sys30.Case.NB(), 3, 31)
		sc30 := scopf.BuildScenarios(draws30, scopf.Contingencies(sys30.Case)[:10])
		sc30 = append(sc30, scopf.BuildGenScenarios(draws30, scopf.GenContingencies(sys30.Case))...)
		policy30 := policyRow("case30", sys30, m30, sc30, 0)

		sys57, m57 := trainSystem("case57", 150, 150, 57)
		sc57 := scopf.BuildScenarios(benchDraws(sys57.Case.NB(), 2, 58), scopf.Contingencies(sys57.Case)[:6])
		policy57 := policyRow("case57", sys57, m57, sc57, 1.05)

		perScen := func(ns float64, n int) float64 { return ns / float64(n) }
		report := map[string]any{
			"benchmark": "scopf-screen",
			"produced_by": "go test -bench Screen (self-timed section; sequential workers=1, " +
				"see EXPERIMENTS.md §N-1 screening)",
			"case14_cold": map[string]any{
				"scenarios":              len(sc14),
				"contingencies":          len(sc14)/4 - 1,
				"naive_ns_per_scenario":  perScen(naiveNs, len(sc14)),
				"engine_ns_per_scenario": perScen(engineNs, len(sc14)),
				"speedup":                naiveNs / engineNs,
				"bit_identical":          true, // verified above, b.Fatal otherwise
			},
			"case9_warm_projection": map[string]any{
				"scenarios":              len(sc9),
				"contingencies":          len(sc9)/6 - 1,
				"naive_ns_per_scenario":  perScen(warmNaiveNs, len(sc9)),
				"engine_ns_per_scenario": perScen(warmEngineNs, len(sc9)),
				"speedup":                warmNaiveNs / warmEngineNs,
				"naive_warm_hits":        sumNaive.WarmConverged,
				"engine_warm_hits":       sumEng.WarmConverged,
				"engine_projected":       sumEng.Projected,
				"naive_mean_iterations":  sumNaive.MeanIterations,
				"engine_mean_iterations": sumEng.MeanIterations,
				"feasible_match":         true, // verified above, b.Fatal otherwise
			},
			"gen_outage": map[string]any{
				"case14_cold": map[string]any{
					"scenarios":              len(gsc14),
					"naive_ns_per_scenario":  perScen(genNaiveNs, len(gsc14)),
					"engine_ns_per_scenario": perScen(genEngineNs, len(gsc14)),
					"speedup":                genNaiveNs / genEngineNs,
					"bit_identical":          true, // verified above, b.Fatal otherwise
				},
				"case9_warm": map[string]any{
					"scenarios":              len(gsc9),
					"naive_ns_per_scenario":  perScen(gwNaiveNs, len(gsc9)),
					"engine_ns_per_scenario": perScen(gwEngineNs, len(gsc9)),
					"speedup":                gwNaiveNs / gwEngineNs,
					"naive_warm_hits":        gwSumNaive.WarmConverged,
					"engine_warm_hits":       gwSumEng.WarmConverged,
					"engine_projected":       gwSumEng.Projected,
					"feasible_match":         true, // verified above, b.Fatal otherwise
				},
			},
			"n2_pairs": map[string]any{
				"case14_cold": map[string]any{
					"scenarios":              len(pairSc14),
					"naive_ns_per_scenario":  perScen(pairNaiveNs, len(pairSc14)),
					"engine_ns_per_scenario": perScen(pairEngineNs, len(pairSc14)),
					"speedup":                pairNaiveNs / pairEngineNs,
					"bit_identical":          true, // verified above, b.Fatal otherwise
				},
				"case14_hierarchical": map[string]any{
					"top_k":           topK,
					"exhaustive_ns":   exhNs,
					"pruned_ns":       prunedNs,
					"prune_speedup":   exhNs / prunedNs,
					"pairs_total":     len(exh.Pairs),
					"pairs_screened":  len(pruned.Pairs),
					"pairs_skipped":   pruned.Skipped,
					"severe_pairs":    severe,
					"severe_retained": true, // verified above, b.Fatal otherwise
				},
				"case9_islanding": map[string]any{
					"pairs":          len(pairSc9),
					"islanded":       sumIsl.Islanded,
					"ns_per_pair":    perScen(islNs, len(pairSc9)),
					"solver_invoked": false, // all pairs classified by the connectivity check
				},
			},
			"policy": map[string]any{
				"case9":  policy9,
				"case30": policy30,
				"case57": policy57,
			},
			"warm_speedup": warmNaiveNs / warmEngineNs, // unitless ratio (naive/engine wall clock)
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_scopf.json", append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Printf("BENCH_scopf.json: warm N-1 screen %.2fx naive (projection: %d/%d warm vs %d/%d), cold case14 %.2fx bit-identical\n",
			warmNaiveNs/warmEngineNs, sumEng.WarmConverged, len(sc9), sumNaive.WarmConverged, len(sc9),
			naiveNs/engineNs)
		fmt.Printf("BENCH_scopf.json: gen-outage %.2fx (case14 cold) %.2fx (case9 warm); N-2 pairs %.2fx, hierarchy prunes %d/%d pairs (%.2fx, %d severe retained)\n",
			genNaiveNs/genEngineNs, gwNaiveNs/gwEngineNs, pairNaiveNs/pairEngineNs,
			pruned.Skipped, len(exh.Pairs), exhNs/prunedNs, severe)
		fmt.Printf("BENCH_scopf.json: policy case30 %.2fx vs cold (%v dispatched cold), case9/case57 keep their warm wins\n",
			policy30["iteration_speedup"], policy30["policy_cold"])
	})
}

// ---------------------------------------------------------------------------
// Paper-scale system benchmarks (RESULTS.md). BenchmarkPaperSystems runs the
// full offline+online pipeline once per embedded paper system — dataset
// generation, Smart-PGSim training, warm-vs-cold evaluation — with the
// bench-profile sizes below (smaller than core.TrainingDefaults so a full
// sweep stays in minutes), then times one warm online solve per b.N. Each
// completed system merges its row into BENCH_paper.json, so a filtered run
// (CI: -bench 'PaperSystems/case57$') writes just its systems and a full run
// writes all four. cmd/results renders the JSON into RESULTS.md, the
// paper-vs-reproduction comparison against the 2.60× average-speedup claim.

// paperBenchProfile holds the bench-profile offline sizes per system.
// case1354 is the beyond-paper scaling row (ROADMAP: 1000+ bus grids):
// the paper's own evaluation stops at case300, so its row demonstrates
// that the warm-start pipeline and the blocked KKT kernel carry past
// the paper's scale, not a comparison against a paper number.
var paperBenchProfile = map[string]struct{ draws, epochs int }{
	"case30":   {64, 200},
	"case57":   {48, 150},
	"case118":  {24, 100},
	"case300":  {12, 60},
	"case1354": {8, 40},
}

var (
	paperReportMu sync.Mutex
	paperReport   = map[string]map[string]any{}
)

// benchSkipLarge reports whether the 1354-bus rows should be skipped:
// `-short` or PGSIM_BENCH_SKIP_LARGE=1 (the CI smoke setting) drops
// them — one cold case1354 solve is ~10 s, dwarfing every other row —
// while full, ungated runs remain the quotable path. A gated run never
// truncates committed reports: skipped systems simply keep their
// on-disk rows (writePaperBenchReport / mergeKKTReport merge).
func benchSkipLarge() bool {
	return testing.Short() || os.Getenv("PGSIM_BENCH_SKIP_LARGE") == "1"
}

// BenchmarkPaperSystems is the scale-aware harness over the embedded
// paper systems; the timed operation is one warm online-pipeline solve.
func BenchmarkPaperSystems(b *testing.B) {
	for _, name := range []string{"case30", "case57", "case118", "case300", "case1354"} {
		if name == "case1354" && benchSkipLarge() {
			b.Run(name, func(b *testing.B) {
				b.Skip("case1354 gated by -short/PGSIM_BENCH_SKIP_LARGE; run ungated for the quotable row")
			})
			continue
		}
		b.Run(name, func(b *testing.B) { benchPaperSystem(b, name) })
	}
}

func benchPaperSystem(b *testing.B, name string) {
	prof := paperBenchProfile[name]
	sys := core.MustLoadSystem(name)
	set, err := sys.GenerateData(prof.draws, 42+int64(sys.Case.NB()))
	if err != nil {
		b.Fatal(err)
	}
	train, val := set.Split(0.75)
	model, err := sys.TrainModel(mtl.VariantSmartPGSim, train, prof.epochs, 17, nil)
	if err != nil {
		b.Fatal(err)
	}
	ev := core.Evaluate(sys, model, val, 0)

	// KKT fill of the bordered proxy matrix under each ordering, plus
	// the per-system selection Prepare made.
	kkt := kktProxyFor(sys.OPF)
	fill := map[string]int{}
	for _, ord := range []sparse.Ordering{sparse.OrderNatural, sparse.OrderRCM, sparse.OrderAMD} {
		f, err := sparse.FactorizeOpts(kkt, ord, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		fill[ord.String()] = f.NNZ()
	}
	// Label the ordering the solves actually ran with: Resolve replays
	// the same pattern-pure probe autoOrder uses (NOT the real-value
	// fills above, which can rank differently under pivoting).
	chosen := sys.OPF.Ordering().String()
	if ord := sys.OPF.Ordering(); ord == sparse.OrderAuto {
		chosen = "auto→" + ord.Resolve(kkt).String()
	}

	lay := sys.OPF.Lay
	row := map[string]any{
		"buses": sys.Case.NB(), "gens": sys.Case.NG(), "branches": sys.Case.NL(),
		"rated_branches": lay.NLRated, "neq": lay.NEq, "niq": lay.NIq,
		"draws": prof.draws, "epochs": prof.epochs, "problems": ev.NProblems,
		"cold_iters": ev.IterMIPS, "warm_iters": ev.IterSmart,
		"cold_ms_per_problem": float64(ev.TimeMIPS.Microseconds()) / 1000 / float64(ev.NProblems),
		"warm_ms_per_problem": float64(ev.TimeSmart.Microseconds()) / 1000 / float64(ev.NProblems),
		"success_rate":        ev.SR,
		"speedup":             ev.SU,
		"optimality_gap":      ev.CostDelta,
		"kkt_n":               kkt.NRows,
		"kkt_fill":            fill,
		"kkt_ordering":        chosen,
	}
	writePaperBenchReport(b, name, row)

	s := &val.Samples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.SolveWarm(model, s.Factors, s.Input)
	}
}

// kktProxyFor assembles the bordered KKT-shaped matrix of an OPF
// instance: Hessian-proxy diagonal plus JhᵀJh on the (1,1) block,
// bordered by the equality Jacobian — the structure every MIPS
// iteration factors.
func kktProxyFor(o *opf.OPF) *sparse.CSC {
	x := o.DefaultStart()
	_, jg := o.Equality(x)
	_, jh := o.FullInequality(x)
	nx, neq := o.Lay.NX, o.Lay.NEq
	kb := sparse.NewBuilder(nx+neq, nx+neq)
	for i := 0; i < nx; i++ {
		kb.Append(i, i, 4)
	}
	jt := jh.T() // column r of jt is inequality row r
	for r := 0; r < jt.NCols; r++ {
		lo, hi := jt.ColPtr[r], jt.ColPtr[r+1]
		for p1 := lo; p1 < hi; p1++ {
			for p2 := lo; p2 < hi; p2++ {
				kb.Append(jt.RowIdx[p1], jt.RowIdx[p2], jt.Val[p1]*jt.Val[p2])
			}
		}
	}
	kb.AppendCSC(nx, 0, 1, jg)
	kb.AppendCSC(0, nx, 1, jg.T())
	return kb.ToCSC()
}

// writePaperBenchReport merges one system's row into BENCH_paper.json.
// Rows already on disk are kept (fresh measurements override their own
// system only), so a filtered run — CI's case57-only smoke, say — never
// truncates a committed full-sweep report; the file is rewritten after
// every system so even an interrupted sweep leaves a consistent report.
func writePaperBenchReport(b *testing.B, name string, row map[string]any) {
	b.Helper()
	paperReportMu.Lock()
	defer paperReportMu.Unlock()
	if len(paperReport) == 0 {
		if buf, err := os.ReadFile("BENCH_paper.json"); err == nil {
			var prev struct {
				Systems map[string]map[string]any `json:"systems"`
			}
			if json.Unmarshal(buf, &prev) == nil {
				for k, v := range prev.Systems {
					paperReport[k] = v
				}
			}
		}
	}
	paperReport[name] = row
	sum, n := 0.0, 0
	for _, r := range paperReport {
		sum += r["speedup"].(float64)
		n++
	}
	report := map[string]any{
		"benchmark": "paper-systems",
		"produced_by": "go test -run '^$' -bench BenchmarkPaperSystems -benchtime 1x . " +
			"(bench-profile offline sizes; see EXPERIMENTS.md §Paper-scale sweep)",
		"paper_claim": map[string]any{
			"avg_speedup": 2.60,
			"source":      "conf_sc_DongXKL20 abstract: average 2.60x over MIPS on IEEE systems up to 300 buses",
		},
		"measured_avg_speedup": sum / float64(n),
		"systems":              paperReport,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_paper.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("BENCH_paper.json: %s warm speedup %.2fx (SR %.0f%%), %d/%d systems measured\n",
		name, row["speedup"].(float64), row["success_rate"].(float64)*100, n, len(paperBenchProfile))
}

var kktReportOnce sync.Once

// writeKKTBenchReport self-times the symbolic-reuse speedups over fixed
// repetition counts (independent of -benchtime) and writes BENCH_kkt.json,
// the machine-readable benchmark trajectory PERFORMANCE.md documents.
func writeKKTBenchReport(b *testing.B) {
	b.Helper()
	kktReportOnce.Do(func() {
		kkt := kktBenchMatrix()
		timeIt := func(reps int, f func() error) (nsPerOp float64) {
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				if err := f(); err != nil {
					b.Fatal(err)
				}
			}
			return float64(time.Since(t0).Nanoseconds()) / float64(reps)
		}

		const facReps = 200
		analyzeNs := timeIt(facReps, func() error {
			_, err := sparse.FactorizeOpts(kkt, sparse.OrderRCM, 1.0)
			return err
		})
		sym, _, err := sparse.Analyze(kkt, sparse.OrderRCM, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		refactorNs := timeIt(facReps, func() error {
			_, err := sym.Refactor(kkt)
			return err
		})

		fill := map[string]int{}
		for _, ord := range []sparse.Ordering{sparse.OrderNatural, sparse.OrderRCM, sparse.OrderAMD} {
			f, err := sparse.FactorizeOpts(kkt, ord, 1.0)
			if err != nil {
				b.Fatal(err)
			}
			fill[ord.String()] = f.NNZ()
		}

		sys := core.MustLoadSystem("case14")
		fac := make([]float64, sys.Case.NB())
		for i := range fac {
			fac[i] = 1.03
		}
		const solveReps = 10
		solve := func(noReuse bool) func() error {
			base := opf.Prepare(sys.Case)
			return func() error {
				_, err := base.Perturb(fac).Solve(nil, opf.Options{NoKKTReuse: noReuse})
				return err
			}
		}
		reuseNs := timeIt(solveReps, solve(false))
		noReuseNs := timeIt(solveReps, solve(true))

		mergeKKTReport(b, map[string]any{
			"benchmark": "kkt-symbolic-reuse",
			"produced_by": "go test -bench 'KKTFactor|MIPSSolve' (self-timed section; " +
				"see PERFORMANCE.md)",
			"case":    "case14",
			"kkt_n":   kkt.NRows,
			"kkt_nnz": kkt.NNZ(),
			"entries": []map[string]any{
				{"name": "KKTFactor/analyze", "ns_per_op": analyzeNs, "ops": facReps},
				{"name": "KKTFactor/refactor", "ns_per_op": refactorNs, "ops": facReps},
				{"name": "MIPSSolve/reuse", "ns_per_op": reuseNs, "ops": solveReps},
				{"name": "MIPSSolve/noreuse", "ns_per_op": noReuseNs, "ops": solveReps},
			},
			"fill_by_ordering":            fill,
			"speedup_refactor_vs_analyze": analyzeNs / refactorNs,
			"speedup_mips_solve":          noReuseNs / reuseNs,
		})
		fmt.Printf("BENCH_kkt.json: refactor %.1fx faster than analyze, cold MIPS solve %.2fx faster with reuse\n",
			analyzeNs/refactorNs, noReuseNs/reuseNs)
	})
}

var kktReportMu sync.Mutex

// mergeKKTReport read-modify-writes BENCH_kkt.json: the given keys
// overwrite their own top-level entries and everything else already on
// disk is preserved, so the symbolic-reuse, blocked-kernel and
// parallel-kernel sections regenerate independently without truncating
// each other (the same convention writePaperBenchReport uses for
// per-system rows). Within a section, per-system rows already on disk
// survive a run that measured fewer systems (a gated or smoke run), so
// partial regeneration never loses the case1354 row.
func mergeKKTReport(b *testing.B, sections map[string]any) {
	b.Helper()
	kktReportMu.Lock()
	defer kktReportMu.Unlock()
	report := map[string]any{}
	if buf, err := os.ReadFile("BENCH_kkt.json"); err == nil {
		// A corrupt or absent file is simply rebuilt from this run.
		_ = json.Unmarshal(buf, &report)
	}
	for k, v := range sections {
		if newSec, ok := v.(map[string]any); ok {
			if oldSec, ok := report[k].(map[string]any); ok {
				newSys, okNew := newSec["systems"].(map[string]any)
				oldSys, okOld := oldSec["systems"].(map[string]any)
				if okNew && okOld {
					for name, row := range oldSys {
						if _, fresh := newSys[name]; !fresh {
							newSys[name] = row
						}
					}
				}
			}
		}
		report[k] = v
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_kkt.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

var blockedReportOnce sync.Once

// BenchmarkRefactorBlocked races the blocked panel LU kernel against
// the scalar column kernel on the bordered KKT proxies of the three
// largest embedded systems (case118, case300, case1354) and writes the
// "blocked_kernel" section of BENCH_kkt.json. Two invariants are
// enforced with b.Fatal rather than merely reported: both kernels must
// produce factors with identical fill whose solves agree to 1e-9 on a
// deterministic RHS, and both warm RefactorInto paths must run
// allocation-free. The b.N loop itself times the headline case300
// blocked refactorization.
func BenchmarkRefactorBlocked(b *testing.B) {
	blockedReportOnce.Do(func() { writeBlockedKernelReport(b) })
	sys := core.MustLoadSystem("case300")
	kkt := kktProxyFor(sys.OPF)
	sym, _, err := sparse.Analyze(kkt, sparse.OrderAMD, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	f := sym.NewFactors()
	ws := sym.NewRefactorWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sym.RefactorBlockedInto(f, ws, kkt); err != nil {
			b.Fatal(err)
		}
	}
}

// writeBlockedKernelReport self-times scalar vs blocked refactorization
// over fixed repetition counts (independent of -benchtime) and merges
// the per-system rows into BENCH_kkt.json.
func writeBlockedKernelReport(b *testing.B) {
	b.Helper()
	reps := map[string]int{"case118": 100, "case300": 40, "case1354": 10}
	names := []string{"case118", "case300", "case1354"}
	if benchSkipLarge() {
		names = names[:2]
		fmt.Println("BENCH_kkt.json: blocked_kernel case1354 row gated by -short/PGSIM_BENCH_SKIP_LARGE (on-disk row preserved)")
	}
	systems := map[string]any{}
	for _, name := range names {
		sys := core.MustLoadSystem(name)
		kkt := kktProxyFor(sys.OPF)
		sym, _, err := sparse.Analyze(kkt, sparse.OrderAMD, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		ps := sym.PanelStats()

		fScalar := sym.NewFactors()
		wsScalar := sym.NewRefactorWorkspace()
		fBlocked := sym.NewFactors()
		wsBlocked := sym.NewRefactorWorkspace()
		if err := sym.RefactorInto(fScalar, wsScalar, kkt); err != nil {
			b.Fatal(err)
		}
		if err := sym.RefactorBlockedInto(fBlocked, wsBlocked, kkt); err != nil {
			b.Fatal(err)
		}

		// Equivalence pin: identical fill, and solves that agree on a
		// deterministic RHS to 1e-9 relative — the blocked kernel must
		// be a pure reimplementation, not an approximation.
		if fScalar.NNZ() != fBlocked.NNZ() {
			b.Fatalf("%s: scalar fill %d != blocked fill %d", name, fScalar.NNZ(), fBlocked.NNZ())
		}
		r := rand.New(rand.NewSource(42))
		rhs := make(la.Vector, kkt.NRows)
		for i := range rhs {
			rhs[i] = r.NormFloat64()
		}
		x1, x2 := fScalar.Solve(rhs), fBlocked.Solve(rhs)
		var scale float64
		for i := range x1 {
			if a := math.Abs(x1[i]); a > scale {
				scale = a
			}
		}
		for i := range x1 {
			if d := math.Abs(x1[i] - x2[i]); d > 1e-9*scale {
				b.Fatalf("%s: scalar and blocked solves diverge at %d: %v vs %v (|x|∞=%v)",
					name, i, x1[i], x2[i], scale)
			}
		}

		// Warm-path allocation pin: after the first refactorization both
		// kernels must reuse their factors and workspace exactly.
		scalarAllocs := testing.AllocsPerRun(5, func() {
			if err := sym.RefactorInto(fScalar, wsScalar, kkt); err != nil {
				b.Fatal(err)
			}
		})
		blockedAllocs := testing.AllocsPerRun(5, func() {
			if err := sym.RefactorBlockedInto(fBlocked, wsBlocked, kkt); err != nil {
				b.Fatal(err)
			}
		})
		if scalarAllocs != 0 || blockedAllocs != 0 {
			b.Fatalf("%s: warm refactor allocates (scalar %.0f, blocked %.0f allocs/op)",
				name, scalarAllocs, blockedAllocs)
		}

		n := reps[name]
		timeIt := func(f func() error) float64 {
			t0 := time.Now()
			for i := 0; i < n; i++ {
				if err := f(); err != nil {
					b.Fatal(err)
				}
			}
			return float64(time.Since(t0).Nanoseconds()) / float64(n)
		}
		scalarNs := timeIt(func() error { return sym.RefactorInto(fScalar, wsScalar, kkt) })
		blockedNs := timeIt(func() error { return sym.RefactorBlockedInto(fBlocked, wsBlocked, kkt) })

		systems[name] = map[string]any{
			"kkt_n":         kkt.NRows,
			"kkt_nnz":       kkt.NNZ(),
			"lu_nnz":        fScalar.NNZ(),
			"scalar_ns":     scalarNs,
			"blocked_ns":    blockedNs,
			"speedup":       scalarNs / blockedNs,
			"ops":           n,
			"supernodes":    ps.Supernodes,
			"panel_cols":    ps.PanelCols,
			"max_width":     ps.MaxWidth,
			"panel_frac":    ps.PanelFrac,
			"auto_blocked":  ps.Blocked,
			"scalar_allocs": scalarAllocs,
			"warm_allocs":   blockedAllocs,
		}
		fmt.Printf("BENCH_kkt.json: %s blocked refactor %.2fx vs scalar (%.2f ms vs %.2f ms, %d supernodes, %.0f%% panel flops)\n",
			name, scalarNs/blockedNs, blockedNs/1e6, scalarNs/1e6, ps.Supernodes, 100*ps.PanelFrac)
	}
	mergeKKTReport(b, map[string]any{
		"blocked_kernel": map[string]any{
			"produced_by": "go test -run '^$' -bench BenchmarkRefactorBlocked -benchtime 1x . " +
				"(self-timed section; equivalence and zero-alloc pins enforced with b.Fatal)",
			"ordering": "amd",
			"systems":  systems,
		},
	})
}

var parallelReportOnce sync.Once

// BenchmarkParallelKernel races the elimination-tree scheduled parallel
// refactorization and the level-scheduled parallel triangular solves
// against the serial kernels on the bordered KKT proxies of the three
// largest embedded systems, at 1/2/4/8 threads, and writes the
// "parallel_kernel" section of BENCH_kkt.json. Determinism is enforced
// with b.Fatal, not merely reported: at every thread count the factors
// must be bit-identical (EqualValues) to the 1-thread factors and the
// solve bit-identical to the 1-thread solve. The report records
// GOMAXPROCS alongside the timings — on a single-core host every
// thread count executes on one CPU (the pool has no workers), so the
// per-thread numbers measure scheduling overhead, not speedup; quote
// them only with the recorded GOMAXPROCS (PERFORMANCE.md). The b.N
// loop itself times the 4-thread case300 refactorization.
func BenchmarkParallelKernel(b *testing.B) {
	parallelReportOnce.Do(func() { writeParallelKernelReport(b) })
	sys := core.MustLoadSystem("case300")
	kkt := kktProxyFor(sys.OPF)
	sym, _, err := sparse.Analyze(kkt, sparse.OrderAMD, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	slot := sym.NewFactorSlot()
	slot.SetThreads(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slot.Refactor(kkt); err != nil {
			b.Fatal(err)
		}
	}
}

// writeParallelKernelReport self-times the threaded factor slot over
// fixed repetition counts (independent of -benchtime) and merges the
// per-system rows into BENCH_kkt.json.
func writeParallelKernelReport(b *testing.B) {
	b.Helper()
	reps := map[string]int{"case118": 100, "case300": 40, "case1354": 10}
	threadCounts := []int{1, 2, 4, 8}
	names := []string{"case118", "case300", "case1354"}
	if benchSkipLarge() {
		names = names[:2]
		fmt.Println("BENCH_kkt.json: parallel_kernel case1354 row gated by -short/PGSIM_BENCH_SKIP_LARGE (on-disk row preserved)")
	}
	systems := map[string]any{}
	for _, name := range names {
		sys := core.MustLoadSystem(name)
		kkt := kktProxyFor(sys.OPF)
		sym, _, err := sparse.Analyze(kkt, sparse.OrderAMD, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		n := kkt.NRows
		r := rand.New(rand.NewSource(42))
		rhs := make(la.Vector, n)
		for i := range rhs {
			rhs[i] = r.NormFloat64()
		}

		// 1-thread reference factors and solution.
		refSlot := sym.NewFactorSlot()
		refSlot.SetThreads(1)
		refF, err := refSlot.Refactor(kkt)
		if err != nil {
			b.Fatal(err)
		}
		refX := make(la.Vector, n)
		refSlot.SolveInto(refF, refX, rhs, make(la.Vector, n))

		var oneThreadFactorNs, oneThreadSolveNs float64
		threads := map[string]any{}
		for _, t := range threadCounts {
			slot := sym.NewFactorSlot()
			slot.SetThreads(t)
			f, err := slot.Refactor(kkt)
			if err != nil {
				b.Fatal(err)
			}
			// Bit-identity pins: the parallel kernels are schedules of the
			// serial kernels, not reimplementations.
			if !f.EqualValues(refF) {
				b.Fatalf("%s: %d-thread factors differ from serial", name, t)
			}
			x := make(la.Vector, n)
			work := make(la.Vector, n)
			slot.SolveInto(f, x, rhs, work)
			for i := range x {
				if math.Float64bits(x[i]) != math.Float64bits(refX[i]) {
					b.Fatalf("%s: %d-thread solve differs from serial at %d: %v vs %v",
						name, t, i, x[i], refX[i])
				}
			}

			rep := reps[name]
			t0 := time.Now()
			for i := 0; i < rep; i++ {
				if _, err := slot.Refactor(kkt); err != nil {
					b.Fatal(err)
				}
			}
			factorNs := float64(time.Since(t0).Nanoseconds()) / float64(rep)
			solveReps := rep * 10
			t0 = time.Now()
			for i := 0; i < solveReps; i++ {
				slot.SolveInto(f, x, rhs, work)
			}
			solveNs := float64(time.Since(t0).Nanoseconds()) / float64(solveReps)
			if t == 1 {
				oneThreadFactorNs, oneThreadSolveNs = factorNs, solveNs
			}
			threads[fmt.Sprintf("%d", t)] = map[string]any{
				"factor_ns":      factorNs,
				"solve_ns":       solveNs,
				"factor_speedup": oneThreadFactorNs / factorNs,
				"solve_speedup":  oneThreadSolveNs / solveNs,
				"bit_identical":  true, // pinned above, b.Fatal otherwise
			}
		}
		systems[name] = map[string]any{
			"kkt_n":   n,
			"kkt_nnz": kkt.NNZ(),
			"lu_nnz":  refF.NNZ(),
			"ops":     reps[name],
			"threads": threads,
		}
		f4 := threads["4"].(map[string]any)
		fmt.Printf("BENCH_kkt.json: %s parallel refactor at 4 threads %.2fx vs 1 thread (GOMAXPROCS=%d), bit-identical at 1/2/4/8\n",
			name, f4["factor_speedup"].(float64), runtime.GOMAXPROCS(0))
	}
	mergeKKTReport(b, map[string]any{
		"parallel_kernel": map[string]any{
			"produced_by": "go test -run '^$' -bench BenchmarkParallelKernel -benchtime 1x . " +
				"(self-timed section; bit-identity to the serial kernels enforced with b.Fatal)",
			"ordering":   "amd",
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"note": "speedups are meaningful only relative to the recorded gomaxprocs; " +
				"with gomaxprocs=1 the worker pool is empty and every thread count runs serially on one CPU",
			"systems": systems,
		},
	})
}

// ---------------------------------------------------------------------------
// Multi-period trajectory benchmarks (BENCH_trajectory.json). The study:
// on each system, the same synthetic load trajectory is solved cold,
// with warm-start chaining (each step starts from the previous step's
// full primal/dual solution) and with per-step model prediction. The
// report records both speedups over cold and the per-system winner —
// the chain-vs-predict crossover — plus a served-replay pin: the same
// trajectory streamed through POST /v1/trajectory must be bit-identical
// to the offline runner, enforced with b.Fatal.

// trajBenchProfile holds the bench-profile sizes per system: offline
// training sizes for the predict mode (paper-bench scale) and the
// trajectory itself.
var trajBenchProfile = map[string]struct{ draws, epochs int }{
	"case14":  {80, 200},
	"case57":  {48, 150},
	"case118": {24, 100},
}

const (
	trajBenchSteps  = 8
	trajBenchSeed   = 21
	trajBenchAmp    = 0.03
	trajBenchSpread = 0.01
	trajBenchFrac   = 0.2
)

var trajectoryReportOnce sync.Once

// BenchmarkTrajectory times one chain-mode trajectory on case14; the
// first invocation writes BENCH_trajectory.json (the crossover study
// over case14/case57/case118 plus the served-replay pin).
func BenchmarkTrajectory(b *testing.B) {
	writeTrajectoryBenchReport(b)
	sys := core.MustLoadSystem("case14")
	traj, err := horizon.Synthetic(sys.Case.NB(), trajBenchSteps, trajBenchSeed, trajBenchAmp, trajBenchSpread)
	if err != nil {
		b.Fatal(err)
	}
	ramp := horizon.RampFromRange(sys.OPF, trajBenchFrac)
	r := &horizon.Runner{Prepared: sys.OPF, Mode: horizon.ModeChain, RampUp: ramp, RampDown: ramp, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(traj)
		if err != nil || res.Converged == 0 {
			b.Fatalf("trajectory failed: %v", err)
		}
	}
}

// runTrajMode solves the bench trajectory on sys in one mode and
// returns the result (Workers=1: per-step costs, not throughput).
func runTrajMode(b *testing.B, sys *core.System, mode horizon.Mode, m *mtl.Model, traj *horizon.Trajectory) *horizon.Result {
	b.Helper()
	ramp := horizon.RampFromRange(sys.OPF, trajBenchFrac)
	r := &horizon.Runner{Prepared: sys.OPF, Mode: mode, Model: m, RampUp: ramp, RampDown: ramp, Workers: 1}
	res, err := r.Run(traj)
	if err != nil {
		b.Fatalf("%s %s trajectory: %v", sys.Name, mode, err)
	}
	return res
}

// writeTrajectoryBenchReport measures the chain-vs-predict crossover on
// case14/case57/case118 and writes BENCH_trajectory.json. Before any
// timing, the case14 chain trajectory is replayed through the streaming
// endpoint and pinned bit-identical to the offline runner.
func writeTrajectoryBenchReport(b *testing.B) {
	b.Helper()
	trajectoryReportOnce.Do(func() {
		systems := map[string]map[string]any{}
		var replay map[string]any
		for _, name := range []string{"case14", "case57", "case118"} {
			prof := trajBenchProfile[name]
			sys := core.MustLoadSystem(name)
			set, err := sys.GenerateData(prof.draws, 42+int64(sys.Case.NB()))
			if err != nil {
				b.Fatal(err)
			}
			train, _ := set.Split(0.75)
			model, err := sys.TrainModel(mtl.VariantSmartPGSim, train, prof.epochs, 17, nil)
			if err != nil {
				b.Fatal(err)
			}
			traj, err := horizon.Synthetic(sys.Case.NB(), trajBenchSteps, trajBenchSeed, trajBenchAmp, trajBenchSpread)
			if err != nil {
				b.Fatal(err)
			}
			if name == "case14" {
				replay = pinServedReplay(b, sys, traj)
			}

			// One untimed warm-up per mode, then alternate the timed
			// repetitions so allocator drift cannot bias the ratios.
			modes := []horizon.Mode{horizon.ModeCold, horizon.ModeChain, horizon.ModePredict}
			results := make([]*horizon.Result, len(modes))
			ns := make([]float64, len(modes))
			for i, mode := range modes {
				results[i] = runTrajMode(b, sys, mode, model, traj)
			}
			const reps = 2
			for rep := 0; rep < reps; rep++ {
				for i, mode := range modes {
					t0 := time.Now()
					runTrajMode(b, sys, mode, model, traj)
					ns[i] += float64(time.Since(t0).Nanoseconds())
				}
			}
			coldNs, chainNs, predictNs := ns[0]/reps, ns[1]/reps, ns[2]/reps
			cold, chain, predict := results[0], results[1], results[2]
			if cold.Converged == 0 {
				b.Fatalf("%s: cold trajectory did not converge at all", name)
			}
			winner := "chain"
			if predictNs < chainNs {
				winner = "predict"
			}
			systems[name] = map[string]any{
				"buses": sys.Case.NB(), "draws": prof.draws, "epochs": prof.epochs,
				"cold_ms_per_step":        coldNs / 1e6 / trajBenchSteps,
				"chain_ms_per_step":       chainNs / 1e6 / trajBenchSteps,
				"predict_ms_per_step":     predictNs / 1e6 / trajBenchSteps,
				"chain_speedup_vs_cold":   coldNs / chainNs,
				"predict_speedup_vs_cold": coldNs / predictNs,
				"winner":                  winner,
				"cold_iterations":         cold.Iterations,
				"chain_iterations":        chain.Iterations,
				"predict_iterations":      predict.Iterations,
				"chain_warm_hits":         chain.WarmHits,
				"predict_warm_hits":       predict.WarmHits,
				"converged":               cold.Converged,
			}
			fmt.Printf("BENCH_trajectory.json: %s chain %.2fx, predict %.2fx vs cold (winner %s, %d/%d warm-chained)\n",
				name, coldNs/chainNs, coldNs/predictNs, winner, chain.WarmHits, trajBenchSteps)
		}
		report := map[string]any{
			"benchmark": "trajectory",
			"produced_by": "go test -run '^$' -bench BenchmarkTrajectory -benchtime 1x . " +
				"(chain-vs-predict crossover; see EXPERIMENTS.md §Trajectory crossover)",
			"steps": trajBenchSteps, "seed": trajBenchSeed,
			"amp": trajBenchAmp, "spread": trajBenchSpread, "ramp_frac": trajBenchFrac,
			"replay":  replay,
			"systems": systems,
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_trajectory.json", append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	})
}

// pinServedReplay streams the bench trajectory through POST
// /v1/trajectory (chain mode, no model) and fails the benchmark unless
// every step is bit-identical — flags, iterations, cost and dispatch —
// to the offline runner on the same prepared system.
func pinServedReplay(b *testing.B, sys *core.System, traj *horizon.Trajectory) map[string]any {
	b.Helper()
	ramp := horizon.RampFromRange(sys.OPF, trajBenchFrac)
	r := &horizon.Runner{Prepared: sys.OPF, Mode: horizon.ModeChain, RampUp: ramp, RampDown: ramp, Workers: 1}
	ref, err := r.Run(traj)
	if err != nil {
		b.Fatal(err)
	}

	srv := serve.New(serve.Config{})
	defer srv.Close()
	srv.AddSystem(sys, nil)
	body := fmt.Sprintf(`{"system":%q,"steps":%d,"mode":"chain","seed":%d,"amp":%v,"spread":%v,"ramp_frac":%v}`,
		sys.Name, trajBenchSteps, trajBenchSeed, trajBenchAmp, trajBenchSpread, trajBenchFrac)
	req := httptest.NewRequest(http.MethodPost, "/v1/trajectory", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("served replay: status %d (%s)", rec.Code, rec.Body.String())
	}
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	if len(lines) != trajBenchSteps+1 {
		b.Fatalf("served replay: %d lines, want %d steps + summary", len(lines), trajBenchSteps)
	}
	for i, sr := range ref.Steps {
		var ln serve.TrajectoryStep
		if err := json.Unmarshal([]byte(lines[i]), &ln); err != nil {
			b.Fatalf("served replay line %d: %v", i, err)
		}
		if ln.Step != i || ln.Converged != sr.Converged || ln.Warm != sr.WarmUsed ||
			ln.Iterations != sr.Iterations || ln.Cost != sr.Cost {
			b.Fatalf("served replay diverges at step %d: %+v vs offline %+v", i, ln, sr)
		}
		for g := range ln.Pg {
			if ln.Pg[g] != sr.Result.Pg[g] {
				b.Fatalf("served replay step %d gen %d: Pg %v != offline %v", i, g, ln.Pg[g], sr.Result.Pg[g])
			}
		}
	}
	return map[string]any{
		"system": sys.Name, "steps": trajBenchSteps,
		"served_bit_identical": true,
	}
}
