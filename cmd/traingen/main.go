// Command traingen generates a labelled training dataset for a test
// system: ±10 % load samples each solved to optimality, serialized with
// encoding/gob for cmd/train.
//
// Usage:
//
//	traingen -case case9 -n 1000 -out case9.ds
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traingen: ")
	caseName := flag.String("case", "case9", "test system")
	n := flag.Int("n", 0, "number of load samples (0 = per-system default, see core.TrainingDefaults; the paper uses 10,000)")
	seed := flag.Int64("seed", 1, "sampling seed")
	out := flag.String("out", "", "output file (default <case>.ds)")
	workers := flag.Int("workers", 0, "parallel solve workers (0 = PGSIM_WORKERS or all cores)")
	flag.Parse()
	if *out == "" {
		*out = *caseName + ".ds"
	}
	batch.SetDefaultWorkers(*workers)

	sys, err := core.LoadSystem(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	if *n == 0 {
		*n, _ = core.TrainingDefaults(sys.Case.NB())
		log.Printf("using the %s default of %d samples (-n overrides)", sys.Name, *n)
	}
	t0 := time.Now()
	set, err := sys.GenerateData(*n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := set.Save(f); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d samples (%d failed draws) to %s in %v",
		len(set.Samples), set.Failed, *out, time.Since(t0).Round(time.Millisecond))
	log.Printf("mean cold-start: %.1f iterations, %v per problem",
		set.MeanIterations(), set.MeanSolveTime().Round(time.Microsecond))
}
