// Command horizon runs multi-period OPF trajectories: a deterministic
// synthetic load forecast (smooth ramp profile × per-step noise) solved
// step by step with per-generator ramp limits coupling each step to the
// previous dispatch. Warm-start modes: chain (each step starts from the
// previous step's full primal/dual solution, projected across layout
// changes), predict (a trained MTL model predicts each step's start) and
// cold. Multiple trajectories fan out on the parallel worker pool with
// per-trajectory worker affinity; results are bit-identical for any
// worker count and replay the /v1/trajectory stream exactly.
//
// Usage:
//
//	horizon -case case14 -steps 24
//	horizon -case case14 -steps 24 -mode cold               # cold baseline
//	horizon -case case9 -steps 12 -train 60 -mode predict   # model warm starts
//	horizon -case case30 -steps 24 -interval 15 -ramp 0.5   # tighter ramp coupling
//	horizon -case case14 -steps 24 -trajectories 8 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"repro/internal/batch"
	"repro/internal/casegen"
	"repro/internal/core"
	"repro/internal/horizon"
	"repro/internal/mtl"
	"repro/internal/opf"
	"repro/internal/sparse"
)

// maxSteps bounds one trajectory; far above any realistic horizon (a
// week of 5-minute intervals) while keeping typos like -steps 1e9 from
// running forever.
const maxSteps = 4096

func main() {
	log.SetFlags(0)
	log.SetPrefix("horizon: ")
	caseName := flag.String("case", "case9", "built-in system (case5, case9, case14, case30, case39, case57, case118, case300)")
	steps := flag.Int("steps", 12, "trajectory length in dispatch intervals")
	interval := flag.Float64("interval", 5, "minutes per dispatch interval; scales the per-step ramp window (-ramp is per hour)")
	modeName := flag.String("mode", "chain", "warm-start mode: chain, predict or cold")
	seed := flag.Int64("seed", 1, "forecast noise seed (same seed replays bit-identically)")
	amp := flag.Float64("amp", 0.05, "amplitude of the smooth load ramp profile, in [0, 1)")
	spread := flag.Float64("spread", 0.02, "half-width of the per-step forecast noise, in [0, 1)")
	ramp := flag.Float64("ramp", 1.0, "ramp limit as a fraction of each unit's dispatch range per hour (0 disables ramp coupling)")
	nTraj := flag.Int("trajectories", 1, "independent trajectories to fan out (seeds seed, seed+1, …)")
	trainN := flag.Int("train", 0, "train a warm-start model on this many samples first (needed for -mode predict)")
	epochs := flag.Int("epochs", 0, "training epochs for -train (0 = per-system default)")
	variantName := flag.String("variant", "mtl", "model variant for -train: sep, mtl or smartpgsim")
	workers := flag.Int("workers", 0, "worker pool size (0 = PGSIM_WORKERS or all cores)")
	jsonOut := flag.Bool("json", false, "print a machine-readable JSON summary instead of tables")
	verbose := flag.Bool("v", false, "print one row per step")
	solverThreads := flag.Int("solver-threads", 0, "threads per KKT factorization/solve, capped by the worker budget (0 = PGSIM_SOLVER_THREADS or 1)")
	flag.Parse()
	batch.SetDefaultWorkers(*workers)
	sparse.SetDefaultSolverThreads(*solverThreads)

	// Explicit validation with actionable errors: a zero or negative
	// horizon or interval is always a typo, not a degenerate run.
	if *steps <= 0 {
		log.Fatalf("-steps %d out of range: a trajectory needs a positive number of intervals (want 1..%d)", *steps, maxSteps)
	}
	if *steps > maxSteps {
		log.Fatalf("-steps %d exceeds the limit of %d intervals", *steps, maxSteps)
	}
	if *interval <= 0 || math.IsNaN(*interval) || math.IsInf(*interval, 0) {
		log.Fatalf("-interval %v out of range: the dispatch interval must be a positive number of minutes", *interval)
	}
	if *ramp < 0 || math.IsNaN(*ramp) {
		log.Fatalf("-ramp %v out of range: want a non-negative fraction of the dispatch range per hour (0 disables)", *ramp)
	}
	if *nTraj <= 0 {
		log.Fatalf("-trajectories %d out of range: want a positive count", *nTraj)
	}
	mode, err := horizon.ParseMode(*modeName)
	if err != nil {
		log.Fatal(err)
	}
	if mode == horizon.ModePredict && *trainN <= 0 {
		log.Fatal("-mode predict needs a trained model: set -train N")
	}

	c, err := casegen.Paper(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	base := opf.Prepare(c)

	var model *mtl.Model
	if *trainN > 0 {
		variant, err := mtl.ParseVariant(*variantName)
		if err != nil {
			log.Fatal(err)
		}
		sys := &core.System{Name: c.Name, Case: c, OPF: base}
		ep := *epochs
		if ep == 0 {
			_, ep = core.TrainingDefaults(c.NB())
		}
		log.Printf("training: %d samples, %d epochs on %s", *trainN, ep, c.Name)
		set, err := sys.GenerateData(*trainN, *seed)
		if err != nil {
			log.Fatal(err)
		}
		train, _ := set.Split(0.8)
		model, err = sys.TrainModel(variant, train, ep, *seed, nil)
		if err != nil {
			log.Fatal(err)
		}
	}

	// The per-step ramp window is the hourly rate scaled to the interval.
	frac := *ramp * *interval / 60
	rampVec := horizon.RampFromRange(base, frac)

	trajs := make([]*horizon.Trajectory, *nTraj)
	for i := range trajs {
		trajs[i], err = horizon.Synthetic(c.NB(), *steps, *seed+int64(i), *amp, *spread)
		if err != nil {
			log.Fatal(err)
		}
	}

	r := &horizon.Runner{
		Base:     c,
		Prepared: base,
		Mode:     mode,
		Model:    model,
		RampUp:   rampVec,
		RampDown: rampVec,
		Workers:  *workers,
	}
	t0 := time.Now()
	results, err := r.RunBatch(trajs)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)

	if *jsonOut {
		printJSON(c.Name, mode, *steps, *interval, frac, results, elapsed)
		return
	}
	total := *nTraj * *steps
	fmt.Printf("case %s: %d trajectories × %d steps (%s mode, %.0f-minute intervals) in %v — %.1f steps/s\n",
		c.Name, *nTraj, *steps, mode, *interval, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	if frac > 0 {
		fmt.Printf("ramp: %.1f%% of each unit's dispatch range per step\n", 100*frac)
	}
	fmt.Printf("workers: %d\n", batch.Workers(*workers))
	fmt.Printf("\n%6s %10s %6s %6s %8s %10s %10s\n", "traj", "converged", "warm", "cold", "iters", "binding", "solve")
	for i, res := range results {
		binding := 0
		for _, sr := range res.Steps {
			binding += sr.RampBinding
		}
		fmt.Printf("%6d %7d/%-2d %6d %6d %8d %10d %10v\n",
			i, res.Converged, len(res.Steps), res.WarmHits, res.ColdRestarts,
			res.Iterations, binding, res.SolveTime.Round(time.Millisecond))
	}
	if *verbose {
		for i, res := range results {
			fmt.Printf("\ntrajectory %d (seed %d):\n", i, *seed+int64(i))
			fmt.Printf("%6s %10s %6s %8s %10s %14s\n", "step", "status", "warm", "binding", "iters", "cost ($/hr)")
			for _, sr := range res.Steps {
				status := "ok"
				switch {
				case sr.Err != nil:
					status = "error"
				case !sr.Converged:
					status = "diverged"
				}
				warm := "-"
				if sr.WarmUsed {
					warm = "yes"
				} else if sr.ColdRestart {
					warm = "cold"
				}
				fmt.Printf("%6d %10s %6s %8d %10d %14.2f\n",
					sr.Step, status, warm, sr.RampBinding, sr.Iterations, sr.Cost)
			}
		}
	}
}

// printJSON emits the machine-readable summary (the cmd-line analogue
// of POST /v1/trajectory's final summary line, one entry per trajectory).
func printJSON(name string, mode horizon.Mode, steps int, interval, frac float64, results []*horizon.Result, elapsed time.Duration) {
	out := make([]map[string]any, 0, len(results))
	for i, res := range results {
		binding := 0
		for _, sr := range res.Steps {
			binding += sr.RampBinding
		}
		out = append(out, map[string]any{
			"trajectory":    i,
			"steps":         len(res.Steps),
			"converged":     res.Converged,
			"warm_hits":     res.WarmHits,
			"cold_restarts": res.ColdRestarts,
			"iterations":    res.Iterations,
			"ramp_binding":  binding,
			"solve_us":      res.SolveTime.Microseconds(),
		})
	}
	report := map[string]any{
		"case":          name,
		"mode":          mode.String(),
		"steps":         steps,
		"interval_min":  interval,
		"ramp_frac":     frac,
		"elapsed_us":    elapsed.Microseconds(),
		"steps_per_sec": float64(len(results)*steps) / elapsed.Seconds(),
		"trajectories":  out,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(report)
}
