// Command results renders RESULTS.md — the paper-vs-reproduction
// comparison — from the BENCH_paper.json written by
// BenchmarkPaperSystems. Regenerate both with:
//
//	go test -run '^$' -bench BenchmarkPaperSystems -benchtime 1x .
//	go run ./cmd/results
//
// A filtered benchmark run (e.g. CI's -bench 'PaperSystems/case57$')
// produces a JSON with a subset of systems; results renders whatever
// rows are present, so the committed RESULTS.md should come from a
// full sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/opf"
)

type systemRow struct {
	Buses            int            `json:"buses"`
	Gens             int            `json:"gens"`
	Branches         int            `json:"branches"`
	RatedBranches    int            `json:"rated_branches"`
	NEq              int            `json:"neq"`
	NIq              int            `json:"niq"`
	Draws            int            `json:"draws"`
	Epochs           int            `json:"epochs"`
	Problems         int            `json:"problems"`
	ColdIters        float64        `json:"cold_iters"`
	WarmIters        float64        `json:"warm_iters"`
	ColdMsPerProblem float64        `json:"cold_ms_per_problem"`
	WarmMsPerProblem float64        `json:"warm_ms_per_problem"`
	SuccessRate      float64        `json:"success_rate"`
	Speedup          float64        `json:"speedup"`
	OptimalityGap    float64        `json:"optimality_gap"`
	KKTN             int            `json:"kkt_n"`
	KKTFill          map[string]int `json:"kkt_fill"`
	KKTOrdering      string         `json:"kkt_ordering"`
}

type trajSystemRow struct {
	Buses                int     `json:"buses"`
	Draws                int     `json:"draws"`
	Epochs               int     `json:"epochs"`
	ColdMsPerStep        float64 `json:"cold_ms_per_step"`
	ChainMsPerStep       float64 `json:"chain_ms_per_step"`
	PredictMsPerStep     float64 `json:"predict_ms_per_step"`
	ChainSpeedupVsCold   float64 `json:"chain_speedup_vs_cold"`
	PredictSpeedupVsCold float64 `json:"predict_speedup_vs_cold"`
	Winner               string  `json:"winner"`
	ChainWarmHits        int     `json:"chain_warm_hits"`
	PredictWarmHits      int     `json:"predict_warm_hits"`
	Converged            int     `json:"converged"`
}

type trajReport struct {
	Benchmark string  `json:"benchmark"`
	Steps     int     `json:"steps"`
	RampFrac  float64 `json:"ramp_frac"`
	Replay    struct {
		System             string `json:"system"`
		Steps              int    `json:"steps"`
		ServedBitIdentical bool   `json:"served_bit_identical"`
	} `json:"replay"`
	Systems map[string]trajSystemRow `json:"systems"`
}

type kernelRow struct {
	KKTN        int     `json:"kkt_n"`
	KKTNnz      int     `json:"kkt_nnz"`
	LUNnz       int     `json:"lu_nnz"`
	ScalarNs    float64 `json:"scalar_ns"`
	BlockedNs   float64 `json:"blocked_ns"`
	Speedup     float64 `json:"speedup"`
	Supernodes  int     `json:"supernodes"`
	PanelCols   int     `json:"panel_cols"`
	MaxWidth    int     `json:"max_width"`
	PanelFrac   float64 `json:"panel_frac"`
	AutoBlocked bool    `json:"auto_blocked"`
}

type parallelThreadRow struct {
	FactorNs      float64 `json:"factor_ns"`
	SolveNs       float64 `json:"solve_ns"`
	FactorSpeedup float64 `json:"factor_speedup"`
	SolveSpeedup  float64 `json:"solve_speedup"`
	BitIdentical  bool    `json:"bit_identical"`
}

type parallelSystemRow struct {
	KKTN    int                          `json:"kkt_n"`
	LUNnz   int                          `json:"lu_nnz"`
	Threads map[string]parallelThreadRow `json:"threads"`
}

type kktReport struct {
	Case                     string  `json:"case"`
	KKTN                     int     `json:"kkt_n"`
	SpeedupRefactorVsAnalyze float64 `json:"speedup_refactor_vs_analyze"`
	SpeedupMIPSSolve         float64 `json:"speedup_mips_solve"`
	BlockedKernel            struct {
		Ordering string               `json:"ordering"`
		Systems  map[string]kernelRow `json:"systems"`
	} `json:"blocked_kernel"`
	ParallelKernel struct {
		Ordering   string                       `json:"ordering"`
		GoMaxProcs int                          `json:"gomaxprocs"`
		Systems    map[string]parallelSystemRow `json:"systems"`
	} `json:"parallel_kernel"`
}

type lifecycleReport struct {
	Benchmark string `json:"benchmark"`
	System    string `json:"system"`
	Drift     struct {
		Window   int `json:"window"`
		Baseline int `json:"baseline"`
		FiredAt  int `json:"fired_at"`
	} `json:"drift"`
	Canary struct {
		Frac     float64 `json:"frac"`
		Window   int     `json:"window"`
		Decision string  `json:"decision"`
	} `json:"canary"`
	CapturedPairs              int64   `json:"captured_pairs"`
	RetrainMs                  float64 `json:"retrain_ms"`
	Candidate                  string  `json:"candidate"`
	PreDriftWarmItersMean      float64 `json:"pre_drift_warm_iters_mean"`
	PreDriftWarmHits           int     `json:"pre_drift_warm_hits"`
	PostPromotionWarmItersMean float64 `json:"post_promotion_warm_iters_mean"`
	PostPromotionWarmHits      int     `json:"post_promotion_warm_hits"`
	Probes                     int     `json:"probes"`
}

type report struct {
	Benchmark  string `json:"benchmark"`
	ProducedBy string `json:"produced_by"`
	PaperClaim struct {
		AvgSpeedup float64 `json:"avg_speedup"`
		Source     string  `json:"source"`
	} `json:"paper_claim"`
	MeasuredAvgSpeedup float64              `json:"measured_avg_speedup"`
	Systems            map[string]systemRow `json:"systems"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("results: ")
	in := flag.String("in", "BENCH_paper.json", "benchmark report to render")
	traj := flag.String("trajectory", "BENCH_trajectory.json", "trajectory benchmark report to append (section skipped when the file is absent)")
	kkt := flag.String("kkt", "BENCH_kkt.json", "kernel benchmark report to append (section skipped when the file is absent)")
	lc := flag.String("lifecycle", "BENCH_lifecycle.json", "lifecycle benchmark report to append (section skipped when the file is absent)")
	out := flag.String("out", "RESULTS.md", "markdown file to write")
	flag.Parse()

	buf, err := os.ReadFile(*in)
	if err != nil {
		log.Fatalf("%v (run the benchmark first: go test -run '^$' -bench BenchmarkPaperSystems -benchtime 1x .)", err)
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		log.Fatalf("parsing %s: %v", *in, err)
	}
	if len(r.Systems) == 0 {
		log.Fatalf("%s has no system rows", *in)
	}
	names := make([]string, 0, len(r.Systems))
	for n := range r.Systems {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return r.Systems[names[i]].Buses < r.Systems[names[j]].Buses })

	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	w("# RESULTS — warm-start speedup on the paper's systems")
	w("")
	w("Reproduction of the headline claim of conf_sc_DongXKL20 (\"an average")
	w("2.60× speedup over the original MIPS solver on standard IEEE test")
	w("systems (up to 300 buses) without losing solution optimality\") on the")
	w("embedded fleet. Every row is one full offline+online pipeline run —")
	w("±10 %% load-draw dataset generation, Smart-PGSim training, then each")
	w("held-out problem solved cold (MIPS baseline) and through the")
	w("predict→warm-solve→fallback pipeline. Numbers regenerate with:")
	w("")
	w("```sh")
	w("go test -run '^$' -bench BenchmarkPaperSystems -benchtime 1x .")
	w("go run ./cmd/results")
	w("```")
	w("")
	w("This file was rendered from `%s` (benchmark %q).", *in, r.Benchmark)
	w("")
	w("## Speedup vs the paper")
	w("")
	w("| system | buses | gens | branches (rated) | #λ | #µ | problems | cold iters | warm iters | success rate | speedup | optimality gap |")
	w("|---|---|---|---|---|---|---|---|---|---|---|---|")
	for _, n := range names {
		s := r.Systems[n]
		w("| %s | %d | %d | %d (%d) | %d | %d | %d | %.1f | %.1f | %.0f%% | **%.2f×** | %.1e |",
			n, s.Buses, s.Gens, s.Branches, s.RatedBranches, s.NEq, s.NIq,
			s.Problems, s.ColdIters, s.WarmIters, s.SuccessRate*100, s.Speedup, s.OptimalityGap)
	}
	w("")
	w("**Measured average: %.2f× (paper claims %.2f× average).** The", r.MeasuredAvgSpeedup, r.PaperClaim.AvgSpeedup)
	w("optimality-gap column is the mean relative cost difference between the")
	w("warm-started and cold solutions — the paper's \"without losing solution")
	w("optimality\" check; failed warm starts fall back to a cold restart, so")
	w("the accepted solution is always a converged optimum.")
	w("")
	w("The speedup grows with system size — exactly the paper's regime: the")
	w("cold interior-point iteration count climbs with the network while the")
	w("warm-started count stays flat, and each saved iteration is worth more")
	w("at scale. The flip side is visible on case30: a small system with the")
	w("IEEE file's tight flow limits solves cold in ~14 ms, and predicted")
	w("µ/Z values sitting near those active limits disturb the interior-")
	w("point centering more than they help, so the warm path loses ground")
	w("there (more data does not fix it; it is a property of the regime,")
	w("not of the corpus).")
	w("")
	w("Caveats when comparing to the paper: the offline phase here is the")
	w("bench profile (per-system draws/epochs below, hundreds of times")
	w("smaller than the paper's 10,000-sample corpus), the embedded")
	w("case57/118/300 carry derived branch ratings where the IEEE files have")
	w("none (see internal/grid/cases.go), and case300 is the frozen")
	w("Table II-scale reconstruction, not the original case file. A larger")
	w("corpus (core.TrainingDefaults or the EXPERIMENTS.md full-sweep")
	w("recipe) pushes the success rate — and with it the speedup — up.")
	w("")
	w("## Per-system solve cost and offline profile")
	w("")
	w("| system | cold ms/problem | warm ms/problem | draws | epochs |")
	w("|---|---|---|---|---|")
	for _, n := range names {
		s := r.Systems[n]
		w("| %s | %.1f | %.1f | %d | %d |", n, s.ColdMsPerProblem, s.WarmMsPerProblem, s.Draws, s.Epochs)
	}
	w("")
	w("## KKT fill by ordering (why the ordering is probed per system)")
	w("")
	w("LU factor nonzeros of the bordered KKT proxy; `selected` is what")
	w("`opf.Prepare` chose (fixed RCM below %d buses, fill-probing `auto`", opf.AutoOrderingBuses)
	w("at and above — see DESIGN.md §9).")
	w("")
	w("| system | KKT n | natural | rcm | amd | selected |")
	w("|---|---|---|---|---|---|")
	for _, n := range names {
		s := r.Systems[n]
		w("| %s | %d | %d | %d | %d | %s |", n, s.KKTN, s.KKTFill["natural"], s.KKTFill["rcm"], s.KKTFill["amd"], s.KKTOrdering)
	}
	w("")

	if kbuf, err := os.ReadFile(*kkt); err == nil {
		renderKernel(w, *kkt, kbuf)
	} else {
		log.Printf("note: %s absent, kernel section skipped (run the BenchmarkRefactorBlocked recipe in PERFORMANCE.md)", *kkt)
	}

	if tbuf, err := os.ReadFile(*traj); err == nil {
		renderTrajectory(w, *traj, tbuf)
	}

	if lbuf, err := os.ReadFile(*lc); err == nil {
		renderLifecycle(w, *lc, lbuf)
	}

	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d systems, avg speedup %.2fx vs paper %.2fx)",
		*out, len(names), r.MeasuredAvgSpeedup, r.PaperClaim.AvgSpeedup)
}

// renderKernel appends the numeric-kernel section from BENCH_kkt.json
// (symbolic reuse written by BenchmarkKKTFactor/BenchmarkMIPSSolve,
// blocked-kernel rows by BenchmarkRefactorBlocked). Either half may be
// absent — a filtered bench run regenerates only its own section — so
// each table renders only when its rows exist.
func renderKernel(w func(string, ...any), path string, buf []byte) {
	var k kktReport
	if err := json.Unmarshal(buf, &k); err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	if k.Case == "" && len(k.BlockedKernel.Systems) == 0 {
		log.Printf("note: %s has no kernel sections, skipped", path)
		return
	}
	w("## Numeric kernel: symbolic reuse and the blocked LU")
	w("")
	w("Self-timed sections of `%s` — the factorization layer under every", path)
	w("MIPS iteration above. Regenerate with the recipes in PERFORMANCE.md.")
	w("")
	if k.Case != "" {
		w("Reusing the frozen symbolic analysis (%s KKT, n=%d) makes a", k.Case, k.KKTN)
		w("refactorization %.1f× faster than a fresh analyze+factor, worth", k.SpeedupRefactorVsAnalyze)
		w("%.2f× on a cold MIPS solve.", k.SpeedupMIPSSolve)
		w("")
	}
	if len(k.BlockedKernel.Systems) > 0 {
		w("The blocked panel kernel batches supernodal columns of the %s-", k.BlockedKernel.Ordering)
		w("ordered KKT factor so the hot update loop runs over dense panels")
		w("(DESIGN.md §11). Equivalence with the scalar kernel (identical")
		w("fill, solves agreeing to 1e-9) and zero warm-path allocations are")
		w("pinned with `b.Fatal` inside the benchmark itself:")
		w("")
		w("| system | KKT n | nnz(LU) | scalar ms | blocked ms | speedup | supernodes | panel cols | panel flops | auto-selected |")
		w("|---|---|---|---|---|---|---|---|---|---|")
		names := make([]string, 0, len(k.BlockedKernel.Systems))
		for n := range k.BlockedKernel.Systems {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			return k.BlockedKernel.Systems[names[i]].KKTN < k.BlockedKernel.Systems[names[j]].KKTN
		})
		for _, n := range names {
			s := k.BlockedKernel.Systems[n]
			w("| %s | %d | %d | %.2f | %.2f | **%.2f×** | %d | %d | %.0f%% | %v |",
				n, s.KKTN, s.LUNnz, s.ScalarNs/1e6, s.BlockedNs/1e6, s.Speedup,
				s.Supernodes, s.PanelCols, 100*s.PanelFrac, s.AutoBlocked)
		}
		w("")
	}
	if len(k.ParallelKernel.Systems) > 0 {
		w("The parallel kernel schedules the same per-column work over an")
		w("elimination-tree task DAG (factor) and level-scheduled row chunks")
		w("(solves), bit-identical to serial at every thread count — pinned")
		w("with `b.Fatal` inside the benchmark (DESIGN.md §12). These numbers")
		w("were measured with **GOMAXPROCS=%d**; per PERFORMANCE.md's quoting", k.ParallelKernel.GoMaxProcs)
		w("rules, thread-count speedups are only meaningful alongside that")
		w("value — on a single-core host every thread count runs serially and")
		w("the ratios measure scheduling overhead, not parallelism.")
		w("")
		w("| system | KKT n | factor ms (1T) | 2T | 4T | 8T | 4T speedup | solve ms (1T) | 4T solve speedup |")
		w("|---|---|---|---|---|---|---|---|---|")
		names := make([]string, 0, len(k.ParallelKernel.Systems))
		for n := range k.ParallelKernel.Systems {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			return k.ParallelKernel.Systems[names[i]].KKTN < k.ParallelKernel.Systems[names[j]].KKTN
		})
		for _, n := range names {
			s := k.ParallelKernel.Systems[n]
			t1, t2, t4, t8 := s.Threads["1"], s.Threads["2"], s.Threads["4"], s.Threads["8"]
			w("| %s | %d | %.2f | %.2f | %.2f | %.2f | **%.2f×** | %.3f | %.2f× |",
				n, s.KKTN, t1.FactorNs/1e6, t2.FactorNs/1e6, t4.FactorNs/1e6, t8.FactorNs/1e6,
				t4.FactorSpeedup, t1.SolveNs/1e6, t4.SolveSpeedup)
		}
		w("")
	}
}

// renderTrajectory appends the multi-period crossover section from
// BENCH_trajectory.json (written by BenchmarkTrajectory).
func renderTrajectory(w func(string, ...any), path string, buf []byte) {
	var t trajReport
	if err := json.Unmarshal(buf, &t); err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	if len(t.Systems) == 0 {
		log.Fatalf("%s has no system rows", path)
	}
	names := make([]string, 0, len(t.Systems))
	for n := range t.Systems {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return t.Systems[names[i]].Buses < t.Systems[names[j]].Buses })

	w("## Multi-period trajectories: chain vs predict crossover")
	w("")
	w("One %d-step synthetic load trajectory per system (ramp limits at", t.Steps)
	w("%.0f %% of each unit's dispatch range per step), solved cold, with", 100*t.RampFrac)
	w("warm-start chaining (each step starts from the previous step's full")
	w("primal/dual solution) and with per-step model prediction — the")
	w("multi-period extension of the paper's warm-start idea. Rendered from")
	w("`%s` (benchmark %q); regenerate with the BenchmarkTrajectory", path, t.Benchmark)
	w("recipe in EXPERIMENTS.md.")
	w("")
	w("| system | buses | cold ms/step | chain ms/step | predict ms/step | chain speedup | predict speedup | winner | chained warm hits |")
	w("|---|---|---|---|---|---|---|---|---|")
	for _, n := range names {
		s := t.Systems[n]
		w("| %s | %d | %.1f | %.1f | %.1f | **%.2f×** | %.2f× | %s | %d/%d |",
			n, s.Buses, s.ColdMsPerStep, s.ChainMsPerStep, s.PredictMsPerStep,
			s.ChainSpeedupVsCold, s.PredictSpeedupVsCold, s.Winner, s.ChainWarmHits, t.Steps)
	}
	w("")
	if t.Replay.ServedBitIdentical {
		w("The served stream is pinned: the same %s trajectory replayed", t.Replay.System)
		w("through `POST /v1/trajectory` is bit-identical to the offline runner")
		w("(every step's convergence flags, iteration count, cost and dispatch).")
		w("")
	}
}

// renderLifecycle appends the online-lifecycle section from
// BENCH_lifecycle.json (written by BenchmarkLifecycle).
func renderLifecycle(w func(string, ...any), path string, buf []byte) {
	var l lifecycleReport
	if err := json.Unmarshal(buf, &l); err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	if l.System == "" {
		log.Printf("note: %s has no lifecycle run, skipped", path)
		return
	}
	w("## Online model lifecycle: drift-triggered retrain and canary")
	w("")
	w("One closed lifecycle loop on %s — served traffic captured, a regime", l.System)
	w("change fired the windowed drift detector (window %d, baseline %d", l.Drift.Window, l.Drift.Baseline)
	w("windows) on observation %d, the candidate retrained on the captured", l.Drift.FiredAt)
	w("(instance, solution) pairs through the offline training path, and a")
	w("canary window (%.0f %% traffic, %d observations per arm) gated the", 100*l.Canary.Frac, l.Canary.Window)
	w("hot swap. Rendered from `%s`; regenerate with the BenchmarkLifecycle", path)
	w("recipe in EXPERIMENTS.md.")
	w("")
	w("| captured pairs | retrain ms | canary decision | warm iters (pre-drift) | warm iters (post-promotion) | probe hits |")
	w("|---|---|---|---|---|---|")
	w("| %d | %.0f | **%s** | %.1f | %.1f | %d/%d |",
		l.CapturedPairs, l.RetrainMs, l.Canary.Decision,
		l.PreDriftWarmItersMean, l.PostPromotionWarmItersMean,
		l.PostPromotionWarmHits, l.Probes)
	w("")
	w("The promoted candidate (`%s`) is content-hash versioned in the model", l.Candidate)
	w("registry; the benchmark fails (`b.Fatal`) if the canary promotes a")
	w("regressing candidate or the promoted model misses a warm probe.")
	w("")
}
