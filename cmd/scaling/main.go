// Command scaling regenerates Figure 9: strong and weak scaling of
// data-parallel MTL inference for SC-ACOPF scenario fan-out, using real
// goroutine parallelism for calibration and the cluster model of
// internal/scale for worker counts beyond the host's cores (see
// DESIGN.md "Substitutions").
//
// Usage:
//
//	scaling -case case14 -scenarios 10000
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/mtl"
	"repro/internal/scale"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling: ")
	caseName := flag.String("case", "case9", "test system")
	scenarios := flag.Int("scenarios", 10000, "total scenarios for strong scaling (and per-worker for weak)")
	n := flag.Int("n", 40, "training samples for the calibration model")
	poolSize := flag.Int("workers", 0, "parallel workers for generation and calibration (0 = PGSIM_WORKERS or all cores)")
	flag.Parse()
	batch.SetDefaultWorkers(*poolSize)

	sys, err := core.LoadSystem(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	set, err := sys.GenerateData(*n, 5)
	if err != nil {
		log.Fatal(err)
	}
	train, val := set.Split(0.8)
	m, err := sys.TrainModel(mtl.VariantSmartPGSim, train, 60, 5, nil)
	if err != nil {
		log.Fatal(err)
	}
	tInf := scale.MeasureInference(m, val.Inputs())
	flops := scale.FlopsPerScenario(m)
	log.Printf("calibrated: %v per inference, %.0f flops per scenario", tInf, flops)

	workers := []int{1, 16, 32, 64, 128}
	cl := scale.DefaultCluster()

	fmt.Printf("\nFigure 9a — strong scaling (%d scenarios total)\n", *scenarios)
	fmt.Printf("%8s %14s %10s %10s %8s\n", "workers", "time", "speedup", "ideal", "eff")
	for _, p := range scale.StrongScaling(tInf, *scenarios, workers, cl) {
		fmt.Printf("%8d %14s %9.1fx %9.0fx %7.1f%%\n",
			p.Workers, p.Time.Round(time.Microsecond), p.Speedup, p.Ideal, p.Eff*100)
	}

	fmt.Printf("\nFigure 9b — weak scaling (%d scenarios per worker)\n", *scenarios)
	fmt.Printf("%8s %12s %14s %12s %8s\n", "workers", "scenarios", "time", "TFLOP/s", "eff")
	for _, p := range scale.WeakScaling(tInf, *scenarios, flops, workers, cl) {
		fmt.Printf("%8d %12d %14s %12.4f %7.1f%%\n",
			p.Workers, p.Scenarios, p.Time.Round(time.Microsecond), p.TFlops, p.Eff*100)
	}
}
