// Command sensitivity regenerates Table I of the paper: the 16-way
// ablation of precise vs imprecise warm-start components {X, λ, µ, Z},
// reporting success rate and speedup per test system.
//
// Usage:
//
//	sensitivity -systems case5,case9,case14 -n 50
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sensitivity: ")
	systems := flag.String("systems", "case5,case9,case14", "comma-separated system list")
	n := flag.Int("n", 30, "problems per system")
	seed := flag.Int64("seed", 1, "load-sampling seed")
	workers := flag.Int("workers", 0, "parallel solve workers (0 = PGSIM_WORKERS or all cores)")
	flag.Parse()
	batch.SetDefaultWorkers(*workers)

	names := strings.Split(*systems, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	// Resolve every system upfront — case39's synthetic Table II profile is
	// built concurrently on the worker pool.
	syss, err := core.LoadSystems(names)
	if err != nil {
		log.Fatal(err)
	}
	results := map[string][]core.SensRow{}
	for i, name := range names {
		t0 := time.Now()
		set, err := syss[i].GenerateData(*n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		results[name] = core.SensitivityStudy(syss[i], set, 0)
		log.Printf("%s done in %v (%d problems)", name, time.Since(t0).Round(time.Millisecond), len(set.Samples))
	}
	core.PrintTableI(os.Stdout, names, results)
	fmt.Println("\nkey observations to compare with the paper:")
	fmt.Println("  row '1 1 1 1' (all precise) should show the highest speedups;")
	fmt.Println("  rows with precise Z but imprecise µ should lose success rate;")
	fmt.Println("  row '1 0 0 0' (X only) should keep SR at 100% with SU ≈ 1.")
}
