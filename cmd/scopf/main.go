// Command scopf runs security-constrained OPF contingency screening: a
// tree of load draws × contingencies — N-1 branch outages, generator
// outages and hierarchical N-2 branch pairs — each an independent
// AC-OPF, screened on the topology-aware engine (one prepared problem
// structure per outage topology, warm starts projected onto contingency
// layouts, islanding outages classified without solving, scenarios
// fanned out on the parallel worker pool). With -naive it runs the
// per-scenario-rebuild reference path instead — the baseline the engine
// is benchmarked against.
//
// Usage:
//
//	scopf -case case30 -draws 8
//	scopf -case case9 -draws 4 -train 60 -epochs 150     # warm-start screening
//	scopf -case case57 -contingencies 0,3,7 -workers 8   # explicit RATED branches only
//	scopf -case case30 -draws 8 -gens all                # generator N-1 axis
//	scopf -case case14 -draws 1 -n2 8                    # hierarchical N-2 pairs (top-8)
//	scopf -case case30 -draws 8 -train 80 -policy        # learned warm/cold dispatch
//	scopf -case case30 -draws 16 -json > screen.json
//	scopf -case case14 -draws 8 -naive                   # reference baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/casegen"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/opf"
	"repro/internal/scopf"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scopf: ")
	caseName := flag.String("case", "case9", "built-in system (case5, case9, case14, case30, case39, case57, case118, case300)")
	nDraws := flag.Int("draws", 4, "number of load draws to cross with the contingencies")
	seed := flag.Int64("seed", 1, "load-draw sampling seed")
	spread := flag.Float64("spread", 0.1, "half-width of the load band (0.1 = the paper's ±10 %)")
	contingencies := flag.String("contingencies", "all", "branch outages to screen: all (connected N-1 set), none, or a comma-separated index list into the case's branch table; explicit indices must name RATED in-service branches (RateA > 0) — outages of unrated branches leave the flow-constraint layout unchanged and are not screening contingencies")
	gens := flag.String("gens", "none", "generator outages to screen: all (every in-service unit), none, or a comma-separated index list into the case's generator table")
	n2 := flag.Int("n2", 0, "hierarchical N-2 pair screening on the first draw with this top-K severity cutoff (0 = off, negative = exact exhaustive pair set); islanding pairs are always classified")
	policy := flag.Bool("policy", false, "train a warm/cold dispatch policy on this sweep's screening log (needs -train) and re-screen with it")
	skipIntact := flag.Bool("skip-intact", false, "drop the no-outage scenario of each draw")
	trainN := flag.Int("train", 0, "train a warm-start model on this many intact-system samples first (0 = cold screening)")
	epochs := flag.Int("epochs", 0, "training epochs for -train (0 = per-system default, see core.TrainingDefaults)")
	variantName := flag.String("variant", "mtl", "model variant for -train: sep, mtl or smartpgsim")
	workers := flag.Int("workers", 0, "worker pool size (0 = PGSIM_WORKERS or all cores)")
	ordering := flag.String("ordering", "", "fill-reducing ordering for the KKT factorization: natural, rcm, amd or auto (default: per-system selection, see opf.DefaultOrdering)")
	naive := flag.Bool("naive", false, "use the per-scenario-rebuild reference path instead of the topology-aware engine")
	noProjection := flag.Bool("no-projection", false, "disable warm-start projection onto outage layouts")
	jsonOut := flag.Bool("json", false, "print a machine-readable JSON summary instead of tables")
	verbose := flag.Bool("v", false, "print one row per scenario")
	solverThreads := flag.Int("solver-threads", 0, "threads per KKT factorization/solve, capped by the worker budget (0 = PGSIM_SOLVER_THREADS or 1)")
	flag.Parse()
	batch.SetDefaultWorkers(*workers)
	sparse.SetDefaultSolverThreads(*solverThreads)

	c, err := casegen.Paper(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	base := opf.Prepare(c)
	if *ordering != "" {
		ord, err := sparse.ParseOrdering(*ordering)
		if err != nil {
			log.Fatal(err)
		}
		base.SetOrdering(ord)
	}

	var model *mtl.Model
	if *trainN > 0 {
		variant, err := mtl.ParseVariant(*variantName)
		if err != nil {
			log.Fatal(err)
		}
		sys := &core.System{Name: c.Name, Case: c, OPF: base}
		ep := *epochs
		if ep == 0 {
			_, ep = core.TrainingDefaults(c.NB())
		}
		log.Printf("training: %d samples, %d epochs on the intact %s", *trainN, ep, c.Name)
		set, err := sys.GenerateData(*trainN, *seed)
		if err != nil {
			log.Fatal(err)
		}
		train, _ := set.Split(0.8)
		model, err = sys.TrainModel(variant, train, ep, *seed, nil)
		if err != nil {
			log.Fatal(err)
		}
	}

	cons, err := parseContingencies(*contingencies, c, func() []int { return scopf.Contingencies(c) })
	if err != nil {
		log.Fatal(err)
	}
	genCons, err := parseGens(*gens, c)
	if err != nil {
		log.Fatal(err)
	}
	draws := sampleDraws(c.NB(), *nDraws, *seed, *spread)
	var scenarios []scopf.Scenario
	for _, f := range draws {
		if !*skipIntact {
			scenarios = append(scenarios, scopf.Scenario{Factors: f, OutBranch: -1})
		}
		for _, l := range cons {
			scenarios = append(scenarios, scopf.Scenario{Factors: f, OutBranch: l})
		}
		for _, g := range genCons {
			scenarios = append(scenarios, scopf.GenScenario(f, g))
		}
	}
	if len(scenarios) == 0 {
		log.Fatal("nothing to screen (no draws or no topologies)")
	}
	if *policy && (*naive || model == nil) {
		log.Fatal("-policy needs a warm-start model (-train) and the topology-aware engine (no -naive)")
	}

	// The dispatch policy is trained on this sweep's own screening log
	// (warm and cold iteration counts per scenario) before the timed run.
	var pol *scopf.Policy
	if *policy {
		samples := scopf.CollectPolicySamples(&scopf.Engine{
			Base: c, Prepared: base, Model: model,
			Workers: *workers, NoProjection: *noProjection,
		}, scenarios)
		pol = scopf.TrainPolicy(samples)
		if pol == nil {
			log.Fatal("-policy: the sweep produced no warm/cold sample pairs to train on")
		}
		losses := 0
		for _, s := range samples {
			if s.WarmHurts() {
				losses++
			}
		}
		log.Printf("policy: trained on %d samples (%d warm losses), threshold %.4f", len(samples), losses, pol.Threshold)
	}

	t0 := time.Now()
	var outs []scopf.Outcome
	var classes []scopf.ClassInfo
	if *naive {
		outs = scopf.ScreenNaive(c, model, scenarios, *workers)
	} else {
		eng := &scopf.Engine{
			Base: c, Prepared: base, Model: model,
			Workers: *workers, NoProjection: *noProjection, Policy: pol,
		}
		rep := eng.Run(scenarios)
		outs, classes = rep.Outcomes, rep.Classes
	}
	elapsed := time.Since(t0)
	sum := scopf.Summarize(outs)

	// Hierarchical N-2 stage: rank the first draw's N-1 outcomes by
	// severity, screen the top-K pair block plus every islanding pair.
	var n2res *scopf.N2Result
	if *n2 != 0 {
		k := *n2
		if k < 0 {
			k = 0 // exhaustive reference mode
		}
		eng := &scopf.Engine{
			Base: c, Prepared: base, Model: model,
			Workers: *workers, NoProjection: *noProjection, Policy: pol,
		}
		n2res = eng.ScreenPairsTopK(draws[0], k)
	}

	if *jsonOut {
		printJSON(c.Name, *naive, sum, classes, elapsed, pol, n2res)
		return
	}
	perDraw := len(cons) + len(genCons) + boolInt(!*skipIntact)
	fmt.Printf("case %s: screened %d scenarios (%d draws × %d topologies) in %v — %.1f scenarios/s\n",
		c.Name, sum.Total, len(draws), perDraw, elapsed.Round(time.Millisecond),
		float64(sum.Total)/elapsed.Seconds())
	mode := "topology-aware engine"
	if *naive {
		mode = "naive per-scenario rebuild"
	}
	fmt.Printf("path: %s, %s ordering, %d workers\n", mode, base.Ordering(), batch.Workers(*workers))
	fmt.Printf("secure: %d/%d feasible, worst cost %.2f $/hr, mean %.1f iterations\n",
		sum.Feasible, sum.Total, sum.WorstCost, sum.MeanIterations)
	if model != nil {
		fmt.Printf("warm starts: %d accepted (%d projected onto outage layouts), hit rate %.0f%%\n",
			sum.WarmConverged, sum.Projected, 100*float64(sum.WarmConverged)/float64(sum.Total))
	}
	if pol != nil {
		fmt.Printf("policy: dispatched %d scenarios cold (threshold %.4f)\n", sum.PolicyCold, pol.Threshold)
	}
	if sum.Islanded > 0 {
		fmt.Printf("islanding: %d scenarios classified without solving\n", sum.Islanded)
	}
	if sum.Errors > 0 {
		fmt.Printf("errors: %d scenarios failed to solve cleanly\n", sum.Errors)
	}
	if len(classes) > 0 {
		fmt.Printf("\n%-14s %10s %8s %10s\n", "outage", "scenarios", "#µ", "warm")
		for _, cl := range classes {
			fmt.Printf("%-14s %10d %8d %10s\n", className(c, cl), cl.Scenarios, cl.NIq, cl.WarmMode)
		}
	}
	if n2res != nil {
		sumN2 := scopf.Summarize(n2res.Report.Outcomes)
		fmt.Printf("\nN-2 (first draw): %d candidate pairs screened (%d pruned), %d islanded, %d/%d feasible\n",
			len(n2res.Pairs), n2res.Skipped, sumN2.Islanded, sumN2.Feasible, sumN2.Total)
		fmt.Printf("severity ranking (worst first): %v\n", n2res.Ranked)
	}
	if *verbose {
		fmt.Printf("\n%6s %8s %10s %14s %6s %6s\n", "draw", "outage", "status", "cost ($/hr)", "iters", "warm")
		per := len(cons) + len(genCons) + boolInt(!*skipIntact)
		for i, o := range outs {
			status := "secure"
			switch {
			case o.Err != nil:
				status = "error"
			case o.Islanded:
				status = "islanded"
			case !o.Feasible:
				status = "insecure"
			}
			outage := "-"
			switch {
			case o.Scenario.OutagedGen() >= 0:
				outage = "g" + strconv.Itoa(o.Scenario.OutagedGen())
			case o.Scenario.OutBranch >= 0:
				outage = strconv.Itoa(o.Scenario.OutBranch)
			}
			warm := "-"
			if o.WarmUsed {
				warm = "yes"
				if o.Projected {
					warm = "proj"
				}
			}
			fmt.Printf("%6d %8s %10s %14.2f %6d %6s\n", i/per, outage, status, o.Cost, o.Iterations, warm)
		}
	}
}

// className labels an outage class row: "intact", "br 1-4" (branch),
// "br 1-4+3-6" (pair), "gen 2" or "br 1-4 gen 2".
func className(c *grid.Case, cl scopf.ClassInfo) string {
	if cl.Kind == "intact" {
		return "intact"
	}
	var parts []string
	if cl.OutBranch >= 0 {
		br := c.Branches[cl.OutBranch]
		s := fmt.Sprintf("br %d-%d", br.From, br.To)
		if cl.OutBranch2 >= 0 {
			b2 := c.Branches[cl.OutBranch2]
			s += fmt.Sprintf("+%d-%d", b2.From, b2.To)
		}
		parts = append(parts, s)
	}
	if cl.OutGen >= 0 {
		parts = append(parts, fmt.Sprintf("gen %d", cl.OutGen))
	}
	return strings.Join(parts, " ")
}

// printJSON emits the machine-readable summary (the cmd-line analogue of
// POST /v1/screen's response).
func printJSON(name string, naive bool, sum scopf.Summary, classes []scopf.ClassInfo, elapsed time.Duration, pol *scopf.Policy, n2res *scopf.N2Result) {
	path := "engine"
	if naive {
		path = "naive"
	}
	report := map[string]any{
		"case":              name,
		"path":              path,
		"scenarios":         sum.Total,
		"feasible":          sum.Feasible,
		"warm_converged":    sum.WarmConverged,
		"projected":         sum.Projected,
		"islanded":          sum.Islanded,
		"policy_cold":       sum.PolicyCold,
		"errors":            sum.Errors,
		"mean_iterations":   sum.MeanIterations,
		"worst_cost":        sum.WorstCost,
		"elapsed_us":        elapsed.Microseconds(),
		"scenarios_per_sec": float64(sum.Total) / elapsed.Seconds(),
	}
	if !naive {
		cls := make([]map[string]any, 0, len(classes))
		for _, cl := range classes {
			cls = append(cls, map[string]any{
				"out_branch": cl.OutBranch, "out_branch2": cl.OutBranch2,
				"out_gen": cl.OutGen, "kind": cl.Kind, "scenarios": cl.Scenarios,
				"nmu": cl.NIq, "warm_mode": cl.WarmMode, "islanded": cl.Islanded,
			})
		}
		report["classes"] = cls
	}
	if pol != nil {
		// The policy object round-trips into POST /v1/screen's "policy" field.
		report["policy"] = pol
	}
	if n2res != nil {
		sumN2 := scopf.Summarize(n2res.Report.Outcomes)
		report["n2"] = map[string]any{
			"ranked":    n2res.Ranked,
			"pairs":     len(n2res.Pairs),
			"skipped":   n2res.Skipped,
			"islanded":  sumN2.Islanded,
			"feasible":  sumN2.Feasible,
			"scenarios": sumN2.Total,
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(report)
}

// parseGens resolves the -gens flag; indices address Case.Gens. Explicit
// entries must name in-service units ("all" keeps only cases where the
// remaining fleet still has at least one other active unit, matching
// scopf.GenContingencies).
func parseGens(s string, c *grid.Case) ([]int, error) {
	switch s {
	case "all":
		return scopf.GenContingencies(c), nil
	case "none", "":
		return nil, nil
	}
	var out []int
	for _, p := range strings.Split(s, ",") {
		g, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -gens entry %q: %v", p, err)
		}
		if g < 0 || g >= len(c.Gens) {
			return nil, fmt.Errorf("-gens entry %d outside [0, %d) for %s", g, len(c.Gens), c.Name)
		}
		if !c.Gens[g].Status {
			return nil, fmt.Errorf("-gens entry %d: generator at bus %d of %s is out of service", g, c.Gens[g].Bus, c.Name)
		}
		out = append(out, g)
	}
	return out, nil
}

// parseContingencies resolves the -contingencies flag; indices address
// Case.Branches (the full list, not only in-service branches).
// Explicit index lists are restricted to rated in-service branches:
// screening exists to check flow-limit security under outages, and an
// unrated branch's outage changes no inequality row, so naming one is
// almost always a stale index from a different system. The error spells
// out the branch's status and the case's rated count so the fix is
// obvious. ("all" applies the connected-N-1 filter instead, which
// includes unrated branches for layout-coverage parity with the tests.)
func parseContingencies(s string, c *grid.Case, all func() []int) ([]int, error) {
	switch s {
	case "all":
		return all(), nil
	case "none", "":
		return nil, nil
	}
	rated := 0
	for _, br := range c.Branches {
		if br.Status && br.RateA > 0 {
			rated++
		}
	}
	var out []int
	for _, p := range strings.Split(s, ",") {
		l, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -contingencies entry %q: %v", p, err)
		}
		if l < 0 || l >= len(c.Branches) {
			return nil, fmt.Errorf("-contingencies entry %d outside [0, %d) for %s", l, len(c.Branches), c.Name)
		}
		br := c.Branches[l]
		switch {
		case !br.Status:
			return nil, fmt.Errorf("-contingencies entry %d: branch %d-%d of %s is out of service", l, br.From, br.To, c.Name)
		case br.RateA <= 0:
			return nil, fmt.Errorf("-contingencies entry %d: branch %d-%d of %s is unrated — explicit contingencies must name rated branches (%s has %d of %d); use -contingencies all for the connected N-1 set",
				l, br.From, br.To, c.Name, c.Name, rated, len(c.Branches))
		}
		out = append(out, l)
	}
	return out, nil
}

// sampleDraws draws per-bus load factors uniformly from [1−spread, 1+spread].
func sampleDraws(nb, n int, seed int64, spread float64) []la.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]la.Vector, n)
	for i := range out {
		f := make(la.Vector, nb)
		for k := range f {
			f[k] = 1 - spread + 2*spread*rng.Float64()
		}
		out[i] = f
	}
	return out
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
