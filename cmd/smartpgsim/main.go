// Command smartpgsim runs the full Smart-PGSim pipeline on one system:
// offline phase (sample loads, solve to collect ground truth, train the
// physics-informed MTL model) followed by the online evaluation that
// regenerates the rows of Figures 4, 5, 6, 7 and 8 and Table III.
//
// Usage:
//
//	smartpgsim -case case9 -n 200 -epochs 300
//	smartpgsim -case case14 -n 100 -epochs 150 -variants
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/mtl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smartpgsim: ")
	caseName := flag.String("case", "case9", "test system")
	n := flag.Int("n", 120, "load samples (train+validation)")
	epochs := flag.Int("epochs", 200, "training epochs")
	seed := flag.Int64("seed", 1, "seed")
	variants := flag.Bool("variants", false, "also compare Sep models / MTL / Smart-PGSim (Figs 7-8)")
	maxEval := flag.Int("eval", 0, "cap on evaluated validation problems (0 = all)")
	workers := flag.Int("workers", 0, "parallel solve/evaluation workers (0 = PGSIM_WORKERS or all cores)")
	flag.Parse()
	batch.SetDefaultWorkers(*workers)

	sys, err := core.LoadSystem(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("offline phase: generating %d problems on %s", *n, sys.Name)
	set, err := sys.GenerateData(*n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	train, val := set.Split(0.8)
	log.Printf("training Smart-PGSim model (%d train / %d val, %d epochs)",
		len(train.Samples), len(val.Samples), *epochs)
	m, err := sys.TrainModel(mtl.VariantSmartPGSim, train, *epochs, *seed, log.Printf)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("online phase: evaluating")
	ev := core.Evaluate(sys, m, val, *maxEval)
	fmt.Println()
	core.PrintFig4(os.Stdout, []core.EvalResult{ev})
	fmt.Println()
	core.PrintFig5(os.Stdout, []core.EvalResult{ev})
	fmt.Println()
	core.PrintFig6(os.Stdout, core.PredictionAccuracy(sys, m, val))
	fmt.Println()
	core.PrintTableIII(os.Stdout, []core.ReplacementResult{core.ReplacementStudy(sys, m, val, *maxEval)})

	if *variants {
		fmt.Println()
		log.Printf("training all three variants for Figures 7-8")
		rows, err := core.CompareModels(sys, train, val, *epochs, *seed, *maxEval, nil)
		if err != nil {
			log.Fatal(err)
		}
		core.PrintFig7(os.Stdout, sys.Name, rows)
		fmt.Println()
		core.PrintFig8(os.Stdout, sys.Name, rows)
	}

	fmt.Println()
	cases := core.ConvergenceStudy(sys, &val.Samples[0])
	core.PrintFig10(os.Stdout, cases)
}
