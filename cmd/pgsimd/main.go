// Command pgsimd is the warm-start OPF serving daemon: it loads one or
// more test systems, keeps their prepared problem structure and a pool
// of model replicas resident, and serves solve requests over HTTP/JSON
// (POST /v1/solve), micro-batching concurrent requests onto the
// parallel worker pool. Warm starts fall back to a cold restart on
// non-convergence, so every answerable request is answered; the
// /metrics endpoint reports the live warm-start hit rate, iteration
// counts and latency histograms.
//
// Models come from cmd/train snapshots (-model) or, for a
// self-contained demo, are trained at boot (-train). Systems without
// either serve the cold path only.
//
// Usage:
//
//	pgsimd -systems case9 -train 120 -epochs 200
//	pgsimd -systems case9,case14 -model case9=case9.model -addr :8421
//	curl -s localhost:8421/v1/solve -d '{"system":"case9","scale":1.05}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/mtl"
	"repro/internal/serve"
)

// modelFlags collects repeated -model name=path pairs.
type modelFlags map[string]string

func (m modelFlags) String() string { return "" }

func (m modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want -model system=path, got %q", v)
	}
	m[name] = path
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgsimd: ")
	addr := flag.String("addr", ":8421", "listen address")
	systems := flag.String("systems", "case9", "comma-separated systems to serve (case5 … case300)")
	models := modelFlags{}
	flag.Var(models, "model", "system=path of a cmd/train snapshot (repeatable)")
	variantName := flag.String("variant", "smartpgsim", "variant of the -model snapshots: sep, mtl or smartpgsim")
	trainN := flag.Int("train", 0, "bootstrap-train a model at boot on this many load samples for systems without -model (0 = serve cold-only)")
	epochs := flag.Int("epochs", 200, "bootstrap training epochs")
	seed := flag.Int64("seed", 1, "bootstrap data/training seed")
	workers := flag.Int("workers", 0, "solver workers per micro-batch (0 = PGSIM_WORKERS or all cores)")
	maxBatch := flag.Int("max-batch", 16, "max requests coalesced into one micro-batch")
	window := flag.Duration("batch-window", 2*time.Millisecond, "how long to wait for requests to coalesce (negative = no wait)")
	queue := flag.Int("queue", 256, "pending-request bound (full queue answers 503)")
	solverThreads := flag.Int("solver-threads", 0, "threads per KKT factorization/solve, capped by the worker budget (0 = PGSIM_SOLVER_THREADS or 1)")
	captureDir := flag.String("capture-dir", "", "directory for served-traffic capture files and the model registry (empty = lifecycle off)")
	captureCap := flag.Int("capture-cap", 1024, "captured (instance, solution) pairs retained per system (ring buffer)")
	canaryFrac := flag.Float64("canary-frac", 0.2, "fraction of warm traffic routed to a canary candidate")
	canaryWindow := flag.Int("canary-window", 32, "warm solves per arm before a canary window decides")
	retrain := flag.Bool("retrain", false, "retrain automatically on detected drift (needs -capture-dir and a model)")
	retrainEpochs := flag.Int("retrain-epochs", 0, "epochs per drift-triggered retrain (0 = the variant's training default)")
	flag.Parse()
	batch.SetDefaultWorkers(*workers)

	variant, err := mtl.ParseVariant(*variantName)
	if err != nil {
		log.Fatal(err)
	}
	names := strings.Split(*systems, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	loaded, err := core.LoadSystems(names)
	if err != nil {
		log.Fatal(err)
	}

	srv := serve.New(serve.Config{
		Workers:       *workers,
		MaxBatch:      *maxBatch,
		BatchWindow:   *window,
		QueueDepth:    *queue,
		SolverThreads: *solverThreads,
	})
	// With -capture-dir the daemon runs the full model lifecycle: served
	// traffic is captured to <dir>/<system>.capture, boot models are
	// registered in the versioned registry under <dir>/registry, and —
	// with -retrain — drift triggers a background retrain whose
	// candidate canaries at -canary-frac before promotion.
	var reg *lifecycle.Registry
	if *captureDir != "" {
		reg, err = lifecycle.NewRegistry(filepath.Join(*captureDir, "registry"), nil)
		if err != nil {
			log.Fatal(err)
		}
	}
	for _, sys := range loaded {
		m, err := modelFor(sys, models, variant, *trainN, *epochs, *seed)
		if err != nil {
			log.Fatal(err)
		}
		mode := "cold-only"
		if m != nil {
			mode = "warm-start"
		}
		if *captureDir != "" && m != nil {
			v, err := reg.SaveIncumbent(sys.Name, m, "boot")
			if err != nil {
				log.Fatal(err)
			}
			srv.AddSystemVersion(sys, m, v.ID)
			mgr, err := lifecycle.NewManager(lifecycle.Config{
				System:  sys,
				Variant: variant,
				Capture: lifecycle.CaptureConfig{Dir: *captureDir, Cap: *captureCap},
				Canary:  lifecycle.CanaryConfig{Frac: *canaryFrac, Window: *canaryWindow},

				RetrainEpochs: *retrainEpochs,
				RetrainSeed:   *seed,
				Registry:      reg,
				Logf:          log.Printf,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := srv.AttachLifecycle(sys.Name, mgr, *retrain); err != nil {
				log.Fatal(err)
			}
			mode += ", lifecycle"
			if *retrain {
				mode += "+auto-retrain"
			}
		} else {
			srv.AddSystem(sys, m)
		}
		log.Printf("serving %s (%d buses, #λ=%d #µ=%d, %s)",
			sys.Name, sys.Case.NB(), sys.OPF.Lay.NEq, sys.OPF.Lay.NIq, mode)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		log.Printf("listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	<-ctx.Done()
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	srv.Close() // after the listener drains, so no handler waits forever
	log.Printf("bye")
}

// modelFor resolves a system's warm-start model: a -model snapshot if
// given, a bootstrap-trained model if -train > 0, else nil (cold-only).
func modelFor(sys *core.System, models modelFlags, variant mtl.Variant, trainN, epochs int, seed int64) (*mtl.Model, error) {
	if path, ok := models[sys.Name]; ok {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, err := sys.LoadModel(variant, f)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded %s model for %s from %s", variant, sys.Name, path)
		return m, nil
	}
	if trainN <= 0 {
		return nil, nil
	}
	log.Printf("bootstrap: generating %d samples on %s", trainN, sys.Name)
	set, err := sys.GenerateData(trainN, seed)
	if err != nil {
		return nil, err
	}
	train, _ := set.Split(0.8)
	log.Printf("bootstrap: training %s on %d samples (%d epochs)", variant, len(train.Samples), epochs)
	return sys.TrainModel(variant, train, epochs, seed, log.Printf)
}
