// Command train fits a Smart-PGSim model variant on a dataset produced by
// cmd/traingen and writes the trained weights (with normalization state).
//
// Usage:
//
//	train -case case9 -data case9.ds -epochs 400 -out case9.model
//	train -case case9 -data case9.ds -variant mtl
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mtl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	caseName := flag.String("case", "case9", "test system the dataset was generated on")
	data := flag.String("data", "", "dataset file from cmd/traingen (required)")
	variantName := flag.String("variant", "smartpgsim", "model variant: sep, mtl or smartpgsim")
	epochs := flag.Int("epochs", 0, "training epochs (0 = per-system default, see core.TrainingDefaults)")
	seed := flag.Int64("seed", 1, "initialization seed")
	out := flag.String("out", "", "output model file (default <case>.model)")
	workers := flag.Int("workers", 0, "parallel evaluation workers (0 = PGSIM_WORKERS or all cores)")
	flag.Parse()
	batch.SetDefaultWorkers(*workers)
	if *data == "" {
		log.Fatal("-data is required (generate one with cmd/traingen)")
	}
	if *out == "" {
		*out = *caseName + ".model"
	}
	variant, err := mtl.ParseVariant(*variantName)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := core.LoadSystem(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	set, err := dataset.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if set.CaseName != sys.Name {
		log.Fatalf("dataset was generated on %q, not %q", set.CaseName, sys.Name)
	}
	if *epochs == 0 {
		_, *epochs = core.TrainingDefaults(sys.Case.NB())
	}
	train, val := set.Split(0.8)
	log.Printf("training %s on %d samples for %d epochs (%d held out)", variant, len(train.Samples), *epochs, len(val.Samples))
	m, err := sys.TrainModel(variant, train, *epochs, *seed, log.Printf)
	if err != nil {
		log.Fatal(err)
	}

	of, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer of.Close()
	if err := m.Save(of); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote model to %s", *out)

	ev := core.Evaluate(sys, m, val, 0)
	core.PrintFig4(os.Stderr, []core.EvalResult{ev})
}
