// Command pgsim solves the AC optimal power flow of a test system (or a
// Matpower case file) with the MIPS interior-point solver and prints the
// dispatch, multiplier summary and timing.
//
// Usage:
//
//	pgsim -case case9
//	pgsim -file mygrid.m -trace
//	pgsim -case case30 -scale 1.05
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/casegen"
	"repro/internal/grid"
	"repro/internal/opf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgsim: ")
	caseName := flag.String("case", "case9", "built-in system (case5, case9, case14, case30, case39, case57, case118, case300)")
	file := flag.String("file", "", "Matpower case file (overrides -case)")
	scale := flag.Float64("scale", 1.0, "uniform load scaling factor")
	trace := flag.Bool("trace", false, "print per-iteration convergence trace")
	flag.Parse()

	var (
		c   *grid.Case
		err error
	)
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			log.Fatal(ferr)
		}
		c, err = grid.ParseMatpower(f)
		f.Close()
	} else {
		c, err = casegen.Paper(*caseName)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *scale != 1.0 {
		fac := make([]float64, c.NB())
		for i := range fac {
			fac[i] = *scale
		}
		c.ScaleLoads(fac)
	}

	o := opf.Prepare(c)
	r, err := o.Solve(nil, opf.Options{RecordTrace: *trace})
	if err != nil {
		log.Fatalf("solve failed: %v", err)
	}

	fmt.Printf("case %s: %d buses, %d generators, %d branches (#λ=%d #µ=%d)\n",
		c.Name, c.NB(), c.NG(), c.NL(), o.Lay.NEq, o.Lay.NIq)
	fmt.Printf("converged in %d iterations (prep %v, solve %v)\n",
		r.Iterations, r.PrepTime, r.SolveTime)
	fmt.Printf("objective: %.2f $/hr\n\n", r.Cost)
	fmt.Printf("%-6s %10s %10s\n", "bus", "Vm (pu)", "Va (deg)")
	for i, b := range c.Buses {
		fmt.Printf("%-6d %10.4f %10.3f\n", b.ID, r.Vm[i], grid.Rad2Deg(r.Va[i]))
	}
	fmt.Printf("\n%-6s %12s %12s\n", "gen@", "Pg (MW)", "Qg (MVAr)")
	for gi, g := range c.ActiveGens() {
		fmt.Printf("%-6d %12.2f %12.2f\n", g.Bus, r.Pg[gi], r.Qg[gi])
	}
	if *trace {
		fmt.Printf("\n%4s %12s %12s %12s %12s %12s\n", "it", "step", "feas", "grad", "comp", "cost")
		for _, t := range r.Trace {
			fmt.Printf("%4d %12.3e %12.3e %12.3e %12.3e %12.3e\n",
				t.Iter, t.StepSize, t.FeasCond, t.GradCond, t.CompCond, t.CostCond)
		}
	}
}
