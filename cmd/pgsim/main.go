// Command pgsim solves the AC optimal power flow of a test system (or a
// Matpower case file) with the MIPS interior-point solver and prints the
// dispatch, multiplier summary and timing. With a comma-separated -scale
// list it sweeps the load levels as a batch on the parallel worker pool
// and prints one summary row per level.
//
// Usage:
//
//	pgsim -case case9
//	pgsim -file mygrid.m -trace
//	pgsim -case case30 -scale 1.05
//	pgsim -case case30 -scale 0.9,0.95,1.0,1.05,1.1 -workers 4
//	pgsim -case case30 -ordering amd
//	pgsim -case case30 -kkt-reuse=false   # pre-reuse baseline (EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/casegen"
	"repro/internal/grid"
	"repro/internal/opf"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgsim: ")
	caseName := flag.String("case", "case9", "built-in system (case5, case9, case14, case30, case39, case57, case118, case300)")
	file := flag.String("file", "", "Matpower case file (overrides -case)")
	scale := flag.String("scale", "1.0", "uniform load scaling factor, or a comma-separated sweep (e.g. 0.9,1.0,1.1)")
	trace := flag.Bool("trace", false, "print per-iteration convergence trace")
	workers := flag.Int("workers", 0, "worker pool size for batch stages (0 = PGSIM_WORKERS or all cores)")
	ordering := flag.String("ordering", "", "fill-reducing ordering for the KKT factorization: natural, rcm, amd or auto (default: per-system selection, see opf.DefaultOrdering)")
	kktReuse := flag.Bool("kkt-reuse", true, "reuse the symbolic KKT factorization across interior-point iterations")
	solverThreads := flag.Int("solver-threads", 0, "threads per KKT factorization/solve, capped by the worker budget (0 = PGSIM_SOLVER_THREADS or 1)")
	flag.Parse()
	batch.SetDefaultWorkers(*workers)
	sparse.SetDefaultSolverThreads(*solverThreads)

	var c *grid.Case
	var err error
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			log.Fatal(ferr)
		}
		c, err = grid.ParseMatpower(f)
		f.Close()
	} else {
		c, err = casegen.Paper(*caseName)
	}
	if err != nil {
		log.Fatal(err)
	}
	scales, err := parseScales(*scale)
	if err != nil {
		log.Fatal(err)
	}
	if len(scales) > 1 {
		sweep(c, scales, *ordering, !*kktReuse)
		return
	}
	if s := scales[0]; s != 1.0 {
		fac := make([]float64, c.NB())
		for i := range fac {
			fac[i] = s
		}
		c.ScaleLoads(fac)
	}

	o := opf.Prepare(c)
	if err := applyOrdering(o, *ordering); err != nil {
		log.Fatal(err)
	}
	r, err := o.Solve(nil, opf.Options{RecordTrace: *trace, NoKKTReuse: !*kktReuse})
	if err != nil {
		log.Fatalf("solve failed: %v", err)
	}

	fmt.Printf("case %s: %d buses, %d generators, %d branches (#λ=%d #µ=%d)\n",
		c.Name, c.NB(), c.NG(), c.NL(), o.Lay.NEq, o.Lay.NIq)
	fmt.Printf("converged in %d iterations (prep %v, solve %v)\n",
		r.Iterations, r.PrepTime, r.SolveTime)
	if *kktReuse {
		st := o.KKTStats()
		fmt.Printf("KKT: ordering=%s, %d symbolic analyses, %d numeric refactors, %d fallbacks\n",
			o.Ordering(), st.Analyses, st.Refactors, st.Fallbacks)
	} else {
		fmt.Printf("KKT: ordering=%s, symbolic reuse disabled (one full factorization per iteration)\n", o.Ordering())
	}
	fmt.Printf("objective: %.2f $/hr\n\n", r.Cost)
	fmt.Printf("%-6s %10s %10s\n", "bus", "Vm (pu)", "Va (deg)")
	for i, b := range c.Buses {
		fmt.Printf("%-6d %10.4f %10.3f\n", b.ID, r.Vm[i], grid.Rad2Deg(r.Va[i]))
	}
	fmt.Printf("\n%-6s %12s %12s\n", "gen@", "Pg (MW)", "Qg (MVAr)")
	for gi, g := range c.ActiveGens() {
		fmt.Printf("%-6d %12.2f %12.2f\n", g.Bus, r.Pg[gi], r.Qg[gi])
	}
	if *trace {
		fmt.Printf("\n%4s %12s %12s %12s %12s %12s\n", "it", "step", "feas", "grad", "comp", "cost")
		for _, t := range r.Trace {
			fmt.Printf("%4d %12.3e %12.3e %12.3e %12.3e %12.3e\n",
				t.Iter, t.StepSize, t.FeasCond, t.GradCond, t.CompCond, t.CostCond)
		}
	}
}

// parseScales parses the -scale value: one factor or a comma list.
func parseScales(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -scale entry %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// applyOrdering resolves the -ordering flag: empty keeps the per-system
// default selected by opf.Prepare; any other value is parsed and forced
// onto the instance.
func applyOrdering(o *opf.OPF, flagVal string) error {
	if flagVal == "" {
		return nil
	}
	ord, err := sparse.ParseOrdering(flagVal)
	if err != nil {
		return err
	}
	o.SetOrdering(ord)
	return nil
}

// sweep solves the case at every load level on the worker pool, reusing
// the prepared OPF structure (and its shared KKT ordering cache), and
// prints one summary row per level.
func sweep(c *grid.Case, scales []float64, ordering string, noReuse bool) {
	base := opf.Prepare(c)
	if err := applyOrdering(base, ordering); err != nil {
		log.Fatal(err)
	}
	type row struct {
		r   *opf.Result
		err error
	}
	rows, _ := batch.Map(len(scales), batch.Options{}, func(t *batch.Task) (row, error) {
		fac := make([]float64, c.NB())
		for i := range fac {
			fac[i] = scales[t.Index]
		}
		r, err := base.Perturb(fac).Solve(nil, opf.Options{NoKKTReuse: noReuse})
		return row{r: r, err: err}, nil
	})
	fmt.Printf("case %s: load sweep over %d levels\n", c.Name, len(scales))
	fmt.Printf("%8s %10s %6s %14s %12s\n", "scale", "status", "iters", "cost ($/hr)", "solve")
	for i, out := range rows {
		status := "ok"
		switch {
		case out.err != nil:
			status = "error"
		case !out.r.Converged:
			status = "diverged"
		}
		cost := "-"
		if out.err == nil && out.r.Converged {
			cost = fmt.Sprintf("%.2f", out.r.Cost)
		}
		fmt.Printf("%8.3f %10s %6d %14s %12v\n",
			scales[i], status, out.r.Iterations, cost, out.r.SolveTime.Round(time.Microsecond))
	}
	if !noReuse {
		st := base.KKTStats()
		fmt.Printf("KKT: ordering=%s, %d ordering computation(s) shared across the sweep, %d symbolic analyses, %d numeric refactors, %d fallbacks\n",
			base.Ordering(), st.Orderings, st.Analyses, st.Refactors, st.Fallbacks)
	}
}
