// Sensitivity: reproduce one column of the paper's Table I — which
// warm-start components (X, λ, µ, Z) matter for convergence and speed.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	sys := core.MustLoadSystem("case9")
	fmt.Println("generating 20 problems and their exact solver states...")
	set, err := sys.GenerateData(20, 7)
	if err != nil {
		log.Fatal(err)
	}
	rows := core.SensitivityStudy(sys, set, 0)
	core.PrintTableI(os.Stdout, []string{"case9"}, map[string][]core.SensRow{"case9": rows})

	fmt.Println("\nreading the table:")
	fmt.Println("  '1 1 1 1' — all components precise: fastest convergence;")
	fmt.Println("  '0 0 0 1' — precise slacks Z with default multipliers µ is an")
	fmt.Println("              inconsistent interior point and hurts success rate;")
	fmt.Println("  '1 0 0 0' — a precise solution X alone is safe but barely faster.")
}
