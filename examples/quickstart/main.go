// Quickstart: solve the AC optimal power flow of the WSCC 9-bus system
// and print the optimal dispatch.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/grid"
	"repro/internal/opf"
)

func main() {
	// 1. Load a built-in case (or grid.ParseMatpower for your own file).
	c := grid.Case9()

	// 2. Prepare the OPF problem (admittance matrices, bounds, layout).
	problem := opf.Prepare(c)

	// 3. Solve from the default interior starting point.
	result, err := problem.Solve(nil, opf.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("solved %s in %d interior-point iterations (%v)\n",
		c.Name, result.Iterations, result.SolveTime)
	fmt.Printf("minimum generation cost: %.2f $/hr\n\n", result.Cost)
	for gi, g := range c.ActiveGens() {
		fmt.Printf("generator at bus %d: Pg = %7.2f MW, Qg = %7.2f MVAr\n",
			g.Bus, result.Pg[gi], result.Qg[gi])
	}
	fmt.Printf("\nbus voltages (pu): ")
	for _, vm := range result.Vm {
		fmt.Printf("%.4f ", vm)
	}
	fmt.Println()
}
