// Transfer: the paper's Section VII-A claim — the physics-embedded
// objective f_AC lets the model transfer to a modified network topology
// (e.g., a transmission line suddenly broken) with little retraining.
//
// We train the Smart-PGSim model on the intact IEEE 14-bus system, take
// branch 13–14 out of service, and compare three models on the outaged
// grid: the stale base model, the base model fine-tuned for a few epochs
// on a small outage dataset, and a model trained from scratch on the same
// small dataset.
//
//	go run ./examples/transfer
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mtl"
	"repro/internal/opf"
)

func main() {
	base := core.MustLoadSystem("case14")
	fmt.Println("training base model on the intact 14-bus system...")
	baseSet, err := base.GenerateData(100, 3)
	if err != nil {
		log.Fatal(err)
	}
	baseTrain, _ := baseSet.Split(0.8)
	model, err := base.TrainModel(mtl.VariantSmartPGSim, baseTrain, 200, 3, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Break a line. case14 branches are unrated, so the constraint
	// layout (and with it every model head) keeps its shape.
	outCase := base.Case.Clone()
	for i := range outCase.Branches {
		if outCase.Branches[i].From == 13 && outCase.Branches[i].To == 14 {
			outCase.Branches[i].Status = false
		}
	}
	outCase.Name = "case14-outage"
	if err := outCase.Normalize(); err != nil {
		log.Fatal(err)
	}
	outSys := &core.System{Name: outCase.Name, Case: outCase, OPF: opf.Prepare(outCase)}

	fmt.Println("collecting a small dataset on the outaged grid (30 samples)...")
	outSet, err := dataset.Generate(outCase, dataset.DefaultPreparer, dataset.Options{N: 30, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	outTrain, outVal := outSet.Split(0.7)

	// Fine-tune the base model briefly on the new topology. The physics
	// losses rebuild around the outaged admittance matrix.
	phys := mtl.NewPhysics(outSys.OPF, dataset.InputVector(outCase))
	fineTuned := cloneModel(model)
	if _, err := mtl.Train(fineTuned, phys, outTrain, mtl.TrainConfig{Epochs: 40, BatchSize: 8, LR: 5e-4, Seed: 4}); err != nil {
		log.Fatal(err)
	}

	// Baseline: train from scratch with the same tiny budget.
	scratch := mtl.New(outSys.OPF.Lay, model.Cfg)
	if _, err := mtl.Train(scratch, phys, outTrain, mtl.TrainConfig{Epochs: 40, BatchSize: 8, Seed: 4}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %10s %12s\n", "model on outaged grid", "SR", "mean iters")
	report(outSys, "stale base model", model, outVal)
	report(outSys, "fine-tuned (40 epochs)", fineTuned, outVal)
	report(outSys, "from scratch (40 epochs)", scratch, outVal)
	fmt.Println("\nexpected shape: fine-tuning recovers most of the warm-start")
	fmt.Println("quality with a fraction of the original data and epochs.")
}

func report(sys *core.System, label string, m *mtl.Model, val *dataset.Set) {
	var ok, iters int
	for _, s := range val.Samples {
		out := sys.SolveWarm(m, s.Factors, s.Input)
		if out.Converged {
			ok++
		}
		iters += out.Iterations
	}
	n := len(val.Samples)
	fmt.Printf("%-28s %9.0f%% %12.1f\n", label, 100*float64(ok)/float64(n), float64(iters)/float64(n))
}

// cloneModel duplicates a model (architecture + weights + normalizer)
// through its serialization round trip.
func cloneModel(m *mtl.Model) *mtl.Model {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		log.Fatal(err)
	}
	c := mtl.New(m.Lay, m.Cfg)
	if err := c.Load(&buf); err != nil {
		log.Fatal(err)
	}
	return c
}
