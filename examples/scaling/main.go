// Scaling: fan one batch of SC-ACOPF scenarios out across worker
// goroutines, each holding a model replica — the data-parallel inference
// pattern of the paper's Figure 9 — and measure real speedup on this
// machine plus the modeled 128-worker cluster curve.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/scale"
)

func main() {
	sys := core.MustLoadSystem("case9")
	set, err := sys.GenerateData(40, 9)
	if err != nil {
		log.Fatal(err)
	}
	train, val := set.Split(0.8)
	model, err := sys.TrainModel(mtl.VariantSmartPGSim, train, 80, 9, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Build a large scenario batch by tiling the validation inputs.
	inputs := val.Inputs()
	big := la.NewMatrix(2000, inputs.Cols)
	for r := 0; r < big.Rows; r++ {
		copy(big.Row(r), inputs.Row(r%inputs.Rows))
	}

	// Real data parallelism on this machine (one replica per worker).
	maxW := runtime.GOMAXPROCS(0)
	fmt.Printf("real scenario fan-out on %d-core host (%d scenarios):\n", maxW, big.Rows)
	var t1 time.Duration
	for w := 1; w <= maxW; w *= 2 {
		replicas := make([]*mtl.Model, w)
		for i := range replicas {
			replicas[i] = mtl.New(model.Lay, model.Cfg)
			replicas[i].Norm = model.Norm
		}
		t, _ := scale.RunParallel(replicas, big, w)
		if w == 1 {
			t1 = t
		}
		fmt.Printf("  %3d workers: %10s  speedup %.2fx\n", w, t.Round(time.Microsecond), float64(t1)/float64(t))
	}

	// Modeled cluster extrapolation (the paper's 128-GPU experiment).
	tInf := scale.MeasureInference(model, inputs)
	fmt.Printf("\nmodeled cluster strong scaling (10k scenarios, per-inference %v):\n", tInf)
	for _, p := range scale.StrongScaling(tInf, 10000, []int{1, 16, 32, 64, 128}, scale.DefaultCluster()) {
		fmt.Printf("  %3d workers: speedup %6.1fx (ideal %3.0fx, eff %.0f%%)\n",
			p.Workers, p.Speedup, p.Ideal, p.Eff*100)
	}
}
