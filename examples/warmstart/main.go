// Warmstart: the full Smart-PGSim loop in miniature. Train the
// physics-informed multitask model on sampled load scenarios of the
// 9-bus system, then use its predictions to warm-start the interior-point
// solver on unseen scenarios and compare against cold starts.
//
//	go run ./examples/warmstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mtl"
	"repro/internal/opf"
)

func main() {
	sys := core.MustLoadSystem("case9")

	// Offline phase: sample ±10% loads, solve each to optimality.
	fmt.Println("offline: generating 120 labelled problems (±10% loads)...")
	set, err := sys.GenerateData(120, 42)
	if err != nil {
		log.Fatal(err)
	}
	train, val := set.Split(0.8)

	fmt.Println("offline: training the Smart-PGSim MTL model (physics losses on)...")
	model, err := sys.TrainModel(mtl.VariantSmartPGSim, train, 250, 42, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Online phase: predict a warm start for each unseen scenario.
	fmt.Println("online: warm-starting the solver on validation scenarios")
	fmt.Printf("\n%6s %12s %12s %10s\n", "prob", "cold iters", "warm iters", "speedup")
	var coldTot, warmTot float64
	for i, s := range val.Samples {
		cc := sys.Case.Clone()
		cc.ScaleLoads(s.Factors)
		o := opf.Prepare(cc)
		cold, err := o.Solve(nil, opf.Options{})
		if err != nil {
			continue
		}
		warm, err := o.Solve(model.Predict(s.Input), opf.Options{})
		if err != nil || !warm.Converged {
			fmt.Printf("%6d %12d %12s %10s\n", i, cold.Iterations, "failed", "-")
			continue
		}
		su := float64(cold.SolveTime) / float64(warm.SolveTime)
		coldTot += float64(cold.Iterations)
		warmTot += float64(warm.Iterations)
		fmt.Printf("%6d %12d %12d %9.2fx\n", i, cold.Iterations, warm.Iterations, su)
	}
	fmt.Printf("\nmean iterations: cold %.1f -> warm %.1f (%.1f%% of cold)\n",
		coldTot/float64(len(val.Samples)), warmTot/float64(len(val.Samples)),
		100*warmTot/coldTot)
}
