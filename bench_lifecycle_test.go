package smartpgsim_test

// Online model lifecycle benchmark (BENCH_lifecycle.json). The study
// runs the closed loop once on case9 — captured served traffic, a
// drift-triggered retrain through the offline training path, a
// canary-gated promotion — and records its costs: retrain wall-clock,
// capture/canary parameters, and the warm-iteration counts before the
// drift and after the promotion. The canary gate is enforced with
// b.Fatal: a candidate whose measured arm statistics regress must never
// reach promotion, and the promoted candidate must warm-converge on
// fresh probe traffic. The timed operation is the hot swap itself
// (clone + float32 warmup + atomic replica-set store), the latency a
// promotion adds to the serving process.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/mtl"
	"repro/internal/serve"
)

const (
	lcBenchDriftWindow  = 8
	lcBenchBaseline     = 2
	lcBenchCanaryFrac   = 0.5
	lcBenchCanaryWindow = 4
	lcBenchProbes       = 8
)

var lifecycleReportOnce sync.Once

// BenchmarkLifecycle writes BENCH_lifecycle.json on first invocation
// (the closed-loop study), then times the hot swap: what one promotion
// costs the serving process.
func BenchmarkLifecycle(b *testing.B) {
	writeLifecycleBenchReport(b)
	sys := core.MustLoadSystem("case9")
	set, err := sys.GenerateData(40, 3)
	if err != nil {
		b.Fatal(err)
	}
	train, _ := set.Split(0.8)
	m, err := sys.TrainModel(mtl.VariantSmartPGSim, train, 60, 7, nil)
	if err != nil {
		b.Fatal(err)
	}
	s := serve.New(serve.Config{})
	defer s.Close()
	s.AddSystem(sys, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SwapModel(sys.Name, m, fmt.Sprintf("v-bench-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// probeWarm solves n fresh instances warm with the given model and
// returns the warm hit count and the mean warm iterations over hits.
func probeWarm(b *testing.B, sys *core.System, m core.Predictor, n int, seed float64) (hits int, meanIters float64) {
	b.Helper()
	var iters int
	for i := 0; i < n; i++ {
		factors := make([]float64, sys.Case.NB())
		for j := range factors {
			factors[j] = 1.0 + seed + 0.002*float64(i)
		}
		w := sys.SolveWarm(m, factors, sys.InstanceInput(factors))
		if w.Converged {
			hits++
			iters += w.Iterations
		}
	}
	if hits > 0 {
		meanIters = float64(iters) / float64(hits)
	}
	return hits, meanIters
}

// writeLifecycleBenchReport runs capture → drift → retrain → canary →
// promote once and writes BENCH_lifecycle.json.
func writeLifecycleBenchReport(b *testing.B) {
	b.Helper()
	lifecycleReportOnce.Do(func() {
		sys := core.MustLoadSystem("case9")
		set, err := sys.GenerateData(40, 3)
		if err != nil {
			b.Fatal(err)
		}
		train, _ := set.Split(0.8)
		m, err := sys.TrainModel(mtl.VariantSmartPGSim, train, 60, 7, nil)
		if err != nil {
			b.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "lifecycle-bench")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		reg, err := lifecycle.NewRegistry(dir, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reg.SaveIncumbent(sys.Name, m, "bench boot"); err != nil {
			b.Fatal(err)
		}
		mgr, err := lifecycle.NewManager(lifecycle.Config{
			System:  sys,
			Variant: mtl.VariantSmartPGSim,
			Drift:   lifecycle.DriftConfig{Window: lcBenchDriftWindow, Baseline: lcBenchBaseline},
			Canary:  lifecycle.CanaryConfig{Frac: lcBenchCanaryFrac, Window: lcBenchCanaryWindow},

			RetrainEpochs: 60,
			RetrainSeed:   11,
			Registry:      reg,
		})
		if err != nil {
			b.Fatal(err)
		}

		// Pre-drift serving quality of the incumbent on probe traffic.
		preHits, preIters := probeWarm(b, sys, m, lcBenchProbes, 0.001)
		if preHits == 0 {
			b.Fatal("incumbent does not warm-converge on probe traffic")
		}

		// Served traffic: the capture tap sees 24 warm solves, generated
		// through the exact dataset path serving captures. The final
		// window's warm starts stop converging — the drift edge.
		traffic, err := sys.GenerateData(3*lcBenchDriftWindow, 5)
		if err != nil {
			b.Fatal(err)
		}
		driftAt := -1
		for i, smp := range traffic.Samples {
			rec := lifecycle.Record{
				Factors: smp.Factors, Input: smp.Input,
				X: smp.X, Lam: smp.Lam, Mu: smp.Mu, Z: smp.Z,
				Cost: smp.Cost, Iterations: smp.Iterations,
				Warm:          true,
				WarmConverged: i < 2*lcBenchDriftWindow,
			}
			if mgr.Observe(rec) == lifecycle.ActionRetrain {
				driftAt = i
			}
		}
		if driftAt != 3*lcBenchDriftWindow-1 {
			b.Fatalf("drift fired at observation %d, want %d", driftAt, 3*lcBenchDriftWindow-1)
		}

		// Drift-triggered retrain through the offline path, wall-clocked.
		t0 := time.Now()
		cand, candID, err := mgr.Retrain()
		retrain := time.Since(t0)
		if err != nil {
			b.Fatal(err)
		}

		// Canary: the incumbent arm reflects the degraded regime (no warm
		// hits), the candidate arm carries measured probe outcomes of the
		// retrained model.
		candHits, candIters := probeWarm(b, sys, cand, lcBenchCanaryWindow, 0.003)
		c := mgr.Canary()
		for i := 0; i < lcBenchCanaryWindow; i++ {
			c.Observe(false, false, 0)
			c.Observe(true, i < candHits, int(candIters+0.5))
		}
		d := mgr.Decide()
		incHit, _, candHitRate, _ := c.Stats()
		if d == lifecycle.Promote && candHitRate < incHit-lcBenchCanaryFrac*0.1 {
			b.Fatalf("canary promoted a regressing candidate (hit %.2f vs %.2f)", candHitRate, incHit)
		}
		if d != lifecycle.Promote {
			b.Fatalf("canary decision = %v, want promote (candidate hit %d/%d)", d, candHits, lcBenchCanaryWindow)
		}
		if err := mgr.CompletePromotion(); err != nil {
			b.Fatal(err)
		}

		// Post-promotion serving quality of the promoted candidate.
		postHits, postIters := probeWarm(b, sys, cand, lcBenchProbes, 0.001)
		if postHits != lcBenchProbes {
			b.Fatalf("promoted candidate warm-converged on %d/%d probes", postHits, lcBenchProbes)
		}

		st := mgr.Stats()
		report := map[string]any{
			"benchmark": "lifecycle",
			"produced_by": "go test -run '^$' -bench BenchmarkLifecycle -benchtime 1x . " +
				"(closed-loop capture/drift/retrain/canary study; see EXPERIMENTS.md §Online model lifecycle)",
			"system": sys.Name,
			"drift": map[string]any{
				"window":   lcBenchDriftWindow,
				"baseline": lcBenchBaseline,
				"fired_at": driftAt,
			},
			"canary": map[string]any{
				"frac":     lcBenchCanaryFrac,
				"window":   lcBenchCanaryWindow,
				"decision": d.String(),
			},
			"captured_pairs":                 st.Captured,
			"retrain_ms":                     float64(retrain.Nanoseconds()) / 1e6,
			"candidate":                      candID,
			"pre_drift_warm_iters_mean":      preIters,
			"pre_drift_warm_hits":            preHits,
			"post_promotion_warm_iters_mean": postIters,
			"post_promotion_warm_hits":       postHits,
			"probes":                         lcBenchProbes,
			"promotions":                     st.Promotions,
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_lifecycle.json", append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Printf("BENCH_lifecycle.json: retrain %.0f ms on %d captured pairs, canary %s, warm iters %.1f → %.1f\n",
			float64(retrain.Nanoseconds())/1e6, st.Captured, d, preIters, postIters)
	})
}
