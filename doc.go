// Package smartpgsim is a from-scratch Go reproduction of
// "Smart-PGSim: Using Neural Network to Accelerate AC-OPF Power Grid
// Simulation" (Dong, Xie, Kestor, Li — SC20).
//
// The implementation lives under internal/: the power-grid model and AC
// power-flow algebra (internal/grid), dense and sparse linear algebra
// (internal/la; internal/sparse, whose supernodal blocked LU
// refactorization carries the 1000+ bus systems — DESIGN.md §11), the
// Newton power flow (internal/pf), the MIPS primal–dual interior-point
// solver with its zero-allocation warm loop (internal/mips), the AC-OPF
// assembly (internal/opf), the neural-network framework and multitask
// model (internal/nn, internal/mtl), dataset generation
// (internal/dataset), the Smart-PGSim pipeline and experiment drivers
// (internal/core), the scaling study (internal/scale), the parallel
// batch-execution engine that fans every sweep out across the host's
// cores (internal/batch), the warm-start OPF serving subsystem
// (internal/serve), the topology-aware N-1 contingency-screening
// engine (internal/scopf), the multi-period trajectory runner with
// warm-start chaining and ramp coupling (internal/horizon), and the
// online model lifecycle — served-traffic capture, drift-triggered
// retraining, the versioned model registry and canary-gated hot swaps
// (internal/lifecycle, DESIGN.md §13).
//
// Executables are under cmd/: pgsim (one-shot AC-OPF solves and load
// sweeps), traingen and train (the offline phase as artifacts),
// smartpgsim (the full pipeline and paper figures), sensitivity and
// scaling (Table I and Figure 9), scopf (N-1 contingency screening on
// the topology-aware engine), horizon (multi-period OPF trajectories
// with chain/predict/cold warm-start modes), results (renders
// BENCH_paper.json — the per-system warm-start speedups of the embedded
// fleet, up to the beyond-paper case1354 — plus the BENCH_kkt.json
// blocked-kernel section, the BENCH_trajectory.json crossover study
// and the BENCH_lifecycle.json closed-loop study into the RESULTS.md
// paper comparison), and pgsimd — the long-running warm-start OPF
// serving daemon with an HTTP/JSON API including the streaming
// /v1/trajectory endpoint and the online model lifecycle (capture,
// drift-triggered retraining, canary-gated hot swap; README.md
// documents the endpoints and flags). Runnable examples live under
// examples/, and bench_test.go in this directory regenerates every
// table and figure of the paper — see DESIGN.md and EXPERIMENTS.md.
package smartpgsim

// Version identifies the reproduction release.
const Version = "1.0.0"
