package smartpgsim_test

// Docs coverage check (run by CI's docs job): the README system matrix
// and the RESULTS.md comparison must mention every system casegen.Paper
// exposes, so adding a system to the fleet without documenting it — or
// regenerating RESULTS.md from a partial benchmark run — fails fast.

import (
	"os"
	"regexp"
	"testing"

	"repro/internal/casegen"
)

func mustRead(t *testing.T, path string) string {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("docs check: %v", err)
	}
	return string(buf)
}

// mentions reports whether doc contains name as a whole word (so
// "case30" does not satisfy a "case3" lookup and vice versa).
func mentions(doc, name string) bool {
	return regexp.MustCompile(`\b` + regexp.QuoteMeta(name) + `\b`).MatchString(doc)
}

// TestDocsSystemMatrixCoverage: README.md must name every paper system
// (the "Embedded systems" matrix plus the synthesized case39 row).
func TestDocsSystemMatrixCoverage(t *testing.T) {
	readme := mustRead(t, "README.md")
	for _, name := range casegen.SensitivitySystemNames() {
		if !mentions(readme, name) {
			t.Errorf("README.md does not mention %s (system matrix out of date?)", name)
		}
	}
}

// TestResultsCoverage: RESULTS.md must carry a row for every system the
// paper-scale benchmark sweeps (the BenchmarkPaperSystems set — the
// embedded systems at and above case30).
func TestResultsCoverage(t *testing.T) {
	results := mustRead(t, "RESULTS.md")
	for _, name := range []string{"case30", "case57", "case118", "case300", "case1354"} {
		if !mentions(results, name) {
			t.Errorf("RESULTS.md does not mention %s — regenerate from a full sweep (see EXPERIMENTS.md §Paper-scale sweep)", name)
		}
	}
	if !mentions(results, "2.60") {
		t.Error("RESULTS.md does not state the paper's 2.60x claim")
	}
}

// TestEmbeddedNamesResolve: every name EmbeddedNames advertises must
// resolve through Paper (the docs and benches iterate this list).
func TestEmbeddedNamesResolve(t *testing.T) {
	for _, name := range casegen.EmbeddedNames() {
		if _, err := casegen.Paper(name); err != nil {
			t.Errorf("EmbeddedNames lists %s but Paper fails: %v", name, err)
		}
	}
}

// TestLifecycleDocsCoverage: the online model lifecycle (DESIGN.md §13)
// must stay documented end to end — the pgsimd flags in README.md, the
// closed-loop recipe in EXPERIMENTS.md, and the BENCH_lifecycle.json
// schema in PERFORMANCE.md.
func TestLifecycleDocsCoverage(t *testing.T) {
	readme := mustRead(t, "README.md")
	for _, flag := range []string{"-capture-dir", "-capture-cap", "-canary-frac", "-canary-window", "-retrain", "-retrain-epochs"} {
		if !mentions(readme, flag[1:]) {
			t.Errorf("README.md does not document the pgsimd %s flag", flag)
		}
	}
	if !mentions(readme, "pgsimd_lifecycle_") {
		t.Error("README.md does not document the pgsimd_lifecycle_* metrics")
	}
	if design := mustRead(t, "DESIGN.md"); !mentions(design, "internal/lifecycle") {
		t.Error("DESIGN.md does not cover internal/lifecycle")
	}
	if exp := mustRead(t, "EXPERIMENTS.md"); !mentions(exp, "BenchmarkLifecycle") {
		t.Error("EXPERIMENTS.md has no BenchmarkLifecycle recipe")
	}
	if perf := mustRead(t, "PERFORMANCE.md"); !mentions(perf, "BENCH_lifecycle.json") {
		t.Error("PERFORMANCE.md does not describe the BENCH_lifecycle.json schema")
	}
}
