// Package horizon solves multi-period AC-OPF trajectories: sequences of
// load points at a fixed dispatch interval where per-generator ramp
// limits couple step t to step t−1's dispatch (ROADMAP item 3 — the
// paper's workload is i.i.d. draws; real operators solve forecasts).
//
// Each step is a load perturbation of one prepared base instance
// (opf.Perturb) with the previous step's accepted dispatch anchored via
// opf.RebindRamp, and is warm-started per the runner's Mode:
//
//   - ModeChain:   step t starts from step t−1's full primal/dual
//     solution, projected onto step t's layout with
//     opf.ProjectStartStep — solver-to-solver chaining, no model.
//   - ModePredict: the MTL model predicts a start for every step — the
//     i.i.d. serving behaviour applied per step.
//   - ModeCold:    every step solves from the interior default.
//
// A trajectory is inherently sequential (step t needs step t−1), so
// parallelism fans across trajectories on internal/batch with the
// engine's bit-identical seq-vs-parallel guarantee: each trajectory
// consumes only its own chained state and its own predictor replica,
// so results are invariant under worker count and scheduling order.
// The serving layer streams steps one at a time through the same
// Stepper the runner uses, which pins offline and served trajectories
// bit-identical by construction (see internal/serve's /v1/trajectory).
package horizon

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/batch"
	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/opf"
)

// Mode selects how each trajectory step is warm-started.
type Mode int

const (
	// ModeChain warm-starts step t from step t−1's accepted solution.
	// Step 0 has no predecessor and solves cold.
	ModeChain Mode = iota
	// ModePredict warm-starts every step from an MTL model prediction.
	ModePredict
	// ModeCold solves every step from the default interior start.
	ModeCold
)

// String names the mode as the -mode flag and the serving API spell it.
func (m Mode) String() string {
	switch m {
	case ModeChain:
		return "chain"
	case ModePredict:
		return "predict"
	case ModeCold:
		return "cold"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode parses "chain", "predict" or "cold".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "chain":
		return ModeChain, nil
	case "predict":
		return ModePredict, nil
	case "cold":
		return ModeCold, nil
	}
	return 0, fmt.Errorf("horizon: unknown mode %q (want chain, predict or cold)", s)
}

// Predictor produces a warm-start point from a model input [Pd; Qd].
// It is structurally identical to core.Predictor and scopf.Predictor,
// so the serving daemon's replica pool plugs in directly.
type Predictor interface {
	Predict(input la.Vector) *opf.Start
}

// Trajectory is a load trajectory: one per-bus multiplicative load
// factor vector per step, applied to the base case like opf.Perturb.
type Trajectory struct {
	Factors [][]float64
}

// Steps reports the trajectory length.
func (tr *Trajectory) Steps() int { return len(tr.Factors) }

// Synthetic builds the deterministic forecast trajectory used by the
// benchmarks, the CLI and the serving endpoint: a smooth ramp profile
// 1 + amp·sin(2πt/steps) (one diurnal shoulder over the horizon)
// multiplied by per-bus noise uniform in [1−spread, 1+spread]. The
// noise of step t is drawn from batch.TaskSeed(seed, t), so the same
// (nb, steps, seed, amp, spread) tuple reproduces the same trajectory
// everywhere — offline, served, and across worker counts.
func Synthetic(nb, steps int, seed int64, amp, spread float64) (*Trajectory, error) {
	if nb < 1 {
		return nil, fmt.Errorf("horizon: synthetic trajectory needs nb >= 1, got %d", nb)
	}
	if steps < 1 {
		return nil, fmt.Errorf("horizon: synthetic trajectory needs steps >= 1, got %d", steps)
	}
	if math.IsNaN(amp) || amp < 0 || amp >= 1 {
		return nil, fmt.Errorf("horizon: ramp amplitude %v out of range [0, 1)", amp)
	}
	if math.IsNaN(spread) || spread < 0 || spread >= 1 {
		return nil, fmt.Errorf("horizon: noise spread %v out of range [0, 1)", spread)
	}
	tr := &Trajectory{Factors: make([][]float64, steps)}
	for t := 0; t < steps; t++ {
		rng := rand.New(rand.NewSource(batch.TaskSeed(seed, t)))
		profile := 1 + amp*math.Sin(2*math.Pi*float64(t)/float64(steps))
		f := make([]float64, nb)
		for b := range f {
			f[b] = profile * (1 - spread + 2*spread*rng.Float64())
		}
		tr.Factors[t] = f
	}
	return tr, nil
}

// RampFromRange derives per-step ramp limits as a fraction of each
// unit's dispatch range: frac·(Pmax−Pmin) in pu. The grid model carries
// no ramp-rate data (grid.Gen has only the box limits), so this is the
// package's ramp convention; a unit with an unbounded range gets +Inf
// (unconstrained). frac <= 0 returns nil — ramp coupling disabled.
func RampFromRange(o *opf.OPF, frac float64) la.Vector {
	if o == nil || frac <= 0 {
		return nil
	}
	lay := o.Lay
	xmin, xmax := o.Bounds()
	r := make(la.Vector, lay.NG)
	for g := 0; g < lay.NG; g++ {
		lo, hi := xmin[lay.PgOff+g], xmax[lay.PgOff+g]
		if math.IsInf(lo, -1) || math.IsInf(hi, 1) {
			r[g] = math.Inf(1)
			continue
		}
		r[g] = frac * (hi - lo)
	}
	return r
}

// StepResult is one solved trajectory step.
type StepResult struct {
	Step        int
	Converged   bool
	WarmUsed    bool // the chained/predicted start converged
	ColdRestart bool // a start was tried and failed; accepted result is the cold restart
	Ramped      bool // ramp rows anchored this step to the previous dispatch
	RampBinding int  // ramp-tightened Pg bounds binding at the solution
	Iterations  int  // accepted solve's iterations
	Cost        float64
	PrepTime    time.Duration // Perturb + RebindRamp
	InferTime   time.Duration // model prediction (ModePredict only)
	SolveTime   time.Duration // accepted attempt(s), warm try included
	Result      *opf.Result   // accepted solution; nil when Err is set
	Err         error
}

// Result is one solved trajectory with its aggregate accounting.
type Result struct {
	Mode         Mode
	Steps        []StepResult
	Converged    int // steps that converged
	WarmHits     int // steps whose warm start converged
	ColdRestarts int // steps that fell back to a cold restart
	Iterations   int // total accepted iterations
	SolveTime    time.Duration
	InferTime    time.Duration
	PrepTime     time.Duration
}

func summarize(mode Mode, steps []StepResult) *Result {
	res := &Result{Mode: mode, Steps: steps}
	for i := range steps {
		s := &steps[i]
		if s.Converged {
			res.Converged++
		}
		if s.WarmUsed {
			res.WarmHits++
		}
		if s.ColdRestart {
			res.ColdRestarts++
		}
		res.Iterations += s.Iterations
		res.SolveTime += s.SolveTime
		res.InferTime += s.InferTime
		res.PrepTime += s.PrepTime
	}
	return res
}

// Stepper advances one trajectory a step at a time, holding the chained
// state (the previous step's accepted solution and its instance). It is
// the single implementation both the offline Runner and the streaming
// /v1/trajectory endpoint drive, which is what makes served replays
// bit-identical to offline runs by construction. A Stepper is not safe
// for concurrent use; its state must stay on one goroutine — the
// serving layer's per-trajectory worker affinity.
type Stepper struct {
	base     *opf.OPF
	mode     Mode
	pred     Predictor
	up, down la.Vector
	prev     *opf.Result
	prevInst *opf.OPF
	step     int
}

// NewStepper builds a stepper over the prepared base instance. up and
// down are per-step ramp limits in pu (len NG, +Inf entries allowed,
// nil = that direction unconstrained); pred supplies predictions for
// ModePredict and is ignored otherwise.
func NewStepper(base *opf.OPF, mode Mode, pred Predictor, up, down la.Vector) (*Stepper, error) {
	if base == nil {
		return nil, fmt.Errorf("horizon: stepper needs a prepared base instance")
	}
	switch mode {
	case ModeChain, ModePredict, ModeCold:
	default:
		return nil, fmt.Errorf("horizon: unknown mode %v", mode)
	}
	if mode == ModePredict && pred == nil {
		return nil, fmt.Errorf("horizon: mode predict needs a predictor")
	}
	ng := base.Lay.NG
	if up != nil && len(up) != ng {
		return nil, fmt.Errorf("horizon: ramp up limits have %d entries, %s has %d generators", len(up), base.Case.Name, ng)
	}
	if down != nil && len(down) != ng {
		return nil, fmt.Errorf("horizon: ramp down limits have %d entries, %s has %d generators", len(down), base.Case.Name, ng)
	}
	return &Stepper{base: base, mode: mode, pred: pred, up: up, down: down}, nil
}

// bindingTol matches scopf's: the slack threshold below which a bound
// counts as binding at the accepted solution.
const bindingTol = 1e-6

// rampBinding counts Pg bounds tightened by the ramp window and binding
// at x — the steps where the coupling actually constrained dispatch.
func rampBinding(base, cur *opf.OPF, x la.Vector) int {
	if cur == base || x == nil {
		return 0
	}
	lay := base.Lay
	bmin, bmax := base.Bounds()
	cmin, cmax := cur.Bounds()
	n := 0
	for g := 0; g < lay.NG; g++ {
		i := lay.PgOff + g
		switch {
		case cmax[i] < bmax[i] && x[i] > cmax[i]-bindingTol:
			n++
		case cmin[i] > bmin[i] && x[i] < cmin[i]+bindingTol:
			n++
		}
	}
	return n
}

// Step solves the next trajectory step at the given per-bus load
// factors and advances the chained state. On solver error the state is
// left at the last accepted solution, so a later step re-anchors there.
func (s *Stepper) Step(factors []float64) StepResult {
	sr := StepResult{Step: s.step}
	t0 := time.Now()
	inst := s.base.Perturb(factors)
	cur := inst
	if s.step > 0 && s.prev != nil && (s.up != nil || s.down != nil) {
		lay := s.base.Lay
		prevPg := s.prev.X[lay.PgOff : lay.PgOff+lay.NG]
		r, err := inst.RebindRamp(prevPg, s.up, s.down)
		if err != nil {
			sr.PrepTime = time.Since(t0)
			sr.Err = err
			s.step++
			return sr
		}
		cur = r
		sr.Ramped = true
	}
	sr.PrepTime = time.Since(t0)

	var start *opf.Start
	switch s.mode {
	case ModeChain:
		if s.prev != nil && s.prevInst != nil {
			start = s.prevInst.ProjectStartStep(&opf.Start{
				X: s.prev.X, Lam: s.prev.Lam, Mu: s.prev.Mu, Z: s.prev.Z,
			}, cur)
		}
	case ModePredict:
		t1 := time.Now()
		st := s.pred.Predict(dataset.InputVector(cur.Case))
		sr.InferTime = time.Since(t1)
		start = s.base.ProjectStartStep(st, cur)
	}

	t2 := time.Now()
	var acc *opf.Result
	if start != nil {
		if r, err := cur.Solve(start, opf.Options{}); err == nil && r.Converged {
			acc = r
			sr.WarmUsed = true
		}
	}
	if acc == nil {
		r, err := cur.Solve(nil, opf.Options{})
		if err != nil {
			sr.SolveTime = time.Since(t2)
			sr.Err = err
			s.step++
			return sr
		}
		acc = r
		sr.ColdRestart = start != nil
	}
	sr.SolveTime = time.Since(t2)
	sr.Converged = acc.Converged
	sr.Iterations = acc.Iterations
	sr.Cost = acc.Cost
	sr.Result = acc
	sr.RampBinding = rampBinding(s.base, cur, acc.X)
	s.prev = acc
	s.prevInst = cur
	s.step++
	return sr
}

// Runner solves trajectories over one base grid. Exactly one of Model
// and Predictors supplies ModePredict warm starts; Predictors must be
// interchangeable replicas (identical weights), and each in-flight
// trajectory checks out exactly one replica for its whole run — the
// per-trajectory affinity that keeps chained state and model state on
// one worker.
type Runner struct {
	Base       *grid.Case
	Prepared   *opf.OPF // prepared base instance; built from Base when nil
	Mode       Mode
	Model      *mtl.Model  // cloned per in-flight trajectory for ModePredict
	Predictors []Predictor // explicit replica set used instead of cloning Model
	// RampUp and RampDown are per-step ramp limits in pu (len NG; nil =
	// unconstrained). See RampFromRange for the derivation convention.
	RampUp, RampDown la.Vector
	// Workers sizes the batch pool (0 resolves through PGSIM_WORKERS,
	// batch.SetDefaultWorkers, GOMAXPROCS; 1 is sequential).
	Workers int
}

func (r *Runner) prepared() (*opf.OPF, error) {
	if r.Prepared != nil {
		return r.Prepared, nil
	}
	if r.Base == nil {
		return nil, fmt.Errorf("horizon: runner needs Base or Prepared")
	}
	return opf.Prepare(r.Base), nil
}

// pool builds the predictor replica pool for n in-flight trajectories:
// the explicit Predictors, or min(workers, n) clones of Model. Returns
// nil when the mode needs no predictions.
func (r *Runner) pool(n int) (chan Predictor, error) {
	if r.Mode != ModePredict {
		return nil, nil
	}
	preds := r.Predictors
	if len(preds) == 0 {
		if r.Model == nil {
			return nil, fmt.Errorf("horizon: mode predict needs Model or Predictors")
		}
		k := batch.Workers(r.Workers)
		if k > n {
			k = n
		}
		if k < 1 {
			k = 1
		}
		preds = make([]Predictor, k)
		preds[0] = r.Model
		for i := 1; i < k; i++ {
			preds[i] = r.Model.Clone()
		}
	}
	pool := make(chan Predictor, len(preds))
	for _, p := range preds {
		pool <- p
	}
	return pool, nil
}

// Run solves a single trajectory sequentially.
func (r *Runner) Run(traj *Trajectory) (*Result, error) {
	out, err := r.RunBatch([]*Trajectory{traj})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// RunBatch solves each trajectory start-to-end (steps are sequential
// within a trajectory) and fans the trajectories across the batch
// pool. Results are bit-identical for any worker count: trajectory i
// depends only on its own chained state and its predictor replica.
func (r *Runner) RunBatch(trajs []*Trajectory) ([]*Result, error) {
	base, err := r.prepared()
	if err != nil {
		return nil, err
	}
	nb := base.Lay.NB
	for i, tr := range trajs {
		if tr == nil || tr.Steps() == 0 {
			return nil, fmt.Errorf("horizon: trajectory %d is empty", i)
		}
		for t, f := range tr.Factors {
			if len(f) != nb {
				return nil, fmt.Errorf("horizon: trajectory %d step %d has %d factors, %s has %d buses", i, t, len(f), base.Case.Name, nb)
			}
		}
	}
	pool, err := r.pool(len(trajs))
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(trajs))
	err = batch.Run(len(trajs), batch.Options{Workers: r.Workers}, func(t *batch.Task) error {
		var pred Predictor
		if pool != nil {
			pred = <-pool
			defer func() { pool <- pred }()
		}
		st, err := NewStepper(base, r.Mode, pred, r.RampUp, r.RampDown)
		if err != nil {
			return err
		}
		traj := trajs[t.Index]
		steps := make([]StepResult, 0, traj.Steps())
		for _, f := range traj.Factors {
			steps = append(steps, st.Step(f))
		}
		results[t.Index] = summarize(r.Mode, steps)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
