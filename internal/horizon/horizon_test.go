package horizon

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/opf"
)

func sameVec(a, b la.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSyntheticTrajectoryDeterministic(t *testing.T) {
	a, err := Synthetic(9, 6, 42, 0.1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Synthetic(9, 6, 42, 0.1, 0.02)
	if a.Steps() != 6 {
		t.Fatalf("steps = %d", a.Steps())
	}
	for s := range a.Factors {
		if !sameVec(a.Factors[s], b.Factors[s]) {
			t.Fatalf("step %d not reproducible", s)
		}
		for _, f := range a.Factors[s] {
			if f <= 0 || math.IsNaN(f) {
				t.Fatalf("step %d has non-positive factor %v", s, f)
			}
		}
	}
	c, _ := Synthetic(9, 6, 43, 0.1, 0.02)
	if sameVec(a.Factors[0], c.Factors[0]) {
		t.Fatal("different seeds produced identical noise")
	}
	for _, bad := range []struct {
		nb, steps   int
		amp, spread float64
	}{
		{0, 6, 0.1, 0.02},
		{9, 0, 0.1, 0.02},
		{9, -3, 0.1, 0.02},
		{9, 6, -0.1, 0.02},
		{9, 6, 1.0, 0.02},
		{9, 6, 0.1, -1},
		{9, 6, math.NaN(), 0.02},
	} {
		if _, err := Synthetic(bad.nb, bad.steps, 1, bad.amp, bad.spread); err == nil {
			t.Fatalf("Synthetic(%+v): want error", bad)
		}
	}
}

func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeChain, ModePredict, ModeCold} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v: got %v, %v", m, got, err)
		}
	}
	if _, err := ParseMode("lukewarm"); err == nil {
		t.Fatal("want error for unknown mode")
	}
}

func TestRampFromRange(t *testing.T) {
	o := opf.Prepare(grid.Case9())
	if RampFromRange(o, 0) != nil || RampFromRange(nil, 0.1) != nil {
		t.Fatal("disabled ramp must be nil")
	}
	r := RampFromRange(o, 0.5)
	if len(r) != o.Lay.NG {
		t.Fatalf("len = %d", len(r))
	}
	xmin, xmax := o.Bounds()
	for g, v := range r {
		want := 0.5 * (xmax[o.Lay.PgOff+g] - xmin[o.Lay.PgOff+g])
		if v != want {
			t.Fatalf("gen %d limit %v, want %v", g, v, want)
		}
	}
}

// TestHorizonChainMatchesSingleShotWarm is the property pinning chain
// mode to the solver: with ramp limits inactive (a full-range window
// covers any step delta, so RebindRamp leaves the bounds bit-identical),
// each chain-mode step must be bit-identical to an independent
// single-shot warm solve of that step's instance from the previous
// step's accepted solution — with the same warm→cold pipeline, since
// case30's documented counter-regime (RESULTS.md) can reject a chained
// start and restart cold; on case9/case14 every chained start must be
// accepted outright.
func TestHorizonChainMatchesSingleShotWarm(t *testing.T) {
	cases := []struct {
		c       *grid.Case
		warmAll bool // every chained start must converge
	}{
		{grid.Case9(), true},
		{grid.Case14(), true},
		{grid.Case30(), false},
	}
	for _, tc := range cases {
		t.Run(tc.c.Name, func(t *testing.T) {
			base := opf.Prepare(tc.c)
			up := RampFromRange(base, 1.0) // window = full box: inactive
			traj, err := Synthetic(base.Lay.NB, 4, 1, 0.03, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			r := &Runner{Prepared: base, Mode: ModeChain, RampUp: up, RampDown: up, Workers: 1}
			res, err := r.Run(traj)
			if err != nil {
				t.Fatal(err)
			}
			if res.Converged != traj.Steps() {
				t.Fatalf("converged %d/%d steps", res.Converged, traj.Steps())
			}
			for s := 1; s < traj.Steps(); s++ {
				prev := res.Steps[s-1].Result
				step := res.Steps[s]
				if tc.warmAll && !step.WarmUsed {
					t.Fatalf("step %d did not accept the chained start", s)
				}
				// Independent derivation of step s's instance and start.
				inst := base.Perturb(traj.Factors[s])
				lay := base.Lay
				ramped, err := inst.RebindRamp(prev.X[lay.PgOff:lay.PgOff+lay.NG], up, up)
				if err != nil {
					t.Fatal(err)
				}
				xmin, xmax := base.Bounds()
				rmin, rmax := ramped.Bounds()
				if !sameVec(xmin, rmin) || !sameVec(xmax, rmax) {
					t.Fatalf("step %d: inactive ramp limits changed the bounds", s)
				}
				start := ramped.ProjectStartStep(&opf.Start{
					X: prev.X, Lam: prev.Lam, Mu: prev.Mu, Z: prev.Z,
				}, ramped)
				// The same warm→cold pipeline the Stepper runs.
				single, err := ramped.Solve(start, opf.Options{})
				warm := err == nil && single.Converged
				if !warm {
					if single, err = ramped.Solve(nil, opf.Options{}); err != nil {
						t.Fatalf("step %d single-shot solve failed: %v", s, err)
					}
				}
				if warm != step.WarmUsed {
					t.Fatalf("step %d warm acceptance diverges: single-shot %v, chain %v", s, warm, step.WarmUsed)
				}
				if single.Cost != step.Cost || single.Iterations != step.Iterations ||
					!sameVec(single.X, step.Result.X) || !sameVec(single.Lam, step.Result.Lam) ||
					!sameVec(single.Mu, step.Result.Mu) || !sameVec(single.Z, step.Result.Z) {
					t.Fatalf("step %d chain result diverges from single-shot warm solve", s)
				}
			}
		})
	}
}

// TestHorizonSeqVsParallel pins the batch guarantee: trajectory results
// are bit-identical for any worker count, in every mode.
func TestHorizonSeqVsParallel(t *testing.T) {
	base := opf.Prepare(grid.Case9())
	sol, err := base.Solve(nil, opf.Options{})
	if err != nil || !sol.Converged {
		t.Fatal(err)
	}
	pred := &stubPredictor{start: &opf.Start{X: sol.X, Lam: sol.Lam, Mu: sol.Mu, Z: sol.Z}}
	trajs := make([]*Trajectory, 6)
	for i := range trajs {
		tr, err := Synthetic(base.Lay.NB, 3, int64(100+i), 0.08, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		trajs[i] = tr
	}
	up := RampFromRange(base, 0.2)
	for _, mode := range []Mode{ModeChain, ModePredict, ModeCold} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(workers int) []*Result {
				r := &Runner{
					Prepared: base, Mode: mode,
					RampUp: up, RampDown: up, Workers: workers,
				}
				if mode == ModePredict {
					r.Predictors = []Predictor{pred, pred, pred, pred}
				}
				out, err := r.RunBatch(trajs)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			seq := run(1)
			par := run(4)
			for i := range seq {
				if seq[i].Converged != par[i].Converged || seq[i].WarmHits != par[i].WarmHits ||
					seq[i].Iterations != par[i].Iterations {
					t.Fatalf("trajectory %d aggregates diverge seq vs parallel", i)
				}
				for s := range seq[i].Steps {
					a, b := seq[i].Steps[s], par[i].Steps[s]
					if a.Cost != b.Cost || a.Iterations != b.Iterations ||
						a.WarmUsed != b.WarmUsed || a.RampBinding != b.RampBinding ||
						(a.Result == nil) != (b.Result == nil) ||
						(a.Result != nil && !sameVec(a.Result.X, b.Result.X)) {
						t.Fatalf("trajectory %d step %d diverges seq vs parallel", i, s)
					}
				}
			}
		})
	}
}

// stubPredictor returns a fixed start and counts concurrent use: the
// per-trajectory checkout discipline must never share a replica between
// two in-flight trajectories.
type stubPredictor struct {
	start *opf.Start
	inUse atomic.Int32
	raced atomic.Bool
}

func (p *stubPredictor) Predict(la.Vector) *opf.Start {
	if p.inUse.Add(1) > 1 {
		p.raced.Store(true)
	}
	defer p.inUse.Add(-1)
	return &opf.Start{X: p.start.X, Lam: p.start.Lam, Mu: p.start.Mu, Z: p.start.Z}
}

func TestHorizonPredictReplicaAffinity(t *testing.T) {
	base := opf.Prepare(grid.Case9())
	sol, err := base.Solve(nil, opf.Options{})
	if err != nil || !sol.Converged {
		t.Fatal(err)
	}
	preds := []*stubPredictor{
		{start: &opf.Start{X: sol.X, Lam: sol.Lam, Mu: sol.Mu, Z: sol.Z}},
		{start: &opf.Start{X: sol.X, Lam: sol.Lam, Mu: sol.Mu, Z: sol.Z}},
	}
	trajs := make([]*Trajectory, 5)
	for i := range trajs {
		tr, err := Synthetic(base.Lay.NB, 3, int64(i), 0.05, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		trajs[i] = tr
	}
	r := &Runner{
		Prepared: base, Mode: ModePredict,
		Predictors: []Predictor{preds[0], preds[1]},
		Workers:    4, // more workers than replicas: checkout must gate
	}
	out, err := r.RunBatch(trajs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		if p.raced.Load() {
			t.Fatal("a predictor replica was shared between in-flight trajectories")
		}
	}
	warm := 0
	for _, res := range out {
		warm += res.WarmHits
	}
	if warm == 0 {
		t.Fatal("no step accepted the predicted start")
	}
}

// TestHorizonRampCouplingBinds drives a steep profile through a tight
// ramp window and checks the coupling does real work: consecutive
// dispatches stay inside the window and some step reports binding rows.
func TestHorizonRampCouplingBinds(t *testing.T) {
	base := opf.Prepare(grid.Case9())
	up := RampFromRange(base, 0.05)
	traj, err := Synthetic(base.Lay.NB, 5, 3, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Prepared: base, Mode: ModeChain, RampUp: up, RampDown: up, Workers: 1}
	res, err := r.Run(traj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged != len(res.Steps) {
		t.Fatalf("converged %d/%d steps", res.Converged, len(res.Steps))
	}
	lay := base.Lay
	binding := 0
	for s := 1; s < len(res.Steps); s++ {
		step := res.Steps[s]
		if !step.Ramped {
			t.Fatalf("step %d not ramp-coupled", s)
		}
		binding += step.RampBinding
		if step.Result == nil || res.Steps[s-1].Result == nil {
			continue
		}
		for g := 0; g < lay.NG; g++ {
			d := step.Result.X[lay.PgOff+g] - res.Steps[s-1].Result.X[lay.PgOff+g]
			if d > up[g]+1e-6 || d < -up[g]-1e-6 {
				t.Fatalf("step %d gen %d moved %v beyond ±%v", s, g, d, up[g])
			}
		}
	}
	if binding == 0 {
		t.Fatal("tight ramp window never bound — coupling is inert")
	}
}

func TestHorizonRunnerValidation(t *testing.T) {
	base := opf.Prepare(grid.Case9())
	good, err := Synthetic(base.Lay.NB, 2, 1, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Prepared: base, Mode: ModePredict}).Run(good); err == nil {
		t.Fatal("predict mode without a model must error")
	}
	if _, err := (&Runner{Prepared: base, Mode: ModeChain}).Run(&Trajectory{}); err == nil {
		t.Fatal("empty trajectory must error")
	}
	if _, err := (&Runner{Prepared: base, Mode: ModeChain}).Run(&Trajectory{Factors: [][]float64{{1, 1}}}); err == nil {
		t.Fatal("short factor vector must error")
	}
	if _, err := (&Runner{Mode: ModeChain}).Run(good); err == nil {
		t.Fatal("runner without a base must error")
	}
	if _, err := NewStepper(base, Mode(99), nil, nil, nil); err == nil {
		t.Fatal("unknown mode must error")
	}
	if _, err := NewStepper(base, ModeChain, nil, la.Vector{1}, nil); err == nil {
		t.Fatal("short ramp vector must error")
	}
}
