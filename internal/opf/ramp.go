package opf

import (
	"fmt"
	"math"
	"time"

	"repro/internal/la"
	"repro/internal/sparse"
)

// RebindRamp derives a prepared OPF whose real-dispatch bounds are
// tightened by per-generator ramp limits anchored at a previous-step
// dispatch: generator g may move at most up[g] above and down[g] below
// prevPg[g] (all in pu of BaseMVA) within the static [Pmin, Pmax] box.
// This is the multi-period coupling of internal/horizon — step t's
// instance is the step-t load perturbation with RebindRamp(step t−1's
// dispatch) applied.
//
// Ramp limits are pure bound tightening, so the derived instance shares
// everything structural with o: admittance matrices, rated-branch
// subset, layout offsets, and — when no previously-infinite Pg bound
// becomes finite — o's KKT ordering cache itself, because the KKT
// pattern depends only on which bounds are finite, not on their values.
// A ramp limit that turns an infinite bound finite grows NIq (the new
// bound becomes an inequality row in MIPS's FullInequality order) and
// the derived instance then gets a fresh cache with o's configured
// ordering, exactly like RebindOutage/RebindGenOutage. Finiteness is
// monotone under tightening — min(finite, ·) stays finite — so NIq
// never shrinks and NIq unchanged ⇔ identical bound pattern.
//
// The anchor is clamped into the static box first, so the tightened
// window is never empty even for an anchor from a non-converged step;
// up[g] or down[g] may be +Inf (direction unconstrained) and either
// vector may be nil (that direction unconstrained for every unit).
// Negative or NaN entries are rejected. A zero limit freezes the unit
// at its anchor (equal bounds — both rows finite).
func (o *OPF) RebindRamp(prevPg, up, down la.Vector) (*OPF, error) {
	t0 := time.Now()
	lay := o.Lay
	if len(prevPg) != lay.NG {
		return nil, fmt.Errorf("opf: ramp anchor has %d entries, %s has %d in-service generators", len(prevPg), o.Case.Name, lay.NG)
	}
	if err := checkRampLimits("up", up, lay.NG); err != nil {
		return nil, err
	}
	if err := checkRampLimits("down", down, lay.NG); err != nil {
		return nil, err
	}
	xmin := o.xmin.Clone()
	xmax := o.xmax.Clone()
	for g := 0; g < lay.NG; g++ {
		lo, hi := o.xmin[lay.PgOff+g], o.xmax[lay.PgOff+g]
		anchor := prevPg[g]
		if math.IsNaN(anchor) {
			return nil, fmt.Errorf("opf: ramp anchor prevPg[%d] is NaN", g)
		}
		if anchor < lo {
			anchor = lo
		}
		if anchor > hi {
			anchor = hi
		}
		if down != nil && !math.IsInf(down[g], 1) {
			if l := anchor - down[g]; l > lo {
				xmin[lay.PgOff+g] = l
			}
		}
		if up != nil && !math.IsInf(up[g], 1) {
			if h := anchor + up[g]; h < hi {
				xmax[lay.PgOff+g] = h
			}
		}
	}
	cp := *o
	cp.xmin = xmin
	cp.xmax = xmax
	nFinite := 0
	for i := range xmin {
		if !math.IsInf(xmin[i], -1) {
			nFinite++
		}
		if !math.IsInf(xmax[i], 1) {
			nFinite++
		}
	}
	cp.Lay.NIq = 2*lay.NLRated + nFinite
	if cp.Lay.NIq != lay.NIq {
		// A previously-infinite Pg bound became finite: the KKT pattern
		// gained rows, so the ordering analysis cannot be shared.
		cp.kkt = sparse.NewOrderingCache(o.kkt.Ordering())
	}
	cp.prep = time.Since(t0)
	return &cp, nil
}

func checkRampLimits(name string, v la.Vector, ng int) error {
	if v == nil {
		return nil
	}
	if len(v) != ng {
		return fmt.Errorf("opf: ramp %s limits have %d entries, want %d", name, len(v), ng)
	}
	for g, r := range v {
		if math.IsNaN(r) || r < 0 || math.IsInf(r, -1) {
			return fmt.Errorf("opf: ramp %s limit [%d] = %v, want >= 0", name, g, r)
		}
	}
	return nil
}

// ProjectStartStep maps a warm start expressed in o's layout (typically
// step t−1's solved instance, whose own ramp rows are baked into its
// NIq) onto the layout of to, a step-t instance derived from the same
// base grid. The variable packing and equality rows are untouched by
// ramp tightening, so X and λ transfer as-is (MIPS clips X into to's
// bounds itself); the µ and Z vectors are remapped row-by-row over the
// FullInequality order — flow rows positionally, bound rows by matching
// the finite-bound patterns of the two layouts. Rows finite in both
// copy their multiplier and slack; rows newly finite in to are seeded
// with the MIPS cold defaults (µ = z = 1); rows finite only in o are
// dropped. The result always has exactly to.Lay.NIq rows — the length
// MIPS requires of a warm start.
//
// It returns nil (a cold start) when the two instances do not share the
// step-compatible shape: equal NX, NEq and NLRated. Malformed µ/Z in st
// are dropped rather than remapped, degrading to an X/λ-only start.
func (o *OPF) ProjectStartStep(st *Start, to *OPF) *Start {
	if st == nil || to == nil {
		return nil
	}
	if to.Lay.NX != o.Lay.NX || to.Lay.NEq != o.Lay.NEq || to.Lay.NLRated != o.Lay.NLRated {
		return nil
	}
	out := &Start{}
	if len(st.X) == o.Lay.NX {
		out.X = st.X
	}
	if len(st.Lam) == o.Lay.NEq {
		out.Lam = st.Lam
	}
	if len(st.Mu) != o.Lay.NIq || len(st.Z) != o.Lay.NIq {
		return out
	}
	if to.Lay.NIq == o.Lay.NIq && sameBoundPattern(o, to) {
		out.Mu, out.Z = st.Mu, st.Z
		return out
	}
	// The MIPS seed for a fresh inequality row: mips.Solve floors warm µ
	// and z at 1e-10 and recomputes the barrier from z·µ, so the cold
	// defaults blend safely with the carried rows.
	const seed = 1.0
	nlr := 2 * o.Lay.NLRated
	mu := make(la.Vector, 0, to.Lay.NIq)
	z := make(la.Vector, 0, to.Lay.NIq)
	mu = append(mu, st.Mu[:nlr]...)
	z = append(z, st.Z[:nlr]...)
	srcRow := nlr
	remap := func(srcB, dstB la.Vector, sign int) {
		for i := range dstB {
			srcFinite := !math.IsInf(srcB[i], sign)
			dstFinite := !math.IsInf(dstB[i], sign)
			if dstFinite {
				if srcFinite {
					mu = append(mu, st.Mu[srcRow])
					z = append(z, st.Z[srcRow])
				} else {
					mu = append(mu, seed)
					z = append(z, seed)
				}
			}
			if srcFinite {
				srcRow++
			}
		}
	}
	remap(o.xmax, to.xmax, 1)  // finite upper bounds first,
	remap(o.xmin, to.xmin, -1) // then finite lower bounds.
	out.Mu, out.Z = mu, z
	return out
}

// sameBoundPattern reports whether two same-shape instances have
// identical bound-finiteness patterns (and hence identical inequality
// layouts and KKT patterns).
func sameBoundPattern(a, b *OPF) bool {
	for i := range a.xmin {
		if math.IsInf(a.xmin[i], -1) != math.IsInf(b.xmin[i], -1) {
			return false
		}
		if math.IsInf(a.xmax[i], 1) != math.IsInf(b.xmax[i], 1) {
			return false
		}
	}
	return true
}
