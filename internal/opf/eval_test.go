package opf

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/sparse"
)

// evalCases returns the grids the streaming-vs-reference suite runs on.
func evalCases(t *testing.T) []*grid.Case {
	t.Helper()
	return []*grid.Case{grid.Case9(), grid.Case14(), grid.Case118()}
}

// evalTestPoint returns a deterministic off-flat-start point with
// non-trivial angles, magnitudes and dispatch, plus dual vectors with
// mixed signs — flat starts (Va = 0) mask conjugation and sign errors.
func evalTestPoint(o *OPF) (x, lam, mu la.Vector) {
	lay := o.Lay
	x = o.DefaultStart()
	for i := 0; i < lay.NB; i++ {
		x[lay.VaOff+i] += 0.1 * math.Sin(float64(3*i+1))
		x[lay.VmOff+i] += 0.05 * math.Cos(float64(2*i+1))
	}
	for g := 0; g < lay.NG; g++ {
		x[lay.PgOff+g] += 0.02 * math.Sin(float64(g+1))
		x[lay.QgOff+g] += 0.02 * math.Cos(float64(g+1))
	}
	lam = make(la.Vector, lay.NEq)
	for i := range lam {
		lam[i] = 0.7 * math.Sin(float64(2*i+3))
	}
	mu = make(la.Vector, 2*lay.NLRated)
	for i := range mu {
		mu[i] = 0.1 + 0.5*math.Abs(math.Sin(float64(i+2)))
	}
	return
}

// dense accumulates a CSC into a row-major dense matrix so patterns
// with different explicit-zero structure compare equal.
func dense(m *sparse.CSC) []float64 {
	d := make([]float64, m.NRows*m.NCols)
	for j := 0; j < m.NCols; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			d[m.RowIdx[p]*m.NCols+j] += m.Val[p]
		}
	}
	return d
}

func matDiff(t *testing.T, what string, a, b *sparse.CSC, tol float64) {
	t.Helper()
	if a.NRows != b.NRows || a.NCols != b.NCols {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", what, a.NRows, a.NCols, b.NRows, b.NCols)
	}
	da, db := dense(a), dense(b)
	scale := 1.0
	for _, v := range da {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	for i := range da {
		if d := math.Abs(da[i] - db[i]); d > tol*scale {
			t.Fatalf("%s: entry (%d,%d) differs: %v vs %v (|Δ|=%g, scale %g)",
				what, i/a.NCols, i%a.NCols, da[i], db[i], d, scale)
		}
	}
}

func vecDiff(t *testing.T, what string, a, b la.Vector, tol float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > tol*(1+math.Abs(a[i])) {
			t.Fatalf("%s: entry %d differs: %v vs %v", what, i, a[i], b[i])
		}
	}
}

// TestEvalMatchesReference pins the entry-wise streaming evaluation
// path (eval.go, what Solve runs) against the reference builders in
// opf.go on real grids at a non-trivial point. Each comparison runs
// twice through the same scratch so both the compiling first pass and
// the verified-stamp steady-state pass of the assemblers are covered.
func TestEvalMatchesReference(t *testing.T) {
	const tol = 1e-12
	for _, c := range evalCases(t) {
		o := Prepare(c)
		x, lam, mu := evalTestPoint(o)
		sc := new(evalScratch)
		sc.ensure(o)
		for pass := 0; pass < 2; pass++ {
			fRef, dfRef := o.costGrad(x)
			fNew, dfNew := o.evalCost(sc, x)
			if math.Abs(fRef-fNew) > tol*(1+math.Abs(fRef)) {
				t.Fatalf("%s pass %d: cost %v vs %v", c.Name, pass, fRef, fNew)
			}
			vecDiff(t, c.Name+" df", dfRef, dfNew, tol)

			gRef, jgRef := o.equality(x, true)
			gNew, jgNew := o.evalEquality(sc, x)
			vecDiff(t, c.Name+" g", gRef, gNew, tol)
			matDiff(t, c.Name+" Jg", jgRef, jgNew, tol)

			if o.Lay.NLRated > 0 {
				hRef, jhRef := o.inequality(x, true)
				hNew, jhNew := o.evalInequality(sc, x)
				vecDiff(t, c.Name+" h", hRef, hNew, tol)
				matDiff(t, c.Name+" Jh", jhRef, jhNew, tol)
			}

			hessRef := o.hessian(x, lam, mu)
			hessNew := o.evalHessian(sc, x, lam, mu)
			matDiff(t, c.Name+" Hess", hessRef, hessNew, tol)
		}
	}
}

// TestEvalHessianNoMu covers the unrated-branch degenerate shape: with
// no inequality rows the Hessian must still match (power + cost blocks
// only).
func TestEvalHessianNoMu(t *testing.T) {
	c := grid.Case9()
	for i := range c.Branches {
		c.Branches[i].RateA = 0
	}
	o := Prepare(c)
	if o.Lay.NLRated != 0 {
		t.Fatalf("expected no rated branches, got %d", o.Lay.NLRated)
	}
	x, lam, _ := evalTestPoint(o)
	sc := new(evalScratch)
	sc.ensure(o)
	matDiff(t, "Hess", o.hessian(x, lam, nil), o.evalHessian(sc, x, lam, nil), 1e-12)
}
