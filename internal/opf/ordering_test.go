package opf

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/sparse"
)

// TestDefaultOrderingThreshold pins the per-system ordering policy:
// fixed RCM below AutoOrderingBuses, fill-probing auto at and above.
func TestDefaultOrderingThreshold(t *testing.T) {
	if got := DefaultOrdering(AutoOrderingBuses - 1); got != sparse.OrderRCM {
		t.Errorf("below threshold: %v want rcm", got)
	}
	if got := DefaultOrdering(AutoOrderingBuses); got != sparse.OrderAuto {
		t.Errorf("at threshold: %v want auto", got)
	}
	if got := Prepare(grid.Case9()).Ordering(); got != sparse.OrderRCM {
		t.Errorf("case9 prepared with %v want rcm", got)
	}
	if got := Prepare(grid.Case57()).Ordering(); got != sparse.OrderAuto {
		t.Errorf("case57 prepared with %v want auto", got)
	}
}

// TestAutoOrderingSolveMatchesFixed: the probe only picks a
// permutation; whichever heuristic it selects, the optimum must match
// forcing either heuristic directly (and all must converge) — the
// ordering is a performance knob, never a results knob.
func TestAutoOrderingSolveMatchesFixed(t *testing.T) {
	if testing.Short() {
		t.Skip("case57 solves in -short")
	}
	c := grid.Case57()
	auto := Prepare(c)
	ra, err := auto.Solve(nil, Options{})
	if err != nil || !ra.Converged {
		t.Fatalf("auto solve: %v", err)
	}
	for _, ord := range []sparse.Ordering{sparse.OrderRCM, sparse.OrderAMD} {
		fixed := Prepare(c)
		fixed.SetOrdering(ord)
		rf, err := fixed.Solve(nil, Options{})
		if err != nil || !rf.Converged {
			t.Fatalf("%v solve: %v", ord, err)
		}
		// Ordering choice must not change the optimum (PR 3's
		// ordering-invariance property, extended to auto). Different
		// elimination orders round differently, so compare to solver
		// tolerance, not bitwise.
		if d := (rf.Cost - ra.Cost) / ra.Cost; d > 1e-5 || d < -1e-5 {
			t.Errorf("%v: cost %.6f differs from auto %.6f", ord, rf.Cost, ra.Cost)
		}
	}
}

// TestRebindOutageKeepsConfiguredOrdering: derived topology classes
// inherit the (possibly auto) ordering of the base instance.
func TestRebindOutageKeepsConfiguredOrdering(t *testing.T) {
	o := Prepare(grid.Case57())
	d, err := o.RebindOutage(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ordering() != o.Ordering() {
		t.Errorf("outage class ordering %v, base %v", d.Ordering(), o.Ordering())
	}
}
