package opf

import (
	"math"
	"testing"

	"repro/internal/casegen"
	"repro/internal/grid"
)

// The warm-start acceleration must hold on the synthetic Table II
// systems, not only on the embedded IEEE cases (case30 is embedded now,
// so case39 carries the rated synthetic profile here).
func TestWarmStartSyntheticSystems(t *testing.T) {
	names := []string{"case39", "case57"}
	if !testing.Short() {
		names = append(names, "case118")
	}
	for _, name := range names {
		c, err := casegen.Paper(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		o := Prepare(c)
		cold, err := o.Solve(nil, Options{})
		if err != nil {
			t.Fatalf("%s cold: %v", name, err)
		}
		warm, err := o.Solve(&Start{X: cold.X, Lam: cold.Lam, Mu: cold.Mu, Z: cold.Z}, Options{})
		if err != nil {
			t.Fatalf("%s warm: %v", name, err)
		}
		if warm.Iterations*3 > cold.Iterations {
			t.Errorf("%s: warm %d vs cold %d iterations", name, warm.Iterations, cold.Iterations)
		}
		if math.Abs(warm.Cost-cold.Cost)/cold.Cost > 1e-6 {
			t.Errorf("%s: warm cost drifted %.6f vs %.6f", name, warm.Cost, cold.Cost)
		}
	}
}

// Rated synthetic systems must respect their flow limits at the optimum.
func TestSyntheticFlowLimits(t *testing.T) {
	c, err := casegen.Paper("case39")
	if err != nil {
		t.Fatal(err)
	}
	o := Prepare(c)
	r, err := o.Solve(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	y := grid.MakeYbus(c)
	v := grid.Voltage(r.Vm, r.Va)
	sf, st := grid.BranchFlows(y, v)
	for l, br := range c.ActiveBranches() {
		if br.RateA <= 0 {
			continue
		}
		lim := br.RateA / c.BaseMVA
		if fl := cAbs(sf[l]); fl > lim+1e-5 {
			t.Errorf("branch %d from-flow %.4f exceeds %.4f", l, fl, lim)
		}
		if fl := cAbs(st[l]); fl > lim+1e-5 {
			t.Errorf("branch %d to-flow %.4f exceeds %.4f", l, fl, lim)
		}
	}
}

func cAbs(x complex128) float64 { return math.Hypot(real(x), imag(x)) }

// Load growth drives cost up monotonically (economic sanity of the
// solver across the paper's sampling range).
func TestCostMonotoneInLoad(t *testing.T) {
	prev := 0.0
	for _, s := range []float64{0.9, 1.0, 1.1} {
		c := grid.Case9()
		fac := make([]float64, c.NB())
		for i := range fac {
			fac[i] = s
		}
		c.ScaleLoads(fac)
		r, err := Prepare(c).Solve(nil, Options{})
		if err != nil {
			t.Fatalf("scale %v: %v", s, err)
		}
		if r.Cost <= prev {
			t.Fatalf("cost not increasing: %.2f after %.2f", r.Cost, prev)
		}
		prev = r.Cost
	}
}

// Infeasible problems (demand far beyond capacity) must fail cleanly.
func TestInfeasibleOPFFailsCleanly(t *testing.T) {
	c := grid.Case9()
	fac := make([]float64, c.NB())
	for i := range fac {
		fac[i] = 10
	}
	c.ScaleLoads(fac)
	r, err := Prepare(c).Solve(nil, Options{MaxIter: 40})
	if err == nil && r.Converged {
		t.Fatal("10x load reported feasible")
	}
}
