// Package opf assembles the AC optimal power flow problem
//
//	min  Σ costᵢ(Pgᵢ)
//	s.t. power balance at every bus (real and reactive),
//	     reference angle fixed,
//	     |Sf|², |St|² within branch ratings,
//	     Vm, Pg, Qg within their limits,
//
// over x = [Va; Vm; Pg; Qg] and solves it with the MIPS primal–dual
// interior-point solver. The warm-start path accepts predicted
// (X, λ, µ, Z) — the Smart-PGSim acceleration interface.
//
// A Prepare'd instance is immutable during Solve, and instances derived
// from it with Rebind or Perturb share its assembled structure without
// sharing mutable solve state. Both properties are load-bearing for the
// batch sweeps and the serving daemon, which solve many derived
// instances of one base grid concurrently.
package opf

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/mips"
	"repro/internal/sparse"
)

// Layout describes the variable and constraint packing of an OPF instance.
type Layout struct {
	NB, NG  int // buses, in-service generators
	NLRated int // branches with finite RateA
	NX      int // 2*NB + 2*NG
	NEq     int // 2*NB + 1 (paper's #λ)
	NIq     int // 2*NLRated + finite bounds (paper's #µ)

	VaOff, VmOff, PgOff, QgOff int // offsets into x
}

// Start is a warm-start point in problem coordinates (the layout of X, λ,
// µ and Z produced by Result and predicted by the MTL model).
type Start struct {
	X   la.Vector // len NX
	Lam la.Vector // len NEq
	Mu  la.Vector // len NIq
	Z   la.Vector // len NIq
}

// Result is a solved (or failed) AC-OPF.
type Result struct {
	Converged  bool
	Iterations int
	Cost       float64   // objective, $/hr
	Va         la.Vector // radians, per bus
	Vm         la.Vector // pu, per bus
	Pg, Qg     la.Vector // MW / MVAr, per in-service generator

	X   la.Vector // raw optimization vector
	Lam la.Vector // equality multipliers [λP; λQ; λref]
	Mu  la.Vector // inequality multipliers (flows then bounds)
	Z   la.Vector // slack variables

	PrepTime  time.Duration // problem construction
	SolveTime time.Duration // interior-point iterations
	Trace     []mips.IterStat
}

// OPF is a prepared AC-OPF instance, reusable across solves with
// different starts.
type OPF struct {
	Case   *grid.Case
	Y      *grid.YMatrices
	Lay    Layout
	ratedY *grid.YMatrices // admittances restricted to rated branches
	rates2 la.Vector       // squared pu ratings per rated branch
	gbus   []int           // bus index per in-service generator
	gens   []grid.Gen
	xmin   la.Vector
	xmax   la.Vector
	refIdx int
	refVa  float64
	prep   time.Duration
	// kkt caches the fill-reducing ordering of the KKT pattern, which is
	// a property of the grid structure, not of the loads: every instance
	// derived with Rebind/Perturb shares it, so one ordering analysis
	// serves a whole sweep (and, in the serving daemon, all requests for
	// the grid). Only the value-independent ordering is shared — each
	// solve freezes its own pivot sequence — so derived instances may be
	// solved in parallel with bit-identical results regardless of order.
	kkt *sparse.OrderingCache
	// kktSym caches the pivot-shaped symbolic analysis of the KKT
	// pattern. Shaped pivot sequences are pure functions of the pattern
	// (like the ordering above), so every Rebind/Perturb derivation
	// shares this cache too: the first solve of a grid analyzes, and
	// every later solve of any load variant — the entire warm-start
	// pipeline — goes straight to numeric refactorization. mips pins
	// entries per solve through a child cache, keeping parallel sweeps
	// deterministic and eviction-safe.
	kktSym *sparse.SymbolicCache
	// kktForced records that SetOrdering overrode the per-system
	// default, so Solve's NoKKTReuse path honours an explicitly forced
	// auto instead of falling back to RCM.
	kktForced bool
}

// AutoOrderingBuses is the bus count at and above which Prepare probes
// the KKT fill-reducing ordering (sparse.OrderAuto) instead of assuming
// RCM. Neither heuristic dominates at paper scale — AMD measures ~17 %
// less real fill than RCM on the case57 KKT pattern, while RCM beats
// AMD by 2.4× on case118 — and natural ordering blows up outright (≈9×
// RCM's fill on case300, a 25× slower cold solve), so above this size
// the ordering is measured per grid with sparse.OrderAuto's
// pattern-pure pivoted-fill probe and the one-off cost is amortized by
// the shared OrderingCache. The probe is deliberately conservative
// under pivoting: it reserves AMD for patterns where it wins decisively
// and otherwise keeps RCM, so which side a given grid lands on depends
// on the actual KKT pattern (case300's real solve KKT probes to AMD;
// the bordered benchmark proxies probe to RCM — see RESULTS.md for the
// measured fills). Below the threshold, small
// patterns factor in microseconds either way and RCM stays the fixed
// default (bit-compatible with the historic behaviour). See DESIGN.md
// §9.
const AutoOrderingBuses = 48

// DefaultOrdering returns the KKT ordering Prepare selects for a grid
// of nb buses: the fill-probing sparse.OrderAuto at and above
// AutoOrderingBuses, sparse.OrderRCM below.
func DefaultOrdering(nb int) sparse.Ordering {
	if nb >= AutoOrderingBuses {
		return sparse.OrderAuto
	}
	return sparse.OrderRCM
}

// Prepare builds the admittance matrices, bounds and constraint layout
// for the case.
func Prepare(c *grid.Case) *OPF {
	t0 := time.Now()
	nb := c.NB()
	gens := c.ActiveGens()
	ng := len(gens)
	y := grid.MakeYbus(c)

	// Rated-branch subset.
	var fIdx, tIdx []int
	ratedYf := &grid.BranchMat{NB: nb}
	ratedYt := &grid.BranchMat{NB: nb}
	var rates2 la.Vector
	branches := c.ActiveBranches()
	for l, br := range branches {
		if br.RateA <= 0 {
			continue
		}
		fIdx = append(fIdx, y.FIdx[l])
		tIdx = append(tIdx, y.TIdx[l])
		ratedYf.F = append(ratedYf.F, y.Yf.F[l])
		ratedYf.T = append(ratedYf.T, y.Yf.T[l])
		ratedYf.Vf = append(ratedYf.Vf, y.Yf.Vf[l])
		ratedYf.Vt = append(ratedYf.Vt, y.Yf.Vt[l])
		ratedYt.F = append(ratedYt.F, y.Yt.F[l])
		ratedYt.T = append(ratedYt.T, y.Yt.T[l])
		ratedYt.Vf = append(ratedYt.Vf, y.Yt.Vf[l])
		ratedYt.Vt = append(ratedYt.Vt, y.Yt.Vt[l])
		r := br.RateA / c.BaseMVA
		rates2 = append(rates2, r*r)
	}
	nlr := len(rates2)

	lay := Layout{
		NB: nb, NG: ng, NLRated: nlr,
		NX:    2*nb + 2*ng,
		NEq:   2*nb + 1,
		VaOff: 0, VmOff: nb, PgOff: 2 * nb, QgOff: 2*nb + ng,
	}
	xmin := make(la.Vector, lay.NX)
	xmax := make(la.Vector, lay.NX)
	for i := 0; i < nb; i++ {
		xmin[lay.VaOff+i] = math.Inf(-1)
		xmax[lay.VaOff+i] = math.Inf(1)
		xmin[lay.VmOff+i] = c.Buses[i].Vmin
		xmax[lay.VmOff+i] = c.Buses[i].Vmax
	}
	for g := 0; g < ng; g++ {
		xmin[lay.PgOff+g] = gens[g].Pmin / c.BaseMVA
		xmax[lay.PgOff+g] = gens[g].Pmax / c.BaseMVA
		xmin[lay.QgOff+g] = gens[g].Qmin / c.BaseMVA
		xmax[lay.QgOff+g] = gens[g].Qmax / c.BaseMVA
	}
	nFinite := 0
	for i := range xmin {
		if !math.IsInf(xmin[i], -1) {
			nFinite++
		}
		if !math.IsInf(xmax[i], 1) {
			nFinite++
		}
	}
	lay.NIq = 2*nlr + nFinite

	o := &OPF{
		Case: c, Y: y, Lay: lay,
		ratedY: &grid.YMatrices{Ybus: y.Ybus, Yf: ratedYf, Yt: ratedYt, FIdx: fIdx, TIdx: tIdx},
		rates2: rates2,
		gbus:   grid.GenBusIdx(c),
		gens:   gens,
		xmin:   xmin, xmax: xmax,
		refIdx: c.RefIndex(),
		refVa:  grid.Deg2Rad(c.Buses[c.RefIndex()].Va),
		kkt:    sparse.NewOrderingCache(DefaultOrdering(nb)),
	}
	o.kktSym = sparse.NewSymbolicCacheFrom(o.kkt, 1.0).Shaped()
	o.prep = time.Since(t0)
	return o
}

// SetOrdering replaces the KKT ordering cache with one using the given
// fill-reducing ordering (the -ordering flag of cmd/pgsim). Call it on
// the base instance before deriving with Rebind/Perturb so the derived
// instances share the new cache; previously cached orderings and
// counters are discarded.
func (o *OPF) SetOrdering(ord sparse.Ordering) {
	o.kkt = sparse.NewOrderingCache(ord)
	o.kktSym = sparse.NewSymbolicCacheFrom(o.kkt, 1.0).Shaped()
	o.kktForced = true
}

// Ordering reports the KKT fill-reducing ordering this instance (and
// every Rebind/Perturb derivation sharing its cache) analyzes with —
// the per-system default of Prepare unless SetOrdering replaced it.
func (o *OPF) Ordering() sparse.Ordering { return o.kkt.Ordering() }

// KKTStats reports the KKT reuse counters for this grid, aggregated over
// every solve of this instance and its Rebind/Perturb derivations: how
// many fill-reducing orderings were computed, and how many full symbolic
// analyses, numeric refactorizations and stability fallbacks the solves'
// KKT factorizations performed.
func (o *OPF) KKTStats() sparse.CacheStats { return o.kkt.Stats() }

// Rebind returns an OPF for c that reuses o's prepared structure — the
// admittance matrices, rated-branch subset, bounds, layout and reference
// data — instead of rebuilding them. It is valid when c differs from the
// original case only in bus loads (Pd/Qd), which is exactly the ±10 %
// load-perturbation workload: loads enter the problem solely through
// MakeSbus, which reads the bound case at solve time. Rebinding is what
// lets a batch sweep amortize one Prepare across thousands of
// perturbations of the same base grid; the returned instance shares no
// mutable solve state with o and both may be solved concurrently.
func (o *OPF) Rebind(c *grid.Case) *OPF {
	t0 := time.Now()
	cp := *o
	cp.Case = c
	cp.prep = time.Since(t0)
	return &cp
}

// RebindOutage derives a prepared OPF for the single-branch-outage
// variant of the bound case: branch (an index into Case.Branches) is
// taken out of service. The admittance matrices are delta'd with
// grid.YMatrices.DropBranch — bit-identical to rebuilding them on the
// outaged case — and everything the outage cannot touch (bounds,
// generator data, reference bus, variable layout) is shared with o. If
// the branch is rated, its two flow rows leave the inequality layout
// (NIq shrinks by 2); warm starts predicted in o's layout then need
// ProjectStart. The derived instance gets its own KKT ordering cache
// (its pattern differs from o's) with o's configured ordering, shared —
// like any prepared instance's — by all Rebind/Perturb derivations, so
// one ordering analysis serves every scenario of the outage topology.
func (o *OPF) RebindOutage(branch int) (*OPF, error) {
	t0 := time.Now()
	if branch < 0 || branch >= len(o.Case.Branches) {
		return nil, fmt.Errorf("opf: outage branch %d outside %d branches of %s", branch, len(o.Case.Branches), o.Case.Name)
	}
	if !o.Case.Branches[branch].Status {
		return nil, fmt.Errorf("opf: outage branch %d of %s is already out of service", branch, o.Case.Name)
	}
	ai := 0 // position of branch within ActiveBranches (the Yf/Yt rows)
	for i := 0; i < branch; i++ {
		if o.Case.Branches[i].Status {
			ai++
		}
	}
	y := o.Y.DropBranch(o.Case, ai)
	cp := *o
	cp.Case = o.Case.WithoutBranch(branch)
	cp.Y = y
	if rl := o.RatedPos(branch); rl >= 0 {
		cp.ratedY = &grid.YMatrices{
			Ybus: y.Ybus,
			Yf:   o.ratedY.Yf.WithoutRow(rl), Yt: o.ratedY.Yt.WithoutRow(rl),
			FIdx: slices.Delete(slices.Clone(o.ratedY.FIdx), rl, rl+1),
			TIdx: slices.Delete(slices.Clone(o.ratedY.TIdx), rl, rl+1),
		}
		cp.rates2 = slices.Delete(slices.Clone(o.rates2), rl, rl+1)
		cp.Lay.NLRated--
		cp.Lay.NIq -= 2
	} else {
		rc := *o.ratedY
		rc.Ybus = y.Ybus
		cp.ratedY = &rc
	}
	cp.kkt = sparse.NewOrderingCache(o.kkt.Ordering())
	cp.kktSym = sparse.NewSymbolicCacheFrom(cp.kkt, 1.0).Shaped()
	cp.prep = time.Since(t0)
	return &cp, nil
}

// RebindGenOutage derives a prepared OPF for the generator-outage
// variant of the bound case: generator gen (an index into Case.Gens) is
// taken out of service. The admittance matrices are untouched — a
// generator enters the problem only through MakeSbus and the variable
// layout — so Y and the rated-branch subset are shared with o, while
// the packed layout loses the generator's Pg and Qg variables (NG−1,
// NX−2) and their finite-bound inequality rows. Warm starts predicted
// in o's layout need ProjectStartGen, which also performs the screening
// redispatch. The derived instance gets its own KKT ordering cache (the
// KKT pattern loses two columns) with o's configured ordering.
func (o *OPF) RebindGenOutage(gen int) (*OPF, error) {
	t0 := time.Now()
	if gen < 0 || gen >= len(o.Case.Gens) {
		return nil, fmt.Errorf("opf: outage generator %d outside %d generators of %s", gen, len(o.Case.Gens), o.Case.Name)
	}
	if !o.Case.Gens[gen].Status {
		return nil, fmt.Errorf("opf: outage generator %d of %s is already out of service", gen, o.Case.Name)
	}
	gi := 0 // position of gen within ActiveGens (the Pg/Qg variable blocks)
	for i := 0; i < gen; i++ {
		if o.Case.Gens[i].Status {
			gi++
		}
	}
	lay := o.Lay
	// Delete the Qg entry first (the higher index), then the Pg entry, so
	// the earlier offset stays valid.
	dropVar := func(v la.Vector) la.Vector {
		out := slices.Delete(slices.Clone(v), lay.QgOff+gi, lay.QgOff+gi+1)
		return slices.Delete(out, lay.PgOff+gi, lay.PgOff+gi+1)
	}
	cp := *o
	cp.Case = o.Case.WithoutGen(gen)
	cp.gens = slices.Delete(slices.Clone(o.gens), gi, gi+1)
	cp.gbus = slices.Delete(slices.Clone(o.gbus), gi, gi+1)
	cp.xmin = dropVar(o.xmin)
	cp.xmax = dropVar(o.xmax)
	cp.Lay.NG = lay.NG - 1
	cp.Lay.NX = lay.NX - 2
	cp.Lay.QgOff = lay.QgOff - 1
	nFinite := 0
	for i := range cp.xmin {
		if !math.IsInf(cp.xmin[i], -1) {
			nFinite++
		}
		if !math.IsInf(cp.xmax[i], 1) {
			nFinite++
		}
	}
	cp.Lay.NIq = 2*lay.NLRated + nFinite
	cp.kkt = sparse.NewOrderingCache(o.kkt.Ordering())
	cp.kktSym = sparse.NewSymbolicCacheFrom(cp.kkt, 1.0).Shaped()
	cp.prep = time.Since(t0)
	return &cp, nil
}

// GenPos returns the position of the given case generator within the
// in-service generator set (the Pg/Qg variable block index its dispatch
// occupies), or -1 when the generator is out of service.
func (o *OPF) GenPos(gen int) int {
	if gen < 0 || gen >= len(o.Case.Gens) {
		return -1
	}
	if !o.Case.Gens[gen].Status {
		return -1
	}
	gi := 0
	for i := 0; i < gen; i++ {
		if o.Case.Gens[i].Status {
			gi++
		}
	}
	return gi
}

// ProjectStartGen maps a warm start predicted in o's layout onto the
// layout of the variant with in-service generator position gi dropped
// (see RebindGenOutage and GenPos). Two things happen:
//
//   - Redispatch: the outaged unit's real dispatch is re-spread across
//     the remaining units in proportion to their upward headroom
//     (clipped at Pmax), so the projected start approximately balances
//     the system instead of starting lost-generation short. This is the
//     screening redispatch convention (DESIGN.md §8).
//   - Projection: the Pg/Qg entries of the dropped unit leave X, and
//     the µ/Z rows of its finite variable bounds leave the inequality
//     vectors (flow rows first, then finite upper bounds, then finite
//     lower bounds — the FullInequality order). λ is unchanged, since
//     a generator outage touches no equality row.
func (o *OPF) ProjectStartGen(st *Start, gi int) *Start {
	lay := o.Lay
	if st == nil || gi < 0 || gi >= lay.NG {
		return st
	}
	pg, qg := lay.PgOff+gi, lay.QgOff+gi
	x := st.X
	if len(x) == lay.NX {
		x = slices.Clone(x)
		if lost := x[pg]; lost > 0 {
			total := 0.0
			for g := 0; g < lay.NG; g++ {
				if g == gi {
					continue
				}
				if h := o.xmax[lay.PgOff+g] - x[lay.PgOff+g]; h > 0 && !math.IsInf(h, 1) {
					total += h
				}
			}
			if total > 0 {
				for g := 0; g < lay.NG; g++ {
					if g == gi {
						continue
					}
					h := o.xmax[lay.PgOff+g] - x[lay.PgOff+g]
					if h > 0 && !math.IsInf(h, 1) {
						if add := lost * h / total; add < h {
							x[lay.PgOff+g] += add
						} else {
							x[lay.PgOff+g] += h
						}
					}
				}
			}
		}
		x = slices.Delete(x, qg, qg+1)
		x = slices.Delete(x, pg, pg+1)
	}
	mu, z := st.Mu, st.Z
	if rows := o.boundRows(pg, qg); len(rows) > 0 && len(mu) == lay.NIq && len(z) == lay.NIq {
		mu = dropRows(mu, rows)
		z = dropRows(z, rows)
	}
	return &Start{X: x, Lam: st.Lam, Mu: mu, Z: z}
}

// boundRows returns the inequality-row indices (in FullInequality /
// µ-vector order) of the finite bounds of the two packed variable
// indices, ascending.
func (o *OPF) boundRows(i1, i2 int) []int {
	var rows []int
	row := 2 * o.Lay.NLRated
	for i := range o.xmax {
		if !math.IsInf(o.xmax[i], 1) {
			if i == i1 || i == i2 {
				rows = append(rows, row)
			}
			row++
		}
	}
	for i := range o.xmin {
		if !math.IsInf(o.xmin[i], -1) {
			if i == i1 || i == i2 {
				rows = append(rows, row)
			}
			row++
		}
	}
	return rows
}

// dropRows returns a copy of v without the (ascending) row indices.
func dropRows(v la.Vector, rows []int) la.Vector {
	out := make(la.Vector, 0, len(v)-len(rows))
	k := 0
	for i, x := range v {
		if k < len(rows) && i == rows[k] {
			k++
			continue
		}
		out = append(out, x)
	}
	return out
}

// RatedPos returns the position of the given case branch within the
// rated-branch subset (the flow-row index its |Sf|² constraint occupies),
// or -1 when the branch is out of service or unrated — i.e. when its
// outage leaves the inequality layout unchanged.
func (o *OPF) RatedPos(branch int) int {
	if branch < 0 || branch >= len(o.Case.Branches) {
		return -1
	}
	br := o.Case.Branches[branch]
	if !br.Status || br.RateA <= 0 {
		return -1
	}
	rl := 0
	for i := 0; i < branch; i++ {
		if b := o.Case.Branches[i]; b.Status && b.RateA > 0 {
			rl++
		}
	}
	return rl
}

// ProjectStart maps a warm start predicted in o's layout onto the layout
// of the variant with rated-branch position rl outaged (see RebindOutage
// and RatedPos): the µ and Z entries of the dropped from- and to-flow
// rows (rl and NLRated+rl) are removed; X and λ are unchanged, since the
// outage touches neither the variable packing nor the equality rows.
// This is what makes rated-branch contingencies warm-startable from an
// intact-system prediction instead of falling back to a cold solve.
func (o *OPF) ProjectStart(st *Start, rl int) *Start {
	nlr := o.Lay.NLRated
	if st == nil || rl < 0 || rl >= nlr {
		return st
	}
	drop2 := func(v la.Vector) la.Vector {
		if len(v) == 0 {
			return v
		}
		out := make(la.Vector, 0, len(v)-2)
		for i, x := range v {
			if i == rl || i == nlr+rl {
				continue
			}
			out = append(out, x)
		}
		return out
	}
	return &Start{X: st.X, Lam: st.Lam, Mu: drop2(st.Mu), Z: drop2(st.Z)}
}

// Perturb derives the OPF of a load-scaled variant of the bound case in
// one step: clone, scale, rebind. The resulting instance's PrepTime is
// the full derivation cost — the real per-problem construction work once
// the base structure is amortized across a sweep (much smaller than a
// fresh Prepare, which the runtime-breakdown figures should reflect).
func (o *OPF) Perturb(factors []float64) *OPF {
	t0 := time.Now()
	cc := o.Case.Clone()
	cc.ScaleLoads(factors)
	cp := *o
	cp.Case = cc
	cp.prep = time.Since(t0)
	return &cp
}

// DefaultStart returns the Matpower-style interior starting point: bounded
// variables at the midpoint of their range and every angle at the
// reference angle.
func (o *OPF) DefaultStart() la.Vector {
	x := make(la.Vector, o.Lay.NX)
	for i := range x {
		lo, hi := o.xmin[i], o.xmax[i]
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			x[i] = 0
		case math.IsInf(lo, -1):
			x[i] = hi
		case math.IsInf(hi, 1):
			x[i] = lo
		default:
			x[i] = (lo + hi) / 2
		}
	}
	for i := 0; i < o.Lay.NB; i++ {
		x[o.Lay.VaOff+i] = o.refVa
	}
	return x
}

// Options re-exports the MIPS options for OPF callers.
type Options = mips.Options

// Solve runs the interior-point method from the given start (nil for the
// default cold start). The returned error wraps mips failures; the Result
// always reports iterations and timing.
func (o *OPF) Solve(start *Start, opt Options) (*Result, error) {
	sc := evalPool.Get().(*evalScratch)
	defer evalPool.Put(sc)
	p := o.problemWith(sc)
	if opt.Orderings == nil && !opt.NoKKTReuse {
		opt.Orderings = o.kkt
		if opt.KKT == nil {
			opt.KKT = o.kktSym
		}
	}
	if opt.Ordering == sparse.OrderRCM {
		// Thread the grid's configured ordering (SetOrdering) into the
		// paths that do not read the cache — the NoKKTReuse baseline and
		// any re-analysis mips performs without a shared cache.
		opt.Ordering = o.kkt.Ordering()
		if opt.NoKKTReuse && opt.Ordering == sparse.OrderAuto && !o.kktForced {
			// The no-reuse baseline factors from scratch every iteration;
			// the per-system auto default would re-run the two-candidate
			// fill probe on each of them, distorting the very
			// reuse-vs-baseline comparison the flag exists for. Fall back
			// to the fixed pre-probe default; auto forced explicitly via
			// SetOrdering (-ordering auto) or Options.Ordering is
			// honoured.
			opt.Ordering = sparse.OrderRCM
		}
	}
	var ws *mips.WarmStart
	if start != nil {
		ws = &mips.WarmStart{X: start.X, Lam: start.Lam, Mu: start.Mu, Z: start.Z}
	}
	t0 := time.Now()
	mr, err := mips.Solve(p, o.DefaultStart(), ws, opt)
	solveTime := time.Since(t0)
	res := o.extract(mr)
	res.PrepTime = o.prep
	res.SolveTime = solveTime
	if err != nil {
		return res, fmt.Errorf("opf: %s: %w", o.Case.Name, err)
	}
	return res, nil
}

func (o *OPF) extract(mr *mips.Result) *Result {
	lay := o.Lay
	res := &Result{
		Converged:  mr.Converged,
		Iterations: mr.Iterations,
		Cost:       mr.F,
		X:          mr.X,
		Lam:        mr.Lam,
		Mu:         mr.Mu,
		Z:          mr.Z,
		Trace:      mr.Trace,
		Va:         mr.X[lay.VaOff : lay.VaOff+lay.NB].Clone(),
		Vm:         mr.X[lay.VmOff : lay.VmOff+lay.NB].Clone(),
	}
	res.Pg = make(la.Vector, lay.NG)
	res.Qg = make(la.Vector, lay.NG)
	for g := 0; g < lay.NG; g++ {
		res.Pg[g] = mr.X[lay.PgOff+g] * o.Case.BaseMVA
		res.Qg[g] = mr.X[lay.QgOff+g] * o.Case.BaseMVA
	}
	return res
}

// Cost evaluates the generation cost of a raw x vector in $/hr.
func (o *OPF) Cost(x la.Vector) float64 {
	f, _ := o.costGrad(x)
	return f
}

func (o *OPF) costGrad(x la.Vector) (float64, la.Vector) {
	lay := o.Lay
	base := o.Case.BaseMVA
	f := 0.0
	df := make(la.Vector, lay.NX)
	for g, gen := range o.gens {
		pmw := x[lay.PgOff+g] * base
		f += gen.Cost.Eval(pmw)
		df[lay.PgOff+g] = gen.Cost.Deriv(pmw) * base
	}
	return f, df
}

// Constraints evaluates g(x) and h(x) (nonlinear rows only) at x — used
// by tests and by the physics-informed losses.
func (o *OPF) Constraints(x la.Vector) (g, h la.Vector) {
	g, _ = o.equality(x, false)
	h, _ = o.inequality(x, false)
	return g, h
}

// Problem returns the mips problem description Solve hands to the
// interior-point solver, backed by a private evaluation scratch (not
// the shared pool, so callers may hold it as long as they like). It is
// the seam the solver's allocation harness drives Steppers through.
func (o *OPF) Problem() *mips.Problem {
	return o.problemWith(new(evalScratch))
}

// problem builds the reference evaluation path: each callback allocates
// its results from scratch using the grid-level derivative routines.
// Solve uses the entry-wise streaming path in eval.go instead; this one
// remains as the oracle the equivalence tests pin that path against.
func (o *OPF) problem() *mips.Problem {
	return &mips.Problem{
		NX: o.Lay.NX,
		F:  o.costGrad,
		G: func(x la.Vector) (la.Vector, *sparse.CSC) {
			return o.equality(x, true)
		},
		H: func(x la.Vector) (la.Vector, *sparse.CSC) {
			if o.Lay.NLRated == 0 {
				return nil, nil
			}
			return o.inequality(x, true)
		},
		Hess: o.hessian,
		XMin: o.xmin,
		XMax: o.xmax,
	}
}

func (o *OPF) voltages(x la.Vector) []complex128 {
	lay := o.Lay
	return grid.Voltage(x[lay.VmOff:lay.VmOff+lay.NB], x[lay.VaOff:lay.VaOff+lay.NB])
}

// equality builds [Re(mis); Im(mis); Va_ref − Va0] and its Jacobian.
func (o *OPF) equality(x la.Vector, wantJac bool) (la.Vector, *sparse.CSC) {
	lay := o.Lay
	nb := lay.NB
	v := o.voltages(x)
	sbus := grid.MakeSbus(o.Case, x[lay.PgOff:lay.PgOff+lay.NG], x[lay.QgOff:lay.QgOff+lay.NG])
	mis := grid.PowerMismatch(o.Y, v, sbus)
	g := make(la.Vector, lay.NEq)
	for i := 0; i < nb; i++ {
		g[i] = real(mis[i])
		g[nb+i] = imag(mis[i])
	}
	g[2*nb] = x[lay.VaOff+o.refIdx] - o.refVa
	if !wantJac {
		return g, nil
	}
	dVa, dVm := grid.DSbusDV(o.Y.Ybus, v)
	jb := sparse.NewBuilder(lay.NEq, lay.NX)
	appendComplexBlock(jb, dVa, 0, lay.VaOff, nb)
	appendComplexBlock(jb, dVm, 0, lay.VmOff, nb)
	for gi, b := range o.gbus {
		jb.Append(b, lay.PgOff+gi, -1)    // dRe(mis)/dPg
		jb.Append(nb+b, lay.QgOff+gi, -1) // dIm(mis)/dQg
	}
	jb.Append(2*nb, lay.VaOff+o.refIdx, 1) // reference angle row
	return g, jb.ToCSC()
}

// appendComplexBlock writes Re(m) rows at rowOff and Im(m) rows at
// rowOff+nb into the builder, at column offset colOff.
func appendComplexBlock(jb *sparse.Builder, m *sparse.CSCComplex, rowOff, colOff, nb int) {
	for j := 0; j < m.NCols; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			i := m.RowIdx[p]
			jb.Append(rowOff+i, colOff+j, real(m.Val[p]))
			jb.Append(rowOff+nb+i, colOff+j, imag(m.Val[p]))
		}
	}
}

// inequality builds [|Sf|²−rate²; |St|²−rate²] over rated branches.
func (o *OPF) inequality(x la.Vector, wantJac bool) (la.Vector, *sparse.CSC) {
	lay := o.Lay
	nlr := lay.NLRated
	if nlr == 0 {
		return nil, nil
	}
	v := o.voltages(x)
	if !wantJac {
		sf, st := grid.BranchFlows(o.ratedY, v)
		return o.flowViolations(sf, st), nil
	}
	dSfVa, dSfVm, dStVa, dStVm, sf, st := grid.DSbrDV(o.ratedY, v)
	h := o.flowViolations(sf, st)
	dAfVa, dAfVm := grid.DAbrDV(dSfVa, dSfVm, sf)
	dAtVa, dAtVm := grid.DAbrDV(dStVa, dStVm, st)
	jb := sparse.NewBuilder(2*nlr, lay.NX)
	appendBranchReal(jb, dAfVa, 0, lay.VaOff)
	appendBranchReal(jb, dAfVm, 0, lay.VmOff)
	appendBranchReal(jb, dAtVa, nlr, lay.VaOff)
	appendBranchReal(jb, dAtVm, nlr, lay.VmOff)
	return h, jb.ToCSC()
}

func (o *OPF) flowViolations(sf, st []complex128) la.Vector {
	nlr := o.Lay.NLRated
	h := make(la.Vector, 2*nlr)
	for l := 0; l < nlr; l++ {
		pf, qf := real(sf[l]), imag(sf[l])
		pt, qt := real(st[l]), imag(st[l])
		h[l] = pf*pf + qf*qf - o.rates2[l]
		h[nlr+l] = pt*pt + qt*qt - o.rates2[l]
	}
	return h
}

func appendBranchReal(jb *sparse.Builder, m *grid.BranchMatReal, rowOff, colOff int) {
	for l := range m.F {
		jb.Append(rowOff+l, colOff+m.F[l], m.Vf[l])
		jb.Append(rowOff+l, colOff+m.T[l], m.Vt[l])
	}
}

// hessian assembles ∇²f + Σλ∇²g + Σµ∇²h in the packed x layout.
func (o *OPF) hessian(x la.Vector, lam, mu la.Vector) *sparse.CSC {
	lay := o.Lay
	nb := lay.NB
	base := o.Case.BaseMVA
	v := o.voltages(x)
	hb := sparse.NewBuilder(lay.NX, lay.NX)

	// Cost block (diagonal in Pg).
	for g, gen := range o.gens {
		if d2 := gen.Cost.Deriv2() * base * base; d2 != 0 {
			hb.Append(lay.PgOff+g, lay.PgOff+g, d2)
		}
	}

	// Power-balance block.
	lamP := make([]complex128, nb)
	lamQ := make([]complex128, nb)
	for i := 0; i < nb; i++ {
		lamP[i] = complex(lam[i], 0)
		lamQ[i] = complex(lam[nb+i], 0)
	}
	paa, pav, pva, pvv := grid.D2SbusDV2(o.Y.Ybus, v, lamP)
	qaa, qav, qva, qvv := grid.D2SbusDV2(o.Y.Ybus, v, lamQ)
	appendRealImagSum(hb, paa, qaa, lay.VaOff, lay.VaOff)
	appendRealImagSum(hb, pav, qav, lay.VaOff, lay.VmOff)
	appendRealImagSum(hb, pva, qva, lay.VmOff, lay.VaOff)
	appendRealImagSum(hb, pvv, qvv, lay.VmOff, lay.VmOff)

	// Branch-flow block.
	nlr := lay.NLRated
	if nlr > 0 && len(mu) == 2*nlr {
		dSfVa, dSfVm, dStVa, dStVm, sf, st := grid.DSbrDV(o.ratedY, v)
		muF := mu[:nlr]
		muT := mu[nlr:]
		faa, fav, fva, fvv := grid.D2ASbrDV2(dSfVa, dSfVm, sf, o.ratedY.Yf, true, v, muF)
		taa, tav, tva, tvv := grid.D2ASbrDV2(dStVa, dStVm, st, o.ratedY.Yt, false, v, muT)
		hb.AppendCSC(lay.VaOff, lay.VaOff, 1, faa)
		hb.AppendCSC(lay.VaOff, lay.VmOff, 1, fav)
		hb.AppendCSC(lay.VmOff, lay.VaOff, 1, fva)
		hb.AppendCSC(lay.VmOff, lay.VmOff, 1, fvv)
		hb.AppendCSC(lay.VaOff, lay.VaOff, 1, taa)
		hb.AppendCSC(lay.VaOff, lay.VmOff, 1, tav)
		hb.AppendCSC(lay.VmOff, lay.VaOff, 1, tva)
		hb.AppendCSC(lay.VmOff, lay.VmOff, 1, tvv)
	}
	return hb.ToCSC()
}

func appendRealImagSum(hb *sparse.Builder, re, im *sparse.CSCComplex, rowOff, colOff int) {
	for j := 0; j < re.NCols; j++ {
		for p := re.ColPtr[j]; p < re.ColPtr[j+1]; p++ {
			hb.Append(rowOff+re.RowIdx[p], colOff+j, real(re.Val[p]))
		}
	}
	for j := 0; j < im.NCols; j++ {
		for p := im.ColPtr[j]; p < im.ColPtr[j+1]; p++ {
			hb.Append(rowOff+im.RowIdx[p], colOff+j, imag(im.Val[p]))
		}
	}
}

// Equality exposes g(x) and its Jacobian for external consumers (the
// physics-informed training losses differentiate through it).
func (o *OPF) Equality(x la.Vector) (la.Vector, *sparse.CSC) {
	return o.equality(x, true)
}

// Inequality exposes the nonlinear h(x) rows (branch flows) and Jacobian.
func (o *OPF) Inequality(x la.Vector) (la.Vector, *sparse.CSC) {
	return o.inequality(x, true)
}

// CostGrad exposes the objective and its gradient.
func (o *OPF) CostGrad(x la.Vector) (float64, la.Vector) {
	return o.costGrad(x)
}

// Bounds returns copies of the variable bounds.
func (o *OPF) Bounds() (xmin, xmax la.Vector) {
	return o.xmin.Clone(), o.xmax.Clone()
}

// FullInequality evaluates the complete inequality set in MIPS order —
// nonlinear flow rows, then finite upper-bound rows, then finite
// lower-bound rows — matching the layout of the µ and Z vectors in
// Result. The Jacobian covers the same rows.
func (o *OPF) FullInequality(x la.Vector) (la.Vector, *sparse.CSC) {
	h, jh := o.inequality(x, true)
	nh := len(h)
	full := make(la.Vector, o.Lay.NIq)
	copy(full, h)
	jb := sparse.NewBuilder(o.Lay.NIq, o.Lay.NX)
	if jh != nil {
		jb.AppendCSC(0, 0, 1, jh)
	}
	row := nh
	for i := range o.xmax {
		if !math.IsInf(o.xmax[i], 1) {
			full[row] = x[i] - o.xmax[i]
			jb.Append(row, i, 1)
			row++
		}
	}
	for i := range o.xmin {
		if !math.IsInf(o.xmin[i], -1) {
			full[row] = o.xmin[i] - x[i]
			jb.Append(row, i, -1)
			row++
		}
	}
	return full, jb.ToCSC()
}
