package opf

import (
	"testing"

	"repro/internal/grid"
)

// TestRebindMatchesPrepare: solving a load-perturbed clone through a
// rebound base OPF must give bit-identical results to a fresh Prepare of
// the perturbed case — the correctness contract of the batch engine's
// structure-reuse cache.
func TestRebindMatchesPrepare(t *testing.T) {
	c := grid.Case9()
	base := Prepare(c)

	cc := c.Clone()
	factors := make([]float64, c.NB())
	for i := range factors {
		factors[i] = 1.05 - 0.01*float64(i%3)
	}
	cc.ScaleLoads(factors)

	rFresh, err := Prepare(cc).Solve(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rReuse, err := base.Rebind(cc).Solve(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rFresh.Converged || !rReuse.Converged {
		t.Fatalf("convergence mismatch: fresh=%v reuse=%v", rFresh.Converged, rReuse.Converged)
	}
	if rFresh.Iterations != rReuse.Iterations {
		t.Fatalf("iterations: fresh=%d reuse=%d", rFresh.Iterations, rReuse.Iterations)
	}
	if rFresh.Cost != rReuse.Cost {
		t.Fatalf("cost: fresh=%v reuse=%v", rFresh.Cost, rReuse.Cost)
	}
	for i := range rFresh.X {
		if rFresh.X[i] != rReuse.X[i] {
			t.Fatalf("x[%d]: fresh=%v reuse=%v", i, rFresh.X[i], rReuse.X[i])
		}
	}

	// The rebound instance must not have mutated the base: a base-case
	// solve through the original still matches a fresh base solve.
	rBase, err := base.Solve(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rBase2, err := Prepare(c).Solve(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rBase.Cost != rBase2.Cost || rBase.Iterations != rBase2.Iterations {
		t.Fatalf("base instance disturbed by Rebind: %v/%d vs %v/%d",
			rBase.Cost, rBase.Iterations, rBase2.Cost, rBase2.Iterations)
	}
}
