package opf

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/sparse"
)

// TestKKTReuseMatchesFullFactorization pins the symbolic-reuse KKT path
// against the from-scratch baseline on a real AC-OPF: same iteration
// count, solution and cost within tight tolerance. (Not bit-identical by
// construction: reuse freezes each solve's first-iteration pivots where
// the baseline re-pivots every iteration.)
func TestKKTReuseMatchesFullFactorization(t *testing.T) {
	for _, name := range []string{"case9", "case14"} {
		c := caseByName(t, name)
		rReuse, err := Prepare(c).Solve(nil, Options{})
		if err != nil {
			t.Fatalf("%s reuse: %v", name, err)
		}
		rFull, err := Prepare(c).Solve(nil, Options{NoKKTReuse: true})
		if err != nil {
			t.Fatalf("%s full: %v", name, err)
		}
		if !rReuse.Converged || !rFull.Converged {
			t.Fatalf("%s convergence: reuse=%v full=%v", name, rReuse.Converged, rFull.Converged)
		}
		if rReuse.Iterations != rFull.Iterations {
			t.Fatalf("%s iterations: reuse=%d full=%d", name, rReuse.Iterations, rFull.Iterations)
		}
		if d := math.Abs(rReuse.Cost-rFull.Cost) / (1 + math.Abs(rFull.Cost)); d > 1e-9 {
			t.Fatalf("%s cost differs: %v vs %v", name, rReuse.Cost, rFull.Cost)
		}
		if d := rReuse.X.Clone().Sub(rFull.X).NormInf(); d > 1e-7 {
			t.Fatalf("%s solutions differ by %v", name, d)
		}
	}
}

func caseByName(t *testing.T, name string) *grid.Case {
	t.Helper()
	switch name {
	case "case9":
		return grid.Case9()
	case "case14":
		return grid.Case14()
	}
	t.Fatalf("unknown case %s", name)
	return nil
}

// TestKKTCacheSharedAcrossPerturbations pins the cross-solve seam: all
// instances derived from one Prepare share its ordering cache AND its
// pivot-shaped symbolic cache, so a sweep computes the fill-reducing
// ordering and the symbolic analysis once — every iteration after the
// very first across the whole sweep is a numeric refactorization.
func TestKKTCacheSharedAcrossPerturbations(t *testing.T) {
	base := Prepare(grid.Case9())
	nb := base.Lay.NB
	totalIters := 0
	for _, s := range []float64{0.95, 1.0, 1.05} {
		fac := make([]float64, nb)
		for i := range fac {
			fac[i] = s
		}
		r, err := base.Perturb(fac).Solve(nil, Options{})
		if err != nil {
			t.Fatalf("scale %v: %v", s, err)
		}
		totalIters += r.Iterations
	}
	st := base.KKTStats()
	if st.Orderings != 1 {
		t.Fatalf("orderings = %d, want 1 for the whole sweep", st.Orderings)
	}
	if st.Analyses != 1 {
		t.Fatalf("analyses = %d, want 1 (shared across the sweep)", st.Analyses)
	}
	if st.Refactors != uint64(totalIters-1) {
		t.Fatalf("refactors = %d, want %d", st.Refactors, totalIters-1)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0", st.Fallbacks)
	}
}

// TestKKTOrderingChoices: the solution must not depend on the
// fill-reducing ordering.
func TestKKTOrderingChoices(t *testing.T) {
	ref, err := Prepare(grid.Case9()).Solve(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ord := range []sparse.Ordering{sparse.OrderNatural, sparse.OrderAMD} {
		o := Prepare(grid.Case9())
		o.SetOrdering(ord)
		r, err := o.Solve(nil, Options{})
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		if !r.Converged {
			t.Fatalf("%v: did not converge", ord)
		}
		if d := math.Abs(r.Cost-ref.Cost) / (1 + math.Abs(ref.Cost)); d > 1e-7 {
			t.Fatalf("%v: cost %v differs from rcm %v", ord, r.Cost, ref.Cost)
		}
		if got := o.KKTStats().Orderings; got != 1 {
			t.Fatalf("%v: orderings = %d, want 1", ord, got)
		}
	}
}
