package opf

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/grid"
	"repro/internal/la"
)

func solveCase(t *testing.T, c *grid.Case) *Result {
	t.Helper()
	o := Prepare(c)
	r, err := o.Solve(nil, Options{})
	if err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	if !r.Converged {
		t.Fatalf("%s: not converged", c.Name)
	}
	return r
}

// Reference objective values from Matpower (runopf on the standard cases).
func TestCase9KnownOptimum(t *testing.T) {
	r := solveCase(t, grid.Case9())
	if math.Abs(r.Cost-5296.69)/5296.69 > 0.01 {
		t.Fatalf("case9 cost = %.2f, want ≈5296.69", r.Cost)
	}
}

func TestCase14KnownOptimum(t *testing.T) {
	r := solveCase(t, grid.Case14())
	if math.Abs(r.Cost-8081.53)/8081.53 > 0.01 {
		t.Fatalf("case14 cost = %.2f, want ≈8081.53", r.Cost)
	}
}

func TestCase5KnownOptimum(t *testing.T) {
	r := solveCase(t, grid.Case5())
	if math.Abs(r.Cost-17551.89)/17551.89 > 0.02 {
		t.Fatalf("case5 cost = %.2f, want ≈17551.9", r.Cost)
	}
}

func TestSolutionFeasibility(t *testing.T) {
	for _, c := range []*grid.Case{grid.Case9(), grid.Case14(), grid.Case5()} {
		o := Prepare(c)
		r, err := o.Solve(nil, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		g, h := o.Constraints(r.X)
		if g.NormInf() > 1e-5 {
			t.Errorf("%s: power balance violated by %v", c.Name, g.NormInf())
		}
		for k, v := range h {
			if v > 1e-5 {
				t.Errorf("%s: flow limit %d violated by %v", c.Name, k, v)
			}
		}
		// Bounds.
		for i := 0; i < o.Lay.NB; i++ {
			vm := r.Vm[i]
			if vm < c.Buses[i].Vmin-1e-6 || vm > c.Buses[i].Vmax+1e-6 {
				t.Errorf("%s: bus %d Vm %.4f outside [%.2f,%.2f]", c.Name, i, vm, c.Buses[i].Vmin, c.Buses[i].Vmax)
			}
		}
		gens := c.ActiveGens()
		for gi, gen := range gens {
			if r.Pg[gi] < gen.Pmin-1e-4 || r.Pg[gi] > gen.Pmax+1e-4 {
				t.Errorf("%s: gen %d Pg %.2f outside [%.1f,%.1f]", c.Name, gi, r.Pg[gi], gen.Pmin, gen.Pmax)
			}
			if r.Qg[gi] < gen.Qmin-1e-4 || r.Qg[gi] > gen.Qmax+1e-4 {
				t.Errorf("%s: gen %d Qg %.2f outside limits", c.Name, gi, r.Qg[gi])
			}
		}
		// Reference angle unchanged.
		ref := c.RefIndex()
		if math.Abs(r.Va[ref]-grid.Deg2Rad(c.Buses[ref].Va)) > 1e-8 {
			t.Errorf("%s: reference angle moved", c.Name)
		}
	}
}

// The solved OPF voltage/dispatch must satisfy the complex power balance
// computed independently by the grid package.
func TestSolutionSatisfiesACBalance(t *testing.T) {
	c := grid.Case9()
	r := solveCase(t, c)
	y := grid.MakeYbus(c)
	v := grid.Voltage(r.Vm, r.Va)
	pg := make(la.Vector, len(r.Pg))
	qg := make(la.Vector, len(r.Qg))
	for i := range pg {
		pg[i] = r.Pg[i] / c.BaseMVA
		qg[i] = r.Qg[i] / c.BaseMVA
	}
	mis := grid.PowerMismatch(y, v, grid.MakeSbus(c, pg, qg))
	for i, m := range mis {
		if cmplx.Abs(m) > 1e-5 {
			t.Fatalf("bus %d mismatch %v", i, m)
		}
	}
}

func TestLayoutCounts(t *testing.T) {
	// The paper's Table II: #λ = 2·nb + 1 and #µ = 2·nl_rated + finite
	// bounds (Vm, Pg, Qg on both sides).
	for _, tc := range []struct {
		c        *grid.Case
		neq, niq int
	}{
		{grid.Case14(), 29, 48},             // matches Table II
		{grid.Case9(), 19, 2*9 + 2*(9+2*3)}, // all 9 branches rated
		{grid.Case5(), 11, 2*6 + 2*(5+2*5)}, // all 6 branches rated
	} {
		o := Prepare(tc.c)
		if o.Lay.NEq != tc.neq {
			t.Errorf("%s NEq = %d want %d", tc.c.Name, o.Lay.NEq, tc.neq)
		}
		if o.Lay.NIq != tc.niq {
			t.Errorf("%s NIq = %d want %d", tc.c.Name, o.Lay.NIq, tc.niq)
		}
	}
}

func TestWarmStartFromSolution(t *testing.T) {
	// The core Smart-PGSim mechanism: warm-starting from the exact
	// solution must converge in far fewer iterations.
	for _, c := range []*grid.Case{grid.Case9(), grid.Case14()} {
		o := Prepare(c)
		cold, err := o.Solve(nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := o.Solve(&Start{X: cold.X, Lam: cold.Lam, Mu: cold.Mu, Z: cold.Z}, Options{})
		if err != nil {
			t.Fatalf("%s warm: %v", c.Name, err)
		}
		if warm.Iterations*2 > cold.Iterations {
			t.Errorf("%s: warm %d vs cold %d iterations — warm start not effective",
				c.Name, warm.Iterations, cold.Iterations)
		}
		if math.Abs(warm.Cost-cold.Cost)/cold.Cost > 1e-6 {
			t.Errorf("%s: warm cost %.4f differs from cold %.4f", c.Name, warm.Cost, cold.Cost)
		}
	}
}

func TestWarmStartXOnly(t *testing.T) {
	// Precise X with default multipliers (paper's sensitivity case IX)
	// must still converge.
	c := grid.Case9()
	o := Prepare(c)
	cold, err := o.Solve(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := o.Solve(&Start{X: cold.X}, Options{})
	if err != nil {
		t.Fatalf("X-only warm start failed: %v", err)
	}
	if !r.Converged {
		t.Fatal("X-only warm start did not converge")
	}
}

func TestPerturbedLoadsSolve(t *testing.T) {
	// ±10% per-bus random-ish load factors keep the OPF solvable (the
	// paper's sampling law).
	c := grid.Case9()
	fac := make([]float64, c.NB())
	for i := range fac {
		fac[i] = 0.9 + 0.2*float64(i%2) // alternating 0.9 / 1.1
	}
	c.ScaleLoads(fac)
	r := solveCase(t, c)
	if r.Cost <= 0 {
		t.Fatal("nonsensical cost")
	}
}

func TestTraceForFigure10(t *testing.T) {
	c := grid.Case9()
	o := Prepare(c)
	r, err := o.Solve(nil, Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) < 3 {
		t.Fatalf("trace too short: %d", len(r.Trace))
	}
	last := r.Trace[len(r.Trace)-1]
	if last.FeasCond > 1e-6 || last.CompCond > 1e-6 {
		t.Fatalf("final conditions not converged: %+v", last)
	}
}

func TestDefaultStartInsideBounds(t *testing.T) {
	o := Prepare(grid.Case14())
	x := o.DefaultStart()
	for i := range x {
		if x[i] < o.xmin[i]-1e-12 || x[i] > o.xmax[i]+1e-12 {
			t.Fatalf("default start x[%d]=%v outside [%v,%v]", i, x[i], o.xmin[i], o.xmax[i])
		}
	}
}

func TestCostEval(t *testing.T) {
	c := grid.Case9()
	o := Prepare(c)
	x := o.DefaultStart()
	f := o.Cost(x)
	// Midpoint dispatch: Pg = (10+250)/2, (10+300)/2, (10+270)/2 MW.
	want := 0.0
	for _, g := range c.ActiveGens() {
		want += g.Cost.Eval((g.Pmin + g.Pmax) / 2)
	}
	if math.Abs(f-want) > 1e-6 {
		t.Fatalf("Cost = %v want %v", f, want)
	}
}

func TestIterationCountsReasonable(t *testing.T) {
	// Cold-start MIPS on the reference cases converges in tens of
	// iterations (Matpower typically 10-25).
	for _, c := range []*grid.Case{grid.Case9(), grid.Case14(), grid.Case5()} {
		r := solveCase(t, c)
		if r.Iterations < 5 || r.Iterations > 60 {
			t.Errorf("%s took %d iterations — outside plausible IPM range", c.Name, r.Iterations)
		}
	}
}
