package opf

import (
	"math/cmplx"
	"sync"

	"repro/internal/la"
	"repro/internal/mips"
	"repro/internal/sparse"
)

// This file is the solver-facing evaluation path: the same objective,
// constraint and Hessian values as the reference methods in opf.go,
// produced by streaming the Matpower derivative formulas entry by entry
// into pattern-compiled assemblers instead of composing chains of
// complex sparse intermediates (Clone/DiagScale/AddScaled/T each
// allocate and sort). The reference implementations stay as the oracle
// — TestEvalMatchesReference pins the two paths against each other —
// and as the exported Equality/Inequality/Hessian seams.
//
// Every matrix here has a fixed sparsity pattern per problem structure:
// the Jacobian and Hessian patterns derive from Ybus and the branch
// list, both frozen at Prepare time. An evalScratch therefore compiles
// each assembly once and re-stamps values on every later iteration, and
// a solve's ~3 evaluations per interior-point iteration stop being the
// dominant cost of a warm solve.

// evalScratch holds the buffers and compiled assemblers one solve's
// problem callbacks reuse across iterations. Solve draws scratches from
// a package-level pool (one per concurrently running solve), so sweeps
// of one grid keep reusing the compiled assembly programs; a scratch
// that last served a different grid just recompiles on first use.
type evalScratch struct {
	ybusKey *sparse.CSCComplex // identity of the Ybus tpos was built for
	tpos    []int32            // Ybus entry -> its transpose entry (-1 if absent)

	v, vn, ibus []complex128 // voltages, unit phasors, bus injections
	sbus        []complex128
	lamC, dlam  []complex128 // dual weights λp − iλq and (Yᴴ·diagV)·λ
	ginv        []float64    // 1/|V|

	df, g, h la.Vector

	nx, neq, niq       int
	jgAsm, jhAsm, hAsm *sparse.Assembler
}

var evalPool = sync.Pool{New: func() any { return new(evalScratch) }}

func (sc *evalScratch) ensure(o *OPF) {
	lay := o.Lay
	nb := lay.NB
	if len(sc.v) < nb {
		sc.v = make([]complex128, nb)
		sc.vn = make([]complex128, nb)
		sc.ibus = make([]complex128, nb)
		sc.sbus = make([]complex128, nb)
		sc.lamC = make([]complex128, nb)
		sc.dlam = make([]complex128, nb)
		sc.ginv = make([]float64, nb)
	}
	sc.v = sc.v[:nb]
	sc.vn = sc.vn[:nb]
	sc.ibus = sc.ibus[:nb]
	sc.sbus = sc.sbus[:nb]
	sc.lamC = sc.lamC[:nb]
	sc.dlam = sc.dlam[:nb]
	sc.ginv = sc.ginv[:nb]
	if cap(sc.df) < lay.NX {
		sc.df = make(la.Vector, lay.NX)
	}
	sc.df = sc.df[:lay.NX]
	if cap(sc.g) < lay.NEq {
		sc.g = make(la.Vector, lay.NEq)
	}
	sc.g = sc.g[:lay.NEq]
	niq := 2 * lay.NLRated
	if cap(sc.h) < niq {
		sc.h = make(la.Vector, niq)
	}
	sc.h = sc.h[:niq]
	if sc.jgAsm == nil || sc.neq != lay.NEq || sc.nx != lay.NX {
		sc.jgAsm = sparse.NewAssembler(lay.NEq, lay.NX)
	}
	if sc.jhAsm == nil || sc.niq != niq || sc.nx != lay.NX {
		sc.jhAsm = sparse.NewAssembler(niq, lay.NX)
	}
	if sc.hAsm == nil || sc.nx != lay.NX {
		sc.hAsm = sparse.NewAssembler(lay.NX, lay.NX)
	}
	sc.nx, sc.neq, sc.niq = lay.NX, lay.NEq, niq
	if sc.ybusKey != o.Y.Ybus {
		sc.tpos = transposePos(o.Y.Ybus, sc.tpos)
		sc.ybusKey = o.Y.Ybus
	}
}

// transposePos maps each stored entry (i,j) of y to the position of
// (j,i), or -1 when the pattern is not symmetric there. Power-system
// Ybus patterns are structurally symmetric, so the -1 case is theory
// only. Single O(nnz) pass: as the outer column index j ascends, the
// transpose partners wanted from column i are exactly column i's rows
// in ascending order, so a per-column cursor suffices.
func transposePos(y *sparse.CSCComplex, buf []int32) []int32 {
	nnz := len(y.RowIdx)
	if cap(buf) < nnz {
		buf = make([]int32, nnz)
	}
	buf = buf[:nnz]
	cur := make([]int, y.NCols)
	copy(cur, y.ColPtr[:y.NCols])
	for j := 0; j < y.NCols; j++ {
		for p := y.ColPtr[j]; p < y.ColPtr[j+1]; p++ {
			i := y.RowIdx[p]
			c := cur[i]
			for c < y.ColPtr[i+1] && y.RowIdx[c] < j {
				c++
			}
			cur[i] = c
			if c < y.ColPtr[i+1] && y.RowIdx[c] == j {
				buf[p] = int32(c)
			} else {
				buf[p] = -1
			}
		}
	}
	return buf
}

// prepPoint refreshes the voltage-dependent per-bus quantities at x.
func (o *OPF) prepPoint(sc *evalScratch, x la.Vector) {
	lay := o.Lay
	nb := lay.NB
	for i := 0; i < nb; i++ {
		vm, va := x[lay.VmOff+i], x[lay.VaOff+i]
		sc.v[i] = cmplx.Rect(vm, va)
		a := cmplx.Abs(sc.v[i])
		if a == 0 {
			sc.vn[i] = 1
			sc.ginv[i] = 0
		} else {
			sc.vn[i] = sc.v[i] / complex(a, 0)
			sc.ginv[i] = 1 / a
		}
	}
	y := o.Y.Ybus
	for i := range sc.ibus {
		sc.ibus[i] = 0
	}
	for j := 0; j < y.NCols; j++ {
		vj := sc.v[j]
		for p := y.ColPtr[j]; p < y.ColPtr[j+1]; p++ {
			sc.ibus[y.RowIdx[p]] += y.Val[p] * vj
		}
	}
}

// evalCost is costGrad writing the gradient into scratch storage.
func (o *OPF) evalCost(sc *evalScratch, x la.Vector) (float64, la.Vector) {
	lay := o.Lay
	base := o.Case.BaseMVA
	df := sc.df
	for i := range df {
		df[i] = 0
	}
	f := 0.0
	for g, gen := range o.gens {
		pmw := x[lay.PgOff+g] * base
		f += gen.Cost.Eval(pmw)
		df[lay.PgOff+g] = gen.Cost.Deriv(pmw) * base
	}
	return f, df
}

// evalEquality streams [Re(mis); Im(mis); Va_ref − Va0] and its
// Jacobian. The dSbus/dV entries come from the Matpower formulas
// evaluated per stored Ybus entry:
//
//	dS/dVa[i,j] = 1i·V[i]·(δij·conj(Ibus[i]) − conj(Y[i,j]·V[j]))
//	dS/dVm[i,j] = V[i]·conj(Y[i,j]·Vn[j]) + δij·conj(Ibus[i])·Vn[i]
//
// with the δ terms appended in a separate diagonal pass so correctness
// does not depend on Ybus storing every diagonal entry.
func (o *OPF) evalEquality(sc *evalScratch, x la.Vector) (la.Vector, *sparse.CSC) {
	lay := o.Lay
	nb := lay.NB
	o.prepPoint(sc, x)
	base := complex(o.Case.BaseMVA, 0)
	for i, b := range o.Case.Buses {
		sc.sbus[i] = -complex(b.Pd, b.Qd) / base
	}
	for gi, b := range o.gbus {
		sc.sbus[b] += complex(x[lay.PgOff+gi], x[lay.QgOff+gi])
	}
	g := sc.g
	for i := 0; i < nb; i++ {
		mis := sc.v[i]*cmplx.Conj(sc.ibus[i]) - sc.sbus[i]
		g[i] = real(mis)
		g[nb+i] = imag(mis)
	}
	g[2*nb] = x[lay.VaOff+o.refIdx] - o.refVa

	y := o.Y.Ybus
	asm := sc.jgAsm
	asm.Begin()
	for j := 0; j < y.NCols; j++ {
		vj, vnj := sc.v[j], sc.vn[j]
		for p := y.ColPtr[j]; p < y.ColPtr[j+1]; p++ {
			i := y.RowIdx[p]
			yv := y.Val[p]
			dva := complex(0, 1) * sc.v[i] * -cmplx.Conj(yv*vj)
			dvm := sc.v[i] * cmplx.Conj(yv*vnj)
			asm.Append(i, lay.VaOff+j, real(dva))
			asm.Append(nb+i, lay.VaOff+j, imag(dva))
			asm.Append(i, lay.VmOff+j, real(dvm))
			asm.Append(nb+i, lay.VmOff+j, imag(dvm))
		}
	}
	for i := 0; i < nb; i++ {
		ci := cmplx.Conj(sc.ibus[i])
		dva := complex(0, 1) * sc.v[i] * ci
		dvm := ci * sc.vn[i]
		asm.Append(i, lay.VaOff+i, real(dva))
		asm.Append(nb+i, lay.VaOff+i, imag(dva))
		asm.Append(i, lay.VmOff+i, real(dvm))
		asm.Append(nb+i, lay.VmOff+i, imag(dvm))
	}
	for gi, b := range o.gbus {
		asm.Append(b, lay.PgOff+gi, -1)    // dRe(mis)/dPg
		asm.Append(nb+b, lay.QgOff+gi, -1) // dIm(mis)/dQg
	}
	asm.Append(2*nb, lay.VaOff+o.refIdx, 1) // reference angle row
	return g, asm.Finish()
}

// branchEnd carries the per-branch, per-end scalars the inequality and
// Hessian paths share: the end's flow s, and the four dS/dV entries at
// the from and to buses.
type branchEnd struct {
	f, t                   int
	s                      complex128
	dVaF, dVaT, dVmF, dVmT complex128
}

// endDerivs evaluates one branch end: yf/yt are the end's admittance
// row entries, own is the end's own bus (from bus for the from end).
func (o *OPF) endDerivs(sc *evalScratch, l int, own bool) branchEnd {
	y := o.ratedY
	f, t := y.FIdx[l], y.TIdx[l]
	var yf, yt complex128
	if own {
		yf, yt = y.Yf.Vf[l], y.Yf.Vt[l]
	} else {
		yf, yt = y.Yt.Vf[l], y.Yt.Vt[l]
	}
	vf, vt := sc.v[f], sc.v[t]
	i := yf*vf + yt*vt // current into this end
	vo := vt           // the end's own voltage
	if own {
		vo = vf
	}
	ci := cmplx.Conj(i)
	j := complex(0, 1)
	e := branchEnd{f: f, t: t, s: vo * ci}
	if own {
		e.dVaF = j * (ci*vf - vf*cmplx.Conj(yf*vf))
		e.dVaT = j * (-vf * cmplx.Conj(yt*vt))
		e.dVmF = vf*cmplx.Conj(yf*sc.vn[f]) + ci*sc.vn[f]
		e.dVmT = vf * cmplx.Conj(yt*sc.vn[t])
	} else {
		e.dVaT = j * (ci*vt - vt*cmplx.Conj(yt*vt))
		e.dVaF = j * (-vt * cmplx.Conj(yf*vf))
		e.dVmT = vt*cmplx.Conj(yt*sc.vn[t]) + ci*sc.vn[t]
		e.dVmF = vt * cmplx.Conj(yf*sc.vn[f])
	}
	return e
}

// evalInequality streams [|Sf|²−rate²; |St|²−rate²] and its Jacobian
// dA/dV = 2(Re S·Re dS + Im S·Im dS), two entries per branch end.
func (o *OPF) evalInequality(sc *evalScratch, x la.Vector) (la.Vector, *sparse.CSC) {
	lay := o.Lay
	nlr := lay.NLRated
	o.prepPoint(sc, x)
	h := sc.h
	asm := sc.jhAsm
	asm.Begin()
	for l := 0; l < nlr; l++ {
		for end := 0; end < 2; end++ {
			e := o.endDerivs(sc, l, end == 0)
			p, q := real(e.s), imag(e.s)
			row := l
			if end == 1 {
				row = nlr + l
			}
			h[row] = p*p + q*q - o.rates2[l]
			asm.Append(row, lay.VaOff+e.f, 2*(p*real(e.dVaF)+q*imag(e.dVaF)))
			asm.Append(row, lay.VaOff+e.t, 2*(p*real(e.dVaT)+q*imag(e.dVaT)))
			asm.Append(row, lay.VmOff+e.f, 2*(p*real(e.dVmF)+q*imag(e.dVmF)))
			asm.Append(row, lay.VmOff+e.t, 2*(p*real(e.dVmT)+q*imag(e.dVmT)))
		}
	}
	return h, asm.Finish()
}

// evalHessian streams ∇²f + Σλ∇²g + Σµ∇²h. The power-balance block
// folds the P and Q duals into one complex pass: the assembled real
// contribution is Re(G(λp)) + Im(G(λq)) = Re(G(λp − i·λq)) since the
// d2Sbus blocks are linear in λ — half the work of the two-pass
// reference. Entries follow the Matpower d2Sbus_dV2 identities per
// stored Ybus entry (E/F/C as in the reference), with the diagonal
// correction terms in a separate pass; the branch block walks each
// rated branch once, emitting the ≤7 positions of the d2Sbr terms and
// the 4 positions of the outer-product term per end.
func (o *OPF) evalHessian(sc *evalScratch, x la.Vector, lam, mu la.Vector) *sparse.CSC {
	lay := o.Lay
	nb := lay.NB
	base := o.Case.BaseMVA
	o.prepPoint(sc, x)
	asm := sc.hAsm
	asm.Begin()

	// Cost block (diagonal in Pg).
	for g, gen := range o.gens {
		if d2 := gen.Cost.Deriv2() * base * base; d2 != 0 {
			asm.Append(lay.PgOff+g, lay.PgOff+g, d2)
		}
	}

	// Power-balance block. dlam[c] = Σ_r conj(Y[r,c])·V[r]·λ[r] is
	// (Yᴴ·diagV)·λ accumulated per stored entry.
	y := o.Y.Ybus
	for i := 0; i < nb; i++ {
		sc.lamC[i] = complex(lam[i], -lam[nb+i])
		sc.dlam[i] = 0
	}
	for j := 0; j < y.NCols; j++ {
		for p := y.ColPtr[j]; p < y.ColPtr[j+1]; p++ {
			r := y.RowIdx[p]
			sc.dlam[j] += cmplx.Conj(y.Val[p]) * sc.v[r] * sc.lamC[r]
		}
	}
	for j := 0; j < y.NCols; j++ {
		vj := sc.v[j]
		for p := y.ColPtr[j]; p < y.ColPtr[j+1]; p++ {
			i := y.RowIdx[p]
			var yt complex128
			if tp := sc.tpos[p]; tp >= 0 {
				yt = y.Val[tp] // Y[j,i]
			}
			lvi := sc.lamC[i] * sc.v[i]
			cij := lvi * cmplx.Conj(y.Val[p]*vj) // C = diag(λV)·conj(Ybus·diagV)
			// D[i,j] = conj(Y[j,i])·V[j]; E = diag(conj(V))·D·diag(λ).
			eij := cmplx.Conj(sc.v[i]) * cmplx.Conj(yt) * vj * sc.lamC[j]
			cji := sc.lamC[j] * sc.v[j] * cmplx.Conj(yt*sc.v[i])
			gaa := eij + cij
			gva := complex(0, 1) * complex(sc.ginv[i], 0) * (eij - cij)
			gvv := complex(sc.ginv[i]*sc.ginv[j], 0) * (cij + cji)
			asm.Append(lay.VaOff+i, lay.VaOff+j, real(gaa))
			asm.Append(lay.VmOff+i, lay.VaOff+j, real(gva))
			asm.Append(lay.VaOff+j, lay.VmOff+i, real(gva)) // Gav = Gvaᵀ
			asm.Append(lay.VmOff+i, lay.VmOff+j, real(gvv))
		}
	}
	for i := 0; i < nb; i++ {
		ed := -cmplx.Conj(sc.v[i]) * sc.dlam[i]              // −conj(V)·(Dλ) on diag of E
		fd := -sc.lamC[i] * sc.v[i] * cmplx.Conj(sc.ibus[i]) // −λV·conj(Ibus) on diag of F
		gaa := ed + fd
		gva := complex(0, 1) * complex(sc.ginv[i], 0) * (ed - fd)
		asm.Append(lay.VaOff+i, lay.VaOff+i, real(gaa))
		asm.Append(lay.VmOff+i, lay.VaOff+i, real(gva))
		asm.Append(lay.VaOff+i, lay.VmOff+i, real(gva))
	}

	// Branch-flow block.
	nlr := lay.NLRated
	if nlr > 0 && len(mu) == 2*nlr {
		for l := 0; l < nlr; l++ {
			for end := 0; end < 2; end++ {
				own := end == 0
				ml := mu[l]
				if !own {
					ml = mu[nlr+l]
				}
				e := o.endDerivs(sc, l, own)
				o.branchHessEnd(sc, asm, l, own, ml, e)
			}
		}
	}
	return asm.Finish()
}

// branchHessEnd emits one branch end's contribution to the four
// Hessian blocks: the d2Sbr term (lam2 = µ·conj(s)) expanded from its
// two A-matrix entries, plus the outer-product term 2µ·dSᵀ·conj(dS).
// All appended values are 2·Re(term), matching d2ASbr_dV2.
func (o *OPF) branchHessEnd(sc *evalScratch, asm *sparse.Assembler, l int, own bool, ml float64, e branchEnd) {
	lay := o.Lay
	y := o.ratedY
	var yf, yt complex128
	if own {
		yf, yt = y.Yf.Vf[l], y.Yf.Vt[l]
	} else {
		yf, yt = y.Yt.Vf[l], y.Yt.Vt[l]
	}
	f, t := e.f, e.t
	cb := t // column of the A-matrix entries: the end's own bus
	if own {
		cb = f
	}
	lam2 := cmplx.Conj(e.s) * complex(ml, 0)
	a1 := cmplx.Conj(yf) * lam2 // A[f, cb]
	a2 := cmplx.Conj(yt) * lam2 // A[t, cb]
	vcb := sc.v[cb]
	b1 := cmplx.Conj(sc.v[f]) * a1 * vcb // B[f, cb]
	b2 := cmplx.Conj(sc.v[t]) * a2 * vcb // B[t, cb]
	gf := complex(sc.ginv[f], 0)
	gt := complex(sc.ginv[t], 0)
	gcb := complex(sc.ginv[cb], 0)
	j := complex(0, 1)

	va, vm := lay.VaOff, lay.VmOff
	// emit appends 2·Re of the (aa, va, vv) values at (i,j) and the
	// transposed hav entry at (VaOff+j, VmOff+i).
	emit := func(i, jc int, aa, hva, vv complex128) {
		asm.Append(va+i, va+jc, 2*real(aa))
		asm.Append(vm+i, va+jc, 2*real(hva))
		asm.Append(va+jc, vm+i, 2*real(hva))
		asm.Append(vm+i, vm+jc, 2*real(vv))
	}
	// B and Bᵀ entries.
	emit(f, cb, b1, j*gf*b1, gf*gcb*b1)
	emit(t, cb, b2, j*gt*b2, gt*gcb*b2)
	emit(cb, f, b1, -j*gcb*b1, gcb*gf*b1)
	emit(cb, t, b2, -j*gcb*b2, gcb*gt*b2)
	// Diagonal corrections: −diag(dd) at the A rows, −diag(ee) at cb.
	emit(f, f, -b1, -j*gf*b1, 0)
	emit(t, t, -b2, -j*gt*b2, 0)
	emit(cb, cb, -(b1 + b2), j*gcb*(b1+b2), 0)

	// Outer-product term: w·dSa[r]·conj(dSb[c]) at (r,c) for the four
	// bus pairs, for each (block row deriv, block col deriv) pairing.
	w := complex(ml, 0)
	outer := func(a1, a2, b1, b2 complex128, rOff, cOff int) {
		cb1, cb2 := cmplx.Conj(b1), cmplx.Conj(b2)
		asm.Append(rOff+f, cOff+f, 2*real(w*a1*cb1))
		asm.Append(rOff+f, cOff+t, 2*real(w*a1*cb2))
		asm.Append(rOff+t, cOff+f, 2*real(w*a2*cb1))
		asm.Append(rOff+t, cOff+t, 2*real(w*a2*cb2))
	}
	outer(e.dVaF, e.dVaT, e.dVaF, e.dVaT, va, va) // haa
	outer(e.dVmF, e.dVmT, e.dVaF, e.dVaT, vm, va) // hva
	outer(e.dVaF, e.dVaT, e.dVmF, e.dVmT, va, vm) // hav
	outer(e.dVmF, e.dVmT, e.dVmF, e.dVmT, vm, vm) // hvv
}

// problemWith binds the solver-facing evaluation path to sc.
func (o *OPF) problemWith(sc *evalScratch) *mips.Problem {
	sc.ensure(o)
	return &mips.Problem{
		NX: o.Lay.NX,
		F: func(x la.Vector) (float64, la.Vector) {
			return o.evalCost(sc, x)
		},
		G: func(x la.Vector) (la.Vector, *sparse.CSC) {
			return o.evalEquality(sc, x)
		},
		H: func(x la.Vector) (la.Vector, *sparse.CSC) {
			if o.Lay.NLRated == 0 {
				return nil, nil
			}
			return o.evalInequality(sc, x)
		},
		Hess: func(x la.Vector, lam, mu la.Vector) *sparse.CSC {
			return o.evalHessian(sc, x, lam, mu)
		},
		XMin: o.xmin,
		XMax: o.xmax,
	}
}
