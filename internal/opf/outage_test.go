package opf

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/la"
)

// RebindOutage must reproduce a fresh Prepare of the outaged case bit
// for bit: identical layout, and identical solver trajectories (cost,
// iterations, every solution entry) from both cold and warm starts.
func TestRebindOutageMatchesPrepare(t *testing.T) {
	for _, c := range []*grid.Case{grid.Case9(), grid.Case14(), grid.Case30()} {
		base := Prepare(c)
		// One rated (layout-shrinking) and one unrated branch where the
		// case has them; skip radial branches whose outage splits the grid.
		for branch, br := range c.Branches {
			if !br.Status {
				continue
			}
			got, err := base.RebindOutage(branch)
			if err != nil {
				t.Fatalf("%s branch %d: %v", c.Name, branch, err)
			}
			cc := c.Clone()
			cc.Branches[branch].Status = false
			if err := cc.Normalize(); err != nil {
				t.Fatal(err)
			}
			want := Prepare(cc)
			if got.Lay != want.Lay {
				t.Fatalf("%s branch %d: layout %+v want %+v", c.Name, branch, got.Lay, want.Lay)
			}
			gr, gerr := got.Solve(nil, Options{MaxIter: 25})
			wr, werr := want.Solve(nil, Options{MaxIter: 25})
			if (gerr == nil) != (werr == nil) || gr.Converged != wr.Converged || gr.Iterations != wr.Iterations {
				t.Fatalf("%s branch %d: solve diverged from rebuild: (%v,%v,%d) vs (%v,%v,%d)",
					c.Name, branch, gerr, gr.Converged, gr.Iterations, werr, wr.Converged, wr.Iterations)
			}
			if gr.Cost != wr.Cost {
				t.Fatalf("%s branch %d: cost %v != %v (not bit-identical)", c.Name, branch, gr.Cost, wr.Cost)
			}
			for i := range gr.X {
				if gr.X[i] != wr.X[i] {
					t.Fatalf("%s branch %d: X[%d] differs", c.Name, branch, i)
				}
			}
			// One outage per case cold-solved to full equality is plenty;
			// layouts were checked for all. Keep the slow loop short.
			break
		}
	}
}

// Every connected outage of case9 (all branches rated) must keep layout
// bookkeeping consistent: NIq shrinks by 2, RatedPos addresses the
// dropped flow rows, and the projected start has the derived dimensions.
func TestRebindOutageLayoutAndProjection(t *testing.T) {
	c := grid.Case9()
	base := Prepare(c)
	nlr := base.Lay.NLRated
	for branch := range c.Branches {
		o, err := base.RebindOutage(branch)
		if err != nil {
			t.Fatal(err)
		}
		rl := base.RatedPos(branch)
		if rl < 0 {
			t.Fatalf("branch %d rated but RatedPos = %d", branch, rl)
		}
		if o.Lay.NIq != base.Lay.NIq-2 || o.Lay.NLRated != nlr-1 {
			t.Fatalf("branch %d: NIq %d NLRated %d", branch, o.Lay.NIq, o.Lay.NLRated)
		}
		st := &Start{
			X:   make(la.Vector, base.Lay.NX),
			Lam: make(la.Vector, base.Lay.NEq),
			Mu:  make(la.Vector, base.Lay.NIq),
			Z:   make(la.Vector, base.Lay.NIq),
		}
		for i := range st.Mu {
			st.Mu[i] = float64(i)
			st.Z[i] = float64(i) + 0.5
		}
		p := base.ProjectStart(st, rl)
		if len(p.Mu) != o.Lay.NIq || len(p.Z) != o.Lay.NIq {
			t.Fatalf("branch %d: projected µ/Z dims %d/%d want %d", branch, len(p.Mu), len(p.Z), o.Lay.NIq)
		}
		// The dropped entries are exactly rows rl and nlr+rl.
		wantAt := func(i int) float64 {
			j := i
			if j >= rl {
				j++
			}
			if j >= nlr+rl {
				j++
			}
			return float64(j)
		}
		for i := range p.Mu {
			if p.Mu[i] != wantAt(i) {
				t.Fatalf("branch %d: projected µ[%d] = %v want %v", branch, i, p.Mu[i], wantAt(i))
			}
		}
	}
}

// RebindGenOutage must reproduce a fresh Prepare of the generator-
// outaged case bit for bit: identical layout and bounds across all
// generators, and identical solver trajectories on one outage per case.
// Mirror of TestRebindOutageMatchesPrepare for the generator axis.
func TestRebindGenOutageMatchesPrepare(t *testing.T) {
	for _, c := range []*grid.Case{grid.Case9(), grid.Case14(), grid.Case30()} {
		base := Prepare(c)
		solved := false
		for gen, g := range c.Gens {
			if !g.Status {
				continue
			}
			got, err := base.RebindGenOutage(gen)
			if err != nil {
				t.Fatalf("%s gen %d: %v", c.Name, gen, err)
			}
			cc := c.Clone()
			cc.Gens[gen].Status = false
			if err := cc.Normalize(); err != nil {
				t.Fatal(err)
			}
			want := Prepare(cc)
			if got.Lay != want.Lay {
				t.Fatalf("%s gen %d: layout %+v want %+v", c.Name, gen, got.Lay, want.Lay)
			}
			gmin, gmax := got.Bounds()
			wmin, wmax := want.Bounds()
			for i := range gmin {
				if gmin[i] != wmin[i] || gmax[i] != wmax[i] {
					t.Fatalf("%s gen %d: bounds[%d] differ: [%v,%v] want [%v,%v]",
						c.Name, gen, i, gmin[i], gmax[i], wmin[i], wmax[i])
				}
			}
			if solved {
				continue // layouts checked for all; one slow solve per case
			}
			solved = true
			gr, gerr := got.Solve(nil, Options{MaxIter: 25})
			wr, werr := want.Solve(nil, Options{MaxIter: 25})
			if (gerr == nil) != (werr == nil) || gr.Converged != wr.Converged || gr.Iterations != wr.Iterations {
				t.Fatalf("%s gen %d: solve diverged from rebuild: (%v,%v,%d) vs (%v,%v,%d)",
					c.Name, gen, gerr, gr.Converged, gr.Iterations, werr, wr.Converged, wr.Iterations)
			}
			if gr.Cost != wr.Cost {
				t.Fatalf("%s gen %d: cost %v != %v (not bit-identical)", c.Name, gen, gr.Cost, wr.Cost)
			}
			for i := range gr.X {
				if gr.X[i] != wr.X[i] {
					t.Fatalf("%s gen %d: X[%d] differs", c.Name, gen, i)
				}
			}
		}
	}
}

// ProjectStartGen must drop exactly the outaged generator's variables
// and bound rows, and its redispatch must conserve total real dispatch
// when the remaining units have headroom.
func TestProjectStartGenLayoutAndRedispatch(t *testing.T) {
	c := grid.Case9()
	base := Prepare(c)
	lay := base.Lay
	for gen := range c.Gens {
		gi := base.GenPos(gen)
		if gi < 0 {
			t.Fatalf("gen %d in service but GenPos = %d", gen, gi)
		}
		o, err := base.RebindGenOutage(gen)
		if err != nil {
			t.Fatal(err)
		}
		st := &Start{
			X:   make(la.Vector, lay.NX),
			Lam: make(la.Vector, lay.NEq),
			Mu:  make(la.Vector, lay.NIq),
			Z:   make(la.Vector, lay.NIq),
		}
		for i := range st.Mu {
			st.Mu[i] = float64(i)
			st.Z[i] = float64(i) + 0.5
		}
		// A balanced mid-range dispatch: every unit at 40 % of Pmax.
		total := 0.0
		for g := 0; g < lay.NG; g++ {
			st.X[lay.PgOff+g] = 0.4 * base.xmax[lay.PgOff+g]
			total += st.X[lay.PgOff+g]
		}
		p := base.ProjectStartGen(st, gi)
		if len(p.X) != o.Lay.NX || len(p.Mu) != o.Lay.NIq || len(p.Z) != o.Lay.NIq {
			t.Fatalf("gen %d: projected dims X %d µ %d Z %d want %d/%d/%d",
				gen, len(p.X), len(p.Mu), len(p.Z), o.Lay.NX, o.Lay.NIq, o.Lay.NIq)
		}
		if len(p.Lam) != lay.NEq {
			t.Fatalf("gen %d: λ resized to %d", gen, len(p.Lam))
		}
		// Redispatch conserves total Pg (60 % headroom remains everywhere).
		got := 0.0
		for g := 0; g < o.Lay.NG; g++ {
			got += p.X[o.Lay.PgOff+g]
		}
		if diff := got - total; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("gen %d: redispatched total %v want %v", gen, got, total)
		}
		// Bounds respected after redispatch.
		for g := 0; g < o.Lay.NG; g++ {
			if p.X[o.Lay.PgOff+g] > o.xmax[o.Lay.PgOff+g] {
				t.Fatalf("gen %d: redispatch overshoots Pmax at unit %d", gen, g)
			}
		}
		// The µ rows dropped are exactly the four bound rows of the
		// outaged unit's Pg/Qg (case9 has no flow-row change here).
		rows := base.boundRows(lay.PgOff+gi, lay.QgOff+gi)
		if len(rows) != 4 {
			t.Fatalf("gen %d: %d bound rows want 4", gen, len(rows))
		}
		want := dropRows(st.Mu, rows)
		for i := range p.Mu {
			if p.Mu[i] != want[i] {
				t.Fatalf("gen %d: projected µ[%d] = %v want %v", gen, i, p.Mu[i], want[i])
			}
		}
	}
	// Invalid inputs pass through / are rejected.
	if _, err := base.RebindGenOutage(-1); err == nil {
		t.Error("negative generator accepted")
	}
	if _, err := base.RebindGenOutage(len(c.Gens)); err == nil {
		t.Error("out-of-range generator accepted")
	}
	cc := c.Clone()
	cc.Gens[1].Status = false
	if err := cc.Normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := Prepare(cc).RebindGenOutage(1); err == nil {
		t.Error("already-outaged generator accepted")
	}
	if gi := Prepare(cc).GenPos(1); gi != -1 {
		t.Errorf("out-of-service generator reported GenPos %d", gi)
	}
}

func TestRebindOutageRejectsBadBranch(t *testing.T) {
	c := grid.Case14()
	base := Prepare(c)
	if _, err := base.RebindOutage(-1); err == nil {
		t.Error("negative branch accepted")
	}
	if _, err := base.RebindOutage(len(c.Branches)); err == nil {
		t.Error("out-of-range branch accepted")
	}
	cc := c.Clone()
	cc.Branches[2].Status = false
	if err := cc.Normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := Prepare(cc).RebindOutage(2); err == nil {
		t.Error("already-outaged branch accepted")
	}
	// case14 is unrated: outages keep the inequality layout.
	if rl := base.RatedPos(3); rl != -1 {
		t.Errorf("unrated branch reported RatedPos %d", rl)
	}
	o, err := base.RebindOutage(3)
	if err != nil {
		t.Fatal(err)
	}
	if o.Lay != base.Lay {
		t.Error("unrated outage changed the layout")
	}
}
