package opf

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/la"
)

// RebindOutage must reproduce a fresh Prepare of the outaged case bit
// for bit: identical layout, and identical solver trajectories (cost,
// iterations, every solution entry) from both cold and warm starts.
func TestRebindOutageMatchesPrepare(t *testing.T) {
	for _, c := range []*grid.Case{grid.Case9(), grid.Case14(), grid.Case30()} {
		base := Prepare(c)
		// One rated (layout-shrinking) and one unrated branch where the
		// case has them; skip radial branches whose outage splits the grid.
		for branch, br := range c.Branches {
			if !br.Status {
				continue
			}
			got, err := base.RebindOutage(branch)
			if err != nil {
				t.Fatalf("%s branch %d: %v", c.Name, branch, err)
			}
			cc := c.Clone()
			cc.Branches[branch].Status = false
			if err := cc.Normalize(); err != nil {
				t.Fatal(err)
			}
			want := Prepare(cc)
			if got.Lay != want.Lay {
				t.Fatalf("%s branch %d: layout %+v want %+v", c.Name, branch, got.Lay, want.Lay)
			}
			gr, gerr := got.Solve(nil, Options{MaxIter: 25})
			wr, werr := want.Solve(nil, Options{MaxIter: 25})
			if (gerr == nil) != (werr == nil) || gr.Converged != wr.Converged || gr.Iterations != wr.Iterations {
				t.Fatalf("%s branch %d: solve diverged from rebuild: (%v,%v,%d) vs (%v,%v,%d)",
					c.Name, branch, gerr, gr.Converged, gr.Iterations, werr, wr.Converged, wr.Iterations)
			}
			if gr.Cost != wr.Cost {
				t.Fatalf("%s branch %d: cost %v != %v (not bit-identical)", c.Name, branch, gr.Cost, wr.Cost)
			}
			for i := range gr.X {
				if gr.X[i] != wr.X[i] {
					t.Fatalf("%s branch %d: X[%d] differs", c.Name, branch, i)
				}
			}
			// One outage per case cold-solved to full equality is plenty;
			// layouts were checked for all. Keep the slow loop short.
			break
		}
	}
}

// Every connected outage of case9 (all branches rated) must keep layout
// bookkeeping consistent: NIq shrinks by 2, RatedPos addresses the
// dropped flow rows, and the projected start has the derived dimensions.
func TestRebindOutageLayoutAndProjection(t *testing.T) {
	c := grid.Case9()
	base := Prepare(c)
	nlr := base.Lay.NLRated
	for branch := range c.Branches {
		o, err := base.RebindOutage(branch)
		if err != nil {
			t.Fatal(err)
		}
		rl := base.RatedPos(branch)
		if rl < 0 {
			t.Fatalf("branch %d rated but RatedPos = %d", branch, rl)
		}
		if o.Lay.NIq != base.Lay.NIq-2 || o.Lay.NLRated != nlr-1 {
			t.Fatalf("branch %d: NIq %d NLRated %d", branch, o.Lay.NIq, o.Lay.NLRated)
		}
		st := &Start{
			X:   make(la.Vector, base.Lay.NX),
			Lam: make(la.Vector, base.Lay.NEq),
			Mu:  make(la.Vector, base.Lay.NIq),
			Z:   make(la.Vector, base.Lay.NIq),
		}
		for i := range st.Mu {
			st.Mu[i] = float64(i)
			st.Z[i] = float64(i) + 0.5
		}
		p := base.ProjectStart(st, rl)
		if len(p.Mu) != o.Lay.NIq || len(p.Z) != o.Lay.NIq {
			t.Fatalf("branch %d: projected µ/Z dims %d/%d want %d", branch, len(p.Mu), len(p.Z), o.Lay.NIq)
		}
		// The dropped entries are exactly rows rl and nlr+rl.
		wantAt := func(i int) float64 {
			j := i
			if j >= rl {
				j++
			}
			if j >= nlr+rl {
				j++
			}
			return float64(j)
		}
		for i := range p.Mu {
			if p.Mu[i] != wantAt(i) {
				t.Fatalf("branch %d: projected µ[%d] = %v want %v", branch, i, p.Mu[i], wantAt(i))
			}
		}
	}
}

func TestRebindOutageRejectsBadBranch(t *testing.T) {
	c := grid.Case14()
	base := Prepare(c)
	if _, err := base.RebindOutage(-1); err == nil {
		t.Error("negative branch accepted")
	}
	if _, err := base.RebindOutage(len(c.Branches)); err == nil {
		t.Error("out-of-range branch accepted")
	}
	cc := c.Clone()
	cc.Branches[2].Status = false
	if err := cc.Normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := Prepare(cc).RebindOutage(2); err == nil {
		t.Error("already-outaged branch accepted")
	}
	// case14 is unrated: outages keep the inequality layout.
	if rl := base.RatedPos(3); rl != -1 {
		t.Errorf("unrated branch reported RatedPos %d", rl)
	}
	o, err := base.RebindOutage(3)
	if err != nil {
		t.Fatal(err)
	}
	if o.Lay != base.Lay {
		t.Error("unrated outage changed the layout")
	}
}
