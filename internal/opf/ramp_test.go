package opf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/la"
)

// rampSolved returns a converged base solution of c to anchor ramps at.
func rampSolved(t testing.TB, o *OPF) *Result {
	t.Helper()
	r, err := o.Solve(nil, Options{})
	if err != nil || !r.Converged {
		t.Fatalf("%s base solve failed: %v", o.Case.Name, err)
	}
	return r
}

func prevDispatch(o *OPF, r *Result) la.Vector {
	lay := o.Lay
	return r.X[lay.PgOff : lay.PgOff+lay.NG]
}

func TestRebindRampTightensBounds(t *testing.T) {
	o := Prepare(grid.Case9())
	r := rampSolved(t, o)
	prev := prevDispatch(o, r)
	lay := o.Lay
	up := make(la.Vector, lay.NG)
	down := make(la.Vector, lay.NG)
	for g := range up {
		up[g] = 0.05
		down[g] = 0.02
	}
	ro, err := o.RebindRamp(prev, up, down)
	if err != nil {
		t.Fatal(err)
	}
	bmin, bmax := o.Bounds()
	cmin, cmax := ro.Bounds()
	for g := 0; g < lay.NG; g++ {
		i := lay.PgOff + g
		wantHi := math.Min(bmax[i], prev[g]+up[g])
		wantLo := math.Max(bmin[i], prev[g]-down[g])
		if cmax[i] != wantHi || cmin[i] != wantLo {
			t.Fatalf("gen %d window [%v, %v], want [%v, %v]", g, cmin[i], cmax[i], wantLo, wantHi)
		}
	}
	// Pg bounds of case9 are finite already: tightening changes no
	// finiteness, so the layout and KKT ordering cache are shared.
	if ro.Lay.NIq != o.Lay.NIq {
		t.Fatalf("NIq changed %d -> %d with no newly-finite bound", o.Lay.NIq, ro.Lay.NIq)
	}
	if ro.kkt != o.kkt {
		t.Fatal("pattern-preserving RebindRamp must share the ordering cache")
	}
	// Non-Pg bounds are untouched.
	for i := 0; i < lay.PgOff; i++ {
		if cmin[i] != bmin[i] || cmax[i] != bmax[i] {
			t.Fatalf("bound %d changed: [%v,%v] vs [%v,%v]", i, cmin[i], cmax[i], bmin[i], bmax[i])
		}
	}
	rr, err := ro.Solve(nil, Options{})
	if err != nil || !rr.Converged {
		t.Fatalf("ramped instance did not solve: %v", err)
	}
	for g := 0; g < lay.NG; g++ {
		d := rr.X[lay.PgOff+g] - prev[g]
		if d > up[g]+1e-6 || d < -down[g]-1e-6 {
			t.Fatalf("gen %d moved %v, window [-%v, +%v]", g, d, down[g], up[g])
		}
	}
}

func TestRebindRampGrowsLayoutForInfiniteBound(t *testing.T) {
	c := grid.Case9()
	c.Gens[1].Pmax = math.Inf(1) // unbounded unit: its upper bound leaves NIq
	o := Prepare(c)
	r := rampSolved(t, o)
	prev := prevDispatch(o, r)
	up := make(la.Vector, o.Lay.NG)
	for g := range up {
		up[g] = 0.5
	}
	ro, err := o.RebindRamp(prev, up, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Lay.NIq != o.Lay.NIq+1 {
		t.Fatalf("NIq = %d, want %d (one newly-finite upper bound)", ro.Lay.NIq, o.Lay.NIq+1)
	}
	if ro.kkt == o.kkt {
		t.Fatal("pattern-changing RebindRamp must not share the ordering cache")
	}
	// A warm start in the base layout projects to exactly the grown NIq
	// and solves without the length panic.
	st := o.ProjectStartStep(&Start{X: r.X, Lam: r.Lam, Mu: r.Mu, Z: r.Z}, ro)
	if len(st.Mu) != ro.Lay.NIq || len(st.Z) != ro.Lay.NIq {
		t.Fatalf("projected µ/z lengths %d/%d, want %d", len(st.Mu), len(st.Z), ro.Lay.NIq)
	}
	rr, err := ro.Solve(st, Options{})
	if err != nil || !rr.Converged {
		t.Fatalf("projected warm solve failed: %v", err)
	}
}

func TestRebindRampValidation(t *testing.T) {
	o := Prepare(grid.Case9())
	r := rampSolved(t, o)
	prev := prevDispatch(o, r)
	ng := o.Lay.NG
	bad := func(name string, prev, up, down la.Vector) {
		t.Helper()
		if _, err := o.RebindRamp(prev, up, down); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
	bad("short anchor", prev[:ng-1], nil, nil)
	bad("short up", prev, la.Vector{0.1}, nil)
	bad("negative up", prev, la.Vector{0.1, -0.1, 0.1}, nil)
	bad("NaN down", prev, nil, la.Vector{0.1, math.NaN(), 0.1})
	bad("-Inf up", prev, la.Vector{0.1, math.Inf(-1), 0.1}, nil)
	nan := prev.Clone()
	nan[0] = math.NaN()
	bad("NaN anchor", nan, la.Vector{0.1, 0.1, 0.1}, nil)
	if _, err := o.RebindRamp(prev, nil, nil); err != nil {
		t.Fatalf("nil limits must be accepted: %v", err)
	}
}

func TestProjectStartStepSharedPattern(t *testing.T) {
	o := Prepare(grid.Case9())
	r := rampSolved(t, o)
	prev := prevDispatch(o, r)
	up := la.Vector{0.3, 0.3, 0.3}
	ro, err := o.RebindRamp(prev, up, up)
	if err != nil {
		t.Fatal(err)
	}
	st := &Start{X: r.X, Lam: r.Lam, Mu: r.Mu, Z: r.Z}
	ps := o.ProjectStartStep(st, ro)
	// Identical bound pattern: µ/Z pass through untouched.
	if &ps.Mu[0] != &st.Mu[0] || &ps.Z[0] != &st.Z[0] {
		t.Fatal("pattern-preserving projection must pass µ/Z through")
	}
	rr, err := ro.Solve(ps, Options{})
	if err != nil || !rr.Converged {
		t.Fatalf("chained warm solve failed: %v", err)
	}
	if rr.Iterations >= r.Iterations {
		t.Logf("note: chained solve took %d iterations vs cold %d", rr.Iterations, r.Iterations)
	}
}

func TestProjectStartStepShapeMismatch(t *testing.T) {
	o := Prepare(grid.Case9())
	o2 := Prepare(grid.Case14())
	r := rampSolved(t, o)
	st := &Start{X: r.X, Lam: r.Lam, Mu: r.Mu, Z: r.Z}
	if got := o.ProjectStartStep(st, o2); got != nil {
		t.Fatal("projection across grids must return nil (cold)")
	}
	if got := o.ProjectStartStep(nil, o); got != nil {
		t.Fatal("nil start must project to nil")
	}
	// Malformed µ/Z degrade to an X/λ-only start.
	got := o.ProjectStartStep(&Start{X: r.X, Lam: r.Lam, Mu: r.Mu[:3], Z: r.Z[:3]}, o)
	if got == nil || got.X == nil || got.Mu != nil || got.Z != nil {
		t.Fatalf("malformed µ/Z must drop to X/λ-only, got %+v", got)
	}
}

// FuzzRebindRamp drives random ramp windows — zero, finite and +Inf
// limits over randomized anchors — through RebindRamp and a bounded
// solve. The invariants: the derived NIq reconciles exactly with the
// count of newly-finite bounds, projection always produces µ/Z of the
// derived length (MIPS panics otherwise), and the solve either
// converges or fails gracefully (Refactor's pivot-decay fallback may
// reject degenerate windows, e.g. frozen dispatch, but must not panic)
// — and deterministically.
func FuzzRebindRamp(f *testing.F) {
	o := Prepare(grid.Case9())
	r, err := o.Solve(nil, Options{})
	if err != nil || !r.Converged {
		f.Fatalf("case9 base solve failed: %v", err)
	}
	prev := prevDispatch(o, r)
	f.Add(int64(1), uint8(0b00), false)
	f.Add(int64(2), uint8(0b01), true)  // zero up limits: frozen upward
	f.Add(int64(3), uint8(0b10), false) // +Inf up limits
	f.Add(int64(4), uint8(0b11), true)
	f.Fuzz(func(t *testing.T, seed int64, sel uint8, unboundPmax bool) {
		base := o
		anchor := prev
		if unboundPmax {
			c := grid.Case9()
			c.Gens[0].Pmax = math.Inf(1)
			base = Prepare(c)
			rb, err := base.Solve(nil, Options{})
			if err != nil || !rb.Converged {
				t.Skip("unbounded base did not converge")
			}
			anchor = prevDispatch(base, rb)
		}
		rng := rand.New(rand.NewSource(seed))
		lay := base.Lay
		limits := func(kind uint8) la.Vector {
			switch kind {
			case 0: // random finite, zero included
				v := make(la.Vector, lay.NG)
				for g := range v {
					v[g] = math.Floor(rng.Float64()*4) / 10 // 0, .1, .2, .3
				}
				return v
			case 1:
				return make(la.Vector, lay.NG) // all zero: frozen
			case 2:
				v := make(la.Vector, lay.NG)
				for g := range v {
					v[g] = math.Inf(1)
				}
				return v
			}
			return nil // direction unconstrained
		}
		up := limits(sel & 0b11)
		down := limits((sel >> 2) & 0b11)
		ro, err := base.RebindRamp(anchor, up, down)
		if err != nil {
			t.Fatalf("valid limits rejected: %v", err)
		}

		// Accounting: NIq grows by exactly the newly-finite bounds.
		bmin, bmax := base.Bounds()
		cmin, cmax := ro.Bounds()
		grown := 0
		for i := range bmin {
			if math.IsInf(bmax[i], 1) && !math.IsInf(cmax[i], 1) {
				grown++
			}
			if math.IsInf(bmin[i], -1) && !math.IsInf(cmin[i], -1) {
				grown++
			}
			if !math.IsInf(bmax[i], 1) && math.IsInf(cmax[i], 1) ||
				!math.IsInf(bmin[i], -1) && math.IsInf(cmin[i], -1) {
				t.Fatalf("bound %d lost finiteness", i)
			}
		}
		if ro.Lay.NIq != base.Lay.NIq+grown {
			t.Fatalf("NIq = %d, want %d + %d newly finite", ro.Lay.NIq, base.Lay.NIq, grown)
		}

		// The window is never empty.
		for g := 0; g < lay.NG; g++ {
			i := lay.PgOff + g
			if cmin[i] > cmax[i] {
				t.Fatalf("gen %d empty window [%v, %v]", g, cmin[i], cmax[i])
			}
		}

		// Projection always matches the derived length.
		rb := r
		if unboundPmax {
			rb, _ = base.Solve(nil, Options{})
		}
		st := base.ProjectStartStep(&Start{X: rb.X, Lam: rb.Lam, Mu: rb.Mu, Z: rb.Z}, ro)
		if len(st.Mu) != ro.Lay.NIq || len(st.Z) != ro.Lay.NIq {
			t.Fatalf("projected µ/z lengths %d/%d, want %d", len(st.Mu), len(st.Z), ro.Lay.NIq)
		}

		// Bounded solves must terminate gracefully (converged, iteration
		// cap, or a clean numeric error from the pivot-decay fallback) and
		// bit-identically across repeats.
		opt := Options{MaxIter: 8}
		r1, err1 := ro.Solve(st, opt)
		r2, err2 := ro.Solve(st, opt)
		if (err1 == nil) != (err2 == nil) || r1.Iterations != r2.Iterations ||
			r1.Converged != r2.Converged || r1.Cost != r2.Cost {
			t.Fatalf("ramped solve not deterministic: (%v,%v,%d,%v) vs (%v,%v,%d,%v)",
				r1.Converged, r1.Cost, r1.Iterations, err1,
				r2.Converged, r2.Cost, r2.Iterations, err2)
		}
	})
}
