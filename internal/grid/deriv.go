package grid

import (
	"math/cmplx"

	"repro/internal/sparse"
)

// This file ports the Matpower first- and second-order AC power-flow
// derivative formulas (dSbus_dV, dSbr_dV, dAbr_dV, d2Sbus_dV2, d2Sbr_dV2,
// d2ASbr_dV2) to the sparse kernel of this repository. Voltages are
// polar: derivatives are taken with respect to bus angles Va (radians)
// and magnitudes Vm (per unit).

// BranchMatReal is the real-valued analogue of BranchMat (two entries per
// row at the from/to bus columns); it carries derivatives of squared flow
// magnitudes.
type BranchMatReal struct {
	NB     int
	F, T   []int
	Vf, Vt []float64
}

// NL returns the number of rows (branches).
func (m *BranchMatReal) NL() int { return len(m.F) }

// DSbusDV returns the partial derivatives of the complex bus power
// injections S = V·conj(Ybus·V) with respect to voltage angle and
// magnitude: dS/dVa and dS/dVm, both nb×nb complex.
func DSbusDV(ybus *sparse.CSCComplex, v []complex128) (dVa, dVm *sparse.CSCComplex) {
	ibus := ybus.MulVec(v)
	vn := vnorm(v)
	// dS/dVa = j·diagV·conj(diagIbus − Ybus·diagV)
	m := ybus.Clone().DiagScaleRight(v)                  // Ybus·diagV
	n := sparse.DiagC(ibus).AddScaled(-1, m)             // diagIbus − Ybus·diagV
	dVa = n.Conj().DiagScaleLeft(v).Scale(complex(0, 1)) // j·diagV·conj(·)
	// dS/dVm = diagV·conj(Ybus·diagVnorm) + conj(diagIbus)·diagVnorm
	m2 := ybus.Clone().DiagScaleRight(vn).Conj().DiagScaleLeft(v)
	d := make([]complex128, len(v))
	for i := range d {
		d[i] = cmplx.Conj(ibus[i]) * vn[i]
	}
	dVm = m2.AddDiag(d)
	return dVa, dVm
}

// DSbrDV returns the partial derivatives of the branch power flows at the
// from and to ends with respect to Va and Vm, together with the flows
// themselves. All four derivative matrices are nl×nb BranchMats.
func DSbrDV(y *YMatrices, v []complex128) (dSfVa, dSfVm, dStVa, dStVm *BranchMat, sf, st []complex128) {
	nl := y.Yf.NL()
	nb := len(v)
	ifr := y.Yf.MulVec(v)
	ito := y.Yt.MulVec(v)
	vn := vnorm(v)
	sf = make([]complex128, nl)
	st = make([]complex128, nl)
	dSfVa = NewBranchMat(nl, nb)
	dSfVm = NewBranchMat(nl, nb)
	dStVa = NewBranchMat(nl, nb)
	dStVm = NewBranchMat(nl, nb)
	for l := 0; l < nl; l++ {
		f, t := y.FIdx[l], y.TIdx[l]
		vf, vt := v[f], v[t]
		yff, yft := y.Yf.Vf[l], y.Yf.Vt[l]
		ytf, ytt := y.Yt.Vf[l], y.Yt.Vt[l]
		sf[l] = vf * cmplx.Conj(ifr[l])
		st[l] = vt * cmplx.Conj(ito[l])
		j := complex(0, 1)
		// From end.
		dSfVa.F[l], dSfVa.T[l] = f, t
		dSfVa.Vf[l] = j * (cmplx.Conj(ifr[l])*vf - vf*cmplx.Conj(yff*vf))
		dSfVa.Vt[l] = j * (-vf * cmplx.Conj(yft*vt))
		dSfVm.F[l], dSfVm.T[l] = f, t
		dSfVm.Vf[l] = vf*cmplx.Conj(yff*vn[f]) + cmplx.Conj(ifr[l])*vn[f]
		dSfVm.Vt[l] = vf * cmplx.Conj(yft*vn[t])
		// To end.
		dStVa.F[l], dStVa.T[l] = f, t
		dStVa.Vt[l] = j * (cmplx.Conj(ito[l])*vt - vt*cmplx.Conj(ytt*vt))
		dStVa.Vf[l] = j * (-vt * cmplx.Conj(ytf*vf))
		dStVm.F[l], dStVm.T[l] = f, t
		dStVm.Vt[l] = vt*cmplx.Conj(ytt*vn[t]) + cmplx.Conj(ito[l])*vn[t]
		dStVm.Vf[l] = vt * cmplx.Conj(ytf*vn[f])
	}
	return
}

// DAbrDV converts branch-flow derivatives into derivatives of the squared
// apparent-power magnitudes A = |S|²: dA/dV = 2(Re S·Re dS + Im S·Im dS).
func DAbrDV(dSVa, dSVm *BranchMat, s []complex128) (dAVa, dAVm *BranchMatReal) {
	nl := dSVa.NL()
	dAVa = &BranchMatReal{NB: dSVa.NB, F: make([]int, nl), T: make([]int, nl), Vf: make([]float64, nl), Vt: make([]float64, nl)}
	dAVm = &BranchMatReal{NB: dSVm.NB, F: make([]int, nl), T: make([]int, nl), Vf: make([]float64, nl), Vt: make([]float64, nl)}
	for l := 0; l < nl; l++ {
		p, q := real(s[l]), imag(s[l])
		dAVa.F[l], dAVa.T[l] = dSVa.F[l], dSVa.T[l]
		dAVa.Vf[l] = 2 * (p*real(dSVa.Vf[l]) + q*imag(dSVa.Vf[l]))
		dAVa.Vt[l] = 2 * (p*real(dSVa.Vt[l]) + q*imag(dSVa.Vt[l]))
		dAVm.F[l], dAVm.T[l] = dSVm.F[l], dSVm.T[l]
		dAVm.Vf[l] = 2 * (p*real(dSVm.Vf[l]) + q*imag(dSVm.Vf[l]))
		dAVm.Vt[l] = 2 * (p*real(dSVm.Vt[l]) + q*imag(dSVm.Vt[l]))
	}
	return
}

// D2SbusDV2 returns the second derivatives of the λ-weighted bus power
// injections, λᵀ·S(Va,Vm): four nb×nb complex blocks (Gaa, Gav, Gva, Gvv)
// over [Va; Vm].
func D2SbusDV2(ybus *sparse.CSCComplex, v, lam []complex128) (gaa, gav, gva, gvv *sparse.CSCComplex) {
	n := len(v)
	ibus := ybus.MulVec(v)
	lamV := make([]complex128, n)
	for i := range lamV {
		lamV[i] = lam[i] * v[i]
	}
	b := ybus.Clone().DiagScaleRight(v)       // Ybus·diagV
	c := b.Clone().Conj().DiagScaleLeft(lamV) // A·conj(B)
	d := ybus.T().Conj().DiagScaleRight(v)    // Ybusᴴ·diagV
	dl := d.MulVec(lam)                       // D·λ
	e := d.Clone().DiagScaleRight(lam)        // D·diagλ
	e = e.AddScaled(-1, sparse.DiagC(dl))     // − diag(D·λ)
	e = e.DiagScaleLeft(conjVec(v))           // conj(diagV)·(...)
	fdiag := make([]complex128, n)
	for i := range fdiag {
		fdiag[i] = lamV[i] * cmplx.Conj(ibus[i])
	}
	f := c.AddScaled(-1, sparse.DiagC(fdiag)) // C − A·diag(conj(Ibus))
	ginv := make([]complex128, n)
	for i := range ginv {
		ginv[i] = complex(1/cmplx.Abs(v[i]), 0)
	}
	gaa = e.AddScaled(1, f)
	gva = e.AddScaled(-1, f).DiagScaleLeft(ginv).Scale(complex(0, 1))
	gav = gva.T()
	gvv = c.AddScaled(1, c.T()).DiagScaleLeft(ginv).DiagScaleRight(ginv)
	return
}

// d2SbrDV2 returns the second derivatives of λᵀ·Sbr for one branch end.
// ybr is the Yf or Yt BranchMat; connAtFrom selects whether the end's
// connection matrix places the branch at its from (true) or to bus.
func d2SbrDV2(ybr *BranchMat, connAtFrom bool, v, lam []complex128) (haa, hav, hva, hvv *sparse.CSCComplex) {
	nb := len(v)
	// A = Ybrᴴ·diagλ·Cbr, assembled line by line (2 entries per line).
	ab := sparse.NewBuilderC(nb, nb)
	for l := range ybr.F {
		cb := ybr.F[l]
		if !connAtFrom {
			cb = ybr.T[l]
		}
		ab.Append(ybr.F[l], cb, cmplx.Conj(ybr.Vf[l])*lam[l])
		ab.Append(ybr.T[l], cb, cmplx.Conj(ybr.Vt[l])*lam[l])
	}
	a := ab.ToCSC()
	b := a.Clone().DiagScaleLeft(conjVec(v)).DiagScaleRight(v) // conj(diagV)·A·diagV
	av := a.MulVec(v)
	atcv := a.MulVecT(conjVec(v))
	dd := make([]complex128, nb)
	ee := make([]complex128, nb)
	for i := 0; i < nb; i++ {
		dd[i] = av[i] * cmplx.Conj(v[i])
		ee[i] = atcv[i] * v[i]
	}
	bt := b.T()
	fm := b.AddScaled(1, bt)
	ginv := make([]complex128, nb)
	for i := range ginv {
		ginv[i] = complex(1/cmplx.Abs(v[i]), 0)
	}
	haa = fm.AddScaled(-1, sparse.DiagC(dd)).AddScaled(-1, sparse.DiagC(ee))
	hva = b.AddScaled(-1, bt).AddScaled(-1, sparse.DiagC(dd)).AddScaled(1, sparse.DiagC(ee)).
		DiagScaleLeft(ginv).Scale(complex(0, 1))
	hav = hva.T()
	hvv = fm.Clone().DiagScaleLeft(ginv).DiagScaleRight(ginv)
	return
}

// outerBranch accumulates Σ_l w_l · a(l,:)ᵀ ⊗ conj(b(l,:)) — the
// Jacobian-outer-product term of the squared-flow Hessian. Result is
// nb×nb complex.
func outerBranch(a, b *BranchMat, w []float64) *sparse.CSCComplex {
	bld := sparse.NewBuilderC(a.NB, a.NB)
	for l := range a.F {
		wl := complex(w[l], 0)
		af, at := a.Vf[l], a.Vt[l]
		bf, bt := cmplx.Conj(b.Vf[l]), cmplx.Conj(b.Vt[l])
		bld.Append(a.F[l], b.F[l], wl*af*bf)
		bld.Append(a.F[l], b.T[l], wl*af*bt)
		bld.Append(a.T[l], b.F[l], wl*at*bf)
		bld.Append(a.T[l], b.T[l], wl*at*bt)
	}
	return bld.ToCSC()
}

// D2ASbrDV2 returns the second derivatives of Σ_l µ_l·|Sbr_l|² over
// [Va; Vm] as four real nb×nb blocks. dSVa/dSVm and sbr come from DSbrDV
// for the same branch end; ybr/connAtFrom identify the end.
func D2ASbrDV2(dSVa, dSVm *BranchMat, sbr []complex128, ybr *BranchMat, connAtFrom bool, v []complex128, mu []float64) (haa, hav, hva, hvv *sparse.CSC) {
	nl := len(mu)
	lam2 := make([]complex128, nl)
	for l := 0; l < nl; l++ {
		lam2[l] = cmplx.Conj(sbr[l]) * complex(mu[l], 0)
	}
	saa, sav, sva, svv := d2SbrDV2(ybr, connAtFrom, v, lam2)
	haa = saa.AddScaled(1, outerBranch(dSVa, dSVa, mu)).RealPart().Scale(2)
	hva = sva.AddScaled(1, outerBranch(dSVm, dSVa, mu)).RealPart().Scale(2)
	hav = sav.AddScaled(1, outerBranch(dSVa, dSVm, mu)).RealPart().Scale(2)
	hvv = svv.AddScaled(1, outerBranch(dSVm, dSVm, mu)).RealPart().Scale(2)
	return
}
