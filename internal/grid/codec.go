package grid

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseMatpower reads a Matpower-style case description: the assignments
// mpc.baseMVA, mpc.bus, mpc.gen, mpc.branch and mpc.gencost in MATLAB
// matrix syntax. Comments (%), semicolons and newlines are handled as in
// Matpower case files; fields and functions outside this set are ignored,
// so real case files load unchanged.
func ParseMatpower(r io.Reader) (*Case, error) {
	c := &Case{Name: "matpower-case"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var (
		section string
		rows    [][]float64
		collect = map[string][][]float64{}
	)
	flush := func() {
		if section != "" {
			collect[section] = rows
		}
		section, rows = "", nil
	}
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "%"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "function") {
			parts := strings.Fields(line)
			if n := len(parts); n >= 2 {
				c.Name = parts[n-1]
			}
			continue
		}
		if i := strings.Index(line, "="); i >= 0 && strings.HasPrefix(line, "mpc.") {
			flush()
			name := strings.TrimSpace(line[4:i])
			rest := strings.TrimSpace(line[i+1:])
			switch name {
			case "baseMVA":
				v, err := strconv.ParseFloat(strings.TrimSuffix(rest, ";"), 64)
				if err != nil {
					return nil, fmt.Errorf("grid: bad baseMVA %q: %v", rest, err)
				}
				c.BaseMVA = v
				continue
			case "version":
				continue
			case "bus", "gen", "branch", "gencost":
				section = name
				rest = strings.TrimPrefix(rest, "[")
				line = rest
			default:
				continue // unknown field, e.g. bus_name
			}
		}
		if section == "" {
			continue
		}
		done := false
		if i := strings.Index(line, "]"); i >= 0 {
			line, done = line[:i], true
		}
		for _, rowTxt := range strings.Split(line, ";") {
			fields := strings.Fields(strings.ReplaceAll(rowTxt, ",", " "))
			if len(fields) == 0 {
				continue
			}
			row := make([]float64, len(fields))
			for k, f := range fields {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("grid: bad number %q in mpc.%s: %v", f, section, err)
				}
				row[k] = v
			}
			rows = append(rows, row)
		}
		if done {
			flush()
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := buildFromTables(c, collect); err != nil {
		return nil, err
	}
	return c, c.Normalize()
}

func buildFromTables(c *Case, t map[string][][]float64) error {
	busRows, ok := t["bus"]
	if !ok {
		return fmt.Errorf("grid: case has no mpc.bus table")
	}
	for _, r := range busRows {
		if len(r) < 13 {
			return fmt.Errorf("grid: bus row needs 13 columns, got %d", len(r))
		}
		c.Buses = append(c.Buses, Bus{
			ID: int(r[0]), Type: BusType(r[1]), Pd: r[2], Qd: r[3],
			Gs: r[4], Bs: r[5], Vm: r[7], Va: r[8], BaseKV: r[9],
			Vmax: r[11], Vmin: r[12],
		})
	}
	genRows := t["gen"]
	for _, r := range genRows {
		if len(r) < 10 {
			return fmt.Errorf("grid: gen row needs 10 columns, got %d", len(r))
		}
		c.Gens = append(c.Gens, Gen{
			Bus: int(r[0]), Pg: r[1], Qg: r[2], Qmax: r[3], Qmin: r[4],
			Vg: r[5], Status: r[7] != 0, Pmax: r[8], Pmin: r[9],
		})
	}
	for _, r := range t["branch"] {
		if len(r) < 11 {
			return fmt.Errorf("grid: branch row needs 11 columns, got %d", len(r))
		}
		c.Branches = append(c.Branches, Branch{
			From: int(r[0]), To: int(r[1]), R: r[2], X: r[3], B: r[4],
			RateA: r[5], Ratio: r[8], Shift: r[9], Status: r[10] != 0,
		})
	}
	for i, r := range t["gencost"] {
		if i >= len(c.Gens) {
			break
		}
		if len(r) < 5 || r[0] != 2 {
			return fmt.Errorf("grid: only polynomial (model 2) gencost supported, row %d", i)
		}
		n := int(r[3])
		coef := r[4:]
		if len(coef) < n {
			return fmt.Errorf("grid: gencost row %d promises %d coefficients, has %d", i, n, len(coef))
		}
		var pc PolyCost
		switch n {
		case 1:
			pc.C0 = coef[0]
		case 2:
			pc.C1, pc.C0 = coef[0], coef[1]
		case 3:
			pc.C2, pc.C1, pc.C0 = coef[0], coef[1], coef[2]
		default:
			return fmt.Errorf("grid: gencost degree %d not supported (max quadratic)", n-1)
		}
		c.Gens[i].Cost = pc
	}
	return nil
}

// WriteMatpower serializes the case in Matpower case-file syntax. The
// output round-trips through ParseMatpower.
func WriteMatpower(w io.Writer, c *Case) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "function mpc = %s\n", sanitizeName(c.Name))
	fmt.Fprintf(bw, "mpc.version = '2';\n")
	fmt.Fprintf(bw, "mpc.baseMVA = %g;\n", c.BaseMVA)
	fmt.Fprintf(bw, "%%%% bus_i type Pd Qd Gs Bs area Vm Va baseKV zone Vmax Vmin\n")
	fmt.Fprintf(bw, "mpc.bus = [\n")
	for _, b := range c.Buses {
		fmt.Fprintf(bw, "\t%d\t%d\t%g\t%g\t%g\t%g\t1\t%g\t%g\t%g\t1\t%g\t%g;\n",
			b.ID, b.Type, b.Pd, b.Qd, b.Gs, b.Bs, b.Vm, b.Va, b.BaseKV, b.Vmax, b.Vmin)
	}
	fmt.Fprintf(bw, "];\n")
	fmt.Fprintf(bw, "mpc.gen = [\n")
	for _, g := range c.Gens {
		st := 0
		if g.Status {
			st = 1
		}
		fmt.Fprintf(bw, "\t%d\t%g\t%g\t%g\t%g\t%g\t%g\t%d\t%g\t%g;\n",
			g.Bus, g.Pg, g.Qg, g.Qmax, g.Qmin, g.Vg, c.BaseMVA, st, g.Pmax, g.Pmin)
	}
	fmt.Fprintf(bw, "];\n")
	fmt.Fprintf(bw, "mpc.branch = [\n")
	for _, b := range c.Branches {
		st := 0
		if b.Status {
			st = 1
		}
		fmt.Fprintf(bw, "\t%d\t%d\t%g\t%g\t%g\t%g\t%g\t%g\t%g\t%g\t%d;\n",
			b.From, b.To, b.R, b.X, b.B, b.RateA, b.RateA, b.RateA, b.Ratio, b.Shift, st)
	}
	fmt.Fprintf(bw, "];\n")
	fmt.Fprintf(bw, "mpc.gencost = [\n")
	for _, g := range c.Gens {
		fmt.Fprintf(bw, "\t2\t0\t0\t3\t%g\t%g\t%g;\n", g.Cost.C2, g.Cost.C1, g.Cost.C0)
	}
	fmt.Fprintf(bw, "];\n")
	return bw.Flush()
}

func sanitizeName(s string) string {
	if s == "" {
		return "mpcase"
	}
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
