package grid

import (
	"fmt"
	"slices"

	"repro/internal/sparse"
)

// This file implements the outage topology deltas that the SC-OPF
// contingency screening derives scenarios from: instead of rebuilding
// the case and its admittance matrices per scenario, Case.WithoutBranch
// and Case.WithoutGen produce cheap views of the outaged case and
// YMatrices.DropBranch subtracts the outaged branch's stamp from the
// prepared matrices. All are exact: the delta'd matrices are
// bit-identical — pattern and values — to a fresh MakeYbus of the
// outaged case, which is what lets the screening engine pin its results
// to the naive per-scenario rebuild (see internal/scopf). Connected and
// ConnectedWithout classify outage topologies that split the network —
// islanding scenarios the screening engine rejects before wasting
// solver time on a structurally infeasible AC-OPF.

// WithoutBranch returns a view of the case with branch l (an index into
// c.Branches) out of service. The branch list is a fresh copy; buses,
// generators and the Normalize index are shared with c, so the view
// costs O(nl) and needs no re-Normalize. Treat the shared fields as
// read-only — Clone the view before mutating loads (Perturb does).
func (c *Case) WithoutBranch(l int) *Case {
	if l < 0 || l >= len(c.Branches) {
		panic(fmt.Sprintf("grid: WithoutBranch index %d outside %d branches", l, len(c.Branches)))
	}
	cp := *c
	cp.Branches = append([]Branch(nil), c.Branches...)
	cp.Branches[l].Status = false
	return &cp
}

// WithoutGen returns a view of the case with generator g (an index into
// c.Gens) out of service — the generator-outage analogue of
// WithoutBranch. The generator list is a fresh copy; buses, branches
// and the Normalize index are shared with c. Admittance matrices are
// untouched by a generator drop (generators enter only through MakeSbus
// and the OPF variable layout), so MakeYbus of the view is bit-identical
// to MakeYbus of c.
func (c *Case) WithoutGen(g int) *Case {
	if g < 0 || g >= len(c.Gens) {
		panic(fmt.Sprintf("grid: WithoutGen index %d outside %d generators", g, len(c.Gens)))
	}
	cp := *c
	cp.Gens = append([]Gen(nil), c.Gens...)
	cp.Gens[g].Status = false
	return &cp
}

// Connected reports whether every bus is reachable from bus 0 over the
// in-service branches — the from-scratch BFS reference the screening
// package's incremental connectivity checks are pinned against, and the
// islanding classifier for outage topology views (a disconnected
// WithoutBranch view is an islanding scenario, not a solvable AC-OPF).
func Connected(c *Case) bool {
	return ConnectedWithout(c, nil)
}

// ConnectedWithout reports whether the network stays connected with the
// given additional branches (indices into c.Branches) treated as out of
// service on top of the case's own Status flags. A nil/empty skip set
// checks the case as-is; duplicate or already-inactive skip entries are
// harmless. This is the multi-outage primitive behind N-1 bridge
// filtering and hierarchical N-2 islanding classification.
func ConnectedWithout(c *Case, skip []int) bool {
	nb := c.NB()
	if nb == 0 {
		return false
	}
	skipped := func(l int) bool {
		for _, s := range skip {
			if s == l {
				return true
			}
		}
		return false
	}
	adj := make([][]int, nb)
	for l, br := range c.Branches {
		if !br.Status || skipped(l) {
			continue
		}
		f := c.BusIndex(br.From)
		t := c.BusIndex(br.To)
		adj[f] = append(adj[f], t)
		adj[t] = append(adj[t], f)
	}
	seen := make([]bool, nb)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == nb
}

// WithoutRow returns a copy of m with row l removed.
func (m *BranchMat) WithoutRow(l int) *BranchMat {
	return &BranchMat{
		NB: m.NB,
		F:  dropAt(m.F, l), T: dropAt(m.T, l),
		Vf: dropAt(m.Vf, l), Vt: dropAt(m.Vt, l),
	}
}

// dropAt returns a copy of s without element l.
func dropAt[E any](s []E, l int) []E {
	return slices.Delete(slices.Clone(s), l, l+1)
}

// DropBranch returns the admittance matrices of the case with in-service
// branch l (an index into the Yf/Yt rows, i.e. ActiveBranches order)
// outaged. The result is bit-identical to MakeYbus on the outaged case:
// Yf/Yt lose row l (branch stamps are row-independent), and the only
// Ybus columns a branch touches — its from- and to-bus columns — are
// recompiled from the surviving stamps in MakeYbus's exact accumulation
// order, so even the floating-point summation of parallel branches and
// shunts matches a rebuild. Every other column is copied unchanged
// (builder compilation is column-local). c must be the case y was built
// from (it supplies the bus shunts and BaseMVA).
func (y *YMatrices) DropBranch(c *Case, l int) *YMatrices {
	nl := y.Yf.NL()
	if l < 0 || l >= nl {
		panic(fmt.Sprintf("grid: DropBranch row %d outside %d active branches", l, nl))
	}
	f, t := y.Yf.F[l], y.Yf.T[l]
	colF := y.recompileColumn(c, l, f)
	colT := y.recompileColumn(c, l, t)

	old := y.Ybus
	nb := old.NCols
	newPtr := make([]int, nb+1)
	rowIdx := make([]int, 0, len(old.RowIdx))
	vals := make([]complex128, 0, len(old.Val))
	for j := 0; j < nb; j++ {
		switch j {
		case f:
			rowIdx = append(rowIdx, colF.RowIdx...)
			vals = append(vals, colF.Val...)
		case t:
			rowIdx = append(rowIdx, colT.RowIdx...)
			vals = append(vals, colT.Val...)
		default:
			lo, hi := old.ColPtr[j], old.ColPtr[j+1]
			rowIdx = append(rowIdx, old.RowIdx[lo:hi]...)
			vals = append(vals, old.Val[lo:hi]...)
		}
		newPtr[j+1] = len(rowIdx)
	}
	return &YMatrices{
		Ybus: &sparse.CSCComplex{NRows: nb, NCols: nb, ColPtr: newPtr, RowIdx: rowIdx, Val: vals},
		Yf:   y.Yf.WithoutRow(l), Yt: y.Yt.WithoutRow(l),
		FIdx: dropAt(y.FIdx, l), TIdx: dropAt(y.TIdx, l),
	}
}

// recompileColumn rebuilds Ybus column col as MakeYbus would with active
// branch skip removed: the surviving branch stamps (recovered from the
// Yf/Yt rows) and the bus shunt are appended in MakeYbus's append order
// and compiled through the same builder path, so sorting and duplicate
// summation are bit-identical to a full rebuild of the outaged case.
func (y *YMatrices) recompileColumn(c *Case, skip, col int) *sparse.CSCComplex {
	b := sparse.NewBuilderC(c.NB(), 1)
	for k := 0; k < y.Yf.NL(); k++ {
		if k == skip {
			continue
		}
		fk, tk := y.Yf.F[k], y.Yf.T[k]
		// MakeYbus appends (f,f)=yff, (f,t)=yft, (t,f)=ytf, (t,t)=ytt per
		// branch; keep that order among the entries landing in this column.
		if fk == col {
			b.Append(fk, 0, y.Yf.Vf[k]) // yff
		}
		if tk == col {
			b.Append(fk, 0, y.Yf.Vt[k]) // yft
		}
		if fk == col {
			b.Append(tk, 0, y.Yt.Vf[k]) // ytf
		}
		if tk == col {
			b.Append(tk, 0, y.Yt.Vt[k]) // ytt
		}
	}
	if bus := c.Buses[col]; bus.Gs != 0 || bus.Bs != 0 {
		b.Append(col, 0, complex(bus.Gs, bus.Bs)/complex(c.BaseMVA, 0))
	}
	return b.ToCSC()
}
