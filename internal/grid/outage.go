package grid

import (
	"fmt"
	"slices"

	"repro/internal/sparse"
)

// This file implements the single-branch-outage topology delta that the
// SC-OPF contingency screening derives scenarios from: instead of
// rebuilding the case and its admittance matrices per N-1 scenario,
// Case.WithoutBranch produces a cheap view of the outaged case and
// YMatrices.DropBranch subtracts the outaged branch's stamp from the
// prepared matrices. Both are exact: the delta'd matrices are
// bit-identical — pattern and values — to a fresh MakeYbus of the
// outaged case, which is what lets the screening engine pin its results
// to the naive per-scenario rebuild (see internal/scopf).

// WithoutBranch returns a view of the case with branch l (an index into
// c.Branches) out of service. The branch list is a fresh copy; buses,
// generators and the Normalize index are shared with c, so the view
// costs O(nl) and needs no re-Normalize. Treat the shared fields as
// read-only — Clone the view before mutating loads (Perturb does).
func (c *Case) WithoutBranch(l int) *Case {
	if l < 0 || l >= len(c.Branches) {
		panic(fmt.Sprintf("grid: WithoutBranch index %d outside %d branches", l, len(c.Branches)))
	}
	cp := *c
	cp.Branches = append([]Branch(nil), c.Branches...)
	cp.Branches[l].Status = false
	return &cp
}

// WithoutRow returns a copy of m with row l removed.
func (m *BranchMat) WithoutRow(l int) *BranchMat {
	return &BranchMat{
		NB: m.NB,
		F:  dropAt(m.F, l), T: dropAt(m.T, l),
		Vf: dropAt(m.Vf, l), Vt: dropAt(m.Vt, l),
	}
}

// dropAt returns a copy of s without element l.
func dropAt[E any](s []E, l int) []E {
	return slices.Delete(slices.Clone(s), l, l+1)
}

// DropBranch returns the admittance matrices of the case with in-service
// branch l (an index into the Yf/Yt rows, i.e. ActiveBranches order)
// outaged. The result is bit-identical to MakeYbus on the outaged case:
// Yf/Yt lose row l (branch stamps are row-independent), and the only
// Ybus columns a branch touches — its from- and to-bus columns — are
// recompiled from the surviving stamps in MakeYbus's exact accumulation
// order, so even the floating-point summation of parallel branches and
// shunts matches a rebuild. Every other column is copied unchanged
// (builder compilation is column-local). c must be the case y was built
// from (it supplies the bus shunts and BaseMVA).
func (y *YMatrices) DropBranch(c *Case, l int) *YMatrices {
	nl := y.Yf.NL()
	if l < 0 || l >= nl {
		panic(fmt.Sprintf("grid: DropBranch row %d outside %d active branches", l, nl))
	}
	f, t := y.Yf.F[l], y.Yf.T[l]
	colF := y.recompileColumn(c, l, f)
	colT := y.recompileColumn(c, l, t)

	old := y.Ybus
	nb := old.NCols
	newPtr := make([]int, nb+1)
	rowIdx := make([]int, 0, len(old.RowIdx))
	vals := make([]complex128, 0, len(old.Val))
	for j := 0; j < nb; j++ {
		switch j {
		case f:
			rowIdx = append(rowIdx, colF.RowIdx...)
			vals = append(vals, colF.Val...)
		case t:
			rowIdx = append(rowIdx, colT.RowIdx...)
			vals = append(vals, colT.Val...)
		default:
			lo, hi := old.ColPtr[j], old.ColPtr[j+1]
			rowIdx = append(rowIdx, old.RowIdx[lo:hi]...)
			vals = append(vals, old.Val[lo:hi]...)
		}
		newPtr[j+1] = len(rowIdx)
	}
	return &YMatrices{
		Ybus: &sparse.CSCComplex{NRows: nb, NCols: nb, ColPtr: newPtr, RowIdx: rowIdx, Val: vals},
		Yf:   y.Yf.WithoutRow(l), Yt: y.Yt.WithoutRow(l),
		FIdx: dropAt(y.FIdx, l), TIdx: dropAt(y.TIdx, l),
	}
}

// recompileColumn rebuilds Ybus column col as MakeYbus would with active
// branch skip removed: the surviving branch stamps (recovered from the
// Yf/Yt rows) and the bus shunt are appended in MakeYbus's append order
// and compiled through the same builder path, so sorting and duplicate
// summation are bit-identical to a full rebuild of the outaged case.
func (y *YMatrices) recompileColumn(c *Case, skip, col int) *sparse.CSCComplex {
	b := sparse.NewBuilderC(c.NB(), 1)
	for k := 0; k < y.Yf.NL(); k++ {
		if k == skip {
			continue
		}
		fk, tk := y.Yf.F[k], y.Yf.T[k]
		// MakeYbus appends (f,f)=yff, (f,t)=yft, (t,f)=ytf, (t,t)=ytt per
		// branch; keep that order among the entries landing in this column.
		if fk == col {
			b.Append(fk, 0, y.Yf.Vf[k]) // yff
		}
		if tk == col {
			b.Append(fk, 0, y.Yf.Vt[k]) // yft
		}
		if fk == col {
			b.Append(tk, 0, y.Yt.Vf[k]) // ytf
		}
		if tk == col {
			b.Append(tk, 0, y.Yt.Vt[k]) // ytt
		}
	}
	if bus := c.Buses[col]; bus.Gs != 0 || bus.Bs != 0 {
		b.Append(col, 0, complex(bus.Gs, bus.Bs)/complex(c.BaseMVA, 0))
	}
	return b.ToCSC()
}
