package grid

import "math"

// Embedded reference systems — data provenance, units and conventions.
//
// All embedded cases use the Matpower column conventions: powers in
// MW/MVAr on the case's MVA base, impedances and line charging in per
// unit on that base, voltages in per unit, angles in degrees, and
// transformer taps as the off-nominal Ratio on the from side (0 means a
// plain line). Each case stores a solved operating point (bus Vm/Va and
// generator dispatch), so the Newton power flow started from the case
// data reconverges in a handful of iterations.
//
// Provenance by case:
//
//   - Case9, Case14, Case30: transcribed from the standard Matpower case
//     files (WSCC 9-bus; IEEE 14-bus; IEEE 30-bus with the OPF cost set).
//   - Case5: the PJM 5-bus system (linear costs).
//   - Case57, Case118: transcribed from the Matpower case57/case118
//     files (IEEE 57- and 118-bus systems), stored as compact
//     Matpower-style data tables in cases57.go and cases118.go.
//   - Case300: the 300-bus evaluation system of the paper's Table II,
//     embedded in cases300.go as a frozen, deterministic 300-bus grid
//     with the IEEE 300-bus system's size profile (300 buses, 69
//     generators, 411 branches). The original case300 file is not
//     redistributed here; the data was produced once by the certified
//     synthesis procedure of internal/casegen and is now static, so it
//     cannot drift with the generator.
//
// Rated-branch convention: the paper's inequality set includes branch
// MVA flow limits, but the IEEE 57/118/300-bus case files carry no
// finite ratings. Every embedded system therefore guarantees a fully
// rated branch set: cases whose source file has ratings (case5, case9,
// case30) keep them verbatim, and the others derive ratings with
// RateBranches at ratedHeadroom× the apparent-power flow of the stored
// operating point, floored at ratedFloorMVA — the same convention
// internal/casegen certifies synthetic systems with. case14 keeps its
// unrated source data (the no-flow-constraint regression case).

// Case9 returns the WSCC 3-machine 9-bus system (file ratings on all
// branches; provenance and conventions in the comment above).
func Case9() *Case {
	c := &Case{
		Name:    "case9",
		BaseMVA: 100,
		Buses: []Bus{
			{ID: 1, Type: Ref, Vm: 1, BaseKV: 345, Vmax: 1.1, Vmin: 0.9},
			{ID: 2, Type: PV, Vm: 1, BaseKV: 345, Vmax: 1.1, Vmin: 0.9},
			{ID: 3, Type: PV, Vm: 1, BaseKV: 345, Vmax: 1.1, Vmin: 0.9},
			{ID: 4, Type: PQ, Vm: 1, BaseKV: 345, Vmax: 1.1, Vmin: 0.9},
			{ID: 5, Type: PQ, Pd: 90, Qd: 30, Vm: 1, BaseKV: 345, Vmax: 1.1, Vmin: 0.9},
			{ID: 6, Type: PQ, Vm: 1, BaseKV: 345, Vmax: 1.1, Vmin: 0.9},
			{ID: 7, Type: PQ, Pd: 100, Qd: 35, Vm: 1, BaseKV: 345, Vmax: 1.1, Vmin: 0.9},
			{ID: 8, Type: PQ, Vm: 1, BaseKV: 345, Vmax: 1.1, Vmin: 0.9},
			{ID: 9, Type: PQ, Pd: 125, Qd: 50, Vm: 1, BaseKV: 345, Vmax: 1.1, Vmin: 0.9},
		},
		Gens: []Gen{
			{Bus: 1, Pg: 72.3, Qg: 27.03, Qmax: 300, Qmin: -300, Vg: 1.04, Pmax: 250, Pmin: 10, Status: true, Cost: PolyCost{C2: 0.11, C1: 5, C0: 150}},
			{Bus: 2, Pg: 163, Qg: 6.54, Qmax: 300, Qmin: -300, Vg: 1.025, Pmax: 300, Pmin: 10, Status: true, Cost: PolyCost{C2: 0.085, C1: 1.2, C0: 600}},
			{Bus: 3, Pg: 85, Qg: -10.95, Qmax: 300, Qmin: -300, Vg: 1.025, Pmax: 270, Pmin: 10, Status: true, Cost: PolyCost{C2: 0.1225, C1: 1, C0: 335}},
		},
		Branches: []Branch{
			{From: 1, To: 4, X: 0.0576, RateA: 250, Status: true},
			{From: 4, To: 5, R: 0.017, X: 0.092, B: 0.158, RateA: 250, Status: true},
			{From: 5, To: 6, R: 0.039, X: 0.17, B: 0.358, RateA: 150, Status: true},
			{From: 3, To: 6, X: 0.0586, RateA: 300, Status: true},
			{From: 6, To: 7, R: 0.0119, X: 0.1008, B: 0.209, RateA: 150, Status: true},
			{From: 7, To: 8, R: 0.0085, X: 0.072, B: 0.149, RateA: 250, Status: true},
			{From: 8, To: 2, X: 0.0625, RateA: 250, Status: true},
			{From: 8, To: 9, R: 0.032, X: 0.161, B: 0.306, RateA: 250, Status: true},
			{From: 9, To: 4, R: 0.01, X: 0.085, B: 0.176, RateA: 250, Status: true},
		},
	}
	mustNormalize(c)
	return c
}

// Case5 returns the PJM 5-bus system (linear generation costs, file
// ratings on all branches).
func Case5() *Case {
	c := &Case{
		Name:    "case5",
		BaseMVA: 100,
		Buses: []Bus{
			{ID: 1, Type: PV, Vm: 1, BaseKV: 230, Vmax: 1.1, Vmin: 0.9},
			{ID: 2, Type: PQ, Pd: 300, Qd: 98.61, Vm: 1, BaseKV: 230, Vmax: 1.1, Vmin: 0.9},
			{ID: 3, Type: PV, Pd: 300, Qd: 98.61, Vm: 1, BaseKV: 230, Vmax: 1.1, Vmin: 0.9},
			{ID: 4, Type: Ref, Pd: 400, Qd: 131.47, Vm: 1, BaseKV: 230, Vmax: 1.1, Vmin: 0.9},
			{ID: 5, Type: PV, Vm: 1, BaseKV: 230, Vmax: 1.1, Vmin: 0.9},
		},
		Gens: []Gen{
			{Bus: 1, Pg: 40, Qmax: 30, Qmin: -30, Vg: 1, Pmax: 40, Pmin: 0, Status: true, Cost: PolyCost{C1: 14}},
			{Bus: 1, Pg: 170, Qmax: 127.5, Qmin: -127.5, Vg: 1, Pmax: 170, Pmin: 0, Status: true, Cost: PolyCost{C1: 15}},
			{Bus: 3, Pg: 323.49, Qmax: 390, Qmin: -390, Vg: 1, Pmax: 520, Pmin: 0, Status: true, Cost: PolyCost{C1: 30}},
			{Bus: 4, Pg: 0, Qmax: 150, Qmin: -150, Vg: 1, Pmax: 200, Pmin: 0, Status: true, Cost: PolyCost{C1: 40}},
			{Bus: 5, Pg: 466.51, Qmax: 450, Qmin: -450, Vg: 1, Pmax: 600, Pmin: 0, Status: true, Cost: PolyCost{C1: 10}},
		},
		Branches: []Branch{
			{From: 1, To: 2, R: 0.00281, X: 0.0281, B: 0.00712, RateA: 400, Status: true},
			{From: 1, To: 4, R: 0.00304, X: 0.0304, B: 0.00658, RateA: 426, Status: true},
			{From: 1, To: 5, R: 0.00064, X: 0.0064, B: 0.03126, RateA: 426, Status: true},
			{From: 2, To: 3, R: 0.00108, X: 0.0108, B: 0.01852, RateA: 426, Status: true},
			{From: 3, To: 4, R: 0.00297, X: 0.0297, B: 0.00674, RateA: 426, Status: true},
			{From: 4, To: 5, R: 0.00297, X: 0.0297, B: 0.00674, RateA: 240, Status: true},
		},
	}
	mustNormalize(c)
	return c
}

// Case14 returns the IEEE 14-bus system — the file carries no branch
// ratings and none are derived, keeping it the no-flow-constraint
// regression case (Layout.NLRated = 0).
func Case14() *Case {
	c := &Case{
		Name:    "case14",
		BaseMVA: 100,
		Buses: []Bus{
			{ID: 1, Type: Ref, Vm: 1.06, BaseKV: 0, Vmax: 1.06, Vmin: 0.94},
			{ID: 2, Type: PV, Pd: 21.7, Qd: 12.7, Vm: 1.045, Va: -4.98, Vmax: 1.06, Vmin: 0.94},
			{ID: 3, Type: PV, Pd: 94.2, Qd: 19, Vm: 1.01, Va: -12.72, Vmax: 1.06, Vmin: 0.94},
			{ID: 4, Type: PQ, Pd: 47.8, Qd: -3.9, Vm: 1.019, Va: -10.33, Vmax: 1.06, Vmin: 0.94},
			{ID: 5, Type: PQ, Pd: 7.6, Qd: 1.6, Vm: 1.02, Va: -8.78, Vmax: 1.06, Vmin: 0.94},
			{ID: 6, Type: PV, Pd: 11.2, Qd: 7.5, Vm: 1.07, Va: -14.22, Vmax: 1.06, Vmin: 0.94},
			{ID: 7, Type: PQ, Vm: 1.062, Va: -13.37, Vmax: 1.06, Vmin: 0.94},
			{ID: 8, Type: PV, Vm: 1.09, Va: -13.36, Vmax: 1.06, Vmin: 0.94},
			{ID: 9, Type: PQ, Pd: 29.5, Qd: 16.6, Bs: 19, Vm: 1.056, Va: -14.94, Vmax: 1.06, Vmin: 0.94},
			{ID: 10, Type: PQ, Pd: 9, Qd: 5.8, Vm: 1.051, Va: -15.1, Vmax: 1.06, Vmin: 0.94},
			{ID: 11, Type: PQ, Pd: 3.5, Qd: 1.8, Vm: 1.057, Va: -14.79, Vmax: 1.06, Vmin: 0.94},
			{ID: 12, Type: PQ, Pd: 6.1, Qd: 1.6, Vm: 1.055, Va: -15.07, Vmax: 1.06, Vmin: 0.94},
			{ID: 13, Type: PQ, Pd: 13.5, Qd: 5.8, Vm: 1.05, Va: -15.16, Vmax: 1.06, Vmin: 0.94},
			{ID: 14, Type: PQ, Pd: 14.9, Qd: 5, Vm: 1.036, Va: -16.04, Vmax: 1.06, Vmin: 0.94},
		},
		Gens: []Gen{
			{Bus: 1, Pg: 232.4, Qg: -16.9, Qmax: 10, Qmin: 0, Vg: 1.06, Pmax: 332.4, Pmin: 0, Status: true, Cost: PolyCost{C2: 0.0430293, C1: 20}},
			{Bus: 2, Pg: 40, Qg: 42.4, Qmax: 50, Qmin: -40, Vg: 1.045, Pmax: 140, Pmin: 0, Status: true, Cost: PolyCost{C2: 0.25, C1: 20}},
			{Bus: 3, Pg: 0, Qg: 23.4, Qmax: 40, Qmin: 0, Vg: 1.01, Pmax: 100, Pmin: 0, Status: true, Cost: PolyCost{C2: 0.01, C1: 40}},
			{Bus: 6, Pg: 0, Qg: 12.2, Qmax: 24, Qmin: -6, Vg: 1.07, Pmax: 100, Pmin: 0, Status: true, Cost: PolyCost{C2: 0.01, C1: 40}},
			{Bus: 8, Pg: 0, Qg: 17.4, Qmax: 24, Qmin: -6, Vg: 1.09, Pmax: 100, Pmin: 0, Status: true, Cost: PolyCost{C2: 0.01, C1: 40}},
		},
		Branches: []Branch{
			{From: 1, To: 2, R: 0.01938, X: 0.05917, B: 0.0528, Status: true},
			{From: 1, To: 5, R: 0.05403, X: 0.22304, B: 0.0492, Status: true},
			{From: 2, To: 3, R: 0.04699, X: 0.19797, B: 0.0438, Status: true},
			{From: 2, To: 4, R: 0.05811, X: 0.17632, B: 0.034, Status: true},
			{From: 2, To: 5, R: 0.05695, X: 0.17388, B: 0.0346, Status: true},
			{From: 3, To: 4, R: 0.06701, X: 0.17103, B: 0.0128, Status: true},
			{From: 4, To: 5, R: 0.01335, X: 0.04211, B: 0.0064, Status: true},
			{From: 4, To: 7, X: 0.20912, Ratio: 0.978, Status: true},
			{From: 4, To: 9, X: 0.55618, Ratio: 0.969, Status: true},
			{From: 5, To: 6, X: 0.25202, Ratio: 0.932, Status: true},
			{From: 6, To: 11, R: 0.09498, X: 0.1989, Status: true},
			{From: 6, To: 12, R: 0.12291, X: 0.25581, Status: true},
			{From: 6, To: 13, R: 0.06615, X: 0.13027, Status: true},
			{From: 7, To: 8, X: 0.17615, Status: true},
			{From: 7, To: 9, X: 0.11001, Status: true},
			{From: 9, To: 10, R: 0.03181, X: 0.0845, Status: true},
			{From: 9, To: 14, R: 0.12711, X: 0.27038, Status: true},
			{From: 10, To: 11, R: 0.08205, X: 0.19207, Status: true},
			{From: 12, To: 13, R: 0.22092, X: 0.19988, Status: true},
			{From: 13, To: 14, R: 0.17093, X: 0.34802, Status: true},
		},
	}
	mustNormalize(c)
	return c
}

// Case30 returns the IEEE 30-bus system with the standard OPF cost data
// and the file's flow limits on every branch — the smallest embedded
// system where an N-1 outage changes the inequality layout, which the
// contingency-screening engine's warm-start projection is built for
// (see internal/scopf).
func Case30() *Case {
	c := &Case{
		Name:    "case30",
		BaseMVA: 100,
		Buses: []Bus{
			{ID: 1, Type: Ref, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 2, Type: PV, Pd: 21.7, Qd: 12.7, Vm: 1, BaseKV: 135, Vmax: 1.1, Vmin: 0.95},
			{ID: 3, Type: PQ, Pd: 2.4, Qd: 1.2, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 4, Type: PQ, Pd: 7.6, Qd: 1.6, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 5, Type: PQ, Bs: 19, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 6, Type: PQ, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 7, Type: PQ, Pd: 22.8, Qd: 10.9, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 8, Type: PQ, Pd: 30, Qd: 30, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 9, Type: PQ, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 10, Type: PQ, Pd: 5.8, Qd: 2, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 11, Type: PQ, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 12, Type: PQ, Pd: 11.2, Qd: 7.5, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 13, Type: PV, Vm: 1, BaseKV: 135, Vmax: 1.1, Vmin: 0.95},
			{ID: 14, Type: PQ, Pd: 6.2, Qd: 1.6, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 15, Type: PQ, Pd: 8.2, Qd: 2.5, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 16, Type: PQ, Pd: 3.5, Qd: 1.8, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 17, Type: PQ, Pd: 9, Qd: 5.8, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 18, Type: PQ, Pd: 3.2, Qd: 0.9, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 19, Type: PQ, Pd: 9.5, Qd: 3.4, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 20, Type: PQ, Pd: 2.2, Qd: 0.7, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 21, Type: PQ, Pd: 17.5, Qd: 11.2, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 22, Type: PV, Vm: 1, BaseKV: 135, Vmax: 1.1, Vmin: 0.95},
			{ID: 23, Type: PV, Pd: 3.2, Qd: 1.6, Vm: 1, BaseKV: 135, Vmax: 1.1, Vmin: 0.95},
			{ID: 24, Type: PQ, Pd: 8.7, Qd: 6.7, Bs: 4, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 25, Type: PQ, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 26, Type: PQ, Pd: 3.5, Qd: 2.3, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 27, Type: PV, Vm: 1, BaseKV: 135, Vmax: 1.1, Vmin: 0.95},
			{ID: 28, Type: PQ, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 29, Type: PQ, Pd: 2.4, Qd: 0.9, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
			{ID: 30, Type: PQ, Pd: 10.6, Qd: 1.9, Vm: 1, BaseKV: 135, Vmax: 1.05, Vmin: 0.95},
		},
		Gens: []Gen{
			{Bus: 1, Pg: 23.54, Qmax: 150, Qmin: -20, Vg: 1, Pmax: 80, Pmin: 0, Status: true, Cost: PolyCost{C2: 0.02, C1: 2}},
			{Bus: 2, Pg: 60.97, Qmax: 60, Qmin: -20, Vg: 1, Pmax: 80, Pmin: 0, Status: true, Cost: PolyCost{C2: 0.0175, C1: 1.75}},
			{Bus: 22, Pg: 21.59, Qmax: 62.5, Qmin: -15, Vg: 1, Pmax: 50, Pmin: 0, Status: true, Cost: PolyCost{C2: 0.0625, C1: 1}},
			{Bus: 27, Pg: 26.91, Qmax: 48.7, Qmin: -15, Vg: 1, Pmax: 55, Pmin: 0, Status: true, Cost: PolyCost{C2: 0.00834, C1: 3.25}},
			{Bus: 23, Pg: 19.2, Qmax: 40, Qmin: -10, Vg: 1, Pmax: 30, Pmin: 0, Status: true, Cost: PolyCost{C2: 0.025, C1: 3}},
			{Bus: 13, Pg: 37, Qmax: 44.7, Qmin: -15, Vg: 1, Pmax: 40, Pmin: 0, Status: true, Cost: PolyCost{C2: 0.025, C1: 3}},
		},
		Branches: []Branch{
			{From: 1, To: 2, R: 0.02, X: 0.06, B: 0.03, RateA: 130, Status: true},
			{From: 1, To: 3, R: 0.05, X: 0.19, B: 0.02, RateA: 130, Status: true},
			{From: 2, To: 4, R: 0.06, X: 0.17, B: 0.02, RateA: 65, Status: true},
			{From: 3, To: 4, R: 0.01, X: 0.04, RateA: 130, Status: true},
			{From: 2, To: 5, R: 0.05, X: 0.2, B: 0.02, RateA: 130, Status: true},
			{From: 2, To: 6, R: 0.06, X: 0.18, B: 0.02, RateA: 65, Status: true},
			{From: 4, To: 6, R: 0.01, X: 0.04, RateA: 90, Status: true},
			{From: 5, To: 7, R: 0.05, X: 0.12, B: 0.01, RateA: 70, Status: true},
			{From: 6, To: 7, R: 0.03, X: 0.08, B: 0.01, RateA: 130, Status: true},
			{From: 6, To: 8, R: 0.01, X: 0.04, RateA: 32, Status: true},
			{From: 6, To: 9, X: 0.21, RateA: 65, Status: true},
			{From: 6, To: 10, X: 0.56, RateA: 32, Status: true},
			{From: 9, To: 11, X: 0.21, RateA: 65, Status: true},
			{From: 9, To: 10, X: 0.11, RateA: 65, Status: true},
			{From: 4, To: 12, X: 0.26, RateA: 65, Status: true},
			{From: 12, To: 13, X: 0.14, RateA: 65, Status: true},
			{From: 12, To: 14, R: 0.12, X: 0.26, RateA: 32, Status: true},
			{From: 12, To: 15, R: 0.07, X: 0.13, RateA: 32, Status: true},
			{From: 12, To: 16, R: 0.09, X: 0.2, RateA: 32, Status: true},
			{From: 14, To: 15, R: 0.22, X: 0.2, RateA: 16, Status: true},
			{From: 16, To: 17, R: 0.08, X: 0.19, RateA: 16, Status: true},
			{From: 15, To: 18, R: 0.11, X: 0.22, RateA: 16, Status: true},
			{From: 18, To: 19, R: 0.06, X: 0.13, RateA: 16, Status: true},
			{From: 19, To: 20, R: 0.03, X: 0.07, RateA: 32, Status: true},
			{From: 10, To: 20, R: 0.09, X: 0.21, RateA: 32, Status: true},
			{From: 10, To: 17, R: 0.03, X: 0.08, RateA: 32, Status: true},
			{From: 10, To: 21, R: 0.03, X: 0.07, RateA: 32, Status: true},
			{From: 10, To: 22, R: 0.07, X: 0.15, RateA: 32, Status: true},
			{From: 21, To: 22, R: 0.01, X: 0.02, RateA: 32, Status: true},
			{From: 15, To: 23, R: 0.1, X: 0.2, RateA: 16, Status: true},
			{From: 22, To: 24, R: 0.12, X: 0.18, RateA: 16, Status: true},
			{From: 23, To: 24, R: 0.13, X: 0.27, RateA: 16, Status: true},
			{From: 24, To: 25, R: 0.19, X: 0.33, RateA: 16, Status: true},
			{From: 25, To: 26, R: 0.25, X: 0.38, RateA: 16, Status: true},
			{From: 25, To: 27, R: 0.11, X: 0.21, RateA: 16, Status: true},
			{From: 28, To: 27, X: 0.4, RateA: 65, Status: true},
			{From: 27, To: 29, R: 0.22, X: 0.42, RateA: 16, Status: true},
			{From: 27, To: 30, R: 0.32, X: 0.6, RateA: 16, Status: true},
			{From: 29, To: 30, R: 0.24, X: 0.45, RateA: 16, Status: true},
			{From: 8, To: 28, R: 0.06, X: 0.2, B: 0.02, RateA: 32, Status: true},
			{From: 6, To: 28, R: 0.02, X: 0.06, B: 0.02, RateA: 32, Status: true},
		},
	}
	mustNormalize(c)
	return c
}

func mustNormalize(c *Case) {
	if err := c.Normalize(); err != nil {
		panic(err)
	}
}

// The large embedded systems store their data as compact Matpower-style
// tables (one fixed-width row per element) instead of struct literals;
// caseFromTables expands them. Row layouts:
//
//	busRow:    ID, type, Pd, Qd, Gs, Bs, Vm, Va(deg)
//	genRow:    bus, Pg, Qg, Qmax, Qmin, Vg, Pmax, c2, c1, c0 (Pmin = 0)
//	branchRow: from, to, R, X, B, ratio (0 = plain line)
type (
	busRow    = [8]float64
	genRow    = [10]float64
	branchRow = [6]float64
)

// caseFromTables builds a normalized Case from the packed data tables.
// Every bus gets the uniform voltage band [vmin, vmax] and baseKV
// (buses listed in hv get 345 kV); every branch and generator is in
// service.
func caseFromTables(name string, baseKV, vmax, vmin float64, hv map[int]bool, buses []busRow, gens []genRow, branches []branchRow) *Case {
	c := &Case{Name: name, BaseMVA: 100}
	for _, r := range buses {
		id := int(r[0])
		kv := baseKV
		if hv[id] {
			kv = 345
		}
		c.Buses = append(c.Buses, Bus{
			ID: id, Type: BusType(int(r[1])),
			Pd: r[2], Qd: r[3], Gs: r[4], Bs: r[5],
			Vm: r[6], Va: r[7],
			BaseKV: kv, Vmax: vmax, Vmin: vmin,
		})
	}
	for _, r := range gens {
		c.Gens = append(c.Gens, Gen{
			Bus: int(r[0]), Pg: r[1], Qg: r[2],
			Qmax: r[3], Qmin: r[4], Vg: r[5],
			Pmax: r[6], Pmin: 0, Status: true,
			Cost: PolyCost{C2: r[7], C1: r[8], C0: r[9]},
		})
	}
	for _, r := range branches {
		c.Branches = append(c.Branches, Branch{
			From: int(r[0]), To: int(r[1]),
			R: r[2], X: r[3], B: r[4], Ratio: r[5],
			Status: true,
		})
	}
	mustNormalize(c)
	return c
}

// Rated-branch derivation constants — the single definition of the
// convention (see the package comment above). internal/casegen's
// certify step derives its synthetic ratings from these same values,
// so embedded and synthesized systems cannot drift apart.
const (
	// RatedHeadroom scales the base-case apparent flow into the branch
	// rating: base point feasible with ~2× margin, limits binding under
	// load growth.
	RatedHeadroom = 2.2
	// RatedFloorMVA is the minimum assigned rating, keeping lightly
	// loaded branches from getting degenerate limits.
	RatedFloorMVA = 15.0
)

// RateBranches assigns every in-service unrated branch a finite RateA of
// RatedHeadroom× the larger of its from-/to-side apparent-power flows at
// the case's stored operating point, floored at RatedFloorMVA. The case
// must be normalized. This is the single place the embedded systems
// derive flow limits from; branches with ratings in their source data
// are left untouched.
func RateBranches(c *Case) {
	y := MakeYbus(c)
	vm := make([]float64, len(c.Buses))
	va := make([]float64, len(c.Buses))
	for i, b := range c.Buses {
		vm[i] = b.Vm
		va[i] = Deg2Rad(b.Va)
	}
	sf, st := BranchFlows(y, Voltage(vm, va))
	li := 0
	for l := range c.Branches {
		if !c.Branches[l].Status {
			continue
		}
		if c.Branches[l].RateA == 0 {
			flow := math.Max(cmplxAbs(sf[li]), cmplxAbs(st[li])) * c.BaseMVA
			c.Branches[l].RateA = math.Max(RatedHeadroom*flow, RatedFloorMVA)
		}
		li++
	}
}

func cmplxAbs(x complex128) float64 { return math.Hypot(real(x), imag(x)) }
