package grid

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"
)

func TestNormalizeValidation(t *testing.T) {
	mk := func() *Case {
		return &Case{
			Name: "t", BaseMVA: 100,
			Buses: []Bus{
				{ID: 1, Type: Ref, Vm: 1, Vmax: 1.1, Vmin: 0.9},
				{ID: 2, Type: PQ, Vm: 1, Vmax: 1.1, Vmin: 0.9},
			},
			Gens:     []Gen{{Bus: 1, Status: true, Pmax: 10, Qmax: 10, Qmin: -10}},
			Branches: []Branch{{From: 1, To: 2, X: 0.1, Status: true}},
		}
	}
	if err := mk().Normalize(); err != nil {
		t.Fatalf("valid case rejected: %v", err)
	}
	c := mk()
	c.BaseMVA = 0
	if err := c.Normalize(); err == nil {
		t.Error("zero BaseMVA accepted")
	}
	c = mk()
	c.Buses[1].ID = 1
	if err := c.Normalize(); err == nil {
		t.Error("duplicate bus ID accepted")
	}
	c = mk()
	c.Buses[0].Type = PQ
	if err := c.Normalize(); err == nil {
		t.Error("missing ref bus accepted")
	}
	c = mk()
	c.Gens[0].Bus = 99
	if err := c.Normalize(); err == nil {
		t.Error("gen at unknown bus accepted")
	}
	c = mk()
	c.Branches[0].X = 0
	if err := c.Normalize(); err == nil {
		t.Error("zero-impedance branch accepted")
	}
	c = mk()
	c.Gens[0].Pmin = 20
	if err := c.Normalize(); err == nil {
		t.Error("inverted gen limits accepted")
	}
	c = mk()
	c.Buses[0].Vmax = 0.5
	if err := c.Normalize(); err == nil {
		t.Error("Vmax < Vmin accepted")
	}
}

func TestEmbeddedCases(t *testing.T) {
	for _, tc := range []struct {
		c          *Case
		nb, ng, nl int
		loadP      float64
	}{
		{Case9(), 9, 3, 9, 315},
		{Case5(), 5, 5, 6, 1000},
		{Case14(), 14, 5, 20, 259},
	} {
		if tc.c.NB() != tc.nb || tc.c.NG() != tc.ng || tc.c.NL() != tc.nl {
			t.Errorf("%s counts = %d/%d/%d want %d/%d/%d", tc.c.Name,
				tc.c.NB(), tc.c.NG(), tc.c.NL(), tc.nb, tc.ng, tc.nl)
		}
		p, _ := tc.c.TotalLoad()
		if math.Abs(p-tc.loadP) > 0.1 {
			t.Errorf("%s total load %.2f want %.2f", tc.c.Name, p, tc.loadP)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	c := Case9()
	cp := c.Clone()
	cp.Buses[4].Pd = 999
	if c.Buses[4].Pd == 999 {
		t.Fatal("Clone shares bus storage")
	}
	if cp.BusIndex(5) != c.BusIndex(5) {
		t.Fatal("Clone lost bus index")
	}
}

func TestScaleLoads(t *testing.T) {
	c := Case9()
	f := make([]float64, c.NB())
	for i := range f {
		f[i] = 1.1
	}
	p0, q0 := c.TotalLoad()
	c.ScaleLoads(f)
	p1, q1 := c.TotalLoad()
	if math.Abs(p1-1.1*p0) > 1e-9 || math.Abs(q1-1.1*q0) > 1e-9 {
		t.Fatalf("ScaleLoads: %v %v", p1, q1)
	}
}

func TestMakeYbusTwoBusLine(t *testing.T) {
	c := &Case{
		Name: "2bus", BaseMVA: 100,
		Buses: []Bus{
			{ID: 1, Type: Ref, Vm: 1, Vmax: 1.1, Vmin: 0.9},
			{ID: 2, Type: PQ, Vm: 1, Vmax: 1.1, Vmin: 0.9},
		},
		Branches: []Branch{{From: 1, To: 2, R: 0.01, X: 0.1, B: 0.2, Status: true}},
		Gens:     []Gen{{Bus: 1, Status: true, Pmax: 1, Qmax: 1, Qmin: -1}},
	}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	y := MakeYbus(c)
	ys := 1 / complex(0.01, 0.1)
	want00 := ys + complex(0, 0.1)
	if cmplx.Abs(y.Ybus.At(0, 0)-want00) > 1e-12 {
		t.Errorf("Y[0,0] = %v want %v", y.Ybus.At(0, 0), want00)
	}
	if cmplx.Abs(y.Ybus.At(0, 1)+ys) > 1e-12 {
		t.Errorf("Y[0,1] = %v want %v", y.Ybus.At(0, 1), -ys)
	}
	if cmplx.Abs(y.Ybus.At(0, 1)-y.Ybus.At(1, 0)) > 1e-12 {
		t.Error("line Ybus not symmetric")
	}
}

func TestMakeYbusTapShift(t *testing.T) {
	c := &Case{
		Name: "tap", BaseMVA: 100,
		Buses: []Bus{
			{ID: 1, Type: Ref, Vm: 1, Vmax: 1.1, Vmin: 0.9},
			{ID: 2, Type: PQ, Vm: 1, Vmax: 1.1, Vmin: 0.9},
		},
		Branches: []Branch{{From: 1, To: 2, X: 0.1, Ratio: 0.95, Shift: 10, Status: true}},
		Gens:     []Gen{{Bus: 1, Status: true, Pmax: 1, Qmax: 1, Qmin: -1}},
	}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	y := MakeYbus(c)
	ys := 1 / complex(0, 0.1)
	tap := complex(0.95, 0) * cmplx.Exp(complex(0, Deg2Rad(10)))
	if cmplx.Abs(y.Yf.Vf[0]-ys/(tap*cmplx.Conj(tap))) > 1e-12 {
		t.Error("Yff with tap wrong")
	}
	if cmplx.Abs(y.Yf.Vt[0]+ys/cmplx.Conj(tap)) > 1e-12 {
		t.Error("Yft with tap wrong")
	}
	if cmplx.Abs(y.Yt.Vf[0]+ys/tap) > 1e-12 {
		t.Error("Ytf with tap wrong")
	}
}

func TestBusShuntInYbus(t *testing.T) {
	c := Case14() // bus 9 has Bs = 19 MVAr
	y := MakeYbus(c)
	i := c.BusIndex(9)
	// Remove the shunt and compare the diagonal: difference must be j·0.19.
	c2 := c.Clone()
	c2.Buses[i].Bs = 0
	y2 := MakeYbus(c2)
	d := y.Ybus.At(i, i) - y2.Ybus.At(i, i)
	if cmplx.Abs(d-complex(0, 0.19)) > 1e-12 {
		t.Fatalf("shunt contribution = %v", d)
	}
}

func TestSbusAndMismatchConsistency(t *testing.T) {
	c := Case9()
	y := MakeYbus(c)
	nb := c.NB()
	vm := make([]float64, nb)
	va := make([]float64, nb)
	for i := range vm {
		vm[i] = 1.02
		va[i] = 0.01 * float64(i)
	}
	v := Voltage(vm, va)
	// Choose Sbus exactly equal to the computed injection: mismatch must
	// vanish.
	ib := y.Ybus.MulVec(v)
	sb := make([]complex128, nb)
	for i := range sb {
		sb[i] = v[i] * cmplx.Conj(ib[i])
	}
	mis := PowerMismatch(y, v, sb)
	for i, m := range mis {
		if cmplx.Abs(m) > 1e-12 {
			t.Fatalf("mismatch[%d] = %v", i, m)
		}
	}
}

func TestBranchFlowBalance(t *testing.T) {
	// Power injected at each bus equals the sum of the flows leaving on
	// its incident branches (case without bus shunts).
	c := Case9()
	y := MakeYbus(c)
	nb := c.NB()
	vm := make([]float64, nb)
	va := make([]float64, nb)
	for i := range vm {
		vm[i] = 1 + 0.01*float64(i%3)
		va[i] = -0.02 * float64(i)
	}
	v := Voltage(vm, va)
	sf, st := BranchFlows(y, v)
	inj := make([]complex128, nb)
	for l := range sf {
		inj[y.FIdx[l]] += sf[l]
		inj[y.TIdx[l]] += st[l]
	}
	ib := y.Ybus.MulVec(v)
	for i := 0; i < nb; i++ {
		want := v[i] * cmplx.Conj(ib[i])
		if cmplx.Abs(inj[i]-want) > 1e-10 {
			t.Fatalf("bus %d: flows %v vs injection %v", i, inj[i], want)
		}
	}
}

func TestMakeSbus(t *testing.T) {
	c := Case9()
	pg := []float64{0.723, 1.63, 0.85}
	qg := []float64{0.2703, 0.0654, -0.1095}
	sb := MakeSbus(c, pg, qg)
	// Bus 5 (index 4): pure load 90+j30 on a 100 MVA base.
	if cmplx.Abs(sb[4]-complex(-0.9, -0.3)) > 1e-12 {
		t.Errorf("Sbus[4] = %v", sb[4])
	}
	// Bus 2 (index 1): generator 2.
	if cmplx.Abs(sb[1]-complex(1.63, 0.0654)) > 1e-12 {
		t.Errorf("Sbus[1] = %v", sb[1])
	}
}

func TestGenBusIdxMultipleAtBus(t *testing.T) {
	c := Case5() // two generators at bus 1
	idx := GenBusIdx(c)
	if len(idx) != 5 || idx[0] != idx[1] {
		t.Fatalf("GenBusIdx = %v", idx)
	}
}

func TestPolyCost(t *testing.T) {
	pc := PolyCost{C2: 2, C1: 3, C0: 5}
	if pc.Eval(4) != 2*16+3*4+5 {
		t.Errorf("Eval = %v", pc.Eval(4))
	}
	if pc.Deriv(4) != 2*2*4+3 {
		t.Errorf("Deriv = %v", pc.Deriv(4))
	}
	if pc.Deriv2() != 4 {
		t.Errorf("Deriv2 = %v", pc.Deriv2())
	}
}

// testVoltage returns a slightly perturbed non-flat voltage profile.
func testVoltage(nb int) ([]float64, []float64) {
	vm := make([]float64, nb)
	va := make([]float64, nb)
	for i := 0; i < nb; i++ {
		vm[i] = 1.0 + 0.03*math.Sin(float64(i)+1)
		va[i] = 0.05 * math.Cos(2*float64(i))
	}
	return vm, va
}

func TestDSbusDVFiniteDiff(t *testing.T) {
	c := Case14()
	y := MakeYbus(c)
	nb := c.NB()
	vm, va := testVoltage(nb)
	dVa, dVm := DSbusDV(y.Ybus, Voltage(vm, va))
	h := 1e-7
	sbusAt := func(vm, va []float64) []complex128 {
		v := Voltage(vm, va)
		ib := y.Ybus.MulVec(v)
		s := make([]complex128, nb)
		for i := range s {
			s[i] = v[i] * cmplx.Conj(ib[i])
		}
		return s
	}
	for j := 0; j < nb; j++ {
		vap := append([]float64(nil), va...)
		vam := append([]float64(nil), va...)
		vap[j] += h
		vam[j] -= h
		sp := sbusAt(vm, vap)
		sm := sbusAt(vm, vam)
		for i := 0; i < nb; i++ {
			fd := (sp[i] - sm[i]) / complex(2*h, 0)
			if cmplx.Abs(fd-dVa.At(i, j)) > 1e-5 {
				t.Fatalf("dS/dVa[%d,%d]: fd %v analytic %v", i, j, fd, dVa.At(i, j))
			}
		}
		vmp := append([]float64(nil), vm...)
		vmm := append([]float64(nil), vm...)
		vmp[j] += h
		vmm[j] -= h
		sp = sbusAt(vmp, va)
		sm = sbusAt(vmm, va)
		for i := 0; i < nb; i++ {
			fd := (sp[i] - sm[i]) / complex(2*h, 0)
			if cmplx.Abs(fd-dVm.At(i, j)) > 1e-5 {
				t.Fatalf("dS/dVm[%d,%d]: fd %v analytic %v", i, j, fd, dVm.At(i, j))
			}
		}
	}
}

func TestDSbrDVFiniteDiff(t *testing.T) {
	c := Case9()
	y := MakeYbus(c)
	nb := c.NB()
	nl := y.Yf.NL()
	vm, va := testVoltage(nb)
	dSfVa, dSfVm, dStVa, dStVm, _, _ := DSbrDV(y, Voltage(vm, va))
	h := 1e-7
	flows := func(vm, va []float64) ([]complex128, []complex128) {
		return BranchFlows(y, Voltage(vm, va))
	}
	get := func(m *BranchMat, l, j int) complex128 {
		var s complex128
		if m.F[l] == j {
			s += m.Vf[l]
		}
		if m.T[l] == j {
			s += m.Vt[l]
		}
		return s
	}
	for j := 0; j < nb; j++ {
		vap := append([]float64(nil), va...)
		vam := append([]float64(nil), va...)
		vap[j] += h
		vam[j] -= h
		sfp, stp := flows(vm, vap)
		sfm, stm := flows(vm, vam)
		vmp := append([]float64(nil), vm...)
		vmm := append([]float64(nil), vm...)
		vmp[j] += h
		vmm[j] -= h
		sfpm, stpm := flows(vmp, va)
		sfmm, stmm := flows(vmm, va)
		for l := 0; l < nl; l++ {
			fd := (sfp[l] - sfm[l]) / complex(2*h, 0)
			if cmplx.Abs(fd-get(dSfVa, l, j)) > 1e-5 {
				t.Fatalf("dSf/dVa[%d,%d] fd %v vs %v", l, j, fd, get(dSfVa, l, j))
			}
			fd = (stp[l] - stm[l]) / complex(2*h, 0)
			if cmplx.Abs(fd-get(dStVa, l, j)) > 1e-5 {
				t.Fatalf("dSt/dVa[%d,%d] fd %v vs %v", l, j, fd, get(dStVa, l, j))
			}
			fd = (sfpm[l] - sfmm[l]) / complex(2*h, 0)
			if cmplx.Abs(fd-get(dSfVm, l, j)) > 1e-5 {
				t.Fatalf("dSf/dVm[%d,%d] fd %v vs %v", l, j, fd, get(dSfVm, l, j))
			}
			fd = (stpm[l] - stmm[l]) / complex(2*h, 0)
			if cmplx.Abs(fd-get(dStVm, l, j)) > 1e-5 {
				t.Fatalf("dSt/dVm[%d,%d] fd %v vs %v", l, j, fd, get(dStVm, l, j))
			}
		}
	}
}

// phiSbus is the λ-weighted injection scalar used to validate the bus
// Hessians: φ = Σ_i (lamP_i·Re S_i + lamQ_i·Im S_i).
func phiSbus(c *Case, y *YMatrices, lamP, lamQ, vm, va []float64) float64 {
	v := Voltage(vm, va)
	ib := y.Ybus.MulVec(v)
	var phi float64
	for i := range v {
		s := v[i] * cmplx.Conj(ib[i])
		phi += lamP[i]*real(s) + lamQ[i]*imag(s)
	}
	return phi
}

func TestD2SbusDV2FiniteDiff(t *testing.T) {
	c := Case9()
	y := MakeYbus(c)
	nb := c.NB()
	vm, va := testVoltage(nb)
	lamP := make([]float64, nb)
	lamQ := make([]float64, nb)
	lamPc := make([]complex128, nb)
	lamQc := make([]complex128, nb)
	for i := 0; i < nb; i++ {
		lamP[i] = 0.5 + 0.1*float64(i)
		lamQ[i] = -0.3 + 0.05*float64(i)
		lamPc[i] = complex(lamP[i], 0)
		lamQc[i] = complex(lamQ[i], 0)
	}
	v := Voltage(vm, va)
	pa, pv, pva, pvv := D2SbusDV2(y.Ybus, v, lamPc)
	qa, qv, qva, qvv := D2SbusDV2(y.Ybus, v, lamQc)
	// Analytic Hessian entry over z = [va; vm].
	hess := func(i, j int) float64 {
		var re, im float64
		switch {
		case i < nb && j < nb:
			re, im = real(pa.At(i, j)), imag(qa.At(i, j))
		case i < nb && j >= nb:
			re, im = real(pv.At(i, j-nb)), imag(qv.At(i, j-nb))
		case i >= nb && j < nb:
			re, im = real(pva.At(i-nb, j)), imag(qva.At(i-nb, j))
		default:
			re, im = real(pvv.At(i-nb, j-nb)), imag(qvv.At(i-nb, j-nb))
		}
		return re + im
	}
	phi := func(z []float64) float64 {
		return phiSbus(c, y, lamP, lamQ, z[nb:], z[:nb])
	}
	z0 := append(append([]float64(nil), va...), vm...)
	h := 1e-5
	for i := 0; i < 2*nb; i++ {
		for j := 0; j < 2*nb; j++ {
			zpp := append([]float64(nil), z0...)
			zpm := append([]float64(nil), z0...)
			zmp := append([]float64(nil), z0...)
			zmm := append([]float64(nil), z0...)
			zpp[i] += h
			zpp[j] += h
			zpm[i] += h
			zpm[j] -= h
			zmp[i] -= h
			zmp[j] += h
			zmm[i] -= h
			zmm[j] -= h
			fd := (phi(zpp) - phi(zpm) - phi(zmp) + phi(zmm)) / (4 * h * h)
			if math.Abs(fd-hess(i, j)) > 2e-4*(1+math.Abs(fd)) {
				t.Fatalf("d2Sbus H[%d,%d]: fd %v analytic %v", i, j, fd, hess(i, j))
			}
		}
	}
}

func TestD2ASbrDV2FiniteDiff(t *testing.T) {
	c := Case9()
	y := MakeYbus(c)
	nb := c.NB()
	nl := y.Yf.NL()
	vm, va := testVoltage(nb)
	mu := make([]float64, nl)
	for l := range mu {
		mu[l] = 0.2 + 0.1*float64(l)
	}
	v := Voltage(vm, va)
	dSfVa, dSfVm, _, _, sf, _ := DSbrDV(y, v)
	haa, hav, hva, hvv := D2ASbrDV2(dSfVa, dSfVm, sf, y.Yf, true, v, mu)
	hess := func(i, j int) float64 {
		switch {
		case i < nb && j < nb:
			return haa.At(i, j)
		case i < nb && j >= nb:
			return hav.At(i, j-nb)
		case i >= nb && j < nb:
			return hva.At(i-nb, j)
		default:
			return hvv.At(i-nb, j-nb)
		}
	}
	psi := func(z []float64) float64 {
		sfz, _ := BranchFlows(y, Voltage(z[nb:], z[:nb]))
		var s float64
		for l := range sfz {
			m := cmplx.Abs(sfz[l])
			s += mu[l] * m * m
		}
		return s
	}
	z0 := append(append([]float64(nil), va...), vm...)
	h := 1e-5
	for i := 0; i < 2*nb; i++ {
		for j := 0; j < 2*nb; j++ {
			zpp := append([]float64(nil), z0...)
			zpm := append([]float64(nil), z0...)
			zmp := append([]float64(nil), z0...)
			zmm := append([]float64(nil), z0...)
			zpp[i] += h
			zpp[j] += h
			zpm[i] += h
			zpm[j] -= h
			zmp[i] -= h
			zmp[j] += h
			zmm[i] -= h
			zmm[j] -= h
			fd := (psi(zpp) - psi(zpm) - psi(zmp) + psi(zmm)) / (4 * h * h)
			if math.Abs(fd-hess(i, j)) > 5e-4*(1+math.Abs(fd)) {
				t.Fatalf("d2ASbr H[%d,%d]: fd %v analytic %v", i, j, fd, hess(i, j))
			}
		}
	}
}

func TestDAbrDVAgainstFiniteDiff(t *testing.T) {
	c := Case9()
	y := MakeYbus(c)
	nb := c.NB()
	vm, va := testVoltage(nb)
	v := Voltage(vm, va)
	dSfVa, dSfVm, _, _, sf, _ := DSbrDV(y, v)
	dAVa, dAVm := DAbrDV(dSfVa, dSfVm, sf)
	h := 1e-7
	af := func(vm, va []float64) []float64 {
		s, _ := BranchFlows(y, Voltage(vm, va))
		out := make([]float64, len(s))
		for l := range s {
			m := cmplx.Abs(s[l])
			out[l] = m * m
		}
		return out
	}
	get := func(m *BranchMatReal, l, j int) float64 {
		var s float64
		if m.F[l] == j {
			s += m.Vf[l]
		}
		if m.T[l] == j {
			s += m.Vt[l]
		}
		return s
	}
	for j := 0; j < nb; j++ {
		vap := append([]float64(nil), va...)
		vap[j] += h
		vam := append([]float64(nil), va...)
		vam[j] -= h
		ap, am := af(vm, vap), af(vm, vam)
		vmp := append([]float64(nil), vm...)
		vmp[j] += h
		vmm := append([]float64(nil), vm...)
		vmm[j] -= h
		ap2, am2 := af(vmp, va), af(vmm, va)
		for l := 0; l < y.Yf.NL(); l++ {
			fd := (ap[l] - am[l]) / (2 * h)
			if math.Abs(fd-get(dAVa, l, j)) > 1e-5 {
				t.Fatalf("dA/dVa[%d,%d] fd %v vs %v", l, j, fd, get(dAVa, l, j))
			}
			fd = (ap2[l] - am2[l]) / (2 * h)
			if math.Abs(fd-get(dAVm, l, j)) > 1e-5 {
				t.Fatalf("dA/dVm[%d,%d] fd %v vs %v", l, j, fd, get(dAVm, l, j))
			}
		}
	}
}

func TestMatpowerRoundTrip(t *testing.T) {
	for _, c := range []*Case{Case9(), Case5(), Case14()} {
		var sb strings.Builder
		if err := WriteMatpower(&sb, c); err != nil {
			t.Fatal(err)
		}
		got, err := ParseMatpower(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: parse: %v", c.Name, err)
		}
		if got.NB() != c.NB() || got.NG() != c.NG() || got.NL() != c.NL() {
			t.Fatalf("%s: counts changed", c.Name)
		}
		if math.Abs(got.BaseMVA-c.BaseMVA) > 1e-12 {
			t.Fatalf("%s: baseMVA changed", c.Name)
		}
		for i := range c.Buses {
			if math.Abs(got.Buses[i].Pd-c.Buses[i].Pd) > 1e-9 ||
				got.Buses[i].Type != c.Buses[i].Type {
				t.Fatalf("%s: bus %d changed", c.Name, i)
			}
		}
		for i := range c.Gens {
			if math.Abs(got.Gens[i].Cost.C2-c.Gens[i].Cost.C2) > 1e-12 ||
				math.Abs(got.Gens[i].Pmax-c.Gens[i].Pmax) > 1e-9 {
				t.Fatalf("%s: gen %d changed", c.Name, i)
			}
		}
		for i := range c.Branches {
			if math.Abs(got.Branches[i].X-c.Branches[i].X) > 1e-12 ||
				math.Abs(got.Branches[i].Ratio-c.Branches[i].Ratio) > 1e-12 {
				t.Fatalf("%s: branch %d changed", c.Name, i)
			}
		}
	}
}

func TestParseMatpowerRejectsBadInput(t *testing.T) {
	bad := []string{
		"mpc.baseMVA = xyz;",
		"mpc.baseMVA = 100;\nmpc.bus = [1 3 0 0;];", // too few columns
		"mpc.baseMVA = 100;",                        // no bus table
	}
	for _, src := range bad {
		if _, err := ParseMatpower(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseMatpowerComments(t *testing.T) {
	src := `function mpc = mini
% a comment
mpc.version = '2';
mpc.baseMVA = 100;
mpc.bus = [
	1 3 0 0 0 0 1 1 0 0 1 1.1 0.9; % slack
	2 1 10 5 0 0 1 1 0 0 1 1.1 0.9;
];
mpc.gen = [
	1 0 0 10 -10 1 100 1 50 0;
];
mpc.branch = [
	1 2 0.01 0.1 0 0 0 0 0 0 1;
];
mpc.gencost = [
	2 0 0 3 0.1 10 0;
];
`
	c, err := ParseMatpower(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "mini" || c.NB() != 2 || c.NG() != 1 || c.NL() != 1 {
		t.Fatalf("parsed wrong: %+v", c)
	}
	if c.Gens[0].Cost.C1 != 10 {
		t.Fatalf("gencost wrong: %+v", c.Gens[0].Cost)
	}
}

func TestBranchMatToCSC(t *testing.T) {
	m := NewBranchMat(2, 3)
	m.F[0], m.T[0], m.Vf[0], m.Vt[0] = 0, 1, 2+1i, -1
	m.F[1], m.T[1], m.Vf[1], m.Vt[1] = 1, 2, 3, 4i
	a := m.ToCSC()
	if a.At(0, 0) != 2+1i || a.At(0, 1) != -1 || a.At(1, 2) != 4i {
		t.Fatal("ToCSC wrong")
	}
	y := m.MulVec([]complex128{1, 1, 1})
	if y[0] != 1+1i || y[1] != 3+4i {
		t.Fatalf("MulVec = %v", y)
	}
}
