package grid_test

// Embedded-fleet smoke tests: every embedded system must round-trip
// Normalize → MakeYbus → Newton power-flow convergence from a flat
// start, so a bad data entry in a large case table fails fast here
// rather than deep inside a benchmark or screening sweep. (This lives
// in an external test package because internal/pf imports grid.)

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/grid"
	"repro/internal/pf"
)

// embedded enumerates every embedded system with its expected element
// counts, load band and rated-branch count.
var embedded = []struct {
	name              string
	build             func() *grid.Case
	nb, ng, nl, rated int
	loadMin, loadMax  float64 // total Pd band, MW
	flatIters         int     // Newton budget from a flat start
	storedIters       int     // Newton budget from the stored point
	derivedRates      bool    // ratings come from RateBranches (base-feasible)
}{
	{"case5", grid.Case5, 5, 5, 6, 6, 990, 1010, 10, 10, false},
	{"case9", grid.Case9, 9, 3, 9, 9, 310, 320, 10, 10, false},
	{"case14", grid.Case14, 14, 5, 20, 0, 255, 265, 10, 10, false},
	{"case30", grid.Case30, 30, 6, 41, 41, 180, 200, 10, 10, false},
	{"case57", grid.Case57, 57, 7, 80, 80, 1245, 1255, 15, 6, true},
	{"case118", grid.Case118, 118, 54, 186, 186, 4230, 4255, 15, 6, true},
	{"case300", grid.Case300, 300, 69, 411, 411, 5000, 30000, 20, 6, true},
	{"case1354", grid.Case1354, 1354, 260, 1991, 1991, 20000, 40000, 25, 6, true},
}

// TestEmbeddedSystemsRoundTrip is the table-driven data smoke test of
// the whole embedded fleet.
func TestEmbeddedSystemsRoundTrip(t *testing.T) {
	for _, tc := range embedded {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build()
			if err := c.Normalize(); err != nil {
				t.Fatalf("Normalize: %v", err)
			}
			if c.NB() != tc.nb || c.NG() != tc.ng || c.NL() != tc.nl {
				t.Fatalf("counts %d/%d/%d want %d/%d/%d",
					c.NB(), c.NG(), c.NL(), tc.nb, tc.ng, tc.nl)
			}
			rated := 0
			for _, br := range c.Branches {
				if br.Status && br.RateA > 0 {
					rated++
				}
			}
			if rated != tc.rated {
				t.Fatalf("rated branches = %d want %d", rated, tc.rated)
			}
			p, _ := c.TotalLoad()
			if p < tc.loadMin || p > tc.loadMax {
				t.Fatalf("total load %.1f MW outside [%.0f, %.0f]", p, tc.loadMin, tc.loadMax)
			}
			if y := grid.MakeYbus(c); y.Ybus.NRows != tc.nb {
				t.Fatalf("Ybus is %dx%d", y.Ybus.NRows, y.Ybus.NCols)
			}

			// Newton from a flat start (V = 1∠0 with generator setpoints),
			// then from the stored operating point, which must be a solved
			// state (few iterations to reconverge).
			flat := c.Clone()
			for i := range flat.Buses {
				flat.Buses[i].Vm = 1
				flat.Buses[i].Va = 0
			}
			r, err := pf.Solve(flat, pf.Options{MaxIter: tc.flatIters})
			if err != nil || !r.Converged {
				t.Fatalf("flat-start Newton: %v (converged=%v after %d iters, mismatch %.3e)",
					err, r != nil && r.Converged, r.Iterations, r.MaxMismatch)
			}
			rs, err := pf.Solve(c, pf.Options{})
			if err != nil || !rs.Converged {
				t.Fatalf("stored-point Newton: %v", err)
			}
			if rs.Iterations > tc.storedIters {
				t.Errorf("stored operating point took %d Newton iterations (budget %d) — stale anchor?",
					rs.Iterations, tc.storedIters)
			}

			// Derived ratings must leave the stored point feasible (the
			// RateBranches headroom guarantee). Source-file ratings carry
			// no such guarantee — e.g. case5's base dispatch overloads
			// line 4-5 until the OPF redispatches — so they are skipped.
			if !tc.derivedRates {
				return
			}
			v := grid.Voltage(rs.Vm, rs.Va)
			sf, st := grid.BranchFlows(grid.MakeYbus(c), v)
			li := 0
			for l, br := range c.Branches {
				if !br.Status {
					continue
				}
				if br.RateA > 0 {
					f := maxAbs(sf[li], st[li]) * c.BaseMVA
					if f > br.RateA*1.0001 {
						t.Errorf("branch %d (%d-%d): base flow %.1f MVA exceeds rating %.1f",
							l, br.From, br.To, f, br.RateA)
					}
				}
				li++
			}
		})
	}
}

func maxAbs(a, b complex128) float64 {
	return math.Max(cmplx.Abs(a), cmplx.Abs(b))
}
