package grid

import (
	"math/cmplx"

	"repro/internal/sparse"
)

// BranchMat is an nl×nb complex matrix with exactly two structural entries
// per row, at the from- and to-bus columns of each branch. The branch
// admittance matrices Yf/Yt and all branch-flow derivative matrices share
// this shape; keeping it explicit makes Jacobian assembly and the
// outer-product Hessian terms O(nl) instead of generic sparse products.
type BranchMat struct {
	NB     int          // number of columns (buses)
	F, T   []int        // bus index of the two entries per row
	Vf, Vt []complex128 // entry values at columns F[l] and T[l]
}

// NewBranchMat allocates a BranchMat for nl branches over nb buses.
func NewBranchMat(nl, nb int) *BranchMat {
	return &BranchMat{
		NB: nb,
		F:  make([]int, nl), T: make([]int, nl),
		Vf: make([]complex128, nl), Vt: make([]complex128, nl),
	}
}

// NL returns the number of rows (branches).
func (m *BranchMat) NL() int { return len(m.F) }

// MulVec returns m·x for a complex vector of length NB.
func (m *BranchMat) MulVec(x []complex128) []complex128 {
	y := make([]complex128, m.NL())
	for l := range m.F {
		y[l] = m.Vf[l]*x[m.F[l]] + m.Vt[l]*x[m.T[l]]
	}
	return y
}

// ToCSC expands m to a general complex CSC matrix.
func (m *BranchMat) ToCSC() *sparse.CSCComplex {
	b := sparse.NewBuilderC(m.NL(), m.NB)
	for l := range m.F {
		b.Append(l, m.F[l], m.Vf[l])
		b.Append(l, m.T[l], m.Vt[l])
	}
	return b.ToCSC()
}

// YMatrices bundles the admittance matrices of a case.
type YMatrices struct {
	Ybus   *sparse.CSCComplex // nb×nb bus admittance matrix
	Yf, Yt *BranchMat         // nl×nb from/to branch admittance
	FIdx   []int              // from-bus index per in-service branch
	TIdx   []int              // to-bus index per in-service branch
}

// MakeYbus builds the bus and branch admittance matrices of the case,
// following the Matpower construction (taps, phase shifts, line charging
// and bus shunts included). Only in-service branches contribute.
func MakeYbus(c *Case) *YMatrices {
	nb := c.NB()
	branches := c.ActiveBranches()
	nl := len(branches)
	yf := NewBranchMat(nl, nb)
	yt := NewBranchMat(nl, nb)
	yb := sparse.NewBuilderC(nb, nb)
	fIdx := make([]int, nl)
	tIdx := make([]int, nl)
	for l, br := range branches {
		ys := 1 / complex(br.R, br.X)
		bc := complex(0, br.B/2)
		tap := complex(1, 0)
		if br.Ratio != 0 {
			tap = complex(br.Ratio, 0)
		}
		if br.Shift != 0 {
			tap *= cmplx.Exp(complex(0, Deg2Rad(br.Shift)))
		}
		ytt := ys + bc
		yff := ytt / (tap * cmplx.Conj(tap))
		yft := -ys / cmplx.Conj(tap)
		ytf := -ys / tap
		f := c.BusIndex(br.From)
		t := c.BusIndex(br.To)
		fIdx[l], tIdx[l] = f, t
		yf.F[l], yf.T[l], yf.Vf[l], yf.Vt[l] = f, t, yff, yft
		yt.F[l], yt.T[l], yt.Vf[l], yt.Vt[l] = f, t, ytf, ytt
		yb.Append(f, f, yff)
		yb.Append(f, t, yft)
		yb.Append(t, f, ytf)
		yb.Append(t, t, ytt)
	}
	for i, bus := range c.Buses {
		if bus.Gs != 0 || bus.Bs != 0 {
			yb.Append(i, i, complex(bus.Gs, bus.Bs)/complex(c.BaseMVA, 0))
		}
	}
	return &YMatrices{Ybus: yb.ToCSC(), Yf: yf, Yt: yt, FIdx: fIdx, TIdx: tIdx}
}

// Voltage assembles the complex bus voltage vector from magnitude (pu) and
// angle (radians) slices.
func Voltage(vm, va []float64) []complex128 {
	v := make([]complex128, len(vm))
	for i := range vm {
		v[i] = cmplx.Rect(vm[i], va[i])
	}
	return v
}

// MakeSbus returns the net complex power injection at each bus in per
// unit: (Cg·Sg − Sd)/baseMVA, with pg/qg the per-unit dispatch of the
// in-service generators in ActiveGens order.
func MakeSbus(c *Case, pg, qg []float64) []complex128 {
	nb := c.NB()
	s := make([]complex128, nb)
	gi := 0
	for _, g := range c.Gens {
		if !g.Status {
			continue
		}
		s[c.BusIndex(g.Bus)] += complex(pg[gi], qg[gi])
		gi++
	}
	for i, b := range c.Buses {
		s[i] -= complex(b.Pd, b.Qd) / complex(c.BaseMVA, 0)
	}
	return s
}

// GenBusIdx returns the bus index of each in-service generator.
func GenBusIdx(c *Case) []int {
	idx := make([]int, 0, len(c.Gens))
	for _, g := range c.Gens {
		if g.Status {
			idx = append(idx, c.BusIndex(g.Bus))
		}
	}
	return idx
}

// PowerMismatch returns the complex power-balance mismatch
// V·conj(Ybus·V) − Sbus in per unit; zero at a solved power flow.
func PowerMismatch(y *YMatrices, v, sbus []complex128) []complex128 {
	ib := y.Ybus.MulVec(v)
	mis := make([]complex128, len(v))
	for i := range v {
		mis[i] = v[i]*cmplx.Conj(ib[i]) - sbus[i]
	}
	return mis
}

// BranchFlows returns the complex power flow into each branch at its from
// and to ends, in per unit.
func BranchFlows(y *YMatrices, v []complex128) (sf, st []complex128) {
	ifr := y.Yf.MulVec(v)
	ito := y.Yt.MulVec(v)
	nl := y.Yf.NL()
	sf = make([]complex128, nl)
	st = make([]complex128, nl)
	for l := 0; l < nl; l++ {
		sf[l] = v[y.FIdx[l]] * cmplx.Conj(ifr[l])
		st[l] = v[y.TIdx[l]] * cmplx.Conj(ito[l])
	}
	return sf, st
}

// vnorm returns V./|V| (unit-magnitude phasors).
func vnorm(v []complex128) []complex128 {
	out := make([]complex128, len(v))
	for i, x := range v {
		a := cmplx.Abs(x)
		if a == 0 {
			out[i] = 1
			continue
		}
		out[i] = x / complex(a, 0)
	}
	return out
}

// vabs returns |V| element-wise.
func vabs(v []complex128) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = cmplx.Abs(x)
	}
	return out
}

// conjVec returns conj(v) as a new slice.
func conjVec(v []complex128) []complex128 {
	out := make([]complex128, len(v))
	for i, x := range v {
		out[i] = complex(real(x), -imag(x))
	}
	return out
}
