package grid

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// rebuildWithout is the reference: flip the branch out of service and
// rebuild the admittance matrices from scratch.
func rebuildWithout(c *Case, branch int) *YMatrices {
	cc := c.Clone()
	cc.Branches[branch].Status = false
	if err := cc.Normalize(); err != nil {
		panic(err)
	}
	return MakeYbus(cc)
}

func sameComplexCSC(t *testing.T, name string, got, want *sparse.CSCComplex) {
	t.Helper()
	if got.NRows != want.NRows || got.NCols != want.NCols {
		t.Fatalf("%s: shape %dx%d want %dx%d", name, got.NRows, got.NCols, want.NRows, want.NCols)
	}
	if len(got.RowIdx) != len(want.RowIdx) {
		t.Fatalf("%s: nnz %d want %d", name, len(got.RowIdx), len(want.RowIdx))
	}
	for i := range got.ColPtr {
		if got.ColPtr[i] != want.ColPtr[i] {
			t.Fatalf("%s: ColPtr[%d] = %d want %d", name, i, got.ColPtr[i], want.ColPtr[i])
		}
	}
	for p := range got.RowIdx {
		if got.RowIdx[p] != want.RowIdx[p] {
			t.Fatalf("%s: RowIdx[%d] = %d want %d", name, p, got.RowIdx[p], want.RowIdx[p])
		}
		if got.Val[p] != want.Val[p] {
			t.Fatalf("%s: Val[%d] = %v want %v (not bit-identical)", name, p, got.Val[p], want.Val[p])
		}
	}
}

func sameBranchMat(t *testing.T, name string, got, want *BranchMat) {
	t.Helper()
	if got.NB != want.NB || got.NL() != want.NL() {
		t.Fatalf("%s: shape %dx%d want %dx%d", name, got.NL(), got.NB, want.NL(), want.NB)
	}
	for l := range got.F {
		if got.F[l] != want.F[l] || got.T[l] != want.T[l] ||
			got.Vf[l] != want.Vf[l] || got.Vt[l] != want.Vt[l] {
			t.Fatalf("%s: row %d differs", name, l)
		}
	}
}

// Property: the incremental single-branch-outage delta is bit-identical
// — pattern and values — to rebuilding the admittance matrices on the
// outaged case, for every branch (bridges included; connectivity is a
// screening concern, not a matrix one) of every embedded system.
func TestDropBranchMatchesRebuild(t *testing.T) {
	cases := []*Case{Case5(), Case9(), Case14(), Case30(), Case57(), Case118()}
	if !testing.Short() {
		cases = append(cases, Case300())
	}
	for _, c := range cases {
		y := MakeYbus(c)
		active := 0
		for branch, br := range c.Branches {
			if !br.Status {
				continue
			}
			got := y.DropBranch(c, active)
			want := rebuildWithout(c, branch)
			name := c.Name + "/outage"
			sameComplexCSC(t, name+"/Ybus", got.Ybus, want.Ybus)
			sameBranchMat(t, name+"/Yf", got.Yf, want.Yf)
			sameBranchMat(t, name+"/Yt", got.Yt, want.Yt)
			for i := range got.FIdx {
				if got.FIdx[i] != want.FIdx[i] || got.TIdx[i] != want.TIdx[i] {
					t.Fatalf("%s: FIdx/TIdx[%d] differ", name, i)
				}
			}
			active++
		}
	}
}

// Property: the generator-drop view is bit-identical to a full rebuild
// across all generators of all embedded systems — the admittance
// matrices (which a generator cannot touch) match a fresh MakeYbus of
// the rebuilt case pattern-and-values, and the active-generator
// bookkeeping (count, bus indices) matches the rebuilt case exactly.
// Mirror of TestDropBranchMatchesRebuild for the generator axis.
func TestWithoutGenMatchesRebuild(t *testing.T) {
	cases := []*Case{Case5(), Case9(), Case14(), Case30(), Case57(), Case118()}
	if !testing.Short() {
		cases = append(cases, Case300())
	}
	for _, c := range cases {
		for g, gen := range c.Gens {
			if !gen.Status {
				continue
			}
			view := c.WithoutGen(g)
			cc := c.Clone()
			cc.Gens[g].Status = false
			if err := cc.Normalize(); err != nil {
				t.Fatalf("%s gen %d: %v", c.Name, g, err)
			}
			name := c.Name + "/genout"
			sameComplexCSC(t, name+"/Ybus", MakeYbus(view).Ybus, MakeYbus(cc).Ybus)
			if view.NG() != cc.NG() || view.NG() != c.NG()-1 {
				t.Fatalf("%s gen %d: NG %d/%d want %d", c.Name, g, view.NG(), cc.NG(), c.NG()-1)
			}
			vIdx, wIdx := GenBusIdx(view), GenBusIdx(cc)
			if len(vIdx) != len(wIdx) {
				t.Fatalf("%s gen %d: %d active gens want %d", c.Name, g, len(vIdx), len(wIdx))
			}
			for i := range vIdx {
				if vIdx[i] != wIdx[i] {
					t.Fatalf("%s gen %d: GenBusIdx[%d] = %d want %d", c.Name, g, i, vIdx[i], wIdx[i])
				}
			}
		}
	}
}

func TestWithoutGenView(t *testing.T) {
	c := Case9()
	v := c.WithoutGen(1)
	if !c.Gens[1].Status {
		t.Fatal("view mutated the base case")
	}
	if v.Gens[1].Status {
		t.Fatal("view generator still in service")
	}
	if v.NG() != c.NG()-1 {
		t.Fatalf("view NG = %d want %d", v.NG(), c.NG()-1)
	}
	// The Normalize index is shared — no re-Normalize needed.
	if v.BusIndex(c.Buses[0].ID) != 0 {
		t.Fatal("bus index lost on the view")
	}
	// Cloning the view detaches it fully (the Perturb path).
	cl := v.Clone()
	cl.Gens[0].Pg = 321
	if c.Gens[0].Pg == 321 || v.Gens[0].Pg == 321 {
		t.Fatal("clone of the view shares generator storage")
	}
}

func TestWithoutBranchView(t *testing.T) {
	c := Case9()
	v := c.WithoutBranch(3)
	if c.Branches[3].Status != true {
		t.Fatal("view mutated the base case")
	}
	if v.Branches[3].Status {
		t.Fatal("view branch still in service")
	}
	if v.NL() != c.NL()-1 {
		t.Fatalf("view NL = %d want %d", v.NL(), c.NL()-1)
	}
	// The Normalize index is shared — no re-Normalize needed.
	if v.BusIndex(c.Buses[0].ID) != 0 {
		t.Fatal("bus index lost on the view")
	}
	// Cloning the view detaches it fully (the Perturb path).
	cl := v.Clone()
	cl.Buses[0].Pd = 123
	if c.Buses[0].Pd == 123 || v.Buses[0].Pd == 123 {
		t.Fatal("clone of the view shares bus storage")
	}
}

// Fuzz-style property: for randomized outage subsets of every embedded
// system, the multi-skip connectivity check agrees with the from-scratch
// BFS on a case whose Status flags were actually flipped.
func TestConnectedWithoutRandomSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, c := range []*Case{Case9(), Case14(), Case30(), Case57()} {
		if !Connected(c) {
			t.Fatalf("%s not connected intact", c.Name)
		}
		for trial := 0; trial < 60; trial++ {
			k := 1 + rng.Intn(4)
			skip := make([]int, 0, k)
			for len(skip) < k {
				skip = append(skip, rng.Intn(len(c.Branches)))
			}
			got := ConnectedWithout(c, skip)
			cc := c.Clone()
			for _, l := range skip {
				cc.Branches[l].Status = false
			}
			if err := cc.Normalize(); err != nil {
				t.Fatal(err)
			}
			if want := Connected(cc); got != want {
				t.Fatalf("%s skip %v: ConnectedWithout = %v, rebuilt BFS = %v", c.Name, skip, got, want)
			}
		}
	}
}

// Case30 must be a well-formed, solvable embedding of the IEEE 30-bus
// system with every branch rated (the layout-changing contingency case).
func TestCase30(t *testing.T) {
	c := Case30()
	if c.NB() != 30 || c.NG() != 6 || c.NL() != 41 {
		t.Fatalf("counts %d/%d/%d want 30/6/41", c.NB(), c.NG(), c.NL())
	}
	for l, br := range c.Branches {
		if br.RateA <= 0 {
			t.Fatalf("branch %d unrated; case30 carries flow limits on every branch", l)
		}
	}
	p, q := c.TotalLoad()
	if p < 180 || p > 200 || q < 100 || q > 115 {
		t.Fatalf("total load %.1f MW %.1f MVAr outside the IEEE 30-bus range", p, q)
	}
}
