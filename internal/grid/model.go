// Package grid models AC power systems in the Matpower convention: buses,
// generators, branches on a common MVA base, the bus admittance matrices
// built from them, and the first- and second-order derivatives of power
// injections and branch flows that the AC-OPF solver and the
// physics-informed training losses both consume.
//
// Case.Clone and Case.ScaleLoads are the instance-derivation primitives
// of the ±10 % load-perturbation workload: every sample of a sweep and
// every serving-daemon request is a scaled clone of a base case, leaving
// the admittance structure shared (see opf.Rebind).
//
// The package also embeds the paper's evaluation fleet — Case5 through
// Case300, every branch rated — with provenance, units and the
// rated-branch convention documented once in cases.go.
package grid

import (
	"fmt"
	"math"
)

// BusType enumerates the classical power-flow bus categories.
type BusType int

const (
	// PQ buses have fixed load and no voltage regulation.
	PQ BusType = 1
	// PV buses hold voltage magnitude via a generator.
	PV BusType = 2
	// Ref is the slack/reference bus fixing the angle datum.
	Ref BusType = 3
)

// Bus is one network node. Powers are in MW/MVAr, voltages in per unit,
// angles in degrees (matching Matpower case files); internal computations
// convert to per-unit and radians.
type Bus struct {
	ID     int     // external bus number
	Type   BusType // PQ, PV or Ref
	Pd, Qd float64 // load, MW / MVAr
	Gs, Bs float64 // shunt conductance/susceptance, MW/MVAr at V=1 pu
	Vm     float64 // initial voltage magnitude, pu
	Va     float64 // initial voltage angle, degrees
	BaseKV float64
	Vmax   float64 // pu
	Vmin   float64 // pu
}

// Gen is a generator (or dispatchable injection) at a bus.
type Gen struct {
	Bus        int     // external bus number
	Pg, Qg     float64 // initial dispatch, MW / MVAr
	Qmax, Qmin float64 // MVAr limits
	Vg         float64 // voltage setpoint, pu
	Pmax, Pmin float64 // MW limits
	Status     bool
	Cost       PolyCost
}

// PolyCost is a polynomial generation cost c2·P² + c1·P + c0 with P in MW
// and cost in $/hr.
type PolyCost struct {
	C2, C1, C0 float64
}

// Eval returns the cost at p MW.
func (c PolyCost) Eval(p float64) float64 { return (c.C2*p+c.C1)*p + c.C0 }

// Deriv returns d cost / dP at p MW.
func (c PolyCost) Deriv(p float64) float64 { return 2*c.C2*p + c.C1 }

// Deriv2 returns d² cost / dP².
func (c PolyCost) Deriv2() float64 { return 2 * c.C2 }

// Branch is a transmission line or transformer between two buses.
type Branch struct {
	From, To int     // external bus numbers
	R, X     float64 // series impedance, pu
	B        float64 // total line charging susceptance, pu
	RateA    float64 // MVA long-term rating; 0 means unlimited
	Ratio    float64 // transformer tap ratio; 0 means 1 (a line)
	Shift    float64 // phase-shift angle, degrees
	Status   bool
}

// Case is a complete power-flow/OPF case.
type Case struct {
	Name     string
	BaseMVA  float64
	Buses    []Bus
	Gens     []Gen
	Branches []Branch

	busIdx map[int]int // external ID -> slice index, built by Normalize
}

// NB returns the number of buses.
func (c *Case) NB() int { return len(c.Buses) }

// NG returns the number of in-service generators.
func (c *Case) NG() int {
	n := 0
	for _, g := range c.Gens {
		if g.Status {
			n++
		}
	}
	return n
}

// NL returns the number of in-service branches.
func (c *Case) NL() int {
	n := 0
	for _, b := range c.Branches {
		if b.Status {
			n++
		}
	}
	return n
}

// Normalize validates the case and builds the internal bus-ID index. It
// must be called (directly or via the loaders in this package) before any
// matrix construction.
func (c *Case) Normalize() error {
	if c.BaseMVA <= 0 {
		return fmt.Errorf("grid: case %q: BaseMVA must be positive, got %v", c.Name, c.BaseMVA)
	}
	if len(c.Buses) == 0 {
		return fmt.Errorf("grid: case %q has no buses", c.Name)
	}
	c.busIdx = make(map[int]int, len(c.Buses))
	refSeen := false
	for i, b := range c.Buses {
		if _, dup := c.busIdx[b.ID]; dup {
			return fmt.Errorf("grid: case %q: duplicate bus ID %d", c.Name, b.ID)
		}
		c.busIdx[b.ID] = i
		if b.Type == Ref {
			refSeen = true
		}
		if b.Vmax < b.Vmin {
			return fmt.Errorf("grid: case %q: bus %d has Vmax < Vmin", c.Name, b.ID)
		}
	}
	if !refSeen {
		return fmt.Errorf("grid: case %q has no reference bus", c.Name)
	}
	for _, g := range c.Gens {
		if _, ok := c.busIdx[g.Bus]; !ok {
			return fmt.Errorf("grid: case %q: generator at unknown bus %d", c.Name, g.Bus)
		}
		if g.Pmax < g.Pmin || g.Qmax < g.Qmin {
			return fmt.Errorf("grid: case %q: generator at bus %d has inverted limits", c.Name, g.Bus)
		}
	}
	for i, br := range c.Branches {
		if _, ok := c.busIdx[br.From]; !ok {
			return fmt.Errorf("grid: case %q: branch %d from unknown bus %d", c.Name, i, br.From)
		}
		if _, ok := c.busIdx[br.To]; !ok {
			return fmt.Errorf("grid: case %q: branch %d to unknown bus %d", c.Name, i, br.To)
		}
		if br.Status && br.R == 0 && br.X == 0 {
			return fmt.Errorf("grid: case %q: branch %d has zero impedance", c.Name, i)
		}
	}
	return nil
}

// BusIndex returns the slice index of the bus with external ID id.
func (c *Case) BusIndex(id int) int {
	i, ok := c.busIdx[id]
	if !ok {
		panic(fmt.Sprintf("grid: unknown bus ID %d (did you call Normalize?)", id))
	}
	return i
}

// RefIndex returns the slice index of the reference bus.
func (c *Case) RefIndex() int {
	for i, b := range c.Buses {
		if b.Type == Ref {
			return i
		}
	}
	panic("grid: no reference bus")
}

// ActiveGens returns the in-service generators in order.
func (c *Case) ActiveGens() []Gen {
	out := make([]Gen, 0, len(c.Gens))
	for _, g := range c.Gens {
		if g.Status {
			out = append(out, g)
		}
	}
	return out
}

// ActiveBranches returns the in-service branches in order.
func (c *Case) ActiveBranches() []Branch {
	out := make([]Branch, 0, len(c.Branches))
	for _, b := range c.Branches {
		if b.Status {
			out = append(out, b)
		}
	}
	return out
}

// Clone returns a deep copy of the case (Normalize state included).
func (c *Case) Clone() *Case {
	cp := &Case{
		Name:     c.Name,
		BaseMVA:  c.BaseMVA,
		Buses:    append([]Bus(nil), c.Buses...),
		Gens:     append([]Gen(nil), c.Gens...),
		Branches: append([]Branch(nil), c.Branches...),
	}
	if c.busIdx != nil {
		cp.busIdx = make(map[int]int, len(c.busIdx))
		for k, v := range c.busIdx {
			cp.busIdx[k] = v
		}
	}
	return cp
}

// ScaleLoads multiplies every bus load by the per-bus factors (len NB)
// in place. It is the workload knob used for ±10 % load sampling.
func (c *Case) ScaleLoads(factors []float64) {
	if len(factors) != len(c.Buses) {
		panic("grid: ScaleLoads factor length mismatch")
	}
	for i := range c.Buses {
		c.Buses[i].Pd *= factors[i]
		c.Buses[i].Qd *= factors[i]
	}
}

// TotalLoad returns total (Pd, Qd) in MW/MVAr.
func (c *Case) TotalLoad() (p, q float64) {
	for _, b := range c.Buses {
		p += b.Pd
		q += b.Qd
	}
	return p, q
}

// Deg2Rad converts degrees to radians.
func Deg2Rad(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }
