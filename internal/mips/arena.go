package mips

import (
	"sync"

	"repro/internal/la"
	"repro/internal/sparse"
)

// Arena owns every buffer the interior-point iteration reuses: the
// dense work vectors, the two pattern-compiled assemblers (the full
// inequality Jacobian and the Newton KKT matrix), the row-major view of
// the inequality Jacobian, and the factor slot holding preallocated LU
// storage. After the first iteration compiles the assemblers and binds
// the slot, a Step performs zero heap allocations — everything the hot
// loop touches lives here (the alloc harness in the tests pins this).
//
// An Arena serves one solve at a time. Solve draws arenas from a
// package-level pool, so a worker goroutine sweeping many instances of
// one grid keeps hitting the same warm arena: the compiled assembly
// programs and bound factors carry across solves of the same problem
// structure, and the first iteration of a warm solve is as cheap as any
// other. Size or pattern changes are absorbed transparently — vectors
// regrow and assemblers recompile on the next pass.
type Arena struct {
	// Dense per-iteration vectors. lx/tmpNx are nx-sized, w/tmpNiq/
	// dz/dmu/jdx/hFull are niq-sized, rhs/dxdlam/solveWork span the KKT
	// system (nx+neq). Every entry is overwritten before use each
	// iteration, so stale values from a previous solve are harmless.
	lx, tmpNx               la.Vector
	w, tmpNiq, dz, dmu, jdx la.Vector
	hFull                   la.Vector
	rhs, dxdlam, solveWork  la.Vector

	jhNR, jhNC int
	jhAsm      *sparse.Assembler // [Jh; bound rows], niq × nx
	kktN       int
	kktAsm     *sparse.Assembler // Newton KKT matrix, (nx+neq)²
	outerVals  la.Vector         // gathered Jh row for AppendOuter, ≤ nx wide
	jhView     jhRowView
	slot       sparse.FactorSlot
	zeroHess   *sparse.CSC // cached empty nx×nx Hessian (Hess == nil)

	// Sharded KKT-assembly state (see Stepper.assembleKKTParallel):
	// per-shard gather buffers (shard s owns outerValsPar[s·nx:(s+1)·nx]),
	// the row-shard boundaries and triplet offsets recomputed each
	// iteration, per-shard deviation flags, and the fork-join runner.
	// Shards write disjoint slices only, so the zero-allocation pin and
	// the race detector both stay clean.
	outerValsPar la.Vector
	shardRow     []int
	shardOff     []int
	shardBad     []int32
	parfor       sparse.ParFor
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// grow returns v resized to n, reallocating only when capacity is
// insufficient. Contents are unspecified.
func grow(v la.Vector, n int) la.Vector {
	if cap(v) < n {
		return make(la.Vector, n)
	}
	return v[:n]
}

// ensureIneq sizes the inequality-row buffers and assembler. Called
// once per solve, as soon as the first constraint evaluation reveals
// the full inequality count.
func (a *Arena) ensureIneq(niq, nx int) {
	a.w = grow(a.w, niq)
	a.tmpNiq = grow(a.tmpNiq, niq)
	a.dz = grow(a.dz, niq)
	a.dmu = grow(a.dmu, niq)
	a.jdx = grow(a.jdx, niq)
	a.hFull = grow(a.hFull, niq)
	if a.jhAsm == nil || a.jhNR != niq || a.jhNC != nx {
		a.jhAsm = sparse.NewAssembler(niq, nx)
		a.jhNR, a.jhNC = niq, nx
	}
}

// ensureKKT sizes the KKT-system buffers and assembler.
func (a *Arena) ensureKKT(nx, neq int) {
	n := nx + neq
	a.lx = grow(a.lx, nx)
	a.tmpNx = grow(a.tmpNx, nx)
	a.rhs = grow(a.rhs, n)
	a.dxdlam = grow(a.dxdlam, n)
	a.solveWork = grow(a.solveWork, n)
	a.outerVals = grow(a.outerVals, nx)
	if a.kktAsm == nil || a.kktN != n {
		a.kktAsm = sparse.NewAssembler(n, n)
		a.kktN = n
	}
	if a.zeroHess == nil || a.zeroHess.NRows != nx {
		a.zeroHess = sparse.NewBuilder(nx, nx).ToCSC()
	}
}

// ensurePar sizes the sharded-assembly buffers for a solve running the
// given thread count.
func (a *Arena) ensurePar(threads, nx int) {
	a.outerValsPar = grow(a.outerValsPar, threads*nx)
	if cap(a.shardRow) < threads+1 {
		a.shardRow = make([]int, threads+1)
		a.shardOff = make([]int, threads+1)
	}
	a.shardRow = a.shardRow[:threads+1]
	a.shardOff = a.shardOff[:threads+1]
	if cap(a.shardBad) < threads {
		a.shardBad = make([]int32, threads)
	}
	a.shardBad = a.shardBad[:threads]
}

// jhRowView is a pattern-keyed transpose view of the row-per-constraint
// inequality Jacobian: rowPtr/colIdx walk J row by row (ascending
// variable within each row, matching the transpose's column order) and
// valPos maps each entry back to its slot in the CSC value array. The
// JᵀWJ product reads each iteration's fresh values through valPos, so
// the per-iteration jh.T() materialization the product used to pay is
// replaced by a view built once per sparsity pattern.
type jhRowView struct {
	// Snapshot of the viewed pattern; update rebuilds only when the
	// live matrix deviates from it (an O(nnz) integer compare).
	colPtr []int
	rowIdx []int

	rowPtr []int   // len nrows+1
	colIdx []int32 // variable index of each entry, row-major
	valPos []int32 // index into the viewed matrix's Val
}

func (v *jhRowView) matches(j *sparse.CSC) bool {
	if len(v.colPtr) != len(j.ColPtr) || len(v.rowIdx) != len(j.RowIdx) {
		return false
	}
	for i, p := range j.ColPtr {
		if v.colPtr[i] != p {
			return false
		}
	}
	for i, r := range j.RowIdx {
		if v.rowIdx[i] != r {
			return false
		}
	}
	return true
}

// update rebuilds the view if j's pattern changed since the last call.
func (v *jhRowView) update(j *sparse.CSC) {
	if v.matches(j) {
		return
	}
	v.colPtr = append(v.colPtr[:0], j.ColPtr...)
	v.rowIdx = append(v.rowIdx[:0], j.RowIdx...)
	nr, nnz := j.NRows, len(j.RowIdx)
	if cap(v.rowPtr) < nr+1 {
		v.rowPtr = make([]int, nr+1)
	}
	v.rowPtr = v.rowPtr[:nr+1]
	for i := range v.rowPtr {
		v.rowPtr[i] = 0
	}
	for _, r := range j.RowIdx {
		v.rowPtr[r+1]++
	}
	for r := 0; r < nr; r++ {
		v.rowPtr[r+1] += v.rowPtr[r]
	}
	if cap(v.colIdx) < nnz {
		v.colIdx = make([]int32, nnz)
		v.valPos = make([]int32, nnz)
	}
	v.colIdx = v.colIdx[:nnz]
	v.valPos = v.valPos[:nnz]
	fill := make([]int, nr)
	copy(fill, v.rowPtr[:nr])
	for col := 0; col < j.NCols; col++ {
		for p := j.ColPtr[col]; p < j.ColPtr[col+1]; p++ {
			r := j.RowIdx[p]
			v.colIdx[fill[r]] = int32(col)
			v.valPos[fill[r]] = int32(p)
			fill[r]++
		}
	}
}
