package mips

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/la"
	"repro/internal/sparse"
)

// randomConvexQP builds min ½xᵀQx + cᵀx s.t. Ax = b with Q symmetric
// positive definite, and also returns the exact solution from the dense
// KKT system [[Q Aᵀ],[A 0]]·[x;λ] = [-c; b].
func randomConvexQP(r *rand.Rand, n, m int) (*Problem, la.Vector) {
	// Q = LLᵀ + εI.
	q := la.NewMatrix(n, n)
	l := la.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			l.Set(i, j, r.NormFloat64())
		}
		l.Add(i, i, 2)
	}
	lt := l.T()
	q = l.Mul(lt)
	c := make(la.Vector, n)
	for i := range c {
		c[i] = r.NormFloat64()
	}
	a := la.NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	b := make(la.Vector, m)
	for i := range b {
		b[i] = r.NormFloat64()
	}

	// Dense KKT reference solution.
	kkt := la.NewMatrix(n+m, n+m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(i, j, q.At(i, j))
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(n+i, j, a.At(i, j))
			kkt.Set(j, n+i, a.At(i, j))
		}
	}
	rhs := make(la.Vector, n+m)
	for i := 0; i < n; i++ {
		rhs[i] = -c[i]
	}
	for i := 0; i < m; i++ {
		rhs[n+i] = b[i]
	}
	ref, err := la.Solve(kkt, rhs)
	if err != nil {
		return nil, nil
	}

	qs := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := q.At(i, j); v != 0 {
				qs.Append(i, j, v)
			}
		}
	}
	qcsc := qs.ToCSC()
	ab := sparse.NewBuilder(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if v := a.At(i, j); v != 0 {
				ab.Append(i, j, v)
			}
		}
	}
	acsc := ab.ToCSC()

	p := &Problem{
		NX: n,
		F: func(x la.Vector) (float64, la.Vector) {
			qx := qcsc.MulVec(x)
			f := 0.5*x.Dot(qx) + c.Dot(x)
			return f, qx.Add(c)
		},
		G: func(x la.Vector) (la.Vector, *sparse.CSC) {
			g := acsc.MulVec(x).Sub(b)
			return g, acsc
		},
		Hess: func(x, lam, mu la.Vector) *sparse.CSC { return qcsc },
	}
	return p, la.Vector(ref[:n])
}

// Property: MIPS recovers the exact solution of random equality-
// constrained convex QPs (verified against a dense KKT solve).
func TestQPMatchesDenseKKT(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		m := 1 + r.Intn(n-1)
		p, ref := randomConvexQP(r, n, m)
		if p == nil {
			return true // degenerate draw
		}
		res, err := Solve(p, make(la.Vector, n), nil, Options{})
		if err != nil {
			return false
		}
		return res.X.Clone().Sub(ref).NormInf() < 1e-5*(1+ref.NormInf())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding inactive bounds far from the solution changes nothing.
func TestInactiveBoundsAreNeutral(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		m := 1 + r.Intn(n-1)
		p, ref := randomConvexQP(r, n, m)
		if p == nil {
			return true
		}
		free, err := Solve(p, make(la.Vector, n), nil, Options{})
		if err != nil {
			return false
		}
		p.XMin = make(la.Vector, n)
		p.XMax = make(la.Vector, n)
		for i := 0; i < n; i++ {
			p.XMin[i] = ref[i] - 100
			p.XMax[i] = ref[i] + 100
		}
		bounded, err := Solve(p, make(la.Vector, n), nil, Options{})
		if err != nil {
			return false
		}
		return bounded.X.Clone().Sub(free.X).NormInf() < 1e-4*(1+free.X.NormInf())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Failure injection: an objective that degenerates to NaN must produce a
// clean error, never a panic or a bogus "converged" result.
func TestNaNObjectiveFailsCleanly(t *testing.T) {
	p := &Problem{
		NX: 1,
		F: func(x la.Vector) (float64, la.Vector) {
			if x[0] > 0.5 {
				return math.NaN(), la.Vector{math.NaN()}
			}
			return -x[0], la.Vector{-1} // pushes x upward into the NaN zone
		},
		Hess: func(x, lam, mu la.Vector) *sparse.CSC {
			return sparse.NewBuilder(1, 1).ToCSC()
		},
		XMin: la.Vector{0},
		XMax: la.Vector{10},
	}
	res, err := Solve(p, la.Vector{0}, nil, Options{MaxIter: 30})
	if err == nil && res.Converged {
		t.Fatal("NaN objective reported as converged")
	}
}

// Failure injection: an infeasible equality set must hit ErrMaxIter (or a
// numeric error), not claim success.
func TestInfeasibleEqualities(t *testing.T) {
	// x = 0 and x = 1 simultaneously.
	b := sparse.NewBuilder(2, 1)
	b.Append(0, 0, 1)
	b.Append(1, 0, 1)
	jac := b.ToCSC()
	p := &Problem{
		NX: 1,
		F: func(x la.Vector) (float64, la.Vector) {
			return x[0] * x[0], la.Vector{2 * x[0]}
		},
		G: func(x la.Vector) (la.Vector, *sparse.CSC) {
			return la.Vector{x[0], x[0] - 1}, jac
		},
		Hess: func(x, lam, mu la.Vector) *sparse.CSC {
			return sparse.Identity(1).Scale(2)
		},
	}
	res, err := Solve(p, la.Vector{0.5}, nil, Options{MaxIter: 25})
	if err == nil && res.Converged {
		t.Fatal("infeasible problem reported as converged")
	}
	if err != nil && !errors.Is(err, ErrMaxIter) && !errors.Is(err, ErrNumeric) {
		t.Fatalf("unexpected error type: %v", err)
	}
}
