// Package mips is a Go port of the Matpower Interior Point Solver: a
// primal–dual interior-point method for nonlinear programs
//
//	min f(x)  s.t.  g(x) = 0,  h(x) ≤ 0,  xmin ≤ x ≤ xmax.
//
// It follows the algorithm of mips.m (Wang et al., Zimmerman &
// Murillo-Sánchez): the inequality set is slacked with Z > 0 and a
// logarithmic barrier −γ·Σ ln Z is driven to zero; each iteration solves
// one Newton KKT system and damps the primal and dual steps separately so
// Z and µ stay strictly positive. Variable bounds are folded into the
// inequality set exactly as MIPS does, so the multiplier vector µ and
// slack vector Z cover both nonlinear constraints and bounds — the
// objects the Smart-PGSim network predicts.
//
// The per-iteration Newton KKT system is the solver's hot path. Its
// sparsity pattern is fixed across all iterations of a solve, so Solve
// performs one symbolic factorization (fill-reducing ordering, pattern
// analysis, pivoting) on the first iteration and numeric-only
// refactorizations after — see sparse.SymbolicCache and DESIGN.md §7.
// Options.Orderings extends the value-independent part of that reuse
// across solves that share a problem structure, Options.Ordering picks
// the fill-reducing ordering, and Options.NoKKTReuse restores the
// factor-from-scratch baseline for comparison.
package mips

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/batch"
	"repro/internal/la"
	"repro/internal/sparse"
)

// Problem defines the NLP. Jacobians are row-per-constraint (neq×nx,
// niq×nx); Hess returns the Hessian of the Lagrangian of the *nonlinear*
// parts: ∇²f + Σλᵢ∇²gᵢ + Σµᵢ∇²hᵢ (bounds are linear and excluded).
type Problem struct {
	NX int // number of variables

	// F evaluates the objective and its gradient.
	F func(x la.Vector) (f float64, df la.Vector)
	// G evaluates the nonlinear equality constraints and Jacobian
	// (may be nil when there are none).
	G func(x la.Vector) (g la.Vector, jac *sparse.CSC)
	// H evaluates the nonlinear inequality constraints h(x) ≤ 0 and
	// Jacobian (may be nil).
	H func(x la.Vector) (h la.Vector, jac *sparse.CSC)
	// Hess evaluates the Lagrangian Hessian for the given multipliers
	// (lam for G rows, mu for H rows). May be nil only if F is quadratic
	// and G/H are nil (then a finite-difference fallback is NOT provided;
	// callers must supply Hess whenever G or H is set).
	Hess func(x la.Vector, lam, mu la.Vector) *sparse.CSC

	// XMin and XMax are variable bounds; nil means unbounded. Use
	// math.Inf entries for individually unbounded variables.
	XMin, XMax la.Vector
}

// Options tunes the solver. Zero values take the MIPS defaults.
type Options struct {
	FeasTol, GradTol, CompTol, CostTol float64 // default 1e-6
	MaxIter                            int     // default 150
	Xi                                 float64 // step back-off, default 0.99995
	Sigma                              float64 // centering parameter, default 0.1
	Z0                                 float64 // initial slack scale, default 1
	Gamma0                             float64 // initial barrier; default 1 (cold start)
	RecordTrace                        bool    // keep per-iteration Trace

	// Ordering selects the fill-reducing ordering for the KKT
	// factorization. The zero value is sparse.OrderRCM, the historical
	// default. Ignored when Orderings is set (the cache's ordering wins).
	Ordering sparse.Ordering
	// Orderings, when non-nil, is a shared cache of fill-reducing
	// orderings keyed by KKT sparsity pattern. The pattern is a property
	// of the problem structure, not of its values, so one cache safely
	// serves all solves of load-perturbed instances of one grid —
	// concurrently and deterministically (opf threads its per-grid cache
	// through here). The solve's reuse counters are folded into the
	// cache when it returns.
	Orderings *sparse.OrderingCache
	// KKT, when non-nil, is a shared pivot-shaped symbolic cache (see
	// sparse.SymbolicCache.Shaped): the solve consults it through a
	// per-solve child before analyzing, so repeat solves of the same
	// KKT pattern — the whole warm-start pipeline — skip symbolic
	// analysis entirely. Shaped pivot sequences are pure functions of
	// the sparsity pattern, so sharing them across solves is exactly as
	// deterministic as sharing orderings through Orderings (opf threads
	// its per-grid cache through here).
	KKT *sparse.SymbolicCache
	// NoKKTReuse disables symbolic reuse entirely: every iteration runs
	// a from-scratch factorization (ordering, pattern analysis and
	// pivoting), exactly the pre-reuse code path. It exists as the
	// baseline for benchmarks and equivalence tests.
	NoKKTReuse bool
	// Threads requests intra-solve parallelism for the per-iteration KKT
	// kernels (assembly, factorization, triangular solves). 0 defers to
	// sparse.SolverThreads' process-wide resolution (PGSIM_SOLVER_THREADS,
	// then the cmd/* -solver-threads default); the result is capped by
	// batch.ThreadBudget so batch workers × solver threads never exceeds
	// GOMAXPROCS. Results are bit-identical at every thread count — the
	// parallel kernels are deterministic by construction (see DESIGN.md
	// §12).
	Threads int
}

func (o Options) withDefaults() Options {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&o.FeasTol, 1e-6)
	def(&o.GradTol, 1e-6)
	def(&o.CompTol, 1e-6)
	def(&o.CostTol, 1e-6)
	def(&o.Xi, 0.99995)
	def(&o.Sigma, 0.1)
	def(&o.Z0, 1)
	def(&o.Gamma0, 1)
	if o.MaxIter == 0 {
		o.MaxIter = 150
	}
	return o
}

// WarmStart seeds the interior-point iteration. Any nil field falls back
// to the cold-start default. Mu and Z must cover the full inequality set
// (nonlinear h rows first, then upper-bound rows, then lower-bound rows —
// see Result.BoundLayout).
type WarmStart struct {
	X   la.Vector
	Lam la.Vector // equality multipliers
	Mu  la.Vector // inequality multipliers (> 0)
	Z   la.Vector // slacks (> 0)
}

// IterStat is one row of the convergence trace (Figure 10 of the paper).
type IterStat struct {
	Iter      int
	StepSize  float64 // |Δx|∞ of the accepted primal step
	FeasCond  float64
	GradCond  float64
	CompCond  float64
	CostCond  float64
	Gamma     float64
	Objective float64
}

// Result reports the solver outcome.
type Result struct {
	Converged  bool
	Iterations int
	X          la.Vector
	F          float64
	Lam        la.Vector // equality multipliers
	Mu         la.Vector // full inequality multipliers (h rows + bounds)
	Z          la.Vector // full slack vector
	MuUpper    la.Vector // per-variable upper-bound multipliers (len nx)
	MuLower    la.Vector // per-variable lower-bound multipliers (len nx)
	Trace      []IterStat
	// NIqNonlin is the number of nonlinear inequality rows; bound rows
	// follow in Mu/Z (upper bounds then lower bounds, finite only).
	NIqNonlin int
	// UpperIdx/LowerIdx give the variable index of each bound row.
	UpperIdx, LowerIdx []int
}

// ErrNumeric is returned when the KKT system cannot be solved.
var ErrNumeric = errors.New("mips: numerical failure in KKT solve")

// kktStaticReg is the static regularization −δ placed on the equality
// block's diagonal, making the KKT matrix symmetric quasi-definite
// (Vanderbei 1995): every diagonal pivot order then exists, which is
// what lets the shaped symbolic analysis freeze diagonal pivots and the
// minimum-degree ordering deliver its predicted fill. The value is far
// below the solver tolerances; the pivot-decay guard plus value-pivoted
// re-analysis fallback covers the rare iterate that still rejects a
// diagonal sequence.
const kktStaticReg = 1e-8

// ErrMaxIter is returned when the iteration limit is reached.
var ErrMaxIter = errors.New("mips: maximum iterations reached without convergence")

// Solve runs the primal–dual interior-point iteration from x0 (or the
// warm start, if ws is non-nil). It is a Stepper run to completion,
// drawing its Arena from a package-level pool: a worker goroutine
// sweeping many instances of one grid keeps reusing the same compiled
// assembly programs and factor storage, so every solve after the first
// runs its iterations allocation-free.
func Solve(p *Problem, x0 la.Vector, ws *WarmStart, opt Options) (*Result, error) {
	ar := arenaPool.Get().(*Arena)
	defer arenaPool.Put(ar)
	s := newStepper(p, x0, ws, opt, ar)
	defer s.flushStats()
	for {
		done, err := s.Step()
		if done {
			return s.Result(), err
		}
	}
}

// Stepper drives the interior-point iteration one Newton step at a
// time. NewStepper performs Solve's setup (bound indexing, warm-start
// seeding, the first constraint evaluation); each Step then executes
// exactly one iteration of the main loop — convergence test, KKT
// assembly, factorization, damped update — and reports whether the
// solve terminated. Solve is a Stepper run to completion; the seam
// exists so harnesses can meter single iterations. In particular the
// allocation tests hold a Stepper at a numerical fixed point (by making
// the tolerances unreachable) and assert that a steady-state Step — the
// full assemble/factor/solve/update cycle — performs zero heap
// allocations. RecordTrace is the one exception: appending a trace row
// grows a slice.
type Stepper struct {
	p   *Problem
	opt Options
	ar  *Arena

	nx, neq, niq, nh   int
	threads            int              // resolved solver thread count for this solve
	outerFn            func(lo, hi int) // sharded outer-product body (threads > 1)
	upperIdx, lowerIdx []int

	// Iterates. x, lam, mu and z are owned by (and aliased into) res;
	// everything transient lives in the arena.
	x, lam, mu, z la.Vector
	g, h          la.Vector
	jg, jh        *sparse.CSC
	f, f0         float64
	df            la.Vector
	gamma, regKKT float64

	kktCache  *sparse.SymbolicCache
	oc        *sparse.OrderingCache // receives kktCache's stats on finish
	res       *Result
	iter      int
	done      bool
	err       error
	statsDone bool
}

// NewStepper prepares a solve of p from x0 (or ws) without running any
// iterations. The Stepper owns a private Arena; callers that want the
// pooled-arena fast path use Solve.
func NewStepper(p *Problem, x0 la.Vector, ws *WarmStart, opt Options) *Stepper {
	return newStepper(p, x0, ws, opt, new(Arena))
}

func newStepper(p *Problem, x0 la.Vector, ws *WarmStart, opt Options, ar *Arena) *Stepper {
	opt = opt.withDefaults()
	nx := p.NX
	if len(x0) != nx {
		panic(fmt.Sprintf("mips: x0 length %d != NX %d", len(x0), nx))
	}
	s := &Stepper{p: p, opt: opt, ar: ar, nx: nx}

	// Index the finite bounds once; they become linear inequality rows.
	for i := 0; i < nx; i++ {
		if p.XMax != nil && !math.IsInf(p.XMax[i], 1) {
			s.upperIdx = append(s.upperIdx, i)
		}
	}
	for i := 0; i < nx; i++ {
		if p.XMin != nil && !math.IsInf(p.XMin[i], -1) {
			s.lowerIdx = append(s.lowerIdx, i)
		}
	}

	s.x = x0.Clone()
	if ws != nil && ws.X != nil {
		s.x = ws.X.Clone()
	}
	// Keep the start strictly usable: clip into bounds.
	clipBounds(s.x, p.XMin, p.XMax)

	s.evalGH()
	s.neq, s.niq = len(s.g), len(s.h)
	s.nh = s.niq - len(s.upperIdx) - len(s.lowerIdx)
	ar.ensureKKT(nx, s.neq)

	// Resolve the solver thread count once per solve: the explicit
	// option (or the process-wide default), capped against the batch
	// worker pools currently running so nested parallelism never
	// oversubscribes the machine.
	s.SetThreads(batch.ThreadBudget(sparse.SolverThreads(opt.Threads)))

	// Initialize slacks and multipliers (mips.m defaults).
	s.z = make(la.Vector, s.niq)
	s.mu = make(la.Vector, s.niq)
	s.gamma = opt.Gamma0
	for k := 0; k < s.niq; k++ {
		s.z[k] = opt.Z0
		if s.h[k] < -opt.Z0 {
			s.z[k] = -s.h[k]
		}
	}
	for k := 0; k < s.niq; k++ {
		s.mu[k] = opt.Z0
		if s.gamma/s.z[k] > opt.Z0 {
			s.mu[k] = s.gamma / s.z[k]
		}
	}
	s.lam = make(la.Vector, s.neq)
	if ws != nil {
		if ws.Lam != nil {
			if len(ws.Lam) != s.neq {
				panic("mips: warm-start Lam length mismatch")
			}
			s.lam = ws.Lam.Clone()
		}
		if ws.Mu != nil {
			if len(ws.Mu) != s.niq {
				panic("mips: warm-start Mu length mismatch")
			}
			for k := range s.mu {
				s.mu[k] = math.Max(ws.Mu[k], 1e-10)
			}
		}
		if ws.Z != nil {
			if len(ws.Z) != s.niq {
				panic("mips: warm-start Z length mismatch")
			}
			for k := range s.z {
				s.z[k] = math.Max(ws.Z[k], 1e-10)
			}
		}
		if ws.Mu != nil && ws.Z != nil && s.niq > 0 {
			// Barrier consistent with the supplied point; this is what
			// lets a high-quality warm start converge in a few steps.
			s.gamma = math.Max(opt.Sigma*s.z.Dot(s.mu)/float64(s.niq), 1e-12)
		}
	}

	s.res = &Result{
		X: s.x, Lam: s.lam, Mu: s.mu, Z: s.z,
		NIqNonlin: s.nh, UpperIdx: s.upperIdx, LowerIdx: s.lowerIdx,
	}
	s.f, s.df = p.F(s.x)
	s.f0 = s.f

	// One symbolic analysis serves every iteration of this solve: the
	// KKT pattern is fixed — the static dual regularization keeps the
	// full diagonal structurally present, so even the Tikhonov-retry
	// variant reuses the same pattern. Analysis is pivot-shaped (frozen
	// pivots come from the pattern-derived surrogate, not this solve\'s
	// values), which keeps results independent of solve order and lets
	// a shared opt.KKT cache amortize the analysis across the whole
	// warm-start pipeline; without one, a per-solve shaped cache
	// reproduces the same pivot sequences from scratch.
	if !opt.NoKKTReuse {
		switch {
		case opt.KKT != nil:
			s.kktCache = opt.KKT.NewChild()
			s.oc = opt.Orderings
		case opt.Orderings != nil:
			s.kktCache = sparse.NewSymbolicCacheFrom(opt.Orderings, 1.0).Shaped()
			s.oc = opt.Orderings
		default:
			s.kktCache = sparse.NewSymbolicCache(opt.Ordering, 1.0).Shaped()
		}
	}
	return s
}

// Result returns the solve state. Its X/Lam/Mu/Z alias the live
// iterates until Step reports done.
func (s *Stepper) Result() *Result { return s.res }

// SetThreads overrides the solve's resolved solver thread count —
// factorization, triangular solves and KKT assembly all follow it from
// the next Step on. NewStepper calls it with the Options.Threads
// resolution; harnesses (equivalence tests, benchmarks) call it
// directly to pin a thread count regardless of the host's GOMAXPROCS,
// which is safe because every parallel kernel is bit-identical to its
// serial counterpart at any count.
func (s *Stepper) SetThreads(t int) {
	if t < 1 {
		t = 1
	}
	s.threads = t
	s.ar.slot.SetThreads(t)
	s.outerFn = nil
	if t > 1 {
		s.ar.ensurePar(t, s.nx)
		// The shard body is bound once per call; each Step reuses it
		// through the arena's fork-join runner without allocating.
		s.outerFn = func(lo, hi int) {
			for sh := lo; sh < hi; sh++ {
				s.stampOuterShard(sh)
			}
		}
	}
}

// flushStats folds the per-solve symbolic-cache counters into the
// shared ordering cache, once.
func (s *Stepper) flushStats() {
	if s.statsDone || s.oc == nil || s.kktCache == nil {
		return
	}
	s.statsDone = true
	s.oc.AddSolveStats(s.kktCache.Stats())
}

// finish records the terminal state. Bound multipliers are split back
// out per variable only on convergence, matching Solve\'s contract.
func (s *Stepper) finish(err error) (bool, error) {
	s.done, s.err = true, err
	res := s.res
	res.F = s.f
	if res.Converged {
		res.MuUpper = make(la.Vector, s.nx)
		res.MuLower = make(la.Vector, s.nx)
		for k, i := range s.upperIdx {
			res.MuUpper[i] = s.mu[s.nh+k]
		}
		off := s.nh + len(s.upperIdx)
		for k, i := range s.lowerIdx {
			res.MuLower[i] = s.mu[off+k]
		}
	}
	s.flushStats()
	return true, s.err
}

// Step executes one iteration of the interior-point loop (a KKT
// factorization failure consumes an iteration and retries with
// escalating Tikhonov regularization, exactly as the historical loop
// did). It returns done=true with the terminal error — nil on
// convergence — after which further calls are no-ops.
func (s *Stepper) Step() (bool, error) {
	if s.done {
		return true, s.err
	}
	p, opt, ar := s.p, &s.opt, s.ar
	nx, neq, niq := s.nx, s.neq, s.niq

	// Lagrangian gradient Lx = df + Jgᵀλ + Jhᵀµ.
	lx := ar.lx
	copy(lx, s.df)
	if s.jg != nil {
		s.jg.MulVecTInto(ar.tmpNx, s.lam)
		lx.Add(ar.tmpNx)
	}
	s.jh.MulVecTInto(ar.tmpNx, s.mu)
	lx.Add(ar.tmpNx)

	maxH := math.Inf(-1)
	if niq == 0 {
		maxH = 0
	}
	for _, v := range s.h {
		if v > maxH {
			maxH = v
		}
	}
	feas := math.Max(s.g.NormInf(), maxH) / (1 + math.Max(s.x.NormInf(), s.z.NormInf()))
	grad := lx.NormInf() / (1 + math.Max(s.lam.NormInf(), s.mu.NormInf()))
	comp := 0.0
	if niq > 0 {
		comp = s.z.Dot(s.mu) / (1 + s.x.NormInf())
	}
	cost := math.Abs(s.f-s.f0) / (1 + math.Abs(s.f0))
	s.res.Iterations = s.iter

	if opt.RecordTrace {
		s.res.Trace = append(s.res.Trace, IterStat{
			Iter: s.iter, FeasCond: feas, GradCond: grad,
			CompCond: comp, CostCond: cost, Gamma: s.gamma, Objective: s.f,
		})
	}
	if feas < opt.FeasTol && grad < opt.GradTol && comp < opt.CompTol &&
		cost < opt.CostTol {
		s.res.Converged = true
		return s.finish(nil)
	}
	if s.iter == opt.MaxIter {
		return s.finish(ErrMaxIter)
	}
	if s.x.HasNaN() || s.lam.HasNaN() || s.mu.HasNaN() {
		return s.finish(fmt.Errorf("%w: NaN in iterates at iteration %d", ErrNumeric, s.iter))
	}

	// Newton KKT system, assembled in one compiled pass: the (1,1)
	// block JhᵀWJh + ∇²L + regKKT·I, the Jg borders, and the grounded
	// diagonal. The append sequence is identical every iteration —
	// regKKT·I is stamped even at regKKT = 0 (it doubles as the primal
	// block\'s structural-diagonal grounding), and W = µ/Z is strictly
	// positive so no product row is ever skipped — which keeps the
	// assembler on its verified O(nnz) stamp path.
	lxx := s.hessOrZero()
	w := ar.w
	for k := 0; k < niq; k++ {
		w[k] = s.mu[k] / s.z[k]
	}
	ar.jhView.update(s.jh)
	var kkt *sparse.CSC
	if s.threads > 1 && ar.kktAsm.Compiled() {
		// Sharded stamp over the compiled append sequence; nil means the
		// sequence deviated (pattern drift) — replay serially below.
		kkt = s.assembleKKTParallel(lxx)
	}
	if kkt == nil {
		view := &ar.jhView
		asm := ar.kktAsm
		asm.Begin()
		jhVal := s.jh.Val
		for r := 0; r < niq; r++ {
			lo, hi := view.rowPtr[r], view.rowPtr[r+1]
			rv := ar.outerVals[:hi-lo]
			for t, p := 0, lo; p < hi; p, t = p+1, t+1 {
				rv[t] = jhVal[view.valPos[p]]
			}
			asm.AppendOuter(w[r], view.colIdx[lo:hi], rv)
		}
		asm.AppendCSC(0, 0, 1, lxx)
		for i := 0; i < nx; i++ {
			asm.Append(i, i, s.regKKT)
		}
		if s.jg != nil {
			asm.AppendCSC(nx, 0, 1, s.jg)
			for j := 0; j < s.jg.NCols; j++ {
				for q := s.jg.ColPtr[j]; q < s.jg.ColPtr[j+1]; q++ {
					asm.Append(j, nx+s.jg.RowIdx[q], s.jg.Val[q])
				}
			}
		}
		// Ground the dual diagonal with the static −δ regularization: the
		// quasi-definite diagonal keeps shaped pivot sequences on the
		// diagonal, where minimum-degree fill predictions hold —
		// severalfold less fill than pivoting off an empty dual diagonal —
		// and makes the pattern invariant under the Tikhonov retry, so one
		// symbolic analysis covers every iteration of every solve. δ only
		// perturbs the step O(δ·‖Δ‖), far below the convergence tolerances.
		for i := 0; i < neq; i++ {
			asm.Append(nx+i, nx+i, -kktStaticReg)
		}
		kkt = asm.Finish()
	}

	rhs := ar.rhs
	for k := 0; k < niq; k++ {
		ar.tmpNiq[k] = (s.mu[k]*s.h[k] + s.gamma) / s.z[k]
	}
	s.jh.MulVecTInto(ar.tmpNx, ar.tmpNiq)
	for i := 0; i < nx; i++ {
		rhs[i] = -(lx[i] + ar.tmpNx[i])
	}
	for i := 0; i < neq; i++ {
		rhs[nx+i] = -s.g[i]
	}

	var fac *sparse.LUFactors
	var ferr error
	if opt.NoKKTReuse {
		fac, ferr = sparse.FactorizeOpts(kkt, opt.Ordering, 1.0)
	} else {
		fac, ferr = s.kktCache.FactorizeInto(&ar.slot, kkt)
	}
	if ferr != nil {
		// Retry the same iterate with escalating Tikhonov
		// regularization on the (1,1) block.
		if s.regKKT == 0 {
			s.regKKT = 1e-8
		} else {
			s.regKKT *= 100
		}
		if s.regKKT > 1e-2 {
			return s.finish(fmt.Errorf("%w: %v", ErrNumeric, ferr))
		}
		s.iter++
		return false, nil
	}
	// The slot routes the solve through the level-scheduled parallel
	// sweeps when its thread count and the pattern's schedule warrant
	// them; for foreign factors (the NoKKTReuse baseline) or serial
	// slots it falls back to the factor's own serial sweeps. Either
	// path is bit-identical.
	ar.slot.SolveInto(fac, ar.dxdlam, rhs, ar.solveWork)

	dx := ar.dxdlam[:nx]
	dlam := ar.dxdlam[nx:]
	dz, dmu := ar.dz, ar.dmu
	s.jh.MulVecInto(ar.jdx, dx)
	for k := 0; k < niq; k++ {
		dz[k] = -s.h[k] - s.z[k] - ar.jdx[k]
	}
	for k := 0; k < niq; k++ {
		dmu[k] = -s.mu[k] + (s.gamma-s.mu[k]*dz[k])/s.z[k]
	}

	// Fraction-to-the-boundary step lengths.
	alphaP, alphaD := 1.0, 1.0
	for k := 0; k < niq; k++ {
		if dz[k] < 0 {
			if a := opt.Xi * s.z[k] / -dz[k]; a < alphaP {
				alphaP = a
			}
		}
		if dmu[k] < 0 {
			if a := opt.Xi * s.mu[k] / -dmu[k]; a < alphaD {
				alphaD = a
			}
		}
	}

	s.x.AddScaled(alphaP, dx)
	s.z.AddScaled(alphaP, dz)
	s.lam.AddScaled(alphaD, dlam)
	s.mu.AddScaled(alphaD, dmu)
	if niq > 0 {
		s.gamma = opt.Sigma * s.z.Dot(s.mu) / float64(niq)
	}
	if opt.RecordTrace {
		s.res.Trace[len(s.res.Trace)-1].StepSize = dx.NormInf() * alphaP
	}

	s.f0 = s.f
	s.f, s.df = p.F(s.x)
	s.evalGH()
	s.iter++
	return false, nil
}

// assembleKKTParallel builds the iteration's KKT matrix as a stamped
// pass over the assembler's compiled append sequence, in three phases:
// the Σ w·JhᵀJh outer products sharded by row range across the solver
// threads (phase A — the m² work that dominates assembly), the serial
// tail blocks (phase B — Hessian, regularization diagonal, Jg borders,
// dual grounding), and a parallel slot reduction (phase C — each matrix
// entry assigned the append-order sum of its triplets). The result is
// bit-identical to the serial Append pass: phases A and B write the
// same triplet values the appends would, and the reduction sums them in
// the same order. Shards write only their own triplet range and gather
// buffer, preserving the zero-allocation and race-free pins.
//
// Returns nil when the compiled sequence no longer matches this
// iteration's appends (first iteration, pattern drift) — the caller
// then replays the identical sequence through the serial path, which
// recompiles it.
func (s *Stepper) assembleKKTParallel(lxx *sparse.CSC) *sparse.CSC {
	ar := s.ar
	view := &ar.jhView
	asm := ar.kktAsm
	nx, neq, niq := s.nx, s.neq, s.niq
	t := s.threads

	// Shard rows so each gets ~1/t of the Σm² triplet work, recording
	// each shard's starting triplet offset.
	var totalSq int
	for r := 0; r < niq; r++ {
		m := view.rowPtr[r+1] - view.rowPtr[r]
		totalSq += m * m
	}
	per := totalSq/t + 1
	ar.shardRow[0], ar.shardOff[0] = 0, 0
	sh, acc := 1, 0
	for r := 0; r < niq && sh < t; r++ {
		m := view.rowPtr[r+1] - view.rowPtr[r]
		acc += m * m
		if acc >= per*sh {
			ar.shardRow[sh], ar.shardOff[sh] = r+1, acc
			sh++
		}
	}
	for ; sh <= t; sh++ {
		ar.shardRow[sh], ar.shardOff[sh] = niq, totalSq
	}
	for i := range ar.shardBad {
		ar.shardBad[i] = 0
	}

	// Phase A: stamp the outer products, one shard per participant.
	ar.parfor.Run(t, t, 1, s.outerFn)
	for _, bad := range ar.shardBad {
		if bad != 0 {
			return nil
		}
	}

	// Phase B: the serial tail, continuing at the first post-outer
	// triplet — the same append sequence as the serial path.
	k, ok := asm.StampCSCAt(totalSq, 0, 0, 1, lxx)
	for i := 0; ok && i < nx; i++ {
		k, ok = asm.StampAt(k, i, i, s.regKKT)
	}
	if ok && s.jg != nil {
		k, ok = asm.StampCSCAt(k, nx, 0, 1, s.jg)
		for j := 0; ok && j < s.jg.NCols; j++ {
			for q := s.jg.ColPtr[j]; ok && q < s.jg.ColPtr[j+1]; q++ {
				k, ok = asm.StampAt(k, j, nx+s.jg.RowIdx[q], s.jg.Val[q])
			}
		}
	}
	for i := 0; ok && i < neq; i++ {
		k, ok = asm.StampAt(k, nx+i, nx+i, -kktStaticReg)
	}
	if !ok {
		return nil
	}

	// Phase C: reduce triplets into matrix values, in append order.
	kkt, ok := asm.FinishStamped(k, t)
	if !ok {
		return nil
	}
	return kkt
}

// stampOuterShard gathers and stamps one row shard of the weighted
// JhᵀJh outer products into the compiled KKT sequence. Each shard owns
// its own gather buffer and triplet range; a coordinate deviation sets
// the shard's flag and abandons the shard.
func (s *Stepper) stampOuterShard(sh int) {
	ar := s.ar
	view := &ar.jhView
	asm := ar.kktAsm
	jhVal := s.jh.Val
	w := ar.w
	buf := ar.outerValsPar[sh*s.nx : (sh+1)*s.nx]
	k := ar.shardOff[sh]
	for r := ar.shardRow[sh]; r < ar.shardRow[sh+1]; r++ {
		lo, hi := view.rowPtr[r], view.rowPtr[r+1]
		rv := buf[:hi-lo]
		for t, p := 0, lo; p < hi; p, t = p+1, t+1 {
			rv[t] = jhVal[view.valPos[p]]
		}
		var ok bool
		if k, ok = asm.StampOuterAt(k, w[r], view.colIdx[lo:hi], rv); !ok {
			ar.shardBad[sh] = 1
			return
		}
	}
}

// evalGH evaluates the nonlinear constraints and assembles the full
// inequality system — nonlinear h rows first, then upper- and
// lower-bound rows — into the arena\'s compiled assembler and residual
// buffer.
func (s *Stepper) evalGH() {
	var h la.Vector
	var jh *sparse.CSC
	if s.p.G != nil {
		s.g, s.jg = s.p.G(s.x)
	}
	if s.p.H != nil {
		h, jh = s.p.H(s.x)
	}
	nh := len(h)
	niq := nh + len(s.upperIdx) + len(s.lowerIdx)
	ar := s.ar
	ar.ensureIneq(niq, s.nx)
	copy(ar.hFull, h)
	asm := ar.jhAsm
	asm.Begin()
	if jh != nil {
		asm.AppendCSC(0, 0, 1, jh)
	}
	for k, i := range s.upperIdx {
		ar.hFull[nh+k] = s.x[i] - s.p.XMax[i]
		asm.Append(nh+k, i, 1)
	}
	off := nh + len(s.upperIdx)
	for k, i := range s.lowerIdx {
		ar.hFull[off+k] = s.p.XMin[i] - s.x[i]
		asm.Append(off+k, i, -1)
	}
	s.h = ar.hFull
	s.jh = asm.Finish()
}

func (s *Stepper) hessOrZero() *sparse.CSC {
	if s.p.Hess == nil {
		return s.ar.zeroHess
	}
	// Only the nonlinear inequality multipliers reach the Hessian.
	return s.p.Hess(s.x, s.lam, s.mu[:s.nh])
}

// jtDiagJ computes Jᵀ·diag(w)·J for a row-per-constraint Jacobian. It
// is the reference implementation the tests pin the arena\'s view-based
// KKT assembly against; the solver itself streams the product straight
// into its compiled assembler (see Step).
func jtDiagJ(j *sparse.CSC, w la.Vector) *sparse.CSC {
	// Work row-wise: columns of Jᵀ are rows of J.
	jt := j.T() // nx × niq: column r holds row r of J
	nx := j.NCols
	b := sparse.NewBuilder(nx, nx)
	for r := 0; r < jt.NCols; r++ {
		wr := w[r]
		if wr == 0 {
			continue
		}
		lo, hi := jt.ColPtr[r], jt.ColPtr[r+1]
		for p1 := lo; p1 < hi; p1++ {
			for p2 := lo; p2 < hi; p2++ {
				b.Append(jt.RowIdx[p1], jt.RowIdx[p2], wr*jt.Val[p1]*jt.Val[p2])
			}
		}
	}
	return b.ToCSC()
}

func clipBounds(x, xmin, xmax la.Vector) {
	for i := range x {
		if xmin != nil && x[i] < xmin[i] {
			x[i] = xmin[i]
		}
		if xmax != nil && x[i] > xmax[i] {
			x[i] = xmax[i]
		}
	}
}
