// Package mips is a Go port of the Matpower Interior Point Solver: a
// primal–dual interior-point method for nonlinear programs
//
//	min f(x)  s.t.  g(x) = 0,  h(x) ≤ 0,  xmin ≤ x ≤ xmax.
//
// It follows the algorithm of mips.m (Wang et al., Zimmerman &
// Murillo-Sánchez): the inequality set is slacked with Z > 0 and a
// logarithmic barrier −γ·Σ ln Z is driven to zero; each iteration solves
// one Newton KKT system and damps the primal and dual steps separately so
// Z and µ stay strictly positive. Variable bounds are folded into the
// inequality set exactly as MIPS does, so the multiplier vector µ and
// slack vector Z cover both nonlinear constraints and bounds — the
// objects the Smart-PGSim network predicts.
//
// The per-iteration Newton KKT system is the solver's hot path. Its
// sparsity pattern is fixed across all iterations of a solve, so Solve
// performs one symbolic factorization (fill-reducing ordering, pattern
// analysis, pivoting) on the first iteration and numeric-only
// refactorizations after — see sparse.SymbolicCache and DESIGN.md §7.
// Options.Orderings extends the value-independent part of that reuse
// across solves that share a problem structure, Options.Ordering picks
// the fill-reducing ordering, and Options.NoKKTReuse restores the
// factor-from-scratch baseline for comparison.
package mips

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/la"
	"repro/internal/sparse"
)

// Problem defines the NLP. Jacobians are row-per-constraint (neq×nx,
// niq×nx); Hess returns the Hessian of the Lagrangian of the *nonlinear*
// parts: ∇²f + Σλᵢ∇²gᵢ + Σµᵢ∇²hᵢ (bounds are linear and excluded).
type Problem struct {
	NX int // number of variables

	// F evaluates the objective and its gradient.
	F func(x la.Vector) (f float64, df la.Vector)
	// G evaluates the nonlinear equality constraints and Jacobian
	// (may be nil when there are none).
	G func(x la.Vector) (g la.Vector, jac *sparse.CSC)
	// H evaluates the nonlinear inequality constraints h(x) ≤ 0 and
	// Jacobian (may be nil).
	H func(x la.Vector) (h la.Vector, jac *sparse.CSC)
	// Hess evaluates the Lagrangian Hessian for the given multipliers
	// (lam for G rows, mu for H rows). May be nil only if F is quadratic
	// and G/H are nil (then a finite-difference fallback is NOT provided;
	// callers must supply Hess whenever G or H is set).
	Hess func(x la.Vector, lam, mu la.Vector) *sparse.CSC

	// XMin and XMax are variable bounds; nil means unbounded. Use
	// math.Inf entries for individually unbounded variables.
	XMin, XMax la.Vector
}

// Options tunes the solver. Zero values take the MIPS defaults.
type Options struct {
	FeasTol, GradTol, CompTol, CostTol float64 // default 1e-6
	MaxIter                            int     // default 150
	Xi                                 float64 // step back-off, default 0.99995
	Sigma                              float64 // centering parameter, default 0.1
	Z0                                 float64 // initial slack scale, default 1
	Gamma0                             float64 // initial barrier; default 1 (cold start)
	RecordTrace                        bool    // keep per-iteration Trace

	// Ordering selects the fill-reducing ordering for the KKT
	// factorization. The zero value is sparse.OrderRCM, the historical
	// default. Ignored when Orderings is set (the cache's ordering wins).
	Ordering sparse.Ordering
	// Orderings, when non-nil, is a shared cache of fill-reducing
	// orderings keyed by KKT sparsity pattern. The pattern is a property
	// of the problem structure, not of its values, so one cache safely
	// serves all solves of load-perturbed instances of one grid —
	// concurrently and deterministically (opf threads its per-grid cache
	// through here). The solve's reuse counters are folded into the
	// cache when it returns.
	Orderings *sparse.OrderingCache
	// NoKKTReuse disables symbolic reuse entirely: every iteration runs
	// a from-scratch factorization (ordering, pattern analysis and
	// pivoting), exactly the pre-reuse code path. It exists as the
	// baseline for benchmarks and equivalence tests.
	NoKKTReuse bool
}

func (o Options) withDefaults() Options {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&o.FeasTol, 1e-6)
	def(&o.GradTol, 1e-6)
	def(&o.CompTol, 1e-6)
	def(&o.CostTol, 1e-6)
	def(&o.Xi, 0.99995)
	def(&o.Sigma, 0.1)
	def(&o.Z0, 1)
	def(&o.Gamma0, 1)
	if o.MaxIter == 0 {
		o.MaxIter = 150
	}
	return o
}

// WarmStart seeds the interior-point iteration. Any nil field falls back
// to the cold-start default. Mu and Z must cover the full inequality set
// (nonlinear h rows first, then upper-bound rows, then lower-bound rows —
// see Result.BoundLayout).
type WarmStart struct {
	X   la.Vector
	Lam la.Vector // equality multipliers
	Mu  la.Vector // inequality multipliers (> 0)
	Z   la.Vector // slacks (> 0)
}

// IterStat is one row of the convergence trace (Figure 10 of the paper).
type IterStat struct {
	Iter      int
	StepSize  float64 // |Δx|∞ of the accepted primal step
	FeasCond  float64
	GradCond  float64
	CompCond  float64
	CostCond  float64
	Gamma     float64
	Objective float64
}

// Result reports the solver outcome.
type Result struct {
	Converged  bool
	Iterations int
	X          la.Vector
	F          float64
	Lam        la.Vector // equality multipliers
	Mu         la.Vector // full inequality multipliers (h rows + bounds)
	Z          la.Vector // full slack vector
	MuUpper    la.Vector // per-variable upper-bound multipliers (len nx)
	MuLower    la.Vector // per-variable lower-bound multipliers (len nx)
	Trace      []IterStat
	// NIqNonlin is the number of nonlinear inequality rows; bound rows
	// follow in Mu/Z (upper bounds then lower bounds, finite only).
	NIqNonlin int
	// UpperIdx/LowerIdx give the variable index of each bound row.
	UpperIdx, LowerIdx []int
}

// ErrNumeric is returned when the KKT system cannot be solved.
var ErrNumeric = errors.New("mips: numerical failure in KKT solve")

// ErrMaxIter is returned when the iteration limit is reached.
var ErrMaxIter = errors.New("mips: maximum iterations reached without convergence")

// Solve runs the primal–dual interior-point iteration from x0 (or the
// warm start, if ws is non-nil).
func Solve(p *Problem, x0 la.Vector, ws *WarmStart, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	nx := p.NX
	if len(x0) != nx {
		panic(fmt.Sprintf("mips: x0 length %d != NX %d", len(x0), nx))
	}

	// Index the finite bounds once; they become linear inequality rows.
	var upperIdx, lowerIdx []int
	for i := 0; i < nx; i++ {
		if p.XMax != nil && !math.IsInf(p.XMax[i], 1) {
			upperIdx = append(upperIdx, i)
		}
	}
	for i := 0; i < nx; i++ {
		if p.XMin != nil && !math.IsInf(p.XMin[i], -1) {
			lowerIdx = append(lowerIdx, i)
		}
	}

	x := x0.Clone()
	if ws != nil && ws.X != nil {
		x = ws.X.Clone()
	}
	// Keep the start strictly usable: clip into bounds.
	clipBounds(x, p.XMin, p.XMax)

	evalGH := func(x la.Vector) (g la.Vector, jg *sparse.CSC, h la.Vector, jh *sparse.CSC) {
		if p.G != nil {
			g, jg = p.G(x)
		}
		if p.H != nil {
			h, jh = p.H(x)
		}
		// Append bound rows: x - xmax ≤ 0 and xmin - x ≤ 0.
		nh := len(h)
		niq := nh + len(upperIdx) + len(lowerIdx)
		hFull := make(la.Vector, niq)
		copy(hFull, h)
		jb := sparse.NewBuilder(niq, nx)
		if jh != nil {
			jb.AppendCSC(0, 0, 1, jh)
		}
		for k, i := range upperIdx {
			hFull[nh+k] = x[i] - p.XMax[i]
			jb.Append(nh+k, i, 1)
		}
		off := nh + len(upperIdx)
		for k, i := range lowerIdx {
			hFull[off+k] = p.XMin[i] - x[i]
			jb.Append(off+k, i, -1)
		}
		return g, jg, hFull, jb.ToCSC()
	}

	g, jg, h, jh := evalGH(x)
	neq, niq := len(g), len(h)
	nh := niq - len(upperIdx) - len(lowerIdx)

	// Initialize slacks and multipliers (mips.m defaults).
	z := make(la.Vector, niq)
	mu := make(la.Vector, niq)
	gamma := opt.Gamma0
	for k := 0; k < niq; k++ {
		z[k] = opt.Z0
		if h[k] < -opt.Z0 {
			z[k] = -h[k]
		}
	}
	for k := 0; k < niq; k++ {
		mu[k] = opt.Z0
		if gamma/z[k] > opt.Z0 {
			mu[k] = gamma / z[k]
		}
	}
	lam := make(la.Vector, neq)
	if ws != nil {
		if ws.Lam != nil {
			if len(ws.Lam) != neq {
				panic("mips: warm-start Lam length mismatch")
			}
			lam = ws.Lam.Clone()
		}
		if ws.Mu != nil {
			if len(ws.Mu) != niq {
				panic("mips: warm-start Mu length mismatch")
			}
			for k := range mu {
				mu[k] = math.Max(ws.Mu[k], 1e-10)
			}
		}
		if ws.Z != nil {
			if len(ws.Z) != niq {
				panic("mips: warm-start Z length mismatch")
			}
			for k := range z {
				z[k] = math.Max(ws.Z[k], 1e-10)
			}
		}
		if ws.Mu != nil && ws.Z != nil && niq > 0 {
			// Barrier consistent with the supplied point; this is what
			// lets a high-quality warm start converge in a few steps.
			gamma = math.Max(opt.Sigma*z.Dot(mu)/float64(niq), 1e-12)
		}
	}

	res := &Result{
		X: x, Lam: lam, Mu: mu, Z: z,
		NIqNonlin: nh, UpperIdx: upperIdx, LowerIdx: lowerIdx,
	}

	f, df := p.F(x)
	f0 := f
	regKKT := 0.0 // escalating Tikhonov regularization after KKT failures

	// One symbolic analysis serves every iteration of this solve: the
	// KKT pattern is fixed (the Tikhonov-regularized variant is a second
	// pattern the cache also retains). The cache is per-solve on purpose —
	// its frozen pivot sequence comes from this solve's own first
	// iteration, so results cannot depend on other solves' values; only
	// the value-independent ordering is shared through opt.Orderings.
	var kktCache *sparse.SymbolicCache
	if !opt.NoKKTReuse {
		if opt.Orderings != nil {
			kktCache = sparse.NewSymbolicCacheFrom(opt.Orderings, 1.0)
			defer func() { opt.Orderings.AddSolveStats(kktCache.Stats()) }()
		} else {
			kktCache = sparse.NewSymbolicCache(opt.Ordering, 1.0)
		}
	}

	for iter := 0; iter <= opt.MaxIter; iter++ {
		// Lagrangian gradient Lx = df + Jgᵀλ + Jhᵀµ.
		lx := df.Clone()
		if jg != nil {
			lx.Add(jg.MulVecT(lam))
		}
		lx.Add(jh.MulVecT(mu))

		maxH := math.Inf(-1)
		if niq == 0 {
			maxH = 0
		}
		for _, v := range h {
			if v > maxH {
				maxH = v
			}
		}
		feas := math.Max(g.NormInf(), maxH) / (1 + math.Max(x.NormInf(), z.NormInf()))
		grad := lx.NormInf() / (1 + math.Max(lam.NormInf(), mu.NormInf()))
		comp := 0.0
		if niq > 0 {
			comp = z.Dot(mu) / (1 + x.NormInf())
		}
		cost := math.Abs(f-f0) / (1 + math.Abs(f0))
		res.Iterations = iter

		if opt.RecordTrace {
			res.Trace = append(res.Trace, IterStat{
				Iter: iter, FeasCond: feas, GradCond: grad,
				CompCond: comp, CostCond: cost, Gamma: gamma, Objective: f,
			})
		}
		if feas < opt.FeasTol && grad < opt.GradTol && comp < opt.CompTol &&
			cost < opt.CostTol {
			res.Converged = true
			break
		}
		if iter == opt.MaxIter {
			res.F = f
			return res, ErrMaxIter
		}
		if x.HasNaN() || lam.HasNaN() || mu.HasNaN() {
			res.F = f
			return res, fmt.Errorf("%w: NaN in iterates at iteration %d", ErrNumeric, iter)
		}

		// Newton KKT system.
		lxx := hessOrZero(p, x, lam, mu, nh)
		w := make(la.Vector, niq) // µ/Z
		for k := 0; k < niq; k++ {
			w[k] = mu[k] / z[k]
		}
		m := jtDiagJ(jh, w)
		m = m.AddScaled(1, lxx)
		if regKKT > 0 {
			m = m.AddScaled(regKKT, sparse.Identity(nx))
		}
		nvec := lx.Clone()
		tmp := make(la.Vector, niq)
		for k := 0; k < niq; k++ {
			tmp[k] = (mu[k]*h[k] + gamma) / z[k]
		}
		nvec.Add(jh.MulVecT(tmp))

		kkt := sparse.NewBuilder(nx+neq, nx+neq)
		kkt.AppendCSC(0, 0, 1, m)
		if jg != nil {
			kkt.AppendCSC(nx, 0, 1, jg)
			kkt.AppendCSC(0, nx, 1, jg.T())
		}
		rhs := make(la.Vector, nx+neq)
		for i := 0; i < nx; i++ {
			rhs[i] = -nvec[i]
		}
		for i := 0; i < neq; i++ {
			rhs[nx+i] = -g[i]
		}
		var fac *sparse.LUFactors
		var ferr error
		if opt.NoKKTReuse {
			fac, ferr = sparse.FactorizeOpts(kkt.ToCSC(), opt.Ordering, 1.0)
		} else {
			fac, ferr = kktCache.Factorize(kkt.ToCSC())
		}
		if ferr != nil {
			// Retry the same iteration with escalating Tikhonov
			// regularization on the (1,1) block.
			if regKKT == 0 {
				regKKT = 1e-8
			} else {
				regKKT *= 100
			}
			if regKKT > 1e-2 {
				res.F = f
				return res, fmt.Errorf("%w: %v", ErrNumeric, ferr)
			}
			continue
		}
		dxdlam := fac.Solve(rhs)

		dx := la.Vector(dxdlam[:nx])
		dlam := la.Vector(dxdlam[nx:])
		dz := make(la.Vector, niq)
		jdx := jh.MulVec(dx)
		for k := 0; k < niq; k++ {
			dz[k] = -h[k] - z[k] - jdx[k]
		}
		dmu := make(la.Vector, niq)
		for k := 0; k < niq; k++ {
			dmu[k] = -mu[k] + (gamma-mu[k]*dz[k])/z[k]
		}

		// Fraction-to-the-boundary step lengths.
		alphaP, alphaD := 1.0, 1.0
		for k := 0; k < niq; k++ {
			if dz[k] < 0 {
				if a := opt.Xi * z[k] / -dz[k]; a < alphaP {
					alphaP = a
				}
			}
			if dmu[k] < 0 {
				if a := opt.Xi * mu[k] / -dmu[k]; a < alphaD {
					alphaD = a
				}
			}
		}

		x.AddScaled(alphaP, dx)
		z.AddScaled(alphaP, dz)
		lam.AddScaled(alphaD, dlam)
		mu.AddScaled(alphaD, dmu)
		if niq > 0 {
			gamma = opt.Sigma * z.Dot(mu) / float64(niq)
		}
		if opt.RecordTrace {
			res.Trace[len(res.Trace)-1].StepSize = dx.NormInf() * alphaP
		}

		f0 = f
		f, df = p.F(x)
		g, jg, h, jh = evalGH(x)
	}

	res.F = f
	// Split bound multipliers back out per variable.
	res.MuUpper = make(la.Vector, nx)
	res.MuLower = make(la.Vector, nx)
	for k, i := range upperIdx {
		res.MuUpper[i] = mu[nh+k]
	}
	off := nh + len(upperIdx)
	for k, i := range lowerIdx {
		res.MuLower[i] = mu[off+k]
	}
	if !res.Converged {
		return res, ErrMaxIter
	}
	return res, nil
}

func hessOrZero(p *Problem, x, lam, mu la.Vector, nh int) *sparse.CSC {
	if p.Hess == nil {
		return sparse.NewBuilder(p.NX, p.NX).ToCSC()
	}
	// Only the nonlinear inequality multipliers reach the Hessian.
	return p.Hess(x, lam, mu[:nh])
}

// jtDiagJ computes Jᵀ·diag(w)·J for a row-per-constraint Jacobian.
func jtDiagJ(j *sparse.CSC, w la.Vector) *sparse.CSC {
	// Work row-wise: columns of Jᵀ are rows of J.
	jt := j.T() // nx × niq: column r holds row r of J
	nx := j.NCols
	b := sparse.NewBuilder(nx, nx)
	for r := 0; r < jt.NCols; r++ {
		wr := w[r]
		if wr == 0 {
			continue
		}
		lo, hi := jt.ColPtr[r], jt.ColPtr[r+1]
		for p1 := lo; p1 < hi; p1++ {
			for p2 := lo; p2 < hi; p2++ {
				b.Append(jt.RowIdx[p1], jt.RowIdx[p2], wr*jt.Val[p1]*jt.Val[p2])
			}
		}
	}
	return b.ToCSC()
}

func clipBounds(x, xmin, xmax la.Vector) {
	for i := range x {
		if xmin != nil && x[i] < xmin[i] {
			x[i] = xmin[i]
		}
		if xmax != nil && x[i] > xmax[i] {
			x[i] = xmax[i]
		}
	}
}
