package mips_test

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/mips"
	"repro/internal/opf"
)

// This file is the allocation-regression harness of the zero-allocation
// contract (DESIGN.md §11): once a solve's first iterations have
// compiled the assemblers and bound the factor slot, a warm interior-
// point iteration — constraint evaluation, KKT assembly, numeric
// refactorization, triangular solves, step updates — performs zero heap
// allocations. The harness drives real AC-OPF problems (case14 and
// case118) through the exported Stepper seam with unreachably tight
// tolerances, so Step keeps executing the full per-iteration work at
// the numerical fixed point instead of converging out of the loop, and
// pins testing.AllocsPerRun at exactly zero. Any future buffer leak —
// in the opf streaming evaluators, the mips arena, or the sparse
// refactorization kernels underneath — fails this test in CI.

// warmStepper builds a Stepper over the real AC-OPF of c and runs it
// past the point where every lazily-built structure exists: the
// equality/inequality/Hessian assembly programs, the KKT assembly
// program, the inequality-Jacobian row view, and the LU factor slot.
func warmStepper(tb testing.TB, c *grid.Case, warmup int) *mips.Stepper {
	tb.Helper()
	o := opf.Prepare(c)
	opt := mips.Options{
		FeasTol: 1e-300, GradTol: 1e-300, CompTol: 1e-300, CostTol: 1e-300,
		MaxIter: 1 << 20,
	}
	s := mips.NewStepper(o.Problem(), o.DefaultStart(), nil, opt)
	for i := 0; i < warmup; i++ {
		if done, err := s.Step(); done {
			tb.Fatalf("stepper finished during warm-up (iteration %d): %v", i, err)
		}
	}
	return s
}

// TestWarmStepAllocsZero pins the steady-state iteration at zero
// allocations on case14 and case118. Because Step spans the whole
// pipeline, this also pins the sparse RefactorInto/RefactorBlockedInto
// and SolveInto calls on real KKT systems of both sizes (case118's KKT
// crosses the blocked kernel's panel threshold; the synthetic-matrix
// pins live in sparse's own allocation tests).
func TestWarmStepAllocsZero(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	for _, c := range []*grid.Case{grid.Case14(), grid.Case118()} {
		t.Run(c.Name, func(t *testing.T) {
			s := warmStepper(t, c, 60)
			if n := testing.AllocsPerRun(100, func() {
				if done, err := s.Step(); done {
					t.Fatalf("stepper finished mid-measurement: %v", err)
				}
			}); n != 0 {
				t.Errorf("warm Step allocates %v times per iteration, want 0", n)
			}
		})
	}
}
