package mips

import (
	"errors"
	"math"
	"testing"

	"repro/internal/la"
	"repro/internal/sparse"
)

// quadProblem: min Σ (x_i - c_i)² — unconstrained quadratic.
func quadProblem(c la.Vector) *Problem {
	n := len(c)
	return &Problem{
		NX: n,
		F: func(x la.Vector) (float64, la.Vector) {
			f := 0.0
			df := make(la.Vector, n)
			for i := range x {
				d := x[i] - c[i]
				f += d * d
				df[i] = 2 * d
			}
			return f, df
		},
		Hess: func(x, lam, mu la.Vector) *sparse.CSC {
			return sparse.Identity(n).Scale(2)
		},
	}
}

func TestUnconstrainedQuadratic(t *testing.T) {
	c := la.Vector{1, -2, 3}
	r, err := Solve(quadProblem(c), la.Vector{0, 0, 0}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("not converged")
	}
	if r.X.Clone().Sub(c).NormInf() > 1e-6 {
		t.Fatalf("x = %v", r.X)
	}
}

// equality-constrained QP: min x²+y² s.t. x+y=1 → x=y=0.5, λ=-1.
func TestEqualityQP(t *testing.T) {
	p := &Problem{
		NX: 2,
		F: func(x la.Vector) (float64, la.Vector) {
			return x[0]*x[0] + x[1]*x[1], la.Vector{2 * x[0], 2 * x[1]}
		},
		G: func(x la.Vector) (la.Vector, *sparse.CSC) {
			b := sparse.NewBuilder(1, 2)
			b.Append(0, 0, 1)
			b.Append(0, 1, 1)
			return la.Vector{x[0] + x[1] - 1}, b.ToCSC()
		},
		Hess: func(x, lam, mu la.Vector) *sparse.CSC {
			return sparse.Identity(2).Scale(2)
		},
	}
	r, err := Solve(p, la.Vector{0, 0}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-0.5) > 1e-6 || math.Abs(r.X[1]-0.5) > 1e-6 {
		t.Fatalf("x = %v", r.X)
	}
	if math.Abs(r.Lam[0]-(-1)) > 1e-5 {
		t.Fatalf("lam = %v, want -1", r.Lam)
	}
}

// The documented MIPS example problem (inequality form):
// min -x1x2 - x2x3  s.t. x1²-x2²+x3² ≤ 2, x1²+x2²+x3² ≤ 10.
// Solution x* ≈ [1.58114, 2.23607, 1.58114], f* ≈ -7.0711 (second
// constraint active).
func mipsExampleProblem() *Problem {
	return &Problem{
		NX: 3,
		F: func(x la.Vector) (float64, la.Vector) {
			f := -x[0]*x[1] - x[1]*x[2]
			return f, la.Vector{-x[1], -x[0] - x[2], -x[1]}
		},
		H: func(x la.Vector) (la.Vector, *sparse.CSC) {
			h := la.Vector{
				x[0]*x[0] - x[1]*x[1] + x[2]*x[2] - 2,
				x[0]*x[0] + x[1]*x[1] + x[2]*x[2] - 10,
			}
			b := sparse.NewBuilder(2, 3)
			b.Append(0, 0, 2*x[0])
			b.Append(0, 1, -2*x[1])
			b.Append(0, 2, 2*x[2])
			b.Append(1, 0, 2*x[0])
			b.Append(1, 1, 2*x[1])
			b.Append(1, 2, 2*x[2])
			return h, b.ToCSC()
		},
		Hess: func(x, lam, mu la.Vector) *sparse.CSC {
			b := sparse.NewBuilder(3, 3)
			// d2f
			b.Append(0, 1, -1)
			b.Append(1, 0, -1)
			b.Append(1, 2, -1)
			b.Append(2, 1, -1)
			// mu1 * d2h1 + mu2 * d2h2
			b.Append(0, 0, 2*mu[0]+2*mu[1])
			b.Append(1, 1, -2*mu[0]+2*mu[1])
			b.Append(2, 2, 2*mu[0]+2*mu[1])
			return b.ToCSC()
		},
	}
}

func TestMIPSDocExample(t *testing.T) {
	r, err := Solve(mipsExampleProblem(), la.Vector{1, 1, 1}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := la.Vector{1.58114, 2.23607, 1.58114}
	if r.X.Clone().Sub(want).NormInf() > 1e-4 {
		t.Fatalf("x = %v want %v", r.X, want)
	}
	if math.Abs(r.F-(-7.0711)) > 1e-3 {
		t.Fatalf("f = %v", r.F)
	}
	// Second constraint active, first inactive.
	if r.Mu[1] < 1e-4 || r.Mu[0] > 1e-4 {
		t.Fatalf("mu = %v, want only second active", r.Mu)
	}
}

// inequality-constrained: min (x1-1)² + (x2-2.5)²
// s.t. x1 - 2x2 + 2 ≥ 0, -x1 - 2x2 + 6 ≥ 0, -x1 + 2x2 + 2 ≥ 0, x ≥ 0.
// (scipy's canonical example; solution (1.4, 1.7))
func TestInequalityQP(t *testing.T) {
	p := &Problem{
		NX: 2,
		F: func(x la.Vector) (float64, la.Vector) {
			d0, d1 := x[0]-1, x[1]-2.5
			return d0*d0 + d1*d1, la.Vector{2 * d0, 2 * d1}
		},
		H: func(x la.Vector) (la.Vector, *sparse.CSC) {
			// h(x) ≤ 0 form.
			h := la.Vector{
				-(x[0] - 2*x[1] + 2),
				-(-x[0] - 2*x[1] + 6),
				-(-x[0] + 2*x[1] + 2),
			}
			b := sparse.NewBuilder(3, 2)
			b.Append(0, 0, -1)
			b.Append(0, 1, 2)
			b.Append(1, 0, 1)
			b.Append(1, 1, 2)
			b.Append(2, 0, 1)
			b.Append(2, 1, -2)
			return h, b.ToCSC()
		},
		Hess: func(x, lam, mu la.Vector) *sparse.CSC {
			return sparse.Identity(2).Scale(2)
		},
		XMin: la.Vector{0, 0},
		XMax: la.Vector{math.Inf(1), math.Inf(1)},
	}
	r, err := Solve(p, la.Vector{2, 0}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1.4) > 1e-5 || math.Abs(r.X[1]-1.7) > 1e-5 {
		t.Fatalf("x = %v, want (1.4, 1.7)", r.X)
	}
	// The first constraint is active: positive multiplier; others ~0.
	if r.Mu[0] < 1e-4 {
		t.Errorf("active constraint multiplier = %v", r.Mu[0])
	}
	if r.Mu[1] > 1e-4 || r.Mu[2] > 1e-4 {
		t.Errorf("inactive multipliers = %v %v", r.Mu[1], r.Mu[2])
	}
}

func TestBoundsOnly(t *testing.T) {
	// min (x-5)² with x ≤ 2 → x* = 2, upper bound active.
	p := quadProblem(la.Vector{5})
	p.XMin = la.Vector{math.Inf(-1)}
	p.XMax = la.Vector{2}
	r, err := Solve(p, la.Vector{0}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-2) > 1e-5 {
		t.Fatalf("x = %v", r.X)
	}
	if r.MuUpper[0] < 1e-3 {
		t.Errorf("upper-bound multiplier %v should be active (≈6)", r.MuUpper[0])
	}
	if math.Abs(r.MuUpper[0]-6) > 1e-3 {
		t.Errorf("µ upper = %v, want 6 (= -f'(2))", r.MuUpper[0])
	}
}

func TestStartOutsideBoundsIsClipped(t *testing.T) {
	p := quadProblem(la.Vector{0})
	p.XMin = la.Vector{-1}
	p.XMax = la.Vector{1}
	r, err := Solve(p, la.Vector{100}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]) > 1e-6 {
		t.Fatalf("x = %v", r.X)
	}
}

func TestWarmStartConvergesFaster(t *testing.T) {
	p := mipsExampleProblem()
	cold, err := Solve(p, la.Vector{1, 1, 1}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws := &WarmStart{X: cold.X, Lam: cold.Lam, Mu: cold.Mu, Z: cold.Z}
	warm, err := Solve(p, la.Vector{1, 1, 1}, ws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("warm start took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
	if warm.X.Clone().Sub(cold.X).NormInf() > 1e-5 {
		t.Fatalf("warm solution drifted: %v vs %v", warm.X, cold.X)
	}
}

func TestWarmStartWithInequalities(t *testing.T) {
	// Re-solve the inequality QP from its own solution.
	p := quadProblem(la.Vector{5, 5})
	p.XMin = la.Vector{0, 0}
	p.XMax = la.Vector{2, 3}
	cold, err := Solve(p, la.Vector{1, 1}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(p, la.Vector{1, 1},
		&WarmStart{X: cold.X, Lam: cold.Lam, Mu: cold.Mu, Z: cold.Z}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm %d > cold %d iterations", warm.Iterations, cold.Iterations)
	}
}

func TestTraceRecorded(t *testing.T) {
	r, err := Solve(mipsExampleProblem(), la.Vector{1, 1, 1}, nil, Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	last := r.Trace[len(r.Trace)-1]
	if last.FeasCond > 1e-6 || last.GradCond > 1e-6 {
		t.Fatalf("final trace not converged: %+v", last)
	}
	// Conditions should broadly decrease from start to end.
	first := r.Trace[0]
	if last.FeasCond > first.FeasCond && first.FeasCond > 1e-9 {
		t.Errorf("feasibility did not improve: %v -> %v", first.FeasCond, last.FeasCond)
	}
}

func TestMaxIterError(t *testing.T) {
	p := mipsExampleProblem()
	_, err := Solve(p, la.Vector{1, 1, 1}, nil, Options{MaxIter: 2})
	if !errors.Is(err, ErrMaxIter) {
		t.Fatalf("err = %v, want ErrMaxIter", err)
	}
}

func TestMultiplierSigns(t *testing.T) {
	// All inequality multipliers and slacks must stay positive.
	p := quadProblem(la.Vector{5, -5})
	p.XMin = la.Vector{-1, -1}
	p.XMax = la.Vector{1, 1}
	r, err := Solve(p, la.Vector{0, 0}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range r.Mu {
		if v <= 0 {
			t.Errorf("mu[%d] = %v not positive", k, v)
		}
	}
	for k, v := range r.Z {
		if v <= 0 {
			t.Errorf("z[%d] = %v not positive", k, v)
		}
	}
	// Complementarity: z·mu ≈ 0 element-wise at the solution.
	for k := range r.Mu {
		if r.Z[k]*r.Mu[k] > 1e-4 {
			t.Errorf("complementarity z[%d]*mu[%d] = %v", k, k, r.Z[k]*r.Mu[k])
		}
	}
}

func TestJtDiagJ(t *testing.T) {
	b := sparse.NewBuilder(2, 3)
	b.Append(0, 0, 1)
	b.Append(0, 2, 2)
	b.Append(1, 1, 3)
	j := b.ToCSC()
	m := jtDiagJ(j, la.Vector{2, 1})
	// JᵀWJ = [[2,0,4],[0,9,0],[4,0,8]]
	want := [][]float64{{2, 0, 4}, {0, 9, 0}, {4, 0, 8}}
	for i := 0; i < 3; i++ {
		for k := 0; k < 3; k++ {
			if math.Abs(m.At(i, k)-want[i][k]) > 1e-14 {
				t.Fatalf("JtWJ[%d,%d] = %v want %v", i, k, m.At(i, k), want[i][k])
			}
		}
	}
}

func TestGammaShrinks(t *testing.T) {
	r, err := Solve(mipsExampleProblem(), la.Vector{1, 1, 1}, nil, Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
	// Equality-only problem: gamma stays at its initial value (no
	// inequalities). Use a bounded problem to observe barrier decay.
	p := quadProblem(la.Vector{5})
	p.XMin = la.Vector{0}
	p.XMax = la.Vector{2}
	r2, err := Solve(p, la.Vector{1}, nil, Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := r2.Trace
	if len(tr) < 2 {
		t.Fatal("too few iterations to check barrier decay")
	}
	if tr[len(tr)-1].Gamma >= tr[0].Gamma {
		t.Fatalf("gamma did not shrink: %v -> %v", tr[0].Gamma, tr[len(tr)-1].Gamma)
	}
}

// TestKKTReuseMatchesFullFactorization pins the symbolic-reuse path
// against the from-scratch baseline: both must converge, in the same
// number of iterations, to the same point within tight tolerance. (The
// paths are not bit-identical by construction: reuse freezes the first
// iteration's pivot sequence where the baseline re-pivots every
// iteration, so late-bit rounding differs.)
func TestKKTReuseMatchesFullFactorization(t *testing.T) {
	x0 := la.Vector{1, 1, 1}
	rReuse, err := Solve(mipsExampleProblem(), x0, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rFull, err := Solve(mipsExampleProblem(), x0, nil, Options{NoKKTReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rReuse.Converged || !rFull.Converged {
		t.Fatalf("convergence: reuse=%v full=%v", rReuse.Converged, rFull.Converged)
	}
	if rReuse.Iterations != rFull.Iterations {
		t.Fatalf("iterations: reuse=%d full=%d", rReuse.Iterations, rFull.Iterations)
	}
	if d := rReuse.X.Clone().Sub(rFull.X).NormInf(); d > 1e-8 {
		t.Fatalf("solutions differ by %v", d)
	}
	if math.Abs(rReuse.F-rFull.F) > 1e-8*(1+math.Abs(rFull.F)) {
		t.Fatalf("objectives differ: %v vs %v", rReuse.F, rFull.F)
	}
}

// TestKKTOrderingsConverge runs the doc example under every fill-reducing
// ordering: the ordering changes the factorization, not the solution.
func TestKKTOrderingsConverge(t *testing.T) {
	want := la.Vector{1.58114, 2.23607, 1.58114}
	for _, ord := range []sparse.Ordering{sparse.OrderNatural, sparse.OrderRCM, sparse.OrderAMD} {
		r, err := Solve(mipsExampleProblem(), la.Vector{1, 1, 1}, nil, Options{Ordering: ord})
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		if r.X.Clone().Sub(want).NormInf() > 1e-4 {
			t.Fatalf("%v: x = %v want %v", ord, r.X, want)
		}
	}
}

// TestKKTSolveStatsReported pins the reuse accounting: a solve wired to
// a shared OrderingCache folds its per-iteration counters in, with one
// analysis per pattern and refactors for the remaining iterations.
func TestKKTSolveStatsReported(t *testing.T) {
	oc := sparse.NewOrderingCache(sparse.OrderRCM)
	r, err := Solve(mipsExampleProblem(), la.Vector{1, 1, 1}, nil, Options{Orderings: oc})
	if err != nil {
		t.Fatal(err)
	}
	st := oc.Stats()
	if st.Analyses != 1 {
		t.Fatalf("analyses = %d, want 1 (fixed KKT pattern)", st.Analyses)
	}
	if st.Refactors != uint64(r.Iterations-1) {
		t.Fatalf("refactors = %d, want %d (one per remaining iteration)", st.Refactors, r.Iterations-1)
	}
	if st.Orderings != 1 {
		t.Fatalf("orderings = %d, want 1", st.Orderings)
	}
	// A second solve through the same cache reuses the cached ordering.
	if _, err := Solve(mipsExampleProblem(), la.Vector{1, 1, 1}, nil, Options{Orderings: oc}); err != nil {
		t.Fatal(err)
	}
	if st := oc.Stats(); st.Orderings != 1 || st.Analyses != 2 {
		t.Fatalf("cross-solve stats = %+v, want 1 ordering + 2 analyses", st)
	}
}
