//go:build !race

package mips_test

const raceEnabled = false
