//go:build race

package mips_test

// raceEnabled lets allocation-count tests skip under the race detector,
// whose instrumentation allocates on its own.
const raceEnabled = true
