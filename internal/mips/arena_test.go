package mips

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/sparse"
)

// randJacobian builds a random niq×nx sparse Jacobian with the given
// density. Rows may be empty (a constraint touching no variables never
// occurs in practice but must not break the view).
func randJacobian(r *rand.Rand, niq, nx int, density float64) *sparse.CSC {
	b := sparse.NewBuilder(niq, nx)
	for i := 0; i < niq; i++ {
		for j := 0; j < nx; j++ {
			if r.Float64() < density {
				b.Append(i, j, r.NormFloat64())
			}
		}
	}
	return b.ToCSC()
}

// TestJhViewStreamedProductMatchesReference pins the arena's row-view
// JᵀWJ streaming — the exact loop Step assembles into the KKT matrix —
// against the jtDiagJ reference on random Jacobians. Each matrix runs
// through the same view and assembler twice, so both the compiling
// first pass and the verified-stamp pass are covered, and the pattern
// of the second matrix differs so the view's rebuild path is exercised
// too.
func TestJhViewStreamedProductMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	view := &jhRowView{}
	for trial := 0; trial < 6; trial++ {
		niq := 3 + r.Intn(20)
		nx := 2 + r.Intn(15)
		j := randJacobian(r, niq, nx, 0.05+0.3*r.Float64())
		w := make(la.Vector, niq)
		for k := range w {
			w[k] = 0.1 + r.Float64()
		}
		want := jtDiagJ(j, w)
		asm := sparse.NewAssembler(nx, nx)
		for pass := 0; pass < 2; pass++ {
			view.update(j)
			asm.Begin()
			jhVal := j.Val
			for row := 0; row < niq; row++ {
				wr := w[row]
				lo, hi := view.rowPtr[row], view.rowPtr[row+1]
				for p1 := lo; p1 < hi; p1++ {
					v1 := wr * jhVal[view.valPos[p1]]
					a := int(view.colIdx[p1])
					for p2 := lo; p2 < hi; p2++ {
						asm.Append(a, int(view.colIdx[p2]), v1*jhVal[view.valPos[p2]])
					}
				}
			}
			got := asm.Finish()
			for i := 0; i < nx; i++ {
				for k := 0; k < nx; k++ {
					if d := math.Abs(got.At(i, k) - want.At(i, k)); d > 1e-13 {
						t.Fatalf("trial %d pass %d: JᵀWJ[%d,%d] = %v want %v",
							trial, pass, i, k, got.At(i, k), want.At(i, k))
					}
				}
			}
		}
	}
}
