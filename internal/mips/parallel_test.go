package mips_test

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/mips"
	"repro/internal/opf"
)

// This file pins the determinism contract of intra-solve parallelism
// (DESIGN.md §12) at the full-solver level: a Stepper forced to any
// thread count must walk the exact iterate sequence of the serial
// solver — same KKT matrices, same factors, same steps — so the final
// X/Lam/Mu/Z vectors are bit-identical and the iteration count equal.
// The sparse package pins the factor/solve kernels on synthetic and
// fleet KKT matrices; here the sharded KKT assembly, the stamped
// reduction, and the threaded factor slot run together on real AC-OPF
// solves. SetThreads is the seam: SolverThreads clamps production
// requests to GOMAXPROCS, which on a single-core host would silently
// reduce every case to serial.

// solveWithThreads runs a full solve of c at the given thread count and
// returns the result.
func solveWithThreads(tb testing.TB, c *grid.Case, threads int) *mips.Result {
	tb.Helper()
	o := opf.Prepare(c)
	s := mips.NewStepper(o.Problem(), o.DefaultStart(), nil, mips.Options{})
	s.SetThreads(threads)
	for i := 0; ; i++ {
		done, err := s.Step()
		if done {
			if err != nil {
				tb.Fatalf("solve with %d threads failed: %v", threads, err)
			}
			return s.Result()
		}
		if i > 500 {
			tb.Fatalf("solve with %d threads did not terminate", threads)
		}
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestParallelSolveBitIdentical compares full solves at 2/4/8 threads
// against the serial solve, bitwise.
func TestParallelSolveBitIdentical(t *testing.T) {
	for _, c := range []*grid.Case{grid.Case30(), grid.Case118()} {
		t.Run(c.Name, func(t *testing.T) {
			ref := solveWithThreads(t, c, 1)
			if !ref.Converged {
				t.Fatalf("serial solve did not converge")
			}
			for _, threads := range []int{2, 4, 8} {
				got := solveWithThreads(t, c, threads)
				if got.Iterations != ref.Iterations {
					t.Errorf("threads=%d: %d iterations, serial took %d",
						threads, got.Iterations, ref.Iterations)
				}
				if math.Float64bits(got.F) != math.Float64bits(ref.F) {
					t.Errorf("threads=%d: objective %v, serial %v", threads, got.F, ref.F)
				}
				for _, v := range []struct {
					name     string
					got, ref []float64
				}{
					{"X", got.X, ref.X},
					{"Lam", got.Lam, ref.Lam},
					{"Mu", got.Mu, ref.Mu},
					{"Z", got.Z, ref.Z},
				} {
					if !bitsEqual(v.got, v.ref) {
						t.Errorf("threads=%d: %s differs from serial", threads, v.name)
					}
				}
			}
		})
	}
}

// TestWarmStepAllocsZeroParallel is the parallel twin of
// TestWarmStepAllocsZero: with sharded KKT assembly and the threaded
// factor slot active, a warm iteration must still perform zero heap
// allocations — shards write into preallocated arena slices and the
// fork-join runners reuse their bookkeeping.
func TestWarmStepAllocsZeroParallel(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	s := warmStepper(t, grid.Case118(), 2)
	s.SetThreads(4)
	for i := 0; i < 60; i++ {
		if done, err := s.Step(); done {
			t.Fatalf("stepper finished during warm-up: %v", err)
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		if done, err := s.Step(); done {
			t.Fatalf("stepper finished mid-measurement: %v", err)
		}
	}); n != 0 {
		t.Errorf("warm parallel Step allocates %v times per iteration, want 0", n)
	}
}
