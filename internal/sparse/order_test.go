package sparse

import (
	"math/rand"
	"testing"
)

// laplacianPlus builds a diagonally dominant SPD-patterned matrix on a
// random graph: A = L + 4I with L the graph Laplacian. Strong diagonals
// keep threshold pivoting on the diagonal, so the probe's surrogate
// (which also carries a dominant stored diagonal) reproduces the real
// factor fill exactly.
func laplacianPlus(n int, extra int, seed int64) *CSC {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, n)
	deg := make([]float64, n)
	addEdge := func(i, j int) {
		if i == j {
			return
		}
		b.Append(i, j, -1)
		b.Append(j, i, -1)
		deg[i]++
		deg[j]++
	}
	for i := 1; i < n; i++ {
		addEdge(rng.Intn(i), i) // spanning tree
	}
	for k := 0; k < extra; k++ {
		addEdge(rng.Intn(n), rng.Intn(n))
	}
	for i := 0; i < n; i++ {
		b.Append(i, i, deg[i]+4)
	}
	return b.ToCSC()
}

// borderedKKT builds the indefinite bordered shape every MIPS iteration
// factors: a banded mesh block with a stored (well-scaled) diagonal,
// bordered by constraint rows/columns whose trailing diagonal block is
// structurally EMPTY — the shape that forces pivoting off the diagonal
// and made a pivoting-blind fill estimate mis-rank orderings.
func borderedKKT(nx, neq int, seed int64) *CSC {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(nx+neq, nx+neq)
	for i := 0; i < nx; i++ {
		b.Append(i, i, 4)
		for _, d := range []int{1, 2, 7} { // banded mesh + a long-range chord
			if i+d < nx {
				b.Append(i, i+d, -1)
				b.Append(i+d, i, -1)
			}
		}
	}
	for r := 0; r < neq; r++ {
		for k := 0; k < 3; k++ { // each constraint touches ~3 mesh nodes
			j := rng.Intn(nx)
			b.Append(nx+r, j, 1+rng.Float64())
			b.Append(j, nx+r, 1+rng.Float64())
		}
	}
	return b.ToCSC()
}

func factorNNZ(t *testing.T, a *CSC, ord Ordering) int {
	t.Helper()
	f, err := FactorizeOpts(a, ord, 1.0)
	if err != nil {
		t.Fatalf("%s: %v", ord, err)
	}
	return f.NNZ()
}

// TestOrderAutoPicksSmallerFill: on diagonally dominant symmetric
// patterns the surrogate probe reproduces real diagonal-pivot fill, so
// auto's factor must equal the better of RCM and AMD.
func TestOrderAutoPicksSmallerFill(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		a := laplacianPlus(80, 70, seed)
		auto := factorNNZ(t, a, OrderAuto)
		rcm := factorNNZ(t, a, OrderRCM)
		amd := factorNNZ(t, a, OrderAMD)
		best := min(rcm, amd)
		if auto != best {
			t.Errorf("seed %d: auto fill %d, want min(rcm %d, amd %d)", seed, auto, rcm, amd)
		}
		p1 := permFor(a, OrderAuto)
		p2 := permFor(a, OrderAuto)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("seed %d: auto ordering not deterministic", seed)
			}
		}
	}
}

// TestOrderAutoNoPivotBlowup is the regression for the pivoting-blind
// estimator bug: on bordered KKT-shaped patterns (empty trailing
// diagonal block), the probed choice must stay close to the better
// ordering's REAL pivoted fill — a symmetric-elimination estimate
// picked the catastrophically worse side here (2.4× on the case118
// KKT).
func TestOrderAutoNoPivotBlowup(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := borderedKKT(150, 60, seed)
		auto := factorNNZ(t, a, OrderAuto)
		best := min(factorNNZ(t, a, OrderRCM), factorNNZ(t, a, OrderAMD))
		if float64(auto) > 1.3*float64(best) {
			t.Errorf("seed %d: auto fill %d vs best %d (> 1.3×)", seed, auto, best)
		}
	}
}

// TestResolve pins the reporting contract: concrete orderings resolve
// to themselves, and auto resolves to the ordering whose factorization
// it actually returns.
func TestResolve(t *testing.T) {
	a := borderedKKT(100, 40, 3)
	for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD} {
		if got := ord.Resolve(a); got != ord {
			t.Errorf("%s.Resolve = %s", ord, got)
		}
	}
	res := OrderAuto.Resolve(a)
	if res != OrderRCM && res != OrderAMD {
		t.Fatalf("auto resolved to %s", res)
	}
	if got, want := factorNNZ(t, a, OrderAuto), factorNNZ(t, a, res); got != want {
		t.Errorf("auto factor fill %d but resolved ordering %s gives %d", got, res, want)
	}
}

// TestOrderAutoValidPermutation guards the basic contract on an
// asymmetric pattern too.
func TestOrderAutoValidPermutation(t *testing.T) {
	b := NewBuilder(6, 6)
	for i := 0; i < 6; i++ {
		b.Append(i, i, 3)
	}
	b.Append(0, 5, 1)
	b.Append(4, 1, 1)
	b.Append(2, 3, 1)
	p := permFor(b.ToCSC(), OrderAuto)
	seen := make([]bool, 6)
	for _, v := range p {
		if v < 0 || v >= 6 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

// TestParseOrderingAuto covers the new flag spelling.
func TestParseOrderingAuto(t *testing.T) {
	ord, err := ParseOrdering("auto")
	if err != nil || ord != OrderAuto {
		t.Fatalf("ParseOrdering(auto) = %v, %v", ord, err)
	}
	if OrderAuto.String() != "auto" {
		t.Fatalf("String = %q", OrderAuto.String())
	}
}
