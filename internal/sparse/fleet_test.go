package sparse_test

// The embedded-fleet half of the blocked-vs-scalar equivalence suite:
// every embedded system's bordered KKT-shaped pattern goes through both
// numeric kernels and must agree. Random-pattern and fuzz coverage live
// in blocked_test.go (package sparse); this file runs the patterns the
// solver actually factors in production.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/casegen"
	"repro/internal/la"
	"repro/internal/opf"
	"repro/internal/sparse"
)

// fleetKKTProxy assembles the bordered KKT-shaped matrix of an OPF:
// an SPD-ish Hessian block with the inequality normal-matrix pattern,
// bordered by the equality Jacobian — the pattern the interior-point
// loop factors every iteration.
func fleetKKTProxy(o *opf.OPF, vals *rand.Rand) *sparse.CSC {
	x := o.DefaultStart()
	_, jg := o.Equality(x)
	_, jh := o.FullInequality(x)
	nx, neq := o.Lay.NX, o.Lay.NEq
	kb := sparse.NewBuilder(nx+neq, nx+neq)
	for i := 0; i < nx; i++ {
		kb.Append(i, i, 4+vals.Float64())
	}
	jt := jh.T()
	for r := 0; r < jt.NCols; r++ {
		lo, hi := jt.ColPtr[r], jt.ColPtr[r+1]
		for p1 := lo; p1 < hi; p1++ {
			for p2 := lo; p2 < hi; p2++ {
				kb.Append(jt.RowIdx[p1], jt.RowIdx[p2], jt.Val[p1]*jt.Val[p2])
			}
		}
	}
	kb.AppendCSC(nx, 0, 1, jg)
	kb.AppendCSC(0, nx, 1, jg.T())
	return kb.ToCSC()
}

// skipLargeInShort gates the 1354-bus fleet subtests: their analyses
// and refactorizations dominate the package's test time, so -short
// (CI's default tier) runs the paper-scale systems only. A full
// `go test ./internal/sparse` still covers every embedded system.
func skipLargeInShort(t *testing.T, name string) {
	t.Helper()
	if testing.Short() && name == "case1354" {
		t.Skip("1354-bus fleet refactors are slow; run without -short for full coverage")
	}
}

func TestRefactorBlockedEmbeddedFleet(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for _, name := range casegen.EmbeddedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			skipLargeInShort(t, name)
			c, err := casegen.Paper(name)
			if err != nil {
				t.Fatal(err)
			}
			o := opf.Prepare(c)
			kkt := fleetKKTProxy(o, r)
			sym, _, err := sparse.Analyze(kkt, opf.DefaultOrdering(c.NB()), 1.0)
			if err != nil {
				t.Fatal(err)
			}
			// Fresh values on the frozen pattern, both kernels.
			m := kkt.Clone()
			for p := range m.Val {
				m.Val[p] *= 1 + 0.1*r.NormFloat64()
			}
			fs, err := sym.Refactor(m)
			if err != nil {
				t.Fatal(err)
			}
			fb, err := sym.RefactorBlocked(m)
			if err != nil {
				t.Fatal(err)
			}
			rhs := make(la.Vector, m.NRows)
			for i := range rhs {
				rhs[i] = r.NormFloat64()
			}
			xs, xb := fs.Solve(rhs), fb.Solve(rhs)
			if d := xs.Clone().Sub(xb).NormInf(); d > 1e-8*(1+xs.NormInf()) {
				t.Fatalf("%s: blocked vs scalar solve differ by %v", name, d)
			}
			// Residual check pins the blocked kernel to the matrix
			// itself, not just to the scalar kernel. The bound is
			// relative to the scalar kernel's residual: both refactor m
			// on pivots frozen for kkt's values, so the achievable
			// residual is set by that pivot growth (which climbs with
			// system size — production refactors reject such factors via
			// the pivot-decay check), and the kernel-equivalence claim is
			// that blocked loses nothing beyond summation order.
			resS := m.MulVec(xs).Sub(rhs).NormInf()
			resB := m.MulVec(xb).Sub(rhs).NormInf()
			if resB > 10*resS+1e-6*(1+rhs.NormInf()) {
				t.Fatalf("%s: blocked solve residual %v (scalar %v)", name, resB, resS)
			}
			st := sym.PanelStats()
			t.Logf("%s: n=%d supernodes=%d panelCols=%d maxWidth=%d panelFrac=%.3f blocked=%v",
				name, kkt.NRows, st.Supernodes, st.PanelCols, st.MaxWidth, st.PanelFrac, st.Blocked)
		})
	}
}

// TestParallelRefactorEmbeddedFleet pins the parallel factor and solve
// kernels to the serial auto kernel on every embedded system's
// KKT-shaped pattern, at every tested thread count, bit for bit — the
// production half of the parallel equivalence suite (random-pattern and
// fuzz coverage live in parallel_test.go).
func TestParallelRefactorEmbeddedFleet(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for _, name := range casegen.EmbeddedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			skipLargeInShort(t, name)
			c, err := casegen.Paper(name)
			if err != nil {
				t.Fatal(err)
			}
			o := opf.Prepare(c)
			kkt := fleetKKTProxy(o, r)
			sym, _, err := sparse.Analyze(kkt, opf.DefaultOrdering(c.NB()), 1.0)
			if err != nil {
				t.Fatal(err)
			}
			m := kkt.Clone()
			for p := range m.Val {
				m.Val[p] *= 1 + 0.1*r.NormFloat64()
			}
			rhs := make(la.Vector, m.NRows)
			for i := range rhs {
				rhs[i] = r.NormFloat64()
			}
			for i := 0; i < len(rhs); i += 11 {
				rhs[i] = 0 // exercise the zero-skip paths
			}
			refSlot := sym.NewFactorSlot()
			refSlot.SetThreads(1)
			refF, err := refSlot.Refactor(m)
			if err != nil {
				t.Fatal(err)
			}
			wantX := make(la.Vector, m.NRows)
			work := make(la.Vector, m.NRows)
			refSlot.SolveInto(refF, wantX, rhs, work)
			for _, threads := range []int{2, 4, 8} {
				sl := sym.NewFactorSlot()
				sl.SetThreads(threads)
				f, err := sl.Refactor(m)
				if err != nil {
					t.Fatalf("threads=%d: %v", threads, err)
				}
				if !f.EqualValues(refF) {
					t.Fatalf("threads=%d: parallel factors differ from serial", threads)
				}
				got := make(la.Vector, m.NRows)
				sl.SolveInto(f, got, rhs, work)
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(wantX[i]) {
						t.Fatalf("threads=%d: solve differs at row %d: %v vs %v",
							threads, i, got[i], wantX[i])
					}
				}
			}
		})
	}
}

// BenchmarkFleetRefactorKernels times the two numeric kernels on the
// embedded fleet's KKT patterns (the root-level BenchmarkKKTFactor
// feeds BENCH_kkt.json; this one is for quick kernel iteration).
func BenchmarkFleetRefactorKernels(b *testing.B) {
	r := rand.New(rand.NewSource(47))
	for _, name := range []string{"case118", "case300"} {
		c, err := casegen.Paper(name)
		if err != nil {
			b.Fatal(err)
		}
		kkt := fleetKKTProxy(opf.Prepare(c), r)
		sym, _, err := sparse.Analyze(kkt, opf.DefaultOrdering(c.NB()), 1.0)
		if err != nil {
			b.Fatal(err)
		}
		f := sym.NewFactors()
		ws := sym.NewRefactorWorkspace()
		b.Run(name+"/scalar", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sym.RefactorInto(f, ws, kkt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/blocked", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sym.RefactorBlockedInto(f, ws, kkt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
