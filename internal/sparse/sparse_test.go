package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/la"
)

func buildSmall(t *testing.T) *CSC {
	t.Helper()
	b := NewBuilder(3, 3)
	b.Append(0, 0, 2)
	b.Append(1, 1, 3)
	b.Append(2, 2, 4)
	b.Append(0, 2, 1)
	b.Append(2, 0, -1)
	return b.ToCSC()
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Append(0, 0, 1)
	b.Append(0, 0, 2.5)
	b.Append(1, 0, -1)
	a := b.ToCSC()
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", a.NNZ())
	}
	if a.At(0, 0) != 3.5 || a.At(1, 0) != -1 || a.At(1, 1) != 0 {
		t.Fatalf("bad values: %v", a.Val)
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, 2).Append(2, 0, 1)
}

func TestCSCMulVec(t *testing.T) {
	a := buildSmall(t)
	y := a.MulVec(la.Vector{1, 2, 3})
	// A = [2 0 1; 0 3 0; -1 0 4]
	want := la.Vector{5, 6, 11}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-15 {
			t.Fatalf("MulVec = %v", y)
		}
	}
	yt := a.MulVecT(la.Vector{1, 2, 3})
	wantT := la.Vector{-1, 6, 13}
	for i := range wantT {
		if math.Abs(yt[i]-wantT[i]) > 1e-15 {
			t.Fatalf("MulVecT = %v", yt)
		}
	}
}

func TestCSCTranspose(t *testing.T) {
	a := buildSmall(t)
	at := a.T()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCSCDiagScale(t *testing.T) {
	a := buildSmall(t).Clone()
	a.DiagScaleLeft(la.Vector{2, 1, 1})
	if a.At(0, 0) != 4 || a.At(0, 2) != 2 {
		t.Fatalf("DiagScaleLeft: %v", a.Val)
	}
	a = buildSmall(t).Clone()
	a.DiagScaleRight(la.Vector{1, 1, 10})
	if a.At(0, 2) != 10 || a.At(2, 2) != 40 {
		t.Fatalf("DiagScaleRight: %v", a.Val)
	}
}

func TestCSCAddScaled(t *testing.T) {
	a := buildSmall(t)
	s := a.AddScaled(-1, a)
	for _, v := range s.Val {
		if v != 0 {
			t.Fatalf("A - A != 0: %v", s.Val)
		}
	}
	id := Identity(3)
	s2 := a.AddScaled(2, id)
	if s2.At(0, 0) != 4 || s2.At(1, 1) != 5 {
		t.Fatalf("AddScaled: %v", s2.Val)
	}
}

func TestDiagAndIdentity(t *testing.T) {
	d := Diag(la.Vector{1, 2, 3})
	if d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Fatal("Diag wrong")
	}
	i3 := Identity(3)
	v := i3.MulVec(la.Vector{4, 5, 6})
	if v[0] != 4 || v[2] != 6 {
		t.Fatal("Identity wrong")
	}
}

func TestAppendCSCOffsets(t *testing.T) {
	a := Identity(2)
	b := NewBuilder(4, 4)
	b.AppendCSC(0, 0, 1, a)
	b.AppendCSC(2, 2, -3, a)
	m := b.ToCSC()
	if m.At(0, 0) != 1 || m.At(3, 3) != -3 || m.At(2, 0) != 0 {
		t.Fatalf("AppendCSC blocks wrong")
	}
}

func TestToDenseRoundTrip(t *testing.T) {
	a := buildSmall(t)
	d := a.ToDense()
	if d.At(2, 0) != -1 || d.At(1, 1) != 3 {
		t.Fatal("ToDense wrong")
	}
}

func TestLUSolveSmall(t *testing.T) {
	a := buildSmall(t)
	b := la.Vector{1, 2, 3}
	x, err := SolveLU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(x).Sub(b)
	if r.NormInf() > 1e-12 {
		t.Fatalf("residual %v", r.NormInf())
	}
}

func TestLUSingular(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Append(0, 0, 1)
	b.Append(1, 0, 1) // second column empty -> structurally singular
	if _, err := Factorize(b.ToCSC()); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero diagonal forces row exchanges.
	b := NewBuilder(2, 2)
	b.Append(0, 1, 1)
	b.Append(1, 0, 1)
	a := b.ToCSC()
	x, err := SolveLU(a, la.Vector{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-14 || math.Abs(x[1]-3) > 1e-14 {
		t.Fatalf("x = %v", x)
	}
}

func randSparseSystem(r *rand.Rand, n int) (*CSC, la.Vector) {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Append(i, i, 5+r.Float64()*5)
		for k := 0; k < 3; k++ {
			j := r.Intn(n)
			b.Append(i, j, r.NormFloat64())
		}
	}
	x := make(la.Vector, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return b.ToCSC(), x
}

// Property: sparse LU solves random diagonally-dominant systems for every
// ordering choice.
func TestLUSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		a, x := randSparseSystem(r, n)
		rhs := a.MulVec(x)
		for _, ord := range []Ordering{OrderNatural, OrderRCM} {
			fac, err := FactorizeOpts(a, ord, 1.0)
			if err != nil {
				return false
			}
			got := fac.Solve(rhs)
			if got.Clone().Sub(x).NormInf() > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: threshold pivoting (tol<1) still yields accurate solves on
// well-conditioned systems.
func TestLUThresholdPivotProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		a, x := randSparseSystem(r, n)
		rhs := a.MulVec(x)
		fac, err := FactorizeOpts(a, OrderRCM, 0.1)
		if err != nil {
			return false
		}
		got := fac.Solve(rhs)
		return got.Clone().Sub(x).NormInf() < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLUAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, _ := randSparseSystem(r, 25)
	rhs := make(la.Vector, 25)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	xs, err := SolveLU(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	xd, err := la.Solve(a.ToDense(), rhs)
	if err != nil {
		t.Fatal(err)
	}
	if xs.Clone().Sub(xd).NormInf() > 1e-9 {
		t.Fatalf("sparse vs dense differ: %v", xs.Clone().Sub(xd).NormInf())
	}
}

func TestRCMReducesFill(t *testing.T) {
	// A 1D Laplacian permuted randomly: RCM should restore a narrow band
	// and produce no more fill than the natural order of the shuffled
	// matrix.
	n := 120
	r := rand.New(rand.NewSource(5))
	perm := r.Perm(n)
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Append(perm[i], perm[i], 4)
		if i+1 < n {
			b.Append(perm[i], perm[i+1], -1)
			b.Append(perm[i+1], perm[i], -1)
		}
	}
	a := b.ToCSC()
	fn, err := FactorizeOpts(a, OrderNatural, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := FactorizeOpts(a, OrderRCM, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.NNZ() > fn.NNZ() {
		t.Fatalf("RCM fill %d > natural fill %d", fr.NNZ(), fn.NNZ())
	}
}

func TestComplexBuilderAndOps(t *testing.T) {
	b := NewBuilderC(2, 2)
	b.Append(0, 0, 1+2i)
	b.Append(0, 0, 1i)
	b.Append(1, 0, 2)
	b.Append(0, 1, -1i)
	a := b.ToCSC()
	if a.NNZ() != 3 {
		t.Fatalf("NNZ = %d", a.NNZ())
	}
	if a.At(0, 0) != 1+3i {
		t.Fatalf("dedup: %v", a.At(0, 0))
	}
	y := a.MulVec([]complex128{1, 1})
	if y[0] != 1+2i || y[1] != 2 {
		t.Fatalf("MulVec = %v", y)
	}
	at := a.T()
	if at.At(1, 0) != -1i || at.At(0, 1) != 2 {
		t.Fatal("T wrong")
	}
	ac := a.Clone().Conj()
	if ac.At(0, 0) != 1-3i {
		t.Fatal("Conj wrong")
	}
	as := a.Clone().Scale(2i)
	if as.At(1, 0) != 4i {
		t.Fatal("Scale wrong")
	}
}

func TestComplexDiagScaleAndParts(t *testing.T) {
	b := NewBuilderC(2, 2)
	b.Append(0, 0, 1+1i)
	b.Append(1, 1, 2-1i)
	b.Append(1, 0, 1)
	a := b.ToCSC()
	a2 := a.Clone().DiagScaleLeft([]complex128{2, 1i})
	if a2.At(0, 0) != 2+2i || a2.At(1, 0) != 1i {
		t.Fatal("DiagScaleLeft wrong")
	}
	a3 := a.Clone().DiagScaleRight([]complex128{1i, 1})
	if a3.At(0, 0) != -1+1i {
		t.Fatal("DiagScaleRight wrong")
	}
	re, im := a.RealPart(), a.ImagPart()
	if re.At(1, 1) != 2 || im.At(1, 1) != -1 || im.At(1, 0) != 0 {
		t.Fatal("Real/ImagPart wrong")
	}
}

func TestComplexAddScaledAddDiag(t *testing.T) {
	b := NewBuilderC(2, 2)
	b.Append(0, 1, 3)
	a := b.ToCSC()
	s := a.AddScaled(1i, a)
	if s.At(0, 1) != 3+3i {
		t.Fatal("AddScaled wrong")
	}
	d := a.AddDiag([]complex128{1, 2i})
	if d.At(0, 0) != 1 || d.At(1, 1) != 2i || d.At(0, 1) != 3 {
		t.Fatal("AddDiag wrong")
	}
}

func TestComplexMulVecT(t *testing.T) {
	b := NewBuilderC(2, 3)
	b.Append(0, 0, 1i)
	b.Append(1, 2, 2)
	a := b.ToCSC()
	y := a.MulVecT([]complex128{1, 1i})
	if y[0] != 1i || y[1] != 0 || y[2] != 2i {
		t.Fatalf("MulVecT = %v", y)
	}
}

func BenchmarkSparseLUKKTLike(b *testing.B) {
	// Pattern similar to a power-grid KKT matrix: banded plus random
	// off-diagonal couplings.
	n := 1200
	r := rand.New(rand.NewSource(11))
	bd := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		bd.Append(i, i, 10)
		if i+1 < n {
			bd.Append(i, i+1, -1)
			bd.Append(i+1, i, -1)
		}
		j := r.Intn(n)
		bd.Append(i, j, 0.5)
	}
	a := bd.ToCSC()
	rhs := make(la.Vector, n)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Factorize(a)
		if err != nil {
			b.Fatal(err)
		}
		_ = f.Solve(rhs)
	}
}
