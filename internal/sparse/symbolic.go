package sparse

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/la"
)

// ErrPatternChanged is returned by Refactor when the matrix does not have
// the sparsity pattern the Symbolic was analyzed for.
var ErrPatternChanged = errors.New("sparse: matrix pattern differs from the analyzed pattern")

// ErrRefactorUnstable is returned by Refactor when a frozen pivot has
// decayed below the stability floor for the new numeric values. The
// pattern is still valid; callers should fall back to a fresh Analyze,
// which re-picks pivots (SymbolicCache does this automatically).
var ErrRefactorUnstable = errors.New("sparse: frozen pivot sequence unstable for these values")

// refactorPivotFloor is the minimum acceptable ratio of a frozen pivot's
// magnitude to the largest candidate in its column. A fresh threshold
// factorization guarantees ratio ≥ tol; refactorization accepts decay
// down to this floor before declaring the pivot sequence stale.
const refactorPivotFloor = 1e-10

// boostPivotRel is the static pivot perturbation scale for boosted
// (pivot-shaped) refactorizations: a decayed pivot is replaced by
// ±boostPivotRel·colmax, bounding element growth at 1/boostPivotRel.
// √machine-epsilon is the classic static-pivoting choice (SuperLU_DIST
// uses √ε·‖A‖): it splits the 16 available digits evenly between the
// perturbation and the growth it permits.
const boostPivotRel = 1e-8

// pattern is a stored sparsity pattern for exact match checks.
type pattern struct {
	n      int
	colPtr []int
	rowIdx []int
}

func patternOf(a *CSC) pattern {
	return pattern{
		n:      a.NRows,
		colPtr: append([]int(nil), a.ColPtr...),
		rowIdx: append([]int(nil), a.RowIdx...),
	}
}

// matches reports whether a has exactly this pattern. O(nnz) integer
// comparison — negligible next to a factorization.
func (pt *pattern) matches(a *CSC) bool {
	if a.NRows != pt.n || a.NCols != pt.n || len(a.RowIdx) != len(pt.rowIdx) {
		return false
	}
	for i, v := range a.ColPtr {
		if pt.colPtr[i] != v {
			return false
		}
	}
	for i, v := range a.RowIdx {
		if pt.rowIdx[i] != v {
			return false
		}
	}
	return true
}

// Symbolic is the reusable, value-independent-in-structure part of a
// sparse LU: the fill-reducing column ordering, the row-pivot sequence
// frozen by the analyzing factorization, and the exact nonzero patterns
// of L and U (each U column stored in a valid elimination order). It is
// immutable after Analyze and safe to share; Refactor redoes only the
// numeric work — no ordering, no DFS, no pivot search, no index
// allocation — which is what makes the per-iteration KKT solve cheap.
//
// Because the pivot sequence was chosen for the analyzed matrix's
// values, reusing a Symbolic across solves makes results depend on which
// matrix was analyzed first. Deterministic callers therefore reuse a
// Symbolic only within one solve (mips does this per interior-point
// solve) and share the value-independent ordering across solves through
// an OrderingCache.
type Symbolic struct {
	n       int
	q, pinv []int
	lp, up  []int
	li, ui  []int // row indices in pivot coordinates
	tol     float64
	pat     pattern
	// boost enables static pivot perturbation during refactorization
	// (SuperLU_DIST-style): a frozen pivot that decays below
	// boostPivotRel of its column's magnitude is replaced by
	// ±boostPivotRel·colmax instead of aborting with
	// ErrRefactorUnstable. Set only on pivot-shaped symbolics, whose
	// diagonal sequences are chosen from the pattern surrogate rather
	// than any particular values: the occasional lopsided iterate (a
	// barrier weight at 1e12, a multiplier-free diagonal at 1e-10) then
	// costs a bounded O(boostPivotRel) perturbation of that column —
	// absorbed by the outer Newton iteration — instead of a full
	// re-analysis onto a value-pivoted sequence with severalfold worse
	// fill.
	boost bool

	// blk caches the blocked-kernel schedule (supernode partition,
	// aligned row order, per-column consumption programs). Built lazily
	// on first use; a pure function of the frozen pattern, so a benign
	// build race stores identical schedules. See blocked.go.
	blk atomic.Pointer[blockedSchedule]

	// par caches the parallel execution schedule (factor task DAG and
	// level-scheduled solve plans); same lazy-build contract as blk.
	// See etree.go and parallel.go.
	par atomic.Pointer[parSched]
}

// Analyze computes a full LU factorization of a and extracts its symbolic
// skeleton for reuse. The returned factors are exactly those of
// FactorizeOpts(a, ord, tol); the Symbolic shares their index structure.
func Analyze(a *CSC, ord Ordering, tol float64) (*Symbolic, *LUFactors, error) {
	return AnalyzePerm(a, permFor(a, ord), tol)
}

// AnalyzePerm is Analyze with an explicit column pre-ordering (see
// FactorizePerm).
func AnalyzePerm(a *CSC, q []int, tol float64) (*Symbolic, *LUFactors, error) {
	f, err := FactorizePerm(a, q, tol)
	if err != nil {
		return nil, nil, err
	}
	s := &Symbolic{
		n: f.n, q: f.q, pinv: f.pinv,
		lp: f.lp, up: f.up, li: f.li, ui: f.ui,
		tol: tol,
		pat: patternOf(a),
	}
	return s, f, nil
}

// PatternMatches reports whether a has exactly the sparsity pattern this
// Symbolic was analyzed for.
func (s *Symbolic) PatternMatches(a *CSC) bool { return s.pat.matches(a) }

// N returns the matrix dimension the Symbolic was analyzed for.
func (s *Symbolic) N() int { return s.n }

// NNZ returns the fill of the analyzed factorization: total stored
// entries of L and U.
func (s *Symbolic) NNZ() int { return len(s.li) + len(s.ui) }

// Refactor computes a numeric LU of a on the frozen symbolic structure:
// same ordering, same pivot sequence, same L/U patterns, values
// recomputed for a. It is the hot half of the symbolic/numeric split —
// a single left-looking sweep with no graph traversal and no pivot
// search. Refactoring the analyzed matrix itself reproduces the
// analyzing factorization bit for bit.
//
// Returns ErrPatternChanged if a's pattern differs from the analyzed
// one, and ErrRefactorUnstable (or ErrSingular) when the frozen pivots
// are no longer numerically acceptable for a's values; both are cues to
// re-Analyze.
func (s *Symbolic) Refactor(a *CSC) (*LUFactors, error) {
	if !s.PatternMatches(a) {
		return nil, ErrPatternChanged
	}
	n := s.n
	f := &LUFactors{
		n: n, q: s.q, pinv: s.pinv,
		lp: s.lp, up: s.up, li: s.li, ui: s.ui,
		lx: make([]float64, len(s.li)), ux: make([]float64, len(s.ui)),
		lnzTotal:   len(s.li) + len(s.ui),
		pivotTolND: s.tol,
	}
	x := make([]float64, n) // dense accumulator in pivot coordinates
	for k := 0; k < n; k++ {
		col := s.q[k]
		for p := a.ColPtr[col]; p < a.ColPtr[col+1]; p++ {
			x[s.pinv[a.RowIdx[p]]] = a.Val[p]
		}
		// Eliminate in the recorded order: the U column's stored sequence
		// is the topological order the analysis used, so every x[j] is
		// final when consumed. The diagonal is the column's last entry.
		d := s.up[k+1] - 1
		for p := s.up[k]; p < d; p++ {
			j := s.ui[p]
			xj := x[j]
			f.ux[p] = xj
			x[j] = 0
			if xj == 0 {
				continue
			}
			for pl := s.lp[j] + 1; pl < s.lp[j+1]; pl++ {
				x[s.li[pl]] -= f.lx[pl] * xj
			}
		}
		pivot := x[k]
		x[k] = 0
		apiv := math.Abs(pivot)
		amax := apiv
		for p := s.lp[k] + 1; p < s.lp[k+1]; p++ {
			if t := math.Abs(x[s.li[p]]); t > amax {
				amax = t
			}
		}
		if pivot == 0 || math.IsNaN(pivot) || amax == 0 {
			return nil, ErrSingular
		}
		if apiv < refactorPivotFloor*amax {
			return nil, ErrRefactorUnstable
		}
		f.ux[d] = pivot
		f.lx[s.lp[k]] = 1
		for p := s.lp[k] + 1; p < s.lp[k+1]; p++ {
			i := s.li[p]
			f.lx[p] = x[i] / pivot
			x[i] = 0
		}
	}
	return f, nil
}

// CacheStats counts symbolic-reuse work. Refactors/(Analyses+Refactors)
// is the reuse rate; Fallbacks counts refactorizations abandoned for
// numerical reasons and replaced by a fresh analysis; Orderings counts
// fill-reducing orderings computed (cache misses in an OrderingCache).
type CacheStats struct {
	Analyses  uint64 // full factorizations (pattern analysis + pivoting)
	Refactors uint64 // numeric-only refactorizations on a cached pattern
	Fallbacks uint64 // refactor attempts that had to re-analyze
	Orderings uint64 // fill-reducing orderings computed from scratch
}

// add accumulates o into s.
func (s *CacheStats) add(o CacheStats) {
	s.Analyses += o.Analyses
	s.Refactors += o.Refactors
	s.Fallbacks += o.Fallbacks
	s.Orderings += o.Orderings
}

// symbolicCacheCap bounds how many distinct patterns one cache retains.
// The KKT loop needs at most two (the plain pattern and its Tikhonov-
// regularized variant); a little headroom covers callers that interleave
// a few structures through one cache.
const symbolicCacheCap = 4

// SymbolicCache amortizes symbolic LU analysis across a sequential
// stream of factorizations that share sparsity patterns — the
// interior-point KKT systems of one solve, or one Newton solve's
// Jacobians. Factorize analyzes on first sight of a pattern, then
// numerically refactorizes every subsequent matrix with that pattern,
// re-analyzing automatically if the frozen pivot sequence goes stale.
//
// Because the frozen pivots come from the first matrix seen, results
// depend (in the last floating-point bits) on the stream's history; use
// one SymbolicCache per solve and share only an OrderingCache across
// solves to keep solver output independent of request order — the
// serving daemon and the parallel sweeps rely on that.
type SymbolicCache struct {
	ord    Ordering
	oc     *OrderingCache // optional source of cached orderings
	tol    float64
	shaped bool           // analyze the pivot surrogate, not first-seen values
	parent *SymbolicCache // optional shared pattern-pure cache (see NewChild)

	mu    sync.Mutex
	syms  []*Symbolic // most recently used first
	stats CacheStats
}

// NewSymbolicCache returns an empty cache that analyzes new patterns
// with the given ordering and pivot threshold (see FactorizeOpts).
func NewSymbolicCache(ord Ordering, tol float64) *SymbolicCache {
	return &SymbolicCache{ord: ord, tol: tol}
}

// NewSymbolicCacheFrom returns a cache that sources fill-reducing
// orderings from oc (computing and caching them there on first sight of
// a pattern) — the seam that lets many per-solve SymbolicCaches share
// one per-grid ordering analysis.
func NewSymbolicCacheFrom(oc *OrderingCache, tol float64) *SymbolicCache {
	return &SymbolicCache{ord: oc.Ordering(), oc: oc, tol: tol}
}

// Ordering returns the fill-reducing ordering the cache analyzes with.
func (c *SymbolicCache) Ordering() Ordering { return c.ord }

// Shaped switches the cache to pivot-shaped analysis and returns it (a
// constructor modifier: NewSymbolicCacheFrom(oc, tol).Shaped()). A
// shaped cache analyzes the pattern-derived pivot surrogate instead of
// the first matrix seen, so the frozen pivot sequence — like the
// ordering — becomes a pure function of the sparsity pattern. Two
// consequences:
//
//   - Sharing is deterministic. A plain cache must stay per-solve
//     because its pivots encode the first solve's values; a shaped
//     cache can be shared across solves (see NewChild) without making
//     any result depend on another solve's values.
//   - Diagonally grounded patterns order better. The surrogate's
//     dominant stored diagonals keep pivots on the diagonal wherever
//     the pattern has one, so fill tracks the symmetric-elimination
//     prediction minimum-degree orderings optimize — on quasi-definite
//     KKT systems this is several times less fill than pivots frozen at
//     an interior-point iterate's lopsided values.
//
// Numeric safety is unchanged: every refactorization still runs the
// pivot-decay check, and a pattern whose real values reject the shaped
// pivots falls back to a fresh value-pivoted analysis exactly like any
// stale pivot sequence (counted in Fallbacks). Value-pivoted fallback
// analyses are kept out of shared parents so those stay pattern-pure.
func (c *SymbolicCache) Shaped() *SymbolicCache {
	c.shaped = true
	return c
}

// NewChild returns a per-stream cache layered over c: lookups consult
// the child first, then c, and analyses the child performs are inserted
// into both. Entries the child uses are pinned locally, so a pattern
// evicted from a busy shared parent (e.g. a parallel contingency sweep
// cycling more patterns than the MRU retains) cannot force a mid-solve
// re-analysis. The child inherits the parent's ordering source, pivot
// threshold and shaped mode; its Stats count only this stream's work,
// which keeps the per-solve accounting mips reports unchanged.
//
// The parent must be a shaped cache: sharing value-pivoted symbolics
// would make one stream's pivot choices — and with them the last bits
// of every result — depend on whichever stream analyzed first.
func (c *SymbolicCache) NewChild() *SymbolicCache {
	if !c.shaped {
		panic("sparse: NewChild requires a shaped parent cache (see Shaped)")
	}
	return &SymbolicCache{ord: c.ord, oc: c.oc, tol: c.tol, shaped: true, parent: c}
}

// Stats returns a snapshot of the cache counters.
func (c *SymbolicCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// FactorSlot holds per-pattern preallocated factors and workspace for
// FactorizeInto. One slot serves one sequential factorization stream
// (e.g. one interior-point solve); the factors returned through it are
// valid until the next FactorizeInto call on the same slot.
type FactorSlot struct {
	sym *Symbolic
	f   *LUFactors
	ws  *RefactorWorkspace

	// threads is the solver thread request set by SetThreads; pr is the
	// lazily built parallel runner for (sym, threads). See parallel.go.
	threads int
	pr      *parRunner
}

// SetThreads sets the slot's solver thread count for subsequent
// factorizations and solves. n <= 1 keeps every kernel serial; n > 1
// enables the parallel kernels on patterns whose schedule marks them
// worthwhile (the n >= 192 blocked threshold). Results are bit-identical
// at every thread count.
func (sl *FactorSlot) SetThreads(n int) {
	if n < 1 {
		n = 1
	}
	if n != sl.threads {
		sl.threads = n
		sl.pr = nil
	}
}

func (sl *FactorSlot) bind(sym *Symbolic) {
	sl.sym = sym
	sl.f = &LUFactors{}
	sl.ws = sym.NewRefactorWorkspace()
	sl.pr = nil
}

// Factorize returns an LU of a, refactorizing on a cached symbolic
// analysis when a's pattern has been seen before and analyzing it
// otherwise. Refactorizations go through the automatically selected
// kernel (scalar or blocked — see Symbolic.Blocked).
func (c *SymbolicCache) Factorize(a *CSC) (*LUFactors, error) {
	return c.factorize(a, nil)
}

// FactorizeInto is Factorize reusing slot's preallocated factor storage
// and workspace: on the steady-state path (pattern already analyzed,
// slot already bound to it) it performs zero allocations. The returned
// factors alias the slot and are valid until the next call.
func (c *SymbolicCache) FactorizeInto(slot *FactorSlot, a *CSC) (*LUFactors, error) {
	return c.factorize(a, slot)
}

func (c *SymbolicCache) factorize(a *CSC, slot *FactorSlot) (*LUFactors, error) {
	sym := c.lookup(a)
	if sym == nil && c.parent != nil {
		if sym = c.parent.lookup(a); sym != nil {
			// Pin the shared entry locally: parent evictions can no
			// longer force this stream to re-analyze mid-solve.
			c.insert(sym, a)
		}
	}
	if sym != nil {
		f, err := refactorOn(sym, a, slot)
		if err == nil {
			c.mu.Lock()
			c.stats.Refactors++
			c.mu.Unlock()
			return f, nil
		}
		// Frozen pivots went stale (or the matrix is numerically
		// singular): re-analyze with fresh value pivoting. The
		// value-pivoted replacement stays local — shared parents hold
		// only pattern-pure entries.
		c.mu.Lock()
		c.stats.Fallbacks++
		c.mu.Unlock()
		return c.analyzeValue(a, slot)
	}
	if c.shaped {
		f, analyzed, err := c.analyzeShaped(a, slot)
		if err == nil {
			return f, nil
		}
		if analyzed {
			// The shaped pivot sequence exists but a's values reject
			// it; fall back to value pivoting like any stale sequence.
			c.mu.Lock()
			c.stats.Fallbacks++
			c.mu.Unlock()
		}
		return c.analyzeValue(a, slot)
	}
	return c.analyzeValue(a, slot)
}

// lookup returns the cached symbolic for a's pattern, bumped to the MRU
// position, or nil.
func (c *SymbolicCache) lookup(a *CSC) *Symbolic {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, s := range c.syms {
		if s.PatternMatches(a) {
			copy(c.syms[1:i+1], c.syms[:i])
			c.syms[0] = s
			return s
		}
	}
	return nil
}

// insert places sym at the MRU position, replacing an existing entry for
// a's pattern and evicting the oldest beyond the cap. Racing inserts of
// the same pattern into a shared shaped cache store identical symbolics
// (pure functions of the pattern), so the replace keeps the cache
// correct either way.
func (c *SymbolicCache) insert(sym *Symbolic, a *CSC) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, s := range c.syms {
		if s.PatternMatches(a) {
			copy(c.syms[1:i+1], c.syms[:i])
			c.syms[0] = sym
			return
		}
	}
	c.syms = append(c.syms, nil)
	copy(c.syms[1:], c.syms)
	c.syms[0] = sym
	if len(c.syms) > symbolicCacheCap {
		c.syms = c.syms[:symbolicCacheCap]
	}
}

// refactorOn runs the auto-selected numeric kernel for a on sym, through
// slot's preallocated storage when one is given.
func refactorOn(sym *Symbolic, a *CSC, slot *FactorSlot) (*LUFactors, error) {
	if slot != nil {
		if slot.sym != sym {
			slot.bind(sym)
		}
		if slot.threads > 1 && sym.parallel().use {
			if err := slot.refactorParallel(a); err != nil {
				return nil, err
			}
			return slot.f, nil
		}
		if err := sym.refactorAutoInto(slot.f, slot.ws, a); err != nil {
			return nil, err
		}
		return slot.f, nil
	}
	return sym.refactorAuto(a)
}

// perm resolves the column ordering for a through the shared
// OrderingCache when one is attached.
func (c *SymbolicCache) perm(a *CSC) []int {
	if c.oc != nil {
		return c.oc.Perm(a)
	}
	return permFor(a, c.ord)
}

func (c *SymbolicCache) countAnalysis() {
	c.mu.Lock()
	c.stats.Analyses++
	if c.oc == nil {
		c.stats.Orderings++
	}
	c.mu.Unlock()
}

// analyzeValue analyzes a with its real values choosing the pivots, and
// caches the result locally (never in a shared parent: value-derived
// pivot sequences would make one stream's results depend on another's
// values).
func (c *SymbolicCache) analyzeValue(a *CSC, slot *FactorSlot) (*LUFactors, error) {
	sym, f, err := AnalyzePerm(a, c.perm(a), c.tol)
	if err != nil {
		return nil, err
	}
	c.countAnalysis()
	c.insert(sym, a)
	if slot != nil {
		// Bind the slot for the refactorizations that follow; the
		// analyzing factors themselves are freshly allocated.
		slot.bind(sym)
	}
	return f, nil
}

// analyzeShaped analyzes the pattern-derived pivot surrogate, then
// numerically refactors a on the shaped symbolic. The returned bool
// reports whether the surrogate analysis itself succeeded — when it did
// but a's values reject the shaped pivots, the caller counts a fallback
// before re-analyzing with value pivoting. Shaped symbolics are
// pattern-pure, so successful ones are published to the shared parent.
func (c *SymbolicCache) analyzeShaped(a *CSC, slot *FactorSlot) (*LUFactors, bool, error) {
	sym, _, err := AnalyzePerm(pivotSurrogate(a), c.perm(a), c.tol)
	if err != nil {
		return nil, false, err
	}
	sym.boost = true
	c.countAnalysis()
	f, err := refactorOn(sym, a, slot)
	if err != nil {
		return nil, true, err
	}
	if c.parent != nil {
		c.parent.insert(sym, a)
	}
	c.insert(sym, a)
	return f, true, nil
}

// SolveRefactored is a convenience for the common refactor-and-solve
// step: factorize a through the cache and solve for b.
func (c *SymbolicCache) SolveRefactored(a *CSC, b la.Vector) (la.Vector, error) {
	f, err := c.Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// OrderingCache memoizes fill-reducing orderings per sparsity pattern
// and aggregates solve-level reuse statistics. An ordering is a function
// of the pattern alone, so sharing this cache across concurrent solves,
// batch sweeps and serve requests is deterministic: unlike frozen pivot
// sequences, a cached permutation cannot make one request's numerics
// depend on another's values. This is the per-grid object opf.Prepare
// creates and Rebind/Perturb derivations share.
type OrderingCache struct {
	ord Ordering

	mu    sync.Mutex
	perms []*permEntry // most recently used first
	stats CacheStats
}

type permEntry struct {
	pat pattern
	q   []int
}

// NewOrderingCache returns an empty cache computing ord orderings.
func NewOrderingCache(ord Ordering) *OrderingCache {
	return &OrderingCache{ord: ord}
}

// Ordering returns the fill-reducing ordering the cache computes.
func (c *OrderingCache) Ordering() Ordering { return c.ord }

// Perm returns the cached column ordering for a's pattern, computing and
// caching it on first sight. The returned slice is shared: callers must
// not modify it.
func (c *OrderingCache) Perm(a *CSC) []int {
	c.mu.Lock()
	for i, e := range c.perms {
		if e.pat.matches(a) {
			copy(c.perms[1:i+1], c.perms[:i])
			c.perms[0] = e
			c.mu.Unlock()
			return e.q
		}
	}
	c.mu.Unlock()
	q := permFor(a, c.ord)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Orderings++
	// A racing goroutine may have inserted the same pattern meanwhile;
	// its permutation is identical (pure function of the pattern), so
	// inserting a duplicate only wastes a slot — check again.
	for _, e := range c.perms {
		if e.pat.matches(a) {
			return e.q
		}
	}
	c.perms = append(c.perms, nil)
	copy(c.perms[1:], c.perms)
	c.perms[0] = &permEntry{pat: patternOf(a), q: q}
	if len(c.perms) > symbolicCacheCap {
		c.perms = c.perms[:symbolicCacheCap]
	}
	return q
}

// AddSolveStats folds one solve's SymbolicCache counters into the
// aggregate (mips calls this when a solve finishes).
func (c *OrderingCache) AddSolveStats(s CacheStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.add(s)
}

// Stats returns the aggregated counters: orderings computed here plus
// the analysis/refactor counts of every solve that reported in.
func (c *OrderingCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
