package sparse

import (
	"sync"
	"sync/atomic"

	"repro/internal/la"
)

// This file executes the parallel schedules of etree.go: the factor
// task DAG on a bounded set of participants (the calling goroutine plus
// up to threads-1 pool helpers) and the level-scheduled triangular
// solves. Determinism never depends on scheduling: every destination
// column is computed whole by one participant running the serial
// per-column kernel, and every solve row is pulled by one participant
// in the serial sweep's per-row order, so results are bit-identical to
// the single-threaded kernels at every thread count.

const (
	phaseFactor = iota
	phaseSolve
)

// solveSeg is one executable segment of a solve plan: a row range of
// its schedule's order array, chunked for dynamic claiming (serial
// segments are a single chunk, so exactly one participant sweeps them).
type solveSeg struct {
	d      *solveSched
	lo, hi int32
	chunks int32
	cr     int32
	back   bool
}

// parRunner owns the reusable run state of one FactorSlot's parallel
// kernels. All storage is preallocated at build, so steady-state
// parallel refactor/solve runs allocate nothing.
type parRunner struct {
	s       *Symbolic
	sched   *parSched
	threads int

	mu   sync.Mutex
	cond *sync.Cond
	// curEpoch identifies the active run; helpers holding a stale epoch
	// bail without touching run state. joined counts helpers currently
	// inside a participant loop and running marks an active run: a run
	// only ends once joined drains to zero, and joins require running,
	// so a stalled helper can never claim work from a later run's reset
	// counters. All guarded by mu.
	curEpoch uint64
	phase    int // read once per helper at join
	joined   int
	running  bool

	idSeq atomic.Int32         // participant id allocator, reset per run
	wss   []*RefactorWorkspace // per-participant factor workspaces

	// Current run inputs (set by the owner before helpers join).
	f *LUFactors
	a *CSC
	y []float64

	// Factor DAG state. pred/bad/ready/outstanding/err* guarded by mu.
	pred        []int32
	bad         []bool
	ready       []int32
	head        int
	outstanding int
	errCol      int
	errRun      error

	// Solve state: the segment list and per-segment chunk claim /
	// remaining counters (atomics, reset by the owner per run).
	segs     []solveSeg
	segChunk []int32
	segLeft  []int32
}

func newParRunner(s *Symbolic, threads int) *parRunner {
	p := s.parallel()
	r := &parRunner{s: s, sched: p, threads: threads}
	r.cond = sync.NewCond(&r.mu)
	r.wss = make([]*RefactorWorkspace, threads)
	for i := range r.wss {
		r.wss[i] = s.NewRefactorWorkspace()
	}
	r.pred = make([]int32, p.nTasks)
	r.bad = make([]bool, p.nTasks)
	r.ready = make([]int32, 0, p.nTasks)
	r.buildSolveSegs(&p.fwd, false)
	r.buildSolveSegs(&p.bwd, true)
	r.segChunk = make([]int32, len(r.segs))
	r.segLeft = make([]int32, len(r.segs))
	return r
}

// buildSolveSegs appends one direction's execution segments. A
// direction whose plan is not worth its barriers still runs through the
// segment machinery — as a single serial sweep, which costs what the
// serial kernel costs while keeping the participants in lockstep.
func (r *parRunner) buildSolveSegs(d *solveSched, back bool) {
	if d.use {
		for i := 0; i < len(d.chunks); i++ {
			r.segs = append(r.segs, solveSeg{
				d: d, lo: d.segPtr[i], hi: d.segPtr[i+1],
				chunks: d.chunks[i], cr: d.chunkRows[i], back: back,
			})
		}
		return
	}
	total := int32(len(d.order))
	r.segs = append(r.segs, solveSeg{d: d, lo: 0, hi: total, chunks: 1, cr: total, back: back})
}

// help is the pool entry point: join the runner's current parallel
// region if the invitation is still current and a participant id is
// free.
func (r *parRunner) help(epoch uint64) {
	r.mu.Lock()
	if r.curEpoch != epoch || !r.running {
		r.mu.Unlock()
		return
	}
	ph := r.phase
	r.joined++
	r.mu.Unlock()
	if id := int(r.idSeq.Add(1)); id < r.threads {
		if ph == phaseFactor {
			r.factorLoop(r.wss[id], epoch)
		} else {
			r.solveLoop(epoch)
		}
	}
	r.mu.Lock()
	r.joined--
	if r.joined == 0 {
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// refactorParallel runs the auto-selected kernel over the task DAG.
// Called from refactorOn once the slot is bound and threads > 1.
func (sl *FactorSlot) refactorParallel(a *CSC) error {
	s := sl.sym
	if !s.PatternMatches(a) {
		return ErrPatternChanged
	}
	p := s.parallel()
	if sl.pr == nil || sl.pr.threads != sl.threads {
		sl.pr = newParRunner(s, sl.threads)
	}
	s.bindFactors(sl.f, p.li)
	return sl.pr.runFactor(sl.f, a)
}

func (r *parRunner) runFactor(f *LUFactors, a *CSC) error {
	p := r.sched
	r.mu.Lock()
	r.f, r.a = f, a
	copy(r.pred, p.npred)
	for i := range r.bad {
		r.bad[i] = false
	}
	r.ready = append(r.ready[:0], p.roots...)
	r.head = 0
	r.outstanding = p.nTasks
	r.errCol = -1
	r.errRun = nil
	r.phase = phaseFactor
	r.idSeq.Store(0)
	r.curEpoch++
	r.running = true
	epoch := r.curEpoch
	r.mu.Unlock()
	poolSubmit(r, epoch, r.threads-1)
	r.factorLoop(r.wss[0], epoch)
	r.mu.Lock()
	r.running = false
	for r.joined > 0 {
		r.cond.Wait()
	}
	err := r.errRun
	r.mu.Unlock()
	return err
}

// factorLoop is the participant body of a factor run: pop ready tasks
// and execute them until the run drains. The owner's call returns only
// when every task has completed or been skipped.
func (r *parRunner) factorLoop(ws *RefactorWorkspace, epoch uint64) {
	for {
		r.mu.Lock()
		for r.curEpoch == epoch && r.outstanding > 0 && r.head == len(r.ready) {
			r.cond.Wait()
		}
		if r.curEpoch != epoch || r.outstanding == 0 {
			r.mu.Unlock()
			return
		}
		t := int(r.ready[r.head])
		r.head++
		skip := r.bad[t]
		r.mu.Unlock()
		r.execTask(t, ws, skip)
	}
}

// execTask runs one supernode's member columns in order with the serial
// per-column kernel, then releases its successors. Failures propagate:
// dependents of a failed (or skipped) task are skipped, every
// independent task still runs, and the recorded error is the one the
// smallest failing column produced — provably the error the serial
// sweep would have returned, since each column's arithmetic is
// identical given identical dependency values.
func (r *parRunner) execTask(t int, ws *RefactorWorkspace, skip bool) {
	p := r.sched
	failed := skip
	var err error
	errK := -1
	if !failed {
		b := r.s.blocked()
		for k := p.snStart[t]; k <= p.snEnd[t]; k++ {
			var e error
			if p.blocked {
				e = r.s.refactorColumnBlocked(r.f, ws, r.a, b, k)
			} else {
				e = r.s.refactorColumn(r.f, ws.x, r.a, k)
			}
			if e != nil {
				failed, err, errK = true, e, k
				break
			}
		}
	}
	r.mu.Lock()
	if err != nil && (r.errCol < 0 || errK < r.errCol) {
		r.errCol, r.errRun = errK, err
	}
	pushed := 0
	for _, sc := range p.succ[p.succPtr[t]:p.succPtr[t+1]] {
		if failed {
			r.bad[sc] = true
		}
		r.pred[sc]--
		if r.pred[sc] == 0 {
			r.ready = append(r.ready, sc)
			pushed++
		}
	}
	r.outstanding--
	if r.outstanding == 0 {
		r.cond.Broadcast()
	} else {
		for i := 0; i < pushed; i++ {
			r.cond.Signal()
		}
	}
	r.mu.Unlock()
}

// SolveInto solves A·x = b with factors produced through this slot,
// using the level-scheduled parallel sweeps when the slot's thread
// setting and the pattern's schedule enable them, and the serial kernel
// otherwise. Results are bit-identical either way. f must be the
// factors the slot's last FactorizeInto returned; foreign factors (or a
// serial slot) fall through to LUFactors.SolveInto unchanged.
func (sl *FactorSlot) SolveInto(f *LUFactors, dst, b, work la.Vector) {
	if f != sl.f || sl.threads < 2 || sl.sym == nil {
		f.SolveInto(dst, b, work)
		return
	}
	p := sl.sym.parallel()
	if !p.use || (!p.fwd.use && !p.bwd.use) ||
		len(f.li) == 0 || &f.li[0] != &p.li[0] {
		f.SolveInto(dst, b, work)
		return
	}
	if sl.pr == nil || sl.pr.threads != sl.threads {
		sl.pr = newParRunner(sl.sym, sl.threads)
	}
	sl.pr.runSolve(f, dst, b, work)
}

func (r *parRunner) runSolve(f *LUFactors, dst, b, work la.Vector) {
	n := f.n
	if len(b) != n || len(dst) != n || len(work) != n {
		panic("sparse: LU SolveInto length mismatch")
	}
	y := work
	for i := 0; i < n; i++ {
		y[f.pinv[i]] = b[i]
	}
	r.mu.Lock()
	r.f = f
	r.y = y
	for i := range r.segs {
		r.segChunk[i] = 0
		r.segLeft[i] = r.segs[i].chunks
	}
	r.phase = phaseSolve
	r.idSeq.Store(0)
	r.curEpoch++
	r.running = true
	epoch := r.curEpoch
	r.mu.Unlock()
	poolSubmit(r, epoch, r.threads-1)
	r.solveLoop(epoch)
	r.mu.Lock()
	r.running = false
	for r.joined > 0 {
		r.cond.Wait()
	}
	r.mu.Unlock()
	for k := 0; k < n; k++ {
		dst[f.q[k]] = y[k]
	}
}

// solveLoop is the participant body of a solve run: walk the segments
// in order, claim chunks dynamically within each, and wait for a
// segment to drain before entering the next — the level barrier that
// makes every pulled source row final.
func (r *parRunner) solveLoop(epoch uint64) {
	for si := range r.segs {
		sg := &r.segs[si]
		for {
			c := atomic.AddInt32(&r.segChunk[si], 1) - 1
			if c >= sg.chunks {
				break
			}
			r.execSolveChunk(sg, c)
			if atomic.AddInt32(&r.segLeft[si], -1) == 0 {
				r.mu.Lock()
				r.cond.Broadcast()
				r.mu.Unlock()
			}
		}
		if atomic.LoadInt32(&r.segLeft[si]) > 0 {
			r.mu.Lock()
			for r.curEpoch == epoch && atomic.LoadInt32(&r.segLeft[si]) > 0 {
				r.cond.Wait()
			}
			stale := r.curEpoch != epoch
			r.mu.Unlock()
			if stale {
				return
			}
		}
	}
}

// execSolveChunk pulls one chunk of rows: each row's final value is the
// serial sweep's per-row subtraction sequence (ascending source columns
// forward, descending backward, sources skipped at zero exactly like
// the push-based kernel), so any dependency-respecting execution
// produces bit-identical solutions.
func (r *parRunner) execSolveChunk(sg *solveSeg, c int32) {
	d := sg.d
	lo := sg.lo + c*sg.cr
	hi := lo + sg.cr
	if hi > sg.hi {
		hi = sg.hi
	}
	y := r.y
	if !sg.back {
		lx := r.f.lx
		for _, i := range d.order[lo:hi] {
			yi := y[i]
			for e := d.rowPtr[i]; e < d.rowPtr[i+1]; e++ {
				yk := y[d.col[e]]
				if yk == 0 {
					continue
				}
				yi -= lx[d.pos[e]] * yk
			}
			y[i] = yi
		}
		return
	}
	ux := r.f.ux
	up := r.f.up
	for _, i := range d.order[lo:hi] {
		yi := y[i]
		for e := d.rowPtr[i+1] - 1; e >= d.rowPtr[i]; e-- {
			yk := y[d.col[e]]
			if yk == 0 {
				continue
			}
			yi -= ux[d.pos[e]] * yk
		}
		yi /= ux[up[i+1]-1]
		y[i] = yi
	}
}

// NewFactorSlot returns a slot bound to this Symbolic, ready for
// Into-style refactorization streams and slot-level solves.
func (s *Symbolic) NewFactorSlot() *FactorSlot {
	sl := &FactorSlot{}
	sl.bind(s)
	return sl
}

// Refactor runs the automatically selected numeric kernel — serial or
// parallel per SetThreads and the pattern's schedule — into the slot's
// preallocated factors.
func (sl *FactorSlot) Refactor(a *CSC) (*LUFactors, error) {
	return refactorOn(sl.sym, a, sl)
}

// Factors returns the slot's bound factors (valid after a successful
// Refactor/FactorizeInto, until the next one).
func (sl *FactorSlot) Factors() *LUFactors { return sl.f }
