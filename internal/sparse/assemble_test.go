package sparse

import (
	"math/rand"
	"testing"
)

// randTriplets draws a random triplet sequence (with duplicates) for an
// n×n matrix; the coordinate sequence is fixed, values vary per pass.
func randTriplets(r *rand.Rand, n, m int) (is, js []int) {
	for k := 0; k < m; k++ {
		is = append(is, r.Intn(n))
		js = append(js, r.Intn(n))
	}
	// Force duplicates so summation order matters.
	for k := 0; k < m/4; k++ {
		t := r.Intn(m)
		is = append(is, is[t])
		js = append(js, js[t])
	}
	return
}

// The compile pass, the stamp pass, and Builder.ToCSC must produce
// bit-identical matrices for the same append sequence: same structure,
// same duplicate summation order.
func TestAssemblerMatchesBuilderBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(30)
		is, js := randTriplets(r, n, 1+r.Intn(120))
		asm := NewAssembler(n, n)
		for pass := 0; pass < 3; pass++ { // pass 0 compiles, 1..2 stamp
			vals := make([]float64, len(is))
			for k := range vals {
				vals[k] = r.NormFloat64()
			}
			b := NewBuilder(n, n)
			asm.Begin()
			for k := range is {
				b.Append(is[k], js[k], vals[k])
				asm.Append(is[k], js[k], vals[k])
			}
			want, got := b.ToCSC(), asm.Finish()
			if want.NRows != got.NRows || want.NCols != got.NCols {
				t.Fatal("shape mismatch")
			}
			for j := 0; j <= n; j++ {
				if want.ColPtr[j] != got.ColPtr[j] {
					t.Fatalf("trial %d pass %d: ColPtr[%d] %d != %d", trial, pass, j, got.ColPtr[j], want.ColPtr[j])
				}
			}
			for p := range want.RowIdx {
				if want.RowIdx[p] != got.RowIdx[p] {
					t.Fatalf("trial %d pass %d: RowIdx[%d]", trial, pass, p)
				}
				if want.Val[p] != got.Val[p] {
					t.Fatalf("trial %d pass %d: Val[%d] = %v, want %v", trial, pass, p, got.Val[p], want.Val[p])
				}
			}
		}
	}
}

// A pass that deviates from the compiled sequence must recompile and
// still produce the right matrix — correctness never depends on the
// pattern actually being fixed.
func TestAssemblerRecompilesOnDeviation(t *testing.T) {
	asm := NewAssembler(3, 3)
	asm.Begin()
	asm.Append(0, 0, 1)
	asm.Append(1, 1, 2)
	asm.Finish()

	asm.Begin()
	asm.Append(0, 0, 5)
	asm.Append(2, 1, 7) // different coordinate than the compiled pass
	asm.Append(2, 2, 9) // and longer
	m := asm.Finish()
	if m.At(0, 0) != 5 || m.At(2, 1) != 7 || m.At(2, 2) != 9 || m.At(1, 1) != 0 {
		t.Fatalf("recompiled matrix wrong: %+v", m)
	}

	// And the next matching pass re-enters stamp mode.
	asm.Begin()
	asm.Append(0, 0, 1)
	asm.Append(2, 1, 2)
	asm.Append(2, 2, 3)
	m = asm.Finish()
	if m.At(0, 0) != 1 || m.At(2, 1) != 2 || m.At(2, 2) != 3 {
		t.Fatalf("stamped matrix wrong: %+v", m)
	}
}

// AppendCSC block assembly must match the Builder primitive.
func TestAssemblerAppendCSC(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	src, _ := randPatternPair(r, 6)
	for pass := 0; pass < 2; pass++ {
		b := NewBuilder(14, 14)
		asm := NewAssembler(14, 14)
		asm.Begin()
		for _, c := range []struct {
			ro, co int
			s      float64
		}{{0, 0, 1}, {6, 6, -2}, {8, 0, 0.5}} {
			b.AppendCSC(c.ro, c.co, c.s, src)
			asm.AppendCSC(c.ro, c.co, c.s, src)
		}
		want, got := b.ToCSC(), asm.Finish()
		for j := 0; j < 14; j++ {
			for i := 0; i < 14; i++ {
				if want.At(i, j) != got.At(i, j) {
					t.Fatalf("(%d,%d): %v != %v", i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

// AppendOuter must be bit-identical to the per-entry Append sequence it
// replaces — same coordinates, same product grouping, same duplicate
// summation order — on both the compile pass and the stamp passes.
func TestAssemblerAppendOuterMatchesAppend(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(20)
		// A few sparse "rows": sorted unique column sets with values.
		type row struct {
			cols []int32
			vals []float64
			w    float64
		}
		var rowsIn []row
		for len(rowsIn) < 3+r.Intn(5) {
			m := 1 + r.Intn(5)
			seen := map[int32]bool{}
			var cs []int32
			for len(cs) < m {
				c := int32(r.Intn(n))
				if !seen[c] {
					seen[c] = true
					cs = append(cs, c)
				}
			}
			vs := make([]float64, m)
			for i := range vs {
				vs[i] = r.NormFloat64()
			}
			rowsIn = append(rowsIn, row{cs, vs, r.Float64() + 0.5})
		}
		asm := NewAssembler(n, n)
		for pass := 0; pass < 3; pass++ { // pass 0 compiles, 1..2 stamp
			b := NewBuilder(n, n)
			asm.Begin()
			for _, rw := range rowsIn {
				// Refresh values each pass so a stale stamp would show.
				for i := range rw.vals {
					rw.vals[i] = r.NormFloat64()
				}
				for p1 := range rw.cols {
					v1 := rw.w * rw.vals[p1]
					for p2 := range rw.cols {
						b.Append(int(rw.cols[p1]), int(rw.cols[p2]), v1*rw.vals[p2])
					}
				}
				asm.AppendOuter(rw.w, rw.cols, rw.vals)
			}
			want, got := b.ToCSC(), asm.Finish()
			for j := 0; j <= n; j++ {
				if want.ColPtr[j] != got.ColPtr[j] {
					t.Fatalf("trial %d pass %d: ColPtr[%d]", trial, pass, j)
				}
			}
			for p := range want.RowIdx {
				if want.RowIdx[p] != got.RowIdx[p] || want.Val[p] != got.Val[p] {
					t.Fatalf("trial %d pass %d: entry %d = (%d,%v), want (%d,%v)",
						trial, pass, p, got.RowIdx[p], got.Val[p], want.RowIdx[p], want.Val[p])
				}
			}
		}
	}
}

// An AppendOuter call whose coordinates deviate mid-product from the
// compiled sequence must abandon the partial stamp and recompile to the
// correct matrix.
func TestAssemblerAppendOuterDeviation(t *testing.T) {
	asm := NewAssembler(5, 5)
	compilePass := func(cols []int32, vals []float64, w float64) *CSC {
		asm.Begin()
		asm.Append(0, 0, 1)
		asm.AppendOuter(w, cols, vals)
		asm.Append(4, 4, 2)
		return asm.Finish()
	}
	compilePass([]int32{1, 3}, []float64{2, 5}, 1) // compile
	compilePass([]int32{1, 3}, []float64{2, 5}, 1) // stamp, stays live

	// Deviating column set: the fast path bails partway through the
	// outer product and the recompile must still be right.
	asm.Begin()
	asm.Append(0, 0, 1)
	asm.AppendOuter(3, []int32{1, 2}, []float64{2, 5})
	asm.Append(4, 4, 2)
	m := asm.Finish()
	checks := []struct {
		i, j int
		v    float64
	}{
		{0, 0, 1}, {4, 4, 2},
		{1, 1, 3 * 2 * 2}, {1, 2, 3 * 2 * 5}, {2, 1, 3 * 5 * 2}, {2, 2, 3 * 5 * 5},
	}
	for _, c := range checks {
		if got := m.At(c.i, c.j); got != c.v {
			t.Fatalf("after deviation: At(%d,%d) = %v, want %v", c.i, c.j, got, c.v)
		}
	}
	if m.At(3, 3) != 0 || m.At(1, 3) != 0 {
		t.Fatal("stale entries from the compiled pattern survived the recompile")
	}

	// The next matching pass re-enters stamp mode with correct values.
	asm.Begin()
	asm.Append(0, 0, 7)
	asm.AppendOuter(1, []int32{1, 2}, []float64{1, 1})
	asm.Append(4, 4, 9)
	m = asm.Finish()
	if m.At(0, 0) != 7 || m.At(1, 2) != 1 || m.At(4, 4) != 9 {
		t.Fatalf("stamped matrix wrong after recompile: %+v", m)
	}
}

// A stamped pass (Stamp*At + FinishStamped) over a compiled sequence
// must be bit-identical to the serial Append pass it shards — same
// structure, same duplicate summation order — at every reduction thread
// count, including mixed Append/AppendOuter/AppendCSC sequences.
func TestAssemblerStampedMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		n := 6 + r.Intn(24)
		is, js := randTriplets(r, n, 1+r.Intn(80))
		outerCols := []int32{int32(r.Intn(n - 1)), int32(n - 1)}
		src, _ := randPatternPair(r, 4)
		asm := NewAssembler(n, n)
		serial := func(vals, ov []float64) *CSC {
			asm.Begin()
			for _, c := range outerCols {
				asm.AppendOuter(0.5, outerCols, ov)
				_ = c
			}
			for k := range is {
				asm.Append(is[k], js[k], vals[k])
			}
			asm.AppendCSC(0, 0, -2, src)
			return asm.Finish()
		}
		fresh := func() ([]float64, []float64) {
			vals := make([]float64, len(is))
			for k := range vals {
				vals[k] = r.NormFloat64()
			}
			ov := []float64{r.NormFloat64(), r.NormFloat64()}
			return vals, ov
		}
		v0, o0 := fresh()
		serial(v0, o0) // compile
		for _, threads := range []int{1, 2, 4, 8} {
			vals, ov := fresh()
			ref := serial(vals, ov)
			refVal := append([]float64(nil), ref.Val...)
			// Same values, stamped out of order across the sequence.
			k := 0
			ok := true
			for range outerCols {
				k, ok = asm.StampOuterAt(k, 0.5, outerCols, ov)
				if !ok {
					t.Fatal("outer stamp deviated")
				}
			}
			for t2 := range is {
				if k, ok = asm.StampAt(k, is[t2], js[t2], vals[t2]); !ok {
					t.Fatal("stamp deviated")
				}
			}
			if k, ok = asm.StampCSCAt(k, 0, 0, -2, src); !ok {
				t.Fatal("CSC stamp deviated")
			}
			got, ok := asm.FinishStamped(k, threads)
			if !ok {
				t.Fatal("FinishStamped rejected a full pass")
			}
			for p := range refVal {
				if got.Val[p] != refVal[p] {
					t.Fatalf("trial %d threads %d: Val[%d] = %v, want %v",
						trial, threads, p, got.Val[p], refVal[p])
				}
			}
		}
	}
}

// Stamp calls against coordinates that deviate from the compiled
// sequence, or a FinishStamped that does not cover it, must report
// false so the caller replays serially — and the serial replay must
// still produce the right matrix afterwards.
func TestAssemblerStampedDeviation(t *testing.T) {
	asm := NewAssembler(4, 4)
	pass := func(v float64) *CSC {
		asm.Begin()
		asm.Append(0, 0, v)
		asm.Append(1, 2, 2*v)
		asm.Append(1, 2, v) // duplicate
		return asm.Finish()
	}
	pass(1)
	if _, ok := asm.StampAt(0, 3, 3, 5); ok {
		t.Fatal("deviating StampAt accepted")
	}
	if _, ok := asm.StampAt(99, 0, 0, 5); ok {
		t.Fatal("out-of-range StampAt accepted")
	}
	k, ok := asm.StampAt(0, 0, 0, 5)
	if !ok {
		t.Fatal("matching StampAt rejected")
	}
	if _, ok := asm.FinishStamped(k, 1); ok {
		t.Fatal("short FinishStamped accepted")
	}
	// Serial replay after the abandoned stamped pass.
	m := pass(3)
	if m.At(0, 0) != 3 || m.At(1, 2) != 9 {
		t.Fatalf("replay wrong: %+v", m.Val)
	}
}

// The steady-state stamped pass must not allocate once the reduction
// structure exists — the sharded KKT assembly's half of the
// zero-allocation pin.
func TestAssemblerStampedAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := rand.New(rand.NewSource(41))
	is, js := randTriplets(r, 40, 400)
	vals := make([]float64, len(is))
	for k := range vals {
		vals[k] = r.NormFloat64()
	}
	asm := NewAssembler(40, 40)
	asm.Begin()
	for k := range is {
		asm.Append(is[k], js[k], vals[k])
	}
	asm.Finish() // compile
	stamped := func() {
		k := 0
		ok := true
		for t2 := range is {
			if k, ok = asm.StampAt(k, is[t2], js[t2], vals[t2]); !ok {
				panic("deviated")
			}
		}
		if _, ok = asm.FinishStamped(k, 4); !ok {
			panic("rejected")
		}
	}
	stamped() // build the reduction structure
	if n := testing.AllocsPerRun(100, stamped); n != 0 {
		t.Fatalf("stamped pass allocates %v times per run, want 0", n)
	}
}

// The steady-state stamp path must not allocate: this is what keeps the
// warm MIPS iteration loop allocation-free.
func TestAssemblerStampAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := rand.New(rand.NewSource(29))
	is, js := randTriplets(r, 40, 400)
	vals := make([]float64, len(is))
	for k := range vals {
		vals[k] = r.NormFloat64()
	}
	outerCols := []int32{3, 17, 31}
	outerVals := []float64{1.5, -2, 0.25}
	asm := NewAssembler(40, 40)
	stamp := func() {
		asm.Begin()
		for k := range is {
			asm.Append(is[k], js[k], vals[k])
		}
		asm.AppendOuter(0.5, outerCols, outerVals)
		asm.Finish()
	}
	stamp() // compile
	if n := testing.AllocsPerRun(100, stamp); n != 0 {
		t.Fatalf("stamp pass allocates %v times per run, want 0", n)
	}
}
