package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/la"
)

// denseTailSystem builds a sparse band system with a dense trailing
// block — the shape that produces wide supernodes in the factor (fill
// makes the last columns share one below-row set), so the panel path
// is guaranteed to be exercised.
func denseTailSystem(r *rand.Rand, n, tail int) *CSC {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Append(i, i, 8+r.Float64()*4)
		if i+1 < n {
			b.Append(i, i+1, r.NormFloat64())
			b.Append(i+1, i, r.NormFloat64())
		}
	}
	for i := n - tail; i < n; i++ {
		for j := n - tail; j < n; j++ {
			if i != j {
				b.Append(i, j, r.NormFloat64())
			}
		}
		// Couple the tail to the band so the pattern is irreducible.
		b.Append(i, r.Intn(n-tail), r.NormFloat64())
		b.Append(r.Intn(n-tail), i, r.NormFloat64())
	}
	return b.ToCSC()
}

// panelSystem builds, for the natural ordering, a tridiagonal system
// with a dense column block [c0, c0+w) coupled to the last three rows:
// the block columns share exactly {next block rows} ∪ {tail rows} as
// below sets, which is the textbook supernode shape — panels in the
// middle of the elimination with a nonempty shared below-row set.
func panelSystem(r *rand.Rand, n, w int) *CSC {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Append(i, i, 50+r.Float64()*10)
		if i+1 < n {
			b.Append(i, i+1, r.NormFloat64())
			b.Append(i+1, i, r.NormFloat64())
		}
	}
	c0 := n / 2
	for i := c0; i < c0+w; i++ {
		for j := c0; j < c0+w; j++ {
			if i != j {
				b.Append(i, j, r.NormFloat64())
			}
		}
		for _, t := range []int{n - 3, n - 2, n - 1} {
			b.Append(t, i, r.NormFloat64())
			b.Append(i, t, r.NormFloat64())
		}
	}
	return b.ToCSC()
}

// sameValues reuses a matrix's pattern with fresh values.
func withFreshValues(r *rand.Rand, a *CSC) *CSC {
	c := a.Clone()
	for p := range c.Val {
		if c.RowIdx[p] == colOf(c, p) {
			c.Val[p] = 8 + r.Float64()*4
		} else {
			c.Val[p] = r.NormFloat64()
		}
	}
	return c
}

func colOf(a *CSC, p int) int {
	for j := 0; j < a.NCols; j++ {
		if p >= a.ColPtr[j] && p < a.ColPtr[j+1] {
			return j
		}
	}
	return -1
}

// compareKernels refactors a through both kernels on one Symbolic and
// checks the factors agree: identical U positions (same ui layout),
// and solves within tol of each other and of the dense reference.
func compareKernels(t *testing.T, sym *Symbolic, a *CSC, r *rand.Rand, tol float64) {
	t.Helper()
	fs, errS := sym.Refactor(a)
	fb, errB := sym.RefactorBlocked(a)
	if (errS == nil) != (errB == nil) {
		t.Fatalf("kernel error mismatch: scalar %v, blocked %v", errS, errB)
	}
	if errS != nil {
		return
	}
	for p := range fs.ux {
		d := math.Abs(fs.ux[p] - fb.ux[p])
		if d > tol*(1+math.Abs(fs.ux[p])) {
			t.Fatalf("ux[%d]: scalar %v vs blocked %v", p, fs.ux[p], fb.ux[p])
		}
	}
	rhs := make(la.Vector, a.NRows)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	xs, xb := fs.Solve(rhs), fb.Solve(rhs)
	if xs.Clone().Sub(xb).NormInf() > tol*(1+xs.NormInf()) {
		t.Fatalf("solve mismatch: |xs-xb| = %v", xs.Clone().Sub(xb).NormInf())
	}
	xd, err := la.Solve(a.ToDense(), rhs)
	if err == nil && xb.Clone().Sub(xd).NormInf() > 1e-6*(1+la.Vector(xd).NormInf()) {
		t.Fatalf("blocked vs dense reference: %v", xb.Clone().Sub(xd).NormInf())
	}
}

// Property: on random patterns, RefactorBlocked agrees with the scalar
// Refactor and the dense reference for every ordering.
func TestRefactorBlockedMatchesScalarRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(60)
		a1, a2 := randPatternPair(r, n)
		for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD} {
			sym, _, err := Analyze(a1, ord, 1.0)
			if err != nil {
				return false
			}
			compareKernels(t, sym, a2, r, 1e-9)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Dense trailing blocks must actually form panels, and the panel path
// must agree with the scalar kernel on them.
func TestRefactorBlockedDenseTailPanels(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := 40 + r.Intn(80)
		tail := 6 + r.Intn(10)
		a := denseTailSystem(r, n, tail)
		sym, _, err := Analyze(a, OrderAMD, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		st := sym.PanelStats()
		if st.MaxWidth < 2 {
			t.Fatalf("trial %d: dense tail produced no panels: %+v", trial, st)
		}
		compareKernels(t, sym, a, r, 1e-9)
		compareKernels(t, sym, withFreshValues(r, a), r, 1e-9)
	}
}

// Mid-elimination panels with a nonempty shared below-row set: the
// panel-axpy path (not just the dense triangular part) must run and
// agree with the scalar kernel.
func TestRefactorBlockedMidPanels(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 8; trial++ {
		n := 30 + r.Intn(60)
		w := 4 + r.Intn(8)
		a := panelSystem(r, n, w)
		sym, _, err := Analyze(a, OrderNatural, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		st := sym.PanelStats()
		if st.MaxWidth < 2 || st.MaxBelow == 0 || st.PanelFrac == 0 {
			t.Fatalf("trial %d (n=%d w=%d): no below-coupled panels: %+v", trial, n, w, st)
		}
		compareKernels(t, sym, a, r, 1e-9)
		compareKernels(t, sym, withFreshValues(r, a), r, 1e-9)
	}
}

// The blocked kernel must apply the same pivot-decay floor as the
// scalar kernel and restore its workspace on the error path, so the
// SymbolicCache re-analyze fallback works identically for both.
func TestRefactorBlockedUnstableFallback(t *testing.T) {
	build := func(d float64) *CSC {
		b := NewBuilder(2, 2)
		b.Append(0, 0, d)
		b.Append(0, 1, 1)
		b.Append(1, 0, 1)
		b.Append(1, 1, d)
		return b.ToCSC()
	}
	sym, _, err := Analyze(build(2), OrderNatural, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	f := &LUFactors{}
	ws := sym.NewRefactorWorkspace()
	if err := sym.RefactorBlockedInto(f, ws, build(1e-14)); !errors.Is(err, ErrRefactorUnstable) {
		t.Fatalf("blocked kernel on decayed pivot: %v, want ErrRefactorUnstable", err)
	}
	for i, v := range ws.x {
		if v != 0 {
			t.Fatalf("workspace not restored after error: x[%d] = %v", i, v)
		}
	}
	// The workspace survives the error and a good matrix still factors.
	if err := sym.RefactorBlockedInto(f, ws, build(3)); err != nil {
		t.Fatal(err)
	}
	x := f.Solve(la.Vector{1, 2})
	if res := build(3).MulVec(x).Sub(la.Vector{1, 2}).NormInf(); res > 1e-12 {
		t.Fatalf("post-fallback solve residual %v", res)
	}

	// Through the cache with the blocked kernel forced on: the decayed
	// matrix must trigger the re-analyze fallback, exactly like the
	// scalar path in TestSymbolicCacheUnstableFallback.
	c := NewSymbolicCache(OrderNatural, 1.0)
	if _, err := c.Factorize(build(2)); err != nil {
		t.Fatal(err)
	}
	c.syms[0].blocked().use = true
	fac, err := c.Factorize(build(1e-14))
	if err != nil {
		t.Fatal(err)
	}
	weak := build(1e-14)
	x = fac.Solve(la.Vector{1, 2})
	if res := weak.MulVec(x).Sub(la.Vector{1, 2}).NormInf(); res > 1e-9 {
		t.Fatalf("fallback solve residual %v", res)
	}
	if st := c.Stats(); st.Fallbacks != 1 || st.Analyses != 2 {
		t.Fatalf("stats = %+v, want 1 fallback + 2 analyses", st)
	}
}

// Into-variants must match their allocating counterparts bit for bit
// and rebind cleanly when one factors/workspace pair is reused across
// kernels and matrices.
func TestRefactorIntoMatchesRefactor(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	a := denseTailSystem(r, 60, 8)
	sym, _, err := Analyze(a, OrderRCM, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	f := &LUFactors{}
	ws := sym.NewRefactorWorkspace()
	for trial := 0; trial < 4; trial++ {
		m := withFreshValues(r, a)
		want, err := sym.Refactor(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := sym.RefactorInto(f, ws, m); err != nil {
			t.Fatal(err)
		}
		for p := range want.lx {
			if want.lx[p] != f.lx[p] {
				t.Fatalf("trial %d: RefactorInto differs from Refactor at lx[%d]", trial, p)
			}
		}
		for p := range want.ux {
			if want.ux[p] != f.ux[p] {
				t.Fatalf("trial %d: RefactorInto differs from Refactor at ux[%d]", trial, p)
			}
		}
		wantB, err := sym.RefactorBlocked(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := sym.RefactorBlockedInto(f, ws, m); err != nil {
			t.Fatal(err)
		}
		for p := range wantB.lx {
			if wantB.lx[p] != f.lx[p] {
				t.Fatalf("trial %d: RefactorBlockedInto differs from RefactorBlocked at lx[%d]", trial, p)
			}
		}
		for p := range wantB.ux {
			if wantB.ux[p] != f.ux[p] {
				t.Fatalf("trial %d: RefactorBlockedInto differs from RefactorBlocked at ux[%d]", trial, p)
			}
		}
	}
}

// The steady-state numeric loop — refactor (either kernel) plus
// triangular solves — must allocate nothing. This is the kernel half
// of the allocation-regression harness; the MIPS-loop half lives in
// internal/mips.
func TestRefactorIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := rand.New(rand.NewSource(41))
	a := denseTailSystem(r, 120, 12)
	sym, _, err := Analyze(a, OrderAMD, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	m := withFreshValues(r, a)
	f := &LUFactors{}
	ws := sym.NewRefactorWorkspace()
	rhs := make(la.Vector, a.NRows)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	dst := make(la.Vector, a.NRows)
	work := make(la.Vector, a.NRows)
	if err := sym.RefactorBlockedInto(f, ws, m); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		fn   func()
	}{
		{"RefactorInto", func() {
			if err := sym.RefactorInto(f, ws, m); err != nil {
				t.Fatal(err)
			}
		}},
		{"RefactorBlockedInto", func() {
			if err := sym.RefactorBlockedInto(f, ws, m); err != nil {
				t.Fatal(err)
			}
		}},
		{"SolveInto", func() { f.SolveInto(dst, rhs, work) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(50, c.fn); n != 0 {
			t.Errorf("%s allocates %v times per call, want 0", c.name, n)
		}
	}

	// And through the cache slot: the full Factorize path of a warm
	// iteration loop.
	cache := NewSymbolicCache(OrderAMD, 1.0)
	slot := &FactorSlot{}
	if _, err := cache.FactorizeInto(slot, m); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.FactorizeInto(slot, m); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := cache.FactorizeInto(slot, m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("FactorizeInto allocates %v times per call, want 0", n)
	}
}

// Fuzz: arbitrary byte streams become (pattern, values) pairs; the two
// kernels must stay equivalent on whatever patterns come out. Run with
// `go test -fuzz FuzzRefactorBlocked ./internal/sparse` to explore; the
// seed corpus below runs as a normal test in CI.
func FuzzRefactorBlockedEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(3))
	f.Add(int64(99), uint8(40), uint8(12))
	f.Add(int64(-7), uint8(80), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, extraRaw uint8) {
		n := 2 + int(nRaw)%96
		r := rand.New(rand.NewSource(seed))
		a1, a2 := randPatternPair(r, n)
		sym, _, err := Analyze(a1, OrderRCM, 1.0)
		if err != nil {
			t.Skip() // singular draw
		}
		compareKernels(t, sym, a2, r, 1e-8)
		if extraRaw%2 == 0 {
			tail := 3 + int(extraRaw)%13
			if tail < n {
				d := denseTailSystem(r, n, tail)
				sym2, _, err := Analyze(d, OrderAMD, 1.0)
				if err != nil {
					t.Skip()
				}
				compareKernels(t, sym2, withFreshValues(r, d), r, 1e-8)
			}
		}
	})
}
