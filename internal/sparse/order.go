package sparse

import "fmt"

// Ordering selects the fill-reducing column/row pre-ordering for LU. The
// zero value is OrderRCM, the library-wide default.
type Ordering int

const (
	// OrderRCM applies reverse Cuthill–McKee on the pattern of A+Aᵀ,
	// reducing bandwidth (and with it fill) on the mesh-like matrices that
	// arise from power networks and their KKT systems.
	OrderRCM Ordering = iota
	// OrderNatural factors the matrix as given.
	OrderNatural
	// OrderAMD applies an approximate-minimum-degree ordering on the
	// pattern of A+Aᵀ: at each elimination step the variable of (an upper
	// bound on) minimum degree is eliminated, with the quotient-graph
	// element absorption of Amestoy, Davis & Duff so no explicit fill
	// cliques are formed. Minimum degree usually beats RCM on fill for
	// KKT systems, at a higher one-off analysis cost — exactly the trade
	// the symbolic/numeric split amortizes.
	OrderAMD
	// OrderAuto measures instead of assuming: it computes both the RCM
	// and the AMD permutation, factors a surrogate matrix — the same
	// pattern with values that are a deterministic hash of each entry's
	// position — under each, and keeps the ordering with the smaller
	// factor (RCM on a tie). Neither heuristic dominates across the
	// embedded fleet (RCM beats AMD by ~2.4× of real fill on the
	// case118 KKT, AMD wins on case57-class patterns), and a
	// pivoting-free fill estimate is not enough: KKT matrices have a
	// zero trailing diagonal block, so threshold pivoting leaves the
	// diagonal and fill diverges badly from the symmetric-elimination
	// prediction. Probing with a *pattern-derived* surrogate keeps the
	// choice a pure function of the sparsity pattern — required for the
	// OrderingCache's guarantee that parallel sweeps are bit-identical
	// regardless of which instance populates the cache — while still
	// exercising real pivoted elimination. The probe costs two ordering
	// computations plus two symbolic factorizations, once per sparsity
	// pattern when used through an OrderingCache/SymbolicCache (the
	// opf.Prepare path); combining it with NoKKTReuse-style
	// per-iteration factorization re-probes every call (opf falls back
	// to RCM on that baseline unless auto is forced explicitly).
	OrderAuto
)

// Resolve returns the concrete ordering OrderAuto selects for the
// pattern of a; every other ordering resolves to itself. Reporting
// layers use it to label which heuristic an auto-configured
// factorization actually ran with.
func (o Ordering) Resolve(a *CSC) Ordering {
	if o != OrderAuto {
		return o
	}
	fr, errR := probeFill(a, rcmOrder(a))
	fa, errA := probeFill(a, amdOrder(a))
	switch {
	case errR != nil && errA == nil:
		return OrderAMD
	case errA != nil:
		return OrderRCM
	case fa < fr:
		return OrderAMD
	default:
		return OrderRCM
	}
}

// String returns the flag-style name of the ordering.
func (o Ordering) String() string {
	switch o {
	case OrderNatural:
		return "natural"
	case OrderRCM:
		return "rcm"
	case OrderAMD:
		return "amd"
	case OrderAuto:
		return "auto"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// ParseOrdering maps a flag value ("natural", "rcm", "amd", "auto") to
// an Ordering.
func ParseOrdering(s string) (Ordering, error) {
	switch s {
	case "natural":
		return OrderNatural, nil
	case "rcm":
		return OrderRCM, nil
	case "amd":
		return OrderAMD, nil
	case "auto":
		return OrderAuto, nil
	}
	return OrderNatural, fmt.Errorf("sparse: unknown ordering %q (want natural, rcm, amd or auto)", s)
}

// permFor computes the column pre-ordering for a square matrix. The
// returned slice lists original column indices in their new order.
func permFor(a *CSC, ord Ordering) []int {
	switch ord {
	case OrderRCM:
		return rcmOrder(a)
	case OrderAMD:
		return amdOrder(a)
	case OrderAuto:
		return autoOrder(a)
	default:
		q := make([]int, a.NCols)
		for i := range q {
			q[i] = i
		}
		return q
	}
}

// symAdjacency builds the adjacency lists of the undirected graph of
// A+Aᵀ without self loops.
func symAdjacency(a *CSC) [][]int {
	n := a.NRows
	adj := make([][]int, n)
	seen := make(map[[2]int]struct{}, a.NNZ()*2)
	addEdge := func(i, j int) {
		if i == j {
			return
		}
		k := [2]int{i, j}
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		adj[i] = append(adj[i], j)
	}
	for j := 0; j < a.NCols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			addEdge(i, j)
			addEdge(j, i)
		}
	}
	return adj
}

// rcmOrder computes a reverse Cuthill–McKee ordering on the symmetrized
// pattern of a. The returned slice q lists original column indices in
// their new order.
func rcmOrder(a *CSC) []int {
	n := a.NRows
	adj := symAdjacency(a)
	deg := make([]int, n)
	for i := range adj {
		deg[i] = len(adj[i])
	}
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for {
		// Find the unvisited node of minimum degree as the next BFS root.
		root := -1
		for i := 0; i < n; i++ {
			if !visited[i] && (root == -1 || deg[i] < deg[root]) {
				root = i
			}
		}
		if root == -1 {
			break
		}
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			// Append unvisited neighbours in increasing-degree order.
			nbrs := make([]int, 0, len(adj[v]))
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			for i := 1; i < len(nbrs); i++ {
				for j := i; j > 0 && deg[nbrs[j]] < deg[nbrs[j-1]]; j-- {
					nbrs[j], nbrs[j-1] = nbrs[j-1], nbrs[j]
				}
			}
			queue = append(queue, nbrs...)
		}
	}
	// Reverse for RCM.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// autoOrder picks between the RCM and AMD permutation by probed factor
// fill (see OrderAuto and Resolve). Both candidate orderings and the
// probe are deterministic functions of the pattern, so the choice — and
// with it every downstream factorization — is too.
func autoOrder(a *CSC) []int {
	if OrderAuto.Resolve(a) == OrderAMD {
		return amdOrder(a)
	}
	return rcmOrder(a)
}

// pivotSurrogate builds a matrix with a's exact pattern and
// pattern-derived values: stored diagonal entries get a dominant
// magnitude (well-scaled diagonals keep threshold pivots on the
// diagonal, as in the KKT's Hessian block) and off-diagonals a position
// hash spread over [1, 2) — avoiding the singular all-ones case and
// systematic pivot ties. Structural zeros that matter (absent entries,
// e.g. a KKT matrix's empty trailing diagonal block) still force
// off-diagonal pivoting. Both the ordering probe and shaped symbolic
// analysis (SymbolicCache.Shaped) factor this surrogate, so the pivot
// sequences they freeze are pure functions of the sparsity pattern.
func pivotSurrogate(a *CSC) *CSC {
	sur := &CSC{NRows: a.NRows, NCols: a.NCols, ColPtr: a.ColPtr, RowIdx: a.RowIdx, Val: make([]float64, len(a.RowIdx))}
	for j := 0; j < a.NCols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if i == j {
				sur.Val[p] = float64(2 * a.NRows)
				continue
			}
			h := uint32(i)*2654435761 + uint32(j)*40503
			h ^= h >> 13
			sur.Val[p] = 1 + float64(h%1024)/1024
		}
	}
	return sur
}

// probeFill measures the pivoted LU fill of a's pattern under perm by
// factorizing the pattern-derived pivot surrogate. Real values must not
// be used: the probe's outcome is cached per pattern and shared across
// concurrently solved instances whose values differ, so it has to be
// value-independent — the same reason shaped symbolic analysis uses the
// identical surrogate, which keeps the probe's fill ranking consistent
// with the fill shaped factorizations actually see.
func probeFill(a *CSC, perm []int) (int, error) {
	f, err := FactorizePerm(pivotSurrogate(a), perm, 1.0)
	if err != nil {
		return 0, err
	}
	return f.NNZ(), nil
}

// amdOrder computes an approximate-minimum-degree ordering on the
// symmetrized pattern of a, using the quotient-graph formulation: an
// eliminated variable becomes an element whose variable list stands in
// for the fill clique, elements adjacent to the pivot are absorbed into
// the new one, and variable degrees are tracked as the classic AMD upper
// bound |adjacent variables| + Σ over adjacent elements of |element|−1.
func amdOrder(a *CSC) []int {
	n := a.NRows
	varAdj := symAdjacency(a) // plain variable-variable edges, pruned as we go
	varElems := make([][]int, n)
	elemVars := make([][]int, n) // elemVars[v] set when v is eliminated
	live := make([]bool, n)
	absorbed := make([]bool, n)
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		live[i] = true
		deg[i] = len(varAdj[i])
	}
	mark := make([]bool, n)
	order := make([]int, 0, n)

	// compact drops eliminated variables from an element's variable list
	// in place, so repeated scans stay proportional to the live set.
	compact := func(e int) []int {
		vs := elemVars[e][:0]
		for _, w := range elemVars[e] {
			if live[w] {
				vs = append(vs, w)
			}
		}
		elemVars[e] = vs
		return vs
	}

	for len(order) < n {
		// Pick the live variable of minimum approximate degree.
		v := -1
		for i := 0; i < n; i++ {
			if live[i] && (v == -1 || deg[i] < deg[v]) {
				v = i
			}
		}
		order = append(order, v)
		live[v] = false

		// The new element's variables: live plain neighbours of v plus the
		// live variables of every element adjacent to v.
		lv := make([]int, 0, deg[v])
		mark[v] = true
		for _, w := range varAdj[v] {
			if live[w] && !mark[w] {
				mark[w] = true
				lv = append(lv, w)
			}
		}
		for _, e := range varElems[v] {
			if absorbed[e] {
				continue
			}
			for _, w := range compact(e) {
				if !mark[w] {
					mark[w] = true
					lv = append(lv, w)
				}
			}
			absorbed[e] = true
		}
		mark[v] = false
		elemVars[v] = lv

		// Update every variable of the new element: prune its plain edges
		// that the element now covers (lv members are still marked), drop
		// absorbed elements, append the new one, and recompute the
		// approximate degree.
		for _, i := range lv {
			na := varAdj[i][:0]
			nd := 0
			for _, w := range varAdj[i] {
				if live[w] && w != v && !mark[w] {
					na = append(na, w)
					nd++
				}
			}
			varAdj[i] = na
			ne := varElems[i][:0]
			for _, e := range varElems[i] {
				if !absorbed[e] {
					ne = append(ne, e)
				}
			}
			ne = append(ne, v)
			varElems[i] = ne
			for _, e := range ne {
				nd += len(compact(e)) - 1
			}
			deg[i] = nd
		}
		for _, w := range lv {
			mark[w] = false
		}
	}
	return order
}
