package sparse

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/la"
)

// parallelTestThreads are the thread counts every equivalence test
// pins: the parallel kernels must be bit-identical to the serial ones
// at each of them.
var parallelTestThreads = []int{1, 2, 4, 8}

// bigDenseTail builds a system above the parallel threshold with a
// dense trailing block, so the blocked kernel and wide supernodes are
// exercised under the task DAG.
func bigDenseTail(r *rand.Rand, n, tail int) *CSC {
	return denseTailSystem(r, n, tail)
}

// bigTridiag builds a tridiagonal system above the parallel threshold:
// no fill, no panels, so the auto selection keeps the scalar kernel and
// the task DAG drives refactorColumn directly.
func bigTridiag(r *rand.Rand, n int) *CSC {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Append(i, i, 8+r.Float64()*4)
		if i+1 < n {
			b.Append(i, i+1, r.NormFloat64())
			b.Append(i+1, i, r.NormFloat64())
		}
	}
	return b.ToCSC()
}

// checkParallelKernels refactors and solves m on sym at every tested
// thread count and requires bit-identity with the serial auto kernel.
func checkParallelKernels(t *testing.T, sym *Symbolic, m *CSC, r *rand.Rand) {
	t.Helper()
	ref := &LUFactors{}
	ws := sym.NewRefactorWorkspace()
	if err := sym.refactorAutoInto(ref, ws, m); err != nil {
		t.Fatal(err)
	}
	refCopy := &LUFactors{}
	*refCopy = *ref
	refCopy.lx = append([]float64(nil), ref.lx...)
	refCopy.ux = append([]float64(nil), ref.ux...)
	rhs := make(la.Vector, m.NRows)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	// Sprinkle exact zeros into the rhs so the solves' zero-skip paths
	// run on both kernels.
	for i := 0; i < len(rhs); i += 7 {
		rhs[i] = 0
	}
	wantX := make(la.Vector, m.NRows)
	work := make(la.Vector, m.NRows)
	ref.SolveInto(wantX, rhs, work)
	for _, threads := range parallelTestThreads {
		sl := sym.NewFactorSlot()
		sl.SetThreads(threads)
		f, err := sl.Refactor(m)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if !f.EqualValues(refCopy) {
			t.Fatalf("threads=%d: parallel factors differ from serial kernel", threads)
		}
		got := make(la.Vector, m.NRows)
		sl.SolveInto(f, got, rhs, work)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(wantX[i]) {
				t.Fatalf("threads=%d: solve differs at %d: %v vs %v", threads, i, got[i], wantX[i])
			}
		}
	}
}

// The parallel blocked kernel must be bit-identical to the
// single-threaded blocked kernel on panel-heavy systems at every thread
// count.
func TestParallelRefactorDenseTail(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for _, cfg := range []struct{ n, tail int }{{220, 24}, {400, 40}, {640, 16}} {
		a := bigDenseTail(r, cfg.n, cfg.tail)
		sym, _, err := Analyze(a, OrderAMD, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if !sym.parallel().use {
			t.Fatalf("n=%d: parallel schedule unexpectedly disabled", cfg.n)
		}
		checkParallelKernels(t, sym, a, r)
		checkParallelKernels(t, sym, withFreshValues(r, a), r)
	}
}

// The parallel scalar kernel (no panels selected) must be bit-identical
// to the serial scalar kernel.
func TestParallelRefactorScalarPath(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	a := bigTridiag(r, 500)
	sym, _, err := Analyze(a, OrderNatural, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if sym.blocked().use {
		t.Fatal("tridiagonal system unexpectedly selected the blocked kernel")
	}
	if !sym.parallel().use {
		t.Fatal("parallel schedule unexpectedly disabled")
	}
	checkParallelKernels(t, sym, a, r)
	checkParallelKernels(t, sym, withFreshValues(r, a), r)
}

// Below the n>=192 threshold the auto heuristic keeps everything
// serial: a threaded slot must take the serial kernel path and still
// produce serial-identical results.
func TestParallelRefactorSmallStaysSerial(t *testing.T) {
	r := rand.New(rand.NewSource(57))
	a := denseTailSystem(r, 80, 10)
	sym, _, err := Analyze(a, OrderAMD, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if sym.parallel().use {
		t.Fatal("parallel schedule enabled below the blocked threshold")
	}
	checkParallelKernels(t, sym, withFreshValues(r, a), r)
}

// Property: random patterns (forced through the parallel schedule by
// flipping use) stay bit-identical to the serial kernel at every thread
// count — the fuzz half of the equivalence suite.
func TestParallelRefactorMatchesSerialRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(120)
		a1, a2 := randPatternPair(r, n)
		for _, ord := range []Ordering{OrderNatural, OrderAMD} {
			sym, _, err := Analyze(a1, ord, 1.0)
			if err != nil {
				return true // singular draw
			}
			// Force the schedule on regardless of size so small random
			// patterns exercise the DAG and level plans too.
			sym.parallel().use = true
			sym.parallel().fwd.use = true
			sym.parallel().bwd.use = true
			checkParallelKernels(t, sym, a2, r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Error semantics: the parallel kernel must report the error of the
// smallest failing column — exactly what the serial sweep returns — and
// restore every participant workspace for the next run.
func TestParallelRefactorErrorEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	a := bigDenseTail(r, 260, 20)
	sym, _, err := Analyze(a, OrderAMD, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	bad := withFreshValues(r, a)
	// Zero one mid-elimination column: its pivot column has no nonzero
	// candidate left, so the refactorization must fail at exactly that
	// elimination step.
	for p := bad.ColPtr[130]; p < bad.ColPtr[131]; p++ {
		bad.Val[p] = 0
	}
	refErr := sym.refactorAutoInto(&LUFactors{}, sym.NewRefactorWorkspace(), bad)
	if refErr == nil {
		t.Fatal("zeroed column unexpectedly factors")
	}
	for _, threads := range parallelTestThreads {
		sl := sym.NewFactorSlot()
		sl.SetThreads(threads)
		if _, err := refactorOn(sym, bad, sl); err != refErr {
			t.Fatalf("threads=%d: error %v, want %v", threads, err, refErr)
		}
		if sl.pr != nil {
			for _, ws := range sl.pr.wss {
				for i, v := range ws.x {
					if v != 0 {
						t.Fatalf("threads=%d: workspace not restored: x[%d]=%v", threads, i, v)
					}
				}
			}
		}
		// The same slot must factor a good matrix afterwards.
		good := withFreshValues(r, a)
		f, err := sl.Refactor(good)
		if err != nil {
			t.Fatalf("threads=%d: post-error refactor: %v", threads, err)
		}
		ref := &LUFactors{}
		if err := sym.refactorAutoInto(ref, sym.NewRefactorWorkspace(), good); err != nil {
			t.Fatal(err)
		}
		if !f.EqualValues(ref) {
			t.Fatalf("threads=%d: post-error factors differ from serial", threads)
		}
	}
}

// The steady-state parallel loop must allocate nothing once the runner
// is built — the zero-allocation pin the warm serving loop relies on.
func TestParallelRefactorAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := rand.New(rand.NewSource(61))
	a := bigDenseTail(r, 300, 24)
	sym, _, err := Analyze(a, OrderAMD, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	m := withFreshValues(r, a)
	sl := sym.NewFactorSlot()
	sl.SetThreads(4)
	f, err := sl.Refactor(m)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make(la.Vector, m.NRows)
	dst := make(la.Vector, m.NRows)
	work := make(la.Vector, m.NRows)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := sl.Refactor(m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("parallel Refactor allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { sl.SolveInto(f, dst, rhs, work) }); n != 0 {
		t.Errorf("parallel SolveInto allocates %v times per call, want 0", n)
	}
}

// SolverThreads resolution: explicit > PGSIM_SOLVER_THREADS > process
// default > 1, clamped to GOMAXPROCS.
func TestSolverThreadsResolution(t *testing.T) {
	defer SetDefaultSolverThreads(0)
	SetDefaultSolverThreads(0)
	t.Setenv("PGSIM_SOLVER_THREADS", "")
	if got := SolverThreads(0); got != 1 {
		t.Fatalf("default resolution = %d, want 1", got)
	}
	SetDefaultSolverThreads(2)
	if got, want := SolverThreads(0), min(2, runtime.GOMAXPROCS(0)); got != want {
		t.Fatalf("process default = %d, want %d", got, want)
	}
	t.Setenv("PGSIM_SOLVER_THREADS", "3")
	if got, want := SolverThreads(0), min(3, runtime.GOMAXPROCS(0)); got != want {
		t.Fatalf("env override = %d, want %d", got, want)
	}
	if got, want := SolverThreads(1), 1; got != want {
		t.Fatalf("explicit = %d, want %d", got, want)
	}
	if got, want := SolverThreads(1<<20), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("GOMAXPROCS clamp = %d, want %d", got, want)
	}
}
