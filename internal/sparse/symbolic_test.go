package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/la"
)

// randPatternPair builds two matrices with an identical sparsity pattern
// (same structural entries, duplicates included) but independent values.
func randPatternPair(r *rand.Rand, n int) (*CSC, *CSC) {
	type pos struct{ i, j int }
	var ps []pos
	for i := 0; i < n; i++ {
		ps = append(ps, pos{i, i})
		for k := 0; k < 3; k++ {
			ps = append(ps, pos{i, r.Intn(n)})
		}
	}
	build := func() *CSC {
		b := NewBuilder(n, n)
		for _, p := range ps {
			v := r.NormFloat64()
			if p.i == p.j {
				v = 5 + r.Float64()*5 // keep both diagonally dominant
			}
			b.Append(p.i, p.j, v)
		}
		return b.ToCSC()
	}
	return build(), build()
}

// Refactoring the analyzed matrix itself must reproduce the analyzing
// factorization bit for bit: same elimination sequence, same arithmetic.
func TestRefactorSameMatrixBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 5 + r.Intn(40)
		a, _ := randSparseSystem(r, n)
		sym, f0, err := Analyze(a, OrderRCM, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		f1, err := sym.Refactor(a)
		if err != nil {
			t.Fatal(err)
		}
		rhs := make(la.Vector, n)
		for i := range rhs {
			rhs[i] = r.NormFloat64()
		}
		x0, x1 := f0.Solve(rhs), f1.Solve(rhs)
		for i := range x0 {
			if x0[i] != x1[i] {
				t.Fatalf("trial %d: refactor solve differs at %d: %v != %v", trial, i, x0[i], x1[i])
			}
		}
	}
}

// The symbolic-reuse path on new numeric values must agree with the
// dense reference solver: analyze one matrix, refactor a second with the
// same pattern, and check the refactored solve against la.Solve.
func TestRefactorAgainstDenseReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(50)
		a1, a2 := randPatternPair(r, n)
		for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD} {
			sym, _, err := Analyze(a1, ord, 1.0)
			if err != nil {
				return false
			}
			fac, err := sym.Refactor(a2)
			if err != nil {
				return false
			}
			rhs := make(la.Vector, n)
			for i := range rhs {
				rhs[i] = r.NormFloat64()
			}
			xs := fac.Solve(rhs)
			xd, err := la.Solve(a2.ToDense(), rhs)
			if err != nil {
				return false
			}
			if xs.Clone().Sub(xd).NormInf() > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRefactorRejectsPatternChange(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Append(0, 0, 2)
	b.Append(1, 1, 3)
	sym, _, err := Analyze(b.ToCSC(), OrderNatural, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b2 := NewBuilder(2, 2)
	b2.Append(0, 0, 2)
	b2.Append(1, 0, 1)
	b2.Append(1, 1, 3)
	if _, err := sym.Refactor(b2.ToCSC()); err != ErrPatternChanged {
		t.Fatalf("want ErrPatternChanged, got %v", err)
	}
}

// Property: every ordering yields a valid permutation of the columns, and
// a factorization under it solves the system (round trip through the
// permutation and its inverse application in Solve).
func TestOrderingPermutationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		a, x := randSparseSystem(r, n)
		rhs := a.MulVec(x)
		for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD} {
			q := permFor(a, ord)
			if len(q) != n {
				return false
			}
			seen := make([]bool, n)
			for _, v := range q {
				if v < 0 || v >= n || seen[v] {
					return false
				}
				seen[v] = true
			}
			fac, err := FactorizePerm(a, q, 1.0)
			if err != nil {
				return false
			}
			if fac.Solve(rhs).Sub(x).NormInf() > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAMDReducesFill(t *testing.T) {
	// A randomly permuted 2D Laplacian: minimum degree should produce
	// far less fill than the natural order of the shuffled matrix.
	side := 12
	n := side * side
	r := rand.New(rand.NewSource(9))
	perm := r.Perm(n)
	b := NewBuilder(n, n)
	at := func(i, j int) int { return perm[i*side+j] }
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			b.Append(at(i, j), at(i, j), 4)
			if i+1 < side {
				b.Append(at(i, j), at(i+1, j), -1)
				b.Append(at(i+1, j), at(i, j), -1)
			}
			if j+1 < side {
				b.Append(at(i, j), at(i, j+1), -1)
				b.Append(at(i, j+1), at(i, j), -1)
			}
		}
	}
	a := b.ToCSC()
	fn, err := FactorizeOpts(a, OrderNatural, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := FactorizeOpts(a, OrderAMD, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if fa.NNZ() >= fn.NNZ() {
		t.Fatalf("AMD fill %d >= natural fill %d", fa.NNZ(), fn.NNZ())
	}
}

func TestSymbolicCacheReuseAndStats(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a1, a2 := randPatternPair(r, 30)
	c := NewSymbolicCache(OrderRCM, 1.0)
	for _, m := range []*CSC{a1, a2, a1} {
		if _, err := c.Factorize(m); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Analyses != 1 || st.Refactors != 2 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 analysis + 2 refactors", st)
	}
	// A different pattern triggers a second analysis but keeps the first.
	b, _ := randSparseSystem(r, 31)
	if _, err := c.Factorize(b); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Factorize(a2); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Analyses != 2 || st.Refactors != 3 {
		t.Fatalf("stats = %+v, want 2 analyses + 3 refactors", st)
	}
}

// When new values make a frozen pivot collapse, the cache must notice
// and fall back to a fresh analysis that re-picks pivots — and still
// return a correct factorization.
func TestSymbolicCacheUnstableFallback(t *testing.T) {
	build := func(d float64) *CSC {
		b := NewBuilder(2, 2)
		b.Append(0, 0, d)
		b.Append(0, 1, 1)
		b.Append(1, 0, 1)
		b.Append(1, 1, d)
		return b.ToCSC()
	}
	c := NewSymbolicCache(OrderNatural, 1.0)
	if _, err := c.Factorize(build(2)); err != nil { // freezes diagonal pivots
		t.Fatal(err)
	}
	weak := build(1e-14) // frozen (0,0) pivot is 1e-14 vs candidate 1
	fac, err := c.Factorize(weak)
	if err != nil {
		t.Fatal(err)
	}
	x := fac.Solve(la.Vector{1, 2})
	res := weak.MulVec(x).Sub(la.Vector{1, 2})
	if res.NormInf() > 1e-9 {
		t.Fatalf("fallback solve residual %v", res.NormInf())
	}
	st := c.Stats()
	if st.Fallbacks != 1 || st.Analyses != 2 {
		t.Fatalf("stats = %+v, want 1 fallback + 2 analyses", st)
	}
}

func TestSymbolicCacheSingular(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Append(0, 0, 1)
	b.Append(0, 1, 2)
	b.Append(1, 0, 2)
	b.Append(1, 1, 4) // rank 1
	c := NewSymbolicCache(OrderRCM, 1.0)
	if _, err := c.Factorize(b.ToCSC()); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestOrderingCachePermsAndAggregation(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a1, a2 := randPatternPair(r, 25)
	oc := NewOrderingCache(OrderAMD)
	q1 := oc.Perm(a1)
	q2 := oc.Perm(a2) // same pattern -> same cached slice
	if &q1[0] != &q2[0] {
		t.Fatal("same pattern should return the cached permutation")
	}
	if got := oc.Stats().Orderings; got != 1 {
		t.Fatalf("orderings = %d, want 1", got)
	}
	// A per-solve cache wired to oc uses and charges it for orderings.
	sc := NewSymbolicCacheFrom(oc, 1.0)
	if sc.Ordering() != OrderAMD {
		t.Fatalf("ordering = %v", sc.Ordering())
	}
	for _, m := range []*CSC{a1, a2, a2} {
		if _, err := sc.Factorize(m); err != nil {
			t.Fatal(err)
		}
	}
	oc.AddSolveStats(sc.Stats())
	st := oc.Stats()
	if st.Analyses != 1 || st.Refactors != 2 || st.Orderings != 1 {
		t.Fatalf("aggregated stats = %+v", st)
	}
}

func TestParseOrderingRoundTrip(t *testing.T) {
	for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD} {
		got, err := ParseOrdering(ord.String())
		if err != nil || got != ord {
			t.Fatalf("round trip %v: got %v, err %v", ord, got, err)
		}
	}
	if _, err := ParseOrdering("colamd"); err == nil {
		t.Fatal("expected error for unknown ordering")
	}
	if OrderRCM != 0 {
		t.Fatal("OrderRCM must stay the zero value: it is the default ordering of zero-valued Options")
	}
}

func TestRefactorSingularValues(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	a, _ := randSparseSystem(r, 12)
	sym, _, err := Analyze(a, OrderRCM, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	zero := a.Clone()
	for i := range zero.Val {
		zero.Val[i] = 0
	}
	if _, err := sym.Refactor(zero); err == nil {
		t.Fatal("expected singular error for all-zero values")
	}
	nan := a.Clone()
	nan.Val[0] = math.NaN()
	if _, err := sym.Refactor(nan); err == nil {
		t.Fatal("expected error for NaN values")
	}
}
