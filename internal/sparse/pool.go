package sparse

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file holds the intra-solve worker pool and the solver-thread
// resolution chain. The pool is a single package-level set of helper
// goroutines shared by every parallel region in the process (factor
// task DAGs, level-scheduled solves, sharded KKT reductions). Sharing
// one pool keeps the global helper count bounded by GOMAXPROCS no
// matter how many solves run concurrently: each region asks for at
// most threads-1 helpers, submission is best-effort, and the owning
// goroutine always participates, so a region that gets no helpers
// still completes — just serially.
//
// Determinism does not depend on which helpers show up: every parallel
// region partitions its work so that each output value is produced by
// exactly one participant running the same instruction sequence the
// serial kernel would, so results are bit-identical at every thread
// count (the equivalence tests pin this at 1/2/4/8).

// helper is one parallel region a pool worker can join. help must
// return promptly when the region's epoch has moved on.
type helper interface {
	help(epoch uint64)
}

// poolItem is a best-effort invitation for one worker to join a region.
// Items are small values — submitting allocates nothing.
type poolItem struct {
	h     helper
	epoch uint64
}

var (
	poolOnce sync.Once
	poolCh   chan poolItem
	poolSize int
)

// poolStart lazily spins up the helper workers: GOMAXPROCS-1 parked
// goroutines draining one channel. Started on first parallel use, kept
// for the life of the process (parked goroutines cost a few KB each and
// no CPU).
func poolStart() {
	poolOnce.Do(func() {
		poolSize = runtime.GOMAXPROCS(0) - 1
		if poolSize < 1 {
			poolSize = 1
		}
		poolCh = make(chan poolItem, 4*poolSize)
		for i := 0; i < poolSize; i++ {
			go func() {
				for it := range poolCh {
					it.h.help(it.epoch)
				}
			}()
		}
	})
}

// poolSubmit invites up to n workers to join h's current epoch. Best
// effort: when the channel is full every invited worker is already
// busy, and dropping the invitation is correct — the region's owner
// does the work itself.
func poolSubmit(h helper, epoch uint64, n int) {
	poolStart()
	for i := 0; i < n; i++ {
		select {
		case poolCh <- poolItem{h: h, epoch: epoch}:
		default:
			return
		}
	}
}

// Solver-thread resolution. Mirrors batch.Workers: an explicit value
// wins, then the PGSIM_SOLVER_THREADS environment knob, then the
// process-wide default set by SetDefaultSolverThreads, then 1 (serial).
// The resolved count is a *request*: the auto heuristic keeps small
// systems serial, and batch.ThreadBudget clamps nested parallelism so
// problem-level workers × solver threads never oversubscribes
// GOMAXPROCS.

var defaultSolverThreads atomic.Int64

// SetDefaultSolverThreads sets the process-wide default solver thread
// count used when neither an explicit option nor PGSIM_SOLVER_THREADS
// is given. n <= 0 restores the built-in default of 1. The cmd layers
// call this from their -solver-threads flags.
func SetDefaultSolverThreads(n int) {
	if n < 0 {
		n = 0
	}
	defaultSolverThreads.Store(int64(n))
}

// SolverThreads resolves a solver thread count: explicit > 0 wins, then
// PGSIM_SOLVER_THREADS, then SetDefaultSolverThreads, then 1. The
// result is clamped to GOMAXPROCS — more threads than cores only adds
// scheduling noise to a deterministic kernel.
func SolverThreads(explicit int) int {
	n := explicit
	if n <= 0 {
		if env := os.Getenv("PGSIM_SOLVER_THREADS"); env != "" {
			if v, err := strconv.Atoi(env); err == nil && v > 0 {
				n = v
			}
		}
	}
	if n <= 0 {
		n = int(defaultSolverThreads.Load())
	}
	if n <= 0 {
		n = 1
	}
	if m := runtime.GOMAXPROCS(0); n > m {
		n = m
	}
	return n
}
