package sparse

import (
	"sync"
	"sync/atomic"
)

// ParFor is a reusable fork-join range runner over the package worker
// pool: Run splits [0, n) into fixed-size chunks claimed dynamically by
// the calling goroutine plus up to threads-1 pool helpers. It exists
// for data-parallel loops whose chunks write disjoint outputs — the
// sharded KKT assembly and the assembler's slot reduction — where any
// chunk-to-participant assignment produces identical results, so
// determinism is free and only the memory-model bookkeeping matters.
//
// The zero value is ready to use. A ParFor is reusable but not
// reentrant: one Run at a time. All claim/exit bookkeeping is
// preallocated state, so steady-state Runs allocate nothing.
type ParFor struct {
	mu   sync.Mutex
	cond *sync.Cond
	// epoch identifies the active run and running marks one in flight;
	// joined counts pool helpers inside the claim loop. A run only ends
	// once joined drains to zero and joins require running, so a stalled
	// helper can never claim chunks from a later run's reset counters.
	// All guarded by mu.
	epoch   uint64
	joined  int
	running bool

	fn       func(lo, hi int) // active run's body; guarded by mu
	n, chunk int              // guarded by mu (copied at join)

	next, left int32 // atomic chunk claim / drain counters
}

// Run executes fn over [0, n) in chunk-sized ranges on up to threads
// participants (the caller included) and returns when every range has
// completed. fn must tolerate any partition of [0, n) into [lo, hi)
// ranges and must write only chunk-local outputs. threads < 2 (or a
// single chunk) runs fn(0, n) inline.
func (p *ParFor) Run(n, threads, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	nc := (n + chunk - 1) / chunk
	if threads > nc {
		threads = nc
	}
	if threads < 2 {
		fn(0, n)
		return
	}
	p.mu.Lock()
	if p.cond == nil {
		p.cond = sync.NewCond(&p.mu)
	}
	p.epoch++
	p.running = true
	p.fn, p.n, p.chunk = fn, n, chunk
	atomic.StoreInt32(&p.next, 0)
	atomic.StoreInt32(&p.left, int32(nc))
	epoch := p.epoch
	p.mu.Unlock()
	poolSubmit(p, epoch, threads-1)
	p.work(fn, n, chunk)
	p.mu.Lock()
	p.running = false
	for p.joined > 0 || atomic.LoadInt32(&p.left) != 0 {
		p.cond.Wait()
	}
	p.fn = nil
	p.mu.Unlock()
}

// work claims and executes chunks until none remain.
func (p *ParFor) work(fn func(lo, hi int), n, chunk int) {
	for {
		c := int(atomic.AddInt32(&p.next, 1)) - 1
		lo := c * chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
		if atomic.AddInt32(&p.left, -1) == 0 {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}
}

// help is the pool entry point: join the active run if the invitation
// is still current.
func (p *ParFor) help(epoch uint64) {
	p.mu.Lock()
	if p.epoch != epoch || !p.running {
		p.mu.Unlock()
		return
	}
	fn, n, chunk := p.fn, p.n, p.chunk
	p.joined++
	p.mu.Unlock()
	p.work(fn, n, chunk)
	p.mu.Lock()
	p.joined--
	if p.joined == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}
