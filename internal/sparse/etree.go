package sparse

// This file builds the parallel execution schedule of a Symbolic: the
// task DAG that drives the parallel refactorization and the level
// schedules that drive the parallel triangular solves. Like the blocked
// schedule it is a pure function of the frozen pattern, built lazily
// and cached on the Symbolic, so a benign build race stores identical
// schedules.
//
// The factor DAG's tasks are the supernodes of the blocked schedule
// (width-1 supernodes included, so the same DAG serves the scalar
// kernel). Task T precedes task S when some member column of S consumes
// an L column owned by T — exactly the U-pattern dependencies of the
// left-looking sweep, read off the stored (topologically ordered) U
// columns. A task executes its member columns in order on one worker
// using the same per-column kernel as the serial sweep, so any
// dependency-respecting execution produces bit-identical factors.
//
// The solve schedules re-express the push-based serial triangular
// sweeps as row-pulls: row i's final value is a fixed sequence of
// subtractions from already-final source rows, in ascending source
// order for the forward sweep and descending for the backward sweep —
// the same per-row arithmetic the serial sweep performs. Rows are
// levelized over the elimination dependencies (lvl[i] = 1 + max over
// source rows); wide levels run as parallel segments, narrow ones fuse
// into serial sweep segments.

const (
	// parMinLevelRows is the minimum level width run as a parallel solve
	// segment; narrower levels fuse into serial segments (the per-row
	// work is a handful of flops — below this width the segment barrier
	// costs more than the parallelism recovers).
	parMinLevelRows = 128
	// parMinParFrac is the minimum fraction of solve nnz inside parallel
	// segments for the parallel solve to be worth its barriers.
	parMinParFrac = 0.30
)

// solveSched is one triangular sweep re-expressed for level-scheduled
// row-pull execution.
type solveSched struct {
	// Row-pull structure: entries of row i at rowPtr[i]:rowPtr[i+1],
	// source column in col, value position (into lx or ux) in pos.
	// Entries are in ascending source order; the backward sweep
	// iterates them reversed.
	rowPtr []int32
	col    []int32
	pos    []int32

	// Execution plan: order lists rows segment by segment
	// (segPtr[s]:segPtr[s+1]); rows of a parallel segment are mutually
	// independent, serial segments are swept in stored order by one
	// worker. chunks[s] is the chunk count of segment s (1 for serial).
	order     []int32
	segPtr    []int32
	chunkRows []int32 // rows per chunk of each segment
	chunks    []int32
	use       bool
}

// parSched is the cached parallel plan of a Symbolic.
type parSched struct {
	li      []int // row backing the auto kernel binds (bli or s.li)
	blocked bool  // auto kernel is the blocked one

	// Factor task DAG over supernodes.
	nTasks  int
	snStart []int
	snEnd   []int
	succPtr []int32
	succ    []int32
	npred   []int32
	roots   []int32
	use     bool

	fwd, bwd solveSched
}

func (s *Symbolic) parallel() *parSched {
	if p := s.par.Load(); p != nil {
		return p
	}
	// Benign race: concurrent builders compute identical schedules
	// from the immutable pattern; first store wins.
	s.par.CompareAndSwap(nil, s.buildParSched())
	return s.par.Load()
}

func (s *Symbolic) buildParSched() *parSched {
	b := s.blocked()
	p := &parSched{blocked: b.use, snStart: b.snStart, snEnd: b.snEnd}
	if b.use {
		p.li = b.bli
	} else {
		p.li = s.li
	}
	p.buildDAG(s, b)
	p.fwd.buildForward(s, p.li)
	p.bwd.buildBackward(s)
	// The auto heuristic: parallelism only pays on systems the blocked
	// threshold already marks as large; below it the task-queue
	// bookkeeping dwarfs the per-column work.
	p.use = s.n >= blockedMinN && p.nTasks > 1
	return p
}

// buildDAG derives the supernode task DAG from the stored U patterns.
func (p *parSched) buildDAG(s *Symbolic, b *blockedSchedule) {
	nTasks := len(b.snStart)
	p.nTasks = nTasks
	p.npred = make([]int32, nTasks)
	cnt := make([]int32, nTasks)
	lastEdge := make([]int32, nTasks)
	for i := range lastEdge {
		lastEdge[i] = -1
	}
	// Pass 1: count deduplicated edges t -> me.
	for k := 0; k < s.n; k++ {
		me := int32(b.snOf[k])
		d := s.up[k+1] - 1
		for q := s.up[k]; q < d; q++ {
			t := b.snOf[s.ui[q]]
			if int32(t) != me && lastEdge[t] != me {
				lastEdge[t] = me
				cnt[t]++
				p.npred[me]++
			}
		}
	}
	p.succPtr = make([]int32, nTasks+1)
	for t := 0; t < nTasks; t++ {
		p.succPtr[t+1] = p.succPtr[t] + cnt[t]
	}
	p.succ = make([]int32, p.succPtr[nTasks])
	fill := make([]int32, nTasks)
	copy(fill, p.succPtr[:nTasks])
	for i := range lastEdge {
		lastEdge[i] = -1
	}
	// Pass 2: fill successor lists.
	for k := 0; k < s.n; k++ {
		me := int32(b.snOf[k])
		d := s.up[k+1] - 1
		for q := s.up[k]; q < d; q++ {
			t := b.snOf[s.ui[q]]
			if int32(t) != me && lastEdge[t] != me {
				lastEdge[t] = me
				p.succ[fill[t]] = me
				fill[t]++
			}
		}
	}
	for t := 0; t < nTasks; t++ {
		if p.npred[t] == 0 {
			p.roots = append(p.roots, int32(t))
		}
	}
}

// buildForward builds the L row-pull structure and level plan. li is
// the row backing the auto kernel binds into factors (bli when the
// blocked kernel is selected), so positions line up with f.lx.
func (d *solveSched) buildForward(s *Symbolic, li []int) {
	n := s.n
	d.rowPtr = make([]int32, n+1)
	for k := 0; k < n; k++ {
		for q := s.lp[k] + 1; q < s.lp[k+1]; q++ {
			d.rowPtr[li[q]+1]++
		}
	}
	for i := 0; i < n; i++ {
		d.rowPtr[i+1] += d.rowPtr[i]
	}
	nnz := d.rowPtr[n]
	d.col = make([]int32, nnz)
	d.pos = make([]int32, nnz)
	fill := make([]int32, n)
	copy(fill, d.rowPtr[:n])
	for k := 0; k < n; k++ {
		for q := s.lp[k] + 1; q < s.lp[k+1]; q++ {
			r := li[q]
			d.col[fill[r]] = int32(k)
			d.pos[fill[r]] = int32(q)
			fill[r]++
		}
	}
	// Levels: sources are strictly smaller rows, so one ascending pass.
	lvl := make([]int32, n)
	maxLvl := int32(0)
	for i := 0; i < n; i++ {
		m := int32(-1)
		for e := d.rowPtr[i]; e < d.rowPtr[i+1]; e++ {
			if l := lvl[d.col[e]]; l > m {
				m = l
			}
		}
		lvl[i] = m + 1
		if lvl[i] > maxLvl {
			maxLvl = lvl[i]
		}
	}
	// Forward rows with no incoming entries need no work at all: mark
	// them out of the plan.
	d.buildPlan(n, int(maxLvl), func(i int) int32 {
		if d.rowPtr[i] == d.rowPtr[i+1] {
			return -1
		}
		return lvl[i]
	}, false)
	d.decideUse()
}

// buildBackward builds the U row-pull structure and level plan. U rows
// are in pivot coordinates already; every row carries the final
// division, so all rows enter the plan.
func (d *solveSched) buildBackward(s *Symbolic) {
	n := s.n
	d.rowPtr = make([]int32, n+1)
	for k := 0; k < n; k++ {
		dd := s.up[k+1] - 1
		for q := s.up[k]; q < dd; q++ {
			d.rowPtr[s.ui[q]+1]++
		}
	}
	for i := 0; i < n; i++ {
		d.rowPtr[i+1] += d.rowPtr[i]
	}
	nnz := d.rowPtr[n]
	d.col = make([]int32, nnz)
	d.pos = make([]int32, nnz)
	fill := make([]int32, n)
	copy(fill, d.rowPtr[:n])
	for k := 0; k < n; k++ {
		dd := s.up[k+1] - 1
		for q := s.up[k]; q < dd; q++ {
			r := s.ui[q]
			d.col[fill[r]] = int32(k)
			d.pos[fill[r]] = int32(q)
			fill[r]++
		}
	}
	lvl := make([]int32, n)
	maxLvl := int32(0)
	for i := n - 1; i >= 0; i-- {
		m := int32(-1)
		for e := d.rowPtr[i]; e < d.rowPtr[i+1]; e++ {
			if l := lvl[d.col[e]]; l > m {
				m = l
			}
		}
		lvl[i] = m + 1
		if lvl[i] > maxLvl {
			maxLvl = lvl[i]
		}
	}
	d.buildPlan(n, int(maxLvl), func(i int) int32 { return lvl[i] }, true)
	d.decideUse()
}

// buildPlan groups rows by level into segments: levels at least
// parMinLevelRows wide become parallel segments, narrower ones fuse
// into serial sweeps. Row order within the plan is ascending for the
// forward sweep and descending for the backward one (desc=true) — a
// topological order for the fused serial segments either way. levelOf
// returns -1 for rows excluded from the plan.
func (d *solveSched) buildPlan(n, maxLvl int, levelOf func(int) int32, desc bool) {
	count := make([]int32, maxLvl+2)
	for i := 0; i < n; i++ {
		if l := levelOf(i); l >= 0 {
			count[l+1]++
		}
	}
	for l := 0; l <= maxLvl; l++ {
		count[l+1] += count[l]
	}
	total := count[maxLvl+1]
	d.order = make([]int32, total)
	fill := make([]int32, maxLvl+1)
	copy(fill, count[:maxLvl+1])
	if desc {
		for i := n - 1; i >= 0; i-- {
			if l := levelOf(i); l >= 0 {
				d.order[fill[l]] = int32(i)
				fill[l]++
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if l := levelOf(i); l >= 0 {
				d.order[fill[l]] = int32(i)
				fill[l]++
			}
		}
	}
	d.segPtr = d.segPtr[:0]
	d.segPtr = append(d.segPtr, 0)
	d.chunks = d.chunks[:0]
	d.chunkRows = d.chunkRows[:0]
	serialOpen := false
	for l := 0; l <= maxLvl; l++ {
		lo, hi := count[l], count[l+1]
		w := hi - lo
		if w == 0 {
			continue
		}
		if w >= parMinLevelRows {
			if serialOpen {
				d.closeSegment(lo, 1)
				serialOpen = false
			}
			d.closeSegment(hi, 0)
			continue
		}
		serialOpen = true
	}
	if serialOpen {
		d.closeSegment(total, 1)
	}
}

// closeSegment ends the current segment at row-offset end. chunks=1
// marks a serial sweep; 0 asks for parallel chunking.
func (d *solveSched) closeSegment(end, chunks int32) {
	start := d.segPtr[len(d.segPtr)-1]
	rows := end - start
	if rows == 0 {
		return
	}
	cr := rows
	if chunks == 0 {
		// Parallel segment: fixed-size chunks claimed dynamically; the
		// chunk size balances claim traffic against tail imbalance.
		cr = 64
		chunks = (rows + cr - 1) / cr
	}
	d.segPtr = append(d.segPtr, end)
	d.chunks = append(d.chunks, chunks)
	d.chunkRows = append(d.chunkRows, cr)
}

// decideUse turns the parallel solve on only when enough of the sweep's
// nnz sits inside parallel segments to amortize the segment barriers.
func (d *solveSched) decideUse() {
	var par, tot int64
	for s := 0; s < len(d.chunks); s++ {
		lo, hi := d.segPtr[s], d.segPtr[s+1]
		var nnz int64
		for _, i := range d.order[lo:hi] {
			nnz += int64(d.rowPtr[i+1] - d.rowPtr[i])
		}
		tot += nnz
		if d.chunks[s] > 1 {
			par += nnz
		}
	}
	d.use = tot > 0 && float64(par) >= parMinParFrac*float64(tot)
}
