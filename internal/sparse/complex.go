package sparse

import (
	"fmt"
	"sort"
)

// CSCComplex is a complex sparse matrix in compressed sparse-column form.
// It carries the bus-admittance algebra (Ybus, Yf, Yt) and the complex
// intermediate products of the AC power-flow derivative formulas.
type CSCComplex struct {
	NRows, NCols int
	ColPtr       []int
	RowIdx       []int
	Val          []complex128
}

// NNZ returns the number of stored entries.
func (a *CSCComplex) NNZ() int { return len(a.Val) }

// BuilderC accumulates complex coordinate entries; duplicates sum on ToCSC.
type BuilderC struct {
	nrows, ncols int
	rows, cols   []int
	vals         []complex128
}

// NewBuilderC returns a complex Builder for an nrows×ncols matrix.
func NewBuilderC(nrows, ncols int) *BuilderC {
	return &BuilderC{nrows: nrows, ncols: ncols}
}

// Append adds v at (i, j).
func (b *BuilderC) Append(i, j int, v complex128) {
	if i < 0 || i >= b.nrows || j < 0 || j >= b.ncols {
		panic(fmt.Sprintf("sparse: complex entry (%d,%d) outside %dx%d", i, j, b.nrows, b.ncols))
	}
	b.rows = append(b.rows, i)
	b.cols = append(b.cols, j)
	b.vals = append(b.vals, v)
}

// ToCSC compiles the builder, summing duplicate coordinates.
func (b *BuilderC) ToCSC() *CSCComplex {
	nnz := len(b.vals)
	a := &CSCComplex{NRows: b.nrows, NCols: b.ncols, ColPtr: make([]int, b.ncols+1)}
	for _, j := range b.cols {
		a.ColPtr[j+1]++
	}
	for j := 0; j < b.ncols; j++ {
		a.ColPtr[j+1] += a.ColPtr[j]
	}
	rows := make([]int, nnz)
	vals := make([]complex128, nnz)
	next := make([]int, b.ncols)
	copy(next, a.ColPtr[:b.ncols])
	for k := 0; k < nnz; k++ {
		j := b.cols[k]
		p := next[j]
		rows[p] = b.rows[k]
		vals[p] = b.vals[k]
		next[j]++
	}
	outRows := rows[:0]
	outVals := vals[:0]
	newPtr := make([]int, b.ncols+1)
	for j := 0; j < b.ncols; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		seg := colSegC{rows[lo:hi], vals[lo:hi]}
		sort.Sort(seg)
		start := len(outRows)
		for p := lo; p < hi; p++ {
			if len(outRows) > start && rows[p] == outRows[len(outRows)-1] {
				outVals[len(outVals)-1] += vals[p]
			} else {
				outRows = append(outRows, rows[p])
				outVals = append(outVals, vals[p])
			}
		}
		newPtr[j+1] = len(outRows)
	}
	a.ColPtr = newPtr
	a.RowIdx = outRows
	a.Val = outVals
	return a
}

type colSegC struct {
	rows []int
	vals []complex128
}

func (s colSegC) Len() int           { return len(s.rows) }
func (s colSegC) Less(i, j int) bool { return s.rows[i] < s.rows[j] }
func (s colSegC) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// DiagC returns a square diagonal complex matrix.
func DiagC(d []complex128) *CSCComplex {
	n := len(d)
	a := &CSCComplex{NRows: n, NCols: n, ColPtr: make([]int, n+1), RowIdx: make([]int, n), Val: make([]complex128, n)}
	for i := 0; i < n; i++ {
		a.ColPtr[i+1] = i + 1
		a.RowIdx[i] = i
		a.Val[i] = d[i]
	}
	return a
}

// MulVec returns a*x.
func (a *CSCComplex) MulVec(x []complex128) []complex128 {
	if len(x) != a.NCols {
		panic("sparse: complex MulVec dim")
	}
	y := make([]complex128, a.NRows)
	for j := 0; j < a.NCols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			y[a.RowIdx[p]] += a.Val[p] * xj
		}
	}
	return y
}

// MulVecT returns aᵀ*x (pure transpose, no conjugation).
func (a *CSCComplex) MulVecT(x []complex128) []complex128 {
	if len(x) != a.NRows {
		panic("sparse: complex MulVecT dim")
	}
	y := make([]complex128, a.NCols)
	for j := 0; j < a.NCols; j++ {
		var s complex128
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			s += a.Val[p] * x[a.RowIdx[p]]
		}
		y[j] = s
	}
	return y
}

// T returns the pure transpose aᵀ (no conjugation) as a new matrix.
func (a *CSCComplex) T() *CSCComplex {
	b := NewBuilderC(a.NCols, a.NRows)
	for j := 0; j < a.NCols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			b.Append(j, a.RowIdx[p], a.Val[p])
		}
	}
	return b.ToCSC()
}

// Conj conjugates every entry in place and returns a.
func (a *CSCComplex) Conj() *CSCComplex {
	for i, v := range a.Val {
		a.Val[i] = complex(real(v), -imag(v))
	}
	return a
}

// Scale multiplies every entry by s in place and returns a.
func (a *CSCComplex) Scale(s complex128) *CSCComplex {
	for i := range a.Val {
		a.Val[i] *= s
	}
	return a
}

// DiagScaleLeft sets a = diag(d)·a in place and returns a.
func (a *CSCComplex) DiagScaleLeft(d []complex128) *CSCComplex {
	if len(d) != a.NRows {
		panic("sparse: complex DiagScaleLeft dim")
	}
	for p, i := range a.RowIdx {
		a.Val[p] *= d[i]
	}
	return a
}

// DiagScaleRight sets a = a·diag(d) in place and returns a.
func (a *CSCComplex) DiagScaleRight(d []complex128) *CSCComplex {
	if len(d) != a.NCols {
		panic("sparse: complex DiagScaleRight dim")
	}
	for j := 0; j < a.NCols; j++ {
		dj := d[j]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			a.Val[p] *= dj
		}
	}
	return a
}

// AddScaled returns a + s·b as a new matrix.
func (a *CSCComplex) AddScaled(s complex128, other *CSCComplex) *CSCComplex {
	if a.NRows != other.NRows || a.NCols != other.NCols {
		panic("sparse: complex AddScaled shape mismatch")
	}
	b := NewBuilderC(a.NRows, a.NCols)
	for j := 0; j < a.NCols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			b.Append(a.RowIdx[p], j, a.Val[p])
		}
	}
	for j := 0; j < other.NCols; j++ {
		for p := other.ColPtr[j]; p < other.ColPtr[j+1]; p++ {
			b.Append(other.RowIdx[p], j, s*other.Val[p])
		}
	}
	return b.ToCSC()
}

// AddDiag returns a + diag(d) as a new matrix (a must be square).
func (a *CSCComplex) AddDiag(d []complex128) *CSCComplex {
	return a.AddScaled(1, DiagC(d))
}

// Clone returns a deep copy of a.
func (a *CSCComplex) Clone() *CSCComplex {
	return &CSCComplex{
		NRows: a.NRows, NCols: a.NCols,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowIdx: append([]int(nil), a.RowIdx...),
		Val:    append([]complex128(nil), a.Val...),
	}
}

// At returns element (i, j).
func (a *CSCComplex) At(i, j int) complex128 {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	seg := a.RowIdx[lo:hi]
	k := sort.SearchInts(seg, i)
	if k < len(seg) && seg[k] == i {
		return a.Val[lo+k]
	}
	return 0
}

// RealPart extracts Re(a) as a real CSC matrix (explicit zeros kept so the
// pattern stays aligned with the complex parent).
func (a *CSCComplex) RealPart() *CSC {
	b := NewBuilder(a.NRows, a.NCols)
	for j := 0; j < a.NCols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			b.Append(a.RowIdx[p], j, real(a.Val[p]))
		}
	}
	return b.ToCSC()
}

// ImagPart extracts Im(a) as a real CSC matrix.
func (a *CSCComplex) ImagPart() *CSC {
	b := NewBuilder(a.NRows, a.NCols)
	for j := 0; j < a.NCols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			b.Append(a.RowIdx[p], j, imag(a.Val[p]))
		}
	}
	return b.ToCSC()
}
