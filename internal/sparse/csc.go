// Package sparse implements the compressed sparse-column matrices and the
// sparse LU factorization that back the power-grid admittance algebra and
// the interior-point KKT solves in Smart-PGSim.
//
// Real matrices are CSC (compressed sparse column); complex matrices mirror
// the same layout. All constructors go through a coordinate (triplet)
// Builder so duplicate entries sum, which makes assembling Jacobians,
// Hessians and admittance matrices a sequence of Append calls.
//
// The LU factorization is left-looking Gilbert–Peierls with threshold
// partial pivoting and a fill-reducing pre-ordering (reverse
// Cuthill–McKee by default, approximate minimum degree as OrderAMD). It
// is split into a symbolic phase and a numeric phase for the hot paths
// that factor many matrices with one sparsity pattern — interior-point
// KKT systems, Newton Jacobians: Analyze freezes the ordering, pivot
// sequence and L/U patterns into a Symbolic, and Symbolic.Refactor
// recomputes values only. SymbolicCache automates the
// analyze-once/refactor-after pattern for a sequential solve;
// OrderingCache shares the value-independent ordering across concurrent
// solves of one grid without coupling their numerics. DESIGN.md §7
// documents the design, PERFORMANCE.md the measured effect.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/la"
)

// CSC is a real sparse matrix in compressed sparse-column form.
type CSC struct {
	NRows, NCols int
	ColPtr       []int     // len NCols+1
	RowIdx       []int     // len nnz, sorted within each column
	Val          []float64 // len nnz
}

// NNZ returns the number of stored entries.
func (a *CSC) NNZ() int { return len(a.Val) }

// Builder accumulates coordinate-form entries; duplicates are summed when
// the matrix is compiled with ToCSC.
type Builder struct {
	nrows, ncols int
	rows, cols   []int
	vals         []float64
}

// NewBuilder returns a Builder for an nrows×ncols matrix.
func NewBuilder(nrows, ncols int) *Builder {
	return &Builder{nrows: nrows, ncols: ncols}
}

// Append adds v at (i, j). Zero values are kept (callers may rely on the
// pattern); they are cheap and deduplicated structurally.
func (b *Builder) Append(i, j int, v float64) {
	if i < 0 || i >= b.nrows || j < 0 || j >= b.ncols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d", i, j, b.nrows, b.ncols))
	}
	b.rows = append(b.rows, i)
	b.cols = append(b.cols, j)
	b.vals = append(b.vals, v)
}

// AppendCSC copies src, scaled by s, into the builder at row/col offsets.
// It is the primitive for assembling block matrices (KKT systems).
func (b *Builder) AppendCSC(rowOff, colOff int, s float64, src *CSC) {
	for j := 0; j < src.NCols; j++ {
		for p := src.ColPtr[j]; p < src.ColPtr[j+1]; p++ {
			b.Append(rowOff+src.RowIdx[p], colOff+j, s*src.Val[p])
		}
	}
}

// ToCSC compiles the builder into CSC form, summing duplicates.
func (b *Builder) ToCSC() *CSC {
	nnz := len(b.vals)
	a := &CSC{NRows: b.nrows, NCols: b.ncols, ColPtr: make([]int, b.ncols+1)}
	// Count entries per column.
	for _, j := range b.cols {
		a.ColPtr[j+1]++
	}
	for j := 0; j < b.ncols; j++ {
		a.ColPtr[j+1] += a.ColPtr[j]
	}
	rows := make([]int, nnz)
	vals := make([]float64, nnz)
	next := make([]int, b.ncols)
	copy(next, a.ColPtr[:b.ncols])
	for k := 0; k < nnz; k++ {
		j := b.cols[k]
		p := next[j]
		rows[p] = b.rows[k]
		vals[p] = b.vals[k]
		next[j]++
	}
	// Sort rows within each column (stably, so duplicates sum in append
	// order — matching Assembler semantics) and sum duplicates.
	outRows := rows[:0]
	outVals := vals[:0]
	colStart := 0
	newPtr := make([]int, b.ncols+1)
	for j := 0; j < b.ncols; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		sortColSeg(rows[lo:hi], vals[lo:hi])
		for p := lo; p < hi; p++ {
			if p > lo && rows[p] == outRows[len(outRows)-1] && len(outRows) > colStart {
				outVals[len(outVals)-1] += vals[p]
			} else {
				outRows = append(outRows, rows[p])
				outVals = append(outVals, vals[p])
			}
		}
		newPtr[j+1] = len(outRows)
		colStart = len(outRows)
	}
	a.ColPtr = newPtr
	a.RowIdx = outRows
	a.Val = outVals
	return a
}

type colSeg struct {
	rows []int
	vals []float64
}

func (s colSeg) Len() int           { return len(s.rows) }
func (s colSeg) Less(i, j int) bool { return s.rows[i] < s.rows[j] }
func (s colSeg) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// sortColSeg stably sorts one column segment by row. Typical Jacobian
// and KKT columns hold a handful of entries, so a direct insertion sort
// (stable by construction) beats the interface-based sort.Sort that used
// to dominate assembly profiles; long segments fall back to sort.Stable.
func sortColSeg(rows []int, vals []float64) {
	if len(rows) <= 32 {
		for t := 1; t < len(rows); t++ {
			r, v := rows[t], vals[t]
			u := t - 1
			for u >= 0 && rows[u] > r {
				rows[u+1], vals[u+1] = rows[u], vals[u]
				u--
			}
			rows[u+1], vals[u+1] = r, v
		}
		return
	}
	sort.Stable(colSeg{rows, vals})
}

// Identity returns the n×n identity in CSC form.
func Identity(n int) *CSC {
	a := &CSC{NRows: n, NCols: n, ColPtr: make([]int, n+1), RowIdx: make([]int, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		a.ColPtr[i+1] = i + 1
		a.RowIdx[i] = i
		a.Val[i] = 1
	}
	return a
}

// Diag returns a square diagonal matrix with d on the diagonal.
func Diag(d la.Vector) *CSC {
	n := len(d)
	a := &CSC{NRows: n, NCols: n, ColPtr: make([]int, n+1), RowIdx: make([]int, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		a.ColPtr[i+1] = i + 1
		a.RowIdx[i] = i
		a.Val[i] = d[i]
	}
	return a
}

// MulVec returns a*x.
func (a *CSC) MulVec(x la.Vector) la.Vector {
	if len(x) != a.NCols {
		panic(fmt.Sprintf("sparse: MulVec dims %dx%d · %d", a.NRows, a.NCols, len(x)))
	}
	y := make(la.Vector, a.NRows)
	for j := 0; j < a.NCols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			y[a.RowIdx[p]] += a.Val[p] * xj
		}
	}
	return y
}

// MulVecInto computes dst = a·x without allocating. dst must have
// length NRows and must not alias x.
func (a *CSC) MulVecInto(dst, x la.Vector) {
	if len(x) != a.NCols || len(dst) != a.NRows {
		panic(fmt.Sprintf("sparse: MulVecInto dims %dx%d · %d -> %d", a.NRows, a.NCols, len(x), len(dst)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < a.NCols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			dst[a.RowIdx[p]] += a.Val[p] * xj
		}
	}
}

// MulVecT returns aᵀ*x.
func (a *CSC) MulVecT(x la.Vector) la.Vector {
	if len(x) != a.NRows {
		panic(fmt.Sprintf("sparse: MulVecT dims %dx%d · %d", a.NRows, a.NCols, len(x)))
	}
	y := make(la.Vector, a.NCols)
	for j := 0; j < a.NCols; j++ {
		var s float64
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			s += a.Val[p] * x[a.RowIdx[p]]
		}
		y[j] = s
	}
	return y
}

// MulVecTInto computes dst = aᵀ·x without allocating. dst must have
// length NCols and must not alias x.
func (a *CSC) MulVecTInto(dst, x la.Vector) {
	if len(x) != a.NRows || len(dst) != a.NCols {
		panic(fmt.Sprintf("sparse: MulVecTInto dims %dx%d · %d -> %d", a.NRows, a.NCols, len(x), len(dst)))
	}
	for j := 0; j < a.NCols; j++ {
		var s float64
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			s += a.Val[p] * x[a.RowIdx[p]]
		}
		dst[j] = s
	}
}

// T returns the transpose as a new CSC matrix.
func (a *CSC) T() *CSC {
	b := NewBuilder(a.NCols, a.NRows)
	for j := 0; j < a.NCols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			b.Append(j, a.RowIdx[p], a.Val[p])
		}
	}
	return b.ToCSC()
}

// Scale multiplies every stored value by s and returns a.
func (a *CSC) Scale(s float64) *CSC {
	for i := range a.Val {
		a.Val[i] *= s
	}
	return a
}

// DiagScaleLeft scales row i of a by d[i] in place (a = diag(d)·a).
func (a *CSC) DiagScaleLeft(d la.Vector) *CSC {
	if len(d) != a.NRows {
		panic("sparse: DiagScaleLeft dim")
	}
	for p, i := range a.RowIdx {
		a.Val[p] *= d[i]
	}
	return a
}

// DiagScaleRight scales column j of a by d[j] in place (a = a·diag(d)).
func (a *CSC) DiagScaleRight(d la.Vector) *CSC {
	if len(d) != a.NCols {
		panic("sparse: DiagScaleRight dim")
	}
	for j := 0; j < a.NCols; j++ {
		dj := d[j]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			a.Val[p] *= dj
		}
	}
	return a
}

// AddScaled returns a + s·b as a new matrix. Shapes must match.
func (a *CSC) AddScaled(s float64, other *CSC) *CSC {
	if a.NRows != other.NRows || a.NCols != other.NCols {
		panic("sparse: AddScaled shape mismatch")
	}
	b := NewBuilder(a.NRows, a.NCols)
	b.AppendCSC(0, 0, 1, a)
	b.AppendCSC(0, 0, s, other)
	return b.ToCSC()
}

// At returns element (i, j); O(log nnz(col j)).
func (a *CSC) At(i, j int) float64 {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	seg := a.RowIdx[lo:hi]
	k := sort.SearchInts(seg, i)
	if k < len(seg) && seg[k] == i {
		return a.Val[lo+k]
	}
	return 0
}

// ToDense expands a into a dense matrix.
func (a *CSC) ToDense() *la.Matrix {
	m := la.NewMatrix(a.NRows, a.NCols)
	for j := 0; j < a.NCols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			m.Add(a.RowIdx[p], j, a.Val[p])
		}
	}
	return m
}

// Clone returns a deep copy of a.
func (a *CSC) Clone() *CSC {
	c := &CSC{
		NRows: a.NRows, NCols: a.NCols,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowIdx: append([]int(nil), a.RowIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	return c
}
