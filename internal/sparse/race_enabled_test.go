//go:build race

package sparse

// raceEnabled lets allocation-count tests skip under the race detector,
// whose instrumentation allocates on its own.
const raceEnabled = true
