package sparse

import (
	"math"
	"sort"
)

// This file implements the blocked (supernodal) numeric refactorization
// kernel. The scalar Refactor consumes one source column at a time: for
// every source it re-loads the column's row indices and scatters an
// axpy into the dense accumulator. On the KKT factors of larger grids
// most of that work happens inside the dense trailing profile of L,
// where runs of adjacent columns share one below-diagonal row set. The
// blocked kernel detects those runs (supernodes) once on the frozen
// symbolic pattern, stores their rows in an aligned order, and then
// consumes a whole panel of sources with dense triangular + panel-axpy
// updates: row indices are loaded once per panel instead of once per
// member, and the inner loops run over contiguous value slices.
//
// The factors produced are numerically equivalent to scalar Refactor
// (same pivot sequence, same patterns) but not bit-identical: grouping
// a panel's updates changes floating-point summation order. The kernel
// is deterministic — a pure function of (pattern, values) — and keeps
// the exact scalar semantics for the pivot-decay check, so the
// ErrRefactorUnstable → re-analyze fallback behaves identically.

const (
	// maxPanelWidth caps supernode width; it bounds the panel value
	// buffer and keeps the dense triangular part register-friendly.
	maxPanelWidth = 32
	// Auto-selection: the blocked kernel wins when enough of the
	// update flops run through panels of shared rows; below these
	// thresholds the grouping bookkeeping costs more than it saves.
	blockedMinN         = 192
	blockedPanelFracMin = 0.25
)

// blockedSchedule is the per-Symbolic plan for RefactorBlocked: the
// supernode partition of the pivot columns, the aligned L row order,
// and one consumption program per destination column.
type blockedSchedule struct {
	snOf     []int // column -> supernode index
	snStart  []int // supernode -> first member column
	snEnd    []int // supernode -> last member column
	belowLen []int // supernode -> |shared below-diagonal row set|

	// bli is s.li reordered within each column (same lp offsets):
	// diagonal first, then in-panel rows ascending, then the shared
	// below rows in one canonical ascending order — so the trailing
	// belowLen entries of every member column are row-aligned.
	bli []int

	// prog is the flattened consumption program. For destination k the
	// ops live at prog[progPtr[k]:progPtr[k+1]]; each op is a count m
	// followed by m U-positions (ascending member columns for m > 1).
	prog    []int32
	progPtr []int

	maxWidth  int
	maxBelow  int
	panels    int     // supernodes of width >= 2
	panelCols int     // columns inside those supernodes
	panelFrac float64 // fraction of update flops routed through panels
	use       bool    // auto-selection verdict
}

// PanelStats describes the blocked schedule of a Symbolic: how much of
// the frozen pattern the supernode detection covered and whether the
// automatic kernel selection picked the blocked kernel.
type PanelStats struct {
	Supernodes int     // supernodes of width >= 2
	PanelCols  int     // columns inside them
	MaxWidth   int     // widest supernode
	MaxBelow   int     // largest shared below-row set
	PanelFrac  float64 // fraction of update flops routed through panels
	Blocked    bool    // true when Factorize auto-selects RefactorBlocked
}

// PanelStats builds the blocked schedule if needed and reports it.
func (s *Symbolic) PanelStats() PanelStats {
	b := s.blocked()
	return PanelStats{
		Supernodes: b.panels,
		PanelCols:  b.panelCols,
		MaxWidth:   b.maxWidth,
		MaxBelow:   b.maxBelow,
		PanelFrac:  b.panelFrac,
		Blocked:    b.use,
	}
}

// Blocked reports whether automatic kernel selection uses the blocked
// kernel for this pattern (a deterministic pure function of the
// pattern, like the ordering probe in OrderAuto).
func (s *Symbolic) Blocked() bool { return s.blocked().use }

func (s *Symbolic) blocked() *blockedSchedule {
	if b := s.blk.Load(); b != nil {
		return b
	}
	// Benign race: concurrent builders compute identical schedules
	// from the immutable pattern; first store wins.
	s.blk.CompareAndSwap(nil, s.buildBlockedSchedule())
	return s.blk.Load()
}

// nestedColumns reports whether column c can extend a supernode ending
// at column c-1: below(c-1) = {c} ∪ below(c) as sets. mark must be an
// all-false scratch of length n and is restored before returning.
func (s *Symbolic) nestedColumns(c int, mark []bool) bool {
	a := c - 1
	na := s.lp[a+1] - s.lp[a] - 1
	nb := s.lp[c+1] - s.lp[c] - 1
	ok := na == nb+1
	if ok {
		for p := s.lp[a] + 1; p < s.lp[a+1]; p++ {
			mark[s.li[p]] = true
		}
		ok = mark[c]
		if ok {
			for p := s.lp[c] + 1; p < s.lp[c+1]; p++ {
				if !mark[s.li[p]] {
					ok = false
					break
				}
			}
		}
		for p := s.lp[a] + 1; p < s.lp[a+1]; p++ {
			mark[s.li[p]] = false
		}
	}
	return ok
}

func (s *Symbolic) buildBlockedSchedule() *blockedSchedule {
	n := s.n
	b := &blockedSchedule{snOf: make([]int, n)}
	mark := make([]bool, n)

	// 1. Partition the pivot columns into maximal nested runs.
	if n > 0 {
		b.snStart = append(b.snStart, 0)
		for c := 1; c < n; c++ {
			cur := len(b.snStart) - 1
			if c-b.snStart[cur] < maxPanelWidth && s.nestedColumns(c, mark) {
				continue
			}
			b.snEnd = append(b.snEnd, c-1)
			b.snStart = append(b.snStart, c)
		}
		b.snEnd = append(b.snEnd, n-1)
	}
	b.belowLen = make([]int, len(b.snStart))
	for si := range b.snStart {
		for j := b.snStart[si]; j <= b.snEnd[si]; j++ {
			b.snOf[j] = si
		}
		if w := b.snEnd[si] - b.snStart[si] + 1; w >= 2 {
			b.panels++
			b.panelCols += w
			if w > b.maxWidth {
				b.maxWidth = w
			}
		}
	}

	// 2. Aligned row order: for every member column of supernode
	// [c0..e], the chained nesting gives below(j) = {j+1..e} ∪ S with
	// S = below(e). Verify that identity against the stored pattern
	// while writing bli — a wrong schedule must never survive silently.
	b.bli = make([]int, len(s.li))
	for si := range b.snStart {
		c0, e := b.snStart[si], b.snEnd[si]
		bl := s.lp[e+1] - s.lp[e] - 1
		b.belowLen[si] = bl
		if e > c0 && bl > b.maxBelow {
			b.maxBelow = bl
		}
		shared := make([]int, bl)
		copy(shared, s.li[s.lp[e]+1:s.lp[e+1]])
		sort.Ints(shared)
		for j := c0; j <= e; j++ {
			base := s.lp[j]
			if s.lp[j+1]-base != 1+(e-j)+bl {
				panic("sparse: blocked schedule: member column width mismatch")
			}
			b.bli[base] = j
			for d := 1; d <= e-j; d++ {
				b.bli[base+d] = j + d
			}
			copy(b.bli[base+1+(e-j):s.lp[j+1]], shared)
			for p := base; p < s.lp[j+1]; p++ {
				mark[s.li[p]] = true
			}
			for p := base; p < s.lp[j+1]; p++ {
				if !mark[b.bli[p]] {
					panic("sparse: blocked schedule: aligned row set mismatch")
				}
				mark[b.bli[p]] = false
			}
		}
	}

	// 3. Consumption programs. Stored U columns are in topological
	// order; supernode members present in U(:,k) form a suffix of the
	// supernode (truncated at row k-1 when k lies inside it) and appear
	// in ascending column order, so a group op placed at its last
	// member's position is a safe reordering of the scalar sweep.
	b.progPtr = make([]int, n+1)
	pend := make([][]int32, len(b.snStart))
	var totalFlops, panelFlops float64
	for k := 0; k < n; k++ {
		d := s.up[k+1] - 1
		for p := s.up[k]; p < d; p++ {
			j := s.ui[p]
			totalFlops += float64(s.lp[j+1] - s.lp[j] - 1)
			si := b.snOf[j]
			if b.snStart[si] == b.snEnd[si] {
				b.prog = append(b.prog, 1, int32(p))
				continue
			}
			pend[si] = append(pend[si], int32(p))
			if j == b.snEnd[si] || j == k-1 {
				if m := len(pend[si]); m == 1 {
					b.prog = append(b.prog, 1, pend[si][0])
				} else {
					b.prog = append(b.prog, int32(m))
					b.prog = append(b.prog, pend[si]...)
					panelFlops += float64(m * b.belowLen[si])
				}
				pend[si] = pend[si][:0]
			}
		}
		b.progPtr[k+1] = len(b.prog)
	}
	for si := range pend {
		if len(pend[si]) != 0 {
			panic("sparse: blocked schedule: unterminated panel group")
		}
	}
	if totalFlops > 0 {
		b.panelFrac = panelFlops / totalFlops
	}
	b.use = n >= blockedMinN && b.panelFrac >= blockedPanelFracMin
	return b
}

// RefactorWorkspace holds the scratch buffers of the Into-style numeric
// kernels so a steady-state refactorization loop allocates nothing. One
// workspace serves both the scalar and the blocked kernel of the
// Symbolic that created it; it must not be shared across goroutines.
type RefactorWorkspace struct {
	x   []float64 // dense accumulator, kept all-zero between calls
	u   []float64 // panel member U values
	tmp []float64 // panel below-update accumulator
}

// NewRefactorWorkspace returns a workspace sized for this Symbolic's
// pattern (building the blocked schedule so later Into calls stay
// allocation-free).
func (s *Symbolic) NewRefactorWorkspace() *RefactorWorkspace {
	b := s.blocked()
	return &RefactorWorkspace{
		x:   make([]float64, s.n),
		u:   make([]float64, b.maxWidth+1),
		tmp: make([]float64, b.maxBelow),
	}
}

// NewFactors returns an LUFactors shell bound to this Symbolic's index
// structure with preallocated value storage, for use with RefactorInto
// and RefactorBlockedInto.
func (s *Symbolic) NewFactors() *LUFactors {
	f := &LUFactors{}
	s.bindFactors(f, s.li)
	return f
}

// bindFactors points f at the symbolic index structure (li chooses the
// scalar or aligned row order) and sizes its value storage.
func (s *Symbolic) bindFactors(f *LUFactors, li []int) {
	f.n, f.q, f.pinv = s.n, s.q, s.pinv
	f.lp, f.up = s.lp, s.up
	f.li, f.ui = li, s.ui
	f.lnzTotal = len(s.li) + len(s.ui)
	f.pivotTolND = s.tol
	if cap(f.lx) < len(s.li) {
		f.lx = make([]float64, len(s.li))
	}
	f.lx = f.lx[:len(s.li)]
	if cap(f.ux) < len(s.ui) {
		f.ux = make([]float64, len(s.ui))
	}
	f.ux = f.ux[:len(s.ui)]
}

// clearColumn zeroes the accumulator rows column k may have touched,
// restoring the workspace's all-zero invariant on error paths.
func (s *Symbolic) clearColumn(x []float64, li []int, k int) {
	x[k] = 0
	for p := s.lp[k] + 1; p < s.lp[k+1]; p++ {
		x[li[p]] = 0
	}
}

// refactorColumn runs destination column k of the scalar kernel —
// gather, ordered consumption, pivot check, L/U write — against the
// workspace accumulator x (all-zero on entry, restored on every exit
// path). It is the unit of work the parallel task scheduler dispatches:
// a column computed here is the same instruction sequence at any thread
// count, which is what makes the parallel kernel bit-identical to the
// serial one.
func (s *Symbolic) refactorColumn(f *LUFactors, x []float64, a *CSC, k int) error {
	col := s.q[k]
	for p := a.ColPtr[col]; p < a.ColPtr[col+1]; p++ {
		x[s.pinv[a.RowIdx[p]]] = a.Val[p]
	}
	d := s.up[k+1] - 1
	for p := s.up[k]; p < d; p++ {
		j := s.ui[p]
		xj := x[j]
		f.ux[p] = xj
		x[j] = 0
		if xj == 0 {
			continue
		}
		for pl := s.lp[j] + 1; pl < s.lp[j+1]; pl++ {
			x[s.li[pl]] -= f.lx[pl] * xj
		}
	}
	pivot := x[k]
	apiv := math.Abs(pivot)
	amax := apiv
	for p := s.lp[k] + 1; p < s.lp[k+1]; p++ {
		if t := math.Abs(x[s.li[p]]); t > amax {
			amax = t
		}
	}
	if math.IsNaN(pivot) || amax == 0 {
		s.clearColumn(x, s.li, k)
		return ErrSingular
	}
	if s.boost {
		if apiv < boostPivotRel*amax {
			// Static pivot perturbation: keep the shaped diagonal
			// sequence, bound the growth (see boostPivotRel).
			pivot = math.Copysign(boostPivotRel*amax, pivot)
		}
	} else if pivot == 0 {
		s.clearColumn(x, s.li, k)
		return ErrSingular
	} else if apiv < refactorPivotFloor*amax {
		s.clearColumn(x, s.li, k)
		return ErrRefactorUnstable
	}
	x[k] = 0
	f.ux[d] = pivot
	f.lx[s.lp[k]] = 1
	for p := s.lp[k] + 1; p < s.lp[k+1]; p++ {
		i := s.li[p]
		f.lx[p] = x[i] / pivot
		x[i] = 0
	}
	return nil
}

// RefactorInto is Refactor writing into preallocated factors with an
// external workspace: zero allocations per call. f is rebound to the
// symbolic structure; ws must come from NewRefactorWorkspace. The
// result is bit-identical to Refactor.
func (s *Symbolic) RefactorInto(f *LUFactors, ws *RefactorWorkspace, a *CSC) error {
	if !s.PatternMatches(a) {
		return ErrPatternChanged
	}
	s.bindFactors(f, s.li)
	n := s.n
	x := ws.x
	for k := 0; k < n; k++ {
		if err := s.refactorColumn(f, x, a, k); err != nil {
			return err
		}
	}
	return nil
}

// RefactorBlocked computes a numeric LU of a on the frozen symbolic
// structure using the supernodal panel kernel. Same pivot sequence and
// patterns as Refactor; values agree up to floating-point summation
// order. The returned factors store L rows in the aligned (bli) order —
// equivalent for Solve, which is order-free within a column.
func (s *Symbolic) RefactorBlocked(a *CSC) (*LUFactors, error) {
	f := &LUFactors{}
	if err := s.RefactorBlockedInto(f, s.NewRefactorWorkspace(), a); err != nil {
		return nil, err
	}
	return f, nil
}

// RefactorBlockedInto is RefactorBlocked writing into preallocated
// factors with an external workspace: zero allocations per call.
func (s *Symbolic) RefactorBlockedInto(f *LUFactors, ws *RefactorWorkspace, a *CSC) error {
	if !s.PatternMatches(a) {
		return ErrPatternChanged
	}
	b := s.blocked()
	s.bindFactors(f, b.bli)
	n := s.n
	for k := 0; k < n; k++ {
		if err := s.refactorColumnBlocked(f, ws, a, b, k); err != nil {
			return err
		}
	}
	return nil
}

// refactorColumnBlocked runs destination column k of the blocked
// kernel: gather, program consumption (scalar ops and panel groups),
// pivot check, L/U write. Like refactorColumn it is the parallel
// scheduler's unit of work — the same instruction sequence at any
// thread count, so the parallel blocked kernel is bit-identical to the
// single-threaded one.
func (s *Symbolic) refactorColumnBlocked(f *LUFactors, ws *RefactorWorkspace, a *CSC, b *blockedSchedule, k int) error {
	x := ws.x
	{
		col := s.q[k]
		for p := a.ColPtr[col]; p < a.ColPtr[col+1]; p++ {
			x[s.pinv[a.RowIdx[p]]] = a.Val[p]
		}
		seg := b.prog[b.progPtr[k]:b.progPtr[k+1]]
		for t := 0; t < len(seg); {
			m := int(seg[t])
			t++
			if m == 1 {
				p := int(seg[t])
				t++
				j := s.ui[p]
				xj := x[j]
				f.ux[p] = xj
				x[j] = 0
				if xj == 0 {
					continue
				}
				for pl := s.lp[j] + 1; pl < s.lp[j+1]; pl++ {
					x[b.bli[pl]] -= f.lx[pl] * xj
				}
				continue
			}
			// Panel group: members are the consecutive columns ending
			// at the last op entry; e is their supernode's end (the
			// in-panel extent, which may exceed k for truncated
			// groups — those rows belong to below(k)).
			last := s.ui[int(seg[t+m-1])]
			e := b.snEnd[b.snOf[last]]
			bl := b.belowLen[b.snOf[last]]
			u := ws.u[:m]
			for i := 0; i < m; i++ {
				p := int(seg[t+i])
				j := s.ui[p]
				xj := x[j]
				f.ux[p] = xj
				x[j] = 0
				u[i] = xj
				if xj == 0 {
					continue
				}
				// Dense triangular part: in-panel rows j+1..e are the
				// consecutive entries after the diagonal.
				base := s.lp[j]
				for d := 1; d <= e-j; d++ {
					x[j+d] -= f.lx[base+d] * xj
				}
			}
			// Panel update of the shared below rows: accumulate the
			// members' contiguous trailing segments into tmp, then
			// scatter-subtract once through the aligned row list.
			if bl > 0 {
				tmp := ws.tmp[:bl]
				for i := range tmp {
					tmp[i] = 0
				}
				// Rank-m accumulation, two members per pass: each tmp
				// element written once per pair instead of once per
				// member, halving the accumulator stream next to the two
				// L-segment streams.
				i := 0
				for ; i+1 < m; i += 2 {
					u0, u1 := u[i], u[i+1]
					if u0 == 0 && u1 == 0 {
						continue
					}
					j0 := s.ui[int(seg[t+i])]
					j1 := s.ui[int(seg[t+i+1])]
					l0 := f.lx[s.lp[j0+1]-bl : s.lp[j0+1]]
					l1 := f.lx[s.lp[j1+1]-bl : s.lp[j1+1]]
					for d := range tmp {
						tmp[d] += l0[d]*u0 + l1[d]*u1
					}
				}
				if i < m {
					if ui := u[i]; ui != 0 {
						j := s.ui[int(seg[t+i])]
						lseg := f.lx[s.lp[j+1]-bl : s.lp[j+1]]
						for d, lv := range lseg {
							tmp[d] += lv * ui
						}
					}
				}
				rows := b.bli[s.lp[e+1]-bl : s.lp[e+1]]
				for d, r := range rows {
					x[r] -= tmp[d]
				}
			}
			t += m
		}
		pivot := x[k]
		apiv := math.Abs(pivot)
		amax := apiv
		for p := s.lp[k] + 1; p < s.lp[k+1]; p++ {
			if v := math.Abs(x[b.bli[p]]); v > amax {
				amax = v
			}
		}
		d := s.up[k+1] - 1
		if math.IsNaN(pivot) || amax == 0 {
			s.clearColumn(x, b.bli, k)
			return ErrSingular
		}
		if s.boost {
			if apiv < boostPivotRel*amax {
				// Static pivot perturbation: keep the shaped diagonal
				// sequence, bound the growth (see boostPivotRel).
				pivot = math.Copysign(boostPivotRel*amax, pivot)
			}
		} else if pivot == 0 {
			s.clearColumn(x, b.bli, k)
			return ErrSingular
		} else if apiv < refactorPivotFloor*amax {
			s.clearColumn(x, b.bli, k)
			return ErrRefactorUnstable
		}
		x[k] = 0
		f.ux[d] = pivot
		f.lx[s.lp[k]] = 1
		for p := s.lp[k] + 1; p < s.lp[k+1]; p++ {
			i := b.bli[p]
			f.lx[p] = x[i] / pivot
			x[i] = 0
		}
	}
	return nil
}

// refactorAuto picks the kernel the schedule's density analysis
// selected — the path SymbolicCache.Factorize takes.
func (s *Symbolic) refactorAuto(a *CSC) (*LUFactors, error) {
	if s.blocked().use {
		return s.RefactorBlocked(a)
	}
	return s.Refactor(a)
}

// refactorAutoInto is refactorAuto into preallocated storage.
func (s *Symbolic) refactorAutoInto(f *LUFactors, ws *RefactorWorkspace, a *CSC) error {
	if s.blocked().use {
		return s.RefactorBlockedInto(f, ws, a)
	}
	return s.RefactorInto(f, ws, a)
}
