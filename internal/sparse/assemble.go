package sparse

// Assembler is a reusable triplet-to-CSC compiler for hot loops that
// assemble the same sparsity pattern over and over with fresh values
// (interior-point KKT systems, Jacobian blocks re-stamped every
// iteration). A Builder pays a per-column sort on every ToCSC; the
// Assembler pays it once, on the first pass, and turns every later pass
// with the same Append sequence into a verified O(nnz) value stamp with
// zero allocations.
//
// Usage per pass:
//
//	asm.Begin()
//	asm.Append(i, j, v) ... // same (i,j) sequence as the compiled pass
//	m := asm.Finish()
//
// Finish returns the Assembler's internal matrix: callers must treat it
// as read-only and must not retain it across passes. Each Append is
// verified against the compiled sequence with two integer compares; any
// deviation (different coordinates, different length) silently falls
// back to a full recompile of the new sequence, so correctness never
// depends on the pattern actually being fixed. Duplicate entries sum in
// append order both when compiling (the per-column sort is stable) and
// when stamping, so the two paths are bit-identical for identical
// append sequences.
type Assembler struct {
	nrows, ncols int
	rows, cols   []int32
	vals         []float64
	n            int // triplets appended this pass

	compiled  bool    // csc/pos describe rows/cols[:compiledN]
	compiledN int     // triplet count of the compiled sequence
	live      bool    // this pass still matches the compiled sequence
	pos       []int32 // triplet k -> index into csc.Val
	csc       *CSC

	// Deferred-reduction (stamped) pass support: the inverse of pos —
	// slot s's contributing triplets at slotTr[slotPtr[s]:slotPtr[s+1]],
	// in ascending append order — rebuilt when gen (bumped by compile)
	// outruns redGen. red drives the parallel reduction; redFn is the
	// bound reduction body, created once.
	gen     uint64
	redGen  uint64
	slotPtr []int32
	slotTr  []int32
	red     ParFor
	redFn   func(lo, hi int)
}

// Live passes stamp values directly into csc.Val as they are appended
// (Begin zeroes it), in append order — the same summation order the
// two-pass zero-then-scatter of earlier versions used, so results stay
// bit-identical while the triplet array is traversed once instead of
// twice. A pass that deviates from the compiled sequence abandons the
// partial stamp: compile() rebuilds csc.Val wholesale from the triplet
// values, which every path keeps up to date.

// NewAssembler returns an Assembler for an nrows×ncols matrix.
func NewAssembler(nrows, ncols int) *Assembler {
	return &Assembler{nrows: nrows, ncols: ncols}
}

// Begin starts a new assembly pass.
func (a *Assembler) Begin() {
	a.n = 0
	a.live = a.compiled
	if a.live {
		v := a.csc.Val
		for i := range v {
			v[i] = 0
		}
	}
}

// Append records v at (i, j). Duplicates sum, as in Builder.Append.
func (a *Assembler) Append(i, j int, v float64) {
	k := a.n
	if k < len(a.rows) {
		if a.live && k < a.compiledN && a.rows[k] == int32(i) && a.cols[k] == int32(j) {
			// Fast path: coordinates match the compiled sequence,
			// which was bounds-checked when first compiled.
			a.vals[k] = v
			a.csc.Val[a.pos[k]] += v
			a.n = k + 1
			return
		}
		a.checkBounds(i, j)
		a.rows[k], a.cols[k], a.vals[k] = int32(i), int32(j), v
		a.live = false
		a.n = k + 1
		return
	}
	a.checkBounds(i, j)
	a.rows = append(a.rows, int32(i))
	a.cols = append(a.cols, int32(j))
	a.vals = append(a.vals, v)
	a.live = false
	a.n = k + 1
}

func (a *Assembler) checkBounds(i, j int) {
	if i < 0 || i >= a.nrows || j < 0 || j >= a.ncols {
		panic("sparse: Assembler entry outside matrix")
	}
}

// AppendCSC copies src, scaled by s, at row/col offsets — the block-
// assembly primitive, mirroring Builder.AppendCSC.
func (a *Assembler) AppendCSC(rowOff, colOff int, s float64, src *CSC) {
	for j := 0; j < src.NCols; j++ {
		for p := src.ColPtr[j]; p < src.ColPtr[j+1]; p++ {
			a.Append(rowOff+src.RowIdx[p], colOff+j, s*src.Val[p])
		}
	}
}

// AppendOuter appends the w-weighted outer product of a sparse row with
// itself: the entries (cols[p1], cols[p2], w·vals[p1]·vals[p2]) for all
// (p1, p2) pairs in p1-major order — the Σ-weighted normal-matrix rows
// of a KKT assembly. It is equivalent to the corresponding Append
// sequence (deviation fallback included) but performs the sequence
// check and the value stamp in one tight loop instead of m² calls.
func (a *Assembler) AppendOuter(w float64, cols []int32, vals []float64) {
	m := len(cols)
	mm := m * m
	k := a.n
	if a.live && k+mm <= a.compiledN {
		rows, cc, vv := a.rows[k:k+mm], a.cols[k:k+mm], a.vals[k:k+mm]
		pos, cv := a.pos[k:k+mm], a.csc.Val
		t := 0
		for p1 := 0; p1 < m; p1++ {
			v1 := w * vals[p1]
			r := cols[p1]
			for p2 := 0; p2 < m; p2++ {
				if rows[t] != r || cc[t] != cols[p2] {
					// Deviation: abandon the partial stamp (compile()
					// rebuilds csc.Val from the triplet values) and
					// replay this outer product through Append.
					a.live = false
					a.appendOuterSlow(w, cols, vals)
					return
				}
				v := v1 * vals[p2]
				vv[t] = v
				cv[pos[t]] += v
				t++
			}
		}
		a.n = k + mm
		return
	}
	a.appendOuterSlow(w, cols, vals)
}

func (a *Assembler) appendOuterSlow(w float64, cols []int32, vals []float64) {
	for p1 := range cols {
		v1 := w * vals[p1]
		c1 := int(cols[p1])
		for p2 := range cols {
			a.Append(c1, int(cols[p2]), v1*vals[p2])
		}
	}
}

// Finish compiles (or stamps) the pass and returns the matrix. The
// returned *CSC is the Assembler's reused storage: read-only, valid
// until the next Begin.
func (a *Assembler) Finish() *CSC {
	if a.live && a.n == a.compiledN {
		return a.csc
	}
	return a.compile()
}

// compile sorts the recorded triplets column-major (stable within each
// column, so duplicate summation order matches the stamp path), builds
// the CSC structure, and records each triplet's destination slot.
func (a *Assembler) compile() *CSC {
	n := a.n
	if a.csc == nil {
		a.csc = &CSC{NRows: a.nrows, NCols: a.ncols}
	}
	m := a.csc
	if cap(m.ColPtr) < a.ncols+1 {
		m.ColPtr = make([]int, a.ncols+1)
	}
	m.ColPtr = m.ColPtr[:a.ncols+1]
	for i := range m.ColPtr {
		m.ColPtr[i] = 0
	}
	// Stable counting distribution of triplet indices by column.
	for k := 0; k < n; k++ {
		m.ColPtr[a.cols[k]+1]++
	}
	for j := 0; j < a.ncols; j++ {
		m.ColPtr[j+1] += m.ColPtr[j]
	}
	idx := make([]int32, n)
	next := make([]int, a.ncols)
	copy(next, m.ColPtr[:a.ncols])
	for k := 0; k < n; k++ {
		j := a.cols[k]
		idx[next[j]] = int32(k)
		next[j]++
	}
	if cap(a.pos) < n {
		a.pos = make([]int32, n)
	}
	a.pos = a.pos[:n]
	rowIdx := m.RowIdx[:0]
	vals := m.Val[:0]
	out := 0
	for j := 0; j < a.ncols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		seg := idx[lo:hi]
		// Stable insertion sort by row: equal rows keep ascending
		// triplet order, so summation order equals append order.
		for t := 1; t < len(seg); t++ {
			k := seg[t]
			r := a.rows[k]
			u := t - 1
			for u >= 0 && a.rows[seg[u]] > r {
				seg[u+1] = seg[u]
				u--
			}
			seg[u+1] = k
		}
		m.ColPtr[j] = out // rewrite to deduplicated offsets
		last := int32(-1)
		for _, k := range seg {
			r := a.rows[k]
			if out > m.ColPtr[j] && r == last {
				vals[out-1] += a.vals[k]
			} else {
				rowIdx = append(rowIdx, int(r))
				vals = append(vals, a.vals[k])
				out++
				last = r
			}
			a.pos[k] = int32(out - 1)
		}
	}
	m.ColPtr[a.ncols] = out
	m.RowIdx = rowIdx
	m.Val = vals
	a.compiled = true
	a.compiledN = n
	a.live = true
	a.gen++
	return m
}

// Stamped passes: an alternative to Begin/Append/Finish for callers
// that shard one pass across goroutines. Each Stamp*At call verifies a
// stretch of the compiled sequence and writes only the triplet values
// at its own offsets — no shared assembler state is touched, so shards
// stamping disjoint offset ranges may run concurrently. FinishStamped
// then reduces csc.Val[s] = Σ vals[k] over each slot's triplets in
// ascending append order — exactly the serial live-stamp's summation
// order, so a stamped pass is bit-identical to the equivalent Append
// pass. Any deviation from the compiled sequence reports false, and the
// caller replays the pass through the serial API (partial stamped
// values are overwritten by the replay).

// Compiled reports whether a previous pass left a compiled append
// sequence for stamped passes to verify against.
func (a *Assembler) Compiled() bool { return a.compiled }

// StampAt verifies that triplet k of the compiled sequence is (i, j)
// and records v there. Returns the next offset and whether it matched.
func (a *Assembler) StampAt(k, i, j int, v float64) (int, bool) {
	if k >= a.compiledN || a.rows[k] != int32(i) || a.cols[k] != int32(j) {
		return k, false
	}
	a.vals[k] = v
	return k + 1, true
}

// StampOuterAt records the w-weighted outer product of a sparse row
// with itself at triplet offset k — AppendOuter's entries and
// arithmetic with the value stamp deferred to FinishStamped.
func (a *Assembler) StampOuterAt(k int, w float64, cols []int32, vals []float64) (int, bool) {
	m := len(cols)
	mm := m * m
	if k+mm > a.compiledN {
		return k, false
	}
	rows, cc, vv := a.rows[k:k+mm], a.cols[k:k+mm], a.vals[k:k+mm]
	t := 0
	for p1 := 0; p1 < m; p1++ {
		v1 := w * vals[p1]
		r := cols[p1]
		for p2 := 0; p2 < m; p2++ {
			if rows[t] != r || cc[t] != cols[p2] {
				return k, false
			}
			vv[t] = v1 * vals[p2]
			t++
		}
	}
	return k + mm, true
}

// StampCSCAt records src, scaled by s, at row/col offsets — the stamped
// counterpart of AppendCSC.
func (a *Assembler) StampCSCAt(k, rowOff, colOff int, s float64, src *CSC) (int, bool) {
	ok := true
	for j := 0; j < src.NCols; j++ {
		for p := src.ColPtr[j]; p < src.ColPtr[j+1]; p++ {
			if k, ok = a.StampAt(k, rowOff+src.RowIdx[p], colOff+j, s*src.Val[p]); !ok {
				return k, false
			}
		}
	}
	return k, true
}

// FinishStamped completes a stamped pass of exactly n triplets: every
// slot of the compiled matrix is assigned the sum of its triplet values
// in append order, parallelized over disjoint slot ranges when threads
// > 1 (assignment per slot, so which participant reduces it cannot
// matter). Returns the matrix and whether n covered the compiled
// sequence; on false the caller must replay the pass serially.
func (a *Assembler) FinishStamped(n, threads int) (*CSC, bool) {
	if !a.compiled || n != a.compiledN {
		return nil, false
	}
	a.ensureReduction()
	if a.redFn == nil {
		a.redFn = a.reduceSlots
	}
	a.red.Run(len(a.csc.Val), threads, 2048, a.redFn)
	a.n = n
	return a.csc, true
}

// ensureReduction (re)builds the slot → triplets inverse of pos. A
// counting sort by slot over ascending k keeps each slot's triplet list
// in append order.
func (a *Assembler) ensureReduction() {
	if a.redGen == a.gen {
		return
	}
	n := a.compiledN
	nnz := len(a.csc.Val)
	if cap(a.slotPtr) < nnz+1 {
		a.slotPtr = make([]int32, nnz+1)
	}
	a.slotPtr = a.slotPtr[:nnz+1]
	for i := range a.slotPtr {
		a.slotPtr[i] = 0
	}
	for k := 0; k < n; k++ {
		a.slotPtr[a.pos[k]+1]++
	}
	for s := 0; s < nnz; s++ {
		a.slotPtr[s+1] += a.slotPtr[s]
	}
	if cap(a.slotTr) < n {
		a.slotTr = make([]int32, n)
	}
	a.slotTr = a.slotTr[:n]
	next := make([]int32, nnz)
	copy(next, a.slotPtr[:nnz])
	for k := 0; k < n; k++ {
		s := a.pos[k]
		a.slotTr[next[s]] = int32(k)
		next[s]++
	}
	a.redGen = a.gen
}

// reduceSlots is the reduction body: sum each slot's triplets in append
// order and assign (not accumulate — stale partial stamps are
// discarded).
func (a *Assembler) reduceSlots(lo, hi int) {
	val := a.csc.Val
	for s := lo; s < hi; s++ {
		v := 0.0
		for t := a.slotPtr[s]; t < a.slotPtr[s+1]; t++ {
			v += a.vals[a.slotTr[t]]
		}
		val[s] = v
	}
}
