package sparse

import (
	"errors"
	"math"

	"repro/internal/la"
)

// ErrSingular is returned when sparse LU meets a zero pivot column.
var ErrSingular = errors.New("sparse: matrix is singular to working precision")

// LUFactors holds a sparse LU factorization P·A·Q = L·U produced by
// FactorizeOpts, where P comes from partial pivoting and Q from the
// fill-reducing ordering.
type LUFactors struct {
	n          int
	lp, up     []int // column pointers for L and U
	li, ui     []int // row indices (pivot coordinates)
	lx, ux     []float64
	pinv       []int // pinv[origRow] = pivot step
	q          []int // column permutation: column k of PAQ is A[:, q[k]]
	lnzTotal   int
	pivotTolND float64
}

// Factorize computes a sparse LU of a square CSC matrix with the default
// RCM ordering and partial-pivot threshold 1.0 (strict partial pivoting).
func Factorize(a *CSC) (*LUFactors, error) {
	return FactorizeOpts(a, OrderRCM, 1.0)
}

// FactorizeOpts computes a sparse left-looking (Gilbert–Peierls) LU
// factorization with threshold partial pivoting. tol in (0,1] trades
// sparsity for stability: 1.0 always picks the largest-magnitude candidate,
// smaller values prefer keeping the diagonal pivot when it is within tol of
// the largest.
func FactorizeOpts(a *CSC, ord Ordering, tol float64) (*LUFactors, error) {
	if a.NRows != a.NCols {
		panic("sparse: Factorize of non-square matrix")
	}
	return FactorizePerm(a, permFor(a, ord), tol)
}

// FactorizePerm factorizes with an explicit column pre-ordering q (a
// permutation of 0..n-1, as produced by an OrderingCache or permFor),
// skipping the ordering computation. Same pivoting semantics as
// FactorizeOpts.
func FactorizePerm(a *CSC, q []int, tol float64) (*LUFactors, error) {
	if a.NRows != a.NCols {
		panic("sparse: Factorize of non-square matrix")
	}
	if len(q) != a.NCols {
		panic("sparse: ordering length mismatch")
	}
	if tol <= 0 || tol > 1 {
		panic("sparse: pivot tolerance must be in (0,1]")
	}
	n := a.NRows
	f := &LUFactors{n: n, pivotTolND: tol}
	f.q = q
	f.pinv = make([]int, n)
	for i := range f.pinv {
		f.pinv[i] = -1
	}
	// Growable L and U storage; start with a guess of 4x the input nnz.
	cap0 := 4*a.NNZ() + n
	f.li = make([]int, 0, cap0)
	f.lx = make([]float64, 0, cap0)
	f.ui = make([]int, 0, cap0)
	f.ux = make([]float64, 0, cap0)
	f.lp = make([]int, n+1)
	f.up = make([]int, n+1)

	x := make([]float64, n)      // dense accumulator
	xi := make([]int, n)         // reach stack (topological order at xi[top:])
	pstack := make([]int, n)     // DFS position stack
	marked := make([]bool, n)    // DFS visited marks
	visited := make([]int, 0, n) // marks to clear after each column

	for k := 0; k < n; k++ {
		col := f.q[k]
		top := f.reach(a, col, xi, pstack, marked, &visited)
		// Clear and scatter the column of A.
		for p := top; p < n; p++ {
			x[xi[p]] = 0
		}
		for p := a.ColPtr[col]; p < a.ColPtr[col+1]; p++ {
			x[a.RowIdx[p]] = a.Val[p]
		}
		// Sparse triangular solve x = L \ A(:,col), in topological order.
		for px := top; px < n; px++ {
			j := xi[px]
			jcol := f.pinv[j]
			if jcol < 0 {
				continue // row j not yet pivotal: no elimination from it
			}
			xj := x[j]
			// Skip the unit diagonal (first entry of L's column jcol).
			for p := f.lp[jcol] + 1; p < f.lp[jcol+1]; p++ {
				x[f.li[p]] -= f.lx[p] * xj
			}
		}
		// Pivot search among not-yet-pivotal rows.
		ipiv, amax := -1, -1.0
		for p := top; p < n; p++ {
			i := xi[p]
			if f.pinv[i] < 0 {
				if t := math.Abs(x[i]); t > amax {
					amax, ipiv = t, i
				}
			} else {
				f.ui = append(f.ui, f.pinv[i])
				f.ux = append(f.ux, x[i])
			}
		}
		if ipiv == -1 || amax <= 0 || math.IsNaN(amax) {
			return nil, ErrSingular
		}
		// Prefer the diagonal of the permuted matrix when acceptable.
		if f.pinv[col] < 0 && math.Abs(x[col]) >= amax*tol {
			ipiv = col
		}
		pivot := x[ipiv]
		f.ui = append(f.ui, k)
		f.ux = append(f.ux, pivot)
		f.up[k+1] = len(f.ui)
		f.pinv[ipiv] = k
		// L column: unit diagonal first, then below-diagonal entries.
		f.li = append(f.li, ipiv)
		f.lx = append(f.lx, 1)
		for p := top; p < n; p++ {
			i := xi[p]
			if f.pinv[i] < 0 {
				f.li = append(f.li, i)
				f.lx = append(f.lx, x[i]/pivot)
			}
			x[i] = 0
		}
		f.lp[k+1] = len(f.li)
		// Clear DFS marks for the next column.
		for _, v := range visited {
			marked[v] = false
		}
		visited = visited[:0]
	}
	// Map L's row indices from original rows to pivot coordinates.
	for p := range f.li {
		f.li[p] = f.pinv[f.li[p]]
	}
	f.lnzTotal = len(f.li) + len(f.ui)
	return f, nil
}

// reach performs the symbolic step: a DFS over the columns of L from the
// pattern of A(:,col), leaving the reachable set in topological order at
// xi[top:]. Returns top.
func (f *LUFactors) reach(a *CSC, col int, xi, pstack []int, marked []bool, visited *[]int) int {
	n := f.n
	top := n
	for p := a.ColPtr[col]; p < a.ColPtr[col+1]; p++ {
		if !marked[a.RowIdx[p]] {
			top = f.dfs(a.RowIdx[p], top, xi, pstack, marked, visited)
		}
	}
	return top
}

func (f *LUFactors) dfs(start, top int, xi, pstack []int, marked []bool, visited *[]int) int {
	head := 0
	xi[0] = start
	for head >= 0 {
		j := xi[head]
		if !marked[j] {
			marked[j] = true
			*visited = append(*visited, j)
			if jcol := f.pinv[j]; jcol >= 0 {
				pstack[head] = f.lp[jcol] + 1 // skip unit diagonal
			} else {
				pstack[head] = 0 // non-pivotal node: no children
			}
		}
		done := true
		if jcol := f.pinv[j]; jcol >= 0 {
			for p := pstack[head]; p < f.lp[jcol+1]; p++ {
				i := f.li[p]
				if marked[i] {
					continue
				}
				pstack[head] = p + 1
				head++
				xi[head] = i
				done = false
				break
			}
		}
		if done {
			head--
			top--
			xi[top] = j
		}
	}
	return top
}

// Solve solves A·x = b with the factorization. b is not modified.
func (f *LUFactors) Solve(b la.Vector) la.Vector {
	x := make(la.Vector, f.n)
	f.SolveInto(x, b, make(la.Vector, f.n))
	return x
}

// SolveInto solves A·x = b into dst without allocating. work is an
// n-length scratch vector; dst, b and work must not alias each other.
// b is not modified.
func (f *LUFactors) SolveInto(dst, b, work la.Vector) {
	if len(b) != f.n || len(dst) != f.n || len(work) != f.n {
		panic("sparse: LU SolveInto length mismatch")
	}
	n := f.n
	y := work
	// Apply row permutation: y[pinv[i]] = b[i].
	for i := 0; i < n; i++ {
		y[f.pinv[i]] = b[i]
	}
	// Forward solve L·z = y (unit diagonal first entry of each column).
	for k := 0; k < n; k++ {
		yk := y[k]
		if yk == 0 {
			continue
		}
		for p := f.lp[k] + 1; p < f.lp[k+1]; p++ {
			y[f.li[p]] -= f.lx[p] * yk
		}
	}
	// Back solve U·w = z; the diagonal is the last entry of each column.
	for k := n - 1; k >= 0; k-- {
		d := f.up[k+1] - 1
		y[k] /= f.ux[d]
		yk := y[k]
		if yk == 0 {
			continue
		}
		for p := f.up[k]; p < d; p++ {
			y[f.ui[p]] -= f.ux[p] * yk
		}
	}
	// Undo column permutation: x[q[k]] = w[k].
	for k := 0; k < n; k++ {
		dst[f.q[k]] = y[k]
	}
}

// NNZ returns the total stored entries of L and U.
func (f *LUFactors) NNZ() int { return f.lnzTotal }

// EqualValues reports whether f and o hold bit-identical factorizations:
// same dimensions, same index structure, and factor values equal bit for
// bit (Float64bits, so ±0 and NaN payloads count as different). The
// equivalence tests and the parallel-kernel benchmark use it to pin the
// parallel kernels to their serial counterparts.
func (f *LUFactors) EqualValues(o *LUFactors) bool {
	if f.n != o.n || len(f.lx) != len(o.lx) || len(f.ux) != len(o.ux) {
		return false
	}
	for p := range f.li {
		if f.li[p] != o.li[p] {
			return false
		}
	}
	for p := range f.ui {
		if f.ui[p] != o.ui[p] {
			return false
		}
	}
	for p := range f.lx {
		if math.Float64bits(f.lx[p]) != math.Float64bits(o.lx[p]) {
			return false
		}
	}
	for p := range f.ux {
		if math.Float64bits(f.ux[p]) != math.Float64bits(o.ux[p]) {
			return false
		}
	}
	return true
}

// SolveLU factorizes a and solves a single system in one call.
func SolveLU(a *CSC, b la.Vector) (la.Vector, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
