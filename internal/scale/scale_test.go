package scale

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/opf"
)

func smallModel(t *testing.T) (*mtl.Model, *la.Matrix) {
	t.Helper()
	c := grid.Case9()
	o := opf.Prepare(c)
	set, err := dataset.Generate(c, dataset.DefaultPreparer, dataset.Options{N: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mtl.Config{Variant: mtl.VariantMTL, Hierarchy: true, Seed: 5}
	m := mtl.New(o.Lay, cfg)
	if _, err := mtl.Train(m, nil, set, mtl.TrainConfig{Epochs: 2, BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	return m, set.Inputs()
}

func TestSimTimeMonotone(t *testing.T) {
	c := DefaultCluster()
	tInf := time.Millisecond
	prev := SimTime(tInf, 10000, 1, c)
	for _, p := range []int{2, 4, 8, 16, 32, 64, 128} {
		cur := SimTime(tInf, 10000, p, c)
		if cur >= prev {
			t.Fatalf("time did not decrease at p=%d: %v >= %v", p, cur, prev)
		}
		prev = cur
	}
}

func TestStrongScalingShape(t *testing.T) {
	pts := StrongScaling(time.Millisecond, 10000, []int{1, 16, 32, 64, 128}, DefaultCluster())
	if pts[0].Speedup != 1 {
		t.Fatalf("baseline speedup = %v", pts[0].Speedup)
	}
	last := pts[len(pts)-1]
	// Near-linear but sub-ideal, as in Fig 9a.
	if last.Speedup < 40 || last.Speedup >= last.Ideal {
		t.Fatalf("128-worker speedup %v not in (40, 128)", last.Speedup)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Fatal("speedup not monotone")
		}
		if pts[i].Eff > 1 {
			t.Fatal("super-linear efficiency")
		}
	}
}

func TestWeakScalingBetterThanStrong(t *testing.T) {
	workers := []int{1, 16, 32, 64, 128}
	c := DefaultCluster()
	strong := StrongScaling(time.Millisecond, 10000, workers, c)
	weak := WeakScaling(time.Millisecond, 10000, 1e6, workers, c)
	// Paper observation: weak scaling efficiency exceeds strong scaling
	// efficiency at high worker counts (fixed per-worker problem size
	// amortizes the imbalance).
	if weak[len(weak)-1].Eff < strong[len(strong)-1].Eff {
		t.Fatalf("weak eff %v < strong eff %v", weak[len(weak)-1].Eff, strong[len(strong)-1].Eff)
	}
	// Throughput grows with workers.
	for i := 1; i < len(weak); i++ {
		if weak[i].TFlops <= weak[i-1].TFlops {
			t.Fatal("weak throughput not growing")
		}
	}
}

func TestMeasureInferenceAndFlops(t *testing.T) {
	m, in := smallModel(t)
	d := MeasureInference(m, in)
	if d <= 0 {
		t.Fatalf("inference time %v", d)
	}
	if FlopsPerScenario(m) <= 0 {
		t.Fatal("flops estimate not positive")
	}
}

func TestRunParallelFasterThanSerial(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥2 CPUs")
	}
	m, in := smallModel(t)
	// Replicate the model per worker (real data parallelism: one replica
	// per device).
	big := la.NewMatrix(600, in.Cols)
	for r := 0; r < big.Rows; r++ {
		copy(big.Row(r), in.Row(r%in.Rows))
	}
	mk := func(n int) []*mtl.Model {
		ms := make([]*mtl.Model, n)
		for i := range ms {
			ms[i] = m
		}
		return ms
	}
	_ = mk
	// Separate replicas to avoid racing on forward caches.
	replicas := make([]*mtl.Model, 4)
	for i := range replicas {
		replicas[i] = mtl.New(m.Lay, m.Cfg)
		replicas[i].Norm = m.Norm
	}
	t1, n1 := RunParallel(replicas[:1], big, 1)
	t4, n4 := RunParallel(replicas, big, 4)
	if n1 != big.Rows || n4 != big.Rows {
		t.Fatal("scenario counts wrong")
	}
	if t4 >= t1 {
		t.Errorf("4 workers (%v) not faster than 1 (%v)", t4, t1)
	}
}
