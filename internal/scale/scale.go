// Package scale reproduces the multi-node scaling study of Figure 9.
//
// The paper measures data-parallel batch inference of the MTL model on up
// to 128 V100 GPUs (SC-ACOPF scenario fan-out): each device holds a model
// replica, scenarios are split evenly, and the model/data distribution
// step introduces a small load imbalance that bends the strong-scaling
// curve below ideal. Without GPUs, this package (a) runs real
// goroutine-parallel inference for worker counts up to the host's cores,
// and (b) extrapolates the paper's cluster with an analytic model
// calibrated by the measured single-worker inference time — same
// distribution policy, same imbalance mechanism. See DESIGN.md.
package scale

import (
	"math"
	"time"

	"repro/internal/batch"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/nn"
)

// ClusterParams models the distribution overheads of the paper's DGX-1
// cluster runs.
type ClusterParams struct {
	// CopyScenarios is the cost of shipping the model replica one hop
	// (first to the lead device, then peer-to-peer), expressed in units
	// of single-scenario inference time. A relative unit keeps the model
	// meaningful whether the calibrated kernel runs in microseconds (CPU,
	// small grids) or milliseconds (GPU, 300-bus batches).
	CopyScenarios float64
	// ImbalancePerHop is the fractional extra work the slowest replica
	// accumulates per distribution hop (the paper's observed skew).
	ImbalancePerHop float64
}

// DefaultCluster mirrors the qualitative behaviour reported in the
// paper: near-linear strong scaling with visible droop at 128 devices,
// better weak scaling.
func DefaultCluster() ClusterParams {
	return ClusterParams{CopyScenarios: 5, ImbalancePerHop: 0.012}
}

// MeasureInference times single-scenario inference of the model, averaged
// over the given inputs (rows).
func MeasureInference(m *mtl.Model, inputs *la.Matrix) time.Duration {
	if inputs.Rows == 0 {
		return 0
	}
	start := time.Now()
	for r := 0; r < inputs.Rows; r++ {
		m.Predict(inputs.Row(r))
	}
	return time.Since(start) / time.Duration(inputs.Rows)
}

// FlopsPerScenario estimates the floating-point work of one forward pass
// (≈ 2·weights, the dense-layer multiply-accumulate count).
func FlopsPerScenario(m *mtl.Model) float64 {
	return 2 * float64(nn.NumParams(m.Params()))
}

// SimTime predicts the wall time for n scenarios on p workers given the
// calibrated per-scenario time: distribution overhead grows with
// log2(p) hops, and the slowest worker carries the imbalance.
func SimTime(tInf time.Duration, n, p int, c ClusterParams) time.Duration {
	if p < 1 {
		p = 1
	}
	hops := 0.0
	if p > 1 {
		hops = math.Ceil(math.Log2(float64(p)))
	}
	distribution := time.Duration(c.CopyScenarios * float64(tInf) * hops)
	perWorker := math.Ceil(float64(n) / float64(p))
	skew := 1 + c.ImbalancePerHop*hops
	compute := time.Duration(perWorker * float64(tInf) * skew)
	return distribution + compute
}

// StrongPoint is one point of the strong-scaling curve.
type StrongPoint struct {
	Workers int
	Time    time.Duration
	Speedup float64 // vs 1 worker
	Ideal   float64 // = Workers
	Eff     float64 // Speedup / Ideal
}

// StrongScaling sweeps worker counts with a fixed total scenario count
// (the paper uses 10k scenarios, 1→128 GPUs).
func StrongScaling(tInf time.Duration, n int, workers []int, c ClusterParams) []StrongPoint {
	t1 := SimTime(tInf, n, 1, c)
	out := make([]StrongPoint, 0, len(workers))
	for _, p := range workers {
		tp := SimTime(tInf, n, p, c)
		sp := float64(t1) / float64(tp)
		out = append(out, StrongPoint{
			Workers: p, Time: tp, Speedup: sp, Ideal: float64(p), Eff: sp / float64(p),
		})
	}
	return out
}

// WeakPoint is one point of the weak-scaling curve.
type WeakPoint struct {
	Workers   int
	Scenarios int
	Time      time.Duration
	TFlops    float64 // sustained model throughput
	Eff       float64 // vs 1-worker throughput × workers
}

// WeakScaling sweeps worker counts with a fixed per-worker scenario count
// (the paper uses 10k per GPU).
func WeakScaling(tInf time.Duration, perWorker int, flopsPerScenario float64, workers []int, c ClusterParams) []WeakPoint {
	var base float64
	out := make([]WeakPoint, 0, len(workers))
	for i, p := range workers {
		n := perWorker * p
		tp := SimTime(tInf, n, p, c)
		tflops := flopsPerScenario * float64(n) / tp.Seconds() / 1e12
		if i == 0 {
			base = tflops / float64(p)
		}
		out = append(out, WeakPoint{
			Workers: p, Scenarios: n, Time: tp,
			TFlops: tflops, Eff: tflops / (base * float64(p)),
		})
	}
	return out
}

// RunParallel performs real data-parallel inference on the batch engine
// with one task per worker, each owning a model replica (models must be
// structurally identical; the task index selects the replica, mirroring
// the paper's one-replica-per-device distribution). It returns the wall
// time and the scenario count.
func RunParallel(models []*mtl.Model, inputs *la.Matrix, workers int) (time.Duration, int) {
	workers = batch.Workers(workers)
	if workers > len(models) {
		workers = len(models)
	}
	start := time.Now()
	count := inputs.Rows
	chunk := (count + workers - 1) / workers
	_ = batch.Run(workers, batch.Options{Workers: workers}, func(t *batch.Task) error {
		lo := t.Index * chunk
		hi := lo + chunk
		if hi > count {
			hi = count
		}
		m := models[t.Index]
		for r := lo; r < hi; r++ {
			m.Predict(inputs.Row(r))
		}
		return nil
	})
	return time.Since(start), count
}
