// Package mtl implements the Smart-PGSim multitask-learning model: a
// shared fully-connected trunk feeding seven task estimators (Va, Vm, Pg,
// Qg, λ, Z, µ) with the paper's physics-dependent hierarchy (Z is
// predicted from X̂, µ from Ẑ), the detach-based feature prioritization,
// and the four physics-informed loss terms f_AC, f_ieq, f_cost and f_Lag.
//
// A Model is not safe for concurrent inference (forward passes cache
// activations on the model); concurrent consumers — the evaluation
// sweeps and the serving daemon's replica pool — give each worker its
// own Clone. Clones share weights, so which replica serves a prediction
// never changes the result. Save/Load round-trip the weights and
// normalization state; cmd/train writes the snapshots cmd/pgsimd loads.
package mtl

import (
	"repro/internal/la"
)

// Range is a per-column min-max normalization to [0, 1], the paper's
// pre-processing for all targets (which also makes the sigmoid-bounded
// Z and µ heads feasible by construction).
type Range struct {
	Min, Max la.Vector
}

// FitRange computes per-column ranges over a sample matrix. Degenerate
// columns (max == min) normalize to 0.5.
func FitRange(m *la.Matrix) Range {
	r := Range{Min: make(la.Vector, m.Cols), Max: make(la.Vector, m.Cols)}
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.At(0, j), m.At(0, j)
		for i := 1; i < m.Rows; i++ {
			v := m.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		r.Min[j], r.Max[j] = lo, hi
	}
	return r
}

// Span returns max−min for column j (0 for degenerate columns).
func (r Range) Span(j int) float64 { return r.Max[j] - r.Min[j] }

// Normalize maps a matrix into [0,1] per column (new matrix).
func (r Range) Normalize(m *la.Matrix) *la.Matrix {
	out := la.NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(i, j, r.normVal(m.At(i, j), j))
		}
	}
	return out
}

// NormalizeVec maps a vector into normalized space.
func (r Range) NormalizeVec(v la.Vector) la.Vector {
	out := make(la.Vector, len(v))
	for j := range v {
		out[j] = r.normVal(v[j], j)
	}
	return out
}

func (r Range) normVal(v float64, j int) float64 {
	s := r.Span(j)
	if s == 0 {
		return 0.5
	}
	return (v - r.Min[j]) / s
}

// Denormalize maps normalized values back to physical units.
func (r Range) Denormalize(m *la.Matrix) *la.Matrix {
	out := la.NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(i, j, r.denormVal(m.At(i, j), j))
		}
	}
	return out
}

// DenormalizeVec maps one normalized row back to physical units.
func (r Range) DenormalizeVec(v la.Vector) la.Vector {
	out := make(la.Vector, len(v))
	for j := range v {
		out[j] = r.denormVal(v[j], j)
	}
	return out
}

func (r Range) denormVal(v float64, j int) float64 {
	s := r.Span(j)
	if s == 0 {
		return r.Min[j]
	}
	return r.Min[j] + v*s
}

// ChainGrad converts ∂L/∂physical into ∂L/∂normalized in place:
// multiply by the span of each column.
func (r Range) ChainGrad(gPhys la.Vector) la.Vector {
	out := make(la.Vector, len(gPhys))
	for j := range gPhys {
		out[j] = gPhys[j] * r.Span(j)
	}
	return out
}

// Normalizer bundles the ranges of the model inputs and the four target
// groups.
type Normalizer struct {
	In, X, Lam, Mu, Z Range
}
