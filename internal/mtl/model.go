package mtl

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/la"
	"repro/internal/nn"
	"repro/internal/opf"
)

// Variant selects the model family compared in Figure 7 of the paper.
type Variant int

const (
	// VariantSeparate trains seven independent networks with the same
	// layer/neuron budget — the "Sep models" baseline.
	VariantSeparate Variant = iota
	// VariantMTL is the shared-trunk multitask model without physics
	// losses.
	VariantMTL
	// VariantSmartPGSim is the full model: MTL + physics constraints.
	VariantSmartPGSim
)

// ParseVariant maps the CLI spelling of a variant ("sep", "mtl",
// "smartpgsim") to its Variant value — the inverse of the flag values
// accepted by cmd/train and cmd/pgsimd.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "sep":
		return VariantSeparate, nil
	case "mtl":
		return VariantMTL, nil
	case "smartpgsim":
		return VariantSmartPGSim, nil
	default:
		return 0, fmt.Errorf("mtl: unknown variant %q (want sep, mtl or smartpgsim)", s)
	}
}

// String names the variant as in the paper's plots.
func (v Variant) String() string {
	switch v {
	case VariantSeparate:
		return "Sep models"
	case VariantMTL:
		return "MTL"
	case VariantSmartPGSim:
		return "Smart-PGSim"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// PhysicsWeights scales the four physics loss terms of Eqn 9 (zero
// disables a term).
type PhysicsWeights struct {
	AC, Ieq, Cost, Lag float64
}

// DefaultPhysics returns the weights used by the Smart-PGSim variant.
// The physics terms act as regularizers: their weights scale with the
// training-corpus size. These defaults are tuned for the repository's
// hundreds-of-samples regime (the paper trains on 8,000 samples and can
// afford proportionally heavier physics terms — see EXPERIMENTS.md).
func DefaultPhysics() PhysicsWeights {
	return PhysicsWeights{AC: 0.002, Ieq: 0.0005, Cost: 0.002, Lag: 0.0005}
}

// Config sizes and wires the model.
type Config struct {
	Variant Variant
	// Hierarchy enables the physics-dependent head ordering (Z from X̂,
	// µ from Ẑ). Ignored (off) for VariantSeparate.
	Hierarchy bool
	// DetachPeriod: every k-th training step updates only the main task
	// path (gradients from λ/Z/µ heads into the trunk are blocked).
	// 0 disables.
	DetachPeriod int
	// TrunkWidths overrides the trunk layer widths; nil derives them
	// per system from the problem layout (trunkWidthsFor): the paper's
	// rule (5 layers, 2nb·[1.0,1.2,1.4,1.6,1.8]) up to the point where
	// the constraint counts, not the bus count, should size the model.
	TrunkWidths []int
	// HeadHidden is each estimator's hidden width; 0 derives it from the
	// task output size.
	HeadHidden int
	Physics    PhysicsWeights
	Seed       int64
}

// DefaultConfig returns the full Smart-PGSim configuration.
func DefaultConfig() Config {
	return Config{
		Variant:      VariantSmartPGSim,
		Hierarchy:    true,
		DetachPeriod: 4,
		Physics:      DefaultPhysics(),
		Seed:         1,
	}
}

// taskID indexes the seven estimators.
type taskID int

const (
	taskVa taskID = iota
	taskVm
	taskPg
	taskQg
	taskLam
	taskZ
	taskMu
	numTasks
)

// Pred is a batch of (normalized) multitask predictions.
type Pred struct {
	X   *la.Matrix // batch × nx, columns in opf layout order
	Lam *la.Matrix // batch × neq
	Z   *la.Matrix // batch × niq
	Mu  *la.Matrix // batch × niq
}

// Model is the Smart-PGSim network.
type Model struct {
	Cfg  Config
	Lay  opf.Layout
	Norm Normalizer

	trunks []*nn.Sequential // len 1 (shared) or numTasks (separate)
	heads  [numTasks]*nn.Sequential

	// forward caches for backward
	in        *la.Matrix
	trunkOut  []*la.Matrix
	zIn, muIn *la.Matrix
	headOut   [numTasks]*la.Matrix
}

// New builds a model for the given problem layout.
func New(lay opf.Layout, cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := 2 * lay.NB
	widths := cfg.TrunkWidths
	if widths == nil {
		widths = trunkWidthsFor(lay)
	}
	trunkOut := widths[len(widths)-1]
	m := &Model{Cfg: cfg, Lay: lay}

	shared := cfg.Variant != VariantSeparate
	hier := cfg.Hierarchy && shared
	ntr := 1
	if !shared {
		ntr = int(numTasks)
	}
	for i := 0; i < ntr; i++ {
		m.trunks = append(m.trunks, nn.MLP(rng, false, append([]int{in}, widths...)...))
	}

	outSize := [numTasks]int{
		taskVa: lay.NB, taskVm: lay.NB, taskPg: lay.NG, taskQg: lay.NG,
		taskLam: lay.NEq, taskZ: lay.NIq, taskMu: lay.NIq,
	}
	for t := taskID(0); t < numTasks; t++ {
		hin := trunkOut
		if hier {
			switch t {
			case taskZ:
				hin += lay.NX // X̂ appended
			case taskMu:
				hin += lay.NIq // Ẑ appended
			}
		}
		hidden := cfg.HeadHidden
		if hidden == 0 {
			hidden = headHidden(outSize[t])
		}
		sigmoid := t == taskZ || t == taskMu // hard positivity constraint
		m.heads[t] = nn.MLP(rng, sigmoid, hin, hidden, outSize[t])
	}
	return m
}

// trunkWidthsFor sizes the shared trunk from the problem layout. The
// paper's rule — five layers at 2nb·[1.0,1.2,1.4,1.6,1.8] — grows
// linearly with the bus count, which at case300 scale (600 inputs)
// makes the trunk wider than the information the constraint structure
// carries and training intractably slow. Above the point where the
// linear rule crosses the constraint-derived budget, the base width is
// instead tied to the multiplier counts the heads must explain,
// 192 + 4·⌈√(NEq+NIq)⌉: case57 and case118 keep the paper's widths
// (114 and 236 inputs stay under their budgets of 276 and 324), while
// case300 caps at 384 instead of 600. See DESIGN.md §9.
func trunkWidthsFor(lay opf.Layout) []int {
	in := 2 * lay.NB
	base := float64(in)
	if budget := 192 + 4*math.Ceil(math.Sqrt(float64(lay.NEq+lay.NIq))); budget < base {
		base = budget
	}
	f := []float64{1.0, 1.2, 1.4, 1.6, 1.8}
	w := make([]int, len(f))
	for i, s := range f {
		w[i] = int(math.Ceil(base * s))
	}
	return w
}

// headHidden sizes an estimator's hidden layer from its task output
// size — NB/NG for the X heads, NEq for λ, NIq for Z and µ — so per-
// system head capacity follows the multiplier counts.
func headHidden(out int) int {
	h := 2 * out
	if h < 24 {
		h = 24
	}
	if h > 512 {
		h = 512
	}
	return h
}

// shared reports whether the trunk is shared across tasks.
func (m *Model) shared() bool { return m.Cfg.Variant != VariantSeparate }

// hier reports whether the physics-dependent hierarchy is active.
func (m *Model) hier() bool { return m.Cfg.Hierarchy && m.shared() }

func (m *Model) trunkFor(t taskID) *nn.Sequential {
	if m.shared() {
		return m.trunks[0]
	}
	return m.trunks[t]
}

// Forward runs the network on a batch of normalized inputs.
func (m *Model) Forward(in *la.Matrix) *Pred {
	m.in = in
	m.trunkOut = make([]*la.Matrix, len(m.trunks))
	for i, tr := range m.trunks {
		m.trunkOut[i] = tr.Forward(in)
	}
	get := func(t taskID) *la.Matrix {
		if m.shared() {
			return m.trunkOut[0]
		}
		return m.trunkOut[t]
	}
	for _, t := range []taskID{taskVa, taskVm, taskPg, taskQg, taskLam} {
		m.headOut[t] = m.heads[t].Forward(get(t))
	}
	xhat := m.assembleX()
	if m.hier() {
		m.zIn = hcat(get(taskZ), xhat)
	} else {
		m.zIn = get(taskZ)
	}
	m.headOut[taskZ] = m.heads[taskZ].Forward(m.zIn)
	if m.hier() {
		m.muIn = hcat(get(taskMu), m.headOut[taskZ])
	} else {
		m.muIn = get(taskMu)
	}
	m.headOut[taskMu] = m.heads[taskMu].Forward(m.muIn)

	return &Pred{X: xhat, Lam: m.headOut[taskLam], Z: m.headOut[taskZ], Mu: m.headOut[taskMu]}
}

// assembleX packs the four X-task head outputs into layout order.
func (m *Model) assembleX() *la.Matrix {
	lay := m.Lay
	rows := m.headOut[taskVa].Rows
	x := la.NewMatrix(rows, lay.NX)
	copyBlock := func(src *la.Matrix, off int) {
		for r := 0; r < rows; r++ {
			copy(x.Row(r)[off:off+src.Cols], src.Row(r))
		}
	}
	copyBlock(m.headOut[taskVa], lay.VaOff)
	copyBlock(m.headOut[taskVm], lay.VmOff)
	copyBlock(m.headOut[taskPg], lay.PgOff)
	copyBlock(m.headOut[taskQg], lay.QgOff)
	return x
}

// splitX separates an X-shaped gradient back into the four head blocks.
func (m *Model) splitX(gx *la.Matrix) [4]*la.Matrix {
	lay := m.Lay
	rows := gx.Rows
	mk := func(off, n int) *la.Matrix {
		g := la.NewMatrix(rows, n)
		for r := 0; r < rows; r++ {
			copy(g.Row(r), gx.Row(r)[off:off+n])
		}
		return g
	}
	return [4]*la.Matrix{
		mk(lay.VaOff, lay.NB), mk(lay.VmOff, lay.NB),
		mk(lay.PgOff, lay.NG), mk(lay.QgOff, lay.NG),
	}
}

// Backward propagates multitask gradients; detach blocks the gradient
// flow from the auxiliary tasks (λ, Z, µ) into the shared trunk and the
// main-task outputs — the paper's feature-prioritization knob.
func (m *Model) Backward(g *Pred, detach bool) {
	rows := g.X.Rows
	trunkGrad := make([]*la.Matrix, len(m.trunks))
	addTrunkGrad := func(t taskID, gm *la.Matrix) {
		idx := 0
		if !m.shared() {
			idx = int(t)
		}
		if trunkGrad[idx] == nil {
			trunkGrad[idx] = la.NewMatrix(rows, gm.Cols)
		}
		trunkGrad[idx].AddScaledMat(1, gm)
	}

	// µ head first (deepest in the hierarchy).
	gMuIn := m.heads[taskMu].Backward(g.Mu)
	var gZfromMu *la.Matrix
	if m.hier() {
		var gT *la.Matrix
		gT, gZfromMu = hsplit(gMuIn, m.trunkOut[0].Cols)
		if !detach {
			addTrunkGrad(taskMu, gT)
		}
	} else if !detach || !m.shared() {
		addTrunkGrad(taskMu, gMuIn)
	}

	// Z head.
	gZ := g.Z.Clone()
	if gZfromMu != nil && !detach {
		gZ.AddScaledMat(1, gZfromMu)
	}
	gZIn := m.heads[taskZ].Backward(gZ)
	var gXfromZ *la.Matrix
	if m.hier() {
		var gT *la.Matrix
		gT, gXfromZ = hsplit(gZIn, m.trunkOut[0].Cols)
		if !detach {
			addTrunkGrad(taskZ, gT)
		}
	} else if !detach || !m.shared() {
		addTrunkGrad(taskZ, gZIn)
	}

	// λ head.
	gLamIn := m.heads[taskLam].Backward(g.Lam)
	if !detach || !m.shared() {
		addTrunkGrad(taskLam, gLamIn)
	}

	// Main task heads; hierarchy feeds X̂ gradient from the Z head back
	// into them unless detached.
	gx := g.X.Clone()
	if gXfromZ != nil && !detach {
		gx.AddScaledMat(1, gXfromZ)
	}
	blocks := m.splitX(gx)
	for i, t := range []taskID{taskVa, taskVm, taskPg, taskQg} {
		addTrunkGrad(t, m.heads[t].Backward(blocks[i]))
	}

	for i, tr := range m.trunks {
		if trunkGrad[i] != nil {
			tr.Backward(trunkGrad[i])
		}
	}
}

// Params returns every learnable parameter of the model.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	for _, tr := range m.trunks {
		ps = append(ps, tr.Params()...)
	}
	for _, h := range m.heads {
		ps = append(ps, h.Params()...)
	}
	return ps
}

// Clone returns an independent replica with the same configuration,
// weights and normalization state. Forward passes cache activations on
// the model, so concurrent inference (the evaluation sweeps and the
// scaling study) gives each worker its own replica via Clone.
func (m *Model) Clone() *Model {
	c := New(m.Lay, m.Cfg)
	c.Norm = m.Norm
	src := m.Params()
	dst := c.Params()
	if len(src) != len(dst) {
		panic("mtl: Clone parameter count mismatch")
	}
	for i := range src {
		copy(dst[i].Val, src[i].Val)
		dst[i].Version++
	}
	return c
}

// Predict denormalizes one input's prediction into a warm-start point.
// Mu and Z are floored at a small positive value (interior-point
// requirement); with min-max ranges fitted on nonnegative data the
// sigmoid heads already keep them nonnegative.
//
// Prediction runs on the float32 serving path (nn.Sequential.Infer):
// the forward pass is a chain of single-row matvecs bounded by memory
// traffic over the weights, and float32 halves it at precision far
// beyond what a warm start needs. Training and the batch Forward stay
// float64.
func (m *Model) Predict(input la.Vector) *opf.Start {
	lay := m.Lay
	norm := m.Norm.In.NormalizeVec(input)
	in32 := make([]float32, len(norm))
	for i, v := range norm {
		in32[i] = float32(v)
	}
	trunkOut := make([][]float32, len(m.trunks))
	for i, tr := range m.trunks {
		trunkOut[i] = tr.Infer(in32)
	}
	get := func(t taskID) []float32 {
		if m.shared() {
			return trunkOut[0]
		}
		return trunkOut[t]
	}
	xhat := make([]float32, lay.NX)
	for _, h := range []struct {
		t   taskID
		off int
	}{
		{taskVa, lay.VaOff}, {taskVm, lay.VmOff}, {taskPg, lay.PgOff}, {taskQg, lay.QgOff},
	} {
		copy(xhat[h.off:], m.heads[h.t].Infer(get(h.t)))
	}
	lam32 := m.heads[taskLam].Infer(get(taskLam))
	zin := get(taskZ)
	if m.hier() {
		zin = append(append(make([]float32, 0, len(zin)+len(xhat)), zin...), xhat...)
	}
	z32 := m.heads[taskZ].Infer(zin)
	muin := get(taskMu)
	if m.hier() {
		muin = append(append(make([]float32, 0, len(muin)+len(z32)), muin...), z32...)
	}
	mu32 := m.heads[taskMu].Infer(muin)

	to64 := func(v []float32) la.Vector {
		out := make(la.Vector, len(v))
		for i, f := range v {
			out[i] = float64(f)
		}
		return out
	}
	x := m.Norm.X.DenormalizeVec(to64(xhat))
	lam := m.Norm.Lam.DenormalizeVec(to64(lam32))
	mu := m.Norm.Mu.DenormalizeVec(to64(mu32))
	z := m.Norm.Z.DenormalizeVec(to64(z32))
	for i := range mu {
		if mu[i] < 1e-8 {
			mu[i] = 1e-8
		}
	}
	for i := range z {
		if z[i] < 1e-8 {
			z[i] = 1e-8
		}
	}
	return &opf.Start{X: x, Lam: lam, Mu: mu, Z: z}
}

// Warmup eagerly materializes the float32 serving caches of every
// layer. Call it when a replica enters a serving pool so the one-time
// conversion happens at deploy time, not inside the first prediction.
func (m *Model) Warmup() {
	for _, tr := range m.trunks {
		tr.Materialize32()
	}
	for _, h := range m.heads {
		h.Materialize32()
	}
}

// snapshot is the on-disk model format: normalization state plus the
// parameter tensors in Params order.
type snapshot struct {
	Norm Normalizer
	Vals [][]float64
}

// Save writes the model weights and normalization state.
func (m *Model) Save(w io.Writer) error {
	ps := m.Params()
	s := snapshot{Norm: m.Norm, Vals: make([][]float64, len(ps))}
	for i, p := range ps {
		s.Vals[i] = p.Val
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load restores weights and normalization into an identically configured
// model.
func (m *Model) Load(r io.Reader) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return err
	}
	ps := m.Params()
	if len(s.Vals) != len(ps) {
		return fmt.Errorf("mtl: snapshot has %d tensors, model has %d", len(s.Vals), len(ps))
	}
	for i, p := range ps {
		if len(s.Vals[i]) != len(p.Val) {
			return fmt.Errorf("mtl: tensor %d has %d values, model expects %d", i, len(s.Vals[i]), len(p.Val))
		}
		copy(p.Val, s.Vals[i])
		p.Version++
	}
	m.Norm = s.Norm
	return nil
}

// Fingerprint returns the sha256 content hash of the model's serialized
// state (weights + normalization, the exact bytes Save writes). Two
// models with identical weights fingerprint identically regardless of
// how they were produced, so the lifecycle registry uses it as the
// version identity and the canary harness uses it to recognize an
// identical-weights candidate.
func (m *Model) Fingerprint() string {
	h := sha256.New()
	if err := m.Save(h); err != nil {
		// gob encoding into a hash cannot fail for a well-formed model;
		// a failure here means the model is structurally broken.
		panic(fmt.Sprintf("mtl: fingerprinting model: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hcat concatenates two batches column-wise.
func hcat(a, b *la.Matrix) *la.Matrix {
	if a.Rows != b.Rows {
		panic("mtl: hcat row mismatch")
	}
	out := la.NewMatrix(a.Rows, a.Cols+b.Cols)
	for r := 0; r < a.Rows; r++ {
		copy(out.Row(r)[:a.Cols], a.Row(r))
		copy(out.Row(r)[a.Cols:], b.Row(r))
	}
	return out
}

// hsplit splits a batch column-wise at column c.
func hsplit(m *la.Matrix, c int) (*la.Matrix, *la.Matrix) {
	a := la.NewMatrix(m.Rows, c)
	b := la.NewMatrix(m.Rows, m.Cols-c)
	for r := 0; r < m.Rows; r++ {
		copy(a.Row(r), m.Row(r)[:c])
		copy(b.Row(r), m.Row(r)[c:])
	}
	return a, b
}
