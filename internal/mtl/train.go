package mtl

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/nn"
)

// TrainConfig controls the optimization loop.
type TrainConfig struct {
	Epochs     int     // default 60
	BatchSize  int     // default 32
	LR         float64 // default 1e-3
	MainWeight float64 // Charbonnier weight of the X tasks (default 1)
	AuxWeight  float64 // Charbonnier weight of λ/µ/Z (default 0.5)
	Seed       int64
	// Logf, when non-nil, receives one line per LogEvery epochs.
	Logf     func(format string, args ...any)
	LogEvery int // default 10
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.MainWeight == 0 {
		c.MainWeight = 1
	}
	if c.AuxWeight == 0 {
		c.AuxWeight = 0.5
	}
	if c.LogEvery == 0 {
		c.LogEvery = 10
	}
	return c
}

// History records per-epoch training losses.
type History struct {
	Supervised []float64 // Charbonnier total
	Physics    []float64 // weighted physics total (0 when disabled)
}

// Train fits the model on the set. phys may be nil for variants without
// physics losses; it is required (and only used) when the model config
// enables any physics weight.
func Train(m *Model, phys *Physics, set *dataset.Set, cfg TrainConfig) (*History, error) {
	cfg = cfg.withDefaults()
	if len(set.Samples) == 0 {
		return nil, fmt.Errorf("mtl: empty training set")
	}
	usePhysics := m.Cfg.Physics != (PhysicsWeights{})
	if usePhysics && phys == nil {
		return nil, fmt.Errorf("mtl: physics weights set but no Physics provider")
	}

	// Fit normalization on the training data.
	inputs := set.Inputs()
	xs := set.Stack(func(s *dataset.Sample) la.Vector { return s.X })
	lams := set.Stack(func(s *dataset.Sample) la.Vector { return s.Lam })
	mus := set.Stack(func(s *dataset.Sample) la.Vector { return s.Mu })
	zs := set.Stack(func(s *dataset.Sample) la.Vector { return s.Z })
	m.Norm = Normalizer{
		In: FitRange(inputs), X: FitRange(xs), Lam: FitRange(lams),
		Mu: FitRange(mus), Z: FitRange(zs),
	}
	inN := m.Norm.In.Normalize(inputs)
	xN := m.Norm.X.Normalize(xs)
	lamN := m.Norm.Lam.Normalize(lams)
	muN := m.Norm.Mu.Normalize(mus)
	zN := m.Norm.Z.Normalize(zs)

	n := len(set.Samples)
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(m.Params(), cfg.LR)
	hist := &History{}
	lossMain := nn.Charbonnier{Eps: 1e-9}
	step := 0

	for ep := 0; ep < cfg.Epochs; ep++ {
		perm := rng.Perm(n)
		epSup, epPhy := 0.0, 0.0
		nbatch := 0
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			idx := perm[lo:hi]
			bIn := gather(inN, idx)
			bX := gather(xN, idx)
			bLam := gather(lamN, idx)
			bMu := gather(muN, idx)
			bZ := gather(zN, idx)

			nn.ZeroGrads(m.Params())
			pred := m.Forward(bIn)

			lx, gx := lossMain.Eval(pred.X, bX)
			ll, gl := lossMain.Eval(pred.Lam, bLam)
			lm, gm := lossMain.Eval(pred.Mu, bMu)
			lz, gz := lossMain.Eval(pred.Z, bZ)
			gx.Scale(cfg.MainWeight)
			gl.Scale(cfg.AuxWeight)
			gm.Scale(cfg.AuxWeight)
			gz.Scale(cfg.AuxWeight)
			sup := cfg.MainWeight*lx + cfg.AuxWeight*(ll+lm+lz)

			phy := 0.0
			if usePhysics {
				phy = m.addPhysicsGrads(phys, set, idx, pred, gx, gl, gm, gz)
			}

			detach := m.Cfg.DetachPeriod > 0 && step%m.Cfg.DetachPeriod == 0
			m.Backward(&Pred{X: gx, Lam: gl, Mu: gm, Z: gz}, detach)
			opt.Step()
			step++
			epSup += sup
			epPhy += phy
			nbatch++
		}
		hist.Supervised = append(hist.Supervised, epSup/float64(nbatch))
		hist.Physics = append(hist.Physics, epPhy/float64(nbatch))
		if cfg.Logf != nil && (ep%cfg.LogEvery == 0 || ep == cfg.Epochs-1) {
			cfg.Logf("mtl[%s] epoch %3d/%d supervised %.5f physics %.5f",
				m.Cfg.Variant, ep+1, cfg.Epochs, epSup/float64(nbatch), epPhy/float64(nbatch))
		}
	}
	return hist, nil
}

// addPhysicsGrads computes the physics losses in physical space for each
// batch sample, chains them into the normalized gradient matrices, and
// returns the weighted batch-average physics loss.
func (m *Model) addPhysicsGrads(phys *Physics, set *dataset.Set, idx []int, pred *Pred, gx, gl, gm, gz *la.Matrix) float64 {
	w := m.Cfg.Physics
	bn := float64(len(idx))
	total := 0.0
	for r, si := range idx {
		s := &set.Samples[si]
		x := m.Norm.X.DenormalizeVec(pred.X.Row(r))
		lam := m.Norm.Lam.DenormalizeVec(pred.Lam.Row(r))
		mu := m.Norm.Mu.DenormalizeVec(pred.Mu.Row(r))
		z := m.Norm.Z.DenormalizeVec(pred.Z.Row(r))

		accX := make(la.Vector, len(x))
		accLam := make(la.Vector, len(lam))
		accMu := make(la.Vector, len(mu))
		accZ := make(la.Vector, len(z))

		if w.AC != 0 {
			l, g := phys.AC(x, s.Input)
			total += w.AC * l
			accX.AddScaled(w.AC, g)
		}
		if w.Ieq != 0 {
			l, g := phys.Ieq(x)
			total += w.Ieq * l
			accX.AddScaled(w.Ieq, g)
		}
		if w.Cost != 0 {
			l, g := phys.Cost(x, s.Cost)
			total += w.Cost * l
			accX.AddScaled(w.Cost, g)
		}
		if w.Lag != 0 {
			l, gxl, gll, gml, gzl := phys.Lag(x, lam, mu, z, s.Input)
			total += w.Lag * l
			accX.AddScaled(w.Lag, gxl)
			accLam.AddScaled(w.Lag, gll)
			accMu.AddScaled(w.Lag, gml)
			accZ.AddScaled(w.Lag, gzl)
		}

		// Chain rule into normalized space, averaged over the batch.
		gx.Row(r).AddScaled(1/bn, m.Norm.X.ChainGrad(accX))
		gl.Row(r).AddScaled(1/bn, m.Norm.Lam.ChainGrad(accLam))
		gm.Row(r).AddScaled(1/bn, m.Norm.Mu.ChainGrad(accMu))
		gz.Row(r).AddScaled(1/bn, m.Norm.Z.ChainGrad(accZ))
	}
	return total / bn
}

// gather selects rows of m by index.
func gather(m *la.Matrix, idx []int) *la.Matrix {
	out := la.NewMatrix(len(idx), m.Cols)
	for r, i := range idx {
		copy(out.Row(r), m.Row(i))
	}
	return out
}
