package mtl

import (
	"testing"

	"repro/internal/la"
	"repro/internal/opf"
)

// identityRange builds a span-1 Range so normalization is the identity.
func identityRange(n int) Range {
	r := Range{Min: make(la.Vector, n), Max: make(la.Vector, n)}
	for i := range r.Max {
		r.Max[i] = 1
	}
	return r
}

// TestClonePredictsIdentically: a clone must reproduce the original's
// predictions exactly (the parallel sweeps rely on replicas being
// interchangeable) while staying independent of the original's weights.
func TestClonePredictsIdentically(t *testing.T) {
	lay := opf.Layout{
		NB: 3, NG: 2, NX: 10, NEq: 7, NIq: 8,
		VaOff: 0, VmOff: 3, PgOff: 6, QgOff: 8,
	}
	m := New(lay, Config{Variant: VariantSmartPGSim, Hierarchy: true, Seed: 17})
	m.Norm = Normalizer{
		In:  identityRange(2 * lay.NB),
		X:   identityRange(lay.NX),
		Lam: identityRange(lay.NEq),
		Mu:  identityRange(lay.NIq),
		Z:   identityRange(lay.NIq),
	}
	in := la.Vector{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	want := m.Predict(in)

	c := m.Clone()
	got := c.Predict(in)
	for _, pair := range []struct{ a, b la.Vector }{
		{want.X, got.X}, {want.Lam, got.Lam}, {want.Mu, got.Mu}, {want.Z, got.Z},
	} {
		if len(pair.a) != len(pair.b) {
			t.Fatalf("length mismatch: %d vs %d", len(pair.a), len(pair.b))
		}
		for i := range pair.a {
			if pair.a[i] != pair.b[i] {
				t.Fatalf("clone prediction differs at %d: %v vs %v", i, pair.a[i], pair.b[i])
			}
		}
	}

	// Weight independence: perturbing the clone must not change the
	// original's prediction.
	c.Params()[0].Val[0] += 100
	after := m.Predict(in)
	for i := range want.X {
		if want.X[i] != after.X[i] {
			t.Fatal("mutating clone weights leaked into the original")
		}
	}
}
