package mtl

import (
	"testing"

	"repro/internal/opf"
)

// layoutFor mimics opf.Prepare's layout arithmetic for a fully rated
// system of nb buses, ng generators and nl branches (Vm, Pg and Qg
// bounds all finite, Va free — the embedded-fleet shape).
func layoutFor(nb, ng, nl int) opf.Layout {
	return opf.Layout{
		NB: nb, NG: ng, NLRated: nl,
		NX:    2*nb + 2*ng,
		NEq:   2*nb + 1,
		NIq:   2*nl + 2*nb + 4*ng,
		VmOff: nb, PgOff: 2 * nb, QgOff: 2*nb + ng,
	}
}

// TestTrunkWidthsScaleAware pins the sizing rule: the paper's linear
// 2nb rule for small and mid systems, the constraint-derived cap at
// case300 scale.
func TestTrunkWidthsScaleAware(t *testing.T) {
	for _, tc := range []struct {
		name       string
		lay        opf.Layout
		wantFirst  int
		capApplied bool
	}{
		{"case9-like", layoutFor(9, 3, 9), 18, false},
		{"case57-like", layoutFor(57, 7, 80), 114, false},
		{"case118-like", layoutFor(118, 54, 186), 236, false},
		{"case300-like", layoutFor(300, 69, 411), 384, true},
	} {
		w := trunkWidthsFor(tc.lay)
		if len(w) != 5 {
			t.Fatalf("%s: %d layers, want 5", tc.name, len(w))
		}
		if w[0] != tc.wantFirst {
			t.Errorf("%s: first width %d want %d", tc.name, w[0], tc.wantFirst)
		}
		if capApplied := w[0] < 2*tc.lay.NB; capApplied != tc.capApplied {
			t.Errorf("%s: cap applied = %v want %v (width %d, 2nb %d)",
				tc.name, capApplied, tc.capApplied, w[0], 2*tc.lay.NB)
		}
		for i := 1; i < len(w); i++ {
			if w[i] <= w[i-1] {
				t.Errorf("%s: widths %v not strictly widening", tc.name, w)
			}
		}
	}
}

// TestModelBuildsAtPaperScale: a case300-shaped model constructs, runs
// a forward pass, and its clone round-trips the parameter count — the
// shape contract cmd/train snapshots rely on.
func TestModelBuildsAtPaperScale(t *testing.T) {
	lay := layoutFor(300, 69, 411)
	m := New(lay, DefaultConfig())
	count := func(m *Model) int {
		n := 0
		for _, p := range m.Params() {
			n += len(p.Val)
		}
		return n
	}
	// The capped trunk must be materially smaller than the paper's
	// uncapped linear rule at this scale.
	uncapped := DefaultConfig()
	uncapped.TrunkWidths = []int{600, 720, 840, 960, 1080}
	if n, nu := count(m), count(New(lay, uncapped)); n >= nu*3/4 {
		t.Fatalf("capped model has %d parameters vs %d uncapped — sizing cap not effective", n, nu)
	}
	if got := len(m.Clone().Params()); got != len(m.Params()) {
		t.Fatalf("clone has %d tensors, model %d", got, len(m.Params()))
	}
}
