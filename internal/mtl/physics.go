package mtl

import (
	"math"

	"repro/internal/la"
	"repro/internal/opf"
)

// Physics evaluates the four physics-informed loss terms of Section VII
// against a base OPF instance. The admittance structure, flow limits,
// bounds and cost model are load-independent, so one prepared instance
// serves every sample; only the power-balance residual shifts with the
// sampled loads, by exactly (load_sample − load_base) in per unit.
type Physics struct {
	OPF    *opf.OPF
	baseIn la.Vector // [Pd; Qd] pu of the base case
}

// NewPhysics wraps a prepared base-case OPF.
func NewPhysics(o *opf.OPF, baseInput la.Vector) *Physics {
	return &Physics{OPF: o, baseIn: baseInput.Clone()}
}

// expClamp keeps the exponential penalties finite during early training.
const expClamp = 30.0

func cexp(v float64) float64 {
	if v > expClamp {
		v = expClamp
	}
	return math.Exp(v)
}

// AC evaluates f_AC (Eqn 5): the L1 norm of the AC nodal power-balance
// residual at the predicted X, for the sample with model input `in`.
// Returns the loss and its gradient with respect to X (physical units).
func (p *Physics) AC(x, in la.Vector) (float64, la.Vector) {
	g, jac := p.OPF.Equality(x)
	nb2 := 2 * p.OPF.Lay.NB
	sign := make(la.Vector, len(g))
	loss := 0.0
	for i := 0; i < nb2; i++ {
		gi := g[i] + (in[i] - p.baseIn[i]) // shift residual to sample loads
		loss += math.Abs(gi)
		sign[i] = sgn(gi)
	}
	return loss, jac.MulVecT(sign)
}

// Ieq evaluates f_ieq (Eqn 6): exponential penalties on branch-flow
// violations and bound violations of the predicted X.
func (p *Physics) Ieq(x la.Vector) (float64, la.Vector) {
	grad := make(la.Vector, len(x))
	loss := 0.0
	h, jac := p.OPF.Inequality(x)
	if len(h) > 0 {
		w := make(la.Vector, len(h))
		for i, v := range h {
			e := cexp(v)
			loss += e
			w[i] = e
		}
		grad.Add(jac.MulVecT(w))
	}
	xmin, xmax := p.OPF.Bounds()
	for i := range x {
		if !math.IsInf(xmax[i], 1) {
			e := cexp(x[i] - xmax[i])
			loss += e
			grad[i] += e
		}
		if !math.IsInf(xmin[i], -1) {
			e := cexp(xmin[i] - x[i])
			loss += e
			grad[i] -= e
		}
	}
	return loss, grad
}

// Cost evaluates f_f(X) (Eqn 7): |f(X̂) − f0| / (1 + |f0|), the relative
// deviation of the predicted dispatch cost from the ground truth.
func (p *Physics) Cost(x la.Vector, f0 float64) (float64, la.Vector) {
	f, df := p.OPF.CostGrad(x)
	scale := 1 / (1 + math.Abs(f0))
	d := f - f0
	return math.Abs(d) * scale, df.Scale(sgn(d) * scale)
}

// Lag evaluates f_Lag (Eqn 8): |λᵀG(X)| + |µᵀ(H(X)+Z)| with the predicted
// multipliers and slacks. It returns the loss and gradients with respect
// to X, λ, µ and Z (physical units).
func (p *Physics) Lag(x, lam, mu, z, in la.Vector) (loss float64, gx, glam, gmu, gz la.Vector) {
	g, jg := p.OPF.Equality(x)
	nb2 := 2 * p.OPF.Lay.NB
	for i := 0; i < nb2; i++ {
		g[i] += in[i] - p.baseIn[i]
	}
	h, jh := p.OPF.FullInequality(x)

	termG := lam.Dot(g)
	sG := sgn(termG)
	hz := h.Clone().Add(z)
	termH := mu.Dot(hz)
	sH := sgn(termH)
	loss = math.Abs(termG) + math.Abs(termH)

	gx = jg.MulVecT(lam.Clone().Scale(sG))
	gx.Add(jh.MulVecT(mu.Clone().Scale(sH)))
	glam = g.Scale(sG)
	gmu = hz.Scale(sH)
	gz = mu.Clone().Scale(sH)
	return loss, gx, glam, gmu, gz
}

func sgn(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}
