package mtl

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/nn"
	"repro/internal/opf"
)

func case9Data(t *testing.T, n int) (*grid.Case, *opf.OPF, *dataset.Set) {
	t.Helper()
	c := grid.Case9()
	o := opf.Prepare(c)
	set, err := dataset.Generate(c, dataset.DefaultPreparer, dataset.Options{N: n, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return c, o, set
}

func TestRangeRoundTrip(t *testing.T) {
	m := la.NewMatrix(3, 2)
	copy(m.Data, []float64{1, 5, 3, 5, 2, 5})
	r := FitRange(m)
	if r.Min[0] != 1 || r.Max[0] != 3 {
		t.Fatalf("range: %v %v", r.Min, r.Max)
	}
	norm := r.Normalize(m)
	for _, v := range norm.Data {
		if v < 0 || v > 1 {
			t.Fatalf("normalized outside [0,1]: %v", v)
		}
	}
	// Degenerate column 1 normalizes to 0.5 and denormalizes to min.
	if norm.At(0, 1) != 0.5 {
		t.Fatalf("degenerate column: %v", norm.At(0, 1))
	}
	back := r.Denormalize(norm)
	for i := range m.Data {
		if math.Abs(back.Data[i]-m.Data[i]) > 1e-12 {
			t.Fatal("round trip failed")
		}
	}
}

func TestChainGradMatchesDenormalize(t *testing.T) {
	r := Range{Min: la.Vector{1, 0}, Max: la.Vector{3, 10}}
	// d phys/d norm = span, so chain of gradient 1 is the span itself.
	g := r.ChainGrad(la.Vector{1, 1})
	if g[0] != 2 || g[1] != 10 {
		t.Fatalf("ChainGrad = %v", g)
	}
}

func TestModelShapes(t *testing.T) {
	_, o, _ := case9Data(t, 4)
	for _, v := range []Variant{VariantSeparate, VariantMTL, VariantSmartPGSim} {
		cfg := DefaultConfig()
		cfg.Variant = v
		cfg.Hierarchy = v != VariantSeparate
		m := New(o.Lay, cfg)
		in := la.NewMatrix(3, 2*o.Lay.NB)
		rng := rand.New(rand.NewSource(1))
		for i := range in.Data {
			in.Data[i] = rng.Float64()
		}
		p := m.Forward(in)
		if p.X.Cols != o.Lay.NX || p.Lam.Cols != o.Lay.NEq ||
			p.Mu.Cols != o.Lay.NIq || p.Z.Cols != o.Lay.NIq {
			t.Fatalf("%v: wrong output shapes", v)
		}
		// Sigmoid heads keep Z and µ in (0,1).
		for _, val := range p.Z.Data {
			if val <= 0 || val >= 1 {
				t.Fatalf("%v: Z out of (0,1): %v", v, val)
			}
		}
	}
}

func TestSeparateVariantHasMoreParams(t *testing.T) {
	_, o, _ := case9Data(t, 4)
	cfgSep := Config{Variant: VariantSeparate, Seed: 1}
	cfgMTL := Config{Variant: VariantMTL, Hierarchy: true, Seed: 1}
	sep := nn.NumParams(New(o.Lay, cfgSep).Params())
	shared := nn.NumParams(New(o.Lay, cfgMTL).Params())
	if sep <= shared {
		t.Fatalf("separate %d params should exceed shared %d", sep, shared)
	}
}

// Gradient check through the full MTL DAG (hierarchy included): compare
// analytic parameter gradients against finite differences of the total
// supervised loss.
func TestModelGradCheck(t *testing.T) {
	_, o, _ := case9Data(t, 4)
	cfg := Config{Variant: VariantMTL, Hierarchy: true, Seed: 3,
		TrunkWidths: []int{10, 8}, HeadHidden: 6}
	m := New(o.Lay, cfg)
	rng := rand.New(rand.NewSource(2))
	batch := 3
	in := la.NewMatrix(batch, 2*o.Lay.NB)
	for i := range in.Data {
		in.Data[i] = rng.Float64()
	}
	tX := la.NewMatrix(batch, o.Lay.NX)
	tLam := la.NewMatrix(batch, o.Lay.NEq)
	tMu := la.NewMatrix(batch, o.Lay.NIq)
	tZ := la.NewMatrix(batch, o.Lay.NIq)
	for _, m2 := range []*la.Matrix{tX, tLam, tMu, tZ} {
		for i := range m2.Data {
			m2.Data[i] = rng.Float64()
		}
	}
	loss := func() float64 {
		p := m.Forward(in)
		l1, _ := (nn.MSE{}).Eval(p.X, tX)
		l2, _ := (nn.MSE{}).Eval(p.Lam, tLam)
		l3, _ := (nn.MSE{}).Eval(p.Mu, tMu)
		l4, _ := (nn.MSE{}).Eval(p.Z, tZ)
		return l1 + l2 + l3 + l4
	}
	nn.ZeroGrads(m.Params())
	p := m.Forward(in)
	_, gX := (nn.MSE{}).Eval(p.X, tX)
	_, gLam := (nn.MSE{}).Eval(p.Lam, tLam)
	_, gMu := (nn.MSE{}).Eval(p.Mu, tMu)
	_, gZ := (nn.MSE{}).Eval(p.Z, tZ)
	m.Backward(&Pred{X: gX, Lam: gLam, Mu: gMu, Z: gZ}, false)

	h := 1e-6
	for _, prm := range m.Params() {
		stride := len(prm.Val)/5 + 1
		for k := 0; k < len(prm.Val); k += stride {
			orig := prm.Val[k]
			prm.Val[k] = orig + h
			lp := loss()
			prm.Val[k] = orig - h
			lm := loss()
			prm.Val[k] = orig
			want := (lp - lm) / (2 * h)
			if math.Abs(prm.Grad[k]-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", prm.Name, k, prm.Grad[k], want)
			}
		}
	}
}

// With detach, no gradient reaches the trunk through the aux heads: a
// pure-aux loss must leave trunk parameter gradients at zero.
func TestDetachBlocksTrunkGradients(t *testing.T) {
	_, o, _ := case9Data(t, 4)
	cfg := Config{Variant: VariantMTL, Hierarchy: true, Seed: 4,
		TrunkWidths: []int{8, 6}, HeadHidden: 5}
	m := New(o.Lay, cfg)
	in := la.NewMatrix(2, 2*o.Lay.NB)
	rng := rand.New(rand.NewSource(5))
	for i := range in.Data {
		in.Data[i] = rng.Float64()
	}
	nn.ZeroGrads(m.Params())
	p := m.Forward(in)
	gLam := la.NewMatrix(2, o.Lay.NEq)
	gMu := la.NewMatrix(2, o.Lay.NIq)
	gZ := la.NewMatrix(2, o.Lay.NIq)
	for i := range gLam.Data {
		gLam.Data[i] = 1
	}
	for i := range gMu.Data {
		gMu.Data[i] = 1
	}
	for i := range gZ.Data {
		gZ.Data[i] = 1
	}
	m.Backward(&Pred{X: la.NewMatrix(2, o.Lay.NX), Lam: gLam, Mu: gMu, Z: gZ}, true)
	for _, prm := range m.trunks[0].Params() {
		for k, g := range prm.Grad {
			if g != 0 {
				t.Fatalf("trunk %s[%d] received gradient %v under detach", prm.Name, k, g)
			}
		}
	}
	_ = p
}

// Physics loss gradients vs finite differences.
func TestPhysicsGradients(t *testing.T) {
	c, o, set := case9Data(t, 3)
	phys := NewPhysics(o, dataset.InputVector(c))
	s := &set.Samples[0]
	x := s.X.Clone()
	// Perturb away from the optimum so residuals are nonzero.
	for i := range x {
		x[i] += 0.01 * math.Sin(float64(i))
	}
	in := s.Input

	checkGrad := func(name string, eval func(v la.Vector) float64, x0, g la.Vector, tol float64) {
		t.Helper()
		h := 1e-6
		for k := 0; k < len(x0); k += 3 {
			orig := x0[k]
			x0[k] = orig + h
			lp := eval(x0)
			x0[k] = orig - h
			lm := eval(x0)
			x0[k] = orig
			want := (lp - lm) / (2 * h)
			if math.Abs(g[k]-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s grad[%d]: analytic %v numeric %v", name, k, g[k], want)
			}
		}
	}

	_, gAC := phys.AC(x, in)
	checkGrad("AC", func(v la.Vector) float64 { l, _ := phys.AC(v, in); return l }, x, gAC, 1e-4)

	_, gIeq := phys.Ieq(x)
	checkGrad("Ieq", func(v la.Vector) float64 { l, _ := phys.Ieq(v); return l }, x, gIeq, 1e-4)

	_, gCost := phys.Cost(x, s.Cost)
	checkGrad("Cost", func(v la.Vector) float64 { l, _ := phys.Cost(v, s.Cost); return l }, x, gCost, 1e-4)

	lam := s.Lam.Clone().Scale(1.1)
	mu := s.Mu.Clone().Scale(1.1)
	z := s.Z.Clone().Scale(0.9)
	_, gx, glam, gmu, gz := phys.Lag(x, lam, mu, z, in)
	checkGrad("Lag/x", func(v la.Vector) float64 {
		l, _, _, _, _ := phys.Lag(v, lam, mu, z, in)
		return l
	}, x, gx, 1e-4)
	checkGrad("Lag/lam", func(v la.Vector) float64 {
		l, _, _, _, _ := phys.Lag(x, v, mu, z, in)
		return l
	}, lam, glam, 1e-4)
	checkGrad("Lag/mu", func(v la.Vector) float64 {
		l, _, _, _, _ := phys.Lag(x, lam, v, z, in)
		return l
	}, mu, gmu, 1e-4)
	checkGrad("Lag/z", func(v la.Vector) float64 {
		l, _, _, _, _ := phys.Lag(x, lam, mu, v, in)
		return l
	}, z, gz, 1e-4)
}

// f_AC evaluated at a sample's own ground-truth X must be near zero —
// the residual-shift construction is consistent with the solver.
func TestPhysicsACZeroAtGroundTruth(t *testing.T) {
	c, o, set := case9Data(t, 3)
	phys := NewPhysics(o, dataset.InputVector(c))
	for _, s := range set.Samples {
		l, _ := phys.AC(s.X, s.Input)
		if l > 1e-4 {
			t.Fatalf("AC loss at ground truth = %v", l)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	c, o, set := case9Data(t, 40)
	cfg := DefaultConfig()
	cfg.Seed = 11
	m := New(o.Lay, cfg)
	phys := NewPhysics(o, dataset.InputVector(c))
	hist, err := Train(m, phys, set, TrainConfig{Epochs: 30, BatchSize: 16, LR: 2e-3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, last := hist.Supervised[0], hist.Supervised[len(hist.Supervised)-1]
	if last >= first {
		t.Fatalf("supervised loss did not decrease: %v -> %v", first, last)
	}
	if last > first*0.6 {
		t.Errorf("weak training progress: %v -> %v", first, last)
	}
}

func TestTrainedModelWarmStartConverges(t *testing.T) {
	// End-to-end miniature of the paper: train on case9 samples, then
	// warm-start unseen instances and compare against cold-start.
	c, o, set := case9Data(t, 60)
	train, val := set.Split(0.8)
	cfg := DefaultConfig()
	cfg.Seed = 13
	m := New(o.Lay, cfg)
	phys := NewPhysics(o, dataset.InputVector(c))
	if _, err := Train(m, phys, train, TrainConfig{Epochs: 120, BatchSize: 16, LR: 2e-3, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	warmWins := 0
	for _, s := range val.Samples {
		cc := c.Clone()
		cc.ScaleLoads(s.Factors)
		ov := opf.Prepare(cc)
		start := m.Predict(s.Input)
		r, err := ov.Solve(start, opf.Options{})
		if err == nil && r.Converged && r.Iterations < s.Iterations {
			warmWins++
		}
	}
	// The model must accelerate a clear majority of unseen instances.
	if warmWins*2 < len(val.Samples) {
		t.Fatalf("warm start won only %d/%d validation instances", warmWins, len(val.Samples))
	}
}

func TestPredictPositivity(t *testing.T) {
	c, o, set := case9Data(t, 20)
	cfg := DefaultConfig()
	m := New(o.Lay, cfg)
	phys := NewPhysics(o, dataset.InputVector(c))
	if _, err := Train(m, phys, set, TrainConfig{Epochs: 5, BatchSize: 8, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	st := m.Predict(set.Samples[0].Input)
	for i, v := range st.Mu {
		if v <= 0 {
			t.Fatalf("Mu[%d] = %v not positive", i, v)
		}
	}
	for i, v := range st.Z {
		if v <= 0 {
			t.Fatalf("Z[%d] = %v not positive", i, v)
		}
	}
	if len(st.X) != o.Lay.NX || len(st.Lam) != o.Lay.NEq {
		t.Fatal("prediction shapes wrong")
	}
}

func TestSaveLoadModel(t *testing.T) {
	_, o, set := case9Data(t, 10)
	cfg := Config{Variant: VariantMTL, Hierarchy: true, Seed: 21}
	m := New(o.Lay, cfg)
	if _, err := Train(m, nil, set, TrainConfig{Epochs: 2, BatchSize: 8}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(o.Lay, cfg)
	m2.Norm = m.Norm
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	a := m.Predict(set.Samples[0].Input)
	b := m2.Predict(set.Samples[0].Input)
	if a.X.Clone().Sub(b.X).NormInf() > 1e-12 {
		t.Fatal("loaded model predicts differently")
	}
}

func TestTrainErrorsWithoutPhysicsProvider(t *testing.T) {
	_, o, set := case9Data(t, 6)
	m := New(o.Lay, DefaultConfig())
	if _, err := Train(m, nil, set, TrainConfig{Epochs: 1}); err == nil {
		t.Fatal("expected error when physics provider missing")
	}
}
