package scopf

import (
	"testing"

	"repro/internal/grid"
)

// Threshold calibration on a separable synthetic log: every strictly
// losing sample must be rejected while winners stay accepted. An
// iteration tie is neither — it must not drag the threshold up and
// force same-featured winners cold.
func TestPolicyThresholdCalibration(t *testing.T) {
	var samples []PolicySample
	for i := 0; i < 20; i++ {
		samples = append(samples,
			PolicySample{
				Feat:          PolicyFeatures{Buses: 30, LoadDev: 0.05},
				WarmConverged: true, WarmIters: 10, ColdIters: 20,
			},
			PolicySample{ // tie: same features as the winner above
				Feat:          PolicyFeatures{Buses: 30, LoadDev: 0.05},
				WarmConverged: true, WarmIters: 20, ColdIters: 20,
			},
			PolicySample{
				Feat:          PolicyFeatures{Buses: 30, LoadDev: 0.9, DroppedIq: 2},
				WarmConverged: true, WarmIters: 25, ColdIters: 20,
			},
			PolicySample{ // non-convergence is a loss regardless of iterations
				Feat:          PolicyFeatures{Buses: 30, LoadDev: 0.8, Pair: 1},
				WarmConverged: false, WarmIters: 0, ColdIters: 20,
			})
	}
	pol := TrainPolicy(samples)
	if pol == nil {
		t.Fatal("nil policy from a non-empty log")
	}
	accepted := 0
	for _, s := range samples {
		switch {
		case s.WarmHurts() && pol.UseWarm(s.Feat):
			t.Fatalf("strictly losing sample accepted: %+v score %.4f thr %.4f", s.Feat, pol.Score(s.Feat), pol.Threshold)
		case s.WarmWins() && pol.UseWarm(s.Feat):
			accepted++
		}
	}
	if accepted == 0 {
		t.Error("separable log trained a policy that accepts no winner")
	}
	if TrainPolicy(nil) != nil {
		t.Error("empty log did not return a nil policy")
	}
}

// Regression guard for the case30 counter-regime (BENCH_paper.json
// records warm screening there at 0.71× — slower than cold): a policy
// trained on recorded case30 screening logs must never select a mode
// that was measured slower than the cold baseline, in-sample and
// end-to-end through the engine.
func TestPolicyNeverSlowerThanCold(t *testing.T) {
	c := grid.Case30()
	m := trainModel(t, c, 30)
	draws := loadDraws(c.NB(), 4, 31)
	scenarios := BuildScenarios(draws, Contingencies(c)[:3])
	scenarios = append(scenarios, BuildGenScenarios(draws[:2], GenContingencies(c)[:2])...)

	e := &Engine{Base: c, Model: m, Workers: 8}
	samples := CollectPolicySamples(e, scenarios)
	if len(samples) == 0 {
		t.Fatal("screening log yielded no policy samples")
	}
	pol := TrainPolicy(samples)
	losses := 0
	for _, s := range samples {
		if !s.WarmHurts() {
			continue
		}
		losses++
		if pol.UseWarm(s.Feat) {
			t.Fatalf("policy accepts a warm start measured slower than cold: %+v (warm %d vs cold %d, converged %v)",
				s.Feat, s.WarmIters, s.ColdIters, s.WarmConverged)
		}
	}

	// End-to-end: on the recorded scenarios the policy-driven screen
	// must never spend more solver iterations than the cold baseline on
	// any scenario — rejected warm starts collapse to the identical
	// cold solve, accepted ones were measured cheaper.
	polRep := (&Engine{Base: c, Model: m, Workers: 8, Policy: pol}).Run(scenarios)
	coldRep := (&Engine{Base: c, Workers: 8}).Run(scenarios)
	totPol, totCold := 0, 0
	for i := range polRep.Outcomes {
		p, cd := polRep.Outcomes[i], coldRep.Outcomes[i]
		if p.Err != nil || cd.Err != nil || !cd.Feasible {
			continue
		}
		if p.Feasible && p.Iterations > cd.Iterations {
			t.Errorf("scenario %d: policy mode took %d iterations, cold %d", i, p.Iterations, cd.Iterations)
		}
		totPol += p.Iterations
		totCold += cd.Iterations
	}
	if totPol > totCold {
		t.Errorf("policy screen spent %d total iterations, cold %d", totPol, totCold)
	}
	// Where the log recorded losses, the dispatch must actually go cold.
	if sum := Summarize(polRep.Outcomes); losses > 0 && sum.PolicyCold == 0 {
		t.Errorf("log recorded %d warm losses but the policy never chose cold", losses)
	}
}
