package scopf

import (
	"math"

	"repro/internal/grid"
	"repro/internal/opf"
)

// The warm/cold dispatch policy. Warm-starting is not uniformly a win:
// the embedded benchmarks show a counter-regime (case30 in
// BENCH_paper.json) where the predicted start costs more solver effort
// than a cold start. The policy replaces the engine's implicit
// "always take an available warm start" rule with a learned decision:
// a cheap per-scenario feature vector feeds a logistic score, and a
// conservatively calibrated threshold decides warm vs cold. Calibration
// picks the smallest threshold that rejects every training sample where
// warm was slower than cold, so on its own training distribution the
// policy never selects a mode worse than the cold baseline
// (TestPolicyNeverSlowerThanCold pins this on recorded case30 logs).

// PolicyFeatures is the cheap per-scenario feature vector the dispatch
// policy scores — everything is known before any solve.
type PolicyFeatures struct {
	Buses     float64 // system size (bus count)
	LoadDev   float64 // ‖factors − 1‖₂: distance of the load draw from nominal
	DroppedIq float64 // inequality rows the outage removed (binding-set distance proxy)
	Pair      float64 // 1 for an N-2 branch pair
	Gen       float64 // 1 when a generator is dropped
}

// featuresOf assembles the feature vector of one scenario on its class.
func featuresOf(c *grid.Case, cl *class, sc Scenario) PolicyFeatures {
	f := PolicyFeatures{
		Buses:     float64(c.NB()),
		DroppedIq: float64(cl.droppedIq),
	}
	dev := 0.0
	for _, x := range sc.Factors {
		d := x - 1
		dev += d * d
	}
	f.LoadDev = math.Sqrt(dev)
	switch cl.kind {
	case "pair":
		f.Pair = 1
	case "gen":
		f.Gen = 1
	case "branch+gen":
		f.Gen = 1
	}
	return f
}

// vector is the model input: bias plus scaled features. Scales keep
// every coordinate O(1) on the embedded systems (≤300 buses) so the
// fixed-step training below is well conditioned.
func (f PolicyFeatures) vector() [6]float64 {
	return [6]float64{1, f.Buses / 100, f.LoadDev, f.DroppedIq / 10, f.Pair, f.Gen}
}

// Policy is a trained warm/cold dispatch rule: logistic score over
// PolicyFeatures with a calibrated acceptance threshold. The fields are
// plain data so a trained policy serializes as JSON.
type Policy struct {
	Weights   [6]float64 `json:"weights"`   // over PolicyFeatures.vector()
	Threshold float64    `json:"threshold"` // accept warm when Score >= Threshold
}

// Score is the logistic probability that the warm start beats cold.
func (p *Policy) Score(f PolicyFeatures) float64 {
	v := f.vector()
	z := 0.0
	for i := range v {
		z += p.Weights[i] * v[i]
	}
	return 1 / (1 + math.Exp(-z))
}

// UseWarm is the dispatch decision: take the warm start only when the
// score clears the calibrated threshold.
func (p *Policy) UseWarm(f PolicyFeatures) bool {
	return p.Score(f) >= p.Threshold
}

// PolicySample is one training row from a screening log: the feature
// vector of a scenario plus the measured solver effort of its warm and
// cold paths. Iteration counts are the cost label — they are
// deterministic where wall-clock is not, and interior-point iterations
// dominate screening time.
type PolicySample struct {
	Feat          PolicyFeatures
	WarmConverged bool // the warm start converged without a cold restart
	WarmIters     int  // iterations of the warm solve (when converged)
	ColdIters     int  // iterations of the cold solve
}

// WarmWins reports whether the warm path was strictly cheaper: it must
// have converged and used fewer iterations than cold.
func (s PolicySample) WarmWins() bool {
	return s.WarmConverged && s.WarmIters < s.ColdIters
}

// WarmHurts reports whether the warm path was strictly more expensive
// than cold: it failed to converge (paying the attempt on top of the
// cold restart) or spent more iterations. Ties are neither wins nor
// hurts — dispatching them warm costs only the prediction, so threshold
// calibration does not force them cold.
func (s PolicySample) WarmHurts() bool {
	return !s.WarmConverged || s.WarmIters > s.ColdIters
}

// CollectPolicySamples builds a training log by screening the scenarios
// twice on the engine's topology classes — once warm, once cold — and
// pairing the outcomes. Scenarios with no usable warm start (cold
// classes, islanding, errors) carry no decision and are skipped.
func CollectPolicySamples(e *Engine, scenarios []Scenario) []PolicySample {
	base := e.Prepared
	if base == nil {
		base = opf.Prepare(e.Base)
	}
	warmEng := &Engine{Base: e.Base, Prepared: base, Model: e.Model,
		Predictors: e.Predictors, Workers: e.Workers, NoProjection: e.NoProjection}
	warm := warmEng.Run(scenarios)
	coldEng := &Engine{Base: e.Base, Prepared: base, Workers: e.Workers}
	cold := coldEng.Run(scenarios)

	modelLay := warmEng.modelLayout(base)
	classes := map[classKey]*class{}
	var samples []PolicySample
	for i, sc := range scenarios {
		key := sc.key()
		cl, ok := classes[key]
		if !ok {
			cl = warmEng.buildClass(base, modelLay, key)
			classes[key] = cl
		}
		if cl.err != nil || cl.islanded || cl.mode == warmCold {
			continue
		}
		w, c := warm.Outcomes[i], cold.Outcomes[i]
		if w.Err != nil || c.Err != nil || !c.Feasible {
			continue
		}
		samples = append(samples, PolicySample{
			Feat:          featuresOf(base.Case, cl, sc),
			WarmConverged: w.WarmUsed,
			WarmIters:     w.Iterations,
			ColdIters:     c.Iterations,
		})
	}
	return samples
}

// TrainPolicy fits the logistic weights by full-batch gradient descent
// (deterministic: zero init, fixed step and epoch count) and then
// calibrates the threshold conservatively: the smallest value that
// rejects every sample where warm was measured strictly slower than
// cold (WarmHurts). On the training distribution the resulting policy
// never picks a warm start that was measured slower than cold —
// misclassified winners merely fall back to the cold baseline, and
// iteration ties stay eligible for warm dispatch. Returns nil when the
// log has no samples.
func TrainPolicy(samples []PolicySample) *Policy {
	if len(samples) == 0 {
		return nil
	}
	p := &Policy{}
	const (
		epochs = 400
		step   = 0.5
	)
	n := float64(len(samples))
	for epoch := 0; epoch < epochs; epoch++ {
		var grad [6]float64
		for _, s := range samples {
			v := s.Feat.vector()
			y := 0.0
			if s.WarmWins() {
				y = 1
			}
			err := p.Score(s.Feat) - y
			for i := range v {
				grad[i] += err * v[i]
			}
		}
		for i := range p.Weights {
			p.Weights[i] -= step * grad[i] / n
		}
	}
	// Conservative calibration: clear every strictly-losing sample's score.
	const margin = 1e-9
	thr := 0.0
	for _, s := range samples {
		if s.WarmHurts() {
			if sc := p.Score(s.Feat) + margin; sc > thr {
				thr = sc
			}
		}
	}
	p.Threshold = thr
	return p
}

// modelLayout resolves the layout warm-start predictions arrive in —
// the replica contract (base layout) or the model's own.
func (e *Engine) modelLayout(base *opf.OPF) *opf.Layout {
	switch {
	case len(e.Predictors) > 0:
		lay := base.Lay
		return &lay
	case e.Model != nil:
		lay := e.Model.Lay
		return &lay
	}
	return nil
}
