package scopf

import (
	"sort"

	"repro/internal/grid"
	"repro/internal/la"
)

// Hierarchical N-2 screening. Exhaustively screening every branch pair
// is quadratic in system size — C(L,2) AC-OPF solves against L for the
// N-1 sweep. The hierarchy exploits that severe pairs are almost always
// composed of individually severe single outages: rank the N-1 outcomes
// by severity (solver effort plus binding-set size), then screen only
// the pairs drawn from the top-K most severe branches. AllPairs keeps
// the exact exhaustive enumeration as the pinned reference the pruned
// screen is tested against (TestHierarchicalN2Sound).

// severityInfeasible pins non-converged and errored outcomes above
// every converged one in the severity order.
const severityInfeasible = 1e9

// Severity scores one screening outcome for hierarchical ranking:
// solver effort (iterations) plus binding-set size for a secure
// dispatch, with infeasible or errored outcomes ranked above every
// converged one and islanding outcomes above those (any superset of an
// islanding outage islands too).
func Severity(o Outcome) float64 {
	if o.Islanded {
		return 2 * severityInfeasible
	}
	if o.Err != nil || !o.Feasible {
		return severityInfeasible
	}
	return float64(o.Iterations) + float64(o.Binding)
}

// RankBySeverity orders contingency branch indices by decreasing
// severity of their N-1 outcomes; outcomes[i] must be the screening
// outcome of contingencies[i] (same load draw). Ties break on branch
// index, so the ranking is deterministic.
func RankBySeverity(contingencies []int, outcomes []Outcome) []int {
	if len(contingencies) != len(outcomes) {
		panic("scopf: RankBySeverity contingency/outcome length mismatch")
	}
	ranked := append([]int(nil), contingencies...)
	sev := make(map[int]float64, len(contingencies))
	for i, l := range contingencies {
		sev[l] = Severity(outcomes[i])
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := sev[ranked[i]], sev[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// TopKPairs crosses the K most severe ranked branches into candidate
// N-2 pairs: the upper triangle of the K×K block in canonical
// (low, high) branch order. k larger than the ranking uses all of it.
func TopKPairs(ranked []int, k int) [][2]int {
	if k > len(ranked) {
		k = len(ranked)
	}
	var out [][2]int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			a, b := ranked[i], ranked[j]
			if b < a {
				a, b = b, a
			}
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// AllPairs enumerates every branch pair of the contingency list in
// canonical order — the exact exhaustive reference for the pruned
// hierarchical screen.
func AllPairs(contingencies []int) [][2]int {
	var out [][2]int
	for i := 0; i < len(contingencies); i++ {
		for j := i + 1; j < len(contingencies); j++ {
			a, b := contingencies[i], contingencies[j]
			if b < a {
				a, b = b, a
			}
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// N2Result is the output of one hierarchical N-2 screen.
type N2Result struct {
	N1      *Report  // the N-1 sweep the ranking was derived from
	Ranked  []int    // contingency branches by decreasing severity
	Pairs   [][2]int // the candidate pairs actually screened
	Skipped int      // pairs pruned away relative to the exhaustive set
	Report  *Report  // outcomes of the screened pairs, Pairs order
}

// ScreenPairsTopK runs the hierarchy end to end for one load draw:
// screen the N-1 contingency set, rank it by severity, cross the top-K
// branches into candidate pairs and screen those. Islanding severity is
// not predictable from single-outage severity (two individually mild
// branches can island jointly), so the pruned remainder gets a cheap
// connectivity sweep — one BFS per pair, no solver — and every
// islanding pair is kept as a candidate regardless of rank. k <= 0
// disables pruning and screens the exhaustive pair set (the reference
// mode the pruned screen is pinned against).
func (e *Engine) ScreenPairsTopK(factors la.Vector, k int) *N2Result {
	c := e.baseCase()
	cont := Contingencies(c)
	n1 := e.Run(BuildScenarios([]la.Vector{factors}, cont))
	// Drop the intact scenario BuildScenarios prepends: outcome i+1 is
	// contingency i.
	ranked := RankBySeverity(cont, n1.Outcomes[1:])
	exhaustive := AllPairs(cont)
	var pairs [][2]int
	if k <= 0 {
		pairs = exhaustive
	} else {
		pairs = TopKPairs(ranked, k)
		seen := make(map[[2]int]bool, len(pairs))
		for _, p := range pairs {
			seen[p] = true
		}
		for _, p := range exhaustive {
			if !seen[p] && !grid.ConnectedWithout(c, []int{p[0], p[1]}) {
				pairs = append(pairs, p)
				seen[p] = true
			}
		}
	}
	res := &N2Result{
		N1: n1, Ranked: ranked, Pairs: pairs,
		Skipped: len(exhaustive) - len(pairs),
	}
	res.Report = e.Run(BuildPairScenarios([]la.Vector{factors}, pairs))
	return res
}

// baseCase resolves the case an engine screens, whether it was handed
// the raw case or a prepared instance.
func (e *Engine) baseCase() *grid.Case {
	if e.Base != nil {
		return e.Base
	}
	return e.Prepared.Case
}
