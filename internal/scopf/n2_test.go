package scopf

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/la"
)

func uniformDraw(nb int, load float64) la.Vector {
	f := make(la.Vector, nb)
	for i := range f {
		f[i] = load
	}
	return f
}

// Ranking is deterministic, ordered by decreasing severity with branch
// index as the tiebreak, and pins infeasible above converged outcomes.
func TestRankBySeverity(t *testing.T) {
	cont := []int{3, 7, 11, 2}
	outs := []Outcome{
		{Feasible: true, Iterations: 20, Binding: 4},
		{Feasible: false}, // non-converged: above every converged outcome
		{Feasible: true, Iterations: 22, Binding: 2},
		{Feasible: true, Iterations: 20, Binding: 4}, // ties branch 3 → index order
	}
	got := RankBySeverity(cont, outs)
	want := []int{7, 2, 3, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranked %v want %v", got, want)
		}
	}
	if s := Severity(Outcome{Islanded: true}); s <= Severity(outs[1]) {
		t.Fatalf("islanding severity %v not above infeasible", s)
	}
	if s := Severity(Outcome{Err: errDummy}); s != severityInfeasible {
		t.Fatalf("errored severity %v", s)
	}
}

var errDummy = &dummyErr{}

type dummyErr struct{}

func (*dummyErr) Error() string { return "dummy" }

func TestTopKPairsAllPairs(t *testing.T) {
	ranked := []int{9, 2, 5, 1}
	pairs := TopKPairs(ranked, 3)
	want := [][2]int{{2, 9}, {5, 9}, {2, 5}}
	if len(pairs) != len(want) {
		t.Fatalf("%d pairs want %d", len(pairs), len(want))
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs %v want %v", pairs, want)
		}
	}
	if got := TopKPairs(ranked, 99); len(got) != 6 {
		t.Fatalf("oversized k produced %d pairs want 6", len(got))
	}
	if got := AllPairs([]int{4, 1, 3}); len(got) != 3 || got[0] != [2]int{1, 4} {
		t.Fatalf("AllPairs %v", got)
	}
}

// Hierarchical N-2 soundness on case14: the pruned screen must retain
// every severe pair of the exact exhaustive reference — islanding pairs
// through the connectivity sweep (their severity is invisible to
// single-outage ranking) and solver-severe pairs through the top-K
// block — and the outcomes of retained pairs must be bit-identical to
// the exhaustive screen's.
func TestHierarchicalN2Sound(t *testing.T) {
	c := grid.Case14()
	f := uniformDraw(c.NB(), 1.1)
	e := &Engine{Base: c, Workers: 8}

	exhaustive := e.ScreenPairsTopK(f, 0)
	if exhaustive.Skipped != 0 {
		t.Fatalf("exhaustive mode skipped %d pairs", exhaustive.Skipped)
	}
	exOut := make(map[[2]int]Outcome, len(exhaustive.Pairs))
	for i, p := range exhaustive.Pairs {
		exOut[p] = exhaustive.Report.Outcomes[i]
	}

	const k = 17 // retains every solver-severe pair of this draw
	pruned := e.ScreenPairsTopK(f, k)
	if pruned.Skipped <= 0 {
		t.Fatal("pruning skipped nothing")
	}
	kept := make(map[[2]int]Outcome, len(pruned.Pairs))
	for i, p := range pruned.Pairs {
		kept[p] = pruned.Report.Outcomes[i]
	}

	severe := 0
	for p, o := range exOut {
		if Severity(o) < severityInfeasible {
			continue
		}
		severe++
		po, ok := kept[p]
		if !ok {
			t.Fatalf("severe pair %v (sev %.0f) pruned away", p, Severity(o))
		}
		if po.Islanded != o.Islanded || po.Feasible != o.Feasible ||
			po.Cost != o.Cost || po.Iterations != o.Iterations || po.Binding != o.Binding {
			t.Fatalf("pair %v outcome differs between pruned and exhaustive:\n %+v\n %+v", p, po, o)
		}
	}
	if severe == 0 {
		t.Fatal("draw produced no severe pairs; the retention check is vacuous")
	}
	// Every retained pair, severe or not, matches the reference.
	for p, po := range kept {
		o, ok := exOut[p]
		if !ok {
			t.Fatalf("pruned screen invented pair %v", p)
		}
		if po.Cost != o.Cost || po.Iterations != o.Iterations {
			t.Fatalf("pair %v not bit-identical to exhaustive", p)
		}
	}
}

// The hierarchical screen must be bit-identical across worker counts,
// end to end: same ranking, same candidate pairs, same outcomes.
func TestHierarchicalN2SeqParallelIdentical(t *testing.T) {
	c := grid.Case14()
	f := uniformDraw(c.NB(), 1.05)
	seq := (&Engine{Base: c, Workers: 1}).ScreenPairsTopK(f, 8)
	par := (&Engine{Base: c, Workers: 8}).ScreenPairsTopK(f, 8)
	if len(seq.Ranked) != len(par.Ranked) {
		t.Fatalf("ranking lengths differ: %d vs %d", len(seq.Ranked), len(par.Ranked))
	}
	for i := range seq.Ranked {
		if seq.Ranked[i] != par.Ranked[i] {
			t.Fatalf("rankings differ at %d: %v vs %v", i, seq.Ranked, par.Ranked)
		}
	}
	if len(seq.Pairs) != len(par.Pairs) || seq.Skipped != par.Skipped {
		t.Fatalf("candidate sets differ: %d/%d vs %d/%d", len(seq.Pairs), seq.Skipped, len(par.Pairs), par.Skipped)
	}
	for i := range seq.Pairs {
		if seq.Pairs[i] != par.Pairs[i] {
			t.Fatalf("pair order differs at %d", i)
		}
	}
	sameOutcomes(t, par.Report.Outcomes, seq.Report.Outcomes)
	sameOutcomes(t, par.N1.Outcomes, seq.N1.Outcomes)
}
