package scopf

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/la"
)

// The engine's generator-outage path must pin bit-identical to the
// naive per-scenario rebuild, cold and warm (the naive path cold-solves
// layout-changing gen drops; NoProjection makes the engine match).
func TestEngineMatchesNaiveGenOutages(t *testing.T) {
	c := grid.Case9()
	draws := loadDraws(c.NB(), 2, 13)
	gens := GenContingencies(c)
	if len(gens) != len(c.Gens) {
		t.Fatalf("%d gen contingencies want %d", len(gens), len(c.Gens))
	}
	scenarios := BuildScenarios(draws, nil)
	scenarios = append(scenarios, BuildGenScenarios(draws, gens)...)

	e := &Engine{Base: c, Workers: 4}
	sameOutcomes(t, e.Run(scenarios).Outcomes, ScreenNaive(c, nil, scenarios, 4))

	m := trainModel(t, c, 17)
	ew := &Engine{Base: c, Model: m, Workers: 4, NoProjection: true}
	sameOutcomes(t, ew.Run(scenarios).Outcomes, ScreenNaive(c, m, scenarios, 4))
}

// N-2 pair scenarios — including pairs that island — must pin to the
// naive path, and class accounting must report the outage combination.
func TestEngineMatchesNaivePairs(t *testing.T) {
	c := grid.Case9()
	draws := loadDraws(c.NB(), 2, 19)
	pairs := [][2]int{{1, 4}, {2, 8}, {1, 2} /* islands */, {4, 1} /* dup, swapped */}
	scenarios := BuildPairScenarios(draws, pairs)
	// A combined branch+generator scenario exercises the chained
	// derivation (branch rebind, then gen rebind).
	combined := GenScenario(draws[0], 1)
	combined.OutBranch = 4
	scenarios = append(scenarios, combined)

	e := &Engine{Base: c, Workers: 4}
	rep := e.Run(scenarios)
	sameOutcomes(t, rep.Outcomes, ScreenNaive(c, nil, scenarios, 4))

	kinds := map[string]int{}
	for _, cl := range rep.Classes {
		kinds[cl.Kind]++
	}
	// {1,4} and {4,1} canonicalize to one class: 3 pair classes total.
	if kinds["pair"] != 3 || kinds["branch+gen"] != 1 {
		t.Fatalf("class kinds %+v", kinds)
	}
	for _, cl := range rep.Classes {
		if cl.Kind == "pair" && cl.OutBranch == 1 && cl.OutBranch2 == 2 && !cl.Islanded {
			t.Fatalf("islanding pair class not flagged: %+v", cl)
		}
	}
}

// Islanding classification, table-driven: bridge outages and islanding
// pairs on case9 and case30 must come back Islanded with zero solver
// effort, from both the engine and the naive reference, and the
// package's connectivity shim must agree with a from-scratch BFS on a
// rebuilt case.
func TestIslandingClassification(t *testing.T) {
	tests := []struct {
		name    string
		c       *grid.Case
		bridges []int
		pairs   [][2]int
	}{
		// case9: three radial generator legs are the bridges.
		{"case9", grid.Case9(), []int{0, 3, 6}, [][2]int{{1, 2}, {1, 4}}},
		// case30: radial spurs 9-11, 12-13 and 25-26 are the bridges.
		{"case30", grid.Case30(), []int{12, 15, 33}, [][2]int{{0, 1}, {4, 7}}},
	}
	for _, tc := range tests {
		var scenarios []Scenario
		for _, b := range tc.bridges {
			scenarios = append(scenarios, Scenario{Factors: ones(tc.c.NB()), OutBranch: b})
		}
		scenarios = append(scenarios, BuildPairScenarios([]la.Vector{ones(tc.c.NB())}, tc.pairs)...)
		for _, outs := range [][]Outcome{
			(&Engine{Base: tc.c, Workers: 2}).Run(scenarios).Outcomes,
			ScreenNaive(tc.c, nil, scenarios, 2),
		} {
			for i, o := range outs {
				if !o.Islanded || o.Feasible || o.Err != nil {
					t.Fatalf("%s scenario %d not classified islanded: %+v", tc.name, i, o)
				}
				if o.Iterations != 0 || o.WarmUsed || o.Binding != 0 {
					t.Fatalf("%s scenario %d: solver effort spent on an islanding outage: %+v", tc.name, i, o)
				}
			}
			sum := Summarize(outs)
			if sum.Islanded != len(outs) || sum.Feasible != 0 {
				t.Fatalf("%s summary %+v", tc.name, sum)
			}
		}
		// The connectivity shim agrees with the from-scratch BFS.
		for _, b := range tc.bridges {
			if connectedWithout(tc.c, b) {
				t.Fatalf("%s: bridge %d reported connected", tc.name, b)
			}
			cc := tc.c.Clone()
			cc.Branches[b].Status = false
			if err := cc.Normalize(); err != nil {
				t.Fatal(err)
			}
			if grid.Connected(cc) {
				t.Fatalf("%s: rebuilt BFS disagrees on bridge %d", tc.name, b)
			}
		}
	}
}

// GenContingencies excludes nothing on multi-unit systems and
// everything on a single-unit one.
func TestGenContingencies(t *testing.T) {
	c := grid.Case30()
	if got := GenContingencies(c); len(got) != 6 {
		t.Fatalf("case30: %d gen contingencies want 6", len(got))
	}
	cc := grid.Case9().Clone()
	cc.Gens[1].Status = false
	cc.Gens[2].Status = false
	if err := cc.Normalize(); err != nil {
		t.Fatal(err)
	}
	if got := GenContingencies(cc); len(got) != 0 {
		t.Fatalf("single-unit system offered gen contingencies %v", got)
	}
}

// Gen-outage scenario errors: out-of-range and already-out generators
// surface as Outcome.Err from both paths.
func TestGenOutageErrors(t *testing.T) {
	c := grid.Case9()
	cc := c.Clone()
	cc.Gens[2].Status = false
	if err := cc.Normalize(); err != nil {
		t.Fatal(err)
	}
	scenarios := []Scenario{
		GenScenario(ones(c.NB()), len(c.Gens)+1),
		GenScenario(ones(c.NB()), 2), // out of service on cc
	}
	for _, outs := range [][]Outcome{
		(&Engine{Base: cc, Workers: 1}).Run(scenarios).Outcomes,
		ScreenNaive(cc, nil, scenarios, 1),
	} {
		for i, o := range outs {
			if o.Err == nil || o.Feasible || o.Islanded {
				t.Fatalf("invalid gen outage %d not an error: %+v", i, o)
			}
		}
	}
}
