// Package scopf implements the security-constrained AC-OPF scenario
// screening that motivates the paper's scaling study (Section VIII-E):
// grid operators evaluate large trees of uncertain scenarios — load
// draws combined with N-1 contingencies — each of which is an
// independent AC-OPF instance. The scenarios are embarrassingly
// parallel, and each one can be warm-started by the Smart-PGSim model
// trained on the intact system.
package scopf

import (
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/opf"
)

// Scenario is one node of the uncertainty tree: a load draw plus an
// optional branch outage (-1 = no contingency).
type Scenario struct {
	Factors   la.Vector // per-bus load multipliers
	OutBranch int       // index into Case.Branches, or -1
}

// Outcome is the result of screening one scenario.
type Outcome struct {
	Scenario   Scenario
	Feasible   bool    // the scenario admits a secure dispatch
	Cost       float64 // $/hr when feasible
	Iterations int
	WarmUsed   bool // the model warm start converged (no restart)
}

// Screener fans scenarios out across workers.
type Screener struct {
	Base    *grid.Case
	Model   *mtl.Model // may be nil: cold-start screening
	Workers int        // default GOMAXPROCS
}

// Contingencies enumerates the single-branch outages that leave the
// network connected (the N-1 set). Bridges — branches whose loss splits
// the grid — are excluded, matching operational practice of treating
// them separately.
func Contingencies(c *grid.Case) []int {
	var out []int
	for l, br := range c.Branches {
		if !br.Status {
			continue
		}
		if connectedWithout(c, l) {
			out = append(out, l)
		}
	}
	return out
}

func connectedWithout(c *grid.Case, skip int) bool {
	nb := c.NB()
	adj := make([][]int, nb)
	for l, br := range c.Branches {
		if !br.Status || l == skip {
			continue
		}
		f := c.BusIndex(br.From)
		t := c.BusIndex(br.To)
		adj[f] = append(adj[f], t)
		adj[t] = append(adj[t], f)
	}
	seen := make([]bool, nb)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == nb
}

// BuildScenarios crosses load draws with contingencies (plus the intact
// topology) into a scenario list.
func BuildScenarios(draws []la.Vector, contingencies []int) []Scenario {
	out := make([]Scenario, 0, len(draws)*(len(contingencies)+1))
	for _, f := range draws {
		out = append(out, Scenario{Factors: f, OutBranch: -1})
		for _, l := range contingencies {
			out = append(out, Scenario{Factors: f, OutBranch: l})
		}
	}
	return out
}

// Screen solves every scenario, warm-starting from the model when one is
// set, and returns outcomes in scenario order.
func (s *Screener) Screen(scenarios []Scenario) []Outcome {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]Outcome, len(scenarios))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One model replica per worker: forward caches are not
			// concurrency-safe.
			var m *mtl.Model
			if s.Model != nil {
				m = mtl.New(s.Model.Lay, s.Model.Cfg)
				m.Norm = s.Model.Norm
				cloneInto(s.Model, m)
			}
			for idx := range jobs {
				out[idx] = s.screenOne(m, scenarios[idx])
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

func (s *Screener) screenOne(m *mtl.Model, sc Scenario) Outcome {
	c := s.Base.Clone()
	c.ScaleLoads(sc.Factors)
	if sc.OutBranch >= 0 {
		c.Branches[sc.OutBranch].Status = false
	}
	if err := c.Normalize(); err != nil {
		return Outcome{Scenario: sc}
	}
	o := opf.Prepare(c)
	res := Outcome{Scenario: sc}

	// Warm start only when the contingency preserves the constraint
	// layout (an outage of a rated branch changes the µ/Z dimensions).
	if m != nil && o.Lay.NIq == m.Lay.NIq && o.Lay.NEq == m.Lay.NEq {
		start := m.Predict(dataset.InputVector(c))
		if r, err := o.Solve(start, opf.Options{}); err == nil && r.Converged {
			res.Feasible = true
			res.Cost = r.Cost
			res.Iterations = r.Iterations
			res.WarmUsed = true
			return res
		}
	}
	if r, err := o.Solve(nil, opf.Options{}); err == nil && r.Converged {
		res.Feasible = true
		res.Cost = r.Cost
		res.Iterations = r.Iterations
	}
	return res
}

// cloneInto copies weights between structurally identical models.
func cloneInto(src, dst *mtl.Model) {
	sp := src.Params()
	dp := dst.Params()
	for i := range sp {
		copy(dp[i].Val, sp[i].Val)
	}
}

// Summary aggregates screening outcomes.
type Summary struct {
	Total, Feasible, WarmConverged int
	MeanIterations                 float64
	WorstCost                      float64 // highest secure-dispatch cost
}

// Summarize reduces outcomes to the operator-facing numbers.
func Summarize(outs []Outcome) Summary {
	var s Summary
	s.Total = len(outs)
	var iters float64
	for _, o := range outs {
		if o.Feasible {
			s.Feasible++
			iters += float64(o.Iterations)
			if o.Cost > s.WorstCost {
				s.WorstCost = o.Cost
			}
		}
		if o.WarmUsed {
			s.WarmConverged++
		}
	}
	if s.Feasible > 0 {
		s.MeanIterations = iters / float64(s.Feasible)
	}
	return s
}
