// Package scopf implements the security-constrained AC-OPF scenario
// screening that motivates the paper's scaling study (Section VIII-E):
// grid operators evaluate large trees of uncertain scenarios — load
// draws combined with N-1 contingencies — each of which is an
// independent AC-OPF instance. The scenarios are embarrassingly
// parallel, and each one can be warm-started by the Smart-PGSim model
// trained on the intact system.
//
// Screening is topology-aware: Engine groups scenarios by topology
// class (which branch is out), derives one prepared OPF per class from
// the intact system's prepared structure (grid.YMatrices.DropBranch +
// opf.RebindOutage — bit-identical to a per-scenario rebuild) and fans
// the scenarios out on the internal/batch worker pool, so every
// scenario pays only the clone+scale+rebind derivation cost and every
// class shares one KKT ordering analysis. Outages of rated branches
// shrink the inequality layout; the engine projects the intact-system
// warm-start prediction onto the contingency layout (opf.ProjectStart)
// instead of falling back to a cold solve. ScreenNaive keeps the
// per-scenario-Prepare reference path; the engine is pinned
// bit-identical to it by the tests in this package and benchmarked
// against it by BenchmarkScreen (BENCH_scopf.json).
package scopf

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/opf"
)

// Scenario is one node of the uncertainty tree: a load draw plus an
// optional topology perturbation — a branch outage, an N-2 branch pair,
// a generator outage, or a branch+generator combination.
//
// OutBranch keeps its historic encoding (-1 = no contingency). The two
// newer axes are stored 1-based so the struct's zero value still means
// "intact topology" and existing Scenario literals keep their meaning:
// OutBranch2 and OutGen hold 1+index, 0 means none. Use the
// PairScenario/GenScenario constructors and the SecondBranch/OutagedGen
// accessors instead of setting the raw fields.
type Scenario struct {
	Factors   la.Vector // per-bus load multipliers
	OutBranch int       // index into Case.Branches, or -1
	// OutBranch2 is 1+index of the second outaged branch of an N-2
	// pair; 0 (the zero value) means no second outage.
	OutBranch2 int
	// OutGen is 1+index (into Case.Gens) of the dropped generator;
	// 0 (the zero value) means no generator outage.
	OutGen int
}

// SecondBranch returns the second outaged branch of an N-2 pair, or -1.
func (s Scenario) SecondBranch() int { return s.OutBranch2 - 1 }

// OutagedGen returns the dropped generator index, or -1.
func (s Scenario) OutagedGen() int { return s.OutGen - 1 }

// PairScenario builds an N-2 scenario outaging branches b1 and b2.
func PairScenario(factors la.Vector, b1, b2 int) Scenario {
	return Scenario{Factors: factors, OutBranch: b1, OutBranch2: b2 + 1}
}

// GenScenario builds a generator-outage scenario dropping Case.Gens[g].
func GenScenario(factors la.Vector, g int) Scenario {
	return Scenario{Factors: factors, OutBranch: -1, OutGen: g + 1}
}

// Outcome is the result of screening one scenario.
type Outcome struct {
	Scenario   Scenario
	Feasible   bool    // the scenario admits a secure dispatch
	Cost       float64 // $/hr when feasible
	Iterations int
	WarmUsed   bool // the model warm start converged (no restart)
	Projected  bool // the warm start was projected onto an outage layout
	// Islanded marks a structurally infeasible scenario: the outage
	// topology splits the network, so no solver was invoked (the
	// scenario is classified, not solved — Iterations stays 0).
	Islanded bool
	// Binding counts the active inequality rows at the accepted solution
	// (slack below bindingTol) — the severity signal hierarchical N-2
	// pruning and the dispatch policy both consume.
	Binding int
	// ColdByPolicy marks a scenario whose warm start was available but
	// where the dispatch policy chose the cold path.
	ColdByPolicy bool
	Err          error // solver/derivation error; nil for a clean infeasible
}

// Predictor produces a warm-start point from a model input [Pd; Qd].
// *mtl.Model is the production implementation; it is structurally
// identical to core.Predictor, so the serving layer can hand its replica
// pool straight to an Engine.
type Predictor interface {
	Predict(input la.Vector) *opf.Start
}

// warmMode is the per-class warm-start policy.
type warmMode int

const (
	warmCold      warmMode = iota // no usable prediction: cold solve only
	warmExact                     // layout matches the model: direct warm start
	warmProjected                 // rated outage: project µ/Z onto the class layout
)

func (m warmMode) String() string {
	switch m {
	case warmExact:
		return "exact"
	case warmProjected:
		return "projected"
	}
	return "cold"
}

// ClassInfo describes one topology class of a screening run.
type ClassInfo struct {
	OutBranch  int    // -1 for the intact topology
	OutBranch2 int    // second branch of an N-2 pair, or -1
	OutGen     int    // dropped generator, or -1
	Kind       string // "intact", "branch", "pair", "gen" or "branch+gen"
	Scenarios  int    // scenarios screened in this class
	NIq        int    // inequality rows of the class layout (#µ)
	WarmMode   string // "exact", "projected" or "cold"
	Islanded   bool   // the outage splits the network; nothing was solved
}

// Report is the full result of an Engine run: outcomes in scenario
// order plus the topology classes in first-seen order. One prepared OPF
// was derived per class — Scenarios/len(Classes) is the prepare-reuse
// factor.
type Report struct {
	Outcomes []Outcome
	Classes  []ClassInfo
}

// Engine is the topology-aware screener. Exactly one of Model and
// Predictors supplies warm starts (both nil/empty screens cold);
// Predictors must be interchangeable replicas whose predictions are in
// the base instance's layout.
type Engine struct {
	Base     *grid.Case
	Prepared *opf.OPF // prepared base instance; built from Base when nil
	Model    *mtl.Model
	// Predictors is an explicit replica set used instead of cloning
	// Model — the serving daemon lends its pool, tests inject stubs.
	Predictors []Predictor
	// Workers sizes the batch pool (0 resolves through PGSIM_WORKERS,
	// batch.SetDefaultWorkers, GOMAXPROCS; 1 is sequential).
	Workers int
	// NoProjection disables warm-start projection onto outage layouts,
	// so layout-changing contingencies cold-solve exactly like the
	// naive reference path (the bit-identity pinning mode).
	NoProjection bool
	// Policy, when set, decides warm vs cold per scenario from the
	// cheap feature vector (see PolicyFeatures) instead of always
	// taking an available warm start — the dispatch policy that turns
	// warm-start counter-regimes (case30, BENCH_paper.json) into an
	// explicit "go cold here" decision.
	Policy *Policy
}

// classKey identifies one topology class: the canonicalized outage
// combination (branch indices ascending, -1 = none).
type classKey struct {
	b1, b2 int // outaged branches, b1 <= b2 when both set, -1 = none
	g      int // outaged generator, -1 = none
}

// key canonicalizes a scenario's outage fields into its topology class.
func (s Scenario) key() classKey {
	b1, b2 := s.OutBranch, s.SecondBranch()
	if b1 < 0 {
		b1 = -1
	}
	if b2 < 0 {
		b2 = -1
	}
	if b1 < 0 && b2 >= 0 {
		b1, b2 = b2, -1
	}
	if b2 >= 0 && b2 < b1 {
		b1, b2 = b2, b1
	}
	if b1 == b2 {
		b2 = -1 // degenerate pair collapses to a single outage
	}
	g := s.OutagedGen()
	if g < 0 {
		g = -1
	}
	return classKey{b1: b1, b2: b2, g: g}
}

// kind names the outage combination of a class.
func (k classKey) kind() string {
	switch {
	case k.g >= 0 && k.b1 >= 0:
		return "branch+gen"
	case k.g >= 0:
		return "gen"
	case k.b2 >= 0:
		return "pair"
	case k.b1 >= 0:
		return "branch"
	}
	return "intact"
}

// class is one prepared topology variant.
type class struct {
	opf  *opf.OPF
	mode warmMode
	// project maps a base-layout prediction onto the class layout — the
	// composition of the per-outage projections in derivation order;
	// nil when the layout is unchanged.
	project  func(*opf.Start) *opf.Start
	islanded bool   // the outage splits the network; never solved
	kind     string // classKey.kind()
	// droppedIq is how many inequality rows the outage removed relative
	// to the base layout — the binding-set-distance input of the policy.
	droppedIq int
	err       error // derivation failure (invalid outage index)
}

// Run screens every scenario and returns outcomes in scenario order.
// Results are bit-identical for any worker count, and — warm-start
// policy aside (see NoProjection, Policy) — to the ScreenNaive
// reference.
func (e *Engine) Run(scenarios []Scenario) *Report {
	base := e.Prepared
	if base == nil {
		base = opf.Prepare(e.Base)
	}

	preds := e.Predictors
	modelLay := e.modelLayout(base)

	// One prepared OPF per distinct topology, first-seen order.
	classes := map[classKey]*class{}
	counts := map[classKey]int{}
	var order []classKey
	for _, sc := range scenarios {
		key := sc.key()
		counts[key]++
		if _, ok := classes[key]; ok {
			continue
		}
		classes[key] = e.buildClass(base, modelLay, key)
		order = append(order, key)
	}

	pool := replicaPool(e.Model, preds, e.Workers, len(scenarios))

	out := make([]Outcome, len(scenarios))
	_ = batch.Run(len(scenarios), batch.Options{Workers: e.Workers}, func(t *batch.Task) error {
		sc := scenarios[t.Index]
		out[t.Index] = screenClass(base, classes[sc.key()], pool, e.Policy, sc)
		return nil
	})

	rep := &Report{Outcomes: out}
	for _, key := range order {
		cl := classes[key]
		info := ClassInfo{
			OutBranch: key.b1, OutBranch2: key.b2, OutGen: key.g,
			Kind: cl.kind, Scenarios: counts[key],
			WarmMode: cl.mode.String(), Islanded: cl.islanded,
		}
		if cl.opf != nil {
			info.NIq = cl.opf.Lay.NIq
		}
		rep.Classes = append(rep.Classes, info)
	}
	return rep
}

// buildClass derives the prepared OPF, projection chain and warm policy
// of one topology class. Branch outages are applied first (ascending),
// then the generator drop; each layout-changing step contributes one
// projection leg, and the composition in derivation order maps a
// base-layout prediction onto the class layout.
func (e *Engine) buildClass(base *opf.OPF, modelLay *opf.Layout, key classKey) *class {
	cl := &class{kind: key.kind()}
	nbr := len(base.Case.Branches)
	for _, b := range []int{key.b1, key.b2} {
		if b >= nbr {
			cl.err = fmt.Errorf("scopf: outage branch %d outside %d branches", b, nbr)
			return cl
		}
	}
	if g := key.g; g >= 0 {
		switch {
		case g >= len(base.Case.Gens):
			cl.err = fmt.Errorf("scopf: outage generator %d outside %d generators", g, len(base.Case.Gens))
			return cl
		case !base.Case.Gens[g].Status:
			cl.err = fmt.Errorf("scopf: outage generator %d already out of service", g)
			return cl
		}
	}

	// Islanding classification on the outage topology view: a scenario
	// whose branch outages split the network is structurally infeasible
	// — classify it instead of wasting solver time.
	var skips []int
	for _, b := range []int{key.b1, key.b2} {
		if b >= 0 && base.Case.Branches[b].Status {
			skips = append(skips, b)
		}
	}
	if len(skips) > 0 && !grid.ConnectedWithout(base.Case, skips) {
		cl.islanded = true
		return cl
	}

	// Derivation chain: base → branch outages → generator drop. Outages
	// of already-inactive branches leave the topology as-is (no step).
	cur := base
	var steps []func(*opf.Start) *opf.Start
	for _, b := range skips {
		src := cur
		rl := src.RatedPos(b)
		o, err := src.RebindOutage(b)
		if err != nil {
			cl.err = err
			return cl
		}
		if rl >= 0 {
			steps = append(steps, func(st *opf.Start) *opf.Start { return src.ProjectStart(st, rl) })
		}
		cur = o
	}
	if key.g >= 0 {
		src := cur
		gi := src.GenPos(key.g)
		o, err := src.RebindGenOutage(key.g)
		if err != nil {
			cl.err = err
			return cl
		}
		steps = append(steps, func(st *opf.Start) *opf.Start { return src.ProjectStartGen(st, gi) })
		cur = o
	}
	cl.opf = cur
	cl.droppedIq = base.Lay.NIq - cur.Lay.NIq

	if modelLay == nil {
		return cl
	}
	baseMatches := base.Lay.NIq == modelLay.NIq && base.Lay.NEq == modelLay.NEq && base.Lay.NX == modelLay.NX
	switch {
	case cur.Lay.NIq == modelLay.NIq && cur.Lay.NEq == modelLay.NEq && cur.Lay.NX == modelLay.NX:
		cl.mode = warmExact
	case !e.NoProjection && len(steps) > 0 && baseMatches:
		cl.mode = warmProjected
		cl.project = func(st *opf.Start) *opf.Start {
			for _, step := range steps {
				st = step(st)
			}
			return st
		}
	}
	return cl
}

// replicaPool builds the warm-start replica pool handed out to workers:
// the explicit preds, or min(workers, scenarios) clones of m. Replicas
// share weights, so results do not depend on which replica serves a
// scenario. Both the engine and the naive reference path size their
// pools through here, keeping the two paths' replica policy identical.
func replicaPool(m *mtl.Model, preds []Predictor, workers, scenarios int) chan Predictor {
	if len(preds) == 0 {
		if m == nil || scenarios == 0 {
			return nil
		}
		n := batch.Workers(workers)
		if n > scenarios {
			n = scenarios
		}
		if n < 1 {
			n = 1
		}
		preds = make([]Predictor, n)
		preds[0] = m // the original counts as one replica
		for i := 1; i < n; i++ {
			preds[i] = m.Clone()
		}
	}
	pool := make(chan Predictor, len(preds))
	for _, p := range preds {
		pool <- p
	}
	return pool
}

// bindingTol is the slack threshold below which an inequality row
// counts as binding at the accepted solution. MIPS drives feasible
// slacks to ~µ/z scale; 1e-6 separates active rows cleanly on every
// embedded system.
const bindingTol = 1e-6

// bindingCount counts inequality rows whose slack is at its bound.
func bindingCount(z la.Vector) int {
	n := 0
	for _, zi := range z {
		if zi < bindingTol {
			n++
		}
	}
	return n
}

// screenClass solves one scenario on its class's prepared structure.
func screenClass(base *opf.OPF, cl *class, pool chan Predictor, pol *Policy, sc Scenario) Outcome {
	if cl.err != nil {
		return Outcome{Scenario: sc, Err: cl.err}
	}
	if cl.islanded {
		// Structurally infeasible: classified, never solved.
		return Outcome{Scenario: sc, Islanded: true}
	}
	inst := cl.opf.Perturb(sc.Factors)
	var start *opf.Start
	coldByPolicy := false
	if pool != nil && cl.mode != warmCold {
		if pol != nil && !pol.UseWarm(featuresOf(base.Case, cl, sc)) {
			coldByPolicy = true
		} else {
			p := <-pool
			start = p.Predict(dataset.InputVector(inst.Case))
			pool <- p
			if cl.project != nil {
				start = cl.project(start)
			}
		}
	}
	out := solveOutcome(inst, sc, start, cl.mode == warmProjected)
	out.ColdByPolicy = coldByPolicy
	return out
}

// solveOutcome runs the warm→cold pipeline of one scenario: try the
// predicted start when there is one, restart cold on non-convergence.
// Both the engine and the naive reference path report through it, so
// their accounting is identical by construction.
func solveOutcome(inst *opf.OPF, sc Scenario, start *opf.Start, projected bool) Outcome {
	res := Outcome{Scenario: sc}
	if start != nil {
		if r, err := inst.Solve(start, opf.Options{}); err == nil && r.Converged {
			res.Feasible = true
			res.Cost = r.Cost
			res.Iterations = r.Iterations
			res.WarmUsed = true
			res.Projected = projected
			res.Binding = bindingCount(r.Z)
			return res
		}
	}
	r, err := inst.Solve(nil, opf.Options{})
	if err != nil {
		res.Err = err
		return res
	}
	if r.Converged {
		res.Feasible = true
		res.Cost = r.Cost
		res.Iterations = r.Iterations
		res.Binding = bindingCount(r.Z)
	}
	return res
}

// Screener fans scenarios out across workers. It is the package's
// stable entry point; Screen delegates to the topology-aware Engine
// (or, with Naive set, to the per-scenario-Prepare reference path).
type Screener struct {
	Base    *grid.Case
	Model   *mtl.Model // may be nil: cold-start screening
	Workers int        // default via the batch pool (PGSIM_WORKERS, GOMAXPROCS)
	// Naive selects the reference path that re-Prepares every scenario.
	Naive bool
	// NoProjection disables rated-outage warm-start projection.
	NoProjection bool
}

// Screen solves every scenario, warm-starting from the model when one is
// set, and returns outcomes in scenario order.
func (s *Screener) Screen(scenarios []Scenario) []Outcome {
	if s.Naive {
		return ScreenNaive(s.Base, s.Model, scenarios, s.Workers)
	}
	e := &Engine{Base: s.Base, Model: s.Model, Workers: s.Workers, NoProjection: s.NoProjection}
	return e.Run(scenarios).Outcomes
}

// ScreenNaive is the reference screening path: every scenario deep-clones
// the case, re-Normalizes, rebuilds the admittance matrices and layout
// with a fresh opf.Prepare, and warm-starts only when the contingency
// preserves the model's constraint layout (layout-changing outages fall
// back to cold). It mirrors the Engine's full contingency-space
// semantics — validation order, islanding classification, generator and
// N-2 pair outages — and exists as the pinning target and benchmark
// baseline for the Engine, which must reproduce its outcomes bit for
// bit when projection is disabled.
func ScreenNaive(base *grid.Case, m *mtl.Model, scenarios []Scenario, workers int) []Outcome {
	pool := replicaPool(m, nil, workers, len(scenarios))
	out := make([]Outcome, len(scenarios))
	_ = batch.Run(len(scenarios), batch.Options{Workers: workers}, func(t *batch.Task) error {
		sc := scenarios[t.Index]
		key := sc.key()
		// Validation order matches Engine.buildClass: branch ranges,
		// then generator range and service status, then islanding.
		for _, b := range []int{key.b1, key.b2} {
			if b >= len(base.Branches) {
				out[t.Index] = Outcome{Scenario: sc, Err: fmt.Errorf("scopf: outage branch %d outside %d branches", b, len(base.Branches))}
				return nil
			}
		}
		if g := key.g; g >= 0 {
			switch {
			case g >= len(base.Gens):
				out[t.Index] = Outcome{Scenario: sc, Err: fmt.Errorf("scopf: outage generator %d outside %d generators", g, len(base.Gens))}
				return nil
			case !base.Gens[g].Status:
				out[t.Index] = Outcome{Scenario: sc, Err: fmt.Errorf("scopf: outage generator %d already out of service", g)}
				return nil
			}
		}
		c := base.Clone()
		c.ScaleLoads(sc.Factors)
		outaged := false
		for _, b := range []int{key.b1, key.b2} {
			if b >= 0 && c.Branches[b].Status {
				c.Branches[b].Status = false
				outaged = true
			}
		}
		if outaged && !grid.Connected(c) {
			out[t.Index] = Outcome{Scenario: sc, Islanded: true}
			return nil
		}
		if key.g >= 0 {
			c.Gens[key.g].Status = false
		}
		if err := c.Normalize(); err != nil {
			out[t.Index] = Outcome{Scenario: sc, Err: err}
			return nil
		}
		o := opf.Prepare(c)
		var start *opf.Start
		if m != nil && o.Lay.NIq == m.Lay.NIq && o.Lay.NEq == m.Lay.NEq && o.Lay.NX == m.Lay.NX {
			p := <-pool
			start = p.Predict(dataset.InputVector(c))
			pool <- p
		}
		out[t.Index] = solveOutcome(o, sc, start, false)
		return nil
	})
	return out
}

// Contingencies enumerates the single-branch outages that leave the
// network connected (the N-1 set). Bridges — branches whose loss splits
// the grid — are excluded, matching operational practice of treating
// them separately.
func Contingencies(c *grid.Case) []int {
	var out []int
	for l, br := range c.Branches {
		if !br.Status {
			continue
		}
		if connectedWithout(c, l) {
			out = append(out, l)
		}
	}
	return out
}

// connectedWithout reports single-outage connectivity through the
// shared grid primitive (kept as the package-local shim the N-1
// enumeration has always used).
func connectedWithout(c *grid.Case, skip int) bool {
	return grid.ConnectedWithout(c, []int{skip})
}

// GenContingencies enumerates the single-generator outages that leave
// at least one other unit in service — the generator axis of the N-1
// set. Connectivity is unaffected by a generator drop, so the only
// structural exclusion is losing the last unit (no dispatchable
// generation left, trivially infeasible).
func GenContingencies(c *grid.Case) []int {
	active := 0
	for _, g := range c.Gens {
		if g.Status {
			active++
		}
	}
	var out []int
	if active < 2 {
		return out
	}
	for g, gen := range c.Gens {
		if gen.Status {
			out = append(out, g)
		}
	}
	return out
}

// BuildScenarios crosses load draws with contingencies (plus the intact
// topology) into a scenario list.
func BuildScenarios(draws []la.Vector, contingencies []int) []Scenario {
	out := make([]Scenario, 0, len(draws)*(len(contingencies)+1))
	for _, f := range draws {
		out = append(out, Scenario{Factors: f, OutBranch: -1})
		for _, l := range contingencies {
			out = append(out, Scenario{Factors: f, OutBranch: l})
		}
	}
	return out
}

// BuildGenScenarios crosses load draws with generator outages into a
// scenario list (no intact entries — pair with BuildScenarios).
func BuildGenScenarios(draws []la.Vector, gens []int) []Scenario {
	out := make([]Scenario, 0, len(draws)*len(gens))
	for _, f := range draws {
		for _, g := range gens {
			out = append(out, GenScenario(f, g))
		}
	}
	return out
}

// BuildPairScenarios crosses load draws with N-2 branch pairs into a
// scenario list. Islanding pairs are legal inputs — the screen
// classifies them instead of solving.
func BuildPairScenarios(draws []la.Vector, pairs [][2]int) []Scenario {
	out := make([]Scenario, 0, len(draws)*len(pairs))
	for _, f := range draws {
		for _, p := range pairs {
			out = append(out, PairScenario(f, p[0], p[1]))
		}
	}
	return out
}

// Summary aggregates screening outcomes.
type Summary struct {
	Total, Feasible, WarmConverged int
	Projected                      int // warm starts accepted on a projected layout
	Islanded                       int // scenarios classified as islanding, never solved
	PolicyCold                     int // warm starts skipped by the dispatch policy
	Errors                         int // scenarios whose solve/derivation errored
	MeanIterations                 float64
	WorstCost                      float64 // highest secure-dispatch cost
}

// Summarize reduces outcomes to the operator-facing numbers.
func Summarize(outs []Outcome) Summary {
	var s Summary
	s.Total = len(outs)
	var iters float64
	for _, o := range outs {
		if o.Feasible {
			s.Feasible++
			iters += float64(o.Iterations)
			if o.Cost > s.WorstCost {
				s.WorstCost = o.Cost
			}
		}
		if o.WarmUsed {
			s.WarmConverged++
		}
		if o.Projected {
			s.Projected++
		}
		if o.Islanded {
			s.Islanded++
		}
		if o.ColdByPolicy {
			s.PolicyCold++
		}
		if o.Err != nil {
			s.Errors++
		}
	}
	if s.Feasible > 0 {
		s.MeanIterations = iters / float64(s.Feasible)
	}
	return s
}
