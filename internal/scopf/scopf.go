// Package scopf implements the security-constrained AC-OPF scenario
// screening that motivates the paper's scaling study (Section VIII-E):
// grid operators evaluate large trees of uncertain scenarios — load
// draws combined with N-1 contingencies — each of which is an
// independent AC-OPF instance. The scenarios are embarrassingly
// parallel, and each one can be warm-started by the Smart-PGSim model
// trained on the intact system.
//
// Screening is topology-aware: Engine groups scenarios by topology
// class (which branch is out), derives one prepared OPF per class from
// the intact system's prepared structure (grid.YMatrices.DropBranch +
// opf.RebindOutage — bit-identical to a per-scenario rebuild) and fans
// the scenarios out on the internal/batch worker pool, so every
// scenario pays only the clone+scale+rebind derivation cost and every
// class shares one KKT ordering analysis. Outages of rated branches
// shrink the inequality layout; the engine projects the intact-system
// warm-start prediction onto the contingency layout (opf.ProjectStart)
// instead of falling back to a cold solve. ScreenNaive keeps the
// per-scenario-Prepare reference path; the engine is pinned
// bit-identical to it by the tests in this package and benchmarked
// against it by BenchmarkScreen (BENCH_scopf.json).
package scopf

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/opf"
)

// Scenario is one node of the uncertainty tree: a load draw plus an
// optional branch outage (-1 = no contingency).
type Scenario struct {
	Factors   la.Vector // per-bus load multipliers
	OutBranch int       // index into Case.Branches, or -1
}

// Outcome is the result of screening one scenario.
type Outcome struct {
	Scenario   Scenario
	Feasible   bool    // the scenario admits a secure dispatch
	Cost       float64 // $/hr when feasible
	Iterations int
	WarmUsed   bool  // the model warm start converged (no restart)
	Projected  bool  // the warm start was projected onto an outage layout
	Err        error // solver/derivation error; nil for a clean infeasible
}

// Predictor produces a warm-start point from a model input [Pd; Qd].
// *mtl.Model is the production implementation; it is structurally
// identical to core.Predictor, so the serving layer can hand its replica
// pool straight to an Engine.
type Predictor interface {
	Predict(input la.Vector) *opf.Start
}

// warmMode is the per-class warm-start policy.
type warmMode int

const (
	warmCold      warmMode = iota // no usable prediction: cold solve only
	warmExact                     // layout matches the model: direct warm start
	warmProjected                 // rated outage: project µ/Z onto the class layout
)

func (m warmMode) String() string {
	switch m {
	case warmExact:
		return "exact"
	case warmProjected:
		return "projected"
	}
	return "cold"
}

// ClassInfo describes one topology class of a screening run.
type ClassInfo struct {
	OutBranch int    // -1 for the intact topology
	Scenarios int    // scenarios screened in this class
	NIq       int    // inequality rows of the class layout (#µ)
	WarmMode  string // "exact", "projected" or "cold"
}

// Report is the full result of an Engine run: outcomes in scenario
// order plus the topology classes in first-seen order. One prepared OPF
// was derived per class — Scenarios/len(Classes) is the prepare-reuse
// factor.
type Report struct {
	Outcomes []Outcome
	Classes  []ClassInfo
}

// Engine is the topology-aware screener. Exactly one of Model and
// Predictors supplies warm starts (both nil/empty screens cold);
// Predictors must be interchangeable replicas whose predictions are in
// the base instance's layout.
type Engine struct {
	Base     *grid.Case
	Prepared *opf.OPF // prepared base instance; built from Base when nil
	Model    *mtl.Model
	// Predictors is an explicit replica set used instead of cloning
	// Model — the serving daemon lends its pool, tests inject stubs.
	Predictors []Predictor
	// Workers sizes the batch pool (0 resolves through PGSIM_WORKERS,
	// batch.SetDefaultWorkers, GOMAXPROCS; 1 is sequential).
	Workers int
	// NoProjection disables the rated-outage warm-start projection, so
	// layout-changing contingencies cold-solve exactly like the naive
	// reference path (the bit-identity pinning mode).
	NoProjection bool
}

// class is one prepared topology variant.
type class struct {
	opf      *opf.OPF
	ratedPos int // rated-subset position of the outage, -1 if layout kept
	mode     warmMode
	err      error // derivation failure (invalid outage index)
}

// Run screens every scenario and returns outcomes in scenario order.
// Results are bit-identical for any worker count, and — warm-start
// policy aside (see NoProjection) — to the ScreenNaive reference.
func (e *Engine) Run(scenarios []Scenario) *Report {
	base := e.Prepared
	if base == nil {
		base = opf.Prepare(e.Base)
	}

	preds := e.Predictors
	var modelLay *opf.Layout
	switch {
	case len(preds) > 0:
		// Explicit replicas predict in the base layout by contract.
		lay := base.Lay
		modelLay = &lay
	case e.Model != nil:
		lay := e.Model.Lay
		modelLay = &lay
	}

	// One prepared OPF per distinct topology, first-seen order.
	classes := map[int]*class{}
	counts := map[int]int{}
	var order []int
	for _, sc := range scenarios {
		key := sc.OutBranch
		if key < 0 {
			key = -1
		}
		counts[key]++
		if _, ok := classes[key]; ok {
			continue
		}
		classes[key] = e.buildClass(base, modelLay, key)
		order = append(order, key)
	}

	pool := replicaPool(e.Model, preds, e.Workers, len(scenarios))

	out := make([]Outcome, len(scenarios))
	_ = batch.Run(len(scenarios), batch.Options{Workers: e.Workers}, func(t *batch.Task) error {
		sc := scenarios[t.Index]
		key := sc.OutBranch
		if key < 0 {
			key = -1
		}
		out[t.Index] = screenClass(base, classes[key], pool, sc)
		return nil
	})

	rep := &Report{Outcomes: out}
	for _, key := range order {
		cl := classes[key]
		info := ClassInfo{OutBranch: key, Scenarios: counts[key], WarmMode: cl.mode.String()}
		if cl.opf != nil {
			info.NIq = cl.opf.Lay.NIq
		}
		rep.Classes = append(rep.Classes, info)
	}
	return rep
}

// buildClass derives the prepared OPF and warm policy of one topology.
func (e *Engine) buildClass(base *opf.OPF, modelLay *opf.Layout, key int) *class {
	cl := &class{ratedPos: -1}
	switch {
	case key < 0:
		cl.opf = base
	case key >= len(base.Case.Branches):
		cl.err = fmt.Errorf("scopf: outage branch %d outside %d branches", key, len(base.Case.Branches))
		return cl
	case !base.Case.Branches[key].Status:
		// Outage of an already-inactive branch leaves the topology as-is.
		cl.opf = base
	default:
		o, err := base.RebindOutage(key)
		if err != nil {
			cl.err = err
			return cl
		}
		cl.opf = o
		cl.ratedPos = base.RatedPos(key)
	}
	if modelLay == nil {
		return cl
	}
	switch {
	case cl.opf.Lay.NIq == modelLay.NIq && cl.opf.Lay.NEq == modelLay.NEq:
		cl.mode = warmExact
	case !e.NoProjection && cl.ratedPos >= 0 &&
		base.Lay.NIq == modelLay.NIq && base.Lay.NEq == modelLay.NEq:
		cl.mode = warmProjected
	}
	return cl
}

// replicaPool builds the warm-start replica pool handed out to workers:
// the explicit preds, or min(workers, scenarios) clones of m. Replicas
// share weights, so results do not depend on which replica serves a
// scenario. Both the engine and the naive reference path size their
// pools through here, keeping the two paths' replica policy identical.
func replicaPool(m *mtl.Model, preds []Predictor, workers, scenarios int) chan Predictor {
	if len(preds) == 0 {
		if m == nil || scenarios == 0 {
			return nil
		}
		n := batch.Workers(workers)
		if n > scenarios {
			n = scenarios
		}
		if n < 1 {
			n = 1
		}
		preds = make([]Predictor, n)
		preds[0] = m // the original counts as one replica
		for i := 1; i < n; i++ {
			preds[i] = m.Clone()
		}
	}
	pool := make(chan Predictor, len(preds))
	for _, p := range preds {
		pool <- p
	}
	return pool
}

// screenClass solves one scenario on its class's prepared structure.
func screenClass(base *opf.OPF, cl *class, pool chan Predictor, sc Scenario) Outcome {
	if cl.err != nil {
		return Outcome{Scenario: sc, Err: cl.err}
	}
	inst := cl.opf.Perturb(sc.Factors)
	var start *opf.Start
	if pool != nil && cl.mode != warmCold {
		p := <-pool
		start = p.Predict(dataset.InputVector(inst.Case))
		pool <- p
		if cl.mode == warmProjected {
			start = base.ProjectStart(start, cl.ratedPos)
		}
	}
	return solveOutcome(inst, sc, start, cl.mode == warmProjected)
}

// solveOutcome runs the warm→cold pipeline of one scenario: try the
// predicted start when there is one, restart cold on non-convergence.
// Both the engine and the naive reference path report through it, so
// their accounting is identical by construction.
func solveOutcome(inst *opf.OPF, sc Scenario, start *opf.Start, projected bool) Outcome {
	res := Outcome{Scenario: sc}
	if start != nil {
		if r, err := inst.Solve(start, opf.Options{}); err == nil && r.Converged {
			res.Feasible = true
			res.Cost = r.Cost
			res.Iterations = r.Iterations
			res.WarmUsed = true
			res.Projected = projected
			return res
		}
	}
	r, err := inst.Solve(nil, opf.Options{})
	if err != nil {
		res.Err = err
		return res
	}
	if r.Converged {
		res.Feasible = true
		res.Cost = r.Cost
		res.Iterations = r.Iterations
	}
	return res
}

// Screener fans scenarios out across workers. It is the package's
// stable entry point; Screen delegates to the topology-aware Engine
// (or, with Naive set, to the per-scenario-Prepare reference path).
type Screener struct {
	Base    *grid.Case
	Model   *mtl.Model // may be nil: cold-start screening
	Workers int        // default via the batch pool (PGSIM_WORKERS, GOMAXPROCS)
	// Naive selects the reference path that re-Prepares every scenario.
	Naive bool
	// NoProjection disables rated-outage warm-start projection.
	NoProjection bool
}

// Screen solves every scenario, warm-starting from the model when one is
// set, and returns outcomes in scenario order.
func (s *Screener) Screen(scenarios []Scenario) []Outcome {
	if s.Naive {
		return ScreenNaive(s.Base, s.Model, scenarios, s.Workers)
	}
	e := &Engine{Base: s.Base, Model: s.Model, Workers: s.Workers, NoProjection: s.NoProjection}
	return e.Run(scenarios).Outcomes
}

// ScreenNaive is the reference screening path: every scenario deep-clones
// the case, re-Normalizes, rebuilds the admittance matrices and layout
// with a fresh opf.Prepare, and warm-starts only when the contingency
// preserves the model's constraint layout (rated-branch outages fall
// back to cold). It exists as the pinning target and benchmark baseline
// for the Engine, which must reproduce its outcomes bit for bit when
// projection is disabled.
func ScreenNaive(base *grid.Case, m *mtl.Model, scenarios []Scenario, workers int) []Outcome {
	pool := replicaPool(m, nil, workers, len(scenarios))
	out := make([]Outcome, len(scenarios))
	_ = batch.Run(len(scenarios), batch.Options{Workers: workers}, func(t *batch.Task) error {
		sc := scenarios[t.Index]
		if sc.OutBranch >= len(base.Branches) {
			out[t.Index] = Outcome{Scenario: sc, Err: fmt.Errorf("scopf: outage branch %d outside %d branches", sc.OutBranch, len(base.Branches))}
			return nil
		}
		c := base.Clone()
		c.ScaleLoads(sc.Factors)
		if sc.OutBranch >= 0 {
			c.Branches[sc.OutBranch].Status = false
		}
		if err := c.Normalize(); err != nil {
			out[t.Index] = Outcome{Scenario: sc, Err: err}
			return nil
		}
		o := opf.Prepare(c)
		var start *opf.Start
		if m != nil && o.Lay.NIq == m.Lay.NIq && o.Lay.NEq == m.Lay.NEq {
			p := <-pool
			start = p.Predict(dataset.InputVector(c))
			pool <- p
		}
		out[t.Index] = solveOutcome(o, sc, start, false)
		return nil
	})
	return out
}

// Contingencies enumerates the single-branch outages that leave the
// network connected (the N-1 set). Bridges — branches whose loss splits
// the grid — are excluded, matching operational practice of treating
// them separately.
func Contingencies(c *grid.Case) []int {
	var out []int
	for l, br := range c.Branches {
		if !br.Status {
			continue
		}
		if connectedWithout(c, l) {
			out = append(out, l)
		}
	}
	return out
}

func connectedWithout(c *grid.Case, skip int) bool {
	nb := c.NB()
	adj := make([][]int, nb)
	for l, br := range c.Branches {
		if !br.Status || l == skip {
			continue
		}
		f := c.BusIndex(br.From)
		t := c.BusIndex(br.To)
		adj[f] = append(adj[f], t)
		adj[t] = append(adj[t], f)
	}
	seen := make([]bool, nb)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == nb
}

// BuildScenarios crosses load draws with contingencies (plus the intact
// topology) into a scenario list.
func BuildScenarios(draws []la.Vector, contingencies []int) []Scenario {
	out := make([]Scenario, 0, len(draws)*(len(contingencies)+1))
	for _, f := range draws {
		out = append(out, Scenario{Factors: f, OutBranch: -1})
		for _, l := range contingencies {
			out = append(out, Scenario{Factors: f, OutBranch: l})
		}
	}
	return out
}

// Summary aggregates screening outcomes.
type Summary struct {
	Total, Feasible, WarmConverged int
	Projected                      int // warm starts accepted on a projected layout
	Errors                         int // scenarios whose solve/derivation errored
	MeanIterations                 float64
	WorstCost                      float64 // highest secure-dispatch cost
}

// Summarize reduces outcomes to the operator-facing numbers.
func Summarize(outs []Outcome) Summary {
	var s Summary
	s.Total = len(outs)
	var iters float64
	for _, o := range outs {
		if o.Feasible {
			s.Feasible++
			iters += float64(o.Iterations)
			if o.Cost > s.WorstCost {
				s.WorstCost = o.Cost
			}
		}
		if o.WarmUsed {
			s.WarmConverged++
		}
		if o.Projected {
			s.Projected++
		}
		if o.Err != nil {
			s.Errors++
		}
	}
	if s.Feasible > 0 {
		s.MeanIterations = iters / float64(s.Feasible)
	}
	return s
}
