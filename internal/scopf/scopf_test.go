package scopf

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/opf"
)

func loadDraws(nb, n int, seed int64) []la.Vector {
	r := rand.New(rand.NewSource(seed))
	out := make([]la.Vector, n)
	for i := range out {
		f := make(la.Vector, nb)
		for k := range f {
			f[k] = 0.9 + 0.2*r.Float64()
		}
		out[i] = f
	}
	return out
}

func TestContingenciesConnected(t *testing.T) {
	c := grid.Case9()
	cons := Contingencies(c)
	if len(cons) == 0 {
		t.Fatal("the 9-bus ring has no bridges; every outage should be screenable")
	}
	// case9 is a 6-branch ring with three radial generator legs: only
	// the ring branches are non-bridges.
	if len(cons) != 6 {
		t.Fatalf("got %d contingencies, want 6", len(cons))
	}
	for _, l := range cons {
		br := c.Branches[l]
		if br.From == 1 || br.From == 3 || (br.From == 8 && br.To == 2) {
			t.Fatalf("generator leg %d-%d treated as non-bridge", br.From, br.To)
		}
	}
	// case14 has radial spurs (e.g. 7-8); bridge outages must be excluded.
	c14 := grid.Case14()
	for _, l := range Contingencies(c14) {
		br := c14.Branches[l]
		if br.From == 7 && br.To == 8 {
			t.Fatal("bridge 7-8 not excluded")
		}
	}
}

func TestBuildScenarios(t *testing.T) {
	draws := loadDraws(9, 3, 1)
	sc := BuildScenarios(draws, []int{0, 4})
	if len(sc) != 3*3 {
		t.Fatalf("%d scenarios, want 9", len(sc))
	}
	if sc[0].OutBranch != -1 || sc[1].OutBranch != 0 {
		t.Fatal("scenario ordering wrong")
	}
}

func TestScreenColdStart(t *testing.T) {
	c := grid.Case9()
	s := &Screener{Base: c, Workers: 4}
	draws := loadDraws(c.NB(), 2, 2)
	outs := s.Screen(BuildScenarios(draws, Contingencies(c)[:3]))
	sum := Summarize(outs)
	if sum.Total != 8 {
		t.Fatalf("total %d", sum.Total)
	}
	if sum.Feasible < 6 {
		t.Errorf("only %d/%d scenarios feasible on the lightly-loaded ring", sum.Feasible, sum.Total)
	}
	if sum.Feasible > 0 && sum.WorstCost <= 0 {
		t.Error("worst cost not recorded")
	}
}

func TestScreenWarmStart(t *testing.T) {
	c := grid.Case14() // unrated branches: outages keep the layout
	o := opf.Prepare(c)
	set, err := dataset.Generate(c, dataset.DefaultPreparer, dataset.Options{N: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mtl.Config{Variant: mtl.VariantMTL, Hierarchy: true, DetachPeriod: 4, Seed: 5}
	m := mtl.New(o.Lay, cfg)
	if _, err := mtl.Train(m, nil, set, mtl.TrainConfig{Epochs: 150, BatchSize: 12, Seed: 5}); err != nil {
		t.Fatal(err)
	}

	draws := loadDraws(c.NB(), 3, 6)
	cons := Contingencies(c)[:4]
	scenarios := BuildScenarios(draws, cons)

	warm := &Screener{Base: c, Model: m, Workers: 4}
	cold := &Screener{Base: c, Workers: 4}
	wOut := Summarize(warm.Screen(scenarios))
	cOut := Summarize(cold.Screen(scenarios))

	if wOut.Feasible != cOut.Feasible {
		t.Fatalf("warm screening changed feasibility: %d vs %d", wOut.Feasible, cOut.Feasible)
	}
	if wOut.WarmConverged == 0 {
		t.Fatal("no scenario accepted the warm start")
	}
	// Warm screening must reduce the mean iteration count (the paper's
	// SC-ACOPF use case for Smart-PGSim).
	if wOut.MeanIterations >= cOut.MeanIterations {
		t.Errorf("warm mean iterations %.1f not below cold %.1f",
			wOut.MeanIterations, cOut.MeanIterations)
	}
}

// trainModel builds a small warm-start model for a case, mirroring the
// offline pipeline the screening tests warm-start from.
func trainModel(t *testing.T, c *grid.Case, seed int64) *mtl.Model {
	t.Helper()
	o := opf.Prepare(c)
	set, err := dataset.Generate(c, dataset.DefaultPreparer, dataset.Options{N: 60, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mtl.Config{Variant: mtl.VariantMTL, Hierarchy: true, DetachPeriod: 4, Seed: seed}
	m := mtl.New(o.Lay, cfg)
	if _, err := mtl.Train(m, nil, set, mtl.TrainConfig{Epochs: 150, BatchSize: 12, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	return m
}

// sameOutcomes requires bit-identical screening results: same feasibility,
// exact float equality on cost, same iteration counts and warm-start
// accounting, matching error presence.
func sameOutcomes(t *testing.T, got, want []Outcome) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d outcomes want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Feasible != w.Feasible || g.Cost != w.Cost || g.Iterations != w.Iterations ||
			g.WarmUsed != w.WarmUsed || g.Projected != w.Projected ||
			g.Islanded != w.Islanded || g.Binding != w.Binding ||
			g.ColdByPolicy != w.ColdByPolicy || (g.Err != nil) != (w.Err != nil) {
			t.Fatalf("outcome %d differs:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// The engine must reproduce the naive per-scenario-Prepare path bit for
// bit on a cold N-1 sweep — case9's branches are all rated, so this
// covers layout-shrinking outages.
func TestEngineMatchesNaiveCold(t *testing.T) {
	c := grid.Case9()
	draws := loadDraws(c.NB(), 2, 3)
	scenarios := BuildScenarios(draws, Contingencies(c))
	e := &Engine{Base: c, Workers: 4}
	sameOutcomes(t, e.Run(scenarios).Outcomes, ScreenNaive(c, nil, scenarios, 4))
}

// Warm screening on case14 (unrated: every outage keeps the layout) must
// also pin bit-identical to the naive path — same predictions, same
// shared-ordering solves.
func TestEngineMatchesNaiveWarm(t *testing.T) {
	c := grid.Case14()
	m := trainModel(t, c, 5)
	draws := loadDraws(c.NB(), 2, 6)
	scenarios := BuildScenarios(draws, Contingencies(c)[:4])
	e := &Engine{Base: c, Model: m, Workers: 4, NoProjection: true}
	sameOutcomes(t, e.Run(scenarios).Outcomes, ScreenNaive(c, m, scenarios, 4))
	// Projection has nothing to project on an unrated system: the default
	// engine must produce the same outcomes.
	e2 := &Engine{Base: c, Model: m, Workers: 4}
	sameOutcomes(t, e2.Run(scenarios).Outcomes, ScreenNaive(c, m, scenarios, 4))
}

// Sequential and parallel engine runs must be bit-identical (the batch
// engine's core guarantee, preserved through replica pools and shared
// ordering caches).
func TestEngineSeqParallelIdentical(t *testing.T) {
	c := grid.Case9()
	m := trainModel(t, c, 9)
	draws := loadDraws(c.NB(), 2, 4)
	scenarios := BuildScenarios(draws, Contingencies(c)[:3])
	seq := (&Engine{Base: c, Model: m, Workers: 1}).Run(scenarios)
	par := (&Engine{Base: c, Model: m, Workers: 4}).Run(scenarios)
	sameOutcomes(t, par.Outcomes, seq.Outcomes)
	if len(seq.Classes) != len(par.Classes) || len(seq.Classes) != 4 {
		t.Fatalf("class counts %d/%d want 4", len(seq.Classes), len(par.Classes))
	}
}

// On a rated system the projection makes outage scenarios warm-startable;
// the naive path cold-solves them. Feasibility must agree exactly and
// secure-dispatch costs to optimizer precision, while the engine records
// projected warm hits.
func TestProjectionWarmStartsRatedOutages(t *testing.T) {
	c := grid.Case9()
	m := trainModel(t, c, 5)
	draws := loadDraws(c.NB(), 3, 11)
	cons := Contingencies(c)
	scenarios := BuildScenarios(draws, cons)
	eng := (&Engine{Base: c, Model: m, Workers: 4}).Run(scenarios)
	naive := ScreenNaive(c, m, scenarios, 4)
	sEng, sNaive := Summarize(eng.Outcomes), Summarize(naive)
	if sEng.Feasible != sNaive.Feasible {
		t.Fatalf("projection changed feasibility: %d vs %d", sEng.Feasible, sNaive.Feasible)
	}
	if sEng.Projected == 0 {
		t.Fatal("no outage scenario accepted a projected warm start")
	}
	if sNaive.Projected != 0 {
		t.Fatal("naive path reported projected warm starts")
	}
	if sEng.WarmConverged <= sNaive.WarmConverged {
		t.Errorf("projection did not raise the warm-hit count: %d vs %d", sEng.WarmConverged, sNaive.WarmConverged)
	}
	for i := range eng.Outcomes {
		g, w := eng.Outcomes[i], naive[i]
		if g.Feasible && w.Feasible {
			if rel := (g.Cost - w.Cost) / w.Cost; rel > 1e-6 || rel < -1e-6 {
				t.Fatalf("scenario %d: projected cost %.8f vs cold %.8f", i, g.Cost, w.Cost)
			}
		}
		// Intact scenarios take the identical exact-warm path.
		if g.Scenario.OutBranch < 0 && (g.Cost != w.Cost || g.Iterations != w.Iterations) {
			t.Fatalf("intact scenario %d not bit-identical", i)
		}
	}
	// Class accounting: one intact class + one per contingency, each
	// marked with its warm mode.
	if len(eng.Classes) != len(cons)+1 {
		t.Fatalf("%d classes want %d", len(eng.Classes), len(cons)+1)
	}
	if eng.Classes[0].OutBranch != -1 || eng.Classes[0].WarmMode != "exact" {
		t.Fatalf("intact class %+v", eng.Classes[0])
	}
	for _, cl := range eng.Classes[1:] {
		if cl.WarmMode != "projected" {
			t.Fatalf("outage class %+v not projected", cl)
		}
	}
}

// Invalid outage indices and solver failures surface as Outcome.Err and
// Summary.Errors instead of being conflated with infeasibility.
func TestOutcomeErrors(t *testing.T) {
	c := grid.Case9()
	scenarios := []Scenario{
		{Factors: ones(c.NB()), OutBranch: -1},
		{Factors: ones(c.NB()), OutBranch: len(c.Branches) + 3},
	}
	for _, outs := range [][]Outcome{
		(&Engine{Base: c, Workers: 1}).Run(scenarios).Outcomes,
		ScreenNaive(c, nil, scenarios, 1),
	} {
		if outs[0].Err != nil || !outs[0].Feasible {
			t.Fatalf("base scenario: %+v", outs[0])
		}
		if outs[1].Err == nil || outs[1].Feasible {
			t.Fatalf("invalid outage not reported as error: %+v", outs[1])
		}
		sum := Summarize(outs)
		if sum.Errors != 1 || sum.Feasible != 1 {
			t.Fatalf("summary %+v", sum)
		}
	}
}

func ones(n int) la.Vector {
	f := make(la.Vector, n)
	for i := range f {
		f[i] = 1
	}
	return f
}

func TestScreenDeterministicOrder(t *testing.T) {
	c := grid.Case9()
	s := &Screener{Base: c, Workers: 3}
	draws := loadDraws(c.NB(), 2, 7)
	scenarios := BuildScenarios(draws, nil)
	a := s.Screen(scenarios)
	b := s.Screen(scenarios)
	for i := range a {
		if a[i].Feasible != b[i].Feasible || a[i].Cost != b[i].Cost {
			t.Fatal("screening not deterministic in scenario order")
		}
	}
}
