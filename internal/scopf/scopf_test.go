package scopf

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/opf"
)

func loadDraws(nb, n int, seed int64) []la.Vector {
	r := rand.New(rand.NewSource(seed))
	out := make([]la.Vector, n)
	for i := range out {
		f := make(la.Vector, nb)
		for k := range f {
			f[k] = 0.9 + 0.2*r.Float64()
		}
		out[i] = f
	}
	return out
}

func TestContingenciesConnected(t *testing.T) {
	c := grid.Case9()
	cons := Contingencies(c)
	if len(cons) == 0 {
		t.Fatal("the 9-bus ring has no bridges; every outage should be screenable")
	}
	// case9 is a 6-branch ring with three radial generator legs: only
	// the ring branches are non-bridges.
	if len(cons) != 6 {
		t.Fatalf("got %d contingencies, want 6", len(cons))
	}
	for _, l := range cons {
		br := c.Branches[l]
		if br.From == 1 || br.From == 3 || (br.From == 8 && br.To == 2) {
			t.Fatalf("generator leg %d-%d treated as non-bridge", br.From, br.To)
		}
	}
	// case14 has radial spurs (e.g. 7-8); bridge outages must be excluded.
	c14 := grid.Case14()
	for _, l := range Contingencies(c14) {
		br := c14.Branches[l]
		if br.From == 7 && br.To == 8 {
			t.Fatal("bridge 7-8 not excluded")
		}
	}
}

func TestBuildScenarios(t *testing.T) {
	draws := loadDraws(9, 3, 1)
	sc := BuildScenarios(draws, []int{0, 4})
	if len(sc) != 3*3 {
		t.Fatalf("%d scenarios, want 9", len(sc))
	}
	if sc[0].OutBranch != -1 || sc[1].OutBranch != 0 {
		t.Fatal("scenario ordering wrong")
	}
}

func TestScreenColdStart(t *testing.T) {
	c := grid.Case9()
	s := &Screener{Base: c, Workers: 4}
	draws := loadDraws(c.NB(), 2, 2)
	outs := s.Screen(BuildScenarios(draws, Contingencies(c)[:3]))
	sum := Summarize(outs)
	if sum.Total != 8 {
		t.Fatalf("total %d", sum.Total)
	}
	if sum.Feasible < 6 {
		t.Errorf("only %d/%d scenarios feasible on the lightly-loaded ring", sum.Feasible, sum.Total)
	}
	if sum.Feasible > 0 && sum.WorstCost <= 0 {
		t.Error("worst cost not recorded")
	}
}

func TestScreenWarmStart(t *testing.T) {
	c := grid.Case14() // unrated branches: outages keep the layout
	o := opf.Prepare(c)
	set, err := dataset.Generate(c, dataset.DefaultPreparer, dataset.Options{N: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mtl.Config{Variant: mtl.VariantMTL, Hierarchy: true, DetachPeriod: 4, Seed: 5}
	m := mtl.New(o.Lay, cfg)
	if _, err := mtl.Train(m, nil, set, mtl.TrainConfig{Epochs: 150, BatchSize: 12, Seed: 5}); err != nil {
		t.Fatal(err)
	}

	draws := loadDraws(c.NB(), 3, 6)
	cons := Contingencies(c)[:4]
	scenarios := BuildScenarios(draws, cons)

	warm := &Screener{Base: c, Model: m, Workers: 4}
	cold := &Screener{Base: c, Workers: 4}
	wOut := Summarize(warm.Screen(scenarios))
	cOut := Summarize(cold.Screen(scenarios))

	if wOut.Feasible != cOut.Feasible {
		t.Fatalf("warm screening changed feasibility: %d vs %d", wOut.Feasible, cOut.Feasible)
	}
	if wOut.WarmConverged == 0 {
		t.Fatal("no scenario accepted the warm start")
	}
	// Warm screening must reduce the mean iteration count (the paper's
	// SC-ACOPF use case for Smart-PGSim).
	if wOut.MeanIterations >= cOut.MeanIterations {
		t.Errorf("warm mean iterations %.1f not below cold %.1f",
			wOut.MeanIterations, cOut.MeanIterations)
	}
}

func TestScreenDeterministicOrder(t *testing.T) {
	c := grid.Case9()
	s := &Screener{Base: c, Workers: 3}
	draws := loadDraws(c.NB(), 2, 7)
	scenarios := BuildScenarios(draws, nil)
	a := s.Screen(scenarios)
	b := s.Screen(scenarios)
	for i := range a {
		if a[i].Feasible != b[i].Feasible || a[i].Cost != b[i].Cost {
			t.Fatal("screening not deterministic in scenario order")
		}
	}
}
