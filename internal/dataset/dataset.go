// Package dataset generates and stores the training corpus of
// Smart-PGSim: load samples drawn uniformly from [(1−t)·Pd, (1+t)·Pd]
// per bus (the paper uses t = 10 %), each labelled with the exact OPF
// solution (X, λ, µ, Z) and cost collected from the MIPS solver.
package dataset

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/batch"
	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/opf"
)

// Sample is one labelled problem instance.
type Sample struct {
	// Factors are the per-bus load multipliers that define the instance.
	Factors la.Vector
	// Input is the model input [Pd; Qd] in per unit (2·nb values).
	Input la.Vector
	// Ground-truth solver state.
	X, Lam, Mu, Z la.Vector
	Cost          float64
	Iterations    int
	SolveTime     time.Duration
}

// Set is a labelled dataset for one power system.
type Set struct {
	CaseName string
	NB       int
	Samples  []Sample
	// Failed counts load draws whose cold-start OPF did not converge
	// (excluded from Samples).
	Failed int
}

// Options configures generation.
type Options struct {
	N         int     // number of samples (default 100)
	Variation float64 // load variation t (default 0.10)
	Seed      int64
	// Workers sizes the solve pool; 0 resolves through the batch
	// engine's chain (PGSIM_WORKERS, -workers, GOMAXPROCS). The sample
	// set is bit-identical for every worker count.
	Workers int
	// OnProgress, when non-nil, is reported one call per completed solve.
	OnProgress func(done, total int)
}

// Generate draws Options.N load scenarios around the case's base load and
// solves each to optimality with the cold-start interior-point method,
// fanning the solves out across the batch worker pool. The OPF structure
// (Ybus, rated-branch subset, bounds) is prepared once on the base case
// and rebound per perturbation, since load scaling leaves it unchanged.
func Generate(c *grid.Case, o opfPreparer, opt Options) (*Set, error) {
	if opt.N == 0 {
		opt.N = 100
	}
	if opt.Variation == 0 {
		opt.Variation = 0.10
	}
	nb := c.NB()
	// Factors are drawn sequentially from one stream so the scenario set
	// is a pure function of (Seed, N, Variation), independent of workers.
	rng := rand.New(rand.NewSource(opt.Seed))
	factors := make([]la.Vector, opt.N)
	for s := range factors {
		f := make(la.Vector, nb)
		for i := range f {
			f[i] = 1 - opt.Variation + 2*opt.Variation*rng.Float64()
		}
		factors[s] = f
	}

	base := o(c)
	ordered, err := batch.Map(opt.N, batch.Options{
		Workers: opt.Workers, Seed: opt.Seed, OnProgress: opt.OnProgress,
	}, func(t *batch.Task) (*Sample, error) {
		inst := base.Perturb(factors[t.Index])
		r, err := inst.Solve(nil, opf.Options{})
		if err != nil || !r.Converged {
			return nil, nil // failed draws are counted, not fatal
		}
		return &Sample{
			Factors:    factors[t.Index],
			Input:      InputVector(inst.Case),
			X:          r.X,
			Lam:        r.Lam,
			Mu:         r.Mu,
			Z:          r.Z,
			Cost:       r.Cost,
			Iterations: r.Iterations,
			SolveTime:  r.SolveTime,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	set := &Set{CaseName: c.Name, NB: nb, Samples: make([]Sample, 0, opt.N)}
	for _, s := range ordered {
		if s != nil {
			set.Samples = append(set.Samples, *s)
		} else {
			set.Failed++
		}
	}
	if len(set.Samples) == 0 {
		return nil, fmt.Errorf("dataset: no load draw of %q solved (%d attempts)", c.Name, opt.N)
	}
	return set, nil
}

// opfPreparer abstracts opf.Prepare. It is invoked once on the base case;
// per-perturbation instances are derived with (*opf.OPF).Rebind, which
// shares the assembled Ybus and constraint structure across all load
// draws instead of rebuilding them per sample.
type opfPreparer func(*grid.Case) *opf.OPF

// DefaultPreparer simply calls opf.Prepare.
func DefaultPreparer(c *grid.Case) *opf.OPF { return opf.Prepare(c) }

// InputVector packs the per-unit loads [Pd; Qd] of a case as model input.
func InputVector(c *grid.Case) la.Vector {
	nb := c.NB()
	in := make(la.Vector, 2*nb)
	for i, b := range c.Buses {
		in[i] = b.Pd / c.BaseMVA
		in[nb+i] = b.Qd / c.BaseMVA
	}
	return in
}

// Split partitions the set into train and validation subsets (the paper
// uses 8000/2000). frac is the training fraction in (0,1).
func (s *Set) Split(frac float64) (train, val *Set) {
	if frac <= 0 || frac >= 1 {
		panic("dataset: split fraction must be in (0,1)")
	}
	n := int(float64(len(s.Samples)) * frac)
	if n == 0 {
		n = 1
	}
	if n >= len(s.Samples) {
		n = len(s.Samples) - 1
	}
	train = &Set{CaseName: s.CaseName, NB: s.NB, Samples: s.Samples[:n]}
	val = &Set{CaseName: s.CaseName, NB: s.NB, Samples: s.Samples[n:]}
	return train, val
}

// Save serializes the set with encoding/gob.
func (s *Set) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s)
}

// Load restores a set saved with Save.
func Load(r io.Reader) (*Set, error) {
	var s Set
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Inputs stacks the sample inputs as a matrix (rows = samples).
func (s *Set) Inputs() *la.Matrix {
	if len(s.Samples) == 0 {
		return la.NewMatrix(0, 0)
	}
	m := la.NewMatrix(len(s.Samples), len(s.Samples[0].Input))
	for r, smp := range s.Samples {
		copy(m.Row(r), smp.Input)
	}
	return m
}

// Stack extracts one target field as a matrix (rows = samples).
func (s *Set) Stack(field func(*Sample) la.Vector) *la.Matrix {
	if len(s.Samples) == 0 {
		return la.NewMatrix(0, 0)
	}
	first := field(&s.Samples[0])
	m := la.NewMatrix(len(s.Samples), len(first))
	for r := range s.Samples {
		copy(m.Row(r), field(&s.Samples[r]))
	}
	return m
}

// MeanIterations reports the average cold-start iteration count — the
// MIPS baseline of Figure 4(b).
func (s *Set) MeanIterations() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	t := 0.0
	for _, smp := range s.Samples {
		t += float64(smp.Iterations)
	}
	return t / float64(len(s.Samples))
}

// MeanSolveTime reports the average cold-start solve time.
func (s *Set) MeanSolveTime() time.Duration {
	if len(s.Samples) == 0 {
		return 0
	}
	var t time.Duration
	for _, smp := range s.Samples {
		t += smp.SolveTime
	}
	return t / time.Duration(len(s.Samples))
}
