package dataset

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/opf"
)

func genSmall(t *testing.T, n int) *Set {
	t.Helper()
	set, err := Generate(grid.Case9(), DefaultPreparer, Options{N: n, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestGenerateBasics(t *testing.T) {
	set := genSmall(t, 12)
	if len(set.Samples)+set.Failed != 12 {
		t.Fatalf("samples %d + failed %d != 12", len(set.Samples), set.Failed)
	}
	if set.Failed > 2 {
		t.Errorf("too many failures on case9: %d", set.Failed)
	}
	for i, s := range set.Samples {
		if len(s.Input) != 18 {
			t.Fatalf("sample %d input len %d", i, len(s.Input))
		}
		if s.Cost <= 0 || s.Iterations <= 0 {
			t.Fatalf("sample %d has cost %v iters %d", i, s.Cost, s.Iterations)
		}
		for _, f := range s.Factors {
			if f < 0.9 || f > 1.1 {
				t.Fatalf("factor %v outside ±10%%", f)
			}
		}
	}
}

func TestGenerateDeterministicFactors(t *testing.T) {
	a := genSmall(t, 6)
	b := genSmall(t, 6)
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sample counts differ")
	}
	for i := range a.Samples {
		for k := range a.Samples[i].Factors {
			if a.Samples[i].Factors[k] != b.Samples[i].Factors[k] {
				t.Fatal("factors not deterministic")
			}
		}
		if math.Abs(a.Samples[i].Cost-b.Samples[i].Cost) > 1e-6 {
			t.Fatal("costs differ between identical runs")
		}
	}
}

func TestGroundTruthIsOptimal(t *testing.T) {
	// Each stored X must satisfy the constraints of its own instance.
	set := genSmall(t, 4)
	base := grid.Case9()
	for _, s := range set.Samples {
		c := base.Clone()
		c.ScaleLoads(s.Factors)
		o := opf.Prepare(c)
		g, h := o.Constraints(s.X)
		if g.NormInf() > 1e-5 {
			t.Fatalf("stored X violates balance by %v", g.NormInf())
		}
		for _, v := range h {
			if v > 1e-5 {
				t.Fatalf("stored X violates flow limit by %v", v)
			}
		}
	}
}

func TestWarmStartFromStoredSolution(t *testing.T) {
	// The dataset's (X, λ, µ, Z) must warm-start its own instance to
	// convergence in a few iterations — the core assumption of the paper.
	set := genSmall(t, 3)
	base := grid.Case9()
	for _, s := range set.Samples {
		c := base.Clone()
		c.ScaleLoads(s.Factors)
		o := opf.Prepare(c)
		r, err := o.Solve(&opf.Start{X: s.X, Lam: s.Lam, Mu: s.Mu, Z: s.Z}, opf.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Iterations > s.Iterations/2 {
			t.Errorf("warm start %d iterations vs cold %d", r.Iterations, s.Iterations)
		}
	}
}

func TestSplit(t *testing.T) {
	set := genSmall(t, 10)
	train, val := set.Split(0.8)
	if len(train.Samples)+len(val.Samples) != len(set.Samples) {
		t.Fatal("split lost samples")
	}
	if len(train.Samples) == 0 || len(val.Samples) == 0 {
		t.Fatal("degenerate split")
	}
}

func TestSplitPanicsOnBadFrac(t *testing.T) {
	set := &Set{Samples: make([]Sample, 4)}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	set.Split(1.5)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	set := genSmall(t, 5)
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CaseName != set.CaseName || len(got.Samples) != len(set.Samples) {
		t.Fatal("round trip changed set")
	}
	if got.Samples[0].Cost != set.Samples[0].Cost {
		t.Fatal("cost changed")
	}
}

func TestInputVector(t *testing.T) {
	c := grid.Case9()
	in := InputVector(c)
	// Bus 5 (index 4) has 90 MW + 30 MVAr on a 100 MVA base.
	if math.Abs(in[4]-0.9) > 1e-12 || math.Abs(in[9+4]-0.3) > 1e-12 {
		t.Fatalf("InputVector = %v", in)
	}
}

func TestStackAndInputs(t *testing.T) {
	set := genSmall(t, 4)
	m := set.Inputs()
	if m.Rows != len(set.Samples) || m.Cols != 18 {
		t.Fatalf("Inputs dims %dx%d", m.Rows, m.Cols)
	}
	xs := set.Stack(func(s *Sample) la.Vector { return s.X })
	if xs.Rows != len(set.Samples) || xs.Cols != len(set.Samples[0].X) {
		t.Fatal("Stack dims wrong")
	}
	if xs.At(0, 0) != set.Samples[0].X[0] {
		t.Fatal("Stack copied wrong values")
	}
}

func TestMeanStats(t *testing.T) {
	set := genSmall(t, 4)
	if set.MeanIterations() <= 0 || set.MeanSolveTime() <= 0 {
		t.Fatal("means not positive")
	}
}
