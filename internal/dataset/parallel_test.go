package dataset

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/grid"
)

// TestGenerateParallelEquivalence: the parallel path must produce a
// bit-identical dataset to the sequential path under the same seed —
// every sample field except the wall-clock SolveTime.
func TestGenerateParallelEquivalence(t *testing.T) {
	const n = 24
	seq, err := Generate(grid.Case9(), DefaultPreparer, Options{N: n, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Generate(grid.Case9(), DefaultPreparer, Options{N: n, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Samples) != len(par.Samples) || seq.Failed != par.Failed {
		t.Fatalf("sample counts differ: seq %d/%d failed, par %d/%d failed",
			len(seq.Samples), seq.Failed, len(par.Samples), par.Failed)
	}
	for i := range seq.Samples {
		a, b := &seq.Samples[i], &par.Samples[i]
		if a.Cost != b.Cost || a.Iterations != b.Iterations {
			t.Fatalf("sample %d: cost/iter differ (%v/%d vs %v/%d)",
				i, a.Cost, a.Iterations, b.Cost, b.Iterations)
		}
		vecs := []struct {
			name string
			x, y []float64
		}{
			{"Factors", a.Factors, b.Factors},
			{"Input", a.Input, b.Input},
			{"X", a.X, b.X},
			{"Lam", a.Lam, b.Lam},
			{"Mu", a.Mu, b.Mu},
			{"Z", a.Z, b.Z},
		}
		for _, v := range vecs {
			if len(v.x) != len(v.y) {
				t.Fatalf("sample %d: %s length differs", i, v.name)
			}
			for j := range v.x {
				if v.x[j] != v.y[j] {
					t.Fatalf("sample %d: %s[%d] = %v sequential vs %v parallel",
						i, v.name, j, v.x[j], v.y[j])
				}
			}
		}
	}
}

// BenchmarkGenerate measures dataset generation at 1 worker, 4 workers
// and all cores — on a ≥4-core host the 4-worker run shows the >2×
// speedup the batch engine exists for. Run with
//
//	go test -bench BenchmarkGenerate -benchtime 1x ./internal/dataset/
func BenchmarkGenerate(b *testing.B) {
	counts := []int{1, 4}
	if all := runtime.GOMAXPROCS(0); all > 4 {
		counts = append(counts, all)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Generate(grid.Case9(), DefaultPreparer, Options{N: 64, Seed: 7, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
