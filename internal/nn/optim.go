package nn

import "math"

// Adam is the Adam optimizer (Kingma & Ba) over a fixed parameter list.
type Adam struct {
	LR           float64 // default 1e-3
	Beta1, Beta2 float64 // defaults 0.9, 0.999
	Eps          float64 // default 1e-8
	WeightDecay  float64 // L2 coefficient, default 0

	params []*Param
	m, v   [][]float64
	t      int
}

// NewAdam binds the optimizer to the parameter list.
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	if a.LR == 0 {
		a.LR = 1e-3
	}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Val))
		a.v[i] = make([]float64, len(p.Val))
	}
	return a
}

// Step applies one update from the accumulated gradients.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		p.Version++
		for k := range p.Val {
			g := p.Grad[k]
			if a.WeightDecay != 0 {
				g += a.WeightDecay * p.Val[k]
			}
			m[k] = a.Beta1*m[k] + (1-a.Beta1)*g
			v[k] = a.Beta2*v[k] + (1-a.Beta2)*g*g
			p.Val[k] -= a.LR * (m[k] / bc1) / (math.Sqrt(v[k]/bc2) + a.Eps)
		}
	}
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	params []*Param
	vel    [][]float64
}

// NewSGD binds the optimizer to the parameter list.
func NewSGD(params []*Param, lr, momentum float64) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, params: params}
	s.vel = make([][]float64, len(params))
	for i, p := range params {
		s.vel[i] = make([]float64, len(p.Val))
	}
	return s
}

// Step applies one update.
func (s *SGD) Step() {
	for i, p := range s.params {
		v := s.vel[i]
		p.Version++
		for k := range p.Val {
			v[k] = s.Momentum*v[k] - s.LR*p.Grad[k]
			p.Val[k] += v[k]
		}
	}
}
