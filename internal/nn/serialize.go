package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// SaveParams writes the parameter values (not gradients) in list order.
func SaveParams(w io.Writer, params []*Param) error {
	enc := gob.NewEncoder(w)
	vals := make([][]float64, len(params))
	for i, p := range params {
		vals[i] = p.Val
	}
	return enc.Encode(vals)
}

// LoadParams restores values saved by SaveParams into an identically
// shaped parameter list.
func LoadParams(r io.Reader, params []*Param) error {
	dec := gob.NewDecoder(r)
	var vals [][]float64
	if err := dec.Decode(&vals); err != nil {
		return err
	}
	if len(vals) != len(params) {
		return fmt.Errorf("nn: snapshot has %d tensors, model has %d", len(vals), len(params))
	}
	for i, p := range params {
		if len(vals[i]) != len(p.Val) {
			return fmt.Errorf("nn: tensor %d (%s) has %d values, model expects %d",
				i, p.Name, len(vals[i]), len(p.Val))
		}
		copy(p.Val, vals[i])
	}
	return nil
}
