package nn

// Serving-path inference. Training runs in float64 (nn.go), but the
// serving forward pass is a chain of single-row matvecs whose cost is
// pure memory traffic over the weight matrices — at case300 scale the
// model streams ~46 MB of weights per prediction. Mainstream DL
// frameworks (including the one behind the original Smart-PGSim model)
// serve in float32, so Infer streams a float32 copy of each Linear's
// weights: half the traffic, and precision far beyond what a warm-start
// prediction needs — the interior-point solver corrects the iterate,
// and a cold restart guards divergence. The float64 master weights stay
// the source of truth: each Linear lazily materializes its float32 copy
// and revalidates it against the owning Params' Version counters, which
// every mutation path (optimizer steps, snapshot loads, weight copies)
// bumps.
//
// Like Forward, Infer is not safe for concurrent use on one module
// instance (the lazy cache build races); the established convention of
// one Model replica per worker covers it.

import "math"

// ensure32 (re)builds the float32 weight copy if the master weights
// changed since it was last materialized.
func (l *Linear) ensure32() {
	if l.wbVer == l.W.Version+l.B.Version+1 {
		return
	}
	if l.w32 == nil {
		l.w32 = make([]float32, len(l.W.Val))
		l.b32 = make([]float32, len(l.B.Val))
	}
	for i, v := range l.W.Val {
		l.w32[i] = float32(v)
	}
	for i, v := range l.B.Val {
		l.b32[i] = float32(v)
	}
	l.wbVer = l.W.Version + l.B.Version + 1
}

// infer32 is the single-sample float32 matvec y = W·x + b, unrolled
// four outputs per pass like Forward so each loaded input feature feeds
// four accumulators.
func (l *Linear) infer32(x []float32) []float32 {
	if len(x) != l.In {
		panic("nn: Linear infer input width mismatch")
	}
	l.ensure32()
	in := l.In
	y := make([]float32, l.Out)
	o := 0
	for ; o+4 <= l.Out; o += 4 {
		w0 := l.w32[o*in : o*in+in]
		w1 := l.w32[(o+1)*in : (o+1)*in+in]
		w2 := l.w32[(o+2)*in : (o+2)*in+in]
		w3 := l.w32[(o+3)*in : (o+3)*in+in]
		s0, s1, s2, s3 := l.b32[o], l.b32[o+1], l.b32[o+2], l.b32[o+3]
		for i, xi := range x {
			s0 += w0[i] * xi
			s1 += w1[i] * xi
			s2 += w2[i] * xi
			s3 += w3[i] * xi
		}
		y[o], y[o+1], y[o+2], y[o+3] = s0, s1, s2, s3
	}
	for ; o < l.Out; o++ {
		w := l.w32[o*in : o*in+in]
		s := l.b32[o]
		for i, xi := range x {
			s += w[i] * xi
		}
		y[o] = s
	}
	return y
}

// Materialize32 eagerly builds the float32 weight caches of every
// Linear in the chain, so a serving replica pays the conversion at
// deploy time instead of inside its first timed prediction.
func (s *Sequential) Materialize32() {
	for _, m := range s.Mods {
		if l, ok := m.(*Linear); ok {
			l.ensure32()
		}
	}
}

// Infer runs the chain on one sample in float32. Activations may be
// applied in place, so the returned slice can alias x when the chain
// starts with an activation; callers that reuse x must pass a copy.
// Training caches are untouched — Infer never interleaves with an
// in-flight Forward/Backward pair.
func (s *Sequential) Infer(x []float32) []float32 {
	for _, m := range s.Mods {
		switch t := m.(type) {
		case *Linear:
			x = t.infer32(x)
		case *ReLU:
			for i, v := range x {
				if v < 0 {
					x[i] = 0
				}
			}
		case *Sigmoid:
			for i, v := range x {
				x[i] = float32(1 / (1 + math.Exp(-float64(v))))
			}
		default:
			panic("nn: Infer does not support this module type")
		}
	}
	return x
}
