// Package nn is the minimal deep-learning framework behind the
// Smart-PGSim multitask model: dense layers, ReLU/sigmoid activations,
// reverse-mode differentiation, Charbonnier and physics losses, and the
// Adam optimizer — float64 and stdlib only.
//
// Data layout: a batch is an la.Matrix with one sample per row. Modules
// cache their forward inputs, so one Forward must precede each Backward
// on the same module instance (the usual layer-object convention).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/la"
)

// Param is one learnable tensor with its gradient accumulator.
type Param struct {
	Name string
	Val  []float64
	Grad []float64

	// Version counts in-place rewrites of Val after construction
	// (optimizer steps, snapshot loads, weight copies). The serving-path
	// float32 weight caches (infer.go) revalidate against it, so every
	// code path that mutates Val must increment it.
	Version uint64
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Module is a differentiable block.
type Module interface {
	// Forward consumes a batch (rows = samples) and returns the output
	// batch, caching whatever Backward needs.
	Forward(x *la.Matrix) *la.Matrix
	// Backward consumes ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients.
	Backward(gradOut *la.Matrix) *la.Matrix
	// Params returns the learnable tensors (empty for activations).
	Params() []*Param
}

// Linear is a fully-connected layer y = x·Wᵀ + b.
type Linear struct {
	In, Out int
	W       *Param // Out×In, row-major
	B       *Param // Out
	xCache  *la.Matrix

	// float32 serving-path weight cache (infer.go). wbVer stores the
	// Params' Version+1 at materialization, so the zero value means
	// "never built".
	w32   []float32
	b32   []float32
	wbVer uint64
}

// NewLinear creates a dense layer with He-uniform initialization drawn
// from rng (pass a deterministic source for reproducible models).
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In: in, Out: out,
		W: &Param{Name: fmt.Sprintf("linear%dx%d.W", out, in), Val: make([]float64, in*out), Grad: make([]float64, in*out)},
		B: &Param{Name: fmt.Sprintf("linear%dx%d.b", out, in), Val: make([]float64, out), Grad: make([]float64, out)},
	}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range l.W.Val {
		l.W.Val[i] = (2*rng.Float64() - 1) * bound
	}
	return l
}

// Forward computes y = x·Wᵀ + b. The output loop is unrolled four
// neurons at a time so each loaded input feature feeds four independent
// accumulators — serving-path inference is a single-row matvec whose
// cost is pure memory traffic over W, and the unroll keeps the x row in
// registers instead of re-streaming it per output.
func (l *Linear) Forward(x *la.Matrix) *la.Matrix {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear expects %d features, got %d", l.In, x.Cols))
	}
	l.xCache = x
	y := la.NewMatrix(x.Rows, l.Out)
	in := l.In
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		yr := y.Row(r)
		o := 0
		for ; o+4 <= l.Out; o += 4 {
			w0 := l.W.Val[o*in : o*in+in]
			w1 := l.W.Val[(o+1)*in : (o+1)*in+in]
			w2 := l.W.Val[(o+2)*in : (o+2)*in+in]
			w3 := l.W.Val[(o+3)*in : (o+3)*in+in]
			s0, s1, s2, s3 := l.B.Val[o], l.B.Val[o+1], l.B.Val[o+2], l.B.Val[o+3]
			for i, xi := range xr {
				s0 += w0[i] * xi
				s1 += w1[i] * xi
				s2 += w2[i] * xi
				s3 += w3[i] * xi
			}
			yr[o], yr[o+1], yr[o+2], yr[o+3] = s0, s1, s2, s3
		}
		for ; o < l.Out; o++ {
			w := l.W.Val[o*in : o*in+in]
			s := l.B.Val[o]
			for i, xi := range xr {
				s += w[i] * xi
			}
			yr[o] = s
		}
	}
	return y
}

// Backward accumulates dW, db and returns ∂L/∂x.
func (l *Linear) Backward(gradOut *la.Matrix) *la.Matrix {
	x := l.xCache
	if x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	if gradOut.Rows != x.Rows || gradOut.Cols != l.Out {
		panic("nn: Linear.Backward shape mismatch")
	}
	gin := la.NewMatrix(x.Rows, l.In)
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		gr := gradOut.Row(r)
		gi := gin.Row(r)
		for o := 0; o < l.Out; o++ {
			g := gr[o]
			if g == 0 {
				continue
			}
			l.B.Grad[o] += g
			w := l.W.Val[o*l.In : (o+1)*l.In]
			dw := l.W.Grad[o*l.In : (o+1)*l.In]
			for i, xi := range xr {
				dw[i] += g * xi
				gi[i] += g * w[i]
			}
		}
	}
	return gin
}

// Params returns W and b.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ReLU is the rectified linear activation.
type ReLU struct{ mask []bool }

// Forward clamps negatives to zero.
func (a *ReLU) Forward(x *la.Matrix) *la.Matrix {
	y := x.Clone()
	a.mask = make([]bool, len(y.Data))
	for i, v := range y.Data {
		if v > 0 {
			a.mask[i] = true
		} else {
			y.Data[i] = 0
		}
	}
	return y
}

// Backward gates the gradient by the forward mask.
func (a *ReLU) Backward(gradOut *la.Matrix) *la.Matrix {
	if a.mask == nil || len(a.mask) != len(gradOut.Data) {
		panic("nn: ReLU.Backward before matching Forward")
	}
	g := gradOut.Clone()
	for i := range g.Data {
		if !a.mask[i] {
			g.Data[i] = 0
		}
	}
	return g
}

// Params returns nil (no learnables).
func (a *ReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation, used by the Z and µ heads to bound
// predictions into (0, 1) — the paper's hard-constraint projection.
type Sigmoid struct{ out *la.Matrix }

// Forward applies 1/(1+e^-x).
func (a *Sigmoid) Forward(x *la.Matrix) *la.Matrix {
	y := la.NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = 1 / (1 + math.Exp(-v))
	}
	a.out = y
	return y
}

// Backward multiplies by σ(x)(1−σ(x)).
func (a *Sigmoid) Backward(gradOut *la.Matrix) *la.Matrix {
	if a.out == nil {
		panic("nn: Sigmoid.Backward before Forward")
	}
	g := la.NewMatrix(gradOut.Rows, gradOut.Cols)
	for i := range g.Data {
		s := a.out.Data[i]
		g.Data[i] = gradOut.Data[i] * s * (1 - s)
	}
	return g
}

// Params returns nil.
func (a *Sigmoid) Params() []*Param { return nil }

// Sequential chains modules.
type Sequential struct{ Mods []Module }

// NewSequential builds a chain.
func NewSequential(mods ...Module) *Sequential { return &Sequential{Mods: mods} }

// Forward runs the chain left to right.
func (s *Sequential) Forward(x *la.Matrix) *la.Matrix {
	for _, m := range s.Mods {
		x = m.Forward(x)
	}
	return x
}

// Backward runs the chain right to left.
func (s *Sequential) Backward(gradOut *la.Matrix) *la.Matrix {
	for i := len(s.Mods) - 1; i >= 0; i-- {
		gradOut = s.Mods[i].Backward(gradOut)
	}
	return gradOut
}

// Params concatenates the chain's parameters.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, m := range s.Mods {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// MLP builds Linear+ReLU stacks with the given layer widths; the final
// layer is linear (no activation) unless sigmoidOut is set. The output
// layer's weights are initialized small so a sigmoid output starts near
// 0.5 (un-saturated) instead of pinned at 0/1 where its gradient
// vanishes.
func MLP(rng *rand.Rand, sigmoidOut bool, widths ...int) *Sequential {
	if len(widths) < 2 {
		panic("nn: MLP needs at least input and output widths")
	}
	var mods []Module
	for i := 0; i+1 < len(widths); i++ {
		lin := NewLinear(widths[i], widths[i+1], rng)
		if i+2 == len(widths) {
			for k := range lin.W.Val {
				lin.W.Val[k] *= 0.1
			}
		}
		mods = append(mods, lin)
		if i+2 < len(widths) {
			mods = append(mods, &ReLU{})
		}
	}
	if sigmoidOut {
		mods = append(mods, &Sigmoid{})
	}
	return NewSequential(mods...)
}

// ZeroGrads clears every parameter gradient in the list.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// NumParams counts scalar learnables.
func NumParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += len(p.Val)
	}
	return n
}
