package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

// inferVsForward runs both paths on the same input and returns the
// largest relative disagreement.
func inferVsForward(t *testing.T, s *Sequential, in []float64) float64 {
	t.Helper()
	x := la.NewMatrix(1, len(in))
	copy(x.Data, in)
	want := s.Forward(x).Row(0)

	x32 := make([]float32, len(in))
	for i, v := range in {
		x32[i] = float32(v)
	}
	got := s.Infer(x32)
	if len(got) != len(want) {
		t.Fatalf("Infer returned %d outputs, Forward %d", len(got), len(want))
	}
	worst := 0.0
	for i := range want {
		d := math.Abs(float64(got[i])-want[i]) / (1 + math.Abs(want[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestInferMatchesForward pins the float32 serving path to the float64
// training path within single-precision rounding, across plain, ReLU
// and sigmoid-terminated stacks and ragged widths that exercise the
// unroll remainder.
func TestInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name       string
		sigmoidOut bool
		widths     []int
	}{
		{"deep-relu", false, []int{37, 64, 51, 23}},
		{"sigmoid-out", true, []int{19, 30, 11}},
		{"single-layer", false, []int{5, 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := MLP(rng, tc.sigmoidOut, tc.widths...)
			in := make([]float64, tc.widths[0])
			for i := range in {
				in[i] = rng.NormFloat64()
			}
			if worst := inferVsForward(t, s, in); worst > 1e-5 {
				t.Fatalf("float32 path off by %v relative", worst)
			}
		})
	}
}

// TestInferCacheInvalidation pins the Version protocol: an optimizer
// step after the float32 cache is built must be visible on the next
// Infer (stale caches would silently serve pre-step weights).
func TestInferCacheInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := MLP(rng, false, 8, 12, 4)
	in := make([]float64, 8)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	inferVsForward(t, s, in) // builds the caches

	// One Adam step off a nonzero gradient.
	x := la.NewMatrix(1, 8)
	copy(x.Data, in)
	out := s.Forward(x)
	g := la.NewMatrix(1, 4)
	for i := range g.Data {
		g.Data[i] = out.Data[i] - 1
	}
	s.Backward(g)
	opt := NewAdam(s.Params(), 0.1)
	opt.Step()
	ZeroGrads(s.Params())

	if worst := inferVsForward(t, s, in); worst > 1e-5 {
		t.Fatalf("Infer served stale weights after optimizer step: off by %v", worst)
	}

	// Direct weight copy paths (snapshot load, clone) bump Version too.
	for _, p := range s.Params() {
		for i := range p.Val {
			p.Val[i] *= 1.5
		}
		p.Version++
	}
	if worst := inferVsForward(t, s, in); worst > 1e-5 {
		t.Fatalf("Infer served stale weights after manual bump: off by %v", worst)
	}
}
