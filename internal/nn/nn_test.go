package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/la"
)

func randBatch(rng *rand.Rand, rows, cols int) *la.Matrix {
	m := la.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// numericalGrad computes dLoss/dParam by central differences, where loss
// is MSE between the net output and a fixed target.
func numericalGrad(net Module, x, target *la.Matrix, p *Param, k int) float64 {
	h := 1e-6
	orig := p.Val[k]
	p.Val[k] = orig + h
	lp, _ := (MSE{}).Eval(net.Forward(x), target)
	p.Val[k] = orig - h
	lm, _ := (MSE{}).Eval(net.Forward(x), target)
	p.Val[k] = orig
	return (lp - lm) / (2 * h)
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lin := NewLinear(4, 3, rng)
	x := randBatch(rng, 5, 4)
	target := randBatch(rng, 5, 3)
	ZeroGrads(lin.Params())
	_, g := (MSE{}).Eval(lin.Forward(x), target)
	lin.Backward(g)
	for _, p := range lin.Params() {
		for k := range p.Val {
			want := numericalGrad(lin, x, target, p, k)
			if math.Abs(p.Grad[k]-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, k, p.Grad[k], want)
			}
		}
	}
}

func TestMLPGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := MLP(rng, false, 3, 8, 8, 2)
	x := randBatch(rng, 4, 3)
	target := randBatch(rng, 4, 2)
	ZeroGrads(net.Params())
	_, g := (MSE{}).Eval(net.Forward(x), target)
	net.Backward(g)
	for _, p := range net.Params() {
		for k := 0; k < len(p.Val); k += 3 { // sample every third weight
			want := numericalGrad(net, x, target, p, k)
			if math.Abs(p.Grad[k]-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, k, p.Grad[k], want)
			}
		}
	}
}

func TestSigmoidMLPGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := MLP(rng, true, 3, 6, 2)
	x := randBatch(rng, 4, 3)
	target := randBatch(rng, 4, 2)
	ZeroGrads(net.Params())
	_, g := (MSE{}).Eval(net.Forward(x), target)
	net.Backward(g)
	for _, p := range net.Params() {
		for k := 0; k < len(p.Val); k += 2 {
			want := numericalGrad(net, x, target, p, k)
			if math.Abs(p.Grad[k]-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, k, p.Grad[k], want)
			}
		}
	}
}

func TestInputGradCheck(t *testing.T) {
	// Backward's return value is ∂L/∂x — validated by perturbing inputs.
	rng := rand.New(rand.NewSource(4))
	net := MLP(rng, false, 3, 5, 2)
	x := randBatch(rng, 2, 3)
	target := randBatch(rng, 2, 2)
	ZeroGrads(net.Params())
	_, g := (MSE{}).Eval(net.Forward(x), target)
	gin := net.Backward(g)
	h := 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp, _ := (MSE{}).Eval(net.Forward(x), target)
		x.Data[i] = orig - h
		lm, _ := (MSE{}).Eval(net.Forward(x), target)
		x.Data[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(gin.Data[i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("input grad %d: analytic %v numeric %v", i, gin.Data[i], want)
		}
	}
}

func TestCharbonnierGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pred := randBatch(rng, 3, 4)
	target := randBatch(rng, 3, 4)
	c := Charbonnier{Eps: 1e-6, Weights: la.Vector{1, 2, 0.5, 1}}
	_, g := c.Eval(pred, target)
	h := 1e-7
	for i := range pred.Data {
		orig := pred.Data[i]
		pred.Data[i] = orig + h
		lp, _ := c.Eval(pred, target)
		pred.Data[i] = orig - h
		lm, _ := c.Eval(pred, target)
		pred.Data[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(g.Data[i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("charbonnier grad %d: %v vs %v", i, g.Data[i], want)
		}
	}
}

func TestCharbonnierApproachesL1(t *testing.T) {
	pred := la.NewMatrix(1, 1)
	pred.Data[0] = 3
	target := la.NewMatrix(1, 1)
	loss, _ := Charbonnier{Eps: 1e-12}.Eval(pred, target)
	if math.Abs(loss-3) > 1e-9 {
		t.Fatalf("loss = %v, want |3|", loss)
	}
}

func TestSigmoidRange(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		x := la.NewMatrix(1, 1)
		x.Data[0] = v
		y := (&Sigmoid{}).Forward(x)
		return y.Data[0] > 0 && y.Data[0] < 1 || (v > 700 && y.Data[0] == 1) || (v < -700 && y.Data[0] == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReLUProperty(t *testing.T) {
	// ReLU output is max(0, x) elementwise, and gradients vanish exactly
	// where the input was non-positive.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randBatch(rng, 3, 5)
		r := &ReLU{}
		y := r.Forward(x)
		for i, v := range x.Data {
			if y.Data[i] != math.Max(0, v) {
				return false
			}
		}
		g := la.NewMatrix(3, 5)
		for i := range g.Data {
			g.Data[i] = 1
		}
		gi := r.Backward(g)
		for i, v := range x.Data {
			if (v > 0) != (gi.Data[i] == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAdamOptimizesQuadratic(t *testing.T) {
	// Minimize ||w - c||² directly through a Param.
	p := &Param{Val: make([]float64, 4), Grad: make([]float64, 4)}
	c := []float64{1, -2, 0.5, 3}
	opt := NewAdam([]*Param{p}, 0.05)
	for it := 0; it < 2000; it++ {
		p.ZeroGrad()
		for i := range p.Val {
			p.Grad[i] = 2 * (p.Val[i] - c[i])
		}
		opt.Step()
	}
	for i := range p.Val {
		if math.Abs(p.Val[i]-c[i]) > 1e-3 {
			t.Fatalf("Adam did not converge: %v vs %v", p.Val, c)
		}
	}
}

func TestSGDMomentumOptimizes(t *testing.T) {
	p := &Param{Val: []float64{5}, Grad: []float64{0}}
	opt := NewSGD([]*Param{p}, 0.05, 0.9)
	for it := 0; it < 500; it++ {
		p.ZeroGrad()
		p.Grad[0] = 2 * p.Val[0]
		opt.Step()
	}
	if math.Abs(p.Val[0]) > 1e-3 {
		t.Fatalf("SGD did not converge: %v", p.Val[0])
	}
}

func TestTrainSineRegression(t *testing.T) {
	// End-to-end: a small MLP fits sin(x) on [-2, 2].
	rng := rand.New(rand.NewSource(7))
	net := MLP(rng, false, 1, 32, 32, 1)
	opt := NewAdam(net.Params(), 3e-3)
	n := 128
	x := la.NewMatrix(n, 1)
	y := la.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		v := -2 + 4*float64(i)/float64(n-1)
		x.Data[i] = v
		y.Data[i] = math.Sin(v)
	}
	var loss float64
	for ep := 0; ep < 1500; ep++ {
		ZeroGrads(net.Params())
		pred := net.Forward(x)
		var g *la.Matrix
		loss, g = (MSE{}).Eval(pred, y)
		net.Backward(g)
		opt.Step()
	}
	if loss > 1e-3 {
		t.Fatalf("sine fit loss = %v", loss)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := MLP(rng, false, 3, 8, 2)
	x := randBatch(rng, 2, 3)
	want := net.Forward(x).Clone()
	var buf bytes.Buffer
	if err := SaveParams(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	net2 := MLP(rand.New(rand.NewSource(999)), false, 3, 8, 2)
	if err := LoadParams(&buf, net2.Params()); err != nil {
		t.Fatal(err)
	}
	got := net2.Forward(x)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatal("restored model differs")
		}
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := MLP(rng, false, 3, 8, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	other := MLP(rng, false, 3, 9, 2)
	if err := LoadParams(&buf, other.Params()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := MLP(rng, false, 4, 10, 3)
	// 4*10+10 + 10*3+3 = 83.
	if n := NumParams(net.Params()); n != 83 {
		t.Fatalf("NumParams = %d want 83", n)
	}
}

func TestGradAccumulation(t *testing.T) {
	// Two backward passes without ZeroGrads accumulate.
	rng := rand.New(rand.NewSource(12))
	lin := NewLinear(2, 1, rng)
	x := randBatch(rng, 1, 2)
	tgt := randBatch(rng, 1, 1)
	ZeroGrads(lin.Params())
	_, g := (MSE{}).Eval(lin.Forward(x), tgt)
	lin.Backward(g)
	once := append([]float64(nil), lin.W.Grad...)
	_, g = (MSE{}).Eval(lin.Forward(x), tgt)
	lin.Backward(g)
	for i := range once {
		if math.Abs(lin.W.Grad[i]-2*once[i]) > 1e-12 {
			t.Fatal("gradients did not accumulate")
		}
	}
}
