package nn

import (
	"math"

	"repro/internal/la"
)

// Charbonnier is the loss of Eqn 4 in the paper: a smooth L1,
// L = (1/N)·Σ w·sqrt((pred−target)² + ε²). Weight w is per-output-column
// (task weighting); pass nil for uniform weights.
type Charbonnier struct {
	Eps     float64   // paper uses 1e-9
	Weights la.Vector // optional, per column
}

// Eval returns the scalar loss and ∂L/∂pred for a batch.
func (c Charbonnier) Eval(pred, target *la.Matrix) (float64, *la.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: Charbonnier shape mismatch")
	}
	eps := c.Eps
	if eps == 0 {
		eps = 1e-9
	}
	n := float64(pred.Rows * pred.Cols)
	grad := la.NewMatrix(pred.Rows, pred.Cols)
	var loss float64
	for r := 0; r < pred.Rows; r++ {
		pr, tr, gr := pred.Row(r), target.Row(r), grad.Row(r)
		for j := range pr {
			w := 1.0
			if c.Weights != nil {
				w = c.Weights[j]
			}
			d := pr[j] - tr[j]
			s := math.Sqrt(d*d + eps*eps)
			loss += w * s
			gr[j] = w * d / s / n
		}
	}
	return loss / n, grad
}

// MSE is the mean squared error, (1/N)·Σ (pred−target)².
type MSE struct{}

// Eval returns the scalar loss and ∂L/∂pred.
func (MSE) Eval(pred, target *la.Matrix) (float64, *la.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSE shape mismatch")
	}
	n := float64(pred.Rows * pred.Cols)
	grad := la.NewMatrix(pred.Rows, pred.Cols)
	var loss float64
	for i, p := range pred.Data {
		d := p - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}
