package pf

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/grid"
)

func TestSolveCase9(t *testing.T) {
	c := grid.Case9()
	r, err := Solve(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("did not converge")
	}
	if r.Iterations > 6 {
		t.Errorf("Newton took %d iterations, expected quadratic convergence", r.Iterations)
	}
	// Known solution features of the WSCC 9-bus base case: slack P around
	// 71.6 MW and all voltages near 1 pu.
	slackP := r.Pg[0] * c.BaseMVA
	if slackP < 60 || slackP > 85 {
		t.Errorf("slack P = %.2f MW, expected ~71.6", slackP)
	}
	for i, vm := range r.Vm {
		if vm < 0.9 || vm > 1.1 {
			t.Errorf("bus %d voltage %.4f out of plausible range", i, vm)
		}
	}
	// Angle reference preserved.
	if math.Abs(r.Va[c.RefIndex()]) > 1e-12 {
		t.Errorf("reference angle moved: %v", r.Va[c.RefIndex()])
	}
}

func TestSolveCase14(t *testing.T) {
	c := grid.Case14()
	r, err := Solve(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// IEEE 14-bus reference: slack generation ~232.4 MW.
	slackP := r.Pg[0] * c.BaseMVA
	if math.Abs(slackP-232.4) > 3 {
		t.Errorf("slack P = %.2f MW, want about 232.4", slackP)
	}
	// Known angle at bus 14 around -16 degrees.
	a14 := grid.Rad2Deg(r.Va[c.BusIndex(14)])
	if math.Abs(a14-(-16.0)) > 1.5 {
		t.Errorf("bus 14 angle = %.2f deg, want about -16", a14)
	}
}

func TestSolveCase5(t *testing.T) {
	c := grid.Case5()
	r, err := Solve(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("case5 power flow did not converge")
	}
}

// The solved state must satisfy the full complex power balance at every
// bus when the back-filled generator outputs are injected.
func TestSolutionSatisfiesBalance(t *testing.T) {
	for _, c := range []*grid.Case{grid.Case9(), grid.Case14(), grid.Case5()} {
		r, err := Solve(c, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		y := grid.MakeYbus(c)
		v := grid.Voltage(r.Vm, r.Va)
		sbus := grid.MakeSbus(c, r.Pg, r.Qg)
		mis := grid.PowerMismatch(y, v, sbus)
		for i, m := range mis {
			if cmplx.Abs(m) > 1e-6 {
				t.Fatalf("%s: bus %d mismatch %v", c.Name, i, m)
			}
		}
	}
}

func TestScaledLoadsStillSolve(t *testing.T) {
	// ±10% uniform load scaling (the paper's sampling law) must stay
	// solvable on the reference systems.
	for _, f := range []float64{0.9, 1.1} {
		c := grid.Case9()
		fac := make([]float64, c.NB())
		for i := range fac {
			fac[i] = f
		}
		c.ScaleLoads(fac)
		if _, err := Solve(c, Options{}); err != nil {
			t.Fatalf("scale %.1f: %v", f, err)
		}
	}
}

func TestNonConvergenceReported(t *testing.T) {
	c := grid.Case9()
	// Absurd load makes the power flow infeasible.
	fac := make([]float64, c.NB())
	for i := range fac {
		fac[i] = 40
	}
	c.ScaleLoads(fac)
	r, err := Solve(c, Options{MaxIter: 15})
	if err == nil && r.Converged {
		t.Fatal("expected failure on 40x load")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Tol != 1e-8 || o.MaxIter != 30 {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := Options{Tol: 1e-4, MaxIter: 5}.withDefaults()
	if o2.Tol != 1e-4 || o2.MaxIter != 5 {
		t.Fatalf("explicit options overridden: %+v", o2)
	}
}
