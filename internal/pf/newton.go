// Package pf implements the Newton–Raphson AC power flow in polar
// coordinates. It is the validation substrate of the repository: the
// synthetic case generator uses it to certify that generated systems have
// a solvable operating point, and tests use it to cross-check the OPF
// solution (a solved OPF must also satisfy the power flow).
package pf

import (
	"fmt"
	"math/cmplx"

	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/sparse"
)

// Options controls the Newton iteration.
type Options struct {
	Tol     float64 // infinity-norm mismatch tolerance in pu (default 1e-8)
	MaxIter int     // default 30
}

func (o Options) withDefaults() Options {
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter == 0 {
		o.MaxIter = 30
	}
	return o
}

// Result is a solved power flow.
type Result struct {
	Converged  bool
	Iterations int
	Vm         []float64 // pu
	Va         []float64 // radians
	Pg, Qg     []float64 // per-unit dispatch of in-service generators,
	// with slack P and PV/slack Q back-filled from the solution
	MaxMismatch float64
}

// Solve runs a Newton–Raphson power flow on the case. Bus types determine
// the unknowns: Va at PV+PQ buses, Vm at PQ buses. Generator setpoints
// (Pg and Vg) are taken from the case data.
func Solve(c *grid.Case, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	nb := c.NB()
	y := grid.MakeYbus(c)

	// Initial voltage: flat-ish start from case data; generator buses take
	// their setpoint magnitude.
	vm := make([]float64, nb)
	va := make([]float64, nb)
	for i, b := range c.Buses {
		vm[i] = b.Vm
		if vm[i] <= 0 {
			vm[i] = 1
		}
		va[i] = grid.Deg2Rad(b.Va)
	}
	gens := c.ActiveGens()
	gbus := grid.GenBusIdx(c)
	for gi, g := range gens {
		if g.Vg > 0 {
			vm[gbus[gi]] = g.Vg
		}
	}

	// Scheduled injections: generator P (Q unknown at PV buses).
	pg := make([]float64, len(gens))
	qg := make([]float64, len(gens))
	for gi, g := range gens {
		pg[gi] = g.Pg / c.BaseMVA
		qg[gi] = g.Qg / c.BaseMVA
	}
	sbus := grid.MakeSbus(c, pg, qg)

	// Unknown index sets.
	var pvpq, pq []int
	for i, b := range c.Buses {
		switch b.Type {
		case grid.PQ:
			pvpq = append(pvpq, i)
			pq = append(pq, i)
		case grid.PV:
			pvpq = append(pvpq, i)
		}
	}
	npv := len(pvpq)
	npq := len(pq)
	n := npv + npq
	if n == 0 {
		return nil, fmt.Errorf("pf: case %q has no unknowns", c.Name)
	}
	posA := make(map[int]int, npv) // bus -> row for P equations / Va vars
	for k, i := range pvpq {
		posA[i] = k
	}
	posM := make(map[int]int, npq) // bus -> row offset for Q / Vm vars
	for k, i := range pq {
		posM[i] = k
	}

	res := &Result{Vm: vm, Va: va}
	// The Jacobian pattern is fixed across Newton iterations (it mirrors
	// the Ybus structure), so one symbolic analysis serves the whole solve.
	jacCache := sparse.NewSymbolicCache(sparse.OrderRCM, 1.0)
	for iter := 0; iter <= opt.MaxIter; iter++ {
		v := grid.Voltage(vm, va)
		mis := grid.PowerMismatch(y, v, sbus)
		f := make(la.Vector, n)
		for k, i := range pvpq {
			f[k] = real(mis[i])
		}
		for k, i := range pq {
			f[npv+k] = imag(mis[i])
		}
		res.MaxMismatch = f.NormInf()
		res.Iterations = iter
		if res.MaxMismatch < opt.Tol {
			res.Converged = true
			break
		}
		if iter == opt.MaxIter {
			break
		}
		dVa, dVm := grid.DSbusDV(y.Ybus, v)
		jb := sparse.NewBuilder(n, n)
		appendBlock := func(m *sparse.CSCComplex, im bool, rows map[int]int, rowOff int, cols map[int]int, colOff int) {
			for j := 0; j < m.NCols; j++ {
				cj, ok := cols[j]
				if !ok {
					continue
				}
				for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
					ri, ok := rows[m.RowIdx[p]]
					if !ok {
						continue
					}
					val := real(m.Val[p])
					if im {
						val = imag(m.Val[p])
					}
					jb.Append(rowOff+ri, colOff+cj, val)
				}
			}
		}
		appendBlock(dVa, false, posA, 0, posA, 0)    // dP/dVa
		appendBlock(dVm, false, posA, 0, posM, npv)  // dP/dVm
		appendBlock(dVa, true, posM, npv, posA, 0)   // dQ/dVa
		appendBlock(dVm, true, posM, npv, posM, npv) // dQ/dVm
		dx, err := jacCache.SolveRefactored(jb.ToCSC(), f)
		if err != nil {
			return res, fmt.Errorf("pf: singular Jacobian at iteration %d: %w", iter, err)
		}
		for k, i := range pvpq {
			va[i] -= dx[k]
		}
		for k, i := range pq {
			vm[i] -= dx[npv+k]
		}
	}

	// Back-fill generator outputs from the solved voltages: slack bus P,
	// and Q at every generator bus, split evenly among co-located units.
	v := grid.Voltage(vm, va)
	ib := y.Ybus.MulVec(v)
	inj := make([]complex128, nb)
	for i := range inj {
		inj[i] = v[i]*cmplx.Conj(ib[i]) + complex(c.Buses[i].Pd, c.Buses[i].Qd)/complex(c.BaseMVA, 0)
	}
	genAt := make(map[int][]int)
	for gi, b := range gbus {
		genAt[b] = append(genAt[b], gi)
	}
	for b, gis := range genAt {
		share := 1 / float64(len(gis))
		for _, gi := range gis {
			if c.Buses[b].Type == grid.Ref {
				pg[gi] = real(inj[b]) * share
			}
			if c.Buses[b].Type != grid.PQ {
				qg[gi] = imag(inj[b]) * share
			}
		}
	}
	res.Pg, res.Qg = pg, qg
	if !res.Converged {
		return res, fmt.Errorf("pf: no convergence after %d iterations (mismatch %.3e)", opt.MaxIter, res.MaxMismatch)
	}
	return res, nil
}
