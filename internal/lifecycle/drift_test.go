package lifecycle

import (
	"math/rand"
	"testing"
)

// stationaryTraffic drives the detector with seeded Bernoulli(hit)
// convergence and iteration counts jittered around base, for the given
// number of observations, and reports whether any observation fired.
func stationaryTraffic(d *Detector, rng *rand.Rand, n int, hit float64, baseIters int) bool {
	for i := 0; i < n; i++ {
		conv := rng.Float64() < hit
		iters := baseIters + rng.Intn(3) - 1 // base−1 … base+1
		if d.Observe(conv, iters) {
			return true
		}
	}
	return false
}

// TestDriftStationaryNeverFires is the stability property: over 10 000
// complete windows of stationary seeded traffic (hit rate 0.9, mean
// iterations ~5), the detector must never fire — window-to-window
// sampling noise (σ ≈ 0.03 at Window=100) stays far under the 0.2
// firing threshold.
func TestDriftStationaryNeverFires(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		d := NewDetector(DriftConfig{})
		rng := rand.New(rand.NewSource(seed))
		if stationaryTraffic(d, rng, 10_000*100, 0.9, 5) {
			t.Fatalf("seed %d: detector fired on stationary traffic at window %d", seed, d.FiredAtWindow())
		}
		if d.Fired() {
			t.Fatalf("seed %d: Fired() latched without an Observe edge", seed)
		}
		if d.Windows() != 10_000 {
			t.Fatalf("seed %d: %d windows observed, want 10000", seed, d.Windows())
		}
	}
}

// TestDriftStepFiresWithinOneWindow is the sensitivity property: an
// injected hit-rate step well past the threshold (0.9 → 0.4) fires
// within one complete window of the step, for every seed and for step
// points both at and inside window boundaries.
func TestDriftStepFiresWithinOneWindow(t *testing.T) {
	const window = 100
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		for _, offset := range []int{0, 37} { // step at a boundary and mid-window
			d := NewDetector(DriftConfig{Window: window})
			rng := rand.New(rand.NewSource(seed))
			// Baseline (4 windows) + 3 stationary windows + offset.
			pre := 7*window + offset
			if stationaryTraffic(d, rng, pre, 0.9, 5) {
				t.Fatalf("seed %d: fired before the step", seed)
			}
			// Degraded regime. The first window closing entirely after the
			// step must fire: at most 2 window closes away when the step
			// lands mid-window (the straddling window may stay under the
			// threshold), exactly 1 at a boundary.
			fired := false
			for i := 0; i < 2*window; i++ {
				if d.Observe(rng.Float64() < 0.4, 5+rng.Intn(3)-1) {
					fired = true
					break
				}
			}
			if !fired {
				t.Fatalf("seed %d offset %d: no fire within two windows of a 0.5 hit-rate step", seed, offset)
			}
			stepWindow := pre / window // complete windows before the step
			if got := d.FiredAtWindow(); got > stepWindow+2 {
				t.Fatalf("seed %d offset %d: fired at window %d, step at window %d", seed, offset, got, stepWindow)
			}
		}
	}
}

// TestDriftIterationRiseFires pins the second drift axis: hit rate
// steady, but warm iteration counts rising past IterRise.
func TestDriftIterationRiseFires(t *testing.T) {
	d := NewDetector(DriftConfig{Window: 50, Baseline: 2, IterRise: 0.5})
	rng := rand.New(rand.NewSource(9))
	if stationaryTraffic(d, rng, 2*50, 1.0, 6) { // baseline: all converge at ~6 iters
		t.Fatal("fired during baseline")
	}
	fired := false
	for i := 0; i < 50; i++ {
		if d.Observe(true, 12+rng.Intn(3)-1) { // +100 % iterations, still converging
			fired = true
		}
	}
	if !fired {
		t.Fatal("no fire after a 2x warm-iteration rise")
	}
}

// TestDriftEdgeTriggerAndReset pins the latch semantics: Observe
// returns true exactly once, Fired reports the level, Reset re-arms and
// re-baselines.
func TestDriftEdgeTriggerAndReset(t *testing.T) {
	d := NewDetector(DriftConfig{Window: 10, Baseline: 1})
	for i := 0; i < 10; i++ { // baseline window: perfect hit rate
		if d.Observe(true, 5) {
			t.Fatal("fired while accumulating the baseline")
		}
	}
	edges := 0
	for i := 0; i < 30; i++ { // three degraded windows
		if d.Observe(false, 0) {
			edges++
		}
	}
	if edges != 1 {
		t.Fatalf("drift edge reported %d times, want exactly 1", edges)
	}
	if !d.Fired() || d.FiredAtWindow() != 2 {
		t.Fatalf("Fired=%v FiredAtWindow=%d, want true/2", d.Fired(), d.FiredAtWindow())
	}
	d.Reset()
	if d.Fired() || d.Windows() != 0 {
		t.Fatal("Reset did not clear the detector")
	}
	if _, _, armed := d.Baseline(); armed {
		t.Fatal("Reset left the baseline armed")
	}
}
