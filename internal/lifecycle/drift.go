package lifecycle

import "sync"

// DriftConfig tunes the windowed drift detector. The defaults are sized
// so window-to-window sampling noise on stationary traffic sits far
// below the firing thresholds (a hit-rate window of 100 Bernoulli
// observations has a standard deviation of at most 0.05; the 0.2 drop
// threshold is 4σ beyond it), while a real regime change — a hit-rate
// step larger than the threshold or a sustained iteration-count rise —
// fires within one complete window.
type DriftConfig struct {
	// Window is the warm-attempt observations per window (default 100).
	Window int
	// Baseline is how many initial windows freeze the reference
	// statistics before the detector arms (default 4).
	Baseline int
	// HitRateDrop is the absolute live-vs-baseline warm-start hit-rate
	// drop that fires (default 0.2).
	HitRateDrop float64
	// IterRise is the relative rise of the mean warm iteration count
	// that fires (default 0.5, i.e. +50 %).
	IterRise float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Window <= 0 {
		c.Window = 100
	}
	if c.Baseline <= 0 {
		c.Baseline = 4
	}
	if c.HitRateDrop == 0 {
		c.HitRateDrop = 0.2
	}
	if c.IterRise == 0 {
		c.IterRise = 0.5
	}
	return c
}

// Detector watches the live warm-start hit rate and mean warm iteration
// count for drift against a frozen baseline. It is windowed and purely
// deterministic: firing is a function of the observation sequence only
// (no RNG, no wall clock), so seeded traffic replays to identical
// decisions. Safe for concurrent use.
//
// The first Baseline complete windows freeze the reference hit rate and
// mean iteration count; every later window is compared against them on
// close. Once fired, the detector stays fired until Reset (the manager
// resets it after a promotion or rollback re-baselines the model).
type Detector struct {
	mu  sync.Mutex
	cfg DriftConfig

	// current window accumulators
	n       int
	hits    int
	iterSum int

	// baseline accumulation (over the first cfg.Baseline windows)
	baseWindows int
	baseHits    int
	baseN       int
	baseIters   int

	armed    bool
	fired    bool
	windows  int // complete windows observed
	firedAt  int // window index that fired (0 = not fired)
	lastHit  float64
	lastIter float64
}

// NewDetector builds a detector with cfg's defaults applied.
func NewDetector(cfg DriftConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// Observe feeds one warm-pipeline outcome (whether the warm attempt
// converged, and the accepted solve's iteration count). It returns true
// exactly when this observation closes a window whose statistics cross
// a firing threshold — the drift event edge. Once fired, further
// observations return false (the event is edge-triggered; Fired()
// reports the level).
func (d *Detector) Observe(warmConverged bool, iterations int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fired {
		return false
	}
	d.n++
	if warmConverged {
		d.hits++
		d.iterSum += iterations
	}
	if d.n < d.cfg.Window {
		return false
	}
	// Window closes.
	winN, winHits, winIters := d.n, d.hits, d.iterSum
	d.n, d.hits, d.iterSum = 0, 0, 0
	d.windows++

	if !d.armed {
		d.baseWindows++
		d.baseHits += winHits
		d.baseN += winN
		d.baseIters += winIters
		if d.baseWindows >= d.cfg.Baseline {
			d.armed = true
		}
		return false
	}

	baseHit := float64(d.baseHits) / float64(d.baseN)
	winHit := float64(winHits) / float64(winN)
	d.lastHit = winHit
	if baseHit-winHit > d.cfg.HitRateDrop {
		d.fired = true
		d.firedAt = d.windows
		return true
	}
	// Iteration comparison is over warm-converged solves only: a window
	// with no warm hits already fired (or is heading to fire) on the
	// hit-rate axis, and a restart's iteration count measures the cold
	// solver, not the model.
	if d.baseHits > 0 && winHits > 0 {
		baseIter := float64(d.baseIters) / float64(d.baseHits)
		winIter := float64(winIters) / float64(winHits)
		d.lastIter = winIter
		if baseIter > 0 && winIter > baseIter*(1+d.cfg.IterRise) {
			d.fired = true
			d.firedAt = d.windows
			return true
		}
	}
	return false
}

// Fired reports whether drift has been detected since the last Reset.
func (d *Detector) Fired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fired
}

// Windows reports complete windows observed since the last Reset.
func (d *Detector) Windows() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.windows
}

// FiredAtWindow reports the window index (1-based, counting complete
// windows) that fired, or 0 while not fired.
func (d *Detector) FiredAtWindow() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.firedAt
}

// Baseline reports the frozen reference hit rate and mean warm
// iteration count, and whether the detector has armed.
func (d *Detector) Baseline() (hitRate, meanIters float64, armed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.baseN > 0 {
		hitRate = float64(d.baseHits) / float64(d.baseN)
	}
	if d.baseHits > 0 {
		meanIters = float64(d.baseIters) / float64(d.baseHits)
	}
	return hitRate, meanIters, d.armed
}

// Reset clears all state — windows, baseline and the fired latch — so
// the detector re-baselines on the model now serving.
func (d *Detector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n, d.hits, d.iterSum = 0, 0, 0
	d.baseWindows, d.baseHits, d.baseN, d.baseIters = 0, 0, 0, 0
	d.armed, d.fired = false, false
	d.windows, d.firedAt = 0, 0
	d.lastHit, d.lastIter = 0, 0
}
