package lifecycle

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/dataset"
	"repro/internal/la"
)

// Record is one captured serving outcome: the load instance (factors
// and packed model input), the converged ground-truth solution the
// solver produced for it, and the warm-start telemetry the drift
// detector consumes. It carries everything dataset.Sample needs, so a
// capture window converts losslessly into a training set.
type Record struct {
	// TimeUnix is the capture time from the lifecycle Clock.
	TimeUnix int64
	// Factors are the per-bus load multipliers of the instance.
	Factors []float64
	// Input is the model input [Pd; Qd] in per unit.
	Input []float64
	// Ground-truth converged solver state (the accepted solution — the
	// warm solve's if it converged, else the cold restart's).
	X, Lam, Mu, Z []float64
	Cost          float64
	// Iterations of the accepted solve.
	Iterations int
	// Warm reports the request was served on the warm pipeline (a model
	// was consulted); WarmConverged whether that warm attempt converged
	// without a restart. Cold-path records have both false.
	Warm          bool
	WarmConverged bool
	// ModelVersion is the registry version of the model that served the
	// request ("" on the cold path).
	ModelVersion string
}

// CaptureConfig sizes a capture buffer.
type CaptureConfig struct {
	// Dir is the on-disk capture directory; "" keeps the buffer
	// memory-only (Flush becomes a no-op).
	Dir string
	// System names the grid; the on-disk file is <Dir>/<System>.capture.
	System string
	// Cap bounds the retained records (default 1024). The buffer is a
	// ring: past Cap, the oldest record is overwritten.
	Cap int
	// FlushEvery, when > 0, flushes to disk automatically every
	// FlushEvery appends. 0 flushes only on explicit Flush calls (the
	// serving daemon flushes on shutdown).
	FlushEvery int
	// Clock stamps records at Append time when the caller left
	// Record.TimeUnix zero; nil means the system clock.
	Clock Clock
}

func (c CaptureConfig) withDefaults() CaptureConfig {
	if c.Cap <= 0 {
		c.Cap = 1024
	}
	c.Clock = clockOrSystem(c.Clock)
	return c
}

// Buffer is the bounded served-traffic capture buffer: a fixed-capacity
// ring of Records with atomic whole-buffer flushes to disk. Safe for
// concurrent use.
type Buffer struct {
	mu      sync.Mutex
	cfg     CaptureConfig
	recs    []Record // ring storage, len grows to cfg.Cap then stays
	next    int      // ring write index once full
	total   int64    // records ever appended
	flushes int64    // completed disk flushes
}

// NewBuffer builds a capture buffer. When cfg.Dir is set it is created
// if missing.
func NewBuffer(cfg CaptureConfig) (*Buffer, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir != "" {
		if cfg.System == "" {
			return nil, fmt.Errorf("lifecycle: capture with a directory needs a system name")
		}
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("lifecycle: capture dir: %w", err)
		}
	}
	return &Buffer{cfg: cfg}, nil
}

// Append records one serving outcome, stamping it with the buffer's
// clock when the record carries no timestamp. Past the capacity the
// oldest record is overwritten (the buffer keeps the most recent Cap
// records — drift retraining wants fresh traffic, not history).
func (b *Buffer) Append(r Record) {
	b.mu.Lock()
	if r.TimeUnix == 0 {
		r.TimeUnix = b.cfg.Clock.Now().Unix()
	}
	if len(b.recs) < b.cfg.Cap {
		b.recs = append(b.recs, r)
	} else {
		b.recs[b.next] = r
		b.next = (b.next + 1) % b.cfg.Cap
	}
	b.total++
	due := b.cfg.FlushEvery > 0 && b.total%int64(b.cfg.FlushEvery) == 0
	b.mu.Unlock()
	if due {
		_ = b.Flush() // a failed periodic flush retries at the next interval
	}
}

// Len reports the records currently retained.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.recs)
}

// Total reports the records ever appended (retained + overwritten).
func (b *Buffer) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Flushes reports completed disk flushes.
func (b *Buffer) Flushes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushes
}

// Snapshot returns the retained records in chronological order.
func (b *Buffer) Snapshot() []Record {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.snapshotLocked()
}

func (b *Buffer) snapshotLocked() []Record {
	out := make([]Record, 0, len(b.recs))
	if len(b.recs) == b.cfg.Cap {
		out = append(out, b.recs[b.next:]...)
		out = append(out, b.recs[:b.next]...)
	} else {
		out = append(out, b.recs...)
	}
	return out
}

// capturePath is the on-disk location of a system's capture file.
func capturePath(dir, system string) string {
	return filepath.Join(dir, system+".capture")
}

// Flush writes the retained records to disk atomically: encode to a
// temporary file, fsync it, rename over the capture file, fsync the
// directory. A crash mid-flush leaves either the previous complete
// capture or the new one, never a torn file. Memory-only buffers
// (no Dir) return nil without touching disk.
func (b *Buffer) Flush() error {
	b.mu.Lock()
	if b.cfg.Dir == "" {
		b.mu.Unlock()
		return nil
	}
	recs := b.snapshotLocked()
	dir, system := b.cfg.Dir, b.cfg.System
	b.mu.Unlock()

	if err := writeFileSync(capturePath(dir, system), func(f *os.File) error {
		return gob.NewEncoder(f).Encode(recs)
	}); err != nil {
		return fmt.Errorf("lifecycle: flushing capture for %s: %w", system, err)
	}
	b.mu.Lock()
	b.flushes++
	b.mu.Unlock()
	return nil
}

// LoadCapture reads a system's flushed capture records back from disk.
func LoadCapture(dir, system string) ([]Record, error) {
	f, err := os.Open(capturePath(dir, system))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []Record
	if err := gob.NewDecoder(f).Decode(&recs); err != nil {
		return nil, fmt.Errorf("lifecycle: decoding capture for %s: %w", system, err)
	}
	return recs, nil
}

// ToSet converts capture records into a training set on the offline
// pipeline's dataset type. Only converged pairs qualify (every record
// written by the serving tap is converged — the accepted solution is
// always a converged optimum — but defensively, records with an empty
// solution are skipped).
func ToSet(caseName string, nb int, recs []Record) *dataset.Set {
	set := &dataset.Set{CaseName: caseName, NB: nb}
	for _, r := range recs {
		if len(r.X) == 0 {
			continue
		}
		set.Samples = append(set.Samples, dataset.Sample{
			Factors:    la.Vector(r.Factors),
			Input:      la.Vector(r.Input),
			X:          la.Vector(r.X),
			Lam:        la.Vector(r.Lam),
			Mu:         la.Vector(r.Mu),
			Z:          la.Vector(r.Z),
			Cost:       r.Cost,
			Iterations: r.Iterations,
		})
	}
	return set
}

// writeFileSync writes path atomically: the payload goes to path.tmp,
// is fsync'd, renamed over path, and the parent directory is fsync'd so
// the rename itself is durable.
func writeFileSync(path string, write func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
