package lifecycle

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/mtl"
)

// Version states in a manifest.
const (
	StateIncumbent = "incumbent" // currently serving
	StateCandidate = "candidate" // in a canary window
	StateRetired   = "retired"   // a former incumbent, kept for rollback
	StateRejected  = "rejected"  // a candidate that failed its canary
)

// Version is one registered model snapshot.
type Version struct {
	// ID is the registry-assigned identity: "v<seq>-<hash prefix>".
	ID string `json:"id"`
	// Hash is the full sha256 of the snapshot file (= the model
	// fingerprint), verified before every load.
	Hash string `json:"hash"`
	// File is the snapshot filename, relative to the system directory.
	File string `json:"file"`
	// CreatedUnix is the registration time from the registry Clock.
	CreatedUnix int64 `json:"created_unix"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Note records provenance ("bootstrap", "retrain on 512 captured
	// pairs", …).
	Note string `json:"note,omitempty"`
}

// Manifest is a system's registry state: the full version history plus
// which version is serving (incumbent) and which, if any, is in a
// canary window (candidate).
type Manifest struct {
	System    string    `json:"system"`
	Seq       int       `json:"seq"` // last assigned version sequence number
	Incumbent string    `json:"incumbent,omitempty"`
	Candidate string    `json:"candidate,omitempty"`
	Versions  []Version `json:"versions"`
}

// Find returns the version with the given ID.
func (m *Manifest) Find(id string) (*Version, bool) {
	for i := range m.Versions {
		if m.Versions[i].ID == id {
			return &m.Versions[i], true
		}
	}
	return nil, false
}

// Registry is the versioned on-disk model store. Layout per system:
//
//	<dir>/<system>/manifest.json       current state (atomic rename)
//	<dir>/<system>/manifest.prev.json  previous state (corruption fallback)
//	<dir>/<system>/v<seq>-<hash8>.model  content-hashed snapshots
//
// Every manifest update is written to a temporary file, fsync'd and
// renamed over manifest.json, with the prior manifest first moved to
// manifest.prev.json — so a torn write at any point leaves a loadable
// manifest: Load falls back to the previous one when the current fails
// to parse. Snapshots are immutable once written; their sha256 is
// recorded in the manifest and re-verified before a load, so a corrupt
// snapshot is detected rather than served. Safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	dir   string
	clock Clock
}

// NewRegistry opens (creating if needed) a registry rooted at dir.
func NewRegistry(dir string, clock Clock) (*Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("lifecycle: registry needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lifecycle: registry dir: %w", err)
	}
	return &Registry{dir: dir, clock: clockOrSystem(clock)}, nil
}

// Dir returns the registry root.
func (r *Registry) Dir() string { return r.dir }

func (r *Registry) systemDir(system string) string {
	return filepath.Join(r.dir, system)
}

// Manifest loads a system's manifest. recovered reports that the
// current manifest.json was corrupt or truncated and the previous one
// was used instead (the registry's last good state). A system with no
// manifest at all returns an empty manifest and no error.
func (r *Registry) Manifest(system string) (m *Manifest, recovered bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.loadManifestLocked(system)
}

func (r *Registry) loadManifestLocked(system string) (*Manifest, bool, error) {
	dir := r.systemDir(system)
	cur, curErr := readManifest(filepath.Join(dir, "manifest.json"))
	if curErr == nil {
		return cur, false, nil
	}
	if os.IsNotExist(curErr) {
		// Never written — but a crash between the two renames of
		// writeManifestLocked can leave only the prev manifest; recover
		// from it rather than reporting an empty registry.
		if prev, prevErr := readManifest(filepath.Join(dir, "manifest.prev.json")); prevErr == nil {
			return prev, true, nil
		}
		return &Manifest{System: system}, false, nil
	}
	prev, prevErr := readManifest(filepath.Join(dir, "manifest.prev.json"))
	if prevErr != nil {
		return nil, false, fmt.Errorf("lifecycle: manifest for %s corrupt (%v) and no recoverable previous manifest (%v)", system, curErr, prevErr)
	}
	return prev, true, nil
}

// readManifest parses and validates one manifest file. Beyond JSON
// well-formedness it checks the structural invariants a truncated-but-
// parseable file would break: named incumbent/candidate versions must
// exist, and every version needs an ID, hash and file.
func readManifest(path string) (*Manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	for i := range m.Versions {
		v := &m.Versions[i]
		if v.ID == "" || v.Hash == "" || v.File == "" {
			return nil, fmt.Errorf("%s: version %d incomplete", path, i)
		}
	}
	if m.Incumbent != "" {
		if _, ok := m.Find(m.Incumbent); !ok {
			return nil, fmt.Errorf("%s: incumbent %q not in version list", path, m.Incumbent)
		}
	}
	if m.Candidate != "" {
		if _, ok := m.Find(m.Candidate); !ok {
			return nil, fmt.Errorf("%s: candidate %q not in version list", path, m.Candidate)
		}
	}
	return &m, nil
}

// writeManifestLocked atomically replaces a system's manifest, keeping
// the prior one as manifest.prev.json.
func (r *Registry) writeManifestLocked(system string, m *Manifest) error {
	dir := r.systemDir(system)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cur := filepath.Join(dir, "manifest.json")
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, filepath.Join(dir, "manifest.prev.json")); err != nil {
			return err
		}
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileSync(cur, func(f *os.File) error {
		_, werr := f.Write(append(buf, '\n'))
		return werr
	})
}

// register snapshots a model into a system's directory and appends it
// to the manifest in the given state.
func (r *Registry) register(system string, m *mtl.Model, state, note string) (Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	man, _, err := r.loadManifestLocked(system)
	if err != nil {
		return Version{}, err
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return Version{}, fmt.Errorf("lifecycle: snapshotting model for %s: %w", system, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	hash := hex.EncodeToString(sum[:])

	// An identical-weights registration reuses the existing snapshot
	// file but still gets its own version entry: version identity is
	// (sequence, hash), not hash alone, so the history records every
	// deployment decision.
	man.Seq++
	v := Version{
		ID:          fmt.Sprintf("v%04d-%s", man.Seq, hash[:8]),
		Hash:        hash,
		File:        fmt.Sprintf("v%04d-%s.model", man.Seq, hash[:8]),
		CreatedUnix: r.clock.Now().Unix(),
		State:       state,
		Note:        note,
	}
	if err := os.MkdirAll(r.systemDir(system), 0o755); err != nil {
		return Version{}, err
	}
	if err := writeFileSync(filepath.Join(r.systemDir(system), v.File), func(f *os.File) error {
		_, werr := f.Write(buf.Bytes())
		return werr
	}); err != nil {
		return Version{}, fmt.Errorf("lifecycle: writing snapshot %s: %w", v.File, err)
	}
	man.System = system
	man.Versions = append(man.Versions, v)
	switch state {
	case StateIncumbent:
		if old, ok := man.Find(man.Incumbent); ok {
			old.State = StateRetired
		}
		man.Incumbent = v.ID
	case StateCandidate:
		if old, ok := man.Find(man.Candidate); ok && old.State == StateCandidate {
			old.State = StateRejected
		}
		man.Candidate = v.ID
	}
	if err := r.writeManifestLocked(system, man); err != nil {
		return Version{}, err
	}
	return v, nil
}

// SaveIncumbent registers a model as the system's serving version
// (boot-time registration of the loaded or bootstrap-trained model, or
// a direct administrative swap). Any previous incumbent is retired.
func (r *Registry) SaveIncumbent(system string, m *mtl.Model, note string) (Version, error) {
	return r.register(system, m, StateIncumbent, note)
}

// SaveCandidate registers a retrained model as the system's canary
// candidate.
func (r *Registry) SaveCandidate(system string, m *mtl.Model, note string) (Version, error) {
	return r.register(system, m, StateCandidate, note)
}

// Promote makes the named candidate the incumbent; the previous
// incumbent is retired (kept on disk for rollback).
func (r *Registry) Promote(system, id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	man, _, err := r.loadManifestLocked(system)
	if err != nil {
		return err
	}
	v, ok := man.Find(id)
	if !ok {
		return fmt.Errorf("lifecycle: promote %s: unknown version %q", system, id)
	}
	if old, ok := man.Find(man.Incumbent); ok && old.ID != id {
		old.State = StateRetired
	}
	v.State = StateIncumbent
	man.Incumbent = id
	if man.Candidate == id {
		man.Candidate = ""
	}
	return r.writeManifestLocked(system, man)
}

// Reject marks the named candidate as rejected after a failed canary;
// the incumbent keeps serving.
func (r *Registry) Reject(system, id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	man, _, err := r.loadManifestLocked(system)
	if err != nil {
		return err
	}
	v, ok := man.Find(id)
	if !ok {
		return fmt.Errorf("lifecycle: reject %s: unknown version %q", system, id)
	}
	v.State = StateRejected
	if man.Candidate == id {
		man.Candidate = ""
	}
	return r.writeManifestLocked(system, man)
}

// LoadModel restores a registered snapshot into a model configured for
// the system, verifying the content hash first — a corrupt or tampered
// snapshot is an error, never a served model.
func (r *Registry) LoadModel(sys *core.System, variant mtl.Variant, v Version) (*mtl.Model, error) {
	buf, err := os.ReadFile(filepath.Join(r.systemDir(sys.Name), v.File))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(buf)
	if got := hex.EncodeToString(sum[:]); got != v.Hash {
		return nil, fmt.Errorf("lifecycle: snapshot %s hash mismatch: manifest %s, file %s", v.File, v.Hash[:8], got[:8])
	}
	return sys.LoadModel(variant, bytes.NewReader(buf))
}
