// Package lifecycle closes the offline training loop of Smart-PGSim
// into an online one (DESIGN.md §13): pgsimd computes the ground-truth
// converged solution for every request it serves, so the training
// signal is free at serve time. The package provides the four stages of
// that loop and the state machine that sequences them:
//
//   - Buffer: a bounded capture buffer recording (instance input,
//     converged solution, warm iterations) pairs from served traffic,
//     flushed to disk atomically (tmp + fsync + rename) on the serving
//     daemon's two-stage shutdown.
//   - Detector: a windowed drift detector over the live warm-start
//     hit-rate and iteration-count metrics. Purely deterministic — a
//     function of the observation sequence only — so seeded traffic
//     replays to identical drift decisions.
//   - Registry: a versioned on-disk model store — JSON manifest updated
//     by atomic rename with the previous manifest retained for
//     corruption recovery, content-hashed (sha256) model snapshots
//     verified on load.
//   - Canary: a deterministic traffic splitter (Bresenham accumulator,
//     no RNG) that routes a fraction of requests to a candidate model
//     and compares measured warm iterations and hit rates against the
//     incumbent before promoting.
//
// Manager ties the stages into the per-system state machine
//
//	capturing → retraining → canary → (promote | rollback) → capturing
//
// driven by an injected Clock so every transition is drivable
// deterministically in-process. The serving integration (capture tap,
// canary routing, atomic hot-swap of model replicas) lives in
// internal/serve; the retraining itself is core.(*System).Retrain, the
// exact offline path on the captured pairs.
package lifecycle

import "time"

// Clock abstracts time for deterministic lifecycle tests: capture
// timestamps, registry creation times and state-transition times all
// come from an injected Clock, never from time.Now directly.
type Clock interface {
	Now() time.Time
}

// SystemClock is the production Clock: time.Now.
type SystemClock struct{}

// Now returns the wall-clock time.
func (SystemClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced Clock for deterministic tests. The
// zero value starts at the Unix epoch; Advance moves it forward. Not
// safe for concurrent use with Advance — tests advance it between
// request waves, not during them.
type FakeClock struct {
	T time.Time
}

// NewFakeClock starts a fake clock at a fixed, documented instant.
func NewFakeClock() *FakeClock {
	return &FakeClock{T: time.Unix(1700000000, 0).UTC()}
}

// Now returns the current fake time.
func (c *FakeClock) Now() time.Time { return c.T }

// Advance moves the fake clock forward by d.
func (c *FakeClock) Advance(d time.Duration) { c.T = c.T.Add(d) }

// clockOrSystem resolves a possibly-nil Clock to SystemClock.
func clockOrSystem(c Clock) Clock {
	if c == nil {
		return SystemClock{}
	}
	return c
}
