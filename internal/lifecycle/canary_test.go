package lifecycle

import "testing"

// TestCanaryRouteDeterministic pins the Bresenham split: no RNG, so two
// controllers with the same config produce the identical route
// sequence, and the candidate receives exactly ⌊n·Frac⌋ of the first n
// requests at every prefix.
func TestCanaryRouteDeterministic(t *testing.T) {
	a := NewCanary(CanaryConfig{Frac: 0.25})
	b := NewCanary(CanaryConfig{Frac: 0.25})
	cand := 0
	for i := 1; i <= 1000; i++ {
		ra, rb := a.Route(), b.Route()
		if ra != rb {
			t.Fatalf("route %d diverged between identical controllers", i)
		}
		if ra {
			cand++
		}
		if want := i / 4; cand != want {
			t.Fatalf("after %d routes the candidate has %d, want exactly %d", i, cand, want)
		}
	}
}

func observeN(c *Canary, candidate bool, n, hits, iters int) {
	for i := 0; i < n; i++ {
		c.Observe(candidate, i < hits, iters)
	}
}

func TestCanaryUndecidedUntilWindow(t *testing.T) {
	c := NewCanary(CanaryConfig{Window: 10})
	observeN(c, false, 10, 10, 5)
	observeN(c, true, 9, 9, 5)
	if d := c.Decide(); d != Undecided {
		t.Fatalf("decision = %v with a short candidate arm, want undecided", d)
	}
	c.Observe(true, true, 5)
	if d := c.Decide(); d != Promote {
		t.Fatalf("decision = %v for an equivalent candidate, want promote", d)
	}
}

func TestCanaryRollbackOnHitRateDrop(t *testing.T) {
	c := NewCanary(CanaryConfig{Window: 20, MaxHitRateDrop: 0.02})
	observeN(c, false, 20, 20, 5) // incumbent: 100 % hit rate
	observeN(c, true, 20, 18, 5)  // candidate: 90 %
	if d := c.Decide(); d != Rollback {
		t.Fatalf("decision = %v for a 10%% hit-rate drop, want rollback", d)
	}
}

func TestCanaryRollbackOnIterRegression(t *testing.T) {
	c := NewCanary(CanaryConfig{Window: 20, MaxIterRegression: 0.05})
	observeN(c, false, 20, 20, 5)
	observeN(c, true, 20, 20, 8) // +60 % mean warm iterations
	if d := c.Decide(); d != Rollback {
		t.Fatalf("decision = %v for a 60%% iteration regression, want rollback", d)
	}
}

func TestCanaryIterationSlackToleratesJitter(t *testing.T) {
	c := NewCanary(CanaryConfig{Window: 20})
	observeN(c, false, 20, 20, 5)
	// Mean 5.25 vs 5: within 5·1.05+0.5, not a regression.
	for i := 0; i < 20; i++ {
		it := 5
		if i%4 == 0 {
			it = 6
		}
		c.Observe(true, true, it)
	}
	if d := c.Decide(); d != Promote {
		t.Fatalf("decision = %v for quarter-iteration jitter, want promote", d)
	}
}

func TestCanaryDeadCandidateNeverPromotes(t *testing.T) {
	c := NewCanary(CanaryConfig{Window: 5, MaxHitRateDrop: 1}) // even unlimited drop tolerance
	observeN(c, false, 5, 0, 0)                                // incumbent also dead
	observeN(c, true, 5, 0, 0)
	if d := c.Decide(); d != Rollback {
		t.Fatalf("decision = %v for a candidate with zero warm hits, want rollback", d)
	}
}

func TestCanaryDeadIncumbentLosesToConvergingCandidate(t *testing.T) {
	c := NewCanary(CanaryConfig{Window: 5})
	observeN(c, false, 5, 0, 0) // incumbent: drifted, nothing converges
	observeN(c, true, 5, 5, 9)  // candidate converges, whatever the count
	if d := c.Decide(); d != Promote {
		t.Fatalf("decision = %v when only the candidate converges, want promote", d)
	}
}
