package lifecycle

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// rec builds a minimal converged record tagged with a sequence number
// (in Iterations) so ordering is checkable.
func rec(seq int) Record {
	return Record{
		Factors:       []float64{1, 1, float64(seq)},
		Input:         []float64{0.1, 0.2},
		X:             []float64{float64(seq)},
		Lam:           []float64{1},
		Mu:            []float64{2},
		Z:             []float64{3},
		Cost:          100 + float64(seq),
		Iterations:    seq,
		Warm:          true,
		WarmConverged: true,
	}
}

func TestCaptureRingBound(t *testing.T) {
	clk := NewFakeClock()
	b, err := NewBuffer(CaptureConfig{Cap: 8, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		b.Append(rec(i))
	}
	if b.Len() != 8 {
		t.Fatalf("Len = %d, want the cap 8", b.Len())
	}
	if b.Total() != 20 {
		t.Fatalf("Total = %d, want 20", b.Total())
	}
	snap := b.Snapshot()
	for i, r := range snap {
		if want := 12 + i; r.Iterations != want {
			t.Fatalf("snapshot[%d] = seq %d, want %d (most recent 8, in order)", i, r.Iterations, want)
		}
	}
}

func TestCaptureClockStamping(t *testing.T) {
	clk := NewFakeClock()
	b, err := NewBuffer(CaptureConfig{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t0 := clk.Now().Unix()
	b.Append(rec(0))
	clk.Advance(90 * time.Second)
	b.Append(rec(1))
	snap := b.Snapshot()
	if snap[0].TimeUnix != t0 || snap[1].TimeUnix != t0+90 {
		t.Fatalf("stamps = %d, %d, want %d, %d", snap[0].TimeUnix, snap[1].TimeUnix, t0, t0+90)
	}
}

func TestCaptureFlushRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBuffer(CaptureConfig{Dir: dir, System: "case9", Cap: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b.Append(rec(i))
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if b.Flushes() != 1 {
		t.Fatalf("Flushes = %d, want 1", b.Flushes())
	}
	// The flush is atomic: no leftover temporary file.
	if _, err := os.Stat(filepath.Join(dir, "case9.capture.tmp")); !os.IsNotExist(err) {
		t.Fatalf("temporary flush file left behind (err=%v)", err)
	}
	got, err := LoadCapture(dir, "case9")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("loaded %d records, want 10", len(got))
	}
	for i, r := range got {
		if r.Iterations != i || r.Cost != 100+float64(i) {
			t.Fatalf("record %d round-tripped as seq %d cost %v", i, r.Iterations, r.Cost)
		}
	}
}

func TestCapturePeriodicFlush(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBuffer(CaptureConfig{Dir: dir, System: "g", FlushEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		b.Append(rec(i))
	}
	if b.Flushes() != 2 {
		t.Fatalf("Flushes = %d after 9 appends with FlushEvery=4, want 2", b.Flushes())
	}
}

func TestCaptureMemoryOnlyFlushIsNoop(t *testing.T) {
	b, err := NewBuffer(CaptureConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b.Append(rec(0))
	if err := b.Flush(); err != nil {
		t.Fatalf("memory-only flush errored: %v", err)
	}
	if b.Flushes() != 0 {
		t.Fatalf("memory-only flush counted: %d", b.Flushes())
	}
}

func TestToSetSkipsUnconverged(t *testing.T) {
	recs := []Record{rec(0), {Factors: []float64{1}, Input: []float64{1}}, rec(2)}
	set := ToSet("case9", 3, recs)
	if set.CaseName != "case9" || set.NB != 3 {
		t.Fatalf("set header = %q/%d", set.CaseName, set.NB)
	}
	if len(set.Samples) != 2 {
		t.Fatalf("samples = %d, want 2 (empty-solution record skipped)", len(set.Samples))
	}
	s := set.Samples[1]
	if s.Iterations != 2 || s.Cost != 102 || s.X[0] != 2 {
		t.Fatalf("sample fields lost in conversion: %+v", s)
	}
}
