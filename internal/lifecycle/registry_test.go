package lifecycle

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mtl"
)

// fixture shares one loaded system and one trained model across the
// package's tests (training dominates the suite's runtime).
var fixture struct {
	once sync.Once
	sys  *core.System
	m    *mtl.Model
	err  error
}

func loadFixture(t *testing.T) (*core.System, *mtl.Model) {
	t.Helper()
	fixture.once.Do(func() {
		sys, err := core.LoadSystem("case9")
		if err != nil {
			fixture.err = err
			return
		}
		set, err := sys.GenerateData(40, 3)
		if err != nil {
			fixture.err = err
			return
		}
		train, _ := set.Split(0.8)
		m, err := sys.TrainModel(mtl.VariantSmartPGSim, train, 60, 7, nil)
		if err != nil {
			fixture.err = err
			return
		}
		fixture.sys, fixture.m = sys, m
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.sys, fixture.m
}

func TestRegistryLifecycleTransitions(t *testing.T) {
	sys, m := loadFixture(t)
	reg, err := NewRegistry(t.TempDir(), NewFakeClock())
	if err != nil {
		t.Fatal(err)
	}

	inc, err := reg.SaveIncumbent(sys.Name, m, "boot")
	if err != nil {
		t.Fatal(err)
	}
	if inc.Hash != m.Fingerprint() {
		t.Fatalf("registered hash %s != fingerprint %s", inc.Hash[:8], m.Fingerprint()[:8])
	}

	cand, err := reg.SaveCandidate(sys.Name, m.Clone(), "retrain")
	if err != nil {
		t.Fatal(err)
	}
	man, recovered, err := reg.Manifest(sys.Name)
	if err != nil || recovered {
		t.Fatalf("manifest: err=%v recovered=%v", err, recovered)
	}
	if man.Incumbent != inc.ID || man.Candidate != cand.ID {
		t.Fatalf("manifest roles = %q/%q, want %q/%q", man.Incumbent, man.Candidate, inc.ID, cand.ID)
	}

	if err := reg.Promote(sys.Name, cand.ID); err != nil {
		t.Fatal(err)
	}
	man, _, err = reg.Manifest(sys.Name)
	if err != nil {
		t.Fatal(err)
	}
	if man.Incumbent != cand.ID || man.Candidate != "" {
		t.Fatalf("after promote: incumbent=%q candidate=%q", man.Incumbent, man.Candidate)
	}
	if v, _ := man.Find(inc.ID); v.State != StateRetired {
		t.Fatalf("old incumbent state = %q, want retired", v.State)
	}

	// A second candidate, rejected.
	cand2, err := reg.SaveCandidate(sys.Name, m.Clone(), "retrain 2")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Reject(sys.Name, cand2.ID); err != nil {
		t.Fatal(err)
	}
	man, _, err = reg.Manifest(sys.Name)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := man.Find(cand2.ID); v.State != StateRejected || man.Candidate != "" {
		t.Fatalf("after reject: state=%q candidate=%q", v.State, man.Candidate)
	}
}

// TestRegistryLoadModelVerifiesHash pins the content-hash gate: a
// registered snapshot loads back to identical weights, and a corrupted
// snapshot file is an error, never a served model.
func TestRegistryLoadModelVerifiesHash(t *testing.T) {
	sys, m := loadFixture(t)
	dir := t.TempDir()
	reg, err := NewRegistry(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.SaveIncumbent(sys.Name, m, "boot")
	if err != nil {
		t.Fatal(err)
	}
	got, err := reg.LoadModel(sys, mtl.VariantSmartPGSim, v)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatal("loaded model weights differ from the registered snapshot")
	}

	// Corrupt one byte of the snapshot.
	path := filepath.Join(dir, sys.Name, v.File)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.LoadModel(sys, mtl.VariantSmartPGSim, v); err == nil {
		t.Fatal("corrupted snapshot loaded without a hash error")
	}
}

// TestRegistryManifestRecovery pins the torn-write story: a corrupted
// or truncated manifest.json falls back to manifest.prev.json (the last
// good state), and a crash that left only the prev manifest recovers
// too.
func TestRegistryManifestRecovery(t *testing.T) {
	sys, m := loadFixture(t)
	dir := t.TempDir()
	reg, err := NewRegistry(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveIncumbent(sys.Name, m, "boot"); err != nil {
		t.Fatal(err)
	}
	cand, err := reg.SaveCandidate(sys.Name, m.Clone(), "retrain")
	if err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(dir, sys.Name, "manifest.json")
	good, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string][]byte{
		"garbage":   []byte("{not json"),
		"truncated": good[:len(good)/3],
		// Parseable but structurally broken: candidate points nowhere.
		"dangling": []byte(`{"system":"case9","seq":9,"candidate":"v9999-dead","versions":[]}`),
	}
	for name, junk := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(cur, junk, 0o644); err != nil {
				t.Fatal(err)
			}
			man, recovered, err := reg.Manifest(sys.Name)
			if err != nil {
				t.Fatalf("no recovery: %v", err)
			}
			if !recovered {
				t.Fatal("recovery not reported")
			}
			// The previous state is the one before the candidate was added.
			if man.Incumbent == "" {
				t.Fatal("recovered manifest lost the incumbent")
			}
			if _, ok := man.Find(cand.ID); ok {
				t.Fatal("recovered manifest includes the post-crash candidate")
			}
			// Restore for the next subtest.
			if err := os.WriteFile(cur, good, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}

	t.Run("crash between renames", func(t *testing.T) {
		if err := os.Remove(cur); err != nil {
			t.Fatal(err)
		}
		man, recovered, err := reg.Manifest(sys.Name)
		if err != nil || !recovered {
			t.Fatalf("err=%v recovered=%v", err, recovered)
		}
		if man.Incumbent == "" {
			t.Fatal("recovered manifest lost the incumbent")
		}
	})
}

// FuzzManifestRoundTrip feeds arbitrary bytes through the manifest
// parser (it must reject or accept, never panic) and checks that every
// accepted manifest re-marshals and re-parses to the same state.
func FuzzManifestRoundTrip(f *testing.F) {
	f.Add([]byte(`{"system":"case9","seq":1,"incumbent":"v0001-aaaa","versions":[{"id":"v0001-aaaa","hash":"aa","file":"v0001-aaaa.model","created_unix":1700000000,"state":"incumbent"}]}`))
	f.Add([]byte(`{"system":"g","seq":0,"versions":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "manifest.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		m, err := readManifest(path)
		if err != nil {
			return // rejected is fine; panicking is the bug under test
		}
		buf, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted manifest does not re-marshal: %v", err)
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		m2, err := readManifest(path)
		if err != nil {
			t.Fatalf("re-marshaled manifest rejected: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed the manifest:\n%+v\n%+v", m, m2)
		}
	})
}
