package lifecycle

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mtl"
)

// State is a manager's position in the lifecycle loop.
type State int

const (
	// StateCapturing: serving on the incumbent, capturing pairs and
	// watching for drift.
	StateCapturing State = iota
	// StateRetraining: drift detected, a candidate is (to be) trained
	// on the captured pairs.
	StateRetraining
	// StateCanary: a candidate is serving a traffic fraction; arms are
	// being compared.
	StateCanary
)

// String names the state for logs and metrics labels.
func (s State) String() string {
	switch s {
	case StateCapturing:
		return "capturing"
	case StateRetraining:
		return "retraining"
	case StateCanary:
		return "canary"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Action is what the serving layer should do after an observation.
type Action int

const (
	// ActionNone: keep serving.
	ActionNone Action = iota
	// ActionRetrain: drift fired on this observation — start a retrain.
	ActionRetrain
)

// Config assembles a per-system lifecycle manager.
type Config struct {
	// System is the served grid (prepared structure + training path).
	System *core.System
	// Variant is the model family to retrain (must match the incumbent).
	Variant mtl.Variant
	// Clock drives every timestamp and is injected for deterministic
	// tests; nil means the system clock.
	Clock Clock
	// Capture sizes the capture buffer. Dir "" keeps it memory-only;
	// System defaults to the system's name.
	Capture CaptureConfig
	// Drift tunes the detector.
	Drift DriftConfig
	// Canary tunes canary windows.
	Canary CanaryConfig
	// RetrainEpochs/RetrainSeed configure retraining; zero values
	// resolve through core.RetrainOptions defaults.
	RetrainEpochs int
	RetrainSeed   int64
	// Registry, when non-nil, persists every version transition.
	Registry *Registry
	// Logf, when non-nil, receives lifecycle transition lines.
	Logf func(string, ...any)
}

// Stats is a snapshot of a manager's counters for metrics export.
type Stats struct {
	State            State
	IncumbentVersion string
	CandidateVersion string
	Captured         int64 // records ever captured
	Retained         int   // records currently in the buffer
	Flushes          int64 // completed capture disk flushes
	DriftEvents      int64
	Retrains         int64
	Promotions       int64
	Rollbacks        int64
	LastRetrain      time.Duration // wall-clock cost of the last retrain
}

// Manager sequences one system's lifecycle: it owns the capture buffer,
// the drift detector and — during a canary — the canary controller, and
// walks the state machine capturing → retraining → canary →
// promote/rollback → capturing. The serving layer reports outcomes via
// Observe and executes the swaps; the manager decides. Safe for
// concurrent use.
type Manager struct {
	mu  sync.Mutex
	cfg Config
	buf *Buffer
	det *Detector

	state     State
	canary    *Canary
	incumbent string // registry version ID (or fingerprint prefix)
	candidate string
	candModel *mtl.Model

	driftEvents int64
	retrains    int64
	promotions  int64
	rollbacks   int64
	lastRetrain time.Duration
}

// NewManager builds a manager. The capture buffer's system name and
// clock default from the config.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("lifecycle: manager needs a system")
	}
	cfg.Clock = clockOrSystem(cfg.Clock)
	if cfg.Capture.System == "" {
		cfg.Capture.System = cfg.System.Name
	}
	if cfg.Capture.Clock == nil {
		cfg.Capture.Clock = cfg.Clock
	}
	buf, err := NewBuffer(cfg.Capture)
	if err != nil {
		return nil, err
	}
	return &Manager{
		cfg: cfg,
		buf: buf,
		det: NewDetector(cfg.Drift),
	}, nil
}

// System returns the managed system.
func (m *Manager) System() *core.System { return m.cfg.System }

// Capture returns the capture buffer (the serving layer flushes it on
// shutdown via FlushCapture; tests inspect it directly).
func (m *Manager) Capture() *Buffer { return m.buf }

// Detector returns the drift detector (tests inspect windows/baseline).
func (m *Manager) Detector() *Detector { return m.det }

// SetIncumbent records the serving version's identity (registry ID or
// fingerprint) for capture records and stats.
func (m *Manager) SetIncumbent(version string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.incumbent = version
}

// State reports the current lifecycle state.
func (m *Manager) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Canary returns the active canary controller, or nil outside
// StateCanary.
func (m *Manager) Canary() *Canary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.canary
}

// Observe folds one served outcome into the lifecycle: the record is
// captured (converged solutions only — rec.X empty is skipped by the
// buffer conversion later, but the tap only sends converged solves),
// and — while capturing — warm-pipeline outcomes feed the drift
// detector. Returns ActionRetrain exactly once per drift event, on the
// observation that closed the firing window.
func (m *Manager) Observe(rec Record) Action {
	if rec.ModelVersion == "" {
		m.mu.Lock()
		rec.ModelVersion = m.incumbent
		m.mu.Unlock()
	}
	m.buf.Append(rec)
	if !rec.Warm {
		return ActionNone
	}
	m.mu.Lock()
	capturing := m.state == StateCapturing
	m.mu.Unlock()
	if !capturing {
		return ActionNone
	}
	if m.det.Observe(rec.WarmConverged, rec.Iterations) {
		m.mu.Lock()
		m.state = StateRetraining
		m.driftEvents++
		m.mu.Unlock()
		m.logf("drift detected on %s after %d windows (baseline hit rate %.2f) — retraining",
			m.cfg.System.Name, m.det.Windows(), firstOf(m.det.Baseline))
		return ActionRetrain
	}
	return ActionNone
}

// firstOf adapts a (a, b, c) triple-returning call to its first value.
func firstOf(f func() (float64, float64, bool)) float64 {
	v, _, _ := f()
	return v
}

// Retrain trains a candidate on the captured pairs via the exact
// offline path (core.(*System).Retrain), registers it with the registry
// (when configured) and opens the canary window. It is synchronous —
// the serving layer decides whether to call it inline (deterministic
// tests, benchmarks) or from a background goroutine (production).
func (m *Manager) Retrain() (*mtl.Model, string, error) {
	m.mu.Lock()
	if m.state == StateCanary {
		m.mu.Unlock()
		return nil, "", fmt.Errorf("lifecycle: %s already in a canary window", m.cfg.System.Name)
	}
	m.state = StateRetraining
	m.mu.Unlock()

	recs := m.buf.Snapshot()
	set := ToSet(m.cfg.System.Name, m.cfg.System.Case.NB(), recs)
	t0 := m.cfg.Clock.Now()
	cand, err := m.cfg.System.Retrain(m.cfg.Variant, set, core.RetrainOptions{
		Epochs: m.cfg.RetrainEpochs,
		Seed:   m.cfg.RetrainSeed,
		Logf:   m.cfg.Logf,
	})
	elapsed := m.cfg.Clock.Now().Sub(t0)
	if err != nil {
		m.mu.Lock()
		m.state = StateCapturing // not enough data yet; keep capturing
		m.mu.Unlock()
		m.det.Reset()
		return nil, "", err
	}
	version := "cand-" + cand.Fingerprint()[:12]
	if m.cfg.Registry != nil {
		v, rerr := m.cfg.Registry.SaveCandidate(m.cfg.System.Name,
			cand, fmt.Sprintf("retrain on %d captured pairs", len(set.Samples)))
		if rerr != nil {
			m.mu.Lock()
			m.state = StateCapturing
			m.mu.Unlock()
			return nil, "", rerr
		}
		version = v.ID
	}
	m.mu.Lock()
	m.retrains++
	m.lastRetrain = elapsed
	m.candidate = version
	m.candModel = cand
	m.canary = NewCanary(m.cfg.Canary)
	m.state = StateCanary
	m.mu.Unlock()
	m.logf("retrained %s on %d captured pairs in %v — canary %s at %.0f%% traffic",
		m.cfg.System.Name, len(set.Samples), elapsed, version, 100*m.cfg.Canary.withDefaults().Frac)
	return cand, version, nil
}

// BeginCanaryWith installs an externally produced candidate (tests, a
// deliberately degraded model, an operator push) instead of retraining.
func (m *Manager) BeginCanaryWith(cand *mtl.Model, note string) (string, error) {
	version := "cand-" + cand.Fingerprint()[:12]
	if m.cfg.Registry != nil {
		v, err := m.cfg.Registry.SaveCandidate(m.cfg.System.Name, cand, note)
		if err != nil {
			return "", err
		}
		version = v.ID
	}
	m.mu.Lock()
	m.candidate = version
	m.candModel = cand
	m.canary = NewCanary(m.cfg.Canary)
	m.state = StateCanary
	m.mu.Unlock()
	return version, nil
}

// CandidateModel returns the canary candidate and its version.
func (m *Manager) CandidateModel() (*mtl.Model, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.candModel, m.candidate
}

// Decide evaluates the open canary window (Undecided outside
// StateCanary).
func (m *Manager) Decide() Decision {
	m.mu.Lock()
	c := m.canary
	m.mu.Unlock()
	if c == nil {
		return Undecided
	}
	return c.Decide()
}

// CompletePromotion closes the canary with a promotion: the candidate
// becomes the incumbent (registry updated when configured), the drift
// detector re-baselines on the new model, and the state returns to
// capturing. The serving layer performs the actual replica swap before
// calling this.
func (m *Manager) CompletePromotion() error {
	m.mu.Lock()
	if m.state != StateCanary {
		m.mu.Unlock()
		return fmt.Errorf("lifecycle: %s has no canary to promote", m.cfg.System.Name)
	}
	cand := m.candidate
	m.mu.Unlock()
	if m.cfg.Registry != nil {
		if err := m.cfg.Registry.Promote(m.cfg.System.Name, cand); err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.incumbent = cand
	m.candidate, m.candModel, m.canary = "", nil, nil
	m.promotions++
	m.state = StateCapturing
	m.mu.Unlock()
	m.det.Reset()
	m.logf("promoted %s on %s — re-baselining drift detector", cand, m.cfg.System.Name)
	return nil
}

// CompleteRollback closes the canary with a rollback: the candidate is
// rejected, the incumbent keeps serving, and the drift detector
// re-baselines (the drift that triggered the retrain is still real, but
// re-arming immediately would re-fire on the same traffic forever; the
// fresh baseline gives the next capture window a chance to gather
// different data).
func (m *Manager) CompleteRollback() error {
	m.mu.Lock()
	if m.state != StateCanary {
		m.mu.Unlock()
		return fmt.Errorf("lifecycle: %s has no canary to roll back", m.cfg.System.Name)
	}
	cand := m.candidate
	m.mu.Unlock()
	if m.cfg.Registry != nil {
		if err := m.cfg.Registry.Reject(m.cfg.System.Name, cand); err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.candidate, m.candModel, m.canary = "", nil, nil
	m.rollbacks++
	m.state = StateCapturing
	m.mu.Unlock()
	m.det.Reset()
	m.logf("rolled back candidate %s on %s — incumbent keeps serving", cand, m.cfg.System.Name)
	return nil
}

// FlushCapture flushes the capture buffer to disk (fsync'd). The
// serving daemon calls it on the drain stage of its two-stage shutdown.
func (m *Manager) FlushCapture() error { return m.buf.Flush() }

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		State:            m.state,
		IncumbentVersion: m.incumbent,
		CandidateVersion: m.candidate,
		Captured:         m.buf.Total(),
		Retained:         m.buf.Len(),
		Flushes:          m.buf.Flushes(),
		DriftEvents:      m.driftEvents,
		Retrains:         m.retrains,
		Promotions:       m.promotions,
		Rollbacks:        m.rollbacks,
		LastRetrain:      m.lastRetrain,
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}
