package lifecycle

import "sync"

// CanaryConfig tunes a canary window.
type CanaryConfig struct {
	// Frac is the fraction of warm traffic routed to the candidate
	// (default 0.2). Clamped to (0, 1].
	Frac float64
	// Window is the minimum warm-attempt observations each arm needs
	// before a decision (default 32).
	Window int
	// MaxIterRegression is the allowed relative rise of the candidate's
	// mean warm iteration count over the incumbent's before the
	// candidate counts as a regression (default 0.05). Iteration means
	// are additionally compared with an absolute slack of half an
	// iteration, so integer-count jitter on small means cannot veto an
	// equivalent candidate.
	MaxIterRegression float64
	// MaxHitRateDrop is the allowed absolute warm-start hit-rate drop of
	// the candidate arm under the incumbent arm (default 0.02).
	MaxHitRateDrop float64
}

func (c CanaryConfig) withDefaults() CanaryConfig {
	if c.Frac <= 0 || c.Frac > 1 {
		c.Frac = 0.2
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MaxIterRegression == 0 {
		c.MaxIterRegression = 0.05
	}
	if c.MaxHitRateDrop == 0 {
		c.MaxHitRateDrop = 0.02
	}
	return c
}

// Decision is the outcome of a canary window.
type Decision int

const (
	// Undecided: one of the arms has not reached Window observations.
	Undecided Decision = iota
	// Promote: the candidate showed no regression against the incumbent.
	Promote
	// Rollback: the candidate regressed (hit rate or warm iterations).
	Rollback
)

// String names the decision for logs and metrics labels.
func (d Decision) String() string {
	switch d {
	case Promote:
		return "promote"
	case Rollback:
		return "rollback"
	default:
		return "undecided"
	}
}

// armStats accumulates one arm's warm-attempt outcomes.
type armStats struct {
	n       int // warm attempts observed
	hits    int // warm attempts that converged without restart
	iterSum int // iterations over converged warm solves
}

func (a armStats) hitRate() float64 {
	if a.n == 0 {
		return 0
	}
	return float64(a.hits) / float64(a.n)
}

func (a armStats) meanIters() float64 {
	if a.hits == 0 {
		return 0
	}
	return float64(a.iterSum) / float64(a.hits)
}

// Canary splits warm traffic between the incumbent and a candidate
// model and decides promotion from measured outcomes. Routing is
// deterministic — a Bresenham error accumulator, no RNG — so the k-th
// request of a seeded traffic replay always lands on the same arm, and
// the candidate receives exactly ⌊n·Frac⌋..⌈n·Frac⌉ of the first n
// requests. Safe for concurrent use.
type Canary struct {
	mu  sync.Mutex
	cfg CanaryConfig
	acc float64 // Bresenham accumulator in [0, 1)

	incumbent armStats
	candidate armStats
}

// NewCanary builds a canary window with cfg's defaults applied.
func NewCanary(cfg CanaryConfig) *Canary {
	return &Canary{cfg: cfg.withDefaults()}
}

// Frac reports the resolved candidate traffic fraction.
func (c *Canary) Frac() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Frac
}

// Window reports the per-arm observation requirement.
func (c *Canary) Window() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Window
}

// Route assigns the next warm request to an arm: true = candidate.
func (c *Canary) Route() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.acc += c.cfg.Frac
	if c.acc >= 1 {
		c.acc -= 1
		return true
	}
	return false
}

// Observe records one warm-pipeline outcome on the given arm.
func (c *Canary) Observe(candidate, warmConverged bool, iterations int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	arm := &c.incumbent
	if candidate {
		arm = &c.candidate
	}
	arm.n++
	if warmConverged {
		arm.hits++
		arm.iterSum += iterations
	}
}

// Counts reports the observations per arm (incumbent, candidate).
func (c *Canary) Counts() (incumbent, candidate int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.incumbent.n, c.candidate.n
}

// Stats reports each arm's measured hit rate and mean warm iterations.
func (c *Canary) Stats() (incHit, incIters, candHit, candIters float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.incumbent.hitRate(), c.incumbent.meanIters(),
		c.candidate.hitRate(), c.candidate.meanIters()
}

// Decide evaluates the canary window: Undecided until both arms carry
// Window observations, then Promote exactly when the candidate shows no
// regression — its hit rate within MaxHitRateDrop of the incumbent's
// and its mean warm iteration count within MaxIterRegression (plus half
// an iteration of absolute slack). A candidate with zero warm hits
// never promotes; an incumbent with zero warm hits loses to any
// candidate that converges at all (that is the drift scenario the
// retrain exists for).
func (c *Canary) Decide() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.incumbent.n < c.cfg.Window || c.candidate.n < c.cfg.Window {
		return Undecided
	}
	if c.candidate.hits == 0 {
		return Rollback
	}
	if c.incumbent.hitRate()-c.candidate.hitRate() > c.cfg.MaxHitRateDrop {
		return Rollback
	}
	if c.incumbent.hits == 0 {
		return Promote
	}
	incIters, candIters := c.incumbent.meanIters(), c.candidate.meanIters()
	if candIters > incIters*(1+c.cfg.MaxIterRegression)+0.5 {
		return Rollback
	}
	return Promote
}
