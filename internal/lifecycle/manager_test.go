package lifecycle

import (
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/mtl"
)

// captureTraffic converts generated dataset samples into served-traffic
// records, as the serving tap would produce them.
func captureTraffic(set *dataset.Set, warmConverged bool) []Record {
	recs := make([]Record, len(set.Samples))
	for i, s := range set.Samples {
		recs[i] = Record{
			Factors: s.Factors, Input: s.Input,
			X: s.X, Lam: s.Lam, Mu: s.Mu, Z: s.Z,
			Cost: s.Cost, Iterations: s.Iterations,
			Warm: true, WarmConverged: warmConverged,
		}
	}
	return recs
}

// TestManagerClosedLoop drives the whole state machine deterministically
// in-process: capture → drift → retrain-from-captured-pairs → canary →
// promote, with an injected clock and seeded traffic, checking the
// registry records every transition.
func TestManagerClosedLoop(t *testing.T) {
	sys, m := loadFixture(t)
	clk := NewFakeClock()
	reg, err := NewRegistry(t.TempDir(), clk)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := reg.SaveIncumbent(sys.Name, m, "boot")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(Config{
		System:  sys,
		Variant: mtl.VariantSmartPGSim,
		Clock:   clk,
		Capture: CaptureConfig{Cap: 256},
		Drift:   DriftConfig{Window: 8, Baseline: 2},
		Canary:  CanaryConfig{Frac: 0.5, Window: 4},

		RetrainEpochs: 30,
		RetrainSeed:   11,
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.SetIncumbent(inc.ID)

	// Phase 1: healthy traffic freezes the baseline (2 windows of 8).
	set, err := sys.GenerateData(40, 5)
	if err != nil {
		t.Fatal(err)
	}
	good := captureTraffic(set, true)
	for i := 0; i < 16; i++ {
		if act := mgr.Observe(good[i]); act != ActionNone {
			t.Fatalf("action %v during baseline", act)
		}
	}

	// Phase 2: the regime changes — warm starts stop converging. The
	// solutions are still captured (the cold restart converged), so the
	// retrain corpus keeps growing. Drift must fire on the window close.
	var fired int
	for i := 16; i < 24; i++ {
		r := good[i]
		r.WarmConverged = false
		if mgr.Observe(r) == ActionRetrain {
			fired = i
		}
	}
	if fired != 23 {
		t.Fatalf("drift fired at observation %d, want 23 (first degraded window close)", fired)
	}
	if mgr.State() != StateRetraining {
		t.Fatalf("state = %v after drift, want retraining", mgr.State())
	}
	st := mgr.Stats()
	if st.DriftEvents != 1 || st.Captured != 24 || st.Retained != 24 {
		t.Fatalf("stats after drift: %+v", st)
	}

	// Phase 3: retrain on the captured pairs through the offline path.
	clk.Advance(3 * time.Second)
	cand, version, err := mgr.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if cand == nil || version == "" {
		t.Fatalf("retrain returned %v/%q", cand, version)
	}
	if mgr.State() != StateCanary {
		t.Fatalf("state = %v after retrain, want canary", mgr.State())
	}
	man, _, err := reg.Manifest(sys.Name)
	if err != nil {
		t.Fatal(err)
	}
	if man.Candidate != version {
		t.Fatalf("registry candidate = %q, want %q", man.Candidate, version)
	}
	if st := mgr.Stats(); st.Retrains != 1 {
		t.Fatalf("retrain stats: %+v", st)
	}

	// Phase 4: canary. The incumbent arm keeps failing, the candidate
	// converges — promotion once both arms fill their window.
	c := mgr.Canary()
	if c == nil {
		t.Fatal("no canary controller after retrain")
	}
	for i := 0; i < 4; i++ {
		if d := mgr.Decide(); d != Undecided {
			t.Fatalf("decision = %v with %d-observation arms", d, i)
		}
		c.Observe(false, false, 0)
		c.Observe(true, true, 6)
	}
	if d := mgr.Decide(); d != Promote {
		t.Fatalf("canary decision = %v, want promote", d)
	}
	if err := mgr.CompletePromotion(); err != nil {
		t.Fatal(err)
	}
	if mgr.State() != StateCapturing {
		t.Fatalf("state = %v after promotion, want capturing", mgr.State())
	}
	man, _, err = reg.Manifest(sys.Name)
	if err != nil {
		t.Fatal(err)
	}
	if man.Incumbent != version || man.Candidate != "" {
		t.Fatalf("registry after promotion: incumbent=%q candidate=%q", man.Incumbent, man.Candidate)
	}
	if v, _ := man.Find(inc.ID); v.State != StateRetired {
		t.Fatalf("boot incumbent state = %q, want retired", v.State)
	}
	st = mgr.Stats()
	if st.Promotions != 1 || st.IncumbentVersion != version || st.CandidateVersion != "" {
		t.Fatalf("stats after promotion: %+v", st)
	}
	// The detector re-baselined: fresh windows, not fired.
	if mgr.Detector().Fired() || mgr.Detector().Windows() != 0 {
		t.Fatal("promotion did not re-baseline the drift detector")
	}
}

// TestManagerRollback pins the rollback leg: a canary opened with an
// externally pushed candidate is rejected and the incumbent keeps
// serving.
func TestManagerRollback(t *testing.T) {
	sys, m := loadFixture(t)
	reg, err := NewRegistry(t.TempDir(), NewFakeClock())
	if err != nil {
		t.Fatal(err)
	}
	inc, err := reg.SaveIncumbent(sys.Name, m, "boot")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(Config{System: sys, Variant: mtl.VariantSmartPGSim, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	mgr.SetIncumbent(inc.ID)
	version, err := mgr.BeginCanaryWith(m.Clone(), "operator push")
	if err != nil {
		t.Fatal(err)
	}
	if mgr.State() != StateCanary {
		t.Fatalf("state = %v, want canary", mgr.State())
	}
	if err := mgr.CompleteRollback(); err != nil {
		t.Fatal(err)
	}
	man, _, err := reg.Manifest(sys.Name)
	if err != nil {
		t.Fatal(err)
	}
	if man.Incumbent != inc.ID || man.Candidate != "" {
		t.Fatalf("registry after rollback: incumbent=%q candidate=%q", man.Incumbent, man.Candidate)
	}
	if v, _ := man.Find(version); v.State != StateRejected {
		t.Fatalf("candidate state = %q, want rejected", v.State)
	}
	if st := mgr.Stats(); st.Rollbacks != 1 || st.State != StateCapturing {
		t.Fatalf("stats after rollback: %+v", st)
	}
}

// TestManagerRetrainNeedsData pins the guard: drift firing before the
// capture buffer holds enough converged pairs sends the manager back to
// capturing instead of training on noise.
func TestManagerRetrainNeedsData(t *testing.T) {
	sys, _ := loadFixture(t)
	mgr, err := NewManager(Config{System: sys, Variant: mtl.VariantSmartPGSim})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.Retrain(); err == nil {
		t.Fatal("retrain on an empty capture buffer did not error")
	}
	if mgr.State() != StateCapturing {
		t.Fatalf("state = %v after failed retrain, want capturing", mgr.State())
	}
}
