package la

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("la: invalid matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MulVec returns m*v as a new vector.
func (m *Matrix) MulVec(v Vector) Vector {
	checkLen(m.Cols, len(v))
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecT returns mᵀ*v as a new vector.
func (m *Matrix) MulVecT(v Vector) Vector {
	checkLen(m.Rows, len(v))
	out := make(Vector, m.Cols)
	for i := 0; i < m.Rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			out[j] += a * vi
		}
	}
	return out
}

// Mul returns m*b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("la: Mul dims %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

// AddScaledMat sets m = m + s*b and returns m.
func (m *Matrix) AddScaledMat(s float64, b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("la: AddScaledMat shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += s * b.Data[i]
	}
	return m
}

// Scale multiplies every entry of m by s and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// MaxAbs returns the largest absolute entry of m (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, x := range m.Data {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// LU is an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	n    int
	lu   []float64 // combined L (unit lower) and U, row-major
	piv  []int     // row permutation
	sign int       // permutation sign, for Det
}

// ErrSingular is returned when a factorization meets an (effectively) zero
// pivot and the system cannot be solved reliably.
var ErrSingular = fmt.Errorf("la: matrix is singular to working precision")

// Factorize computes the LU factorization of a square matrix a with partial
// pivoting. a is not modified.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("la: Factorize of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Pivot: largest |entry| in column k at/below the diagonal.
		p, pmax := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > pmax {
				p, pmax = i, a
			}
		}
		if pmax == 0 || math.IsNaN(pmax) {
			return nil, ErrSingular
		}
		if p != k {
			rp, rk := lu[p*n:(p+1)*n], lu[k*n:(k+1)*n]
			for j := range rp {
				rp[j], rk[j] = rk[j], rp[j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			ri, rk := lu[i*n:(i+1)*n], lu[k*n:(k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// Solve solves A*x = b using the factorization; it returns a new vector.
func (f *LU) Solve(b Vector) Vector {
	checkLen(f.n, len(b))
	n := f.n
	x := make(Vector, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	lu := f.lu
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := lu[i*n : i*n+i]
		s := x[i]
		for j, l := range row {
			s -= l * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := lu[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// Solve solves the square dense system A*x = b.
func Solve(a *Matrix, b Vector) (Vector, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
