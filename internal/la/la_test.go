package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorBasicOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Clone().Add(w); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := v.Clone().Sub(w); got[0] != -3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := v.Clone().Scale(2); got[2] != 6 {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Clone().AddScaled(-2, w); got[0] != -7 {
		t.Fatalf("AddScaled = %v", got)
	}
}

func TestVectorNorms(t *testing.T) {
	v := Vector{3, -4}
	if !almostEq(v.Norm2(), 5, 1e-14) {
		t.Errorf("Norm2 = %v", v.Norm2())
	}
	if v.NormInf() != 4 {
		t.Errorf("NormInf = %v", v.NormInf())
	}
	if v.Norm1() != 7 {
		t.Errorf("Norm1 = %v", v.Norm1())
	}
	if (Vector{}).NormInf() != 0 {
		t.Errorf("empty NormInf != 0")
	}
	// Norm2 must not overflow for large entries.
	big := Vector{1e200, 1e200}
	if math.IsInf(big.Norm2(), 0) {
		t.Errorf("Norm2 overflowed")
	}
}

func TestVectorMinMaxSum(t *testing.T) {
	v := Vector{2, -1, 7, 0}
	if v.Min() != -1 || v.Max() != 7 || v.Sum() != 8 {
		t.Fatalf("Min/Max/Sum = %v %v %v", v.Min(), v.Max(), v.Sum())
	}
}

func TestVectorHasNaN(t *testing.T) {
	if (Vector{1, 2}).HasNaN() {
		t.Error("false positive")
	}
	if !(Vector{1, math.NaN()}).HasNaN() {
		t.Error("missed NaN")
	}
	if !(Vector{math.Inf(1)}).HasNaN() {
		t.Error("missed Inf")
	}
}

func TestConcat(t *testing.T) {
	got := Concat(Vector{1}, Vector{2, 3}, nil, Vector{4})
	want := Vector{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Concat = %v", got)
		}
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	v := Vector{1, 0, -1}
	got := m.MulVec(v)
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
	gt := m.MulVecT(Vector{1, 1})
	if gt[0] != 5 || gt[1] != 7 || gt[2] != 9 {
		t.Fatalf("MulVecT = %v", gt)
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{0, 1, 1, 0})
	c := a.Mul(b)
	want := []float64{2, 1, 4, 3}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("Mul = %v", c.Data)
		}
	}
}

func TestMatrixTranspose(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("T = %+v", at)
	}
}

func TestEyeAndDet(t *testing.T) {
	f, err := Factorize(Eye(4))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 1, 1e-14) {
		t.Fatalf("Det(I) = %v", f.Det())
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := NewMatrix(3, 3)
	copy(a.Data, []float64{2, 1, 1, 1, 3, 2, 1, 0, 0})
	b := Vector{4, 5, 6}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual, not hard-coded solution.
	r := a.MulVec(x).Sub(b)
	if r.NormInf() > 1e-12 {
		t.Fatalf("residual %v", r.NormInf())
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 4})
	if _, err := Factorize(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestLUDetSign(t *testing.T) {
	// Permutation matrix [[0,1],[1,0]] has det -1.
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{0, 1, 1, 0})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -1, 1e-14) {
		t.Fatalf("Det = %v", f.Det())
	}
}

// Property: for random well-conditioned A, Solve(A, A*x) recovers x.
func TestLUSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Diagonal dominance keeps the condition number sane.
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += float64(n) * 3
		}
		x := make(Vector, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return got.Clone().Sub(x).NormInf() < 1e-8
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Det(A*B) == Det(A)*Det(B) for small random matrices.
func TestDetMultiplicativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		mk := func() *Matrix {
			m := NewMatrix(n, n)
			for i := range m.Data {
				m.Data[i] = r.NormFloat64()
			}
			for i := 0; i < n; i++ {
				m.Data[i*n+i] += 4
			}
			return m
		}
		a, b := mk(), mk()
		fa, err1 := Factorize(a)
		fb, err2 := Factorize(b)
		fab, err3 := Factorize(a.Mul(b))
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		prod := fa.Det() * fb.Det()
		return math.Abs(fab.Det()-prod) <= 1e-8*(1+math.Abs(prod))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixAddScaledMatScaleMaxAbs(t *testing.T) {
	a := Eye(2)
	b := Eye(2)
	a.AddScaledMat(2, b)
	if a.At(0, 0) != 3 || a.At(0, 1) != 0 {
		t.Fatalf("AddScaledMat = %v", a.Data)
	}
	a.Scale(-2)
	if a.At(1, 1) != -6 {
		t.Fatalf("Scale = %v", a.Data)
	}
	if a.MaxAbs() != 6 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestMatrixRowAliases(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("Row must alias storage")
	}
}

func BenchmarkLUFactorize100(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	n := 100
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += 50
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factorize(a); err != nil {
			b.Fatal(err)
		}
	}
}
