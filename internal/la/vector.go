// Package la provides the dense linear-algebra kernels used throughout
// Smart-PGSim: vectors, row-major matrices, LU factorization with partial
// pivoting, and the norms and elementwise helpers the interior-point solver
// and the neural-network training loop are built on.
//
// Dense LU (Solve) is O(n³) and allocation-heavy by design — it is the
// readable reference implementation. The production solvers factor
// through internal/sparse, and that package's tests pin the sparse
// symbolic-reuse path against la.Solve on random systems; la is the
// ground truth the sparse kernels are validated with.
//
// Everything is float64 and allocation behaviour is explicit: functions that
// can reuse a destination take it as the first argument, mirroring the
// conventions of the standard library's copy/append.
package la

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Fill sets every element of v to s.
func (v Vector) Fill(s float64) {
	for i := range v {
		v[i] = s
	}
}

// AddScaled sets v = v + s*w and returns v. Panics if lengths differ.
func (v Vector) AddScaled(s float64, w Vector) Vector {
	checkLen(len(v), len(w))
	for i := range v {
		v[i] += s * w[i]
	}
	return v
}

// Add sets v = v + w and returns v.
func (v Vector) Add(w Vector) Vector { return v.AddScaled(1, w) }

// Sub sets v = v - w and returns v.
func (v Vector) Sub(w Vector) Vector { return v.AddScaled(-1, w) }

// Scale sets v = s*v and returns v.
func (v Vector) Scale(s float64) Vector {
	for i := range v {
		v[i] *= s
	}
	return v
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	// Scaled to avoid overflow on extreme inputs.
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute value in v (0 for empty v).
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm1 returns the sum of absolute values of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Min returns the smallest element of v. Panics on empty input.
func (v Vector) Min() float64 {
	if len(v) == 0 {
		panic("la: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of v. Panics on empty input.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("la: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// HasNaN reports whether v contains a NaN or Inf entry.
func (v Vector) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

// Concat returns the concatenation of the given vectors as a new vector.
func Concat(vs ...Vector) Vector {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	out := make(Vector, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("la: length mismatch %d != %d", a, b))
	}
}
