package serve

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/scopf"
	"repro/internal/sparse"
)

// latencyBuckets are the histogram upper bounds for solve latency in
// seconds (log-spaced around the sub-second solves the test systems
// take; +Inf is implicit).
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// batchBuckets are the histogram upper bounds for micro-batch sizes.
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// screenLatencyBuckets are the histogram upper bounds for screening
// sweeps, which run thousands of solves: seconds to minutes, not the
// millisecond scale of single solves.
var screenLatencyBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// histogram is a fixed-bucket Prometheus-style histogram. Callers hold
// the metrics mutex.
type histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; last is +Inf
	sum    float64
	total  int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.total++
}

// render writes the histogram in Prometheus text format with cumulative
// bucket counts. labels is the rendered label set without the le pair
// ("" or `path="warm"` style).
func (h *histogram) render(w io.Writer, name, labels string) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	suffix := ""
	if l := trimComma(labels); l != "" {
		suffix = "{" + l + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, h.sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.total)
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// trimComma drops the trailing label separator for sum/count lines.
func trimComma(labels string) string {
	if n := len(labels); n > 0 && labels[n-1] == ',' {
		return labels[:n-1]
	}
	return labels
}

// metrics aggregates the serving counters exposed at /metrics: request
// and solve counts, the warm-start hit rate (warm_converged_total /
// warm_attempts_total — the paper's SR, measured on live traffic),
// iteration totals and the latency/batch-size histograms.
type metrics struct {
	mu sync.Mutex

	requests   map[string]int64 // "endpoint|code"
	solves     map[string]int64 // "system|path"
	iterations map[string]int64 // "system|path"

	warmAttempts  int64
	warmConverged int64
	coldRestarts  int64

	// Screening counters, per system: sweeps completed, scenarios
	// screened, feasible/warm/projected/error outcomes, and topology
	// classes prepared (scenarios/classes is the prepare-reuse factor;
	// warm/scenarios the screening warm-hit rate).
	screens          map[string]int64
	screenScenarios  map[string]int64
	screenFeasible   map[string]int64
	screenWarm       map[string]int64
	screenProjected  map[string]int64
	screenIslanded   map[string]int64
	screenPolicyCold map[string]int64
	screenErrors     map[string]int64
	screenClasses    map[string]int64
	screenLatency    *histogram

	// Trajectory counters: streams completed per system|mode, steps and
	// warm-accepted steps per system|mode, mid-stream client disconnects
	// per system, and the per-step latency histogram.
	trajectories          map[string]int64 // "system|mode"
	trajectorySteps       map[string]int64 // "system|mode"
	trajectoryWarm        map[string]int64 // "system|mode"
	trajectoryDisconnects map[string]int64 // system
	trajectoryStepLatency *histogram

	// Lifecycle event counters, per system: hot swaps applied to the
	// serving replica set, drift events observed, canary-scored solves
	// per arm and canary window outcomes. Gauge-like lifecycle state
	// (captured records, retrains, …) is snapshotted from the attached
	// managers at render time instead.
	lcSwaps        map[string]int64 // system
	lcDrift        map[string]int64 // system
	lcCanarySolves map[string]int64 // "system|arm"
	lcDecisions    map[string]int64 // "system|decision"

	latency map[string]*histogram // per path
	batches *histogram
	started time.Time
}

func newMetrics() *metrics {
	return &metrics{
		requests:         make(map[string]int64),
		solves:           make(map[string]int64),
		iterations:       make(map[string]int64),
		screens:          make(map[string]int64),
		screenScenarios:  make(map[string]int64),
		screenFeasible:   make(map[string]int64),
		screenWarm:       make(map[string]int64),
		screenProjected:  make(map[string]int64),
		screenIslanded:   make(map[string]int64),
		screenPolicyCold: make(map[string]int64),
		screenErrors:     make(map[string]int64),
		screenClasses:    make(map[string]int64),
		screenLatency:    newHistogram(screenLatencyBuckets),

		trajectories:          make(map[string]int64),
		trajectorySteps:       make(map[string]int64),
		trajectoryWarm:        make(map[string]int64),
		trajectoryDisconnects: make(map[string]int64),
		trajectoryStepLatency: newHistogram(latencyBuckets),

		lcSwaps:        make(map[string]int64),
		lcDrift:        make(map[string]int64),
		lcCanarySolves: make(map[string]int64),
		lcDecisions:    make(map[string]int64),

		latency: make(map[string]*histogram),
		batches: newHistogram(batchBuckets),
		started: time.Now(),
	}
}

// recordScreen folds one completed screening sweep into the counters.
func (m *metrics) recordScreen(system string, sum scopf.Summary, classes int, latency time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.screens[system]++
	m.screenScenarios[system] += int64(sum.Total)
	m.screenFeasible[system] += int64(sum.Feasible)
	m.screenWarm[system] += int64(sum.WarmConverged)
	m.screenProjected[system] += int64(sum.Projected)
	m.screenIslanded[system] += int64(sum.Islanded)
	m.screenPolicyCold[system] += int64(sum.PolicyCold)
	m.screenErrors[system] += int64(sum.Errors)
	m.screenClasses[system] += int64(classes)
	m.screenLatency.observe(latency.Seconds())
}

// recordTrajectoryStep folds one streamed trajectory step into the
// counters as it is emitted.
func (m *metrics) recordTrajectoryStep(system, mode string, warm bool, latency time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := system + "|" + mode
	m.trajectorySteps[key]++
	if warm {
		m.trajectoryWarm[key]++
	}
	m.trajectoryStepLatency.observe(latency.Seconds())
}

// recordTrajectoryDone marks one stream completed through its summary.
func (m *metrics) recordTrajectoryDone(system, mode string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trajectories[system+"|"+mode]++
}

// recordTrajectoryDisconnect counts a stream aborted by the client
// before the summary line (the pinned replica was released).
func (m *metrics) recordTrajectoryDisconnect(system string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trajectoryDisconnects[system]++
}

// recordSwap counts one hot swap of a system's serving replica set
// (SwapModel, SwapPredictors or a canary promotion).
func (m *metrics) recordSwap(system string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lcSwaps[system]++
}

// recordDrift counts one drift-detector firing.
func (m *metrics) recordDrift(system string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lcDrift[system]++
}

// recordCanarySolve counts one canary-scored warm solve on its arm.
func (m *metrics) recordCanarySolve(system string, candidate bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	arm := "incumbent"
	if candidate {
		arm = "candidate"
	}
	m.lcCanarySolves[system+"|"+arm]++
}

// recordCanaryDecision counts one completed canary window by outcome.
func (m *metrics) recordCanaryDecision(system, decision string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lcDecisions[system+"|"+decision]++
}

func (m *metrics) recordRequest(endpoint string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[endpoint+"|"+strconv.Itoa(code)]++
}

func (m *metrics) recordSolve(resp *SolveResponse, latency time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := resp.System + "|" + resp.Path
	m.solves[key]++
	m.iterations[key] += int64(resp.Iterations)
	if resp.Path != "cold" {
		m.warmAttempts++
		if resp.WarmConverged {
			m.warmConverged++
		}
		if resp.ColdRestarted {
			m.coldRestarts++
		}
	}
	h := m.latency[resp.Path]
	if h == nil {
		h = newHistogram(latencyBuckets)
		m.latency[resp.Path] = h
	}
	h.observe(latency.Seconds())
}

func (m *metrics) observeBatchSize(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches.observe(float64(n))
}

// kktStat is one grid's symbolic-cache snapshot for /metrics.
type kktStat struct {
	system string
	stats  sparse.CacheStats
}

// render writes every metric in Prometheus text exposition format, with
// deterministic (sorted) label ordering.
func (m *metrics) render(w io.Writer, queueDepth, solverThreads int, kkt []kktStat, lcs []lcStat) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP pgsimd_http_requests_total API responses by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE pgsimd_http_requests_total counter")
	for _, k := range sortedKeys(m.requests) {
		ep, code, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "pgsimd_http_requests_total{endpoint=%q,code=%q} %d\n", ep, code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP pgsimd_solves_total Completed solves by system and pipeline path.")
	fmt.Fprintln(w, "# TYPE pgsimd_solves_total counter")
	for _, k := range sortedKeys(m.solves) {
		sys, path, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "pgsimd_solves_total{system=%q,path=%q} %d\n", sys, path, m.solves[k])
	}

	fmt.Fprintln(w, "# HELP pgsimd_solve_iterations_total Interior-point iterations of accepted solves.")
	fmt.Fprintln(w, "# TYPE pgsimd_solve_iterations_total counter")
	for _, k := range sortedKeys(m.iterations) {
		sys, path, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "pgsimd_solve_iterations_total{system=%q,path=%q} %d\n", sys, path, m.iterations[k])
	}

	fmt.Fprintln(w, "# HELP pgsimd_warm_attempts_total Warm-start attempts (requests served with a model).")
	fmt.Fprintln(w, "# TYPE pgsimd_warm_attempts_total counter")
	fmt.Fprintf(w, "pgsimd_warm_attempts_total %d\n", m.warmAttempts)
	fmt.Fprintln(w, "# HELP pgsimd_warm_converged_total Warm starts that converged without restart (hit rate numerator).")
	fmt.Fprintln(w, "# TYPE pgsimd_warm_converged_total counter")
	fmt.Fprintf(w, "pgsimd_warm_converged_total %d\n", m.warmConverged)
	fmt.Fprintln(w, "# HELP pgsimd_cold_restarts_total Cold fallbacks after a non-convergent warm start.")
	fmt.Fprintln(w, "# TYPE pgsimd_cold_restarts_total counter")
	fmt.Fprintf(w, "pgsimd_cold_restarts_total %d\n", m.coldRestarts)

	fmt.Fprintln(w, "# HELP pgsimd_solve_latency_seconds End-to-end solve latency by pipeline path.")
	fmt.Fprintln(w, "# TYPE pgsimd_solve_latency_seconds histogram")
	for _, path := range sortedKeys(m.latency) {
		m.latency[path].render(w, "pgsimd_solve_latency_seconds", fmt.Sprintf("path=%q,", path))
	}

	fmt.Fprintln(w, "# HELP pgsimd_batch_size Requests coalesced per micro-batch.")
	fmt.Fprintln(w, "# TYPE pgsimd_batch_size histogram")
	m.batches.render(w, "pgsimd_batch_size", "")

	fmt.Fprintln(w, "# HELP pgsimd_screen_sweeps_total Completed /v1/screen contingency sweeps per system.")
	fmt.Fprintln(w, "# TYPE pgsimd_screen_sweeps_total counter")
	for _, k := range sortedKeys(m.screens) {
		fmt.Fprintf(w, "pgsimd_screen_sweeps_total{system=%q} %d\n", k, m.screens[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_screen_scenarios_total Scenarios screened per system.")
	fmt.Fprintln(w, "# TYPE pgsimd_screen_scenarios_total counter")
	for _, k := range sortedKeys(m.screenScenarios) {
		fmt.Fprintf(w, "pgsimd_screen_scenarios_total{system=%q} %d\n", k, m.screenScenarios[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_screen_feasible_total Scenarios that admitted a secure dispatch.")
	fmt.Fprintln(w, "# TYPE pgsimd_screen_feasible_total counter")
	for _, k := range sortedKeys(m.screenFeasible) {
		fmt.Fprintf(w, "pgsimd_screen_feasible_total{system=%q} %d\n", k, m.screenFeasible[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_screen_warm_total Scenarios accepted on a model warm start (hit rate = warm/scenarios).")
	fmt.Fprintln(w, "# TYPE pgsimd_screen_warm_total counter")
	for _, k := range sortedKeys(m.screenWarm) {
		fmt.Fprintf(w, "pgsimd_screen_warm_total{system=%q} %d\n", k, m.screenWarm[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_screen_projected_total Warm starts accepted after projection onto an outage layout.")
	fmt.Fprintln(w, "# TYPE pgsimd_screen_projected_total counter")
	for _, k := range sortedKeys(m.screenProjected) {
		fmt.Fprintf(w, "pgsimd_screen_projected_total{system=%q} %d\n", k, m.screenProjected[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_screen_islanded_total Scenarios classified as islanding outages (no solver invoked).")
	fmt.Fprintln(w, "# TYPE pgsimd_screen_islanded_total counter")
	for _, k := range sortedKeys(m.screenIslanded) {
		fmt.Fprintf(w, "pgsimd_screen_islanded_total{system=%q} %d\n", k, m.screenIslanded[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_screen_policy_cold_total Warm starts skipped by the dispatch policy.")
	fmt.Fprintln(w, "# TYPE pgsimd_screen_policy_cold_total counter")
	for _, k := range sortedKeys(m.screenPolicyCold) {
		fmt.Fprintf(w, "pgsimd_screen_policy_cold_total{system=%q} %d\n", k, m.screenPolicyCold[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_screen_errors_total Scenarios whose solve or derivation errored.")
	fmt.Fprintln(w, "# TYPE pgsimd_screen_errors_total counter")
	for _, k := range sortedKeys(m.screenErrors) {
		fmt.Fprintf(w, "pgsimd_screen_errors_total{system=%q} %d\n", k, m.screenErrors[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_screen_classes_total Topology classes prepared (prepare reuse = scenarios/classes).")
	fmt.Fprintln(w, "# TYPE pgsimd_screen_classes_total counter")
	for _, k := range sortedKeys(m.screenClasses) {
		fmt.Fprintf(w, "pgsimd_screen_classes_total{system=%q} %d\n", k, m.screenClasses[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_screen_latency_seconds End-to-end latency of screening sweeps.")
	fmt.Fprintln(w, "# TYPE pgsimd_screen_latency_seconds histogram")
	m.screenLatency.render(w, "pgsimd_screen_latency_seconds", "")

	fmt.Fprintln(w, "# HELP pgsimd_trajectory_streams_total Completed /v1/trajectory streams by system and warm-start mode.")
	fmt.Fprintln(w, "# TYPE pgsimd_trajectory_streams_total counter")
	for _, k := range sortedKeys(m.trajectories) {
		sys, mode, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "pgsimd_trajectory_streams_total{system=%q,mode=%q} %d\n", sys, mode, m.trajectories[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_trajectory_steps_total Trajectory steps streamed by system and warm-start mode.")
	fmt.Fprintln(w, "# TYPE pgsimd_trajectory_steps_total counter")
	for _, k := range sortedKeys(m.trajectorySteps) {
		sys, mode, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "pgsimd_trajectory_steps_total{system=%q,mode=%q} %d\n", sys, mode, m.trajectorySteps[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_trajectory_warm_steps_total Trajectory steps accepted on their chained or predicted start.")
	fmt.Fprintln(w, "# TYPE pgsimd_trajectory_warm_steps_total counter")
	for _, k := range sortedKeys(m.trajectoryWarm) {
		sys, mode, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "pgsimd_trajectory_warm_steps_total{system=%q,mode=%q} %d\n", sys, mode, m.trajectoryWarm[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_trajectory_disconnects_total Streams aborted mid-trajectory by the client (pinned replica released).")
	fmt.Fprintln(w, "# TYPE pgsimd_trajectory_disconnects_total counter")
	for _, k := range sortedKeys(m.trajectoryDisconnects) {
		fmt.Fprintf(w, "pgsimd_trajectory_disconnects_total{system=%q} %d\n", k, m.trajectoryDisconnects[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_trajectory_step_latency_seconds Per-step wall-clock latency of streamed trajectory steps.")
	fmt.Fprintln(w, "# TYPE pgsimd_trajectory_step_latency_seconds histogram")
	m.trajectoryStepLatency.render(w, "pgsimd_trajectory_step_latency_seconds", "")

	fmt.Fprintln(w, "# HELP pgsimd_kkt_symbolic_analyses_total Full KKT factorizations (ordering + pattern analysis + pivoting) per grid.")
	fmt.Fprintln(w, "# TYPE pgsimd_kkt_symbolic_analyses_total counter")
	for _, k := range kkt {
		fmt.Fprintf(w, "pgsimd_kkt_symbolic_analyses_total{system=%q} %d\n", k.system, k.stats.Analyses)
	}
	fmt.Fprintln(w, "# HELP pgsimd_kkt_numeric_refactors_total Numeric-only KKT refactorizations on the cached symbolic analysis per grid.")
	fmt.Fprintln(w, "# TYPE pgsimd_kkt_numeric_refactors_total counter")
	for _, k := range kkt {
		fmt.Fprintf(w, "pgsimd_kkt_numeric_refactors_total{system=%q} %d\n", k.system, k.stats.Refactors)
	}
	fmt.Fprintln(w, "# HELP pgsimd_kkt_refactor_fallbacks_total Refactorizations abandoned for stability and replaced by a fresh analysis per grid.")
	fmt.Fprintln(w, "# TYPE pgsimd_kkt_refactor_fallbacks_total counter")
	for _, k := range kkt {
		fmt.Fprintf(w, "pgsimd_kkt_refactor_fallbacks_total{system=%q} %d\n", k.system, k.stats.Fallbacks)
	}

	fmt.Fprintln(w, "# HELP pgsimd_lifecycle_swaps_total Hot swaps of a system's serving replica set (direct swaps and canary promotions).")
	fmt.Fprintln(w, "# TYPE pgsimd_lifecycle_swaps_total counter")
	for _, k := range sortedKeys(m.lcSwaps) {
		fmt.Fprintf(w, "pgsimd_lifecycle_swaps_total{system=%q} %d\n", k, m.lcSwaps[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_lifecycle_drift_events_total Drift-detector firings on live warm-start telemetry.")
	fmt.Fprintln(w, "# TYPE pgsimd_lifecycle_drift_events_total counter")
	for _, k := range sortedKeys(m.lcDrift) {
		fmt.Fprintf(w, "pgsimd_lifecycle_drift_events_total{system=%q} %d\n", k, m.lcDrift[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_lifecycle_canary_solves_total Canary-scored warm solves by arm.")
	fmt.Fprintln(w, "# TYPE pgsimd_lifecycle_canary_solves_total counter")
	for _, k := range sortedKeys(m.lcCanarySolves) {
		sys, arm, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "pgsimd_lifecycle_canary_solves_total{system=%q,arm=%q} %d\n", sys, arm, m.lcCanarySolves[k])
	}
	fmt.Fprintln(w, "# HELP pgsimd_lifecycle_canary_decisions_total Completed canary windows by outcome.")
	fmt.Fprintln(w, "# TYPE pgsimd_lifecycle_canary_decisions_total counter")
	for _, k := range sortedKeys(m.lcDecisions) {
		sys, decision, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "pgsimd_lifecycle_canary_decisions_total{system=%q,decision=%q} %d\n", sys, decision, m.lcDecisions[k])
	}
	if len(lcs) > 0 {
		fmt.Fprintln(w, "# HELP pgsimd_lifecycle_state Lifecycle state per system (0=capturing, 1=retraining, 2=canary).")
		fmt.Fprintln(w, "# TYPE pgsimd_lifecycle_state gauge")
		for _, l := range lcs {
			fmt.Fprintf(w, "pgsimd_lifecycle_state{system=%q} %d\n", l.system, int(l.stats.State))
		}
		fmt.Fprintln(w, "# HELP pgsimd_lifecycle_captured_total Served solves recorded into the capture buffer.")
		fmt.Fprintln(w, "# TYPE pgsimd_lifecycle_captured_total counter")
		for _, l := range lcs {
			fmt.Fprintf(w, "pgsimd_lifecycle_captured_total{system=%q} %d\n", l.system, l.stats.Captured)
		}
		fmt.Fprintln(w, "# HELP pgsimd_lifecycle_capture_retained Records currently retained in the bounded capture buffer.")
		fmt.Fprintln(w, "# TYPE pgsimd_lifecycle_capture_retained gauge")
		for _, l := range lcs {
			fmt.Fprintf(w, "pgsimd_lifecycle_capture_retained{system=%q} %d\n", l.system, l.stats.Retained)
		}
		fmt.Fprintln(w, "# HELP pgsimd_lifecycle_capture_flushes_total Completed fsync'd capture flushes to disk.")
		fmt.Fprintln(w, "# TYPE pgsimd_lifecycle_capture_flushes_total counter")
		for _, l := range lcs {
			fmt.Fprintf(w, "pgsimd_lifecycle_capture_flushes_total{system=%q} %d\n", l.system, l.stats.Flushes)
		}
		fmt.Fprintln(w, "# HELP pgsimd_lifecycle_retrains_total Completed drift-triggered retrains.")
		fmt.Fprintln(w, "# TYPE pgsimd_lifecycle_retrains_total counter")
		for _, l := range lcs {
			fmt.Fprintf(w, "pgsimd_lifecycle_retrains_total{system=%q} %d\n", l.system, l.stats.Retrains)
		}
		fmt.Fprintln(w, "# HELP pgsimd_lifecycle_promotions_total Canary candidates promoted to incumbent.")
		fmt.Fprintln(w, "# TYPE pgsimd_lifecycle_promotions_total counter")
		for _, l := range lcs {
			fmt.Fprintf(w, "pgsimd_lifecycle_promotions_total{system=%q} %d\n", l.system, l.stats.Promotions)
		}
		fmt.Fprintln(w, "# HELP pgsimd_lifecycle_rollbacks_total Canary candidates rejected after a measured regression.")
		fmt.Fprintln(w, "# TYPE pgsimd_lifecycle_rollbacks_total counter")
		for _, l := range lcs {
			fmt.Fprintf(w, "pgsimd_lifecycle_rollbacks_total{system=%q} %d\n", l.system, l.stats.Rollbacks)
		}
	}

	fmt.Fprintln(w, "# HELP pgsimd_queue_depth Requests waiting for the dispatcher.")
	fmt.Fprintln(w, "# TYPE pgsimd_queue_depth gauge")
	fmt.Fprintf(w, "pgsimd_queue_depth %d\n", queueDepth)

	fmt.Fprintln(w, "# HELP pgsimd_solver_threads Resolved intra-solve parallelism per KKT factorization (before the per-solve worker-budget cap).")
	fmt.Fprintln(w, "# TYPE pgsimd_solver_threads gauge")
	fmt.Fprintf(w, "pgsimd_solver_threads %d\n", solverThreads)

	fmt.Fprintln(w, "# HELP pgsimd_uptime_seconds Seconds since the server started.")
	fmt.Fprintln(w, "# TYPE pgsimd_uptime_seconds gauge")
	fmt.Fprintf(w, "pgsimd_uptime_seconds %g\n", time.Since(m.started).Seconds())
}
