package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/scopf"
)

func postScreen(t *testing.T, h http.Handler, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/screen", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func decodeScreen(t *testing.T, body []byte) *ScreenResponse {
	t.Helper()
	var resp ScreenResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad screen response %s: %v", body, err)
	}
	return &resp
}

func TestScreenValidation(t *testing.T) {
	sys, _ := loadFixture(t)
	s := newTestServer(t, Config{}, sys, nil)
	h := s.Handler()

	cases := []struct {
		name string
		body string
		code int
		want string
	}{
		{"bad json", "{", http.StatusBadRequest, "bad request body"},
		{"missing system", `{}`, http.StatusBadRequest, "system"},
		{"unknown system", `{"system":"case999"}`, http.StatusNotFound, "unknown system"},
		{"draws and n_draws", `{"system":"case9","n_draws":2,"draws":[[1,1,1,1,1,1,1,1,1]]}`, http.StatusBadRequest, "mutually exclusive"},
		{"short draw", `{"system":"case9","draws":[[1,1]]}`, http.StatusBadRequest, "9 buses"},
		{"bad draw value", `{"system":"case9","draws":[[1,1,1,1,-2,1,1,1,1]]}`, http.StatusBadRequest, "draws[0][4]"},
		{"too many draws", `{"system":"case9","n_draws":100000}`, http.StatusBadRequest, "limit"},
		{"negative draws", `{"system":"case9","n_draws":-5}`, http.StatusBadRequest, "n_draws"},
		{"bad spread", `{"system":"case9","n_draws":2,"spread":2}`, http.StatusBadRequest, "spread"},
		{"spread without draws", `{"system":"case9","spread":0.2}`, http.StatusBadRequest, "n_draws"},
		{"bad contingency", `{"system":"case9","contingencies":[99]}`, http.StatusBadRequest, "contingencies[0]"},
		{"bad gen contingency", `{"system":"case9","gen_contingencies":[7]}`, http.StatusBadRequest, "gen_contingencies[0]"},
		{"gen list and all gens", `{"system":"case9","gen_contingencies":[0],"all_gen_outages":true}`, http.StatusBadRequest, "mutually exclusive"},
		{"bad pair", `{"system":"case9","pairs":[[1,99]]}`, http.StatusBadRequest, "pairs[0]"},
		{"nothing to screen", `{"system":"case9","contingencies":[],"skip_intact":true}`, http.StatusBadRequest, "nothing to screen"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postScreen(t, h, tc.body)
			if code != tc.code {
				t.Fatalf("status = %d (%s), want %d", code, body, tc.code)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("error body %s not JSON: %v", body, err)
			}
			if !strings.Contains(er.Error, tc.want) {
				t.Fatalf("error %q does not mention %q", er.Error, tc.want)
			}
		})
	}
}

// A served cold screening sweep must be bit-identical to running the
// topology-aware engine directly on the same prepared system.
func TestScreenColdMatchesEngine(t *testing.T) {
	sys, _ := loadFixture(t)
	s := newTestServer(t, Config{Workers: 2}, sys, nil)

	code, body := postScreen(t, s.Handler(), `{"system":"case9","n_draws":2,"seed":4,"outcomes":true}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d (%s)", code, body)
	}
	resp := decodeScreen(t, body)

	// Reference: identical draws through the engine, no serving layer.
	_, scenarios, _, err := s.validateScreen(&ScreenRequest{System: "case9", NDraws: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref := (&scopf.Engine{Base: sys.Case, Prepared: sys.OPF, Workers: 2}).Run(scenarios)
	sum := scopf.Summarize(ref.Outcomes)

	cons := scopf.Contingencies(sys.Case)
	if resp.Scenarios != 2*(len(cons)+1) || resp.Scenarios != sum.Total {
		t.Fatalf("scenarios = %d, want %d", resp.Scenarios, sum.Total)
	}
	if resp.Classes != len(cons)+1 || len(resp.ClassStats) != resp.Classes {
		t.Fatalf("classes = %d (%d stats), want %d", resp.Classes, len(resp.ClassStats), len(cons)+1)
	}
	if resp.Feasible != sum.Feasible || resp.Errors != sum.Errors || resp.WorstCost != sum.WorstCost {
		t.Fatalf("summary (%d feasible, %d errors, worst %v) != engine (%d, %d, %v)",
			resp.Feasible, resp.Errors, resp.WorstCost, sum.Feasible, sum.Errors, sum.WorstCost)
	}
	if resp.WarmConverged != 0 || resp.Projected != 0 {
		t.Fatalf("cold sweep reported warm starts: %+v", resp)
	}
	if len(resp.Outcomes) != resp.Scenarios {
		t.Fatalf("outcomes = %d, want %d", len(resp.Outcomes), resp.Scenarios)
	}
	for i, o := range resp.Outcomes {
		r := ref.Outcomes[i]
		if o.Feasible != r.Feasible || o.Cost != r.Cost || o.Iterations != r.Iterations {
			t.Fatalf("outcome %d: served (%v %v %d) != engine (%v %v %d)",
				i, o.Feasible, o.Cost, o.Iterations, r.Feasible, r.Cost, r.Iterations)
		}
		if o.Draw != i/(len(cons)+1) || o.OutBranch != r.Scenario.OutBranch {
			t.Fatalf("outcome %d mislabeled: %+v", i, o)
		}
	}
}

// A warm sweep on case9 (every branch rated) must project the model's
// intact-layout prediction onto the outage layouts — no silent cold
// fallbacks — while leaving feasibility identical to a cold sweep.
func TestScreenWarmProjection(t *testing.T) {
	sys, m := loadFixture(t)
	s := newTestServer(t, Config{Workers: 2}, sys, m)
	h := s.Handler()

	code, body := postScreen(t, h, `{"system":"case9","n_draws":2,"seed":4}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d (%s)", code, body)
	}
	warm := decodeScreen(t, body)
	if warm.WarmConverged == 0 || warm.Projected == 0 {
		t.Fatalf("projection produced no warm hits: %+v", warm)
	}
	for _, cl := range warm.ClassStats {
		switch {
		case cl.OutBranch < 0 && cl.WarmMode != "exact":
			t.Fatalf("intact class mode %q", cl.WarmMode)
		case cl.OutBranch >= 0 && cl.WarmMode != "projected":
			t.Fatalf("outage class %d mode %q", cl.OutBranch, cl.WarmMode)
		}
	}

	code, body = postScreen(t, h, `{"system":"case9","n_draws":2,"seed":4,"cold":true}`)
	if code != http.StatusOK {
		t.Fatalf("cold status = %d (%s)", code, body)
	}
	cold := decodeScreen(t, body)
	if cold.WarmConverged != 0 {
		t.Fatalf("cold sweep warm-started: %+v", cold)
	}
	if warm.Feasible != cold.Feasible {
		t.Fatalf("warm feasibility %d != cold %d", warm.Feasible, cold.Feasible)
	}
	if warm.Feasible > 0 && warm.MeanIterations >= cold.MeanIterations {
		t.Errorf("warm screening mean iterations %.1f not below cold %.1f",
			warm.MeanIterations, cold.MeanIterations)
	}
}

// The full contingency space is reachable over the API: generator
// outages, explicit N-2 pairs (including islanding pairs, classified
// without solving) and a client-supplied dispatch policy, all reported
// through the extended class/outcome/summary fields and bit-identical
// to the engine run directly.
func TestScreenFullContingencySpace(t *testing.T) {
	sys, m := loadFixture(t)
	s := newTestServer(t, Config{Workers: 2}, sys, m)
	h := s.Handler()

	// case9 is a 6-branch ring plus bridges, so every branch pair
	// islands the grid — both pairs exercise the classification path.
	body := `{"system":"case9","n_draws":2,"seed":4,"contingencies":[1,2],` +
		`"all_gen_outages":true,"pairs":[[1,2],[1,4]],"outcomes":true}`
	code, raw := postScreen(t, h, body)
	if code != http.StatusOK {
		t.Fatalf("status = %d (%s)", code, raw)
	}
	resp := decodeScreen(t, raw)
	// 2 draws × (intact + 2 branches + 3 gens + 2 pairs) = 16.
	if resp.Scenarios != 16 {
		t.Fatalf("scenarios = %d, want 16", resp.Scenarios)
	}
	if resp.Islanded != 4 {
		t.Fatalf("islanded = %d, want 4 (2 pairs × 2 draws)", resp.Islanded)
	}
	kinds := map[string]int{}
	for _, cl := range resp.ClassStats {
		kinds[cl.Kind]++
		if cl.Kind == "pair" && cl.OutBranch == 1 && cl.OutBranch2 == 2 && !cl.Islanded {
			t.Fatalf("islanding pair class not flagged: %+v", cl)
		}
	}
	if kinds["intact"] != 1 || kinds["branch"] != 2 || kinds["gen"] != 3 || kinds["pair"] != 2 {
		t.Fatalf("class kinds %+v", kinds)
	}
	for _, o := range resp.Outcomes {
		if o.OutBranch == 1 && o.OutBranch2 == 2 {
			if !o.Islanded || o.Iterations != 0 || o.Feasible {
				t.Fatalf("islanding pair outcome %+v", o)
			}
		}
		if o.OutGen >= 0 && o.Err == "" && !o.Feasible && !o.Islanded {
			t.Logf("gen outage infeasible: %+v", o) // legal, just informative
		}
	}

	// A maximally conservative policy (threshold above any sigmoid
	// score) must push every warm-startable scenario to cold and report
	// the count.
	code, raw = postScreen(t, h, `{"system":"case9","n_draws":2,"seed":4,"policy":{"weights":[0,0,0,0,0,0],"threshold":2}}`)
	if code != http.StatusOK {
		t.Fatalf("policy status = %d (%s)", code, raw)
	}
	pol := decodeScreen(t, raw)
	if pol.WarmConverged != 0 || pol.PolicyCold != pol.Scenarios {
		t.Fatalf("conservative policy did not cold-dispatch everything: %+v", pol)
	}
}

func TestScreenMetricsAndBusy(t *testing.T) {
	sys, m := loadFixture(t)
	s := newTestServer(t, Config{Workers: 2}, sys, m)
	h := s.Handler()

	if code, body := postScreen(t, h, `{"system":"case9","contingencies":[1,2]}`); code != http.StatusOK {
		t.Fatalf("screen = %d (%s)", code, body)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	met := rec.Body.String()
	for _, want := range []string{
		`pgsimd_screen_sweeps_total{system="case9"} 1`,
		`pgsimd_screen_scenarios_total{system="case9"} 3`,
		`pgsimd_screen_classes_total{system="case9"} 3`,
		`pgsimd_screen_warm_total{system="case9"}`,
		`pgsimd_screen_projected_total{system="case9"}`,
		`pgsimd_screen_errors_total{system="case9"} 0`,
		"pgsimd_screen_latency_seconds_count 1",
		`pgsimd_http_requests_total{endpoint="/v1/screen",code="200"} 1`,
	} {
		if !strings.Contains(met, want) {
			t.Fatalf("metrics missing %q:\n%s", want, met)
		}
	}

	// A sweep in flight sheds a second request with 503.
	s.screenSem <- struct{}{}
	code, body := postScreen(t, h, `{"system":"case9"}`)
	<-s.screenSem
	if code != http.StatusServiceUnavailable {
		t.Fatalf("busy screen = %d (%s), want 503", code, body)
	}
}
