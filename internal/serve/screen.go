package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/batch"
	"repro/internal/scopf"
)

// handleScreen runs one N-1 screening sweep on the topology-aware
// engine, reusing the system's prepared OPF structure and — for warm
// screening — its model replica pool. Sweeps are serialized through
// screenSem; a second concurrent request sheds with 503 rather than
// oversubscribing the solver pool.
func (s *Server) handleScreen(w http.ResponseWriter, r *http.Request) {
	var req ScreenRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeErrorAt(w, "/v1/screen", http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	st, scenarios, drawIdx, err := s.validateScreen(&req)
	if err != nil {
		code := http.StatusBadRequest
		if err == errUnknownSystem {
			code = http.StatusNotFound
		}
		s.writeErrorAt(w, "/v1/screen", code, err.Error())
		return
	}
	select {
	case s.screenSem <- struct{}{}:
	default:
		s.writeErrorAt(w, "/v1/screen", http.StatusServiceUnavailable, "a screening sweep is already running, retry later")
		return
	}
	defer func() { <-s.screenSem }()

	// The replica set is loaded once for the whole sweep; borrowed
	// replicas go back to the same set even if the system's model is
	// hot-swapped mid-sweep, so the sweep is served wholly by one
	// version and the swap drops nothing.
	var preds []scopf.Predictor
	if rs := st.replicas(); rs != nil && !req.Cold {
		preds = s.borrowPredictors(rs, len(scenarios))
		defer func() {
			for _, p := range preds {
				rs.pool <- p
			}
		}()
	}

	eng := &scopf.Engine{
		Base:       st.sys.Case,
		Prepared:   st.sys.OPF,
		Predictors: preds,
		Workers:    s.cfg.Workers,
		Policy:     req.Policy,
	}
	t0 := time.Now()
	rep := eng.Run(scenarios)
	elapsed := time.Since(t0)

	sum := scopf.Summarize(rep.Outcomes)
	resp := &ScreenResponse{
		System:         st.sys.Name,
		Scenarios:      sum.Total,
		Classes:        len(rep.Classes),
		Feasible:       sum.Feasible,
		WarmConverged:  sum.WarmConverged,
		Projected:      sum.Projected,
		Islanded:       sum.Islanded,
		PolicyCold:     sum.PolicyCold,
		Errors:         sum.Errors,
		MeanIterations: sum.MeanIterations,
		WorstCost:      sum.WorstCost,
		ElapsedUS:      usec(elapsed),
	}
	if sum.Total > 0 {
		resp.WarmHitRate = float64(sum.WarmConverged) / float64(sum.Total)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		resp.ScenariosPerSec = float64(sum.Total) / sec
	}
	for _, cl := range rep.Classes {
		resp.ClassStats = append(resp.ClassStats, ScreenClass{
			OutBranch: cl.OutBranch, OutBranch2: cl.OutBranch2, OutGen: cl.OutGen,
			Kind: cl.Kind, Scenarios: cl.Scenarios, NMu: cl.NIq,
			WarmMode: cl.WarmMode, Islanded: cl.Islanded,
		})
	}
	if req.Outcomes {
		resp.Outcomes = make([]ScreenOutcome, len(rep.Outcomes))
		for i, o := range rep.Outcomes {
			so := ScreenOutcome{
				Draw: drawIdx[i], OutBranch: o.Scenario.OutBranch,
				OutBranch2: o.Scenario.SecondBranch(), OutGen: o.Scenario.OutagedGen(),
				Feasible: o.Feasible, Cost: o.Cost, Iterations: o.Iterations,
				Binding: o.Binding, Warm: o.WarmUsed, Projected: o.Projected,
				Islanded: o.Islanded, ColdByPolicy: o.ColdByPolicy,
			}
			if o.Err != nil {
				so.Err = o.Err.Error()
			}
			resp.Outcomes[i] = so
		}
	}
	s.met.recordScreen(st.sys.Name, sum, len(rep.Classes), elapsed)
	s.writeJSON(w, http.StatusOK, resp)
}

// borrowPredictors takes model replicas from a replica set for the
// duration of a sweep: one blocking receive (there is always at least
// one replica), then whatever else is idle, up to the engine's worker
// count but always leaving one replica behind so concurrent /v1/solve
// warm starts keep flowing instead of stalling the dispatcher for the
// whole sweep. A single-replica pool is the unavoidable exception:
// solves for that system then wait until the sweep returns it.
func (s *Server) borrowPredictors(rs *replicaSet, scenarios int) []scopf.Predictor {
	want := batch.Workers(s.cfg.Workers)
	if want > scenarios {
		want = scenarios
	}
	if max := cap(rs.pool) - 1; want > max {
		want = max
	}
	if want < 1 {
		want = 1
	}
	preds := []scopf.Predictor{<-rs.pool}
	for len(preds) < want {
		select {
		case p := <-rs.pool:
			preds = append(preds, p)
		default:
			return preds
		}
	}
	return preds
}
