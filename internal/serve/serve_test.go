package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/opf"
)

// fixture shares one loaded system and one trained model across tests
// (training dominates the suite's runtime).
var fixture struct {
	once sync.Once
	sys  *core.System
	m    *mtl.Model
	err  error
}

func loadFixture(t *testing.T) (*core.System, *mtl.Model) {
	t.Helper()
	fixture.once.Do(func() {
		sys, err := core.LoadSystem("case9")
		if err != nil {
			fixture.err = err
			return
		}
		set, err := sys.GenerateData(40, 3)
		if err != nil {
			fixture.err = err
			return
		}
		train, _ := set.Split(0.8)
		m, err := sys.TrainModel(mtl.VariantSmartPGSim, train, 60, 7, nil)
		if err != nil {
			fixture.err = err
			return
		}
		fixture.sys, fixture.m = sys, m
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.sys, fixture.m
}

func newTestServer(t *testing.T, cfg Config, sys *core.System, m *mtl.Model) *Server {
	t.Helper()
	s := New(cfg)
	s.AddSystem(sys, m)
	t.Cleanup(s.Close)
	return s
}

func postSolve(t *testing.T, h http.Handler, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func decodeSolve(t *testing.T, body []byte) *SolveResponse {
	t.Helper()
	var resp SolveResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad solve response %s: %v", body, err)
	}
	return &resp
}

func uniform(n int, v float64) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = v
	}
	return f
}

func TestRequestValidation(t *testing.T) {
	sys, _ := loadFixture(t)
	s := newTestServer(t, Config{}, sys, nil)
	h := s.Handler()

	cases := []struct {
		name string
		body string
		code int
		want string // substring of the error
	}{
		{"bad json", "{", http.StatusBadRequest, "bad request body"},
		{"unknown field", `{"system":"case9","bogus":1}`, http.StatusBadRequest, "bogus"},
		{"missing system", `{}`, http.StatusBadRequest, "system"},
		{"unknown system", `{"system":"case999"}`, http.StatusNotFound, "unknown system"},
		{"scale and factors", `{"system":"case9","scale":1.0,"factors":[1,1,1,1,1,1,1,1,1]}`, http.StatusBadRequest, "mutually exclusive"},
		{"negative scale", `{"system":"case9","scale":-1}`, http.StatusBadRequest, "out of range"},
		{"absurd scale", `{"system":"case9","scale":1000}`, http.StatusBadRequest, "out of range"},
		{"short factors", `{"system":"case9","factors":[1,1]}`, http.StatusBadRequest, "9 buses"},
		{"bad factor value", `{"system":"case9","factors":[1,1,1,1,-2,1,1,1,1]}`, http.StatusBadRequest, "factors[4]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postSolve(t, h, tc.body)
			if code != tc.code {
				t.Fatalf("status = %d (%s), want %d", code, body, tc.code)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("error body %s not JSON: %v", body, err)
			}
			if !strings.Contains(er.Error, tc.want) {
				t.Fatalf("error %q does not mention %q", er.Error, tc.want)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/v1/solve", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/solve = %d, want 405", rec.Code)
		}
	})

	t.Run("oversized body", func(t *testing.T) {
		big := `{"system":"case9","factors":[` + strings.Repeat("1,", 1<<20) + `1]}`
		s2 := newTestServer(t, Config{MaxBodyBytes: 1024}, sys, nil)
		code, _ := postSolve(t, s2.Handler(), big)
		if code != http.StatusBadRequest {
			t.Fatalf("oversized body = %d, want 400", code)
		}
	})
}

// TestColdMatchesOffline pins that a served cold solve is bit-identical
// to the offline pgsim path (Perturb + Solve from the default start).
func TestColdMatchesOffline(t *testing.T) {
	sys, _ := loadFixture(t)
	s := newTestServer(t, Config{}, sys, nil)

	factors := uniform(sys.Case.NB(), 1.05)
	code, body := postSolve(t, s.Handler(), `{"system":"case9","scale":1.05}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d (%s)", code, body)
	}
	resp := decodeSolve(t, body)
	if resp.Path != "cold" || !resp.Converged || resp.ColdRestarted {
		t.Fatalf("unexpected outcome: %+v", resp)
	}

	ref, err := sys.OPF.Perturb(factors).Solve(nil, opf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Iterations != ref.Iterations || resp.Cost != ref.Cost {
		t.Fatalf("served (it=%d cost=%v) != offline (it=%d cost=%v)",
			resp.Iterations, resp.Cost, ref.Iterations, ref.Cost)
	}
	checkVectors(t, resp, ref)
}

// TestWarmMatchesOffline pins that a warm-started served solution is
// bit-identical to the offline core.SolveWarm path with the same model.
func TestWarmMatchesOffline(t *testing.T) {
	sys, m := loadFixture(t)
	s := newTestServer(t, Config{}, sys, m)

	scale := 1.02
	factors := uniform(sys.Case.NB(), scale)
	code, body := postSolve(t, s.Handler(), fmt.Sprintf(`{"system":"case9","scale":%v}`, scale))
	if code != http.StatusOK {
		t.Fatalf("status = %d (%s)", code, body)
	}
	resp := decodeSolve(t, body)
	if !resp.Converged {
		t.Fatalf("request did not converge: %+v", resp)
	}
	if resp.Path != "warm" && resp.Path != "warm_restart" {
		t.Fatalf("path = %q, want a warm-pipeline path", resp.Path)
	}

	ref := sys.SolveWarm(m, factors, sys.InstanceInput(factors))
	if resp.WarmConverged != ref.Converged {
		t.Fatalf("served warm_converged=%v, offline %v", resp.WarmConverged, ref.Converged)
	}
	if resp.Iterations != ref.Iterations || resp.Cost != ref.Cost {
		t.Fatalf("served (it=%d cost=%v) != offline (it=%d cost=%v)",
			resp.Iterations, resp.Cost, ref.Iterations, ref.Cost)
	}
	checkVectors(t, resp, ref.Result)

	// The warm solution is the same optimum the cold path finds.
	cold, err := sys.OPF.Perturb(factors).Solve(nil, opf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := resp.Cost/cold.Cost - 1; d > 1e-6 || d < -1e-6 {
		t.Fatalf("warm cost %v deviates from cold optimum %v", resp.Cost, cold.Cost)
	}
}

// stubPredictor forces a specific warm-start point regardless of input.
type stubPredictor struct{ start *opf.Start }

func (p stubPredictor) Predict(la.Vector) *opf.Start { return p.start }

// badStart is a warm-start point that deterministically does not
// converge on case9 (alternating near-zero/huge voltage magnitudes with
// wild angles — verified to hit the MIPS iteration limit).
func badStart(lay opf.Layout) *opf.Start {
	mk := func(n int, v float64) la.Vector {
		x := make(la.Vector, n)
		for i := range x {
			x[i] = v
		}
		return x
	}
	x := mk(lay.NX, 0)
	for i := 0; i < lay.NB; i++ {
		x[lay.VaOff+i] = float64(i) * 3
		if i%2 == 0 {
			x[lay.VmOff+i] = 1e-6
		} else {
			x[lay.VmOff+i] = 1e4
		}
	}
	return &opf.Start{X: x, Lam: mk(lay.NEq, -1e7), Mu: mk(lay.NIq, 1e-8), Z: mk(lay.NIq, 1e-8)}
}

// TestWarmColdFallback pins the transparent cold restart: a forced
// non-convergent prediction must still produce the converged cold
// solution, flagged as a restart.
func TestWarmColdFallback(t *testing.T) {
	sys, _ := loadFixture(t)
	s := New(Config{})
	t.Cleanup(s.Close)
	s.AddSystemPredictors(sys, []core.Predictor{stubPredictor{start: badStart(sys.OPF.Lay)}})

	code, body := postSolve(t, s.Handler(), `{"system":"case9","scale":1.01}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d (%s)", code, body)
	}
	resp := decodeSolve(t, body)
	if resp.Path != "warm_restart" || resp.WarmConverged || !resp.ColdRestarted {
		t.Fatalf("fallback not taken: %+v", resp)
	}
	if !resp.Converged {
		t.Fatal("cold restart did not converge")
	}

	factors := uniform(sys.Case.NB(), 1.01)
	ref, err := sys.OPF.Perturb(factors).Solve(nil, opf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Iterations != ref.Iterations || resp.Cost != ref.Cost {
		t.Fatalf("restart solution (it=%d cost=%v) != offline cold (it=%d cost=%v)",
			resp.Iterations, resp.Cost, ref.Iterations, ref.Cost)
	}
	checkVectors(t, resp, ref)
	if resp.Timing.RestartUS <= 0 {
		t.Fatalf("restart timing not reported: %+v", resp.Timing)
	}
}

// TestConcurrentDeterminism fires concurrent warm requests through a
// real listener (exercising the micro-batcher and the replica pool) and
// pins every response against its sequentially computed offline
// reference.
func TestConcurrentDeterminism(t *testing.T) {
	sys, m := loadFixture(t)
	s := newTestServer(t, Config{Workers: 4, MaxBatch: 8, BatchWindow: 10 * time.Millisecond}, sys, m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	scales := []float64{0.92, 0.95, 0.98, 1.0, 1.02, 1.05, 1.08, 0.92, 1.0, 1.05}
	refs := make([]*core.WarmOutcome, len(scales))
	for i, sc := range scales {
		f := uniform(sys.Case.NB(), sc)
		refs[i] = sys.SolveWarm(m, f, sys.InstanceInput(f))
	}

	type result struct {
		idx  int
		resp *SolveResponse
		err  error
	}
	results := make(chan result, len(scales))
	for i, sc := range scales {
		go func(i int, sc float64) {
			r, err := http.Post(ts.URL+"/v1/solve", "application/json",
				strings.NewReader(fmt.Sprintf(`{"system":"case9","scale":%v}`, sc)))
			if err != nil {
				results <- result{idx: i, err: err}
				return
			}
			defer r.Body.Close()
			body, _ := io.ReadAll(r.Body)
			if r.StatusCode != http.StatusOK {
				results <- result{idx: i, err: fmt.Errorf("status %d: %s", r.StatusCode, body)}
				return
			}
			var resp SolveResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				results <- result{idx: i, err: err}
				return
			}
			results <- result{idx: i, resp: &resp}
		}(i, sc)
	}
	for range scales {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		ref := refs[r.idx]
		if r.resp.Iterations != ref.Iterations || r.resp.Cost != ref.Cost ||
			r.resp.WarmConverged != ref.Converged {
			t.Fatalf("scale %v: served (it=%d cost=%v warm=%v) != offline (it=%d cost=%v warm=%v)",
				scales[r.idx], r.resp.Iterations, r.resp.Cost, r.resp.WarmConverged,
				ref.Iterations, ref.Cost, ref.Converged)
		}
		checkVectors(t, r.resp, ref.Result)
	}
}

func TestSystemsHealthMetrics(t *testing.T) {
	sys, m := loadFixture(t)
	s := newTestServer(t, Config{}, sys, m)
	h := s.Handler()

	// A solve so the counters are non-zero.
	if code, body := postSolve(t, h, `{"system":"case9"}`); code != http.StatusOK {
		t.Fatalf("solve = %d (%s)", code, body)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/systems", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var sr SystemsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Systems) != 1 || sr.Systems[0].Name != "case9" || !sr.Systems[0].Model {
		t.Fatalf("systems = %+v", sr.Systems)
	}
	if sr.Systems[0].Buses != 9 || sr.Systems[0].NLam != sys.OPF.Lay.NEq {
		t.Fatalf("system info = %+v", sr.Systems[0])
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var hr HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Systems != 1 {
		t.Fatalf("health = %+v", hr)
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	met := rec.Body.String()
	for _, want := range []string{
		"pgsimd_warm_attempts_total 1",
		`pgsimd_solves_total{system="case9",path="warm`, // warm or warm_restart
		"pgsimd_solve_latency_seconds_count",
		"pgsimd_batch_size_count 1",
		"pgsimd_queue_depth 0",
		"pgsimd_solver_threads ",
		`pgsimd_http_requests_total{endpoint="/v1/solve",code="200"} 1`,
		`pgsimd_kkt_symbolic_analyses_total{system="case9"}`,
		`pgsimd_kkt_numeric_refactors_total{system="case9"}`,
		`pgsimd_kkt_refactor_fallbacks_total{system="case9"}`,
	} {
		if !strings.Contains(met, want) {
			t.Fatalf("metrics missing %q:\n%s", want, met)
		}
	}
	// The solve above ran several interior-point iterations; all but the
	// first factorization of each solve must have been numeric refactors
	// on the grid's cached pattern.
	st := sys.OPF.KKTStats()
	if st.Refactors == 0 || st.Analyses == 0 || st.Orderings == 0 {
		t.Fatalf("kkt stats not aggregated: %+v", st)
	}
	if st.Refactors < st.Analyses {
		t.Fatalf("expected refactors to dominate analyses: %+v", st)
	}
}

// TestQueueFull pins load shedding: with a full queue the server
// answers 503 instead of blocking.
func TestQueueFull(t *testing.T) {
	sys, _ := loadFixture(t)
	s := New(Config{QueueDepth: 1, MaxBatch: 1})
	s.AddSystem(sys, nil)
	// Stop the dispatcher first so the stuffed queue stays full for the
	// handler under test.
	s.Close()
	s.queue <- &job{st: s.systems["case9"], factors: uniform(9, 1), resp: make(chan *SolveResponse, 1)}

	code, body := postSolve(t, s.Handler(), `{"system":"case9"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("full queue = %d (%s), want 503", code, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || !strings.Contains(er.Error, "queue full") {
		t.Fatalf("error body = %s", body)
	}
}

// checkVectors compares the solution vectors of a response against an
// offline opf.Result bit for bit (JSON float64 encoding round-trips
// exactly).
func checkVectors(t *testing.T, resp *SolveResponse, ref *opf.Result) {
	t.Helper()
	cmp := func(name string, got []float64, want la.Vector) {
		if len(got) != len(want) {
			t.Fatalf("%s: %d entries, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %v, offline %v", name, i, got[i], want[i])
			}
		}
	}
	cmp("va", resp.Va, ref.Va)
	cmp("vm", resp.Vm, ref.Vm)
	cmp("pg", resp.Pg, ref.Pg)
	cmp("qg", resp.Qg, ref.Qg)
}
