package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/horizon"
)

// maxTrajectorySteps bounds one /v1/trajectory request: long enough for
// a day of 5-minute intervals, short enough that a single stream cannot
// pin a replica for hours unnoticed.
const maxTrajectorySteps = 512

// defaultRampFrac is the per-step ramp limit applied when the request
// does not set ramp_frac: 20 % of each unit's dispatch range per step
// (see horizon.RampFromRange; an explicit 0 disables ramp coupling).
const defaultRampFrac = 0.2

// TrajectoryRequest is the body of POST /v1/trajectory: a multi-period
// OPF trajectory solved with warm-start chaining (default), per-step
// model prediction, or cold starts. The load trajectory is the
// deterministic synthetic forecast of horizon.Synthetic — a smooth ramp
// profile times per-step noise — so a (system, steps, seed, amp,
// spread) tuple replays bit-identically, offline or served.
type TrajectoryRequest struct {
	// System names a loaded system ("case9", …); required.
	System string `json:"system"`
	// Steps is the trajectory length; required, 1..512.
	Steps int `json:"steps"`
	// Mode is "chain" (default), "predict" or "cold".
	Mode string `json:"mode,omitempty"`
	// Seed seeds the per-step forecast noise (deterministic replay).
	Seed int64 `json:"seed,omitempty"`
	// Amp is the smooth ramp profile's amplitude in [0, 1); default 0.05.
	Amp *float64 `json:"amp,omitempty"`
	// Spread is the per-step noise half-width in [0, 1); default 0.02.
	Spread *float64 `json:"spread,omitempty"`
	// RampFrac sets the per-step ramp limit as a fraction of each unit's
	// dispatch range, in [0, 1]; default 0.2; 0 disables ramp coupling.
	RampFrac *float64 `json:"ramp_frac,omitempty"`
}

// TrajectoryStep is one NDJSON line of the /v1/trajectory stream,
// emitted as soon as the step's solve completes.
type TrajectoryStep struct {
	Step          int       `json:"step"`
	Converged     bool      `json:"converged"`
	Warm          bool      `json:"warm"`
	ColdRestarted bool      `json:"cold_restarted,omitempty"`
	Ramped        bool      `json:"ramped,omitempty"`
	RampBinding   int       `json:"ramp_binding,omitempty"`
	Iterations    int       `json:"iterations"`
	Cost          float64   `json:"cost"`
	Pg            []float64 `json:"pg"` // MW — the ramp-chained quantity
	Timing        Timing    `json:"timing"`
	Err           string    `json:"err,omitempty"`
}

// TrajectorySummary is the final NDJSON line of a completed stream,
// marked by done = true.
type TrajectorySummary struct {
	Done         bool    `json:"done"`
	System       string  `json:"system"`
	Mode         string  `json:"mode"`
	Steps        int     `json:"steps"`
	Converged    int     `json:"converged"`
	WarmHits     int     `json:"warm_hits"`
	ColdRestarts int     `json:"cold_restarts"`
	Iterations   int     `json:"iterations"`
	ElapsedUS    int64   `json:"elapsed_us"`
	StepsPerSec  float64 `json:"steps_per_sec"`
}

// validateTrajectory resolves a trajectory request into the system, the
// parsed mode and the synthetic trajectory. Error text is safe for the
// client.
func (s *Server) validateTrajectory(req *TrajectoryRequest) (*systemState, horizon.Mode, *horizon.Trajectory, float64, error) {
	if req.System == "" {
		return nil, 0, nil, 0, fmt.Errorf("missing required field %q", "system")
	}
	st, ok := s.systems[req.System]
	if !ok {
		return nil, 0, nil, 0, errUnknownSystem
	}
	if req.Steps <= 0 {
		return nil, 0, nil, 0, fmt.Errorf("steps %d out of range (want a positive count)", req.Steps)
	}
	if req.Steps > maxTrajectorySteps {
		return nil, 0, nil, 0, fmt.Errorf("steps %d exceeds the limit of %d", req.Steps, maxTrajectorySteps)
	}
	modeStr := req.Mode
	if modeStr == "" {
		modeStr = "chain"
	}
	mode, err := horizon.ParseMode(modeStr)
	if err != nil {
		return nil, 0, nil, 0, fmt.Errorf("mode %q unknown (want chain, predict or cold)", req.Mode)
	}
	if mode == horizon.ModePredict && st.replicas() == nil {
		return nil, 0, nil, 0, fmt.Errorf("mode %q needs a model, system %s serves cold-only", "predict", req.System)
	}
	amp := 0.05
	if req.Amp != nil {
		amp = *req.Amp
	}
	spread := 0.02
	if req.Spread != nil {
		spread = *req.Spread
	}
	frac := defaultRampFrac
	if req.RampFrac != nil {
		frac = *req.RampFrac
	}
	if frac < 0 || frac > 1 {
		return nil, 0, nil, 0, fmt.Errorf("ramp_frac %v out of range [0, 1]", frac)
	}
	traj, err := horizon.Synthetic(st.sys.Case.NB(), req.Steps, req.Seed, amp, spread)
	if err != nil {
		// Synthetic's own bounds checks (amp/spread in [0, 1)) with the
		// package prefix stripped for the client.
		return nil, 0, nil, 0, fmt.Errorf("%v", err)
	}
	return st, mode, traj, frac, nil
}

// handleTrajectory streams one multi-period trajectory as NDJSON: one
// TrajectoryStep line per step as it completes, then a TrajectorySummary
// line with done = true. The whole trajectory runs on this handler's
// goroutine with at most one pinned model replica — per-trajectory
// worker affinity, so chained state never crosses replicas — and a
// client disconnect between steps aborts the run and returns the
// replica to the pool. Concurrent trajectories are bounded by the
// replica-pool size; excess requests shed with 503.
func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	var req TrajectoryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeErrorAt(w, "/v1/trajectory", http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	st, mode, traj, frac, err := s.validateTrajectory(&req)
	if err != nil {
		code := http.StatusBadRequest
		if err == errUnknownSystem {
			code = http.StatusNotFound
		}
		s.writeErrorAt(w, "/v1/trajectory", code, err.Error())
		return
	}
	select {
	case s.trajSem <- struct{}{}:
	default:
		s.writeErrorAt(w, "/v1/trajectory", http.StatusServiceUnavailable, "trajectory capacity exhausted, retry later")
		return
	}
	defer func() { <-s.trajSem }()

	// Pin one replica for the whole trajectory. Prediction is stateful
	// per step (forward passes cache activations) and chain state lives
	// on this goroutine, so exactly one replica serves the stream.
	var pred horizon.Predictor
	if mode == horizon.ModePredict {
		// The replica set is loaded once and the pinned replica returns
		// to it, so a hot swap mid-stream neither drops the stream nor
		// changes the model it predicts with.
		rs := st.replicas()
		var rep core.Predictor
		select {
		case rep = <-rs.pool:
		default:
			s.writeErrorAt(w, "/v1/trajectory", http.StatusServiceUnavailable, "no idle model replica, retry later")
			return
		}
		defer func() { rs.pool <- rep }()
		pred = rep
	}

	ramp := horizon.RampFromRange(st.sys.OPF, frac)
	stepper, err := horizon.NewStepper(st.sys.OPF, mode, pred, ramp, ramp)
	if err != nil {
		s.writeErrorAt(w, "/v1/trajectory", http.StatusInternalServerError, err.Error())
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	s.met.recordRequest("/v1/trajectory", http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	sum := TrajectorySummary{System: st.sys.Name, Mode: mode.String()}
	t0 := time.Now()
	for _, f := range traj.Factors {
		select {
		case <-ctx.Done():
			// Client gone mid-stream: abort the horizon, release the
			// pinned replica (deferred) and account the disconnect.
			s.met.recordTrajectoryDisconnect(st.sys.Name)
			return
		default:
		}
		stepT0 := time.Now()
		sr := stepper.Step(f)
		line := TrajectoryStep{
			Step:          sr.Step,
			Converged:     sr.Converged,
			Warm:          sr.WarmUsed,
			ColdRestarted: sr.ColdRestart,
			Ramped:        sr.Ramped,
			RampBinding:   sr.RampBinding,
			Iterations:    sr.Iterations,
			Cost:          sr.Cost,
			Timing: Timing{
				PrepUS:  usec(sr.PrepTime),
				InferUS: usec(sr.InferTime),
				SolveUS: usec(sr.SolveTime),
				TotalUS: usec(sr.PrepTime + sr.InferTime + sr.SolveTime),
			},
		}
		if sr.Result != nil {
			line.Pg = sr.Result.Pg
		}
		if sr.Err != nil {
			line.Err = sr.Err.Error()
		}
		if err := enc.Encode(line); err != nil {
			s.met.recordTrajectoryDisconnect(st.sys.Name)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		sum.Steps++
		sum.Iterations += sr.Iterations
		if sr.Converged {
			sum.Converged++
		}
		if sr.WarmUsed {
			sum.WarmHits++
		}
		if sr.ColdRestart {
			sum.ColdRestarts++
		}
		s.met.recordTrajectoryStep(st.sys.Name, mode.String(), sr.WarmUsed, time.Since(stepT0))
	}
	elapsed := time.Since(t0)
	sum.Done = true
	sum.ElapsedUS = usec(elapsed)
	if sec := elapsed.Seconds(); sec > 0 {
		sum.StepsPerSec = float64(sum.Steps) / sec
	}
	_ = enc.Encode(sum)
	if flusher != nil {
		flusher.Flush()
	}
	s.met.recordTrajectoryDone(st.sys.Name, mode.String())
}
