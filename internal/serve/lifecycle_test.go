package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/lifecycle"
	"repro/internal/mips"
	"repro/internal/mtl"
	"repro/internal/opf"
)

// degradingPredictor models an environment drifting away from a frozen
// model: the first goodFor predictions come from the real model (warm
// starts converge), every later one is a deterministically
// non-convergent start. Safe for concurrent use, though the lifecycle
// tests drive it sequentially for exact drift timing.
type degradingPredictor struct {
	mu      sync.Mutex
	good    core.Predictor
	bad     *opf.Start
	goodFor int
	served  int
}

func (p *degradingPredictor) Predict(in la.Vector) *opf.Start {
	p.mu.Lock()
	n := p.served
	p.served++
	p.mu.Unlock()
	if n < p.goodFor {
		return p.good.Predict(in)
	}
	return p.bad
}

// postWarm posts one warm solve with uniform load factors and decodes
// the 200 response.
func postWarm(t *testing.T, h http.Handler, scale float64) *SolveResponse {
	t.Helper()
	code, body := postSolve(t, h, fmt.Sprintf(`{"system":"case9","scale":%v}`, scale))
	if code != http.StatusOK {
		t.Fatalf("status = %d (%s)", code, body)
	}
	return decodeSolve(t, body)
}

// TestLifecycleClosedLoopServed drives the whole online model lifecycle
// through the serving layer, deterministically: healthy traffic freezes
// the drift baseline, a regime change (the incumbent's starts stop
// converging) fires the detector on an exact request, the retrain runs
// on the captured (instance, solution) pairs through the offline
// training path, the candidate canaries against the degraded incumbent
// on deterministically split traffic, and promotion hot-swaps it into
// serving — all with an injected clock, no timers, no RNG.
func TestLifecycleClosedLoopServed(t *testing.T) {
	sys, m := loadFixture(t)
	dir := t.TempDir()
	clk := lifecycle.NewFakeClock()
	reg, err := lifecycle.NewRegistry(dir+"/registry", clk)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := reg.SaveIncumbent(sys.Name, m, "boot")
	if err != nil {
		t.Fatal(err)
	}

	// MaxBatch 1 serializes the dispatcher, so observation order equals
	// request order and every lifecycle transition lands on an exact
	// request index.
	s := New(Config{MaxBatch: 1})
	t.Cleanup(s.Close)
	deg := &degradingPredictor{good: m, bad: badStart(sys.OPF.Lay), goodFor: 16}
	s.AddSystemPredictors(sys, []core.Predictor{deg})
	if err := s.SwapPredictors(sys.Name, []core.Predictor{deg}, inc.ID); err != nil {
		t.Fatal(err)
	}
	mgr, err := lifecycle.NewManager(lifecycle.Config{
		System:  sys,
		Variant: mtl.VariantSmartPGSim,
		Clock:   clk,
		Capture: lifecycle.CaptureConfig{Dir: dir},
		Drift:   lifecycle.DriftConfig{Window: 8, Baseline: 2},
		Canary:  lifecycle.CanaryConfig{Frac: 0.5, Window: 4},

		RetrainEpochs: 40,
		RetrainSeed:   11,
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachLifecycle(sys.Name, mgr, false); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Phase 1: 16 healthy requests — two baseline windows. Seeded
	// traffic: the scale sequence is a fixed ramp.
	scaleAt := func(i int) float64 { return 1.0 + 0.002*float64(i%10) }
	for i := 0; i < 16; i++ {
		resp := postWarm(t, h, scaleAt(i))
		if !resp.WarmConverged || resp.ModelVersion != inc.ID || resp.Canary {
			t.Fatalf("baseline request %d: %+v", i, resp)
		}
	}
	if mgr.State() != lifecycle.StateCapturing || mgr.Detector().Fired() {
		t.Fatalf("after baseline: state=%v fired=%v", mgr.State(), mgr.Detector().Fired())
	}

	// Phase 2: the regime changes. Warm starts stop converging (served
	// via the cold restart), and the window closing at request 24 fires
	// the detector.
	for i := 16; i < 24; i++ {
		resp := postWarm(t, h, scaleAt(i))
		if resp.Path != "warm_restart" || !resp.Converged {
			t.Fatalf("degraded request %d: %+v", i, resp)
		}
		wantState := lifecycle.StateCapturing
		if i == 23 {
			wantState = lifecycle.StateRetraining
		}
		if mgr.State() != wantState {
			t.Fatalf("after request %d: state=%v, want %v", i, mgr.State(), wantState)
		}
	}
	if st := mgr.Stats(); st.DriftEvents != 1 || st.Captured != 24 {
		t.Fatalf("stats after drift: %+v", st)
	}

	// Phase 3: retrain on the captured pairs (synchronously — the test
	// is its own scheduler) and open the canary.
	_, candID, err := mgr.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StartCanary(sys.Name); err != nil {
		t.Fatal(err)
	}
	if !s.CanaryActive(sys.Name) {
		t.Fatal("canary not active")
	}

	// Phase 4: canary traffic. Frac 0.5 routes requests 2, 4, 6, … to
	// the candidate (Bresenham), so arms fill in lockstep and the window
	// decides on the 8th canary request. The incumbent arm keeps
	// failing; the retrained candidate converges — promotion.
	seenCand, seenInc := 0, 0
	for i := 0; s.CanaryActive(sys.Name); i++ {
		if i >= 20 {
			t.Fatal("canary window never closed")
		}
		resp := postWarm(t, h, scaleAt(i))
		if resp.Canary {
			seenCand++
			if resp.ModelVersion != candID {
				t.Fatalf("canary request served version %q, want %q", resp.ModelVersion, candID)
			}
			if !resp.WarmConverged {
				t.Fatalf("retrained candidate did not warm-converge: %+v", resp)
			}
		} else {
			seenInc++
			if resp.ModelVersion != inc.ID {
				t.Fatalf("incumbent request served version %q, want %q", resp.ModelVersion, inc.ID)
			}
		}
	}
	if seenCand != 4 || seenInc != 4 {
		t.Fatalf("canary split = %d/%d, want 4/4", seenCand, seenInc)
	}

	// Promotion: the candidate now serves all traffic under its version,
	// warm-converging again; the registry records the transition.
	if got := s.ServingVersion(sys.Name); got != candID {
		t.Fatalf("serving version = %q after promotion, want %q", got, candID)
	}
	resp := postWarm(t, h, 1.01)
	if resp.ModelVersion != candID || resp.Canary || !resp.WarmConverged {
		t.Fatalf("post-promotion response: %+v", resp)
	}
	man, recovered, err := reg.Manifest(sys.Name)
	if err != nil || recovered {
		t.Fatalf("manifest: %v/%v", err, recovered)
	}
	if man.Incumbent != candID || man.Candidate != "" {
		t.Fatalf("registry after promotion: incumbent=%q candidate=%q", man.Incumbent, man.Candidate)
	}
	if st := mgr.Stats(); st.Promotions != 1 || st.State != lifecycle.StateCapturing {
		t.Fatalf("stats after promotion: %+v", st)
	}

	// The /metrics endpoint exposes the lifecycle counters.
	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, mreq)
	for _, want := range []string{
		`pgsimd_lifecycle_drift_events_total{system="case9"} 1`,
		`pgsimd_lifecycle_retrains_total{system="case9"} 1`,
		`pgsimd_lifecycle_promotions_total{system="case9"} 1`,
		`pgsimd_lifecycle_swaps_total{system="case9"} 2`, // boot registration swap + promotion
		`pgsimd_lifecycle_canary_decisions_total{system="case9",decision="promote"} 1`,
		`pgsimd_lifecycle_canary_solves_total{system="case9",arm="candidate"} 4`,
		`pgsimd_lifecycle_state{system="case9"} 0`,
	} {
		if !strings.Contains(mrec.Body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Shutdown flushes the capture to disk; every served solve is there.
	total := mgr.Stats().Captured
	s.Close()
	recs, err := lifecycle.LoadCapture(dir, sys.Name)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != total {
		t.Fatalf("capture file holds %d records, want %d", len(recs), total)
	}
}

// TestLifecycleShutdownFlushOrdering pins the fix for the shutdown
// race: requests still queued when Close begins are drained by the
// dispatcher first and the capture flush runs after, so the on-disk
// capture includes them.
func TestLifecycleShutdownFlushOrdering(t *testing.T) {
	sys, m := loadFixture(t)
	dir := t.TempDir()
	s := New(Config{MaxBatch: 4})
	s.AddSystem(sys, m)
	mgr, err := lifecycle.NewManager(lifecycle.Config{
		System:  sys,
		Variant: mtl.VariantSmartPGSim,
		Capture: lifecycle.CaptureConfig{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachLifecycle(sys.Name, mgr, false); err != nil {
		t.Fatal(err)
	}

	// One served request, then five more stuffed straight into the
	// dispatcher queue with no handler waiting — exactly the state a
	// SIGTERM-time shutdown sees after the HTTP listener has drained.
	postWarm(t, s.Handler(), 1.01)
	st := s.systems[sys.Name]
	jobs := make([]*job, 5)
	for i := range jobs {
		jobs[i] = &job{st: st, factors: uniform(sys.Case.NB(), 1.0+0.002*float64(i)), resp: make(chan *SolveResponse, 1)}
		s.queue <- jobs[i]
	}
	s.Close()

	// Every queued job completed (drained, not dropped) …
	for i, j := range jobs {
		select {
		case resp := <-j.resp:
			if !resp.Converged {
				t.Fatalf("queued job %d did not converge", i)
			}
		default:
			t.Fatalf("queued job %d was dropped at shutdown", i)
		}
	}
	// … and the post-drain flush captured all six solves.
	recs, err := lifecycle.LoadCapture(dir, sys.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("capture file holds %d records, want 6 (1 served + 5 drained)", len(recs))
	}
	if mgr.Capture().Flushes() < 1 {
		t.Fatal("no capture flush recorded")
	}
}

// TestHotSwapNoDroppedOrMixedResponses is the swap race pin: concurrent
// /v1/solve traffic across repeated forced hot-swaps must lose no
// request and serve every response wholly on one version. Run under
// -race in the race-lifecycle CI job.
func TestHotSwapNoDroppedOrMixedResponses(t *testing.T) {
	sys, m := loadFixture(t)
	s := newTestServer(t, Config{}, sys, m)
	base := s.ServingVersion(sys.Name)
	h := s.Handler()

	const (
		clients   = 8
		perClient = 24
		swaps     = 40
	)
	valid := map[string]bool{base: true, "vA": true, "vB": true}

	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	wg.Add(1)
	go func() { // swapper: flips versions as fast as it can
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			v := "vA"
			if i%2 == 1 {
				v = "vB"
			}
			if err := s.SwapModel(sys.Name, m, v); err != nil {
				errs <- err
				return
			}
		}
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// No t.Fatal from here: report through errs instead.
				req := httptest.NewRequest(http.MethodPost, "/v1/solve",
					strings.NewReader(fmt.Sprintf(`{"system":"case9","scale":%v}`, 1.0+0.001*float64(c))))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("client %d request %d: status %d (%s)", c, i, rec.Code, rec.Body.String())
					return
				}
				var resp SolveResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errs <- fmt.Errorf("client %d request %d: bad response: %v", c, i, err)
					return
				}
				if !resp.Converged {
					errs <- fmt.Errorf("client %d request %d did not converge", c, i)
					return
				}
				if !valid[resp.ModelVersion] {
					errs <- fmt.Errorf("client %d request %d served unknown version %q", c, i, resp.ModelVersion)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// All requests answered: the solve counters account for every one.
	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, mreq)
	if want := fmt.Sprintf(`pgsimd_http_requests_total{endpoint="/v1/solve",code="200"} %d`, clients*perClient); !strings.Contains(mrec.Body.String(), want) {
		t.Fatalf("metrics missing %q", want)
	}
}

// TestCanaryDegradedCandidateNeverPromoted pins the canary gate: a
// deliberately degraded candidate — trained for a handful of epochs, so
// its warm starts regress measurably against the incumbent — is rolled
// back, never promoted, and serving stays on the incumbent version.
func TestCanaryDegradedCandidateNeverPromoted(t *testing.T) {
	sys, m := loadFixture(t)
	set, err := sys.GenerateData(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := set.Split(0.8)
	weak, err := sys.TrainModel(mtl.VariantSmartPGSim, train, 2, 7, nil)
	if err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{MaxBatch: 1}, sys, m)
	base := s.ServingVersion(sys.Name)
	mgr, err := lifecycle.NewManager(lifecycle.Config{
		System:  sys,
		Variant: mtl.VariantSmartPGSim,
		Canary:  lifecycle.CanaryConfig{Frac: 0.5, Window: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachLifecycle(sys.Name, mgr, false); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.BeginCanaryWith(weak, "degraded candidate"); err != nil {
		t.Fatal(err)
	}
	if err := s.StartCanary(sys.Name); err != nil {
		t.Fatal(err)
	}

	for i := 0; s.CanaryActive(sys.Name); i++ {
		if i >= 40 {
			t.Fatal("canary window never closed")
		}
		postWarm(t, s.Handler(), 1.0+0.002*float64(i%10))
	}
	if got := s.ServingVersion(sys.Name); got != base {
		t.Fatalf("degraded candidate was promoted: serving %q, want %q", got, base)
	}
	st := mgr.Stats()
	if st.Rollbacks != 1 || st.Promotions != 0 {
		t.Fatalf("stats after degraded canary: %+v", st)
	}
}

// TestCanaryIdenticalWeightsBitIdentical pins promotion transparency:
// a candidate carrying the incumbent's exact weights serves bit-
// identical solutions on both arms during the canary, is promoted (no
// regression, by construction), and post-promotion solves stay bit-
// identical to the pre-canary reference.
func TestCanaryIdenticalWeightsBitIdentical(t *testing.T) {
	sys, m := loadFixture(t)
	s := newTestServer(t, Config{MaxBatch: 1}, sys, m)

	scale := 1.015
	factors := uniform(sys.Case.NB(), scale)
	ref := sys.SolveWarm(m, factors, sys.InstanceInput(factors))
	if !ref.Converged {
		t.Fatal("reference warm solve did not converge")
	}

	mgr, err := lifecycle.NewManager(lifecycle.Config{
		System:  sys,
		Variant: mtl.VariantSmartPGSim,
		Canary:  lifecycle.CanaryConfig{Frac: 0.5, Window: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachLifecycle(sys.Name, mgr, false); err != nil {
		t.Fatal(err)
	}
	candID, err := mgr.BeginCanaryWith(m.Clone(), "identical weights")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StartCanary(sys.Name); err != nil {
		t.Fatal(err)
	}

	for i := 0; s.CanaryActive(sys.Name); i++ {
		if i >= 20 {
			t.Fatal("canary window never closed")
		}
		resp := postWarm(t, s.Handler(), scale)
		checkVectors(t, resp, ref.Result) // both arms: bit-identical to the reference
	}
	if got := s.ServingVersion(sys.Name); got != candID {
		t.Fatalf("identical-weights candidate not promoted: serving %q", got)
	}
	resp := postWarm(t, s.Handler(), scale)
	if resp.ModelVersion != candID {
		t.Fatalf("post-promotion version = %q, want %q", resp.ModelVersion, candID)
	}
	checkVectors(t, resp, ref.Result) // the swap changed nothing the client can see
}

// TestWarmLoopAllocsZeroAfterSwap extends the zero-allocation contract
// (DESIGN.md §11) across a hot swap: a replica borrowed from the
// swapped-in set predicts a warm start whose steady-state interior-
// point iteration still allocates nothing — the swap installs fresh
// clones and warmed caches, it does not regress the serving loop.
func TestWarmLoopAllocsZeroAfterSwap(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	sys, m := loadFixture(t)
	s := newTestServer(t, Config{}, sys, m)
	if err := s.SwapModel(sys.Name, m.Clone(), "v-post-swap"); err != nil {
		t.Fatal(err)
	}

	rs := s.systems[sys.Name].replicas()
	p := <-rs.pool
	defer func() { rs.pool <- p }()
	inst := sys.OPF.Perturb(uniform(sys.Case.NB(), 1.02))
	start := p.Predict(dataset.InputVector(inst.Case))
	// Unreachable tolerances keep Step executing the full per-iteration
	// pipeline at the numerical fixed point (the mips alloc-test idiom).
	st := mips.NewStepper(inst.Problem(), start.X,
		&mips.WarmStart{X: start.X, Lam: start.Lam, Mu: start.Mu, Z: start.Z},
		mips.Options{FeasTol: 1e-300, GradTol: 1e-300, CompTol: 1e-300, CostTol: 1e-300, MaxIter: 1 << 20})
	for i := 0; i < 40; i++ {
		if done, err := st.Step(); done {
			t.Fatalf("stepper finished during warm-up (iteration %d): %v", i, err)
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		if done, err := st.Step(); done {
			t.Fatalf("stepper finished mid-measurement: %v", err)
		}
	}); n != 0 {
		t.Errorf("warm Step allocates %v times per iteration after a hot swap, want 0", n)
	}
}
