package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/horizon"
	"repro/internal/opf"
)

// postTrajectory runs one /v1/trajectory request to completion in
// memory and splits the NDJSON body into lines.
func postTrajectory(t *testing.T, h http.Handler, body string) (int, []string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/trajectory", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	raw := strings.TrimRight(rec.Body.String(), "\n")
	if raw == "" {
		return rec.Code, nil
	}
	return rec.Code, strings.Split(raw, "\n")
}

func decodeSteps(t *testing.T, lines []string) ([]TrajectoryStep, TrajectorySummary) {
	t.Helper()
	if len(lines) < 2 {
		t.Fatalf("stream has %d lines, want steps + summary", len(lines))
	}
	steps := make([]TrajectoryStep, len(lines)-1)
	for i, ln := range lines[:len(lines)-1] {
		if err := json.Unmarshal([]byte(ln), &steps[i]); err != nil {
			t.Fatalf("line %d not a TrajectoryStep: %v (%s)", i, err, ln)
		}
	}
	var sum TrajectorySummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatalf("summary line bad: %v (%s)", err, lines[len(lines)-1])
	}
	return steps, sum
}

func TestTrajectoryValidation(t *testing.T) {
	sys, _ := loadFixture(t)
	s := newTestServer(t, Config{}, sys, nil) // cold-only: no model
	h := s.Handler()

	cases := []struct {
		name string
		body string
		code int
		want string
	}{
		{"bad json", "{", http.StatusBadRequest, "bad request body"},
		{"unknown field", `{"system":"case9","steps":3,"bogus":1}`, http.StatusBadRequest, "bogus"},
		{"missing system", `{"steps":3}`, http.StatusBadRequest, "system"},
		{"unknown system", `{"system":"case999","steps":3}`, http.StatusNotFound, "unknown system"},
		{"zero steps", `{"system":"case9"}`, http.StatusBadRequest, "steps 0 out of range"},
		{"negative steps", `{"system":"case9","steps":-4}`, http.StatusBadRequest, "steps -4 out of range"},
		{"too many steps", `{"system":"case9","steps":513}`, http.StatusBadRequest, "exceeds the limit of 512"},
		{"bad mode", `{"system":"case9","steps":3,"mode":"tepid"}`, http.StatusBadRequest, `mode "tepid" unknown`},
		{"predict without model", `{"system":"case9","steps":3,"mode":"predict"}`, http.StatusBadRequest, "cold-only"},
		{"negative ramp_frac", `{"system":"case9","steps":3,"ramp_frac":-0.1}`, http.StatusBadRequest, "ramp_frac"},
		{"huge ramp_frac", `{"system":"case9","steps":3,"ramp_frac":1.5}`, http.StatusBadRequest, "ramp_frac"},
		{"bad amp", `{"system":"case9","steps":3,"amp":1.5}`, http.StatusBadRequest, "amp"},
		{"bad spread", `{"system":"case9","steps":3,"spread":-0.5}`, http.StatusBadRequest, "spread"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodPost, "/v1/trajectory", strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.code {
				t.Fatalf("status = %d (%s), want %d", rec.Code, rec.Body.String(), tc.code)
			}
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("error body %s not JSON: %v", rec.Body.String(), err)
			}
			if !strings.Contains(er.Error, tc.want) {
				t.Fatalf("error %q does not mention %q", er.Error, tc.want)
			}
		})
	}
}

// TestTrajectoryStreamReplay pins the served chain-mode stream against
// the offline horizon runner: lines arrive in step order, the last line
// is the done summary, and every per-step outcome — convergence, warm
// acceptance, ramp flags, iteration counts, cost and dispatch — is
// bit-identical to an offline replay of the same (seed, amp, spread,
// ramp_frac) tuple.
func TestTrajectoryStreamReplay(t *testing.T) {
	sys, _ := loadFixture(t)
	s := newTestServer(t, Config{}, sys, nil)

	const (
		steps  = 4
		seed   = 11
		amp    = 0.03
		spread = 0.01
		frac   = 0.4
	)
	body := fmt.Sprintf(`{"system":"case9","steps":%d,"mode":"chain","seed":%d,"amp":%v,"spread":%v,"ramp_frac":%v}`,
		steps, seed, amp, spread, frac)
	code, lines := postTrajectory(t, s.Handler(), body)
	if code != http.StatusOK {
		t.Fatalf("status = %d (%v)", code, lines)
	}
	if len(lines) != steps+1 {
		t.Fatalf("stream has %d lines, want %d steps + summary", len(lines), steps)
	}
	got, sum := decodeSteps(t, lines)

	// Offline replay through the same horizon runner the CLI uses.
	traj, err := horizon.Synthetic(sys.Case.NB(), steps, seed, amp, spread)
	if err != nil {
		t.Fatal(err)
	}
	ramp := horizon.RampFromRange(sys.OPF, frac)
	r := &horizon.Runner{
		Prepared: sys.OPF,
		Mode:     horizon.ModeChain,
		RampUp:   ramp,
		RampDown: ramp,
		Workers:  1,
	}
	ref, err := r.Run(traj)
	if err != nil {
		t.Fatal(err)
	}

	for i, sr := range ref.Steps {
		ln := got[i]
		if ln.Step != i {
			t.Fatalf("line %d carries step %d: stream out of order", i, ln.Step)
		}
		if ln.Converged != sr.Converged || ln.Warm != sr.WarmUsed ||
			ln.ColdRestarted != sr.ColdRestart || ln.Ramped != sr.Ramped ||
			ln.RampBinding != sr.RampBinding || ln.Iterations != sr.Iterations {
			t.Fatalf("step %d served %+v diverges from offline %+v", i, ln, sr)
		}
		if ln.Cost != sr.Cost {
			t.Fatalf("step %d served cost %v != offline %v", i, ln.Cost, sr.Cost)
		}
		if sr.Result == nil {
			t.Fatalf("offline step %d has no result", i)
		}
		if len(ln.Pg) != len(sr.Result.Pg) {
			t.Fatalf("step %d Pg length %d != %d", i, len(ln.Pg), len(sr.Result.Pg))
		}
		for g := range ln.Pg {
			if ln.Pg[g] != sr.Result.Pg[g] {
				t.Fatalf("step %d gen %d served Pg %v != offline %v", i, g, ln.Pg[g], sr.Result.Pg[g])
			}
		}
	}
	if !sum.Done || sum.System != "case9" || sum.Mode != "chain" {
		t.Fatalf("summary %+v lacks done/system/mode", sum)
	}
	if sum.Steps != steps || sum.Converged != ref.Converged ||
		sum.WarmHits != ref.WarmHits || sum.ColdRestarts != ref.ColdRestarts ||
		sum.Iterations != ref.Iterations {
		t.Fatalf("summary %+v diverges from offline result (conv=%d warm=%d cold=%d it=%d)",
			sum, ref.Converged, ref.WarmHits, ref.ColdRestarts, ref.Iterations)
	}
	if sum.Converged == 0 || sum.WarmHits == 0 {
		t.Fatalf("degenerate trajectory: %+v", sum)
	}
}

// TestTrajectoryPredictReplay pins predict-mode streaming against the
// offline runner with the same stub predictor replica.
func TestTrajectoryPredictReplay(t *testing.T) {
	sys, _ := loadFixture(t)
	base, err := sys.OPF.Solve(nil, opf.Options{})
	if err != nil || !base.Converged {
		t.Fatalf("base solve failed: %v", err)
	}
	stub := stubPredictor{start: &opf.Start{X: base.X, Lam: base.Lam, Mu: base.Mu, Z: base.Z}}

	s := New(Config{})
	s.AddSystemPredictors(sys, []core.Predictor{stub})
	t.Cleanup(s.Close)

	const steps = 3
	body := fmt.Sprintf(`{"system":"case9","steps":%d,"mode":"predict","seed":5,"ramp_frac":0}`, steps)
	code, lines := postTrajectory(t, s.Handler(), body)
	if code != http.StatusOK {
		t.Fatalf("status = %d (%v)", code, lines)
	}
	got, sum := decodeSteps(t, lines)

	traj, err := horizon.Synthetic(sys.Case.NB(), steps, 5, 0.05, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	r := &horizon.Runner{
		Prepared:   sys.OPF,
		Mode:       horizon.ModePredict,
		Predictors: []horizon.Predictor{stub},
		Workers:    1,
	}
	ref, err := r.Run(traj)
	if err != nil {
		t.Fatal(err)
	}
	for i, sr := range ref.Steps {
		ln := got[i]
		if ln.Converged != sr.Converged || ln.Warm != sr.WarmUsed ||
			ln.Iterations != sr.Iterations || ln.Cost != sr.Cost {
			t.Fatalf("step %d served %+v diverges from offline %+v", i, ln, sr)
		}
	}
	if !sum.Done || sum.Converged != ref.Converged || sum.WarmHits != ref.WarmHits {
		t.Fatalf("summary %+v diverges from offline (conv=%d warm=%d)", sum, ref.Converged, ref.WarmHits)
	}
}

// TestTrajectoryDisconnectFreesReplica pins the mid-stream abort path:
// a client that drops the connection after the first line must release
// both the pinned model replica and the stream slot, so a follow-up
// trajectory on the same system succeeds.
func TestTrajectoryDisconnectFreesReplica(t *testing.T) {
	sys, _ := loadFixture(t)
	base, err := sys.OPF.Solve(nil, opf.Options{})
	if err != nil || !base.Converged {
		t.Fatalf("base solve failed: %v", err)
	}
	stub := stubPredictor{start: &opf.Start{X: base.X, Lam: base.Lam, Mu: base.Mu, Z: base.Z}}

	// One worker, one replica, one stream slot: any leak deadlocks the
	// follow-up request into a 503.
	s := New(Config{Workers: 1, MaxBatch: 1})
	s.AddSystemPredictors(sys, []core.Predictor{stub})
	t.Cleanup(s.Close)
	if cap(s.trajSem) != 1 {
		t.Fatalf("trajSem capacity %d, want 1", cap(s.trajSem))
	}
	st := s.systems["case9"]

	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := `{"system":"case9","steps":512,"mode":"predict","seed":1}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/trajectory", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// The replica is pinned while the stream is live.
	if len(st.replicas().pool) != 0 {
		t.Fatalf("replica pool holds %d replicas mid-stream, want 0", len(st.replicas().pool))
	}
	// Read one streamed step, then drop the connection.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	var first TrajectoryStep
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line bad: %v (%s)", err, sc.Text())
	}
	if first.Step != 0 {
		t.Fatalf("first line is step %d, want 0", first.Step)
	}
	cancel()

	// The handler notices between steps and returns the replica and the
	// stream slot (deferred). Poll the pool accounting back to full.
	deadline := time.Now().Add(10 * time.Second)
	for len(st.replicas().pool) != 1 || len(s.trajSem) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("after disconnect: pool=%d sem=%d, want 1/0", len(st.replicas().pool), len(s.trajSem))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The disconnect is accounted and the freed slot serves a new stream.
	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, mreq)
	if !strings.Contains(mrec.Body.String(), `pgsimd_trajectory_disconnects_total{system="case9"} 1`) {
		t.Fatal("disconnect not counted in /metrics")
	}
	code, lines := postTrajectory(t, s.Handler(), `{"system":"case9","steps":2,"mode":"predict","seed":1}`)
	if code != http.StatusOK {
		t.Fatalf("follow-up stream = %d (%v), want 200", code, lines)
	}
	if _, sum := decodeSteps(t, lines); !sum.Done {
		t.Fatal("follow-up stream did not complete")
	}
}
