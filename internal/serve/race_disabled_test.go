//go:build !race

package serve

// raceEnabled reports that the race detector is active; allocation
// pins skip under it (instrumentation allocates).
const raceEnabled = false
