// Package serve is the warm-start OPF serving subsystem behind cmd/pgsimd:
// a long-running HTTP/JSON service that turns the Smart-PGSim online
// phase (predict → warm interior-point solve → cold-restart fallback)
// into an always-on solver for concurrent clients.
//
// The server keeps, per base grid, the opf.Prepare'd problem structure
// (admittance matrices, rated-branch subset, bounds, constraint layout)
// and derives each request's instance with (*opf.OPF).Perturb, so a
// request pays only the clone+scale+rebind derivation cost, never a full
// Prepare. Warm starts come from a pool of per-worker model replicas
// (mtl.Model.Clone — forward passes cache activations, so a replica
// serves one in-flight prediction); replicas share weights, so results
// do not depend on which replica served a request.
//
// Concurrent solve requests are micro-batched: a dispatcher coalesces
// requests that arrive within Config.BatchWindow of each other (up to
// Config.MaxBatch) and fans the batch out across the internal/batch
// worker pool. Each request runs the exact offline code path
// (core.System.SolveWarm, or a cold (*opf.OPF).Solve), so a served
// solution is bit-identical to what cmd/pgsim or cmd/smartpgsim would
// compute for the same system, factors and model — pinned by the
// equivalence tests in this package.
//
// Endpoints:
//
//	POST /v1/solve       solve one load instance (SolveRequest → SolveResponse)
//	POST /v1/screen      N-1 contingency screening sweep (ScreenRequest →
//	                     ScreenResponse) on the topology-aware scopf.Engine
//	POST /v1/trajectory  multi-period OPF trajectory streamed as NDJSON —
//	                     one TrajectoryStep line per step as it completes,
//	                     then a TrajectorySummary — on the internal/horizon
//	                     stepper (chain/predict/cold warm-start modes)
//	GET  /v1/systems     loaded systems, sizes, model availability
//	GET  /healthz        liveness + uptime
//	GET  /metrics        Prometheus text: request/solve counters, warm-start
//	                     hit rate, latency and batch-size histograms, and
//	                     the pgsimd_screen_* / pgsimd_trajectory_* counters
//
// Screening runs outside the micro-batch queue — a sweep is itself a
// batch, fanned out on the worker pool by the engine — and is serialized:
// one screen at a time, a concurrent request sheds with 503. A warm
// screen borrows the system's idle model replicas and returns them when
// the sweep completes; solve requests arriving meanwhile fall back to
// waiting for a free replica.
//
// Trajectories are the daemon's stateful workload: chained state (step
// t−1's solution) and the at-most-one pinned model replica stay on the
// handler's goroutine for the stream's whole life — per-trajectory
// worker affinity. Concurrent trajectories are bounded by the replica
// count; a client disconnect between steps aborts the run and frees the
// pinned replica immediately.
//
// Backpressure is explicit: at most Config.QueueDepth requests wait for
// the dispatcher; beyond that the server sheds load with 503 rather than
// queueing unboundedly.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/mtl"
	"repro/internal/sparse"
)

// Config sizes the server. The zero value is usable: every field has a
// serving-appropriate default.
type Config struct {
	// Workers is the solver pool size per micro-batch; 0 resolves through
	// the batch engine's chain (PGSIM_WORKERS, SetDefaultWorkers,
	// GOMAXPROCS).
	Workers int
	// MaxBatch caps how many queued requests one micro-batch coalesces
	// (default 16).
	MaxBatch int
	// BatchWindow is how long the dispatcher waits after the first
	// queued request for more to arrive. 0 means the 2ms default; a
	// negative value disables the wait entirely — each batch takes only
	// what is already queued.
	BatchWindow time.Duration
	// QueueDepth bounds requests waiting for the dispatcher (default
	// 256); a full queue answers 503.
	QueueDepth int
	// MaxBodyBytes caps a request body (default 1 MiB).
	MaxBodyBytes int64
	// SolverThreads is the intra-solve parallelism of each KKT
	// factorization/solve (DESIGN.md §12); 0 resolves through the sparse
	// engine's chain (PGSIM_SOLVER_THREADS, SetDefaultSolverThreads, 1).
	// Each solve's effective count is further capped by the worker
	// budget, so workers × threads never oversubscribes GOMAXPROCS. The
	// resolved value is exported as the pgsimd_solver_threads gauge.
	SolverThreads int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// replicaSet is one model version's serving pool: the per-worker
// predictor replicas of a single set of weights, tagged with the
// version they carry. A request borrows a replica from exactly one set
// and returns it to the same set, so every response is served wholly by
// one version — a hot swap can never mix versions within a request.
type replicaSet struct {
	version string
	model   *mtl.Model // nil for explicit-predictor sets (tests)
	pool    chan core.Predictor
}

// systemState is one registered base grid: the shared prepared problem
// structure plus the atomically swappable warm-start replica set (nil
// for cold-only) and, when attached, the model lifecycle.
//
// active is an atomic pointer so SwapModel replaces the whole set in
// one store with zero dropped requests: in-flight solves keep the set
// they loaded (and return replicas to it), new solves load the new set.
// canary, when non-nil, carries the candidate's replica set plus the
// deterministic traffic splitter for the open canary window.
type systemState struct {
	sys    *core.System
	active atomic.Pointer[replicaSet]
	canary atomic.Pointer[canaryRun]

	lc         *lifecycle.Manager // nil when no lifecycle is attached
	lcAuto     bool               // drive retrain/canary automatically
	retraining atomic.Bool        // an auto retrain is in flight
}

// replicas returns the serving replica set, nil for cold-only systems.
func (st *systemState) replicas() *replicaSet { return st.active.Load() }

// Server is the OPF-serving engine. Register systems with AddSystem
// before exposing Handler; Close stops the dispatcher after the HTTP
// listener has drained.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	systems   map[string]*systemState
	names     []string // registration order, for /v1/systems
	queue     chan *job
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	met       *metrics
	started   time.Time
	screenSem chan struct{} // serializes /v1/screen sweeps
	trajSem   chan struct{} // bounds concurrent /v1/trajectory streams
}

// New builds a server and starts its micro-batch dispatcher.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.SolverThreads > 0 {
		sparse.SetDefaultSolverThreads(cfg.SolverThreads)
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		systems:   make(map[string]*systemState),
		queue:     make(chan *job, cfg.QueueDepth),
		done:      make(chan struct{}),
		met:       newMetrics(),
		started:   time.Now(),
		screenSem: make(chan struct{}, 1),
	}
	s.trajSem = make(chan struct{}, s.replicaCount())
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/screen", s.handleScreen)
	s.mux.HandleFunc("POST /v1/trajectory", s.handleTrajectory)
	s.mux.HandleFunc("GET /v1/systems", s.handleSystems)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.wg.Add(1)
	go s.dispatch()
	return s
}

// AddSystem registers a base grid, with m (may be nil for cold-only
// serving) as the warm-start model. The model is cloned into a replica
// set sized to the in-flight solve limit. Not safe to call once the
// handler is serving traffic.
func (s *Server) AddSystem(sys *core.System, m *mtl.Model) {
	if m == nil {
		s.addSystem(sys, nil)
		return
	}
	s.addSystem(sys, s.newModelSet(m, "m-"+m.Fingerprint()[:12]))
}

// AddSystemVersion is AddSystem with an explicit version tag for the
// replica set — used when the model is registered in a lifecycle
// registry and responses should carry its registry version ID.
func (s *Server) AddSystemVersion(sys *core.System, m *mtl.Model, version string) {
	s.addSystem(sys, s.newModelSet(m, version))
}

// AddSystemPredictors registers a base grid with an explicit replica
// set — one Predictor per concurrently served warm start. Tests use it
// to force warm-start outcomes; AddSystem is the production path.
func (s *Server) AddSystemPredictors(sys *core.System, replicas []core.Predictor) {
	s.addSystem(sys, newPredictorSet(replicas, "p-fixed"))
}

func (s *Server) addSystem(sys *core.System, rs *replicaSet) {
	st := &systemState{sys: sys}
	if rs != nil {
		st.active.Store(rs)
	}
	if _, dup := s.systems[sys.Name]; !dup {
		s.names = append(s.names, sys.Name)
	}
	s.systems[sys.Name] = st
}

// newModelSet clones a model into a version-tagged replica set sized to
// the in-flight solve limit, with float32 serving caches prebuilt.
func (s *Server) newModelSet(m *mtl.Model, version string) *replicaSet {
	n := s.replicaCount()
	reps := make([]core.Predictor, n)
	m.Warmup()  // float32 serving caches built at registration, not in the first request
	reps[0] = m // the original counts as one replica
	for i := 1; i < n; i++ {
		c := m.Clone()
		c.Warmup()
		reps[i] = c
	}
	rs := newPredictorSet(reps, version)
	rs.model = m
	return rs
}

func newPredictorSet(replicas []core.Predictor, version string) *replicaSet {
	if len(replicas) == 0 {
		return nil
	}
	rs := &replicaSet{version: version, pool: make(chan core.Predictor, len(replicas))}
	for _, p := range replicas {
		rs.pool <- p
	}
	return rs
}

// replicaCount is the most warm starts that can be in flight at once:
// one micro-batch of MaxBatch requests spread over the worker pool.
func (s *Server) replicaCount() int {
	n := batch.Workers(s.cfg.Workers)
	if n > s.cfg.MaxBatch {
		n = s.cfg.MaxBatch
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the dispatcher after completing every queued request,
// then flushes every attached lifecycle capture buffer to disk. The
// ordering is the point: the flush runs after the dispatcher drain, so
// the capture file includes every solve that was still queued at
// shutdown — and after any in-flight auto retrain, which runs on the
// same WaitGroup. Call Close after the HTTP server has drained
// (http.Server.Shutdown), so no handler is left waiting on the queue.
// Safe to call more than once (signal path and deferred cleanup).
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.wg.Wait()
		for _, name := range s.names {
			if lc := s.systems[name].lc; lc != nil {
				_ = lc.FlushCapture() // a capture flush failure must not block shutdown
			}
		}
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	st, factors, err := s.validate(&req)
	if err != nil {
		code := http.StatusBadRequest
		if err == errUnknownSystem {
			code = http.StatusNotFound
		}
		s.writeError(w, code, err.Error())
		return
	}
	j := &job{st: st, cold: req.Cold, factors: factors, resp: make(chan *SolveResponse, 1)}
	select {
	case s.queue <- j:
	default:
		s.writeError(w, http.StatusServiceUnavailable, "solve queue full, retry later")
		return
	}
	select {
	case resp := <-j.resp:
		s.writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		// Client gone; the solve still completes (resp is buffered) and
		// its metrics are recorded, but there is nobody to answer.
	}
}

func (s *Server) handleSystems(w http.ResponseWriter, r *http.Request) {
	out := SystemsResponse{Systems: make([]SystemInfo, 0, len(s.names))}
	for _, name := range s.names {
		st := s.systems[name]
		c, lay := st.sys.Case, st.sys.OPF.Lay
		out.Systems = append(out.Systems, SystemInfo{
			Name: name, Buses: c.NB(), Generators: c.NG(), Branches: c.NL(),
			NLam: lay.NEq, NMu: lay.NIq, Model: st.replicas() != nil,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:  "ok",
		Systems: len(s.systems),
		UptimeS: time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.render(w, len(s.queue), sparse.SolverThreads(s.cfg.SolverThreads), s.kktStats(), s.lifecycleStats())
	s.met.recordRequest("/metrics", http.StatusOK)
}

// kktStats snapshots every registered grid's KKT symbolic-cache counters
// in registration order. The caches live on the prepared OPF structures,
// so the counters cover all solves of the grid — warm, cold and
// fallback — across all requests since the system was registered.
func (s *Server) kktStats() []kktStat {
	out := make([]kktStat, 0, len(s.names))
	for _, name := range s.names {
		out = append(out, kktStat{system: name, stats: s.systems[name].sys.OPF.KKTStats()})
	}
	return out
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
	s.met.recordRequest(endpointLabel(v), code)
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeErrorAt(w, "/v1/solve", code, msg)
}

func (s *Server) writeErrorAt(w http.ResponseWriter, endpoint string, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
	s.met.recordRequest(endpoint, code)
}

// endpointLabel maps a response type to its metrics label.
func endpointLabel(v any) string {
	switch v.(type) {
	case *SolveResponse:
		return "/v1/solve"
	case *ScreenResponse:
		return "/v1/screen"
	case SystemsResponse:
		return "/v1/systems"
	case HealthResponse:
		return "/healthz"
	default:
		return "other"
	}
}

// sortedKeys returns the map's keys in lexical order (deterministic
// metrics rendering).
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
