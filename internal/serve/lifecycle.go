package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/mtl"
)

// canaryRun is an open canary window on a system: the candidate's
// replica set plus the deterministic traffic splitter that routes and
// scores it. It is swapped in and out of systemState.canary atomically;
// clearing it (promotion or rollback) is a CompareAndSwap, so exactly
// one goroutine completes the window.
type canaryRun struct {
	set *replicaSet
	ctl *lifecycle.Canary
}

// AttachLifecycle wires a lifecycle manager to a registered system: the
// capture tap records every completed solve, warm outcomes feed the
// drift detector, and — with auto set — a drift event triggers a
// background retrain whose candidate opens a canary window and is
// promoted or rolled back from measured arm statistics without any
// operator action. With auto unset the manager only captures and
// detects; retrains and canary transitions are driven explicitly
// (StartCanary / FinishCanary), which is what deterministic tests and
// the benchmark use. Not safe to call once the handler is serving
// traffic.
func (s *Server) AttachLifecycle(name string, mgr *lifecycle.Manager, auto bool) error {
	st, ok := s.systems[name]
	if !ok {
		return fmt.Errorf("serve: lifecycle for unknown system %q", name)
	}
	st.lc = mgr
	st.lcAuto = auto
	if rs := st.replicas(); rs != nil {
		mgr.SetIncumbent(rs.version)
	}
	return nil
}

// Lifecycle returns the manager attached to a system, nil if none.
func (s *Server) Lifecycle(name string) *lifecycle.Manager {
	if st, ok := s.systems[name]; ok {
		return st.lc
	}
	return nil
}

// ServingVersion reports the version tag of a system's active replica
// set ("" for cold-only systems).
func (s *Server) ServingVersion(name string) string {
	st, ok := s.systems[name]
	if !ok {
		return ""
	}
	if rs := st.replicas(); rs != nil {
		return rs.version
	}
	return ""
}

// SwapModel hot-swaps a system's serving model: the new weights are
// cloned into a fresh replica set which replaces the active one in a
// single atomic store. In-flight requests finish on the set they
// loaded — every response is served wholly by one version — and no
// request is dropped or delayed by the swap. The attached lifecycle
// manager (if any) is told the new incumbent version.
func (s *Server) SwapModel(name string, m *mtl.Model, version string) error {
	st, ok := s.systems[name]
	if !ok {
		return fmt.Errorf("serve: swap on unknown system %q", name)
	}
	if version == "" {
		version = "m-" + m.Fingerprint()[:12]
	}
	st.active.Store(s.newModelSet(m, version))
	if st.lc != nil {
		st.lc.SetIncumbent(version)
	}
	s.met.recordSwap(name)
	return nil
}

// SwapPredictors is SwapModel with an explicit replica set — the test
// seam for forcing warm-start outcomes across a hot swap.
func (s *Server) SwapPredictors(name string, replicas []core.Predictor, version string) error {
	st, ok := s.systems[name]
	if !ok {
		return fmt.Errorf("serve: swap on unknown system %q", name)
	}
	st.active.Store(newPredictorSet(replicas, version))
	if st.lc != nil {
		st.lc.SetIncumbent(version)
	}
	s.met.recordSwap(name)
	return nil
}

// StartCanary opens a canary window serving the attached manager's
// candidate model (installed by Manager.Retrain or BeginCanaryWith) on
// the manager's configured traffic fraction. Warm requests are split
// deterministically between the incumbent and candidate replica sets;
// the window closes itself (promote or rollback) once both arms carry
// enough observations.
func (s *Server) StartCanary(name string) error {
	st, ok := s.systems[name]
	if !ok {
		return fmt.Errorf("serve: canary on unknown system %q", name)
	}
	if st.lc == nil {
		return fmt.Errorf("serve: canary on %q needs an attached lifecycle manager", name)
	}
	cand, version := st.lc.CandidateModel()
	if cand == nil {
		return fmt.Errorf("serve: %q has no candidate model (retrain first)", name)
	}
	ctl := st.lc.Canary()
	if ctl == nil {
		return fmt.Errorf("serve: %q has no open canary window", name)
	}
	st.canary.Store(&canaryRun{set: s.newModelSet(cand, version), ctl: ctl})
	return nil
}

// StartCanaryPredictors opens a canary window with an explicit
// candidate replica set and controller — the test seam. It does not
// need an attached lifecycle manager; without one, promotion swaps the
// active set and rollback discards the candidate, with no registry
// bookkeeping.
func (s *Server) StartCanaryPredictors(name string, replicas []core.Predictor, version string, ctl *lifecycle.Canary) error {
	st, ok := s.systems[name]
	if !ok {
		return fmt.Errorf("serve: canary on unknown system %q", name)
	}
	st.canary.Store(&canaryRun{set: newPredictorSet(replicas, version), ctl: ctl})
	return nil
}

// CanaryActive reports whether a canary window is open on a system.
func (s *Server) CanaryActive(name string) bool {
	st, ok := s.systems[name]
	return ok && st.canary.Load() != nil
}

// FinishCanary evaluates a system's open canary window immediately and,
// if decided, completes it. It returns the decision (Undecided when the
// window stays open) and whether this call closed it.
func (s *Server) FinishCanary(name string) (lifecycle.Decision, bool, error) {
	st, ok := s.systems[name]
	if !ok {
		return lifecycle.Undecided, false, fmt.Errorf("serve: canary on unknown system %q", name)
	}
	cr := st.canary.Load()
	if cr == nil {
		return lifecycle.Undecided, false, fmt.Errorf("serve: %q has no open canary window", name)
	}
	d := cr.ctl.Decide()
	if d == lifecycle.Undecided {
		return d, false, nil
	}
	return d, s.completeCanary(st, cr, d), nil
}

// maybeFinishCanary closes the canary window when its arms have enough
// observations to decide. It runs after every canary-scored solve, so
// the window completes deterministically on the exact request that
// fills it — no timer, no operator.
func (s *Server) maybeFinishCanary(st *systemState, cr *canaryRun) {
	if d := cr.ctl.Decide(); d != lifecycle.Undecided {
		s.completeCanary(st, cr, d)
	}
}

// completeCanary applies a canary decision exactly once (the canary
// pointer CompareAndSwap is the election): on promotion the candidate's
// replica set becomes the active one — the same zero-drop atomic store
// as SwapModel — and on rollback it is discarded; either way the
// attached manager updates the registry and re-baselines the drift
// detector. Reports whether this call won the election.
func (s *Server) completeCanary(st *systemState, cr *canaryRun, d lifecycle.Decision) bool {
	if !st.canary.CompareAndSwap(cr, nil) {
		return false
	}
	if d == lifecycle.Promote {
		st.active.Store(cr.set)
		s.met.recordSwap(st.sys.Name)
		if st.lc != nil {
			st.lc.SetIncumbent(cr.set.version)
			_ = st.lc.CompletePromotion()
		}
	} else if st.lc != nil {
		_ = st.lc.CompleteRollback()
	}
	s.met.recordCanaryDecision(st.sys.Name, d.String())
	return true
}

// lifecycleObserve is the per-solve capture tap: it folds the completed
// request into the attached manager (capture buffer + drift detector)
// and, in auto mode, launches the background retrain when drift fires.
func (s *Server) lifecycleObserve(st *systemState, factors, input []float64, resp *SolveResponse, res solveState) {
	if st.lc == nil {
		return
	}
	rec := lifecycle.Record{
		Factors:       factors,
		Input:         input,
		Cost:          resp.Cost,
		Iterations:    resp.Iterations,
		Warm:          resp.Path != "cold",
		WarmConverged: resp.WarmConverged,
		ModelVersion:  resp.ModelVersion,
	}
	if resp.Converged {
		rec.X, rec.Lam, rec.Mu, rec.Z = res.x, res.lam, res.mu, res.z
	}
	if st.lc.Observe(rec) == lifecycle.ActionRetrain {
		s.met.recordDrift(st.sys.Name)
		if st.lcAuto {
			s.startAutoRetrain(st)
		}
	}
}

// solveState carries the accepted solve's raw solver vectors from
// execute to the capture tap without widening SolveResponse.
type solveState struct {
	x, lam, mu, z []float64
}

// startAutoRetrain launches the drift-triggered retrain + canary open
// in the background, at most one per system at a time. The goroutine
// joins the server WaitGroup, so Close waits for it before flushing
// captures.
func (s *Server) startAutoRetrain(st *systemState) {
	if !st.retraining.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer st.retraining.Store(false)
		if _, _, err := st.lc.Retrain(); err != nil {
			return // not enough captured data yet; the manager resumed capturing
		}
		_ = s.StartCanary(st.sys.Name)
	}()
}

// lcStat is one system's lifecycle snapshot for /metrics.
type lcStat struct {
	system  string
	serving string
	stats   lifecycle.Stats
}

// lifecycleStats snapshots every lifecycle-managed system's counters in
// registration order.
func (s *Server) lifecycleStats() []lcStat {
	out := make([]lcStat, 0, len(s.names))
	for _, name := range s.names {
		st := s.systems[name]
		if st.lc == nil {
			continue
		}
		out = append(out, lcStat{system: name, serving: s.ServingVersion(name), stats: st.lc.Stats()})
	}
	return out
}
